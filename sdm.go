// Package sdm is the public API of the Software Defined Memory (SDM)
// library — a Go reproduction of "Supporting Massive DLRM Inference through
// Software Defined Memory" (Ardestani et al., ICDCS 2022,
// arXiv:2110.11489). It serves massive DLRM embedding tables from a tiered
// memory hierarchy: hot rows live in a unified FM (DRAM) row cache while
// capacity resides on simulated Storage Class Memory (Nand Flash, Optane
// SSD, ZSSD, DIMM/CXL 3DXP) reached through an io_uring-style async IO
// path with NVMe SGL sub-block reads.
//
// The facade re-exports the library's main types so downstream users
// import one package:
//
//	inst, _ := sdm.Build(sdm.M1(), 1e-5, 42)       // synthetic Table 6 model
//	tables, _ := inst.Materialize()
//	var clk sdm.Clock
//	store, _ := sdm.Open(inst, tables, sdm.Config{
//		SMTech: sdm.OptaneSSD,
//		Ring:   sdm.RingConfig{SGL: true},
//	}, &clk)
//	gen, _ := sdm.NewGenerator(inst, sdm.WorkloadConfig{Seed: 1})
//	q := gen.Next()
//	outs := store.AllocOutputs(q)
//	res, _ := store.PoolQuery(store.LoadDone(), q, outs)
//
// Queries execute on a sharded parallel engine: Config.Parallelism fans a
// query's table operators across that many workers (the FM row cache and
// pooled cache are sharded by table, so operators share no locks) while SM
// timing replays deterministically in operator order. Virtual-time
// accounting and statistics are bit-identical at every Parallelism
// setting; only wall-clock time changes.
//
// Beyond one host, the cluster subsystem runs N Host replicas behind a
// front-end router with pluggable user→host policies (round-robin,
// least-outstanding, sticky consistent hashing) over one shared Zipf user
// population — the serving-time realization of the paper's Fig. 4c sticky
// locality uplift and the measured input to fleet provisioning:
//
//	hosts, _ := sdm.NewFleetHosts(inst, tables, 4, &storeCfg, hostCfg)
//	fleet, _ := sdm.NewFleet(hosts, sdm.NewSticky(4, 64), sdm.FleetConfig{})
//	fleet.SetGenerator(gen)
//	res, _ := fleet.Run(300, 2000)
//
// See the examples/ directory for runnable end-to-end scenarios,
// cmd/sdmbench for the experiment harness that regenerates every table and
// figure of the paper's evaluation, and cmd/sdmcluster for the fleet
// simulator CLI.
package sdm

import (
	"sdm/internal/adapt"
	"sdm/internal/blockdev"
	"sdm/internal/cluster"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/metrics"
	"sdm/internal/model"
	"sdm/internal/obs"
	"sdm/internal/placement"
	"sdm/internal/serving"
	"sdm/internal/simclock"
	"sdm/internal/stats"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// Core store types.
type (
	// Config tunes an SDM Store (every §4 Tuning API knob).
	Config = core.Config
	// Store is the tiered embedding store — the paper's contribution.
	Store = core.Store
	// StoreStats aggregates store counters.
	StoreStats = core.Stats
	// OpResult is the virtual-time accounting of one embedding operator.
	OpResult = core.OpResult
	// QueryResult is the per-query accounting (user/item IO overlap).
	QueryResult = core.QueryResult
	// OutputBuf is recycled output-tensor storage for Store.OutputsFor —
	// the allocation-free alternative to Store.AllocOutputs in hot loops.
	OutputBuf = core.OutputBuf
	// CacheKind selects the FM cache organization (Fig. 6).
	CacheKind = core.CacheKind
	// UpdateMode selects offline vs online (cache-first) model updates.
	UpdateMode = core.UpdateMode
	// RingConfig tunes the io_uring-style fast IO path (§4.1).
	RingConfig = uring.Config
	// Clock is the discrete-event virtual clock driving simulations.
	Clock = simclock.Clock
	// VTime is a virtual timestamp.
	VTime = simclock.Time
)

// Model types.
type (
	// ModelConfig is a DLRM model configuration (Table 6 shape).
	ModelConfig = model.Config
	// Instance is a concrete synthetic model.
	Instance = model.Instance
	// TableSpec describes one embedding table.
	TableSpec = embedding.Spec
	// Table is a materialized embedding table.
	Table = embedding.Table
)

// Workload types.
type (
	// WorkloadConfig tunes the query generator.
	WorkloadConfig = workload.Config
	// Generator produces inference queries.
	Generator = workload.Generator
	// Query is one inference request.
	Query = workload.Query
	// QueryBuf is recycled deep-copy storage for retaining arena-backed
	// Generator.NextShared queries past the next draw.
	QueryBuf = workload.QueryBuf
	// TableOp is one embedding operator's index work.
	TableOp = workload.TableOp
)

// Placement and serving types.
type (
	// PlacementConfig selects the §4.6 policy, DRAM budget and deny-list.
	PlacementConfig = placement.Config
	// HostSpec is a serving host SKU (Table 7).
	HostSpec = serving.HostSpec
	// HostConfig tunes a simulated host.
	HostConfig = serving.Config
	// Host simulates one serving host.
	Host = serving.Host
	// HostResult summarizes a host run.
	HostResult = serving.Result
	// Technology is an SM technology (Table 1).
	Technology = blockdev.Technology
	// TechSpec carries Table 1 parameters.
	TechSpec = blockdev.TechSpec
)

// Cluster types (the multi-host fleet simulator).
type (
	// Fleet runs N Host replicas behind a routing front-end.
	Fleet = cluster.Fleet
	// FleetConfig tunes a fleet run (host workers, windows, seed);
	// failure drills are armed with Fleet.ScheduleFailure.
	FleetConfig = cluster.Config
	// FleetResult is the per-host and fleet-wide outcome of a run.
	FleetResult = cluster.Result
	// Router is a pluggable user→host routing policy.
	Router = cluster.Router
	// CacheSnapshot is a point-in-time view of a host's cache counters.
	CacheSnapshot = serving.CacheSnapshot
)

// SLO-aware serving types: composable routing scorers, per-class
// token-bucket admission control, and per-SLO-class tail accounting.
// Queries carry classes via WorkloadConfig.SLOClasses; admission is
// installed with Fleet.SetAdmission.
type (
	// FleetView is the per-decision host-signal surface scorers read
	// (liveness, queue depths, migration state, wear, FM-served rate).
	FleetView = cluster.View
	// Scorer scores one host for one query in [0, 1].
	Scorer = cluster.Scorer
	// ScorerWeight pairs a Scorer with its weight in a WeightedRouter.
	ScorerWeight = cluster.ScorerWeight
	// WeightedRouter routes to the weighted-sum argmax host with a
	// rotating-scan tie-break; RR/LOQ/Sticky are scorer configs of it.
	WeightedRouter = cluster.WeightedRouter
	// AdmitConfig is the fleet's per-class admission policy.
	AdmitConfig = cluster.AdmitConfig
	// ClassAdmit is one SLO class's token-bucket admission policy.
	ClassAdmit = cluster.ClassAdmit
	// ClassResult is one SLO class's share of a fleet run (offered,
	// shed, delayed, and the admitted tail).
	ClassResult = cluster.ClassResult
)

// Decision-tracing types (the observability layer): structured,
// deterministic records of why each routing, admission, and placement
// decision went the way it did, merged in virtual-time order so a trace
// is bit-identical at any FleetConfig.HostWorkers setting. Install with
// Fleet.SetTrace before Run; read the last Run's stream back with
// Fleet.TraceEvents / Fleet.TraceSummary, or render it as JSON Lines
// with Fleet.WriteTrace. FleetResult.Trace carries the summary.
type (
	// TraceConfig tunes a fleet's decision tracing (level, top-k
	// rejected route alternatives to record and re-score).
	TraceConfig = obs.Config
	// TraceLevel selects collection and rendering depth.
	TraceLevel = obs.Level
	// TraceEvent is one decision in the merged virtual-time stream.
	TraceEvent = obs.Event
	// TraceSummary aggregates one run's trace: decision counts by kind
	// and outcome, the diversion rate, and counterfactual regret.
	TraceSummary = obs.Summary
	// RouteDecision records one routing decision with its per-scorer
	// score parts, top-k rejected alternatives, and (at
	// TraceCounterfactual) their completion-time re-scoring.
	RouteDecision = obs.RouteDecision
	// AdmitDecision records one admission-control verdict.
	AdmitDecision = obs.AdmitDecision
	// PlanDecision records one placement promote/demote/defer verdict
	// with the telemetry snapshot that justified it.
	PlanDecision = obs.PlanDecision
)

// Trace levels, in increasing verbosity. Off is the zero-overhead
// default; Summary collects but renders only aggregates; Decisions
// renders every decision row; Counterfactual additionally re-scores each
// route's rejected alternatives at completion time.
const (
	TraceOff            = obs.LevelOff
	TraceSummaryOnly    = obs.LevelSummary
	TraceDecisions      = obs.LevelDecisions
	TraceCounterfactual = obs.LevelCounterfactual
)

// Metrics-plane types (the observability layer's instrument registry):
// typed instruments sampled into virtual-time series on deterministic
// boundaries, so the rendered export — OpenMetrics text or JSONL — is
// byte-identical at any FleetConfig.HostWorkers setting. Install with
// Fleet.SetMetrics before Run; render the last Run's series with
// Fleet.WriteMetrics / Fleet.WriteMetricsJSONL. Hosts, stores, and
// adapters register their catalogs automatically; custom emitters use
// NewMetricsRegistry and the instrument constructors.
type (
	// MetricsConfig tunes the fleet metrics plane (live sampling width).
	MetricsConfig = cluster.MetricsConfig
	// MetricsRegistry holds one emitter's instruments.
	MetricsRegistry = metrics.Registry
	// MetricsDesc names an instrument (family, help, unit, labels).
	MetricsDesc = metrics.Desc
	// MetricsLabel is one fixed key=value pair on an instrument.
	MetricsLabel = metrics.Label
	// MetricsCounter is a monotone counter handle (nil-safe).
	MetricsCounter = metrics.Counter
	// MetricsGauge is a point-in-time value handle (nil-safe).
	MetricsGauge = metrics.Gauge
	// MetricsHistogram is a distribution handle rendered as an
	// OpenMetrics summary (nil-safe).
	MetricsHistogram = metrics.Histogram
)

// Metrics-plane constructors and renderers.
var (
	// NewMetricsRegistry returns a registry for one emitter
	// (host id >= 0, or < 0 for a front-end/global emitter).
	NewMetricsRegistry = metrics.NewRegistry
	// WriteOpenMetrics renders registries as OpenMetrics text.
	WriteOpenMetrics = metrics.WriteOpenMetrics
	// WriteMetricsJSONL renders the identical series as JSON lines.
	WriteMetricsJSONL = metrics.WriteJSONL
)

// ParseTraceLevel parses a -trace-level flag value
// (off, summary, decisions, counterfactual).
var ParseTraceLevel = obs.ParseLevel

// SLO-aware serving constructors.
var (
	// NewWeightedRouter composes a router from weighted scorers.
	NewWeightedRouter = cluster.NewWeightedRouter
	// ParseScorers parses a "name=weight,..." scorer spec.
	ParseScorers = cluster.ParseScorers
	// ParseAdmit parses a "name=rate[:burst][:queue|shed],..." admission
	// spec.
	ParseAdmit = cluster.ParseAdmit
	// NewAffinityScorer scores the sticky ring owner 1, others 0.
	NewAffinityScorer = cluster.NewAffinityScorer
	// NewQueueScorer scores hosts by inverse outstanding-queue depth.
	NewQueueScorer = cluster.NewQueueScorer
	// NewLoadBalanceScorer scores hosts by routed-count deficit.
	NewLoadBalanceScorer = cluster.NewLoadBalanceScorer
	// NewMigrationAvoidScorer penalizes hosts actively migrating inside
	// a granted window (half penalty for backlog awaiting one).
	NewMigrationAvoidScorer = cluster.NewMigrationAvoidScorer
	// NewWearScorer scores hosts by SM endurance headroom.
	NewWearScorer = cluster.NewWearScorer
	// NewFMServedScorer scores hosts by their FM-served rate.
	NewFMServedScorer = cluster.NewFMServedScorer
)

// Adaptive-tiering types: the online control loop that re-evaluates the
// §4.6/Table-5 placement against live telemetry and migrates tables FM↔SM
// under a bandwidth cap. Stores must be opened with Config.ReserveSM;
// workloads drift via WorkloadConfig.Drift; fleets rotate their hot set
// mid-run with Fleet.ScheduleDrift.
type (
	// AdaptConfig tunes an Adapter (interval, DRAM budget, bandwidth cap,
	// granularity); AdaptConfig.Validate reports errors in it.
	AdaptConfig = adapt.Config
	// AdaptGranularity selects whole-table or row-range re-placement.
	AdaptGranularity = adapt.Granularity
	// Adapter is the per-host adaptive-tiering control loop.
	Adapter = adapt.Adapter
	// AdaptStats counts evaluations, migrations and migrated bytes.
	AdaptStats = adapt.Stats
	// TableTelemetry is one table's decayed live-traffic view.
	TableTelemetry = adapt.TableTelemetry
	// RangeTelemetry is one row range's decayed live-traffic view.
	RangeTelemetry = adapt.RangeTelemetry
	// TableStat is one table's raw runtime counters from the store.
	TableStat = core.TableStat
	// RangeStat is one row range's raw runtime counters from the store.
	RangeStat = core.RangeStat
	// DriftConfig makes a workload non-stationary (hot-set rotation on
	// both the user and item sides, diurnal user-mix shift, flash
	// crowds).
	DriftConfig = workload.DriftConfig
	// Tuner is the host-side hook adapters install through.
	Tuner = serving.Tuner
	// AdaptPolicy is the pure planning layer of the adaptation stack
	// (telemetry → ranked, wear-aware move plan).
	AdaptPolicy = adapt.Policy
	// AdaptActuator is the execution layer (Begin/Step/Commit/Abort
	// migration machinery under bandwidth caps and window grants).
	AdaptActuator = adapt.Actuator
	// MigrationWindow is one coordinator-granted migration window.
	MigrationWindow = adapt.Window
	// CoordConfig tunes a fleet migration Coordinator (slot width, shared
	// bandwidth cap, shared per-cycle wear budget).
	CoordConfig = cluster.CoordConfig
	// Coordinator staggers per-replica migration windows fleet-wide.
	Coordinator = cluster.Coordinator
	// WearInfo summarizes a store's SM endurance state (§3 DWPD model).
	WearInfo = core.WearInfo
)

// Adaptive-tiering constructors.
var (
	// NewAdapter builds the control loop over a ReserveSM store.
	NewAdapter = adapt.New
	// AttachAdaptive installs one Adapter per SDM-backed fleet host.
	AttachAdaptive = cluster.AttachAdaptive
	// AttachCoordinated is AttachAdaptive plus staggered fleet migration
	// windows under one shared bandwidth cap and wear budget.
	AttachCoordinated = cluster.AttachCoordinated
	// NewCoordinator builds a staggered window schedule for n replicas.
	NewCoordinator = cluster.NewCoordinator
	// AdapterStats sums per-host adapter counters.
	AdapterStats = cluster.AdapterStats
)

// Cluster constructors.
var (
	// NewFleet assembles a fleet from prebuilt hosts and a router.
	NewFleet = cluster.New
	// NewFleetHosts builds n identical hosts over shared tables.
	NewFleetHosts = cluster.HostSet
	// NewRoundRobin routes queries uniformly over alive hosts.
	NewRoundRobin = cluster.NewRoundRobin
	// NewLeastOutstanding routes to the least-loaded host.
	NewLeastOutstanding = cluster.NewLeastOutstanding
	// NewSticky pins users to hosts via consistent hashing (Fig. 4c).
	NewSticky = cluster.NewSticky
)

// SM technologies (Table 1).
const (
	NandFlash = blockdev.NandFlash
	OptaneSSD = blockdev.OptaneSSD
	ZSSD      = blockdev.ZSSD
	DIMM3DXP  = blockdev.DIMM3DXP
	CXL3DXP   = blockdev.CXL3DXP
)

// Cache organizations (§4.3 / Fig. 6).
const (
	CacheDual         = core.CacheDual
	CacheMemOptimized = core.CacheMemOptimized
	CacheCPUOptimized = core.CacheCPUOptimized
)

// Update modes (§A.3).
const (
	UpdateOffline = core.UpdateOffline
	UpdateOnline  = core.UpdateOnline
)

// Adaptive re-placement granularities: whole tables (the Table-5 greedy
// verbatim) or hot row ranges (partial-table migration — move rows, not
// tables).
const (
	AdaptTables = adapt.Tables
	AdaptRanges = adapt.Ranges
)

// Placement policies (Table 5).
const (
	SMOnlyWithCache  = placement.SMOnlyWithCache
	FixedFMWithCache = placement.FixedFMWithCache
	PerTableCache    = placement.PerTableCache
)

// M1 returns the Table 6 configuration of model M1 (143 GB ranking model).
func M1() ModelConfig { return model.M1() }

// M2 returns the Table 6 configuration of model M2 (150 GB, accelerator).
func M2() ModelConfig { return model.M2() }

// M3 returns the Table 6 configuration of the future model M3 (1 TB).
func M3() ModelConfig { return model.M3() }

// Build synthesizes a model instance at the given capacity scale.
func Build(cfg ModelConfig, scale float64, seed uint64) (*Instance, error) {
	return model.Build(cfg, scale, seed)
}

// Open loads a model into a new SDM store.
func Open(inst *Instance, tables []*Table, cfg Config, clock *Clock) (*Store, error) {
	return core.Open(inst, tables, cfg, clock)
}

// NewGenerator builds a query generator for a model instance.
func NewGenerator(inst *Instance, cfg WorkloadConfig) (*Generator, error) {
	return workload.NewGenerator(inst, cfg)
}

// NewHost builds a simulated serving host.
func NewHost(inst *Instance, store *Store, flat []*Table, gen *Generator, clock *Clock, cfg HostConfig) (*Host, error) {
	return serving.NewHost(inst, store, flat, gen, clock, cfg)
}

// JainFairness returns the Jain fairness index of xs (1 = perfectly
// even, 1/n = maximally skewed) — the fleet reports use it for per-host
// load and per-class admitted shares.
func JainFairness(xs []float64) float64 { return stats.JainFairness(xs) }

// Spec returns the Table 1 catalog entry for an SM technology.
func Spec(t Technology) TechSpec { return blockdev.Spec(t) }

// Catalog returns all Table 1 technologies.
func Catalog() []TechSpec { return blockdev.Catalog() }

// Host SKUs of Table 7.
var (
	HWL  = serving.HWL
	HWS  = serving.HWS
	HWSS = serving.HWSS
	HWAN = serving.HWAN
	HWAO = serving.HWAO
	HWF  = serving.HWF
)
