// Command sdmcluster drives the multi-host fleet simulator: N SDM-backed
// serving hosts behind a front-end router, one shared Zipf user population,
// pluggable user→host routing policies, an optional mid-run host kill, and
// an optional mid-run hot-set rotation with per-host adaptive tiering.
//
// Usage:
//
//	sdmcluster [-hosts n] [-policy rr|loq|sticky|weighted|all] [-qps q] [-queries n]
//	           [-fail id] [-failfrac f] [-warm] [-workers w] [-seed s]
//	           [-scale f] [-json]
//	           [-drift f] [-adapt] [-hottables k] [-itemtables k] [-migbw bytes/s]
//	           [-coord] [-slot d] [-wear days/s]
//	           [-scorers spec] [-sloclasses k] [-admit spec]
//	           [-trace file] [-trace-level off|summary|decisions|counterfactual]
//	           [-counterfactual-k n]
//	           [-metrics file] [-metrics-every d]
//	           [-cpuprofile file] [-memprofile file]
//
// Examples:
//
//	sdmcluster -policy all                 # compare the four policies
//	sdmcluster -policy sticky -fail 1      # kill host 1 mid-run (§A.4)
//	sdmcluster -hottables 2 -drift 0.5 -adapt
//	                                       # rotate the hot set mid-run and
//	                                       # let each host re-place tables
//	sdmcluster -hottables 2 -drift 0.5 -adapt -grain range -coord -wear 0.01
//	                                       # …with staggered migration windows
//	                                       # and wear-aware packing fleet-wide
//	sdmcluster -policy weighted -scorers affinity=1,queue=0.4,migavoid=1.2
//	                                       # compose a custom scorer-weighted
//	                                       # router from named scorers
//	sdmcluster -sloclasses 2 -admit gold=300:30,best-effort=200:20:queue
//	                                       # tag queries with SLO classes and
//	                                       # gate each class's admitted rate
//	sdmcluster -policy weighted -trace trace.jsonl -trace-level counterfactual
//	                                       # record why every decision went the
//	                                       # way it did, with runner-up regret
//	sdmcluster -policy sticky -metrics metrics.txt -metrics-every 100ms
//	                                       # export the measured run's sampled
//	                                       # instrument series (OpenMetrics by
//	                                       # extension; .jsonl selects JSONL)
//	sdmcluster -cpuprofile cpu.pprof       # wall-clock profile with sdm_phase
//	                                       # labels (route+admit/exec/migrate)
//
// Virtual-time results are bit-identical for a fixed seed at any -workers
// value; the flag only changes wall-clock time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"

	"sdm/internal/adapt"
	"sdm/internal/blockdev"
	"sdm/internal/cluster"
	"sdm/internal/core"
	"sdm/internal/model"
	"sdm/internal/obs"
	"sdm/internal/placement"
	"sdm/internal/serving"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdmcluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdmcluster", flag.ContinueOnError)
	var (
		hosts    = fs.Int("hosts", 4, "fleet size")
		policy   = fs.String("policy", "sticky", "routing policy: rr, loq, sticky, or all")
		qps      = fs.Float64("qps", 300, "offered fleet QPS (open loop)")
		queries  = fs.Int("queries", 2000, "measured queries per run")
		warm     = fs.Bool("warm", true, "run one warmup pass before measuring")
		fail     = fs.Int("fail", -1, "host id to kill mid-run (-1 = none)")
		failfrac = fs.Float64("failfrac", 0.5, "fraction of the run routed before the kill")
		workers  = fs.Int("workers", 0, "concurrent host executors (0 = one per host; results identical)")
		windows  = fs.Int("windows", 8, "virtual-time windows in the breakdown")
		seed     = fs.Uint64("seed", 42, "RNG seed")
		scale    = fs.Float64("scale", 3e-6, "model capacity scale")
		users    = fs.Int64("users", 2000, "shared user population")
		asJSON   = fs.Bool("json", false, "emit machine-readable results")
		drift    = fs.Float64("drift", 0, "arm a hot-set rotation after this fraction of the measured run (0 = none)")
		adaptOn  = fs.Bool("adapt", false, "attach the adaptive-tiering control loop to every host")
		hotTabs  = fs.Int("hottables", 0, "spotlight user tables per drift phase (0 = stationary traffic)")
		migBW    = fs.Float64("migbw", 16<<20, "adaptive migration bandwidth cap in bytes/s (0 = unpaced)")
		grain    = fs.String("grain", "table", "adaptive migration granularity: table (whole tables) or range (hot row ranges)")
		hyst     = fs.Float64("hysteresis", 0, "incumbent advantage before a swap is scheduled (>= 1; 0 = default 1.3)")
		smooth   = fs.Float64("smoothing", 0, "telemetry EWMA weight of the newest window in [0, 1] (0 = default 0.5)")
		payback  = fs.Float64("payback", 0, "range-mode payback horizon in seconds (0 = default 10)")
		coordOn  = fs.Bool("coord", false, "stagger the fleet's migration windows (requires -adapt): one shared bandwidth cap and wear budget instead of lockstep migration")
		slot     = fs.Duration("slot", 0, "coordinated migration window width per replica (0 = default 50ms)")
		wear     = fs.Float64("wear", 0, "wear-aware packing: rated endurance days accrued per virtual second (0 = wear-unaware)")
		itemTabs = fs.Int("itemtables", 0, "spotlight item tables per drift phase (0 = stationary item side)")
		scorers  = fs.String("scorers", "affinity=1,queue=0.4,migavoid=1.2", "weighted-policy scorer spec: name=weight,... (names: affinity, queue, loadbal, migavoid, wear, fmserved)")
		sloCls   = fs.Int("sloclasses", 0, "partition users into this many SLO classes by sticky hash (0 = untagged)")
		admit    = fs.String("admit", "", "per-class admission spec: name=rate[:burst][:queue|shed],... in class order (empty = no admission control)")
		trace    = fs.String("trace", "", "write the measured run's decision trace as JSONL to this file (requires a single -policy)")
		traceLvl = fs.String("trace-level", "off", "decision-trace level: off, summary, decisions, or counterfactual (-trace implies decisions)")
		cfK      = fs.Int("counterfactual-k", 0, "rejected route alternatives recorded per decision (0 = min(2, hosts-1); must be < -hosts)")
		metrics  = fs.String("metrics", "", "write the measured run's metric series to this file: OpenMetrics text, or JSONL when the name ends in .jsonl (requires a single -policy)")
		metEvery = fs.Duration("metrics-every", 0, "live metrics sampling width in virtual time (0 = default 250ms)")
		cpuProf  = fs.String("cpuprofile", "", "write a wall-clock CPU profile to this file (phases labeled sdm_phase=route+admit/exec/migrate)")
		memProf  = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	granularity := adapt.Tables
	switch *grain {
	case "table":
	case "range":
		granularity = adapt.Ranges
	default:
		return fmt.Errorf("-grain must be table or range, got %q", *grain)
	}
	acfg := adapt.Config{
		BandwidthBytesPerSec: *migBW,
		Hysteresis:           *hyst,
		Smoothing:            *smooth,
		Granularity:          granularity,
		PaybackSeconds:       *payback,
		WearDaysPerSecond:    *wear,
	}
	switch {
	case *hosts <= 0:
		return fmt.Errorf("-hosts must be positive, got %d", *hosts)
	case *queries <= 0:
		return fmt.Errorf("-queries must be positive, got %d", *queries)
	case *qps <= 0:
		return fmt.Errorf("-qps must be positive, got %g", *qps)
	case *windows <= 0:
		return fmt.Errorf("-windows must be positive, got %d", *windows)
	case *workers < 0:
		return fmt.Errorf("-workers must be >= 0, got %d", *workers)
	case *scale <= 0 || *scale > 1:
		return fmt.Errorf("-scale must be in (0, 1], got %g", *scale)
	case *users <= 0:
		return fmt.Errorf("-users must be positive, got %d", *users)
	case *fail >= 0 && (*failfrac <= 0 || *failfrac > 1):
		return fmt.Errorf("-failfrac must be in (0, 1], got %g", *failfrac)
	case *drift < 0 || *drift > 1:
		return fmt.Errorf("-drift must be in [0, 1], got %g", *drift)
	case *hotTabs < 0:
		return fmt.Errorf("-hottables must be >= 0, got %d", *hotTabs)
	case *itemTabs < 0:
		return fmt.Errorf("-itemtables must be >= 0, got %d", *itemTabs)
	case *coordOn && !*adaptOn:
		return fmt.Errorf("-coord requires -adapt")
	case *slot < 0:
		return fmt.Errorf("-slot must be >= 0 (0 = default 50ms), got %v", *slot)
	case *sloCls < 0:
		return fmt.Errorf("-sloclasses must be >= 0, got %d", *sloCls)
	}
	// The adapt subsystem owns the contract for its own knobs (-migbw,
	// -hysteresis, -smoothing, -payback): surface its validation errors at
	// flag time instead of after model build.
	if err := acfg.Validate(); err != nil {
		return err
	}
	// Trace flags validate at flag-parse time like -scorers/-admit: an
	// unknown level or an out-of-range -counterfactual-k is a clear error
	// here, never a silent clamp after the model builds.
	level, err := obs.ParseLevel(*traceLvl)
	if err != nil {
		return err
	}
	if *trace != "" && level == obs.LevelOff {
		level = obs.LevelDecisions
	}
	switch {
	case *cfK < 0:
		return fmt.Errorf("-counterfactual-k must be >= 0 (0 = min(2, hosts-1)), got %d", *cfK)
	case *cfK > *hosts-1:
		return fmt.Errorf("-counterfactual-k %d exceeds the %d rejected alternatives a %d-host fleet can have", *cfK, *hosts-1, *hosts)
	case *trace != "" && *policy == "all":
		return fmt.Errorf("-trace writes one run's trace; pick a single -policy, not %q", *policy)
	case *metrics != "" && *policy == "all":
		return fmt.Errorf("-metrics writes one run's series; pick a single -policy, not %q", *policy)
	case *metEvery < 0:
		return fmt.Errorf("-metrics-every must be >= 0 (0 = default 250ms), got %v", *metEvery)
	}
	tcfg := obs.Config{Level: level, CounterfactualK: *cfK}

	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}

	policies, err := pickPolicies(*policy, *hosts, *scorers)
	if err != nil {
		return err
	}
	var gate *cluster.AdmitConfig
	if *admit != "" {
		cfg, err := cluster.ParseAdmit(*admit)
		if err != nil {
			return err
		}
		gate = &cfg
	}

	// The experiment-scale model: M1 shape with trimmed table counts.
	cfg := model.M1()
	cfg.NumUserTables = 8
	cfg.NumItemTables = 4
	cfg.ItemBatch = 8
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	inst, err := model.Build(cfg, *scale*50, *seed)
	if err != nil {
		return err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return err
	}

	scfg := core.Config{
		Seed: *seed, SMTech: blockdev.NandFlash,
		Ring: uring.Config{SGL: true}, CacheBytes: 1 << 20,
		Parallelism: runtime.GOMAXPROCS(0),
	}
	if *adaptOn {
		// Adaptive tiering needs swappable tables and an FM budget for the
		// controller to spend: a third of the user-side bytes.
		var userBytes int64
		for _, s := range inst.UserTables() {
			userBytes += s.SizeBytes()
		}
		scfg.ReserveSM = true
		scfg.Placement = placement.Config{
			Policy: placement.FixedFMWithCache, UserTablesOnly: true,
			DRAMBudget: userBytes / 3,
		}
	}
	hcfg := serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: *seed}
	wcfg := workload.Config{Seed: *seed, NumUsers: *users, UserAlpha: 0.8, SLOClasses: *sloCls}
	if *hotTabs > 0 || *itemTabs > 0 {
		wcfg.Drift = workload.DriftConfig{HotTables: *hotTabs, HotItemTables: *itemTabs}
	}

	var reports []map[string]any
	for _, p := range policies {
		hs, err := cluster.HostSet(inst, tables, *hosts, &scfg, hcfg)
		if err != nil {
			return err
		}
		var adapters []*adapt.Adapter
		var coord *cluster.Coordinator
		if *adaptOn {
			if *coordOn {
				adapters, coord, err = cluster.AttachCoordinated(hs, acfg, cluster.CoordConfig{
					Slot:                 *slot,
					BandwidthBytesPerSec: *migBW,
				})
			} else {
				adapters, err = cluster.AttachAdaptive(hs, acfg)
			}
			if err != nil {
				return err
			}
		}
		fl, err := cluster.New(hs, p, cluster.Config{
			Seed: *seed, HostWorkers: *workers, Windows: *windows,
		})
		if err != nil {
			return err
		}
		// Feed the fleet's View the migration signals the weighted
		// scorers read (migavoid, wear, fmserved).
		if coord != nil {
			fl.SetCoordinator(coord)
		}
		if adapters != nil {
			fl.SetAdapters(adapters)
		}
		if gate != nil {
			if err := fl.SetAdmission(*gate); err != nil {
				return err
			}
		}
		if level != obs.LevelOff {
			if err := fl.SetTrace(tcfg); err != nil {
				return err
			}
		}
		if *metrics != "" {
			if err := fl.SetMetrics(cluster.MetricsConfig{Every: *metEvery}); err != nil {
				return err
			}
		}
		gen, err := workload.NewGenerator(inst, wcfg)
		if err != nil {
			return err
		}
		fl.SetGenerator(gen)
		if *warm {
			if _, err := fl.Run(*qps, *queries); err != nil {
				return err
			}
		}
		if *fail >= 0 {
			if err := fl.ScheduleFailure(*fail, *failfrac); err != nil {
				return err
			}
		}
		if *drift > 0 {
			if err := fl.ScheduleDrift(*drift); err != nil {
				return err
			}
		}
		res, err := fl.Run(*qps, *queries)
		if err != nil {
			return err
		}
		if *trace != "" {
			tf, err := os.Create(*trace)
			if err != nil {
				return err
			}
			if err := fl.WriteTrace(tf); err != nil {
				tf.Close()
				return err
			}
			if err := tf.Close(); err != nil {
				return err
			}
		}
		if *metrics != "" {
			mf, err := os.Create(*metrics)
			if err != nil {
				return err
			}
			// Format by extension: .jsonl selects the JSONL mirror, anything
			// else the OpenMetrics text exposition. Same samples, same order.
			write := fl.WriteMetrics
			if strings.HasSuffix(*metrics, ".jsonl") {
				write = fl.WriteMetricsJSONL
			}
			if err := write(mf); err != nil {
				mf.Close()
				return err
			}
			if err := mf.Close(); err != nil {
				return err
			}
		}
		if *asJSON {
			rep := jsonReport(res)
			if adapters != nil {
				as := cluster.AdapterStats(adapters)
				rep["adapter"] = map[string]any{
					"evals": as.Evals, "promotions": as.Promotions,
					"demotions": as.Demotions, "migrated_bytes": as.MigratedBytes,
					"range_moves": as.RangeMoves, "aborts": as.Aborts,
					"granularity": granularity.String(),
				}
			}
			reports = append(reports, rep)
			continue
		}
		res.Print(os.Stdout)
		if adapters != nil {
			fmt.Println("adaptive:", cluster.AdapterStats(adapters))
		}
		fmt.Println()
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	}
	if *memProf != "" {
		mf, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		runtime.GC() // settle the heap so the profile shows live bytes
		if err := pprof.WriteHeapProfile(mf); err != nil {
			mf.Close()
			return err
		}
		return mf.Close()
	}
	return nil
}

func pickPolicies(name string, hosts int, scorers string) ([]cluster.Router, error) {
	weighted := func() (cluster.Router, error) {
		sws, err := cluster.ParseScorers(scorers, hosts)
		if err != nil {
			return nil, err
		}
		return cluster.NewWeightedRouter("weighted", sws...)
	}
	mk := map[string]func() cluster.Router{
		"rr":     func() cluster.Router { return cluster.NewRoundRobin() },
		"loq":    func() cluster.Router { return cluster.NewLeastOutstanding() },
		"sticky": func() cluster.Router { return cluster.NewSticky(hosts, 64) },
	}
	if name == "all" {
		w, err := weighted()
		if err != nil {
			return nil, err
		}
		return []cluster.Router{mk["rr"](), mk["loq"](), mk["sticky"](), w}, nil
	}
	if name == "weighted" {
		w, err := weighted()
		if err != nil {
			return nil, err
		}
		return []cluster.Router{w}, nil
	}
	f, ok := mk[name]
	if !ok {
		return nil, fmt.Errorf("unknown policy %q (rr, loq, sticky, weighted, all)", name)
	}
	return []cluster.Router{f()}, nil
}

// jsonReport flattens a fleet result for -json output.
func jsonReport(r *cluster.Result) map[string]any {
	hosts := make([]map[string]any, len(r.Hosts))
	for i, h := range r.Hosts {
		hosts[i] = map[string]any{
			"id": h.ID, "alive": h.Alive, "queries": h.Queries,
			"qps": h.AchievedQPS, "p99_ms": h.Latency.P99() * 1e3,
			"hit_rate": h.HitRate, "sm_reads": h.SMReads,
			"sm_write_bytes": h.SMWriteBytes, "dwpd_util": h.DWPDUtil,
		}
	}
	var lifetime uint64
	for _, h := range r.Hosts {
		lifetime += h.LifetimeSMWrites
	}
	out := map[string]any{
		"policy": r.Policy, "offered_qps": r.OfferedQPS, "achieved_qps": r.AchievedQPS,
		"queries": r.Queries, "hit_rate": r.HitRate, "fm_served_rate": r.FMServedRate,
		"range_served_rate": r.RangeServedRate,
		"p50_ms":            r.Latency.P50() * 1e3, "p95_ms": r.Latency.P95() * 1e3,
		"p99_ms": r.Latency.P99() * 1e3, "p999_ms": r.Latency.P999() * 1e3,
		"sm_write_bytes": r.SMWriteBytes, "lifetime_sm_write_bytes": lifetime,
		"dwpd_util": r.DWPDUtil,
		"hosts":     hosts,
	}
	if r.DriftFired {
		out["drift_at_s"] = r.DriftAt.Seconds()
	}
	if r.Trace != nil {
		out["trace"] = r.Trace
	}
	if len(r.Classes) > 0 {
		out["shed"] = r.Shed
		out["load_fairness"] = r.LoadFairness
		out["class_fairness"] = r.ClassFairness
		classes := make([]map[string]any, len(r.Classes))
		for i, c := range r.Classes {
			classes[i] = map[string]any{
				"class": c.Class, "name": c.Name,
				"offered": c.Offered, "shed": c.Shed, "delayed": c.Delayed,
				"mean_delay_ms": c.MeanDelay * 1e3,
				"p50_ms":        c.Latency.P50() * 1e3,
				"p99_ms":        c.Latency.P99() * 1e3,
				"p999_ms":       c.Latency.P999() * 1e3,
			}
		}
		out["classes"] = classes
	}
	if r.FailedHost >= 0 {
		out["failed_host"] = r.FailedHost
		out["rerouted_users"] = r.ReroutedUsers
		out["warmup_spike"] = r.WarmupSpike
		out["warmup_hit_drop"] = r.WarmupHitDrop
	}
	return out
}
