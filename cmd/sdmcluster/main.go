// Command sdmcluster drives the multi-host fleet simulator: N SDM-backed
// serving hosts behind a front-end router, one shared Zipf user population,
// pluggable user→host routing policies and an optional mid-run host kill.
//
// Usage:
//
//	sdmcluster [-hosts n] [-policy rr|loq|sticky|all] [-qps q] [-queries n]
//	           [-fail id] [-failfrac f] [-warm] [-workers w] [-seed s]
//	           [-scale f] [-json]
//
// Examples:
//
//	sdmcluster -policy all                 # compare the three policies
//	sdmcluster -policy sticky -fail 1      # kill host 1 mid-run (§A.4)
//
// Virtual-time results are bit-identical for a fixed seed at any -workers
// value; the flag only changes wall-clock time.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"runtime"

	"sdm/internal/blockdev"
	"sdm/internal/cluster"
	"sdm/internal/core"
	"sdm/internal/model"
	"sdm/internal/serving"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdmcluster:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdmcluster", flag.ContinueOnError)
	var (
		hosts    = fs.Int("hosts", 4, "fleet size")
		policy   = fs.String("policy", "sticky", "routing policy: rr, loq, sticky, or all")
		qps      = fs.Float64("qps", 300, "offered fleet QPS (open loop)")
		queries  = fs.Int("queries", 2000, "measured queries per run")
		warm     = fs.Bool("warm", true, "run one warmup pass before measuring")
		fail     = fs.Int("fail", -1, "host id to kill mid-run (-1 = none)")
		failfrac = fs.Float64("failfrac", 0.5, "fraction of the run routed before the kill")
		workers  = fs.Int("workers", 0, "concurrent host executors (0 = one per host; results identical)")
		windows  = fs.Int("windows", 8, "virtual-time windows in the breakdown")
		seed     = fs.Uint64("seed", 42, "RNG seed")
		scale    = fs.Float64("scale", 3e-6, "model capacity scale")
		users    = fs.Int64("users", 2000, "shared user population")
		asJSON   = fs.Bool("json", false, "emit machine-readable results")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	policies, err := pickPolicies(*policy, *hosts)
	if err != nil {
		return err
	}

	// The experiment-scale model: M1 shape with trimmed table counts.
	cfg := model.M1()
	cfg.NumUserTables = 8
	cfg.NumItemTables = 4
	cfg.ItemBatch = 8
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	inst, err := model.Build(cfg, *scale*50, *seed)
	if err != nil {
		return err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return err
	}

	scfg := core.Config{
		Seed: *seed, SMTech: blockdev.NandFlash,
		Ring: uring.Config{SGL: true}, CacheBytes: 1 << 20,
		Parallelism: runtime.GOMAXPROCS(0),
	}
	hcfg := serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: *seed}

	var reports []map[string]any
	for _, p := range policies {
		hs, err := cluster.HostSet(inst, tables, *hosts, &scfg, hcfg)
		if err != nil {
			return err
		}
		fl, err := cluster.New(hs, p, cluster.Config{
			Seed: *seed, HostWorkers: *workers, Windows: *windows,
		})
		if err != nil {
			return err
		}
		gen, err := workload.NewGenerator(inst, workload.Config{Seed: *seed, NumUsers: *users, UserAlpha: 0.8})
		if err != nil {
			return err
		}
		fl.SetGenerator(gen)
		if *warm {
			if _, err := fl.Run(*qps, *queries); err != nil {
				return err
			}
		}
		if *fail >= 0 {
			if err := fl.ScheduleFailure(*fail, *failfrac); err != nil {
				return err
			}
		}
		res, err := fl.Run(*qps, *queries)
		if err != nil {
			return err
		}
		if *asJSON {
			reports = append(reports, jsonReport(res))
			continue
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	if *asJSON {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		return enc.Encode(reports)
	}
	return nil
}

func pickPolicies(name string, hosts int) ([]cluster.Router, error) {
	mk := map[string]func() cluster.Router{
		"rr":     func() cluster.Router { return cluster.NewRoundRobin() },
		"loq":    func() cluster.Router { return cluster.NewLeastOutstanding() },
		"sticky": func() cluster.Router { return cluster.NewSticky(hosts, 64) },
	}
	if name == "all" {
		return []cluster.Router{mk["rr"](), mk["loq"](), mk["sticky"]()}, nil
	}
	f, ok := mk[name]
	if !ok {
		return nil, fmt.Errorf("unknown policy %q (rr, loq, sticky, all)", name)
	}
	return []cluster.Router{f()}, nil
}

// jsonReport flattens a fleet result for -json output.
func jsonReport(r *cluster.Result) map[string]any {
	hosts := make([]map[string]any, len(r.Hosts))
	for i, h := range r.Hosts {
		hosts[i] = map[string]any{
			"id": h.ID, "alive": h.Alive, "queries": h.Queries,
			"qps": h.AchievedQPS, "p99_ms": h.Latency.P99() * 1e3,
			"hit_rate": h.HitRate, "sm_reads": h.SMReads,
		}
	}
	out := map[string]any{
		"policy": r.Policy, "offered_qps": r.OfferedQPS, "achieved_qps": r.AchievedQPS,
		"queries": r.Queries, "hit_rate": r.HitRate,
		"p50_ms": r.Latency.P50() * 1e3, "p95_ms": r.Latency.P95() * 1e3, "p99_ms": r.Latency.P99() * 1e3,
		"hosts": hosts,
	}
	if r.FailedHost >= 0 {
		out["failed_host"] = r.FailedHost
		out["rerouted_users"] = r.ReroutedUsers
		out["warmup_spike"] = r.WarmupSpike
		out["warmup_hit_drop"] = r.WarmupHitDrop
	}
	return out
}
