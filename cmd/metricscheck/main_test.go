package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func checkText(t *testing.T, body string) error {
	t.Helper()
	path := filepath.Join(t.TempDir(), "m.txt")
	if err := os.WriteFile(path, []byte(body), 0o644); err != nil {
		t.Fatal(err)
	}
	return check(path)
}

const goodOM = `# HELP sdm_fleet_routes Queries routed.
# TYPE sdm_fleet_routes counter
sdm_fleet_routes_total 3 0.250000000
sdm_fleet_routes_total 9 0.500000000
# HELP sdm_host_occ Occupancy.
# TYPE sdm_host_occ gauge
sdm_host_occ{host="0"} 0.5 0.250000000
sdm_host_occ{host="1"} 0.25 0.250000000
# HELP lat Latency.
# TYPE lat summary
# UNIT lat seconds
lat_count{host="0"} 2 0.250000000
lat_sum{host="0"} 0.01 0.250000000
lat{host="0",quantile="0.5"} 0.004 0.250000000
lat{host="0",quantile="0.99"} 0.009 0.250000000
# EOF
`

func TestOpenMetricsAccepts(t *testing.T) {
	if err := checkText(t, goodOM); err != nil {
		t.Fatalf("valid stream rejected: %v", err)
	}
}

func TestOpenMetricsFailureModes(t *testing.T) {
	cases := []struct {
		name   string
		mutate func(string) string
		want   string
	}{
		{"missing EOF", func(s string) string {
			return strings.Replace(s, "# EOF\n", "", 1)
		}, "EOF"},
		{"content after EOF", func(s string) string {
			return s + "sdm_fleet_routes_total 11 0.750000000\n"
		}, "after # EOF"},
		{"sample without TYPE", func(s string) string {
			return strings.Replace(s, "# TYPE sdm_fleet_routes counter\n", "", 1)
		}, "no preceding # TYPE"},
		{"counter regression", func(s string) string {
			return strings.Replace(s, "sdm_fleet_routes_total 9 0.500000000",
				"sdm_fleet_routes_total 1 0.500000000", 1)
		}, "counter dropped"},
		{"timestamp regression", func(s string) string {
			return strings.Replace(s, "sdm_fleet_routes_total 9 0.500000000",
				"sdm_fleet_routes_total 9 0.100000000", 1)
		}, "regressed"},
		{"bad quantile", func(s string) string {
			return strings.Replace(s, `quantile="0.99"`, `quantile="0.42"`, 1)
		}, "quantile"},
		{"malformed timestamp", func(s string) string {
			return strings.Replace(s, "sdm_fleet_routes_total 3 0.250000000",
				"sdm_fleet_routes_total 3 0.25", 1)
		}, "timestamp"},
		{"empty file", func(string) string { return "" }, "empty"},
		{"no samples", func(string) string {
			return "# HELP x h\n# TYPE x counter\n# EOF\n"
		}, "no samples"},
		{"family re-declared", func(s string) string {
			return strings.Replace(s, "# HELP lat Latency.",
				"# TYPE sdm_fleet_routes gauge\n# HELP lat Latency.", 1)
		}, "re-declared"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkText(t, tc.mutate(goodOM))
			if err == nil {
				t.Fatalf("mutated stream accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

const goodJSONL = `{"family":"sdm_fleet_routes","name":"sdm_fleet_routes_total","kind":"counter","host":-1,"t_ns":250000000,"value":3}
{"family":"sdm_fleet_routes","name":"sdm_fleet_routes_total","kind":"counter","host":-1,"t_ns":500000000,"value":9}
{"family":"lat","name":"lat","kind":"summary","host":0,"labels":{"quantile":"0.5"},"t_ns":250000000,"value":0.004}
`

func TestJSONLAccepts(t *testing.T) {
	if err := checkText(t, goodJSONL); err != nil {
		t.Fatalf("valid JSONL rejected: %v", err)
	}
}

func TestJSONLFailureModes(t *testing.T) {
	cases := []struct {
		name string
		body string
		want string
	}{
		{"missing t_ns",
			`{"family":"f","name":"f_total","kind":"counter","host":0,"value":1}` + "\n",
			"missing host/t_ns/value"},
		{"unknown kind",
			`{"family":"f","name":"f","kind":"meter","host":0,"t_ns":1,"value":1}` + "\n",
			"unknown kind"},
		{"name outside family",
			`{"family":"f","name":"g_total","kind":"counter","host":0,"t_ns":1,"value":1}` + "\n",
			"not under family"},
		{"counter drop",
			`{"family":"f","name":"f_total","kind":"counter","host":0,"t_ns":1,"value":5}` + "\n" +
				`{"family":"f","name":"f_total","kind":"counter","host":0,"t_ns":2,"value":3}` + "\n",
			"counter dropped"},
		{"time regression",
			`{"family":"f","name":"f","kind":"gauge","host":0,"t_ns":9,"value":1}` + "\n" +
				`{"family":"f","name":"f","kind":"gauge","host":0,"t_ns":2,"value":1}` + "\n",
			"regressed"},
		{"bad quantile",
			`{"family":"f","name":"f","kind":"summary","host":0,"labels":{"quantile":"0.7"},"t_ns":1,"value":1}` + "\n",
			"quantile"},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			err := checkText(t, tc.body)
			if err == nil {
				t.Fatalf("invalid JSONL accepted")
			}
			if !strings.Contains(err.Error(), tc.want) {
				t.Fatalf("error %q does not mention %q", err, tc.want)
			}
		})
	}
}

// TestRealExportRoundTrip is in internal/cluster's court (the writer);
// here the CI smoke run covers writer→checker integration.
