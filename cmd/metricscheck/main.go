// Command metricscheck validates a metrics export written by sdmcluster
// -metrics (or cluster.Fleet.WriteMetrics / WriteMetricsJSONL). It
// understands both formats — OpenMetrics text and JSONL — sniffing by
// the first byte. For each it checks the structural contract the
// deterministic metrics plane guarantees: every sample belongs to a
// declared family, per-series timestamps never regress, counter series
// are monotone, summary quantile labels are well-formed, and the
// OpenMetrics stream terminates with exactly one # EOF. CI smoke-runs it
// so the export stays machine-readable without a promtool dependency.
//
// Usage:
//
//	metricscheck <metrics.txt|metrics.jsonl> [...]
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: metricscheck <metrics.txt|metrics.jsonl> [...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "metricscheck: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

// series tracks per-series monotonicity state, keyed by name+labels.
type series struct {
	lastT   int64
	lastVal float64
	hasVal  bool
}

func check(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	if len(data) == 0 {
		return fmt.Errorf("empty file")
	}
	var samples int
	if data[0] == '{' {
		samples, err = checkJSONL(data)
	} else {
		samples, err = checkOpenMetrics(data)
	}
	if err != nil {
		return err
	}
	fmt.Printf("%s: ok (%d samples)\n", path, samples)
	return nil
}

// checkOpenMetrics validates the text exposition: samples only under a
// declared # TYPE, per-series non-decreasing timestamps, monotone
// counters, and a final # EOF.
func checkOpenMetrics(data []byte) (int, error) {
	types := map[string]string{} // family -> counter|gauge|summary
	state := map[string]*series{}
	var n, samples int
	sawEOF := false
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		n++
		line := sc.Text()
		if sawEOF {
			return 0, fmt.Errorf("line %d: content after # EOF", n)
		}
		if line == "# EOF" {
			sawEOF = true
			continue
		}
		if strings.HasPrefix(line, "# HELP ") || strings.HasPrefix(line, "# UNIT ") {
			continue
		}
		if strings.HasPrefix(line, "# TYPE ") {
			fields := strings.Fields(line)
			if len(fields) != 4 {
				return 0, fmt.Errorf("line %d: malformed TYPE line %q", n, line)
			}
			switch fields[3] {
			case "counter", "gauge", "summary":
			default:
				return 0, fmt.Errorf("line %d: unknown metric type %q", n, fields[3])
			}
			if prev, ok := types[fields[2]]; ok && prev != fields[3] {
				return 0, fmt.Errorf("line %d: family %s re-declared as %s (was %s)", n, fields[2], fields[3], prev)
			}
			types[fields[2]] = fields[3]
			continue
		}
		if strings.HasPrefix(line, "#") {
			return 0, fmt.Errorf("line %d: unknown comment %q", n, line)
		}
		name, labels, rest, err := splitSample(line)
		if err != nil {
			return 0, fmt.Errorf("line %d: %v", n, err)
		}
		kind, fam := familyOf(name, types)
		if kind == "" {
			return 0, fmt.Errorf("line %d: sample %s has no preceding # TYPE", n, name)
		}
		if kind == "summary" {
			if err := quantileOK(name, fam, labels); err != nil {
				return 0, fmt.Errorf("line %d: %v", n, err)
			}
		}
		parts := strings.Fields(rest)
		if len(parts) != 2 {
			return 0, fmt.Errorf("line %d: want 'value timestamp', got %q", n, rest)
		}
		val, err := strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return 0, fmt.Errorf("line %d: bad value %q: %v", n, parts[0], err)
		}
		tns, err := parseTimestamp(parts[1])
		if err != nil {
			return 0, fmt.Errorf("line %d: bad timestamp %q: %v", n, parts[1], err)
		}
		if err := advance(state, name+labels, tns, val, kind == "counter" || strings.HasSuffix(name, "_count")); err != nil {
			return 0, fmt.Errorf("line %d: series %s%s: %v", n, name, labels, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if !sawEOF {
		return 0, fmt.Errorf("missing # EOF terminator")
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples")
	}
	return samples, nil
}

// jsonRow mirrors the WriteMetricsJSONL schema.
type jsonRow struct {
	Family string            `json:"family"`
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Host   *int              `json:"host"`
	Labels map[string]string `json:"labels"`
	TNs    *int64            `json:"t_ns"`
	Value  *json.Number      `json:"value"`
}

// checkJSONL validates the JSONL mirror: field presence on every row and
// the same per-series timestamp/counter discipline.
func checkJSONL(data []byte) (int, error) {
	state := map[string]*series{}
	var n, samples int
	sc := bufio.NewScanner(strings.NewReader(string(data)))
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		n++
		var r jsonRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			return 0, fmt.Errorf("line %d: %v", n, err)
		}
		if r.Family == "" || r.Name == "" {
			return 0, fmt.Errorf("line %d: missing family/name", n)
		}
		if !strings.HasPrefix(r.Name, r.Family) {
			return 0, fmt.Errorf("line %d: name %q not under family %q", n, r.Name, r.Family)
		}
		switch r.Kind {
		case "counter", "gauge", "summary":
		default:
			return 0, fmt.Errorf("line %d: unknown kind %q", n, r.Kind)
		}
		if r.Host == nil || r.TNs == nil || r.Value == nil {
			return 0, fmt.Errorf("line %d: missing host/t_ns/value", n)
		}
		if *r.Host < -1 {
			return 0, fmt.Errorf("line %d: bad host %d", n, *r.Host)
		}
		if r.Kind == "summary" {
			if q, ok := r.Labels["quantile"]; ok && q != "0.5" && q != "0.99" {
				return 0, fmt.Errorf("line %d: unknown quantile %q", n, q)
			}
		}
		val, err := r.Value.Float64()
		if err != nil {
			return 0, fmt.Errorf("line %d: bad value %q: %v", n, *r.Value, err)
		}
		key := r.Name + "|" + strconv.Itoa(*r.Host) + "|" + labelKey(r.Labels)
		mono := r.Kind == "counter" || strings.HasSuffix(r.Name, "_count")
		if err := advance(state, key, *r.TNs, val, mono); err != nil {
			return 0, fmt.Errorf("line %d: series %s: %v", n, key, err)
		}
		samples++
	}
	if err := sc.Err(); err != nil {
		return 0, err
	}
	if samples == 0 {
		return 0, fmt.Errorf("no samples")
	}
	return samples, nil
}

// advance checks one sample against its series state: timestamps never
// regress, and monotone series never decrease.
func advance(state map[string]*series, key string, tns int64, val float64, mono bool) error {
	s, ok := state[key]
	if !ok {
		state[key] = &series{lastT: tns, lastVal: val, hasVal: true}
		return nil
	}
	if tns < s.lastT {
		return fmt.Errorf("timestamp %d regressed below %d", tns, s.lastT)
	}
	if mono && s.hasVal && val < s.lastVal {
		return fmt.Errorf("counter dropped from %g to %g", s.lastVal, val)
	}
	s.lastT, s.lastVal = tns, val
	return nil
}

// parseTimestamp reads the fixed seconds.nanoseconds rendering back
// into virtual nanoseconds.
func parseTimestamp(s string) (int64, error) {
	neg := false
	if strings.HasPrefix(s, "-") {
		neg = true
		s = s[1:]
	}
	i := strings.IndexByte(s, '.')
	if i < 0 || len(s)-i-1 != 9 {
		return 0, fmt.Errorf("want seconds with 9-digit nanosecond fraction")
	}
	sec, err := strconv.ParseInt(s[:i], 10, 64)
	if err != nil {
		return 0, err
	}
	frac, err := strconv.ParseInt(s[i+1:], 10, 64)
	if err != nil {
		return 0, err
	}
	ns := sec*1e9 + frac
	if neg {
		ns = -ns
	}
	return ns, nil
}

// splitSample breaks "name{labels} value ts" into its parts.
func splitSample(line string) (name, labels, rest string, err error) {
	if i := strings.IndexByte(line, '{'); i >= 0 {
		j := strings.IndexByte(line, '}')
		if j < i {
			return "", "", "", fmt.Errorf("unbalanced braces in %q", line)
		}
		return line[:i], line[i : j+1], strings.TrimSpace(line[j+1:]), nil
	}
	i := strings.IndexByte(line, ' ')
	if i < 0 {
		return "", "", "", fmt.Errorf("malformed sample %q", line)
	}
	return line[:i], "", strings.TrimSpace(line[i:]), nil
}

// familyOf resolves a sample name to its declared family, accounting for
// the rendered suffixes (_total for counters, _count/_sum for summaries).
func familyOf(name string, types map[string]string) (kind, fam string) {
	if k, ok := types[name]; ok {
		return k, name
	}
	for _, suf := range []string{"_total", "_count", "_sum"} {
		base := strings.TrimSuffix(name, suf)
		if base == name {
			continue
		}
		if k, ok := types[base]; ok {
			return k, base
		}
	}
	return "", ""
}

// quantileOK validates a summary sample's shape: bare family names must
// carry a known quantile label; _count/_sum rows must not.
func quantileOK(name, fam string, labels string) error {
	if name != fam {
		if strings.Contains(labels, "quantile=") {
			return fmt.Errorf("%s row carries a quantile label", name)
		}
		return nil
	}
	if !strings.Contains(labels, `quantile="0.5"`) && !strings.Contains(labels, `quantile="0.99"`) {
		return fmt.Errorf("summary row %s%s lacks a known quantile label", name, labels)
	}
	return nil
}

func labelKey(m map[string]string) string {
	if len(m) == 0 {
		return ""
	}
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var b strings.Builder
	for _, k := range keys {
		b.WriteString(k)
		b.WriteByte('=')
		b.WriteString(m[k])
		b.WriteByte(',')
	}
	return b.String()
}
