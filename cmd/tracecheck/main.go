// Command tracecheck validates the JSONL schema of a decision trace
// written by sdmcluster -trace (or cluster.Fleet.WriteTrace): every line
// must be a well-formed event of a known kind carrying the payload its
// kind requires, and the file must end with exactly one summary line
// whose counts match the events above it. CI smoke-runs it so the trace
// format stays machine-readable without a jq dependency.
//
// Usage:
//
//	tracecheck trace.jsonl [more.jsonl ...]
package main

import (
	"bufio"
	"encoding/json"
	"fmt"
	"os"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: tracecheck <trace.jsonl> [...]")
		os.Exit(2)
	}
	for _, path := range os.Args[1:] {
		if err := check(path); err != nil {
			fmt.Fprintf(os.Stderr, "tracecheck: %s: %v\n", path, err)
			os.Exit(1)
		}
	}
}

// line mirrors the obs JSONL schema loosely: payloads stay raw so the
// checker validates presence and field types without importing obs (the
// point is to catch schema drift between writer and reader).
type line struct {
	Kind  string           `json:"kind"`
	Time  *int64           `json:"t"`
	Host  *int             `json:"host"`
	Route map[string]any   `json:"route"`
	Admit map[string]any   `json:"admit"`
	Plan  map[string]any   `json:"plan"`
	Sum   *json.RawMessage `json:"summary"`
}

type summary struct {
	Level      string `json:"level"`
	Events     int    `json:"events"`
	Routes     int    `json:"routes"`
	Diversions int    `json:"diversions"`
	Admits     int    `json:"admits"`
	Sheds      int    `json:"sheds"`
	Delays     int    `json:"delays"`
	Promotes   int    `json:"promotes"`
	Demotes    int    `json:"demotes"`
	Defers     int    `json:"defers"`
}

func check(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	defer f.Close()

	var (
		n                    int
		routes, admits, plan int
		sheds, admitted      int
		proms, dems, defs    int
		sum                  *summary
		lastT                int64
	)
	sc := bufio.NewScanner(f)
	sc.Buffer(make([]byte, 1<<20), 1<<24)
	for sc.Scan() {
		n++
		if sum != nil {
			return fmt.Errorf("line %d: content after the summary line", n)
		}
		var l line
		if err := json.Unmarshal(sc.Bytes(), &l); err != nil {
			return fmt.Errorf("line %d: %v", n, err)
		}
		switch l.Kind {
		case "route", "admit", "plan":
			if l.Time == nil || l.Host == nil {
				return fmt.Errorf("line %d: %s event missing t/host", n, l.Kind)
			}
			if *l.Time < lastT {
				return fmt.Errorf("line %d: time %d regressed below %d — events must be virtual-time ordered", n, *l.Time, lastT)
			}
			lastT = *l.Time
		}
		switch l.Kind {
		case "route":
			routes++
			if err := need(l.Route, "i", "user", "class", "prev", "chosen"); err != nil {
				return fmt.Errorf("line %d: route: %v", n, err)
			}
		case "admit":
			admits++
			if err := need(l.Admit, "class", "outcome", "tokens"); err != nil {
				return fmt.Errorf("line %d: admit: %v", n, err)
			}
			switch l.Admit["outcome"] {
			case "admit", "delay":
				admitted++
			case "shed":
				sheds++
			default:
				return fmt.Errorf("line %d: admit outcome %v", n, l.Admit["outcome"])
			}
		case "plan":
			plan++
			if err := need(l.Plan, "table", "range", "action", "density", "bytes"); err != nil {
				return fmt.Errorf("line %d: plan: %v", n, err)
			}
			switch l.Plan["action"] {
			case "promote":
				proms++
			case "demote":
				dems++
			case "defer":
				defs++
			default:
				return fmt.Errorf("line %d: plan action %v", n, l.Plan["action"])
			}
		case "summary":
			if l.Sum == nil {
				return fmt.Errorf("line %d: summary line without summary payload", n)
			}
			var s summary
			if err := json.Unmarshal(*l.Sum, &s); err != nil {
				return fmt.Errorf("line %d: summary: %v", n, err)
			}
			sum = &s
		default:
			return fmt.Errorf("line %d: unknown kind %q", n, l.Kind)
		}
	}
	if err := sc.Err(); err != nil {
		return err
	}
	if sum == nil {
		return fmt.Errorf("no summary line (got %d lines)", n)
	}
	// Decision-level traces must agree with their own summary; a
	// summary-level trace has counts but no event lines.
	if n > 1 {
		switch {
		case sum.Routes != routes:
			return fmt.Errorf("summary routes=%d but %d route events", sum.Routes, routes)
		case sum.Admits != admitted || sum.Sheds != sheds:
			return fmt.Errorf("summary admits=%d sheds=%d but events say %d/%d", sum.Admits, sum.Sheds, admitted, sheds)
		case sum.Promotes != proms || sum.Demotes != dems || sum.Defers != defs:
			return fmt.Errorf("summary plan=+%d/-%d/defer %d but events say +%d/-%d/defer %d",
				sum.Promotes, sum.Demotes, sum.Defers, proms, dems, defs)
		case sum.Events != routes+admits+plan:
			return fmt.Errorf("summary events=%d but %d event lines", sum.Events, routes+admits+plan)
		}
	}
	fmt.Printf("%s: ok (%d events: %d route, %d admit, %d plan; level %s)\n",
		path, routes+admits+plan, routes, admits, plan, sum.Level)
	return nil
}

// need reports the first missing key in a payload object.
func need(m map[string]any, keys ...string) error {
	if m == nil {
		return fmt.Errorf("missing payload")
	}
	for _, k := range keys {
		if _, ok := m[k]; !ok {
			return fmt.Errorf("missing field %q", k)
		}
	}
	return nil
}
