package main

import (
	"os"
	"path/filepath"
	"testing"
)

// writeReport writes a single-experiment BENCH-style artifact and returns
// its path.
func writeReport(t *testing.T, name, row string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), name)
	data := `[{"id":"alloc","title":"t","header":"h","rows":["` + row + `"]}]`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}

func TestRegressOnlyGatesDirectionAware(t *testing.T) {
	base := writeReport(t, "base.json", "fleet 2400 100.0 1.00")

	cases := []struct {
		name    string
		row     string
		args    []string
		wantErr bool
	}{
		{"improvement passes", "fleet 2400 50.0 0.50",
			[]string{"-tol", "10", "-regress-only", "alloc"}, false},
		{"regression fails", "fleet 2400 150.0 1.50",
			[]string{"-tol", "10", "-regress-only", "alloc"}, true},
		{"within tolerance passes", "fleet 2400 105.0 1.00",
			[]string{"-tol", "10", "-regress-only", "alloc"}, false},
		{"zero baseline growth fails", "fleet 2400 100.0 1.00",
			[]string{"-tol", "10", "-regress-only", "alloc"}, false},
		{"shape change fails", "fleet 2400 n/a 1.00",
			[]string{"-tol", "10", "-regress-only", "alloc"}, true},
		{"fail-on still fails on improvement", "fleet 2400 50.0 0.50",
			[]string{"-tol", "10", "-fail-on", "alloc"}, true},
		{"ungated drift passes", "fleet 2400 150.0 1.50",
			[]string{"-tol", "10"}, false},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			cur := writeReport(t, "cur.json", tc.row)
			err := run(append(tc.args, base, cur))
			if (err != nil) != tc.wantErr {
				t.Fatalf("run(%v) err = %v, wantErr = %v", tc.args, err, tc.wantErr)
			}
		})
	}
}

func TestRowDeltaDirection(t *testing.T) {
	worst, worstUp, ok := rowDelta("a 100 200", "a 50 300")
	if !ok {
		t.Fatal("rows should be comparable")
	}
	if worst != 50 {
		t.Fatalf("worst = %g, want 50 (the 100→50 move)", worst)
	}
	if worstUp != 50 {
		t.Fatalf("worstUp = %g, want 50 (the 200→300 move)", worstUp)
	}
}
