// Command benchdiff compares two benchmark-trajectory artifacts (the
// BENCH_<rev>.json files `make bench-json` emits — JSON arrays of
// {id, title, header, rows, notes} experiment reports) and prints
// per-benchmark deltas, so consecutive revisions finally get diffed
// instead of accumulating as unread CI artifacts.
//
// Usage:
//
//	benchdiff [-tol pct] [-fail-on-change] [-fail-on ids] [-regress-only ids] baseline.json current.json
//
// Rows are matched positionally within each experiment. When a row's
// non-numeric skeleton is unchanged, every embedded number is compared and
// the worst relative delta reported; rows whose shape changed (or that
// were added/removed) are shown verbatim. The default exit status is 0
// regardless of drift, -fail-on-change turns any delta beyond -tol into
// exit 1 for local bisecting, and -fail-on gates a named subset: CI fails
// on >10% regressions of the query-engine and cluster benchmarks while
// the adapt drills (drift/rowrange/coord) stay warn-only, since those are
// the rows a PR is usually *meant* to move.
//
// -regress-only gates ids direction-aware: only *increases* beyond -tol
// fail, decreases print but pass. It fits cost budgets like the alloc
// experiment's B/query rows, where lower is strictly better and an
// improvement should never force a re-baseline to land.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"

	"sdm/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("benchdiff", flag.ContinueOnError)
	var (
		tol     = fs.Float64("tol", 2.0, "relative delta (in %) below which a number counts as unchanged")
		strict  = fs.Bool("fail-on-change", false, "exit non-zero when any benchmark drifted beyond -tol")
		failOn  = fs.String("fail-on", "", "comma-separated experiment ids whose drift beyond -tol (or addition/removal) fails the run; other ids stay warn-only")
		regOnly = fs.String("regress-only", "", "comma-separated experiment ids gated direction-aware: only numeric increases beyond -tol (or shape changes/removal) fail; decreases pass")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *tol < 0 {
		return fmt.Errorf("-tol must be >= 0, got %g", *tol)
	}
	if fs.NArg() != 2 {
		fs.Usage()
		return fmt.Errorf("want exactly two files (baseline, current), got %d", fs.NArg())
	}
	base, err := load(fs.Arg(0))
	if err != nil {
		return err
	}
	cur, err := load(fs.Arg(1))
	if err != nil {
		return err
	}

	gated := map[string]bool{}
	for _, id := range strings.Split(*failOn, ",") {
		if id = strings.TrimSpace(id); id != "" {
			gated[id] = true
		}
	}
	regGated := map[string]bool{}
	for _, id := range strings.Split(*regOnly, ",") {
		if id = strings.TrimSpace(id); id != "" {
			regGated[id] = true
		}
	}

	baseByID := make(map[string]experiments.Report, len(base))
	for _, r := range base {
		baseByID[r.ID] = r
	}
	changed, unchanged, added := 0, 0, 0
	var gatedDrift []string
	for _, c := range cur {
		b, ok := baseByID[c.ID]
		if !ok {
			added++
			fmt.Printf("== %-10s new benchmark (%d rows)\n", c.ID, len(c.Rows))
			if gated[c.ID] {
				gatedDrift = append(gatedDrift, c.ID)
			}
			continue
		}
		delete(baseByID, c.ID)
		d, reg := diffReport(b, c, *tol)
		if d > 0 {
			changed++
			if gated[c.ID] || (regGated[c.ID] && reg > 0) {
				gatedDrift = append(gatedDrift, c.ID)
			}
		} else {
			unchanged++
		}
	}
	removed := make([]string, 0, len(baseByID))
	for id := range baseByID {
		removed = append(removed, id)
	}
	sort.Strings(removed)
	for _, id := range removed {
		fmt.Printf("== %-10s removed from current run\n", id)
		if gated[id] || regGated[id] {
			gatedDrift = append(gatedDrift, id)
		}
	}
	fmt.Printf("\n%d changed, %d unchanged, %d added, %d removed (tolerance %.1f%%)\n",
		changed, unchanged, added, len(baseByID), *tol)
	if len(gatedDrift) > 0 {
		sort.Strings(gatedDrift)
		return fmt.Errorf("gated benchmarks drifted beyond %.1f%%: %s (re-baseline deliberately if intended)",
			*tol, strings.Join(gatedDrift, ", "))
	}
	if *strict && (changed > 0 || added > 0 || len(baseByID) > 0) {
		return fmt.Errorf("benchmarks drifted beyond %.1f%%", *tol)
	}
	return nil
}

func load(path string) ([]experiments.Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var reps []experiments.Report
	if err := json.Unmarshal(data, &reps); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return reps, nil
}

// numRE matches the numbers embedded in a rendered experiment row.
var numRE = regexp.MustCompile(`-?\d+(?:\.\d+)?(?:[eE][+-]?\d+)?`)

// diffReport prints one experiment's drifted rows and returns how many
// rows moved beyond the tolerance, plus how many of those moved *up* —
// row shape changes and row additions/removals count as regressions, a
// pure numeric decrease does not.
func diffReport(b, c experiments.Report, tolPct float64) (drifted, regressed int) {
	n := len(b.Rows)
	if len(c.Rows) > n {
		n = len(c.Rows)
	}
	var lines []string
	for i := 0; i < n; i++ {
		switch {
		case i >= len(b.Rows):
			drifted++
			regressed++
			lines = append(lines, fmt.Sprintf("  + %s", c.Rows[i]))
		case i >= len(c.Rows):
			drifted++
			regressed++
			lines = append(lines, fmt.Sprintf("  - %s", b.Rows[i]))
		default:
			worst, worstUp, ok := rowDelta(b.Rows[i], c.Rows[i])
			if !ok {
				if b.Rows[i] != c.Rows[i] {
					drifted++
					regressed++
					lines = append(lines, fmt.Sprintf("  ~ %s\n    → %s (shape changed)", b.Rows[i], c.Rows[i]))
				}
				continue
			}
			if worst > tolPct {
				drifted++
				if worstUp > tolPct {
					regressed++
				}
				lines = append(lines, fmt.Sprintf("  ~ %s\n    → %s (worst Δ %.1f%%)", b.Rows[i], c.Rows[i], worst))
			}
		}
	}
	if drifted > 0 {
		fmt.Printf("== %-10s %d/%d rows drifted\n", c.ID, drifted, n)
		for _, l := range lines {
			fmt.Println(l)
		}
	}
	return drifted, regressed
}

// rowDelta compares the numbers of two rows with an identical non-numeric
// skeleton and returns the worst relative delta in percent, both overall
// and restricted to increases (for direction-aware gating). ok is false
// when the skeletons differ (the rows are not number-comparable).
func rowDelta(b, c string) (worst, worstUp float64, ok bool) {
	if numRE.ReplaceAllString(b, "#") != numRE.ReplaceAllString(c, "#") {
		return 0, 0, false
	}
	bn := numRE.FindAllString(b, -1)
	cn := numRE.FindAllString(c, -1)
	if len(bn) != len(cn) {
		return 0, 0, false
	}
	for i := range bn {
		x, errX := strconv.ParseFloat(bn[i], 64)
		y, errY := strconv.ParseFloat(cn[i], 64)
		if errX != nil || errY != nil {
			continue
		}
		var d float64
		switch {
		case x == y:
			continue
		case x == 0:
			d = math.Inf(1)
		default:
			d = 100 * math.Abs(y-x) / math.Abs(x)
		}
		if d > worst {
			worst = d
		}
		if y > x && d > worstUp {
			worstUp = d
		}
	}
	return worst, worstUp, true
}
