// Command sdmtrace generates synthetic DLRM query traces and analyzes
// their locality — the standalone version of the paper's characterization
// study (§4.2, Figs. 4–5).
//
// Usage:
//
//	sdmtrace [-model M1|M2|M3] [-scale f] [-queries n] [-hosts h] [-seed s]
//
// It prints the temporal-locality CDFs for user and item tables (global
// and per-host under sticky routing) and the spatial-locality metric.
package main

import (
	"flag"
	"fmt"
	"os"

	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/workload"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdmtrace:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdmtrace", flag.ContinueOnError)
	var (
		modelName = fs.String("model", "M1", "target model: M1, M2 or M3")
		scale     = fs.Float64("scale", 1e-5, "capacity scale vs the paper's model")
		queries   = fs.Int("queries", 2000, "queries to generate")
		hosts     = fs.Int("hosts", 8, "hosts for the per-host locality study")
		seed      = fs.Uint64("seed", 42, "RNG seed")
		userTabs  = fs.Int("usertables", 12, "user tables to synthesize (0 = paper count)")
		itemTabs  = fs.Int("itemtables", 6, "item tables to synthesize (0 = paper count)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *scale <= 0 || *scale > 1:
		return fmt.Errorf("-scale must be in (0, 1], got %g", *scale)
	case *queries <= 0:
		return fmt.Errorf("-queries must be positive, got %d", *queries)
	case *hosts <= 0:
		return fmt.Errorf("-hosts must be positive, got %d", *hosts)
	case *userTabs < 0 || *itemTabs < 0:
		return fmt.Errorf("-usertables/-itemtables must be >= 0, got %d/%d", *userTabs, *itemTabs)
	}
	var cfg model.Config
	switch *modelName {
	case "M1":
		cfg = model.M1()
	case "M2":
		cfg = model.M2()
	case "M3":
		cfg = model.M3()
	default:
		return fmt.Errorf("unknown model %q", *modelName)
	}
	if *userTabs > 0 {
		cfg.NumUserTables = *userTabs
	}
	if *itemTabs > 0 {
		cfg.NumItemTables = *itemTabs
	}
	cfg.ItemBatch = min(cfg.ItemBatch, 16)

	inst, err := model.Build(cfg, *scale, *seed)
	if err != nil {
		return err
	}
	gen, err := workload.NewGenerator(inst, workload.Config{Seed: *seed, NumUsers: 5000})
	if err != nil {
		return err
	}
	qs := gen.GenerateTrace(*queries)
	if err := workload.Validate(inst, qs); err != nil {
		return err
	}

	fmt.Printf("model %s: %d tables (%d user), %.1f MB scaled, %d queries\n\n",
		cfg.Name, len(inst.Tables), cfg.NumUserTables,
		float64(inst.TotalBytes())/(1<<20), len(qs))

	results := workload.TemporalLocality(inst, qs, 100)
	user := workload.AverageCDF(results, embedding.User)
	item := workload.AverageCDF(results, embedding.Item)
	perHost := workload.AverageCDF(
		workload.PerHostTemporalLocality(inst, qs, *hosts, true, 0), embedding.User)

	fmt.Println("temporal locality (fraction of accesses covered by top rows):")
	fmt.Printf("%-12s %10s %10s %14s\n", "rows frac", "user", "item", "user/host")
	for i, f := range workload.CDFFractions {
		var u, it, ph float64
		if i < len(user) {
			u = user[i].Frac
		}
		if i < len(item) {
			it = item[i].Frac
		}
		if i < len(perHost) {
			ph = perHost[i].Frac
		}
		fmt.Printf("%-12g %10.3f %10.3f %14.3f\n", f, u, it, ph)
	}

	fmt.Println("\nspatial locality (1.0 = accessed rows perfectly share 4KB blocks):")
	fmt.Printf("%-8s %6s %10s\n", "table", "kind", "locality")
	for _, r := range workload.SpatialLocality(inst, qs, 4096) {
		fmt.Printf("%-8d %6s %10.3f\n", r.Table, r.Kind, r.Locality)
	}
	return nil
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
