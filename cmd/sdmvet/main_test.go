package main

import (
	"bytes"
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

// writeModule lays out a scratch module for end-to-end driver runs.
func writeModule(t *testing.T, files map[string]string) string {
	t.Helper()
	dir := t.TempDir()
	files["go.mod"] = "module scratch\n\ngo 1.24\n"
	for name, src := range files {
		path := filepath.Join(dir, filepath.FromSlash(name))
		if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(src), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	return dir
}

func runIn(t *testing.T, dir string, args ...string) (code int, stdout, stderr string) {
	t.Helper()
	t.Chdir(dir)
	var out, errb bytes.Buffer
	code = run(args, &out, &errb)
	return code, out.String(), errb.String()
}

// TestEndToEndFindings is the acceptance drill: deliberately introducing
// a time.Now() into internal/cluster and an unsorted emitting map range
// into internal/metrics must fail the lint run with findings in the
// file:line: [analyzer] message format, and exit 1.
func TestEndToEndFindings(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"internal/cluster/clock.go": `package cluster

import "time"

func Tick() int64 { return time.Now().UnixNano() }
`,
		"internal/metrics/render.go": `package metrics

import (
	"fmt"
	"io"
)

func Render(w io.Writer, m map[string]float64) {
	for k, v := range m {
		fmt.Fprintf(w, "%s %f\n", k, v)
	}
}
`,
	})
	code, stdout, stderr := runIn(t, dir, "./...")
	if code != 1 {
		t.Fatalf("exit code = %d, want 1 (stderr: %s)", code, stderr)
	}
	lineFormat := regexp.MustCompile(`(?m)^[^\s:]+\.go:\d+: \[[a-z]+\] .+$`)
	for _, line := range strings.Split(strings.TrimSpace(stdout), "\n") {
		if !lineFormat.MatchString(line) {
			t.Errorf("finding line %q does not match file:line: [analyzer] message", line)
		}
	}
	wallRE := regexp.MustCompile(`internal/cluster/clock\.go:5: \[wallclock\] time\.Now`)
	mapRE := regexp.MustCompile(`internal/metrics/render\.go:10: \[maporder\] fmt\.Fprintf`)
	if !wallRE.MatchString(stdout) {
		t.Errorf("missing wallclock finding for internal/cluster, got:\n%s", stdout)
	}
	if !mapRE.MatchString(stdout) {
		t.Errorf("missing maporder finding for internal/metrics, got:\n%s", stdout)
	}
	if !strings.Contains(stderr, "2 finding(s)") {
		t.Errorf("stderr summary missing finding count: %q", stderr)
	}
}

// TestEndToEndClean: a module with no violations exits 0 and prints
// nothing.
func TestEndToEndClean(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"sim/sim.go": `package sim

import "sort"

func Keys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}
`,
	})
	code, stdout, stderr := runIn(t, dir, "./...")
	if code != 0 {
		t.Fatalf("exit code = %d, want 0 (stdout: %s, stderr: %s)", code, stdout, stderr)
	}
	if stdout != "" {
		t.Errorf("clean run printed findings: %s", stdout)
	}
}

// TestOnlySubset: -only restricts the suite, so the maporder violation
// passes a wallclock-only run.
func TestOnlySubset(t *testing.T) {
	dir := writeModule(t, map[string]string{
		"sim/sim.go": `package sim

import "fmt"

func Dump(m map[string]int) {
	for k := range m {
		fmt.Println(k)
	}
}
`,
	})
	code, stdout, _ := runIn(t, dir, "-only", "wallclock", "./...")
	if code != 0 {
		t.Fatalf("wallclock-only run: exit %d, stdout %s", code, stdout)
	}
	code, stdout, _ = runIn(t, dir, "-only", "maporder", "./...")
	if code != 1 || !strings.Contains(stdout, "[maporder]") {
		t.Fatalf("maporder-only run: exit %d, stdout %s", code, stdout)
	}
}

// TestUsageErrors: unknown analyzers and missing modules are usage/load
// failures (exit 2), distinct from findings (exit 1).
func TestUsageErrors(t *testing.T) {
	dir := writeModule(t, map[string]string{"sim/sim.go": "package sim\n"})
	code, _, stderr := runIn(t, dir, "-only", "nope", "./...")
	if code != 2 || !strings.Contains(stderr, "unknown analyzer") {
		t.Fatalf("unknown analyzer: exit %d, stderr %q", code, stderr)
	}
	plain := t.TempDir() // no go.mod anywhere above? use a pattern that cannot resolve instead
	_ = plain
	code, _, stderr = runIn(t, dir, "./does-not-exist/...")
	if code != 2 || !strings.Contains(stderr, "matches no directory") {
		t.Fatalf("bad pattern: exit %d, stderr %q", code, stderr)
	}
}

// TestList prints the suite with docs and exits 0.
func TestList(t *testing.T) {
	dir := writeModule(t, map[string]string{"sim/sim.go": "package sim\n"})
	code, stdout, _ := runIn(t, dir, "-list")
	if code != 0 {
		t.Fatalf("-list exit %d", code)
	}
	for _, name := range []string{"wallclock", "randsource", "maporder", "vtimecompare"} {
		if !strings.Contains(stdout, name) {
			t.Errorf("-list missing analyzer %s:\n%s", name, stdout)
		}
	}
}

// TestSelfRun: the driver over its own package in the real repo is clean
// (the cmd/ self-check the CI lint job relies on).
func TestSelfRun(t *testing.T) {
	wd, err := os.Getwd()
	if err != nil {
		t.Fatal(err)
	}
	var out, errb bytes.Buffer
	if code := run([]string{wd}, &out, &errb); code != 0 {
		t.Fatalf("sdmvet over cmd/sdmvet: exit %d\n%s%s", code, out.String(), errb.String())
	}
}
