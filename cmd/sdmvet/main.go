// Command sdmvet runs the repo's determinism-lint suite (internal/lint):
// custom analyzers that enforce the bit-identical virtual-time invariant
// statically — no wall-clock reads, no unseeded randomness, no map-order
// emission, no completion-order float folds — over the packages named on
// the command line.
//
// Usage:
//
//	sdmvet [-only analyzer,...] [-list] [-v] [packages]
//
// Packages are directories or dir/... patterns (default ./...), resolved
// within the enclosing module. Findings print as
//
//	file:line: [analyzer] message
//
// and any finding exits 1; load failures exit 2. Sanctioned violations
// are annotated in source with `//sdm:allow <analyzer> <reason>` on the
// offending line or the line above it.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"

	"sdm/internal/lint"
)

func main() {
	os.Exit(run(os.Args[1:], os.Stdout, os.Stderr))
}

func run(args []string, stdout, stderr io.Writer) int {
	fs := flag.NewFlagSet("sdmvet", flag.ContinueOnError)
	fs.SetOutput(stderr)
	only := fs.String("only", "", "comma-separated subset of analyzers to run (default all)")
	list := fs.Bool("list", false, "list the analyzers and exit")
	verbose := fs.Bool("v", false, "report packages checked and type-check warnings")
	fs.Usage = func() {
		fmt.Fprintf(stderr, "usage: sdmvet [-only analyzer,...] [-list] [-v] [packages]\n")
		fs.PrintDefaults()
	}
	if err := fs.Parse(args); err != nil {
		return 2
	}
	if *list {
		for _, a := range lint.All {
			fmt.Fprintf(stdout, "%-14s %s\n", a.Name, a.Doc)
		}
		return 0
	}
	analyzers := lint.All
	if *only != "" {
		analyzers = nil
		for _, name := range strings.Split(*only, ",") {
			a := lint.Lookup(strings.TrimSpace(name))
			if a == nil {
				fmt.Fprintf(stderr, "sdmvet: unknown analyzer %q\n", name)
				return 2
			}
			analyzers = append(analyzers, a)
		}
	}
	patterns := fs.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fmt.Fprintf(stderr, "sdmvet: %v\n", err)
		return 2
	}
	root, err := lint.FindModuleRoot(cwd)
	if err != nil {
		fmt.Fprintf(stderr, "sdmvet: %v\n", err)
		return 2
	}
	loader, err := lint.NewLoader(root)
	if err != nil {
		fmt.Fprintf(stderr, "sdmvet: %v\n", err)
		return 2
	}
	loader.IncludeTests = true
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fmt.Fprintf(stderr, "sdmvet: %v\n", err)
		return 2
	}
	if *verbose {
		for _, p := range pkgs {
			fmt.Fprintf(stderr, "sdmvet: checked %s (%d files)\n", p.Path, len(p.Files))
			for _, terr := range p.TypeErrors {
				fmt.Fprintf(stderr, "sdmvet: warning: %s: %v\n", p.Path, terr)
			}
		}
	}

	findings := lint.Run(pkgs, analyzers)
	for _, f := range findings {
		fmt.Fprintf(stdout, "%s:%d: [%s] %s\n", relPath(cwd, f.Pos.Filename), f.Pos.Line, f.Analyzer, f.Message)
	}
	if len(findings) > 0 {
		fmt.Fprintf(stderr, "sdmvet: %d finding(s)\n", len(findings))
		return 1
	}
	return 0
}

func relPath(base, path string) string {
	if rel, err := filepath.Rel(base, path); err == nil && !strings.HasPrefix(rel, "..") {
		return rel
	}
	return path
}
