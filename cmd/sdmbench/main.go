// Command sdmbench regenerates the paper's tables and figures.
//
// Usage:
//
//	sdmbench [-full] [-scale f] [-queries n] [-seed s] [-json]
//	         [-cpuprofile file] [-memprofile file] <experiment>...
//	sdmbench -list
//	sdmbench all
//
// -json emits the same results as a JSON array of {id, title, header,
// rows, notes} objects (redirect to BENCH_<rev>.json to track a benchmark
// trajectory across PRs).
//
// Each experiment prints rows mirroring the corresponding artifact of
// "Supporting Massive DLRM Inference through Software Defined Memory"
// (tables 1-11, figures 1-6, and the appendix ablations). Absolute numbers
// come from the simulator at a reduced capacity scale; the shapes (who
// wins, by what factor) reproduce the paper.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sync"

	"sdm/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdmbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdmbench", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiments and exit")
		full    = fs.Bool("full", false, "use the larger (slower) experiment scale")
		scale   = fs.Float64("scale", 0, "override model capacity scale (0 = preset)")
		queries = fs.Int("queries", 0, "override query count (0 = preset)")
		seed    = fs.Uint64("seed", 0, "override RNG seed (0 = preset)")
		par     = fs.Int("par", 0, "experiments to run concurrently (0 = all cores, 1 = sequential)")
		asJSON  = fs.Bool("json", false, "emit machine-readable results (JSON array) instead of tables")
		cpuProf = fs.String("cpuprofile", "", "write a wall-clock CPU profile of the experiment run to this file")
		memProf = fs.String("memprofile", "", "write a heap profile to this file at exit")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	switch {
	case *scale < 0 || *scale > 1:
		return fmt.Errorf("-scale must be in (0, 1] (0 = preset), got %g", *scale)
	case *queries < 0:
		return fmt.Errorf("-queries must be >= 0 (0 = preset), got %d", *queries)
	case *par < 0:
		return fmt.Errorf("-par must be >= 0 (0 = all cores), got %d", *par)
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given (try -list or 'all')")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	sc := experiments.Default()
	if *full {
		sc = experiments.Full()
	}
	if *scale > 0 {
		sc.ModelScale = *scale
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	workers := *par
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(ids) {
		workers = len(ids)
	}

	if *cpuProf != "" {
		pf, err := os.Create(*cpuProf)
		if err != nil {
			return err
		}
		if err := pprof.StartCPUProfile(pf); err != nil {
			pf.Close()
			return err
		}
		defer func() {
			pprof.StopCPUProfile()
			pf.Close()
		}()
	}

	// Experiments are independent simulations: run them across a worker
	// pool and print the results in request order. Each store additionally
	// fans its query operators across all cores via the sharded engine, so
	// the numbers are identical to a sequential run. Exclusive experiments
	// (allocation measurements over process-global MemStats) run afterwards
	// with the pool drained, so concurrent simulations can't pollute them.
	results := make([]experiments.Result, len(ids))
	errs := make([]error, len(ids))
	next := make(chan int)
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range next {
				results[i], errs[i] = experiments.Run(ids[i], sc)
			}
		}()
	}
	for i, id := range ids {
		if !experiments.Exclusive(id) {
			next <- i
		}
	}
	close(next)
	wg.Wait()
	for i, id := range ids {
		if experiments.Exclusive(id) {
			results[i], errs[i] = experiments.Run(id, sc)
		}
	}

	for i, id := range ids {
		if errs[i] != nil {
			return fmt.Errorf("%s: %w", id, errs[i])
		}
	}
	if *asJSON {
		reports := make([]experiments.Report, 0, len(ids))
		for _, res := range results {
			reports = append(reports, experiments.ReportOf(res))
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(reports); err != nil {
			return err
		}
	} else {
		for _, res := range results {
			res.Print(os.Stdout)
			fmt.Println()
		}
	}
	if *memProf != "" {
		mf, err := os.Create(*memProf)
		if err != nil {
			return err
		}
		runtime.GC() // settle the heap so the profile shows live bytes
		if err := pprof.WriteHeapProfile(mf); err != nil {
			mf.Close()
			return err
		}
		return mf.Close()
	}
	return nil
}
