// Command sdmbench regenerates the paper's tables and figures.
//
// Usage:
//
//	sdmbench [-full] [-scale f] [-queries n] [-seed s] <experiment>...
//	sdmbench -list
//	sdmbench all
//
// Each experiment prints rows mirroring the corresponding artifact of
// "Supporting Massive DLRM Inference through Software Defined Memory"
// (tables 1-11, figures 1-6, and the appendix ablations). Absolute numbers
// come from the simulator at a reduced capacity scale; the shapes (who
// wins, by what factor) reproduce the paper.
package main

import (
	"flag"
	"fmt"
	"os"

	"sdm/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "sdmbench:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("sdmbench", flag.ContinueOnError)
	var (
		list    = fs.Bool("list", false, "list experiments and exit")
		full    = fs.Bool("full", false, "use the larger (slower) experiment scale")
		scale   = fs.Float64("scale", 0, "override model capacity scale (0 = preset)")
		queries = fs.Int("queries", 0, "override query count (0 = preset)")
		seed    = fs.Uint64("seed", 0, "override RNG seed (0 = preset)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *list {
		for _, id := range experiments.IDs() {
			fmt.Printf("%-8s %s\n", id, experiments.Title(id))
		}
		return nil
	}
	ids := fs.Args()
	if len(ids) == 0 {
		fs.Usage()
		return fmt.Errorf("no experiment given (try -list or 'all')")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = experiments.IDs()
	}
	sc := experiments.Default()
	if *full {
		sc = experiments.Full()
	}
	if *scale > 0 {
		sc.ModelScale = *scale
	}
	if *queries > 0 {
		sc.Queries = *queries
	}
	if *seed != 0 {
		sc.Seed = *seed
	}
	for _, id := range ids {
		res, err := experiments.Run(id, sc)
		if err != nil {
			return fmt.Errorf("%s: %w", id, err)
		}
		res.Print(os.Stdout)
		fmt.Println()
	}
	return nil
}
