// Quickstart: build a scaled synthetic DLRM model, load its user
// embeddings into an SDM store backed by simulated Optane SSDs, and serve
// a handful of inference queries, printing the tiered-memory accounting.
package main

import (
	"fmt"
	"log"

	"sdm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A miniature M1: the paper's table shapes at ~1/100000 capacity.
	cfg := sdm.M1()
	cfg.NumUserTables = 8
	cfg.NumItemTables = 4
	cfg.ItemBatch = 16
	inst, err := sdm.Build(cfg, 1e-4, 42)
	if err != nil {
		return err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return err
	}
	fmt.Printf("model %s: %d tables, %.1f MB scaled (%.0f GB at paper scale)\n",
		cfg.Name, len(inst.Tables), float64(inst.TotalBytes())/(1<<20),
		float64(cfg.TotalBytes)/(1<<30))

	// Open the SDM store: user tables go to Optane SSDs behind the FM row
	// cache; SGL sub-block reads enabled.
	var clk sdm.Clock
	store, err := sdm.Open(inst, tables, sdm.Config{
		SMTech:           sdm.OptaneSSD,
		Ring:             sdm.RingConfig{SGL: true},
		CacheBytes:       8 << 20,
		PooledCacheBytes: 1 << 20,
	}, &clk)
	if err != nil {
		return err
	}
	fmt.Printf("model loaded to SM in %v (virtual), %d MB written\n",
		store.Stats().LoadDuration, store.Stats().LoadSMBytes>>20)

	gen, err := sdm.NewGenerator(inst, sdm.WorkloadConfig{Seed: 7, NumUsers: 200})
	if err != nil {
		return err
	}

	now := store.LoadDone()
	for i := 0; i < 50; i++ {
		q := gen.Next()
		outs := store.AllocOutputs(q)
		res, err := store.PoolQuery(now, q, outs)
		if err != nil {
			return err
		}
		if i%10 == 0 {
			fmt.Printf("query %2d: userIO=%8v cpu=%8v smReads=%d\n",
				i, (res.UserIODone - now).Duration(), res.CPUTime, res.SMReads)
		}
	}

	cs := store.CacheStats()
	ds := store.DeviceStats()
	fmt.Printf("\nFM row cache:   hit rate %.1f%% (%d items, %d KB resident)\n",
		cs.HitRate()*100, cs.Items, (cs.UsedBytes+cs.MetaBytes)>>10)
	fmt.Printf("pooled cache:   hit rate %.1f%%\n", store.PooledStats().HitRate()*100)
	fmt.Printf("SM devices:     %d reads, read amplification %.1fx, bus saved %.0f%% (SGL)\n",
		ds.Reads, ds.ReadAmplification(), ds.BusSavings()*100)
	return nil
}
