// Fleet routing policies (§4.2 / Fig. 4c at serving time): one shared Zipf
// user population split across a 4-host SDM fleet by a front-end router.
// Sticky consistent hashing pins each user to a replica, concentrating
// their embedding rows in that replica's FM cache — a higher measured hit
// rate than round-robin on the same trace. The second half kills a host
// mid-run: the consistent ring reroutes only the dead host's users, whose
// queries then warm the survivors' caches (§A.4 warmup spike).
package main

import (
	"fmt"
	"log"

	"sdm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := sdm.M1()
	cfg.NumUserTables = 8
	cfg.NumItemTables = 4
	cfg.ItemBatch = 8
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	inst, err := sdm.Build(cfg, 1.5e-4, 42)
	if err != nil {
		return err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return err
	}

	const hosts = 4
	scfg := sdm.Config{
		Seed: 42, SMTech: sdm.NandFlash,
		Ring: sdm.RingConfig{SGL: true}, CacheBytes: 1 << 20,
	}
	hcfg := sdm.HostConfig{Spec: sdm.HWSS(), InterOp: true, Seed: 42}

	// Same trace, same seeds, different routing policy.
	measure := func(r sdm.Router, fail int) (*sdm.FleetResult, error) {
		hs, err := sdm.NewFleetHosts(inst, tables, hosts, &scfg, hcfg)
		if err != nil {
			return nil, err
		}
		fleet, err := sdm.NewFleet(hs, r, sdm.FleetConfig{Seed: 42})
		if err != nil {
			return nil, err
		}
		gen, err := sdm.NewGenerator(inst, sdm.WorkloadConfig{Seed: 42, NumUsers: 2000, UserAlpha: 0.8})
		if err != nil {
			return nil, err
		}
		fleet.SetGenerator(gen)
		if _, err := fleet.Run(300, 2000); err != nil { // warm the caches
			return nil, err
		}
		if fail >= 0 {
			if err := fleet.ScheduleFailure(fail, 0.5); err != nil {
				return nil, err
			}
		}
		return fleet.Run(300, 2000)
	}

	rr, err := measure(sdm.NewRoundRobin(), -1)
	if err != nil {
		return err
	}
	sticky, err := measure(sdm.NewSticky(hosts, 64), -1)
	if err != nil {
		return err
	}
	fmt.Println("routing policy comparison (same trace):")
	fmt.Printf("  %s\n  %s\n", rr, sticky)
	fmt.Printf("  sticky hit-rate uplift: %+.1fpp (Fig. 4c realized at serving time)\n\n",
		(sticky.HitRate-rr.HitRate)*100)

	failed, err := measure(sdm.NewSticky(hosts, 64), 1)
	if err != nil {
		return err
	}
	fmt.Println("failure drill (kill host 1 mid-run):")
	fmt.Printf("  rerouted users: %d (only the dead host's users move — consistent hashing)\n",
		failed.ReroutedUsers)
	fmt.Printf("  their warmup: latency %.2fx, hit rate %.1fpp colder (§A.4)\n",
		failed.WarmupSpike, failed.WarmupHitDrop*100)
	return nil
}
