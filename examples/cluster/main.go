// Fleet routing policies (§4.2 / Fig. 4c at serving time): one shared Zipf
// user population split across a 4-host SDM fleet by a front-end router.
// Sticky consistent hashing pins each user to a replica, concentrating
// their embedding rows in that replica's FM cache — a higher measured hit
// rate than round-robin on the same trace. The second half kills a host
// mid-run: the consistent ring reroutes only the dead host's users, whose
// queries then warm the survivors' caches (§A.4 warmup spike). The last
// act is SLO-aware: a custom scorer-weighted router blends sticky
// affinity with queue avoidance, and per-class token-bucket admission
// bounds a 2x-overload tail at a reported shed share.
package main

import (
	"bytes"
	"fmt"
	"log"
	"strings"

	"sdm"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := sdm.M1()
	cfg.NumUserTables = 8
	cfg.NumItemTables = 4
	cfg.ItemBatch = 8
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	inst, err := sdm.Build(cfg, 1.5e-4, 42)
	if err != nil {
		return err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return err
	}

	const hosts = 4
	scfg := sdm.Config{
		Seed: 42, SMTech: sdm.NandFlash,
		Ring: sdm.RingConfig{SGL: true}, CacheBytes: 1 << 20,
	}
	hcfg := sdm.HostConfig{Spec: sdm.HWSS(), InterOp: true, Seed: 42}

	// Same trace, same seeds, different routing policy.
	measure := func(r sdm.Router, fail int) (*sdm.FleetResult, error) {
		hs, err := sdm.NewFleetHosts(inst, tables, hosts, &scfg, hcfg)
		if err != nil {
			return nil, err
		}
		fleet, err := sdm.NewFleet(hs, r, sdm.FleetConfig{Seed: 42})
		if err != nil {
			return nil, err
		}
		gen, err := sdm.NewGenerator(inst, sdm.WorkloadConfig{Seed: 42, NumUsers: 2000, UserAlpha: 0.8})
		if err != nil {
			return nil, err
		}
		fleet.SetGenerator(gen)
		if _, err := fleet.Run(300, 2000); err != nil { // warm the caches
			return nil, err
		}
		if fail >= 0 {
			if err := fleet.ScheduleFailure(fail, 0.5); err != nil {
				return nil, err
			}
		}
		return fleet.Run(300, 2000)
	}

	rr, err := measure(sdm.NewRoundRobin(), -1)
	if err != nil {
		return err
	}
	sticky, err := measure(sdm.NewSticky(hosts, 64), -1)
	if err != nil {
		return err
	}
	fmt.Println("routing policy comparison (same trace):")
	fmt.Printf("  %s\n  %s\n", rr, sticky)
	fmt.Printf("  sticky hit-rate uplift: %+.1fpp (Fig. 4c realized at serving time)\n\n",
		(sticky.HitRate-rr.HitRate)*100)

	failed, err := measure(sdm.NewSticky(hosts, 64), 1)
	if err != nil {
		return err
	}
	fmt.Println("failure drill (kill host 1 mid-run):")
	fmt.Printf("  rerouted users: %d (only the dead host's users move — consistent hashing)\n",
		failed.ReroutedUsers)
	fmt.Printf("  their warmup: latency %.2fx, hit rate %.1fpp colder (§A.4)\n\n",
		failed.WarmupSpike, failed.WarmupHitDrop*100)

	// SLO-aware serving: compose a router from weighted scorers (sticky
	// affinity blended with queue avoidance), tag queries with two SLO
	// classes, and gate each class's admitted rate with a token bucket.
	// The overloaded open-loop tail collapses to the admitted tail; the
	// cost is the per-class shed share the result accounts.
	weighted, err := sdm.NewWeightedRouter("affinity+queue",
		sdm.ScorerWeight{Scorer: sdm.NewAffinityScorer(hosts, 64), Weight: 1.0},
		sdm.ScorerWeight{Scorer: sdm.NewQueueScorer(), Weight: 1.5},
	)
	if err != nil {
		return err
	}
	overload := func(r sdm.Router, admit *sdm.AdmitConfig) (*sdm.FleetResult, error) {
		hs, err := sdm.NewFleetHosts(inst, tables, hosts, &scfg, hcfg)
		if err != nil {
			return nil, err
		}
		fleet, err := sdm.NewFleet(hs, r, sdm.FleetConfig{Seed: 42})
		if err != nil {
			return nil, err
		}
		if admit != nil {
			if err := fleet.SetAdmission(*admit); err != nil {
				return nil, err
			}
		}
		gen, err := sdm.NewGenerator(inst, sdm.WorkloadConfig{
			Seed: 42, NumUsers: 2000, UserAlpha: 0.8, SLOClasses: 2,
		})
		if err != nil {
			return nil, err
		}
		fleet.SetGenerator(gen)
		return fleet.Run(12000, 3000)
	}
	open, err := overload(weighted, nil)
	if err != nil {
		return err
	}
	gate := sdm.AdmitConfig{Classes: []sdm.ClassAdmit{
		{Name: "gold", RatePerSec: 2500, Burst: 25},
		{Name: "best-effort", RatePerSec: 1500, Burst: 15},
	}}
	gated, err := overload(weighted, &gate)
	if err != nil {
		return err
	}
	fmt.Println("SLO-aware overload (scorer-weighted router, 2 SLO classes):")
	fmt.Printf("  open loop:  p99 %.2fms at %.0f qps offered\n",
		open.Latency.P99()*1e3, open.OfferedQPS)
	fmt.Printf("  admission:  p99 %.2fms, shed %d of %d, class-share Jain=%.3f\n",
		gated.Latency.P99()*1e3, gated.Shed, gated.Queries, gated.ClassFairness)
	for _, c := range gated.Classes {
		fmt.Printf("    %-12s offered=%4d shed=%4d p99=%.2fms\n",
			c.Name, c.Offered, c.Shed, c.Latency.P99()*1e3)
	}

	// Decision tracing: rerun the gated overload with the observability
	// layer on. Every routing and admission verdict is recorded with its
	// reasoning (per-scorer score parts, rejected alternatives, bucket
	// levels) and merged in virtual-time order — the trace is
	// bit-identical at any HostWorkers setting, like the results. At
	// TraceCounterfactual each route row also carries what the runner-up
	// host would likely have cost.
	hs, err := sdm.NewFleetHosts(inst, tables, hosts, &scfg, hcfg)
	if err != nil {
		return err
	}
	fleet, err := sdm.NewFleet(hs, weighted, sdm.FleetConfig{Seed: 42})
	if err != nil {
		return err
	}
	if err := fleet.SetAdmission(gate); err != nil {
		return err
	}
	if err := fleet.SetTrace(sdm.TraceConfig{Level: sdm.TraceCounterfactual}); err != nil {
		return err
	}
	gen, err := sdm.NewGenerator(inst, sdm.WorkloadConfig{
		Seed: 42, NumUsers: 2000, UserAlpha: 0.8, SLOClasses: 2,
	})
	if err != nil {
		return err
	}
	fleet.SetGenerator(gen)
	if _, err := fleet.Run(12000, 3000); err != nil {
		return err
	}
	sum, _ := fleet.TraceSummary()
	fmt.Println("\ndecision trace (same gated run, observability on):")
	fmt.Printf("  %s\n", sum)
	for _, ev := range fleet.TraceEvents() {
		if ev.Kind != "route" || !ev.Route.Diverted {
			continue
		}
		d := ev.Route
		fmt.Printf("  first diverted route: seq=%d user=%d host %d -> %d (score %.2f, %d alts recorded)\n",
			d.Seq, d.User, d.Prev, d.Chosen, d.Score, len(d.Alts))
		break
	}
	fmt.Printf("  full JSONL stream: fleet.WriteTrace(w) — %d events, summary line last\n",
		sum.Events)

	// Metrics plane: rerun the gated overload with the instrument
	// registry attached. Hosts, stores, and the front-end register typed
	// instruments once; the fleet samples them on virtual-time boundaries
	// and the rendered series — OpenMetrics text or JSONL — is
	// byte-identical at any HostWorkers setting. Print the three most
	// load-bearing series of an overload investigation: the admitted
	// per-window tail, who is shedding, and how FM-served each host runs.
	hs, err = sdm.NewFleetHosts(inst, tables, hosts, &scfg, hcfg)
	if err != nil {
		return err
	}
	fleet, err = sdm.NewFleet(hs, weighted, sdm.FleetConfig{Seed: 42})
	if err != nil {
		return err
	}
	if err := fleet.SetAdmission(gate); err != nil {
		return err
	}
	if err := fleet.SetMetrics(sdm.MetricsConfig{}); err != nil {
		return err
	}
	gen, err = sdm.NewGenerator(inst, sdm.WorkloadConfig{
		Seed: 42, NumUsers: 2000, UserAlpha: 0.8, SLOClasses: 2,
	})
	if err != nil {
		return err
	}
	fleet.SetGenerator(gen)
	if _, err := fleet.Run(12000, 3000); err != nil {
		return err
	}
	var buf bytes.Buffer
	if err := fleet.WriteMetrics(&buf); err != nil {
		return err
	}
	fmt.Println("\nmetrics plane (same gated run, instruments on):")
	for _, prefix := range []string{
		"sdm_fleet_window_p99_latency_seconds ",
		"sdm_fleet_class_shed_total",
		"sdm_host_fm_served_ratio",
	} {
		n := 0
		for _, line := range strings.Split(buf.String(), "\n") {
			if strings.HasPrefix(line, prefix) {
				fmt.Printf("  %s\n", line)
				n++
			}
			if n == 4 {
				break
			}
		}
	}
	fmt.Printf("  full export: fleet.WriteMetrics(w) — %d bytes of OpenMetrics, same bytes at any worker count\n",
		buf.Len())
	return nil
}
