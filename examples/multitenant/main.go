// Multi-tenancy (the paper's §5.3 / Tables 10-11 scenario): experimental
// models co-locate on accelerator hosts. Without SDM, DRAM capacity limits
// co-location and leaves compute idle; with SM the capacity bound lifts
// and utilization — hence fleet perf/watt — improves. This example runs
// two small models against one shared-clock host pair and then prints the
// sizing and fleet rooflines.
package main

import (
	"fmt"
	"log"

	"sdm"
	"sdm/internal/power"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Two experimental models sharing one host's SDM capacity.
	var clk sdm.Clock
	for i := 0; i < 2; i++ {
		cfg := sdm.M3()
		cfg.NumUserTables = 6
		cfg.NumItemTables = 3
		cfg.ItemBatch = 8
		cfg.NumMLPLayers = 4
		cfg.AvgMLPWidth = 128
		inst, err := sdm.Build(cfg, 3e-6, uint64(10+i))
		if err != nil {
			return err
		}
		tables, err := inst.Materialize()
		if err != nil {
			return err
		}
		store, err := sdm.Open(inst, tables, sdm.Config{
			SMTech: sdm.OptaneSSD, NumDevices: 9, // Table 10's sizing
			Ring: sdm.RingConfig{SGL: true}, CacheBytes: 4 << 20,
		}, &clk)
		if err != nil {
			return err
		}
		gen, err := sdm.NewGenerator(inst, sdm.WorkloadConfig{Seed: uint64(20 + i), NumUsers: 300})
		if err != nil {
			return err
		}
		host, err := sdm.NewHost(inst, store, tables, gen, &clk, sdm.HostConfig{
			Spec: sdm.HWF(), InterOp: true, Seed: uint64(30 + i),
		})
		if err != nil {
			return err
		}
		res, err := host.RunOpenLoop(40, 200) // low-traffic experimental model
		if err != nil {
			return err
		}
		fmt.Printf("experimental model %d on shared host: %v\n", i, res)
	}

	// Table 10: SM sizing for the full-scale M3.
	sz, err := power.Size(power.SizingInput{
		QPS: 3150, UserTables: 2000, PoolingPF: 30,
		EmbDimBytes: 512, CacheHitRate: 0.80, Device: sdm.OptaneSSD,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nM3 sizing: %.0f MIOPS cold, %.1f MIOPS sustained at 80%% hit → %d Optane SSDs (paper: 9)\n",
		sz.ColdIOPS/1e6, sz.SustainedIOPS/1e6, sz.NumSSDs)

	// Table 11: fleet power with and without SDM-enabled co-location.
	without, with, err := power.MultiTenancy(power.MultiTenancyInput{
		HostDRAMBytes:         128 << 30,
		HostSMBytes:           300 << 30,
		ModelDRAMBytes:        100 << 30,
		ModelComputeFrac:      0.09,
		BaseUtilization:       0.54,
		BasePower:             1.0,
		SDMExtraPower:         0.01,
		NonEmbeddingDRAMBytes: 28 << 30,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nwithout SDM: %d model/host, utilization %.2f, fleet power 1.00\n",
		without.ModelsPerHost, without.Utilization)
	fmt.Printf("with SDM:    %d models/host, utilization %.2f, fleet power %.2f (saving %.0f%%, paper: 29%%)\n",
		with.ModelsPerHost, with.Utilization, with.FleetPower, (1-with.FleetPower)*100)
	return nil
}
