// Tiered serving (the paper's §5.1 / Table 8 scenario): serve an M1-shaped
// model either from DRAM on a large dual-socket host, or from Nand Flash
// through SDM on a small single-socket host, and compare sustainable QPS
// at a p95 latency budget plus the fleet-level power implication.
package main

import (
	"fmt"
	"log"
	"time"

	"sdm"
	"sdm/internal/power"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// M1 shape with trimmed table counts; the 31-layer/300-wide dense
	// stack is kept so CPU hosts are compute-bound like the paper's.
	cfg := sdm.M1()
	cfg.NumUserTables = 8
	cfg.NumItemTables = 4
	cfg.ItemBatch = 16
	inst, err := sdm.Build(cfg, 1e-4, 1)
	if err != nil {
		return err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return err
	}
	const budget = 25 * time.Millisecond

	// Baseline: every table flat in DRAM on HW-L.
	baseQPS, baseRes, err := measure(inst, tables, nil, sdm.HWL())
	if err != nil {
		return err
	}
	fmt.Printf("HW-L  (DRAM only):  max qps %6.0f  %v\n", baseQPS, baseRes)

	// SDM: user tables on 2x Nand Flash behind the FM cache, HW-SS host.
	scfg := &sdm.Config{
		SMTech:     sdm.NandFlash,
		Ring:       sdm.RingConfig{SGL: true},
		CacheBytes: 32 << 20,
	}
	sdmQPS, sdmRes, err := measure(inst, tables, scfg, sdm.HWSS())
	if err != nil {
		return err
	}
	fmt.Printf("HW-SS (SDM, Nand):  max qps %6.0f  %v\n", sdmQPS, sdmRes)

	// Fleet arithmetic at a fixed total demand (Eq. 5-7).
	total := baseQPS * 1200
	base, err := power.Provision(power.Scenario{Name: "HW-L", QPSPerHost: baseQPS, HostPower: 1.0}, total)
	if err != nil {
		return err
	}
	tiered, err := power.Provision(power.Scenario{Name: "HW-SS+SDM", QPSPerHost: sdmQPS, HostPower: 0.4}, total)
	if err != nil {
		return err
	}
	fmt.Printf("\nfleet at %.0f total QPS:\n", total)
	fmt.Printf("  HW-L:       %5d hosts, power %6.0f\n", base.Hosts, base.TotalPower)
	fmt.Printf("  HW-SS+SDM:  %5d hosts, power %6.0f\n", tiered.Hosts, tiered.TotalPower)
	fmt.Printf("  power saving: %.0f%% (paper: 20%%)\n", power.Savings(base, tiered)*100)
	return nil
}

func measure(inst *sdm.Instance, tables []*sdm.Table, scfg *sdm.Config, sku sdm.HostSpec) (float64, sdm.HostResult, error) {
	var clk sdm.Clock
	var store *sdm.Store
	if scfg != nil {
		s, err := sdm.Open(inst, tables, *scfg, &clk)
		if err != nil {
			return 0, sdm.HostResult{}, err
		}
		store = s
	}
	gen, err := sdm.NewGenerator(inst, sdm.WorkloadConfig{Seed: 2, NumUsers: 1000})
	if err != nil {
		return 0, sdm.HostResult{}, err
	}
	host, err := sdm.NewHost(inst, store, tables, gen, &clk, sdm.HostConfig{
		Spec: sku, InterOp: true, Seed: 2,
	})
	if err != nil {
		return 0, sdm.HostResult{}, err
	}
	// Warm the caches, then search for max QPS at the latency budget.
	if _, err := host.RunOpenLoop(50, 300); err != nil {
		return 0, sdm.HostResult{}, err
	}
	return host.MaxQPSAtLatency(0.95, 25*time.Millisecond, 5, 100000, 250)
}
