// Avoiding scale-out (the paper's §5.2 / Table 9 scenario): an M2-shaped
// model on accelerator hosts whose user embeddings do not fit host DRAM.
// Three deployments compete: scale-out to remote shards, SDM on Nand
// Flash, and SDM on Optane SSD. Optane keeps the user path off the
// critical path (Eq. 3) and avoids the scale-out fleet entirely.
package main

import (
	"fmt"
	"log"
	"time"

	"sdm"
	"sdm/internal/power"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cfg := sdm.M2()
	cfg.NumUserTables = 10
	cfg.NumItemTables = 5
	cfg.ItemBatch = 16
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 128
	inst, err := sdm.Build(cfg, 1e-4, 3)
	if err != nil {
		return err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return err
	}
	const budget = 20 * time.Millisecond

	scaleOutQPS, _, err := measure(inst, tables, nil, sdm.HWAN(), true)
	if err != nil {
		return err
	}
	nandQPS, _, err := measure(inst, tables, &sdm.Config{
		SMTech: sdm.NandFlash, Ring: sdm.RingConfig{SGL: true}, CacheBytes: 8 << 20,
	}, sdm.HWAN(), false)
	if err != nil {
		return err
	}
	optQPS, optRes, err := measure(inst, tables, &sdm.Config{
		SMTech: sdm.OptaneSSD, Ring: sdm.RingConfig{SGL: true}, CacheBytes: 8 << 20,
	}, sdm.HWAO(), false)
	if err != nil {
		return err
	}

	fmt.Printf("HW-AN + ScaleOut: max qps %7.0f\n", scaleOutQPS)
	fmt.Printf("HW-AN + SDM:      max qps %7.0f (Nand latency forces underutilization)\n", nandQPS)
	fmt.Printf("HW-AO + SDM:      max qps %7.0f (hit rate %.0f%%)\n", optQPS, optRes.CacheHitRate*100)

	total := scaleOutQPS * 1500
	so, err := power.Provision(power.Scenario{
		Name: "scale-out", QPSPerHost: scaleOutQPS, HostPower: 1.0,
		CompanionPowerPerHost: 0.05, CompanionHostsPerHost: 0.2,
	}, total)
	if err != nil {
		return err
	}
	opt, err := power.Provision(power.Scenario{Name: "HW-AO+SDM", QPSPerHost: optQPS, HostPower: 1.0}, total)
	if err != nil {
		return err
	}
	fmt.Printf("\nfleet at %.0f total QPS:\n", total)
	fmt.Printf("  scale-out:  %5d+%4d hosts, power %6.0f\n", so.Hosts, so.Companions, so.TotalPower)
	fmt.Printf("  HW-AO+SDM:  %5d hosts,      power %6.0f\n", opt.Hosts, opt.TotalPower)
	fmt.Printf("  power saving: %.1f%% (paper: 5%%)\n", power.Savings(so, opt)*100)
	return nil
}

func measure(inst *sdm.Instance, tables []*sdm.Table, scfg *sdm.Config, sku sdm.HostSpec, remote bool) (float64, sdm.HostResult, error) {
	var clk sdm.Clock
	var store *sdm.Store
	if scfg != nil {
		s, err := sdm.Open(inst, tables, *scfg, &clk)
		if err != nil {
			return 0, sdm.HostResult{}, err
		}
		store = s
	}
	gen, err := sdm.NewGenerator(inst, sdm.WorkloadConfig{Seed: 4, NumUsers: 1000})
	if err != nil {
		return 0, sdm.HostResult{}, err
	}
	host, err := sdm.NewHost(inst, store, tables, gen, &clk, sdm.HostConfig{
		Spec: sku, InterOp: true, RemoteUserPath: remote, Seed: 4,
	})
	if err != nil {
		return 0, sdm.HostResult{}, err
	}
	if _, err := host.RunOpenLoop(50, 300); err != nil {
		return 0, sdm.HostResult{}, err
	}
	return host.MaxQPSAtLatency(0.95, 20*time.Millisecond, 5, 200000, 250)
}
