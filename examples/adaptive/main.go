// Example adaptive contrasts static and adaptive tiering under workload
// drift: two identical SDM hosts serve the same non-stationary trace, a
// hot-set rotation fires mid-run, and only the adaptive host — telemetry,
// drift-aware re-placement, bandwidth-capped FM↔SM migration — recovers
// its fast-memory hit rate.
package main

import (
	"fmt"
	"log"
	"time"

	"sdm"
)

func main() {
	// A compact model whose user tables are equal-sized, so the DRAM
	// budget fits exactly the two-table spotlight and a rotation forces
	// real migrations.
	cfg := sdm.M1()
	cfg.NumUserTables = 6
	cfg.NumItemTables = 2
	cfg.ItemBatch = 4
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	cfg.TotalBytes = 16 << 20
	inst, err := sdm.Build(cfg, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	const perTable = 1 << 20
	for i := 0; i < cfg.NumUserTables; i++ {
		inst.Tables[i].Rows = perTable / int64(inst.Tables[i].RowBytes())
		// The offline profile reflects yesterday's traffic: the phase-0
		// spotlight (tables 0, 1) profiles hottest, so the static Table-5
		// plan places exactly those in FM — right up until the rotation.
		if i < 2 {
			inst.Tables[i].PoolingFactor = 24
		} else {
			inst.Tables[i].PoolingFactor = 12
		}
	}
	tables, err := inst.Materialize()
	if err != nil {
		log.Fatal(err)
	}

	run := func(adaptive bool) (*sdm.FleetResult, sdm.AdaptStats) {
		scfg := sdm.Config{
			Seed:       42,
			SMTech:     sdm.NandFlash,
			Ring:       sdm.RingConfig{SGL: true},
			CacheBytes: 128 << 10,
			ReserveSM:  true,
			Placement: sdm.PlacementConfig{
				Policy:         sdm.FixedFMWithCache,
				UserTablesOnly: true,
				DRAMBudget:     perTable*2 + perTable/2,
			},
		}
		hosts, err := sdm.NewFleetHosts(inst, tables, 1, &scfg, sdm.HostConfig{
			Spec: sdm.HWSS(), InterOp: true, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		var adapters []*sdm.Adapter
		if adaptive {
			adapters, err = sdm.AttachAdaptive(hosts, sdm.AdaptConfig{
				Interval:             150 * time.Millisecond,
				BandwidthBytesPerSec: 8 << 20, // the migration bandwidth cap
				ChunkBytes:           32 << 10,
			})
			if err != nil {
				log.Fatal(err)
			}
		}
		fleet, err := sdm.NewFleet(hosts, sdm.NewRoundRobin(), sdm.FleetConfig{Seed: 42, Windows: 10})
		if err != nil {
			log.Fatal(err)
		}
		gen, err := sdm.NewGenerator(inst, sdm.WorkloadConfig{
			Seed: 42, NumUsers: 600, UserAlpha: 0.9,
			Drift: sdm.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
		})
		if err != nil {
			log.Fatal(err)
		}
		fleet.SetGenerator(gen)
		if _, err := fleet.Run(300, 600); err != nil { // warm + converge
			log.Fatal(err)
		}
		if err := fleet.ScheduleDrift(0.4); err != nil { // rotate mid-run
			log.Fatal(err)
		}
		res, err := fleet.Run(300, 1200)
		if err != nil {
			log.Fatal(err)
		}
		return res, sdm.AdapterStats(adapters)
	}

	static, _ := run(false)
	adaptive, astats := run(true)

	fmt.Printf("hot-set rotation at t=%.2fs — FM-served rate per window:\n", adaptive.DriftAt.Seconds())
	fmt.Printf("%-8s %10s %10s\n", "window", "static", "adaptive")
	for i := range static.Windows {
		fmt.Printf("w%-7d %9.1f%% %9.1f%%\n", i, static.Windows[i].FMRate*100, adaptive.Windows[i].FMRate*100)
	}
	fmt.Printf("\nadaptive control loop: %s\n", astats)
	fmt.Printf("static  final p99 = %.2fms\n", static.Windows[len(static.Windows)-1].P99*1e3)
	fmt.Printf("adaptive final p99 = %.2fms\n", adaptive.Windows[len(adaptive.Windows)-1].P99*1e3)
}
