// Example adaptive contrasts static and adaptive tiering under workload
// drift: identical SDM hosts serve the same non-stationary trace, a
// hot-set rotation fires mid-run, and only the adaptive hosts — telemetry,
// drift-aware re-placement, bandwidth-capped FM↔SM migration — recover
// their fast-memory hit rate. Two adaptive granularities run side by side:
// whole-table swaps, and hot-row-range migration, which reaches the same
// FM-served rate while moving a fraction of the bytes. A fourth,
// two-replica run adds fleet coordination: staggered migration windows
// under one shared bandwidth cap plus wear-aware packing against the §3
// endurance budget, with the fleet's SM write spend and projected DWPD
// utilization reported alongside.
package main

import (
	"fmt"
	"log"
	"time"

	"sdm"
)

func main() {
	// A compact model whose user tables are equal-sized, so the DRAM
	// budget fits exactly the two-table spotlight and a rotation forces
	// real migrations. Row popularity is sharply skewed and the workload
	// is spatial (hot rows cluster at each table's head), which is the
	// structure row-range migration exploits.
	cfg := sdm.M1()
	cfg.NumUserTables = 6
	cfg.NumItemTables = 2
	cfg.ItemBatch = 4
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	cfg.TotalBytes = 16 << 20
	inst, err := sdm.Build(cfg, 1, 42)
	if err != nil {
		log.Fatal(err)
	}
	const perTable = 1 << 20
	for i := 0; i < cfg.NumUserTables; i++ {
		inst.Tables[i].Rows = perTable / int64(inst.Tables[i].RowBytes())
		inst.Tables[i].Alpha = 1.3
		// The offline profile reflects yesterday's traffic: the phase-0
		// spotlight (tables 0, 1) profiles hottest, so the static Table-5
		// plan places exactly those in FM — right up until the rotation.
		if i < 2 {
			inst.Tables[i].PoolingFactor = 24
		} else {
			inst.Tables[i].PoolingFactor = 12
		}
	}
	tables, err := inst.Materialize()
	if err != nil {
		log.Fatal(err)
	}

	const (
		static = iota
		byTable
		byRange
		coordinated
	)
	run := func(mode int) (*sdm.FleetResult, sdm.AdaptStats) {
		nHosts := 1
		if mode == coordinated {
			nHosts = 2
		}
		scfg := sdm.Config{
			Seed:                42,
			SMTech:              sdm.NandFlash,
			Ring:                sdm.RingConfig{SGL: true},
			CacheBytes:          128 << 10,
			ReserveSM:           true,
			MigrationRangeBytes: 128 << 10,
			Placement: sdm.PlacementConfig{
				Policy:         sdm.FixedFMWithCache,
				UserTablesOnly: true,
				DRAMBudget:     perTable*2 + perTable/2,
			},
		}
		hosts, err := sdm.NewFleetHosts(inst, tables, nHosts, &scfg, sdm.HostConfig{
			Spec: sdm.HWSS(), InterOp: true, Seed: 42,
		})
		if err != nil {
			log.Fatal(err)
		}
		var adapters []*sdm.Adapter
		if mode != static {
			gran := sdm.AdaptTables
			if mode == byRange || mode == coordinated {
				gran = sdm.AdaptRanges
			}
			acfg := sdm.AdaptConfig{
				Interval:             150 * time.Millisecond,
				BandwidthBytesPerSec: 8 << 20, // the migration bandwidth cap
				ChunkBytes:           32 << 10,
				Granularity:          gran,
				PaybackSeconds:       3,
			}
			if mode == coordinated {
				// Staggered migration windows: the replicas take turns under
				// one shared cap, and the packing greedy discounts churny
				// candidates against the shared §3 endurance budget.
				acfg.WearDaysPerSecond = 0.01
				adapters, _, err = sdm.AttachCoordinated(hosts, acfg, sdm.CoordConfig{
					Slot:                 50 * time.Millisecond,
					BandwidthBytesPerSec: 8 << 20,
				})
			} else {
				adapters, err = sdm.AttachAdaptive(hosts, acfg)
			}
			if err != nil {
				log.Fatal(err)
			}
		}
		fleet, err := sdm.NewFleet(hosts, sdm.NewRoundRobin(), sdm.FleetConfig{Seed: 42, Windows: 10})
		if err != nil {
			log.Fatal(err)
		}
		gen, err := sdm.NewGenerator(inst, sdm.WorkloadConfig{
			Seed: 42, NumUsers: 600, UserAlpha: 0.9, Spatial: true,
			Drift: sdm.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
		})
		if err != nil {
			log.Fatal(err)
		}
		fleet.SetGenerator(gen)
		if _, err := fleet.Run(300, 600); err != nil { // warm + converge
			log.Fatal(err)
		}
		if err := fleet.ScheduleDrift(0.4); err != nil { // rotate mid-run
			log.Fatal(err)
		}
		res, err := fleet.Run(300, 1200)
		if err != nil {
			log.Fatal(err)
		}
		return res, sdm.AdapterStats(adapters)
	}

	staticRes, _ := run(static)
	tableRes, tableStats := run(byTable)
	rangeRes, rangeStats := run(byRange)
	coordRes, coordStats := run(coordinated)

	fmt.Printf("hot-set rotation at t=%.2fs — FM-served rate per window:\n", tableRes.DriftAt.Seconds())
	fmt.Printf("%-8s %10s %12s %12s %12s\n", "window", "static", "by-table", "by-range", "coord(2x)")
	for i := range staticRes.Windows {
		fmt.Printf("w%-7d %9.1f%% %11.1f%% %11.1f%% %11.1f%%\n", i,
			staticRes.Windows[i].FMRate*100, tableRes.Windows[i].FMRate*100,
			rangeRes.Windows[i].FMRate*100, coordRes.Windows[i].FMRate*100)
	}
	fmt.Printf("\nby-table control loop: %s\n", tableStats)
	fmt.Printf("by-range control loop: %s\n", rangeStats)
	fmt.Printf("coordinated fleet:     %s\n", coordStats)
	fmt.Printf("by-range moved %.1f%% of the by-table migration bytes (same bandwidth cap)\n",
		100*float64(rangeStats.MigratedBytes)/float64(tableStats.MigratedBytes))
	last := len(staticRes.Windows) - 1
	fmt.Printf("final-window range-served rate: %.1f%% of lookups from FM-resident ranges\n",
		rangeRes.Windows[last].RangeRate*100)
	fmt.Printf("coordinated fleet wear: %.2f MB SM writes, projected DWPD utilization %.3f\n",
		float64(coordRes.SMWriteBytes)/(1<<20), coordRes.DWPDUtil)
	fmt.Printf("static   final p99 = %.2fms\n", staticRes.Windows[last].P99*1e3)
	fmt.Printf("by-table final p99 = %.2fms\n", tableRes.Windows[last].P99*1e3)
	fmt.Printf("by-range final p99 = %.2fms\n", rangeRes.Windows[last].P99*1e3)
	fmt.Printf("coord    final p99 = %.2fms\n", coordRes.Windows[last].P99*1e3)
}
