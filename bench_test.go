// Benchmarks regenerating every table and figure of the paper's evaluation
// (one Benchmark per artifact, backed by internal/experiments) plus
// functional microbenchmarks of the SDM hot paths. Run:
//
//	go test -bench=. -benchmem
//
// The experiment benchmarks attach their headline numbers as custom
// metrics (hit rates, savings, ratios) so `-bench` output doubles as a
// compact reproduction report; `cmd/sdmbench` prints the full rows.
package sdm

import (
	"fmt"
	"io"
	"runtime"
	"testing"

	"sdm/internal/experiments"
)

func runExperiment(b *testing.B, id string) experiments.Result {
	b.Helper()
	var last experiments.Result
	for i := 0; i < b.N; i++ {
		res, err := experiments.Run(id, experiments.Default())
		if err != nil {
			b.Fatalf("%s: %v", id, err)
		}
		last = res
	}
	return last
}

// BenchmarkFig1_SizeVsBandwidth regenerates Fig. 1's size-vs-BW inventory.
func BenchmarkFig1_SizeVsBandwidth(b *testing.B) {
	res := runExperiment(b, "fig1").(*experiments.Fig1Result)
	b.ReportMetric(res.LowBWCapacityFrac, "lowBWcapFrac")
}

// BenchmarkTab1_TechnologyCatalog regenerates Table 1.
func BenchmarkTab1_TechnologyCatalog(b *testing.B) { runExperiment(b, "tab1") }

// BenchmarkFig3_DeviceProfile regenerates Fig. 3's IOPS/latency curves.
func BenchmarkFig3_DeviceProfile(b *testing.B) {
	res := runExperiment(b, "fig3").(*experiments.Fig3Result)
	nand := res.Curves["PCIe Nand Flash"]
	opt := res.Curves["PCIe 3DXP (Optane)"]
	if len(nand) > 0 && len(opt) > 0 {
		b.ReportMetric(nand[0].MeanLatency.Seconds()*1e6, "nandLat_us")
		b.ReportMetric(opt[0].MeanLatency.Seconds()*1e6, "optaneLat_us")
	}
}

// BenchmarkTab2_Usecases regenerates Table 2's usecase configs.
func BenchmarkTab2_Usecases(b *testing.B) { runExperiment(b, "tab2") }

// BenchmarkFig4_TemporalLocality regenerates Fig. 4's CDFs.
func BenchmarkFig4_TemporalLocality(b *testing.B) {
	res := runExperiment(b, "fig4").(*experiments.Fig4Result)
	if len(res.UserCDF) > 4 {
		b.ReportMetric(res.UserCDF[4], "userCDF@10%rows")
		b.ReportMetric(res.ItemCDF[4], "itemCDF@10%rows")
	}
}

// BenchmarkFig5_SpatialLocality regenerates Fig. 5's metric.
func BenchmarkFig5_SpatialLocality(b *testing.B) {
	res := runExperiment(b, "fig5").(*experiments.Fig5Result)
	b.ReportMetric(res.AvgUser, "userSpatial")
	b.ReportMetric(res.AvgItem, "itemSpatial")
}

// BenchmarkFig6_CacheOrg regenerates Fig. 6's cache-organization study.
func BenchmarkFig6_CacheOrg(b *testing.B) { runExperiment(b, "fig6") }

// BenchmarkTab3_PooledProfile regenerates Table 3.
func BenchmarkTab3_PooledProfile(b *testing.B) { runExperiment(b, "tab3") }

// BenchmarkTab4_LenThreshold regenerates Table 4.
func BenchmarkTab4_LenThreshold(b *testing.B) { runExperiment(b, "tab4") }

// BenchmarkTab8_M1Power regenerates Table 8.
func BenchmarkTab8_M1Power(b *testing.B) {
	res := runExperiment(b, "tab8").(*experiments.Tab8Result)
	b.ReportMetric(res.Saving*100, "powerSaving%")
	b.ReportMetric(res.HitRate*100, "cacheHit%")
}

// BenchmarkTab9_M2Power regenerates Table 9.
func BenchmarkTab9_M2Power(b *testing.B) {
	res := runExperiment(b, "tab9").(*experiments.Tab9Result)
	b.ReportMetric(res.OptaneQPS/res.NandQPS, "optane/nandQPS")
}

// BenchmarkTab10_M3Sizing regenerates Table 10.
func BenchmarkTab10_M3Sizing(b *testing.B) { runExperiment(b, "tab10") }

// BenchmarkTab11_MultiTenancy regenerates Table 11.
func BenchmarkTab11_MultiTenancy(b *testing.B) { runExperiment(b, "tab11") }

// BenchmarkSGL_SmallGranularity regenerates §4.1.1's savings.
func BenchmarkSGL_SmallGranularity(b *testing.B) {
	res := runExperiment(b, "sgl").(*experiments.SGLResult)
	b.ReportMetric(res.BusSavings*100, "busSaved%")
	b.ReportMetric(res.FMTrafficRatio, "fmTrafficRatio")
}

// BenchmarkMmapVsDirect regenerates the §4.1 mmap comparison.
func BenchmarkMmapVsDirect(b *testing.B) {
	res := runExperiment(b, "mmap").(*experiments.MmapResult)
	b.ReportMetric(res.LatencyRatio, "mmap/directLat")
}

// BenchmarkDeprune regenerates the §4.5 trade-off.
func BenchmarkDeprune(b *testing.B) {
	res := runExperiment(b, "deprune").(*experiments.DepruneResult)
	b.ReportMetric(res.ExtraRequestFrac*100, "extraReq%")
	b.ReportMetric(res.CacheGainFrac*100, "cacheGain%")
}

// BenchmarkDequantAtLoad regenerates the §A.5 trade-off.
func BenchmarkDequantAtLoad(b *testing.B) {
	res := runExperiment(b, "dequant").(*experiments.DequantResult)
	b.ReportMetric(res.SMGrowth*100, "smGrowth%")
}

// BenchmarkInterOp regenerates §A.2's inter-op parallelism ablation.
func BenchmarkInterOp(b *testing.B) {
	res := runExperiment(b, "interop").(*experiments.InterOpResult)
	b.ReportMetric(res.LatencyReduction*100, "latencySaved%")
}

// BenchmarkPolling regenerates §A.1's polling-vs-IRQ comparison.
func BenchmarkPolling(b *testing.B) {
	res := runExperiment(b, "polling").(*experiments.PollingResult)
	b.ReportMetric(res.Gain*100, "iopsPerCoreGain%")
}

// BenchmarkWarmupModel regenerates the §A.4 over-provision model.
func BenchmarkWarmupModel(b *testing.B) { runExperiment(b, "warmup") }

// BenchmarkModelUpdate regenerates the §A.3/§3 update-path study.
func BenchmarkModelUpdate(b *testing.B) { runExperiment(b, "update") }

// BenchmarkFleetRouting measures wall-clock fleet routing overhead:
// the same 4-host fleet and trace routed by the single-scorer sticky
// config versus a six-scorer weighted router (every scorer the registry
// knows, so the ns/op gap bounds the cost of full SLO-aware scoring).
// Virtual-time results are unaffected by the choice of b.N.
func BenchmarkFleetRouting(b *testing.B) {
	cfg := M1()
	cfg.NumUserTables = 5
	cfg.NumItemTables = 3
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	inst, err := Build(cfg, 1, 31)
	if err != nil {
		b.Fatal(err)
	}
	tables, err := inst.Materialize()
	if err != nil {
		b.Fatal(err)
	}
	const hosts = 4
	mkWeighted := func() Router {
		sws, err := ParseScorers(
			"affinity=1,queue=0.4,loadbal=0.1,migavoid=1.2,wear=0.2,fmserved=0.3", hosts)
		if err != nil {
			b.Fatal(err)
		}
		r, err := NewWeightedRouter("weighted6", sws...)
		if err != nil {
			b.Fatal(err)
		}
		return r
	}
	for _, pol := range []struct {
		name string
		mk   func() Router
	}{
		{"sticky", func() Router { return NewSticky(hosts, 64) }},
		{"weighted6", mkWeighted},
	} {
		b.Run("policy="+pol.name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scfg := Config{Seed: 31, Ring: RingConfig{SGL: true}, CacheBytes: 1 << 15}
				hs, err := NewFleetHosts(inst, tables, hosts, &scfg, HostConfig{
					Spec: HWSS(), InterOp: true, Seed: 31,
				})
				if err != nil {
					b.Fatal(err)
				}
				fl, err := NewFleet(hs, pol.mk(), FleetConfig{Seed: 31})
				if err != nil {
					b.Fatal(err)
				}
				gen, err := NewGenerator(inst, WorkloadConfig{Seed: 31, NumUsers: 800, UserAlpha: 0.8})
				if err != nil {
					b.Fatal(err)
				}
				fl.SetGenerator(gen)
				res, err := fl.Run(2000, 600)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Latency.P99()*1e6, "p99_us")
				}
			}
		})
	}
}

// BenchmarkFleetRoutingTraced measures the decision-trace layer's
// wall-clock overhead on the BenchmarkFleetRouting weighted fixture:
// trace=off is the guarded zero-overhead path (SetTrace never called,
// identical to BenchmarkFleetRouting/policy=weighted6), trace=
// counterfactual collects every route decision with top-k alternatives
// and runs the completion-time re-scoring pass. Virtual-time results are
// identical across the rows — tracing never perturbs the simulation.
func BenchmarkFleetRoutingTraced(b *testing.B) {
	cfg := M1()
	cfg.NumUserTables = 5
	cfg.NumItemTables = 3
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	inst, err := Build(cfg, 1, 31)
	if err != nil {
		b.Fatal(err)
	}
	tables, err := inst.Materialize()
	if err != nil {
		b.Fatal(err)
	}
	const hosts = 4
	for _, level := range []TraceLevel{TraceOff, TraceCounterfactual} {
		b.Run("trace="+level.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scfg := Config{Seed: 31, Ring: RingConfig{SGL: true}, CacheBytes: 1 << 15}
				hs, err := NewFleetHosts(inst, tables, hosts, &scfg, HostConfig{
					Spec: HWSS(), InterOp: true, Seed: 31,
				})
				if err != nil {
					b.Fatal(err)
				}
				sws, err := ParseScorers(
					"affinity=1,queue=0.4,loadbal=0.1,migavoid=1.2,wear=0.2,fmserved=0.3", hosts)
				if err != nil {
					b.Fatal(err)
				}
				r, err := NewWeightedRouter("weighted6", sws...)
				if err != nil {
					b.Fatal(err)
				}
				fl, err := NewFleet(hs, r, FleetConfig{Seed: 31})
				if err != nil {
					b.Fatal(err)
				}
				if level != TraceOff {
					if err := fl.SetTrace(TraceConfig{Level: level}); err != nil {
						b.Fatal(err)
					}
				}
				gen, err := NewGenerator(inst, WorkloadConfig{Seed: 31, NumUsers: 800, UserAlpha: 0.8})
				if err != nil {
					b.Fatal(err)
				}
				fl.SetGenerator(gen)
				res, err := fl.Run(2000, 600)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.ReportMetric(res.Latency.P99()*1e6, "p99_us")
					if res.Trace != nil {
						b.ReportMetric(float64(res.Trace.Events), "traceEvents")
					}
				}
			}
		})
	}
}

// BenchmarkFleetRoutingMetered measures the metrics plane's wall-clock
// overhead on the BenchmarkFleetRouting weighted fixture: metrics=off is
// the guarded zero-overhead path (SetMetrics never called — nil meter,
// nothing allocated on the hot paths), metrics=on samples every host and
// front-end instrument on 250ms virtual boundaries and renders both
// export formats. Virtual-time results are identical across the rows —
// metering never perturbs the simulation.
func BenchmarkFleetRoutingMetered(b *testing.B) {
	cfg := M1()
	cfg.NumUserTables = 5
	cfg.NumItemTables = 3
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	inst, err := Build(cfg, 1, 31)
	if err != nil {
		b.Fatal(err)
	}
	tables, err := inst.Materialize()
	if err != nil {
		b.Fatal(err)
	}
	const hosts = 4
	for _, metered := range []bool{false, true} {
		name := "metrics=off"
		if metered {
			name = "metrics=on"
		}
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				scfg := Config{Seed: 31, Ring: RingConfig{SGL: true}, CacheBytes: 1 << 15}
				hs, err := NewFleetHosts(inst, tables, hosts, &scfg, HostConfig{
					Spec: HWSS(), InterOp: true, Seed: 31,
				})
				if err != nil {
					b.Fatal(err)
				}
				sws, err := ParseScorers(
					"affinity=1,queue=0.4,loadbal=0.1,migavoid=1.2,wear=0.2,fmserved=0.3", hosts)
				if err != nil {
					b.Fatal(err)
				}
				r, err := NewWeightedRouter("weighted6", sws...)
				if err != nil {
					b.Fatal(err)
				}
				fl, err := NewFleet(hs, r, FleetConfig{Seed: 31})
				if err != nil {
					b.Fatal(err)
				}
				if metered {
					if err := fl.SetMetrics(MetricsConfig{}); err != nil {
						b.Fatal(err)
					}
				}
				gen, err := NewGenerator(inst, WorkloadConfig{Seed: 31, NumUsers: 800, UserAlpha: 0.8})
				if err != nil {
					b.Fatal(err)
				}
				fl.SetGenerator(gen)
				res, err := fl.Run(2000, 600)
				if err != nil {
					b.Fatal(err)
				}
				if metered {
					if err := fl.WriteMetrics(io.Discard); err != nil {
						b.Fatal(err)
					}
					if err := fl.WriteMetricsJSONL(io.Discard); err != nil {
						b.Fatal(err)
					}
				}
				if i == 0 {
					b.ReportMetric(res.Latency.P99()*1e6, "p99_us")
				}
			}
		})
	}
}

// BenchmarkFleetScale is the scale-up campaign's wall-clock anchor: one
// 64-replica metered fleet built, warmed, measured, and rendered per
// iteration. Virtual-time results are seed-deterministic; ns/op and
// allocs/op track what a big-fleet campaign costs the simulator host
// (the fleetscale experiment carries the same trajectory into
// BENCH_<rev>.json, warn-only).
func BenchmarkFleetScale(b *testing.B) {
	cfg := M1()
	cfg.NumUserTables = 5
	cfg.NumItemTables = 3
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	inst, err := Build(cfg, 1, 31)
	if err != nil {
		b.Fatal(err)
	}
	tables, err := inst.Materialize()
	if err != nil {
		b.Fatal(err)
	}
	const hosts = 64
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		scfg := Config{Seed: 31, Ring: RingConfig{SGL: true}, CacheBytes: 1 << 15}
		hs, err := NewFleetHosts(inst, tables, hosts, &scfg, HostConfig{
			Spec: HWSS(), InterOp: true, Seed: 31,
		})
		if err != nil {
			b.Fatal(err)
		}
		fl, err := NewFleet(hs, NewSticky(hosts, 64), FleetConfig{Seed: 31})
		if err != nil {
			b.Fatal(err)
		}
		if err := fl.SetMetrics(MetricsConfig{}); err != nil {
			b.Fatal(err)
		}
		gen, err := NewGenerator(inst, WorkloadConfig{Seed: 31, NumUsers: 4000, UserAlpha: 0.8})
		if err != nil {
			b.Fatal(err)
		}
		fl.SetGenerator(gen)
		if _, err := fl.Run(4000, 2000); err != nil {
			b.Fatal(err)
		}
		res, err := fl.Run(4000, 2000)
		if err != nil {
			b.Fatal(err)
		}
		if err := fl.WriteMetrics(io.Discard); err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.ReportMetric(res.Latency.P99()*1e6, "p99_us")
			b.ReportMetric(res.AchievedQPS, "vqps")
		}
	}
}

// BenchmarkQueryEngine measures wall-clock query throughput of the
// sharded parallel engine at Parallelism=1 vs all cores. Virtual-time
// accounting is bit-identical at both settings; the ns/op ratio is the
// real multi-core speedup of the host running the simulation.
func BenchmarkQueryEngine(b *testing.B) {
	cores := runtime.GOMAXPROCS(0)
	settings := []int{1}
	if cores > 1 {
		settings = append(settings, cores)
	}
	for _, p := range settings {
		b.Run(fmt.Sprintf("parallelism=%d", p), func(b *testing.B) {
			cfg := M1()
			cfg.NumUserTables = 12
			cfg.NumItemTables = 4
			cfg.ItemBatch = 8
			cfg.TotalBytes = 1 << 25
			inst, err := Build(cfg, 1, 13)
			if err != nil {
				b.Fatal(err)
			}
			tables, err := inst.Materialize()
			if err != nil {
				b.Fatal(err)
			}
			var clk Clock
			store, err := Open(inst, tables, Config{
				Seed:        13,
				SMTech:      OptaneSSD,
				Ring:        RingConfig{SGL: true},
				CacheBytes:  64 << 20,
				Parallelism: p,
			}, &clk)
			if err != nil {
				b.Fatal(err)
			}
			gen, err := NewGenerator(inst, WorkloadConfig{Seed: 13, NumUsers: 400})
			if err != nil {
				b.Fatal(err)
			}
			qs := gen.GenerateTrace(64)
			outs := make([][][][]float32, len(qs))
			for i := range qs {
				outs[i] = store.AllocOutputs(qs[i])
			}
			now := store.LoadDone()
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				q := qs[i%len(qs)]
				if _, err := store.PoolQuery(now, q, outs[i%len(qs)]); err != nil {
					b.Fatal(err)
				}
			}
			b.ReportMetric(float64(store.Stats().Lookups)/float64(b.N), "lookups/query")
		})
	}
}
