package sdm

import (
	"testing"

	"sdm/internal/blockdev"
	"sdm/internal/cache"
	"sdm/internal/core"
	"sdm/internal/pooledcache"
	"sdm/internal/quant"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
	"sdm/internal/xrand"
)

// Functional microbenchmarks: real ns/op of the SDM hot paths.

func BenchmarkQuantDequantizeRowInt8(b *testing.B) {
	src := make([]float32, 64)
	rng := xrand.New(1)
	for i := range src {
		src[i] = float32(rng.Norm(0, 1))
	}
	row := make([]byte, quant.RowBytes(quant.Int8, 64))
	if err := quant.QuantizeRow(row, src, quant.Int8); err != nil {
		b.Fatal(err)
	}
	acc := make([]float32, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := quant.AccumulateRow(acc, row, quant.Int8); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCacheMemOptimizedGet(b *testing.B) {
	c := cache.NewMemOptimized(8<<20, 255)
	v := make([]byte, 128)
	for i := 0; i < 10000; i++ {
		c.Put(cache.Key{Row: int64(i)}, v)
	}
	dst := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(cache.Key{Row: int64(i % 10000)}, dst)
	}
}

func BenchmarkCacheCPUOptimizedGet(b *testing.B) {
	c := cache.NewCPUOptimized(16 << 20)
	v := make([]byte, 128)
	for i := 0; i < 10000; i++ {
		c.Put(cache.Key{Row: int64(i)}, v)
	}
	dst := make([]byte, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		c.Get(cache.Key{Row: int64(i % 10000)}, dst)
	}
}

func BenchmarkPooledCacheHash(b *testing.B) {
	idx := make([]int64, 42)
	rng := xrand.New(2)
	for i := range idx {
		idx[i] = rng.Int63n(1 << 30)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		pooledcache.HashIndices(idx)
	}
}

func BenchmarkZipfRank(b *testing.B) {
	z := xrand.NewZipf(1<<24, 1.05)
	rng := xrand.New(3)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		z.Rank(rng)
	}
}

func BenchmarkDeviceReadSGL(b *testing.B) {
	var clk simclock.Clock
	dev := blockdev.New(blockdev.Spec(blockdev.OptaneSSD), 1<<24, &clk, 4)
	buf := make([]byte, 128)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := dev.ReadSGL(0, buf, int64(i%4096)*512); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStorePoolOp measures the full SDM lookup path (pooled cache →
// row cache → SM device → dequant+pool) per operator.
func BenchmarkStorePoolOp(b *testing.B) {
	inst, err := Build(benchModel(), 1, 5)
	if err != nil {
		b.Fatal(err)
	}
	tables, err := inst.Materialize()
	if err != nil {
		b.Fatal(err)
	}
	var clk simclock.Clock
	store, err := core.Open(inst, tables, core.Config{
		Seed: 5, CacheBytes: 16 << 20, Ring: uring.Config{SGL: true},
	}, &clk)
	if err != nil {
		b.Fatal(err)
	}
	gen, err := workload.NewGenerator(inst, workload.Config{Seed: 5, NumUsers: 100})
	if err != nil {
		b.Fatal(err)
	}
	q := gen.Next()
	op := q.Ops[0]
	outs := make([][]float32, len(op.Pools))
	for i := range outs {
		outs[i] = make([]float32, inst.Tables[op.Table].Dim)
	}
	now := store.LoadDone()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := store.PoolOp(now, op, outs); err != nil {
			b.Fatal(err)
		}
	}
}

func benchModel() ModelConfig {
	cfg := M1()
	cfg.NumUserTables = 4
	cfg.NumItemTables = 2
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 22
	return cfg
}
