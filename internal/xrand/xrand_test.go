package xrand

import (
	"math"
	"testing"
	"testing/quick"
)

func TestRNGDeterminism(t *testing.T) {
	a, b := New(42), New(42)
	for i := 0; i < 1000; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatalf("same seed diverged at draw %d", i)
		}
	}
}

func TestRNGSeedsDiffer(t *testing.T) {
	a, b := New(1), New(2)
	same := 0
	for i := 0; i < 100; i++ {
		if a.Uint64() == b.Uint64() {
			same++
		}
	}
	if same > 2 {
		t.Fatalf("different seeds produced %d identical draws of 100", same)
	}
}

func TestFloat64Range(t *testing.T) {
	r := New(7)
	for i := 0; i < 10000; i++ {
		v := r.Float64()
		if v < 0 || v >= 1 {
			t.Fatalf("Float64 out of [0,1): %g", v)
		}
	}
}

func TestFloat64Mean(t *testing.T) {
	r := New(11)
	var sum float64
	const n = 100000
	for i := 0; i < n; i++ {
		sum += r.Float64()
	}
	if mean := sum / n; math.Abs(mean-0.5) > 0.01 {
		t.Fatalf("uniform mean %g, want ~0.5", mean)
	}
}

func TestIntnBounds(t *testing.T) {
	r := New(3)
	for i := 0; i < 10000; i++ {
		v := r.Intn(17)
		if v < 0 || v >= 17 {
			t.Fatalf("Intn(17) = %d", v)
		}
	}
	if r.Intn(0) != 0 || r.Intn(-5) != 0 {
		t.Fatal("Intn of non-positive n should be 0")
	}
}

func TestNormMoments(t *testing.T) {
	r := New(5)
	var sum, sq float64
	const n = 200000
	for i := 0; i < n; i++ {
		v := r.Norm(2, 3)
		sum += v
		sq += v * v
	}
	mean := sum / n
	stdev := math.Sqrt(sq/n - mean*mean)
	if math.Abs(mean-2) > 0.05 {
		t.Errorf("norm mean %g, want ~2", mean)
	}
	if math.Abs(stdev-3) > 0.05 {
		t.Errorf("norm stddev %g, want ~3", stdev)
	}
}

func TestExpMean(t *testing.T) {
	r := New(9)
	var sum float64
	const n = 200000
	for i := 0; i < n; i++ {
		sum += r.Exp(4)
	}
	if mean := sum / n; math.Abs(mean-4) > 0.1 {
		t.Fatalf("exp mean %g, want ~4", mean)
	}
}

func TestPermIsPermutation(t *testing.T) {
	r := New(13)
	p := r.Perm(257)
	seen := make([]bool, 257)
	for _, v := range p {
		if v < 0 || v >= 257 || seen[v] {
			t.Fatalf("invalid permutation value %d", v)
		}
		seen[v] = true
	}
}

func TestZipfRankBounds(t *testing.T) {
	for _, alpha := range []float64{0, 0.5, 1.0, 1.3, 2.0} {
		z := NewZipf(1000, alpha)
		r := New(17)
		for i := 0; i < 10000; i++ {
			v := z.Rank(r)
			if v < 0 || v >= 1000 {
				t.Fatalf("alpha=%g rank %d out of range", alpha, v)
			}
		}
	}
}

func TestZipfSkewOrdering(t *testing.T) {
	// Higher alpha must concentrate more mass on top ranks.
	top1Frac := func(alpha float64) float64 {
		z := NewZipf(100000, alpha)
		r := New(23)
		const n = 100000
		hits := 0
		for i := 0; i < n; i++ {
			if z.Rank(r) < 1000 { // top 1%
				hits++
			}
		}
		return float64(hits) / n
	}
	low, mid, high := top1Frac(0.3), top1Frac(0.9), top1Frac(1.3)
	if !(low < mid && mid < high) {
		t.Fatalf("top-1%% mass not increasing with alpha: %g %g %g", low, mid, high)
	}
	if high < 0.5 {
		t.Fatalf("alpha=1.3 top-1%% mass %g, want power-law concentration > 0.5", high)
	}
	if u := top1Frac(0); math.Abs(u-0.01) > 0.005 {
		t.Fatalf("uniform top-1%% mass %g, want ~0.01", u)
	}
}

func TestZipfCDFMonotonic(t *testing.T) {
	z := NewZipf(10000, 1.1)
	prev := 0.0
	for i := int64(0); i <= 10000; i += 100 {
		c := z.CDF(i)
		if c < prev-1e-12 {
			t.Fatalf("CDF decreasing at %d: %g < %g", i, c, prev)
		}
		prev = c
	}
	if z.CDF(0) != 0 || z.CDF(10000) != 1 {
		t.Fatal("CDF endpoints wrong")
	}
}

func TestZipfUniformFallback(t *testing.T) {
	z := NewZipf(10, 0)
	if z.Alpha() != 0 {
		t.Fatal("alpha should stay 0")
	}
	r := New(29)
	counts := make([]int, 10)
	for i := 0; i < 100000; i++ {
		counts[z.Rank(r)]++
	}
	for i, c := range counts {
		if c < 8000 || c > 12000 {
			t.Fatalf("uniform bucket %d count %d far from 10000", i, c)
		}
	}
}

func TestPermuterBijection(t *testing.T) {
	for _, n := range []int64{1, 2, 7, 64, 1000, 4097} {
		p := NewPermuter(n, 99)
		seen := make(map[int64]bool, n)
		for i := int64(0); i < n; i++ {
			v := p.Map(i)
			if v < 0 || v >= n {
				t.Fatalf("n=%d: Map(%d)=%d out of range", n, i, v)
			}
			if seen[v] {
				t.Fatalf("n=%d: Map(%d)=%d collides", n, i, v)
			}
			seen[v] = true
		}
	}
}

func TestPermuterBijectionProperty(t *testing.T) {
	const n = 1 << 14
	p := NewPermuter(n, 7)
	f := func(a, b uint16) bool {
		x, y := int64(a)%n, int64(b)%n
		if x == y {
			return true
		}
		return p.Map(x) != p.Map(y)
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestPermuterIdentity(t *testing.T) {
	p := NewPermuter(100, 1)
	p.Identity = true
	for i := int64(0); i < 100; i++ {
		if p.Map(i) != i {
			t.Fatalf("identity Map(%d) = %d", i, p.Map(i))
		}
	}
}

func TestPermuterScatters(t *testing.T) {
	// Adjacent ranks should not stay adjacent (spatial-locality breaking).
	p := NewPermuter(1<<20, 3)
	adjacent := 0
	for i := int64(0); i < 1000; i++ {
		d := p.Map(i+1) - p.Map(i)
		if d < 0 {
			d = -d
		}
		if d < 32 {
			adjacent++
		}
	}
	if adjacent > 10 {
		t.Fatalf("%d of 1000 adjacent ranks stayed near-adjacent", adjacent)
	}
}
