// Package xrand provides deterministic random number generation and the
// heavy-tailed samplers used to synthesize DLRM embedding-access workloads.
//
// The paper (§4.2, Fig. 4) observes that accesses to most embedding tables
// follow a power law. Production traces are not available, so workloads in
// this repository are driven by per-table Zipfian samplers whose skew is
// configurable, combined with a pseudorandom index permutation that controls
// spatial locality (hot rows scattered across 4 KB blocks, matching Fig. 5).
package xrand

import "math"

// RNG is a small, fast, deterministic generator (SplitMix64 seeded
// xorshift128+). It is not safe for concurrent use; create one per goroutine.
type RNG struct {
	s0, s1 uint64
}

// New returns an RNG seeded deterministically from seed.
func New(seed uint64) *RNG {
	r := &RNG{}
	r.Seed(seed)
	return r
}

// Seed resets the generator state using a SplitMix64 expansion of seed.
func (r *RNG) Seed(seed uint64) {
	sm := seed
	next := func() uint64 {
		sm += 0x9e3779b97f4a7c15
		z := sm
		z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
		z = (z ^ (z >> 27)) * 0x94d049bb133111eb
		return z ^ (z >> 31)
	}
	r.s0 = next()
	r.s1 = next()
	if r.s0 == 0 && r.s1 == 0 {
		r.s0 = 1
	}
}

// Uint64 returns the next 64 pseudorandom bits.
func (r *RNG) Uint64() uint64 {
	x, y := r.s0, r.s1
	r.s0 = y
	x ^= x << 23
	x ^= x >> 17
	x ^= y ^ (y >> 26)
	r.s1 = x
	return x + y
}

// Float64 returns a uniform value in [0, 1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / (1 << 53)
}

// Intn returns a uniform value in [0, n). n must be > 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return int(r.Uint64() % uint64(n))
}

// Int63n returns a uniform int64 in [0, n). n must be > 0.
func (r *RNG) Int63n(n int64) int64 {
	if n <= 0 {
		return 0
	}
	return int64(r.Uint64() % uint64(n))
}

// Norm returns a normally distributed value with the given mean and
// standard deviation (Box–Muller).
func (r *RNG) Norm(mean, stddev float64) float64 {
	u1 := r.Float64()
	for u1 == 0 {
		u1 = r.Float64()
	}
	u2 := r.Float64()
	z := math.Sqrt(-2*math.Log(u1)) * math.Cos(2*math.Pi*u2)
	return mean + stddev*z
}

// Exp returns an exponentially distributed value with the given mean.
func (r *RNG) Exp(mean float64) float64 {
	u := r.Float64()
	for u == 0 {
		u = r.Float64()
	}
	return -mean * math.Log(u)
}

// Perm returns a pseudorandom permutation of [0, n).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		j := r.Intn(i + 1)
		p[i] = p[j]
		p[j] = i
	}
	return p
}

// Zipf samples ranks from an (approximate) Zipf distribution over
// [0, N): P(rank = i) ∝ 1/(i+1)^Alpha. Rank 0 is the hottest element.
//
// The sampler uses inverse-CDF sampling against the continuous
// approximation of the discrete Zipf CDF, which is accurate for the
// locality-shape experiments this repo runs (Fig. 4) and — unlike
// math/rand's rejection sampler — supports any Alpha > 0, including the
// Alpha ≤ 1 regime typical of embedding tables.
type Zipf struct {
	n     int64
	alpha float64
	// Precomputed constants for the inverse CDF.
	oneMinusA    float64
	normConstant float64 // N^(1-a) - 1 for a != 1; ln(N) for a == 1
	uniform      bool
}

// NewZipf returns a Zipf sampler over [0, n) with skew alpha.
// alpha == 0 degenerates to the uniform distribution.
func NewZipf(n int64, alpha float64) *Zipf {
	if n < 1 {
		n = 1
	}
	z := &Zipf{n: n, alpha: alpha}
	switch {
	case alpha <= 0:
		z.uniform = true
	case math.Abs(alpha-1) < 1e-9:
		z.alpha = 1
		z.normConstant = math.Log(float64(n))
	default:
		z.oneMinusA = 1 - alpha
		z.normConstant = math.Pow(float64(n), z.oneMinusA) - 1
	}
	return z
}

// N returns the support size.
func (z *Zipf) N() int64 { return z.n }

// Alpha returns the configured skew.
func (z *Zipf) Alpha() float64 { return z.alpha }

// Rank draws a rank in [0, N), rank 0 being the most popular.
func (z *Zipf) Rank(r *RNG) int64 {
	if z.uniform || z.n == 1 {
		return r.Int63n(z.n)
	}
	u := r.Float64()
	var x float64
	if z.alpha == 1 {
		// CDF(i) ≈ ln(i+1)/ln(N)  =>  i = N^u - 1
		x = math.Exp(u*z.normConstant) - 1
	} else {
		// CDF(i) ≈ ((i+1)^(1-a) - 1) / (N^(1-a) - 1)
		x = math.Pow(u*z.normConstant+1, 1/z.oneMinusA) - 1
	}
	i := int64(x)
	if i >= z.n {
		i = z.n - 1
	}
	if i < 0 {
		i = 0
	}
	return i
}

// CDF returns the (approximate) probability that a sample has rank < i.
func (z *Zipf) CDF(i int64) float64 {
	if i <= 0 {
		return 0
	}
	if i >= z.n {
		return 1
	}
	if z.uniform {
		return float64(i) / float64(z.n)
	}
	if z.alpha == 1 {
		return math.Log(float64(i)+1) / z.normConstant
	}
	return (math.Pow(float64(i)+1, z.oneMinusA) - 1) / z.normConstant
}

// Permuter maps ranks to scattered table indices using a Feistel-style
// bijection over [0, n). It converts "rank 0 is hottest" into "hot rows are
// scattered uniformly across the table", reproducing the low spatial
// locality the paper measures in Fig. 5. With Identity set, ranks map to
// themselves, producing maximal spatial locality (hot rows share blocks).
type Permuter struct {
	n        int64
	keys     [4]uint64
	halfBits uint
	halfMask uint64
	// Identity disables permutation.
	Identity bool
}

// NewPermuter returns a bijective permuter over [0, n) keyed by seed.
func NewPermuter(n int64, seed uint64) *Permuter {
	if n < 1 {
		n = 1
	}
	bits := uint(1)
	for int64(1)<<bits < n {
		bits++
	}
	if bits%2 == 1 {
		bits++
	}
	half := bits / 2
	p := &Permuter{n: n, halfBits: half, halfMask: (1 << half) - 1}
	r := New(seed)
	for i := range p.keys {
		p.keys[i] = r.Uint64()
	}
	return p
}

func (p *Permuter) round(x, key uint64) uint64 {
	x ^= key
	x *= 0x9e3779b97f4a7c15
	x ^= x >> 29
	return x & p.halfMask
}

// Map maps rank i in [0, n) to a unique index in [0, n) (cycle-walking
// Feistel network, so the mapping is a true bijection).
func (p *Permuter) Map(i int64) int64 {
	if p.Identity || p.n == 1 {
		return i
	}
	x := uint64(i)
	for {
		l := x >> p.halfBits
		r := x & p.halfMask
		for _, k := range p.keys {
			l, r = r, l^p.round(r, k)
		}
		x = l<<p.halfBits | r
		if int64(x) < p.n {
			return int64(x)
		}
	}
}
