// Package obs is the fleet's decision-trace subsystem: a structured,
// deterministic record of *why* each serving-layer decision went the way
// it did — the router's per-scorer scores and the top-k rejected
// alternatives, admission control's bucket level and shed/queue verdict,
// and the placement policy's promote/demote/defer call with the
// telemetry snapshot that justified it. Collection is nil-safe and off
// by default (a nil *Collector costs nothing); when enabled, every
// emitter appends to its own Collector and the fleet merges the streams
// in virtual-time order after the run, so traces are bit-identical at
// any HostWorkers/Parallelism setting — the same discipline that makes
// the results themselves replayable, now applied to the reasoning.
//
// A counterfactual pass (LevelCounterfactual) re-scores each routing
// decision's rejected alternatives at completion time against a per-host
// latency estimate, so every trace row carries "what the runner-up would
// have cost" — the substrate the offline scorer-weight search replays.
package obs

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"

	"sdm/internal/simclock"
)

// Level selects how much of the decision stream is collected and
// rendered. Off disables collection entirely (the zero-overhead path);
// Summary collects decisions but renders only the aggregate line;
// Decisions renders every decision row; Counterfactual additionally
// re-scores each route decision's rejected alternatives at completion
// time.
type Level int

// Trace levels, in increasing verbosity.
const (
	LevelOff Level = iota
	LevelSummary
	LevelDecisions
	LevelCounterfactual
)

// String returns the level's flag spelling.
func (l Level) String() string {
	switch l {
	case LevelOff:
		return "off"
	case LevelSummary:
		return "summary"
	case LevelDecisions:
		return "decisions"
	case LevelCounterfactual:
		return "counterfactual"
	default:
		return fmt.Sprintf("Level(%d)", int(l))
	}
}

// ParseLevel parses a -trace-level flag value.
func ParseLevel(s string) (Level, error) {
	switch s {
	case "off":
		return LevelOff, nil
	case "summary":
		return LevelSummary, nil
	case "decisions":
		return LevelDecisions, nil
	case "counterfactual":
		return LevelCounterfactual, nil
	default:
		return LevelOff, fmt.Errorf("obs: unknown trace level %q (off, summary, decisions, counterfactual)", s)
	}
}

// Config tunes a fleet's tracing.
type Config struct {
	// Level selects collection and rendering depth; LevelOff disables
	// tracing entirely.
	Level Level
	// CounterfactualK bounds how many rejected route alternatives each
	// decision records (and, at LevelCounterfactual, re-scores). 0
	// selects min(2, hosts-1); values above hosts-1 are rejected, not
	// clamped.
	CounterfactualK int
}

// ScorePart is one scorer's contribution to the chosen host's score.
type ScorePart struct {
	Scorer string  `json:"scorer"`
	Weight float64 `json:"weight"`
	Score  float64 `json:"score"`
}

// AltScore is one rejected routing alternative: an alive host the router
// scored but did not pick, with its gap to the winner.
type AltScore struct {
	Host  int     `json:"host"`
	Score float64 `json:"score"`
	// Gap is the winner's score minus this host's (>= 0).
	Gap float64 `json:"gap"`
	// Outstanding is the host's in-flight query count at decision time.
	Outstanding int `json:"out"`
}

// Counterfactual is one completion-time re-scoring of a rejected
// alternative: what routing this query to Host would likely have cost,
// estimated from the host's recent completed latencies.
type Counterfactual struct {
	Host int `json:"host"`
	// EstSeconds is the host's latency estimate (EWMA of its completed
	// queries, in arrival order) at this decision.
	EstSeconds float64 `json:"est_s"`
	// RegretSeconds is actual minus estimate: positive means the chosen
	// host was slower than this alternative's estimate.
	RegretSeconds float64 `json:"regret_s"`
	// Prev marks the row that re-scores the user's previous (sticky)
	// host on a diverted decision.
	Prev bool `json:"prev,omitempty"`
}

// RouteDecision records one routing decision.
type RouteDecision struct {
	// Seq is the query's arrival index within the Run.
	Seq   int   `json:"i"`
	User  int64 `json:"user"`
	Class int   `json:"class"`
	// Prev is the user's previous host (-1 first-seen).
	Prev   int `json:"prev"`
	Chosen int `json:"chosen"`
	// Score is the chosen host's weighted score (0 for score-free
	// routers).
	Score float64 `json:"score"`
	// Outstanding is the chosen host's in-flight count at decision time.
	Outstanding int `json:"out"`
	// Diverted marks a decision that moved the user off an alive
	// previous host — affinity lost to other signals.
	Diverted bool `json:"div,omitempty"`
	// Parts decomposes the chosen host's score per scorer (weighted
	// routers only).
	Parts []ScorePart `json:"parts,omitempty"`
	// Alts are the top-k rejected alternatives by score (weighted
	// routers only).
	Alts []AltScore `json:"alts,omitempty"`
	// LatencySeconds is the query's completed latency, filled by the
	// counterfactual pass (0 until then, or for shed/unfinished rows).
	LatencySeconds float64 `json:"lat_s,omitempty"`
	// Counterfactuals re-score the alternatives at completion time
	// (LevelCounterfactual only).
	Counterfactuals []Counterfactual `json:"cf,omitempty"`
}

// AdmitDecision records one admission-control decision.
type AdmitDecision struct {
	Class int `json:"class"`
	// Outcome is "admit", "shed", or "delay" (queue-mode late
	// admission).
	Outcome string `json:"outcome"`
	// Tokens is the class bucket's level after accrual and before this
	// query's charge; -1 when the class has no bucket.
	Tokens float64 `json:"tokens"`
	// DelaySeconds is the queue-mode admission delay (0 otherwise).
	DelaySeconds float64 `json:"delay_s,omitempty"`
}

// PlanDecision records one placement-policy verdict: what one evaluation
// decided about one candidate (a whole table or a row range), with the
// telemetry that justified it.
type PlanDecision struct {
	Table int `json:"table"`
	// Range is the row-range index, or -1 for a whole-table candidate.
	Range int64 `json:"range"`
	// Action is "promote", "demote", or "defer" (wanted but not moved).
	Action string `json:"action"`
	// Reason qualifies a defer: "busy" (a pending move covers it) or
	// "cap" (the per-eval migration cap truncated it).
	Reason string `json:"reason,omitempty"`
	// Density is the candidate's demand density as scored (incumbents
	// already carry the hysteresis advantage).
	Density float64 `json:"density"`
	Bytes   int64   `json:"bytes"`
	// DemoteBytes is the challenger's implied demote-write cost (0 for
	// incumbents).
	DemoteBytes int64 `json:"demote_bytes,omitempty"`
	// Hysteresis is the incumbent advantage factor applied to Density
	// (0 for challengers).
	Hysteresis float64 `json:"hysteresis,omitempty"`
	// WearWindowBytes/WearSpentBytes snapshot the wear budget the
	// evaluation packed against (0 when wear awareness is off).
	WearWindowBytes int64 `json:"wear_window_bytes,omitempty"`
	WearSpentBytes  int64 `json:"wear_spent_bytes,omitempty"`
}

// Event is one decision in the merged trace stream.
type Event struct {
	// Kind is "route", "admit", or "plan".
	Kind string `json:"kind"`
	// Time is the decision's virtual time.
	Time simclock.Time `json:"t"`
	// Host is the deciding agent: -1 for the front-end (route/admit),
	// the host id for per-host plan decisions.
	Host int `json:"host"`

	Route *RouteDecision `json:"route,omitempty"`
	Admit *AdmitDecision `json:"admit,omitempty"`
	Plan  *PlanDecision  `json:"plan,omitempty"`
}

// Collector accumulates one emitter's decision stream in emission order.
// A nil Collector is valid and collects nothing — the zero-overhead
// disabled path. Collectors are not safe for concurrent use; the fleet
// gives each emitter (the front-end, each host's adapter) its own.
type Collector struct {
	host   int
	events []Event
}

// NewCollector returns a collector attributing its events to host (-1
// for the front-end).
func NewCollector(host int) *Collector { return &Collector{host: host} }

// Active reports whether the collector records anything (false for nil).
func (c *Collector) Active() bool { return c != nil }

// Reset drops collected events (Run boundaries).
func (c *Collector) Reset() {
	if c != nil {
		c.events = c.events[:0]
	}
}

// Route records a routing decision at virtual time t.
func (c *Collector) Route(t simclock.Time, d RouteDecision) {
	if c == nil {
		return
	}
	rd := d
	c.events = append(c.events, Event{Kind: "route", Time: t, Host: c.host, Route: &rd})
}

// Admit records an admission decision at virtual time t.
func (c *Collector) Admit(t simclock.Time, d AdmitDecision) {
	if c == nil {
		return
	}
	ad := d
	c.events = append(c.events, Event{Kind: "admit", Time: t, Host: c.host, Admit: &ad})
}

// Plan records a placement verdict at virtual time t.
func (c *Collector) Plan(t simclock.Time, d PlanDecision) {
	if c == nil {
		return
	}
	pd := d
	c.events = append(c.events, Event{Kind: "plan", Time: t, Host: c.host, Plan: &pd})
}

// Events returns the collected stream in emission order. The slice (and
// the pointed-to decisions) are shared with the collector — callers may
// enrich rows in place (the counterfactual pass does) but must not
// reorder them.
func (c *Collector) Events() []Event {
	if c == nil {
		return nil
	}
	return c.events
}

// Merge folds per-emitter streams into one virtual-time-ordered trace:
// sorted by (Time, Host), stable within, so ties preserve each
// collector's deterministic emission order. Because every collector's
// own order is independent of execution interleaving, the merged trace
// is bit-identical at any worker count.
func Merge(collectors ...*Collector) []Event {
	var out []Event
	for _, c := range collectors {
		if c != nil {
			out = append(out, c.events...)
		}
	}
	sort.SliceStable(out, func(i, j int) bool {
		if out[i].Time != out[j].Time {
			return out[i].Time < out[j].Time
		}
		return out[i].Host < out[j].Host
	})
	return out
}

// Summary aggregates one trace: decision counts by kind and outcome,
// the routing diversion rate, defer reasons, and (at
// LevelCounterfactual) the regret aggregates the slo drill asserts on.
type Summary struct {
	Level  string `json:"level"`
	Events int    `json:"events"`

	// Routing.
	Routes     int `json:"routes"`
	Diversions int `json:"diversions"`

	// Admission (counted over queries that faced a bucket decision).
	Admits int `json:"admits"`
	Sheds  int `json:"sheds"`
	Delays int `json:"delays"`

	// Placement.
	Promotes  int `json:"promotes"`
	Demotes   int `json:"demotes"`
	Defers    int `json:"defers"`
	DeferBusy int `json:"defer_busy"`
	DeferCap  int `json:"defer_cap"`

	// Counterfactual regret vs the runner-up alternative, summed over
	// every decision whose runner-up had a latency estimate.
	CFRows                int     `json:"cf_rows"`
	RegretRunnerUpSeconds float64 `json:"regret_runner_up_s"`
	// Counterfactual regret vs the user's previous (sticky) host,
	// summed over diverted decisions: negative means diverting beat
	// staying.
	DivertedCFRows    int     `json:"diverted_cf_rows"`
	RegretPrevSeconds float64 `json:"regret_prev_s"`
}

// DiversionRate returns the diverted fraction of routing decisions.
func (s Summary) DiversionRate() float64 {
	if s.Routes == 0 {
		return 0
	}
	return float64(s.Diversions) / float64(s.Routes)
}

// String renders the headline counts.
func (s Summary) String() string {
	return fmt.Sprintf("trace[%s]: events=%d routes=%d div=%d admits=%d sheds=%d delays=%d plan=+%d/-%d defer=%d",
		s.Level, s.Events, s.Routes, s.Diversions, s.Admits, s.Sheds, s.Delays,
		s.Promotes, s.Demotes, s.Defers)
}

// Summarize folds a merged trace into its Summary.
func Summarize(level Level, events []Event) Summary {
	s := Summary{Level: level.String(), Events: len(events)}
	for i := range events {
		ev := &events[i]
		switch ev.Kind {
		case "route":
			d := ev.Route
			s.Routes++
			if d.Diverted {
				s.Diversions++
			}
			for _, cf := range d.Counterfactuals {
				if len(d.Alts) > 0 && cf.Host == d.Alts[0].Host {
					s.CFRows++
					s.RegretRunnerUpSeconds += cf.RegretSeconds
				}
				if cf.Prev {
					s.DivertedCFRows++
					s.RegretPrevSeconds += cf.RegretSeconds
				}
			}
		case "admit":
			switch ev.Admit.Outcome {
			case "admit":
				s.Admits++
			case "shed":
				s.Sheds++
			case "delay":
				s.Admits++
				s.Delays++
			}
		case "plan":
			switch ev.Plan.Action {
			case "promote":
				s.Promotes++
			case "demote":
				s.Demotes++
			case "defer":
				s.Defers++
				switch ev.Plan.Reason {
				case "busy":
					s.DeferBusy++
				case "cap":
					s.DeferCap++
				}
			}
		}
	}
	return s
}

// summaryLine is the trailing JSONL record.
type summaryLine struct {
	Kind    string   `json:"kind"`
	Summary *Summary `json:"summary"`
}

// WriteJSONL renders a trace as JSON Lines: one object per decision
// (levels >= LevelDecisions) followed by a single summary line. At
// LevelSummary only the summary line is written. Field order is fixed by
// the struct declarations and Go's deterministic float formatting, so
// two identical traces render byte-identically.
func WriteJSONL(w io.Writer, level Level, events []Event, sum Summary) error {
	bw := bufio.NewWriter(w)
	if level >= LevelDecisions {
		for i := range events {
			b, err := json.Marshal(&events[i])
			if err != nil {
				return err
			}
			if _, err := bw.Write(b); err != nil {
				return err
			}
			if err := bw.WriteByte('\n'); err != nil {
				return err
			}
		}
	}
	b, err := json.Marshal(summaryLine{Kind: "summary", Summary: &sum})
	if err != nil {
		return err
	}
	if _, err := bw.Write(b); err != nil {
		return err
	}
	if err := bw.WriteByte('\n'); err != nil {
		return err
	}
	return bw.Flush()
}
