package obs

import (
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sdm/internal/simclock"
)

func TestParseLevelRoundTrip(t *testing.T) {
	for _, l := range []Level{LevelOff, LevelSummary, LevelDecisions, LevelCounterfactual} {
		got, err := ParseLevel(l.String())
		if err != nil {
			t.Fatalf("ParseLevel(%q): %v", l, err)
		}
		if got != l {
			t.Fatalf("ParseLevel(%q) = %v, want %v", l, got, l)
		}
	}
	if _, err := ParseLevel("verbose"); err == nil {
		t.Fatal("ParseLevel should reject unknown levels")
	}
	if s := Level(99).String(); s != "Level(99)" {
		t.Fatalf("unknown level renders %q", s)
	}
}

func TestNilCollectorIsInert(t *testing.T) {
	var c *Collector
	if c.Active() {
		t.Fatal("nil collector reports active")
	}
	// None of these may panic or record anything.
	c.Route(0, RouteDecision{})
	c.Admit(0, AdmitDecision{})
	c.Plan(0, PlanDecision{})
	c.Reset()
	if ev := c.Events(); ev != nil {
		t.Fatalf("nil collector returned events: %v", ev)
	}
}

func TestMergeOrdersByTimeThenHost(t *testing.T) {
	fe := NewCollector(-1)
	h0 := NewCollector(0)
	h1 := NewCollector(1)

	// Emit out of global order but in order within each collector, with a
	// tie at t=10 across all three emitters.
	fe.Route(5, RouteDecision{Seq: 0, Chosen: 1})
	fe.Route(10, RouteDecision{Seq: 1, Chosen: 0})
	h1.Plan(10, PlanDecision{Table: 7, Range: -1, Action: "promote"})
	h0.Plan(10, PlanDecision{Table: 3, Range: -1, Action: "demote"})
	h0.Plan(20, PlanDecision{Table: 4, Range: 2, Action: "defer", Reason: "busy"})

	merged := Merge(h1, h0, fe, nil)
	if len(merged) != 5 {
		t.Fatalf("merged %d events, want 5", len(merged))
	}
	type th struct {
		t simclock.Time
		h int
	}
	want := []th{{5, -1}, {10, -1}, {10, 0}, {10, 1}, {20, 0}}
	for i, ev := range merged {
		if ev.Time != want[i].t || ev.Host != want[i].h {
			t.Fatalf("merged[%d] = (t=%v host=%d), want (t=%v host=%d)",
				i, ev.Time, ev.Host, want[i].t, want[i].h)
		}
	}
}

// traceFixture is a small merged stream exercising every kind and
// outcome Summarize distinguishes.
func traceFixture() []Event {
	fe := NewCollector(-1)
	fe.Admit(1, AdmitDecision{Class: 0, Outcome: "admit", Tokens: 3})
	fe.Admit(2, AdmitDecision{Class: 1, Outcome: "shed", Tokens: 0})
	fe.Admit(3, AdmitDecision{Class: 1, Outcome: "delay", Tokens: 0.5, DelaySeconds: 0.001})
	fe.Route(4, RouteDecision{
		Seq: 0, User: 42, Prev: 1, Chosen: 0, Score: 1.9, Diverted: true,
		Parts: []ScorePart{{Scorer: "affinity", Weight: 1, Score: 0}, {Scorer: "queue", Weight: 0.4, Score: 1}},
		Alts:  []AltScore{{Host: 2, Score: 1.2, Gap: 0.7}},
		Counterfactuals: []Counterfactual{
			{Host: 2, EstSeconds: 0.002, RegretSeconds: 0.001},
			{Host: 1, EstSeconds: 0.004, RegretSeconds: -0.001, Prev: true},
		},
		LatencySeconds: 0.003,
	})
	fe.Route(5, RouteDecision{Seq: 1, User: 42, Prev: 0, Chosen: 0})
	h0 := NewCollector(0)
	h0.Plan(6, PlanDecision{Table: 1, Range: -1, Action: "promote", Density: 2, Bytes: 1 << 16})
	h0.Plan(6, PlanDecision{Table: 2, Range: 3, Action: "defer", Reason: "cap", Density: 1, Bytes: 1 << 16})
	h0.Plan(7, PlanDecision{Table: 0, Range: -1, Action: "demote", Density: 0.1, Bytes: 1 << 16})
	h0.Plan(8, PlanDecision{Table: 5, Range: 0, Action: "defer", Reason: "busy", Density: 3, Bytes: 1 << 16})
	return Merge(fe, h0)
}

func TestSummarize(t *testing.T) {
	s := Summarize(LevelCounterfactual, traceFixture())
	if s.Events != 9 || s.Routes != 2 || s.Diversions != 1 {
		t.Fatalf("routes: %+v", s)
	}
	if s.Admits != 2 || s.Sheds != 1 || s.Delays != 1 {
		t.Fatalf("admits: %+v", s)
	}
	if s.Promotes != 1 || s.Demotes != 1 || s.Defers != 2 || s.DeferBusy != 1 || s.DeferCap != 1 {
		t.Fatalf("plans: %+v", s)
	}
	// One runner-up row (host 2 == Alts[0]) and one prev row.
	if s.CFRows != 1 || s.RegretRunnerUpSeconds != 0.001 {
		t.Fatalf("runner-up regret: %+v", s)
	}
	if s.DivertedCFRows != 1 || s.RegretPrevSeconds != -0.001 {
		t.Fatalf("prev regret: %+v", s)
	}
	if got := s.DiversionRate(); got != 0.5 {
		t.Fatalf("diversion rate %v, want 0.5", got)
	}
	if (Summary{}).DiversionRate() != 0 {
		t.Fatal("empty summary diversion rate should be 0")
	}
	if str := s.String(); !strings.Contains(str, "routes=2") || !strings.Contains(str, "counterfactual") {
		t.Fatalf("summary string %q", str)
	}
}

func TestWriteJSONL(t *testing.T) {
	events := traceFixture()
	sum := Summarize(LevelCounterfactual, events)

	var buf bytes.Buffer
	if err := WriteJSONL(&buf, LevelCounterfactual, events, sum); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimRight(buf.String(), "\n"), "\n")
	if len(lines) != len(events)+1 {
		t.Fatalf("%d lines, want %d events + 1 summary", len(lines), len(events))
	}
	// Every event line round-trips and the final line is the summary with
	// matching counts.
	for i, ln := range lines[:len(events)] {
		var ev Event
		if err := json.Unmarshal([]byte(ln), &ev); err != nil {
			t.Fatalf("line %d: %v", i+1, err)
		}
		if ev.Kind != events[i].Kind || ev.Time != events[i].Time || ev.Host != events[i].Host {
			t.Fatalf("line %d round-tripped to %+v, want %+v", i+1, ev, events[i])
		}
	}
	var tail struct {
		Kind    string   `json:"kind"`
		Summary *Summary `json:"summary"`
	}
	if err := json.Unmarshal([]byte(lines[len(lines)-1]), &tail); err != nil {
		t.Fatal(err)
	}
	if tail.Kind != "summary" || tail.Summary == nil || tail.Summary.Events != sum.Events {
		t.Fatalf("trailing summary %+v", tail)
	}

	// At LevelSummary only the summary line is written.
	buf.Reset()
	if err := WriteJSONL(&buf, LevelSummary, events, sum); err != nil {
		t.Fatal(err)
	}
	if got := strings.Count(buf.String(), "\n"); got != 1 {
		t.Fatalf("summary-level render has %d lines, want 1", got)
	}

	// Identical inputs render byte-identically.
	var again bytes.Buffer
	if err := WriteJSONL(&again, LevelCounterfactual, events, sum); err != nil {
		t.Fatal(err)
	}
	var first bytes.Buffer
	if err := WriteJSONL(&first, LevelCounterfactual, events, sum); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(first.Bytes(), again.Bytes()) {
		t.Fatal("two renders of the same trace differ")
	}
}
