package stats

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean %g", m)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max %g/%g", h.Min(), h.Max())
	}
	checks := []struct {
		q    float64
		want float64
		tol  float64
	}{
		{0.5, 50, 3}, {0.95, 95, 4}, {0.99, 99, 4},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("q%.2f = %g, want %g ± %g", c.q, got, c.want, c.tol)
		}
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	const v = 1234.5
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if math.Abs(got-v)/v > 0.03 {
			t.Fatalf("q%g = %g, want within 3%% of %g", q, got, v)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative observation should clamp to 0, min=%g", h.Min())
	}
}

func TestHistogramWideRange(t *testing.T) {
	h := NewHistogram()
	// Mix of microseconds and seconds.
	for i := 0; i < 99; i++ {
		h.Observe(10e-6)
	}
	h.Observe(1.0)
	if p50 := h.P50(); math.Abs(p50-10e-6)/10e-6 > 0.05 {
		t.Fatalf("p50 %g, want ~10µs", p50)
	}
	if p99 := h.Quantile(0.999); p99 < 0.5 {
		t.Fatalf("p99.9 %g, want ~1s", p99)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCDF(t *testing.T) {
	// 10 items; one gets 91 accesses, rest 1 each.
	counts := make([]uint64, 10)
	for i := range counts {
		counts[i] = 1
	}
	counts[3] = 91
	pts := CDF(counts, []float64{0.1, 0.5, 1.0})
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	if math.Abs(pts[0].Frac-0.91) > 1e-9 {
		t.Fatalf("top 10%% should cover 91%% of accesses, got %g", pts[0].Frac)
	}
	if pts[2].Frac != 1 {
		t.Fatalf("full population should cover 100%%, got %g", pts[2].Frac)
	}
}

func TestCDFEmpty(t *testing.T) {
	if CDF(nil, []float64{0.5}) != nil {
		t.Fatal("nil counts should give nil")
	}
	if CDF([]uint64{0, 0}, []float64{0.5}) != nil {
		t.Fatal("all-zero counts should give nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	counts := []uint64{5, 3, 9, 1, 7, 2, 8, 4, 6, 10}
	fr := []float64{0.1, 0.2, 0.3, 0.5, 0.7, 1.0}
	pts := CDF(counts, fr)
	prev := 0.0
	for _, p := range pts {
		if p.Frac < prev {
			t.Fatalf("CDF not monotone at x=%g", p.X)
		}
		prev = p.Frac
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("n=%d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean %g", w.Mean())
	}
	// Sample variance of the data = 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-9 {
		t.Fatalf("var %g", w.Var())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("div by zero should be 0")
	}
	if Ratio(6, 3) != 2 {
		t.Fatal("6/3 != 2")
	}
}

func TestHistogramMergeEqualsDirectObservation(t *testing.T) {
	// Merging split histograms must be indistinguishable from observing
	// every value in one — counts, sum, extremes and every quantile.
	direct, a, b := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 5000; i++ {
		v := 1e-6 * float64(i%977+1) * float64(i%13+1)
		direct.Observe(v)
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	if a.Count() != direct.Count() {
		t.Fatalf("count %d vs %d", a.Count(), direct.Count())
	}
	// Summation order differs between split and direct accumulation, so
	// the mean is equal only to floating-point reassociation error.
	if d := math.Abs(a.Mean()-direct.Mean()) / direct.Mean(); d > 1e-12 {
		t.Fatalf("mean diverged beyond reassociation error: %g vs %g", a.Mean(), direct.Mean())
	}
	if a.Min() != direct.Min() || a.Max() != direct.Max() {
		t.Fatalf("extremes diverged: min %g/%g max %g/%g", a.Min(), direct.Min(), a.Max(), direct.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.95, 0.99, 0.999, 1} {
		if a.Quantile(q) != direct.Quantile(q) {
			t.Fatalf("q%g diverged: %g vs %g", q, a.Quantile(q), direct.Quantile(q))
		}
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.5)
	h.Merge(nil)            // no-op
	h.Merge(NewHistogram()) // empty no-op
	if h.Count() != 1 || h.Max() != 0.5 {
		t.Fatalf("no-op merges changed the histogram: %s", h)
	}
	empty := NewHistogram()
	empty.Merge(h) // into empty
	if empty.Count() != 1 || empty.Min() != 0.5 || empty.Max() != 0.5 {
		t.Fatalf("merge into empty lost data: %s", empty)
	}
}

func TestP999Ordering(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	if !(h.P50() <= h.P95() && h.P95() <= h.P99() && h.P99() <= h.P999() && h.P999() <= h.Max()) {
		t.Fatalf("quantile ordering violated: p50=%g p95=%g p99=%g p999=%g max=%g",
			h.P50(), h.P95(), h.P99(), h.P999(), h.Max())
	}
	if h.P999() <= h.P95() {
		t.Fatalf("p999 %g should exceed p95 %g on a uniform ramp", h.P999(), h.P95())
	}
}
