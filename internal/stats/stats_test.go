package stats

import (
	"math"
	"testing"
)

func TestHistogramEmpty(t *testing.T) {
	h := NewHistogram()
	if h.Count() != 0 || h.Mean() != 0 || h.P99() != 0 || h.Min() != 0 || h.Max() != 0 {
		t.Fatal("empty histogram should report zeros")
	}
}

func TestHistogramBasics(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	if h.Count() != 100 {
		t.Fatalf("count %d", h.Count())
	}
	if m := h.Mean(); math.Abs(m-50.5) > 1e-9 {
		t.Fatalf("mean %g", m)
	}
	if h.Min() != 1 || h.Max() != 100 {
		t.Fatalf("min/max %g/%g", h.Min(), h.Max())
	}
	checks := []struct {
		q    float64
		want float64
		tol  float64
	}{
		{0.5, 50, 3}, {0.95, 95, 4}, {0.99, 99, 4},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("q%.2f = %g, want %g ± %g", c.q, got, c.want, c.tol)
		}
	}
}

func TestHistogramRelativeError(t *testing.T) {
	h := NewHistogram()
	const v = 1234.5
	for i := 0; i < 1000; i++ {
		h.Observe(v)
	}
	for _, q := range []float64{0.1, 0.5, 0.9, 0.99} {
		got := h.Quantile(q)
		if math.Abs(got-v)/v > 0.03 {
			t.Fatalf("q%g = %g, want within 3%% of %g", q, got, v)
		}
	}
}

func TestHistogramNegativeClamped(t *testing.T) {
	h := NewHistogram()
	h.Observe(-5)
	if h.Min() != 0 {
		t.Fatalf("negative observation should clamp to 0, min=%g", h.Min())
	}
}

func TestHistogramWideRange(t *testing.T) {
	h := NewHistogram()
	// Mix of microseconds and seconds.
	for i := 0; i < 99; i++ {
		h.Observe(10e-6)
	}
	h.Observe(1.0)
	if p50 := h.P50(); math.Abs(p50-10e-6)/10e-6 > 0.05 {
		t.Fatalf("p50 %g, want ~10µs", p50)
	}
	if p99 := h.Quantile(0.999); p99 < 0.5 {
		t.Fatalf("p99.9 %g, want ~1s", p99)
	}
}

func TestHistogramReset(t *testing.T) {
	h := NewHistogram()
	h.Observe(5)
	h.Reset()
	if h.Count() != 0 || h.Mean() != 0 {
		t.Fatal("reset did not clear")
	}
}

func TestCDF(t *testing.T) {
	// 10 items; one gets 91 accesses, rest 1 each.
	counts := make([]uint64, 10)
	for i := range counts {
		counts[i] = 1
	}
	counts[3] = 91
	pts := CDF(counts, []float64{0.1, 0.5, 1.0})
	if len(pts) != 3 {
		t.Fatalf("want 3 points, got %d", len(pts))
	}
	if math.Abs(pts[0].Frac-0.91) > 1e-9 {
		t.Fatalf("top 10%% should cover 91%% of accesses, got %g", pts[0].Frac)
	}
	if pts[2].Frac != 1 {
		t.Fatalf("full population should cover 100%%, got %g", pts[2].Frac)
	}
}

func TestCDFEmpty(t *testing.T) {
	if CDF(nil, []float64{0.5}) != nil {
		t.Fatal("nil counts should give nil")
	}
	if CDF([]uint64{0, 0}, []float64{0.5}) != nil {
		t.Fatal("all-zero counts should give nil")
	}
}

func TestCDFMonotone(t *testing.T) {
	counts := []uint64{5, 3, 9, 1, 7, 2, 8, 4, 6, 10}
	fr := []float64{0.1, 0.2, 0.3, 0.5, 0.7, 1.0}
	pts := CDF(counts, fr)
	prev := 0.0
	for _, p := range pts {
		if p.Frac < prev {
			t.Fatalf("CDF not monotone at x=%g", p.X)
		}
		prev = p.Frac
	}
}

func TestWelford(t *testing.T) {
	var w Welford
	data := []float64{2, 4, 4, 4, 5, 5, 7, 9}
	for _, x := range data {
		w.Add(x)
	}
	if w.N() != 8 {
		t.Fatalf("n=%d", w.N())
	}
	if math.Abs(w.Mean()-5) > 1e-12 {
		t.Fatalf("mean %g", w.Mean())
	}
	// Sample variance of the data = 32/7.
	if math.Abs(w.Var()-32.0/7) > 1e-9 {
		t.Fatalf("var %g", w.Var())
	}
}

func TestRatio(t *testing.T) {
	if Ratio(1, 0) != 0 {
		t.Fatal("div by zero should be 0")
	}
	if Ratio(6, 3) != 2 {
		t.Fatal("6/3 != 2")
	}
}

func TestHistogramMergeEqualsDirectObservation(t *testing.T) {
	// Merging split histograms must be indistinguishable from observing
	// every value in one — counts, sum, extremes and every quantile.
	direct, a, b := NewHistogram(), NewHistogram(), NewHistogram()
	for i := 0; i < 5000; i++ {
		v := 1e-6 * float64(i%977+1) * float64(i%13+1)
		direct.Observe(v)
		if i%3 == 0 {
			a.Observe(v)
		} else {
			b.Observe(v)
		}
	}
	a.Merge(b)
	if a.Count() != direct.Count() {
		t.Fatalf("count %d vs %d", a.Count(), direct.Count())
	}
	// Summation order differs between split and direct accumulation, so
	// the mean is equal only to floating-point reassociation error.
	if d := math.Abs(a.Mean()-direct.Mean()) / direct.Mean(); d > 1e-12 {
		t.Fatalf("mean diverged beyond reassociation error: %g vs %g", a.Mean(), direct.Mean())
	}
	if a.Min() != direct.Min() || a.Max() != direct.Max() {
		t.Fatalf("extremes diverged: min %g/%g max %g/%g", a.Min(), direct.Min(), a.Max(), direct.Max())
	}
	for _, q := range []float64{0, 0.1, 0.5, 0.95, 0.99, 0.999, 1} {
		if a.Quantile(q) != direct.Quantile(q) {
			t.Fatalf("q%g diverged: %g vs %g", q, a.Quantile(q), direct.Quantile(q))
		}
	}
}

func TestHistogramMergeEdgeCases(t *testing.T) {
	h := NewHistogram()
	h.Observe(0.5)
	h.Merge(nil)            // no-op
	h.Merge(NewHistogram()) // empty no-op
	if h.Count() != 1 || h.Max() != 0.5 {
		t.Fatalf("no-op merges changed the histogram: %s", h)
	}
	empty := NewHistogram()
	empty.Merge(h) // into empty
	if empty.Count() != 1 || empty.Min() != 0.5 || empty.Max() != 0.5 {
		t.Fatalf("merge into empty lost data: %s", empty)
	}
}

func TestP999Ordering(t *testing.T) {
	h := NewHistogram()
	for i := 1; i <= 10000; i++ {
		h.Observe(float64(i) * 1e-6)
	}
	if !(h.P50() <= h.P95() && h.P95() <= h.P99() && h.P99() <= h.P999() && h.P999() <= h.Max()) {
		t.Fatalf("quantile ordering violated: p50=%g p95=%g p99=%g p999=%g max=%g",
			h.P50(), h.P95(), h.P99(), h.P999(), h.Max())
	}
	if h.P999() <= h.P95() {
		t.Fatalf("p999 %g should exceed p95 %g on a uniform ramp", h.P999(), h.P95())
	}
}

func TestQuantileNearestRank(t *testing.T) {
	// Regression: the rank used to be computed as floor(q·n) with a
	// strict-inequality scan, selecting the (k+1)-th ordered sample —
	// P99 of exactly 100 samples returned the 100th (the max). Pin the
	// nearest-rank (ceil(q·n)) order statistics for small fixed samples,
	// to the histogram's ~2% bucket resolution.
	h := NewHistogram()
	for i := 1; i <= 100; i++ {
		h.Observe(float64(i))
	}
	pin := func(q, want float64) {
		t.Helper()
		got := h.Quantile(q)
		if math.Abs(got-want) > 0.025*want {
			t.Fatalf("q%g = %g, want %g ± 2.5%%", q, got, want)
		}
	}
	pin(0.50, 50) // ceil(50.0) = 50th sample (the old code returned the 51st)
	pin(0.95, 95) // ceil(95.0) = 95th
	pin(0.99, 99) // ceil(99.0) = 99th — NOT the max
	if got := h.Quantile(0.99); got >= 100 {
		t.Fatalf("P99 of 100 samples returned the max (%g): off-by-one regressed", got)
	}
	// ceil(99.9) = 100th: the max exactly (clamped, not bucket-rounded).
	if got := h.Quantile(0.999); got != 100 {
		t.Fatalf("P999 of 100 samples = %g, want the max (100)", got)
	}

	// A 4-sample histogram exercises the ranks directly.
	s := NewHistogram()
	for _, v := range []float64{10, 20, 30, 40} {
		s.Observe(v)
	}
	for _, c := range []struct{ q, want float64 }{
		{0.25, 10}, // ceil(1.0) = 1st
		{0.50, 20}, // ceil(2.0) = 2nd (old: 3rd = 30)
		{0.51, 30}, // ceil(2.04) = 3rd
		{0.75, 30}, // ceil(3.0) = 3rd
		{0.76, 40}, // ceil(3.04) = 4th
	} {
		got := s.Quantile(c.q)
		if math.Abs(got-c.want) > 0.025*c.want {
			t.Fatalf("4-sample q%g = %g, want %g", c.q, got, c.want)
		}
	}
	// Exact-product float hazard: 0.9 × 10 evaluates just above 9.0; the
	// rank must still be 9, not 10.
	d := NewHistogram()
	for i := 1; i <= 10; i++ {
		d.Observe(float64(i))
	}
	if got := d.Quantile(0.9); math.Abs(got-9) > 0.25 {
		t.Fatalf("q0.9 of 10 samples = %g, want the 9th (9)", got)
	}
	// A single observation is every quantile.
	one := NewHistogram()
	one.Observe(7)
	for _, q := range []float64{0.01, 0.5, 0.99} {
		if got := one.Quantile(q); got != 7 {
			t.Fatalf("single-sample q%g = %g, want 7", q, got)
		}
	}
}

func TestResetAndMergeRestoreSentinels(t *testing.T) {
	// Reset must restore the ±Inf min/max sentinels so the next Observe
	// (or Merge) re-establishes true extrema, and merging an empty
	// histogram must not leak a sentinel into Min/Max.
	h := NewHistogram()
	h.Observe(100)
	h.Reset()
	if h.Min() != 0 || h.Max() != 0 {
		t.Fatalf("empty accessors after Reset: min=%g max=%g", h.Min(), h.Max())
	}
	h.Observe(5)
	if h.Min() != 5 || h.Max() != 5 {
		t.Fatalf("sentinels not restored by Reset: min=%g max=%g", h.Min(), h.Max())
	}
	o := NewHistogram()
	o.Reset() // reset-then-merge: still a clean empty histogram
	h.Merge(o)
	if h.Min() != 5 || h.Max() != 5 || h.Count() != 1 {
		t.Fatalf("merging a reset histogram corrupted extrema: %s", h)
	}
	o.Observe(3)
	h.Merge(o)
	if h.Min() != 3 || h.Max() != 5 {
		t.Fatalf("merge extrema wrong: min=%g max=%g", h.Min(), h.Max())
	}
	if q := h.Quantile(0.5); math.Abs(q-3) > 0.1 {
		t.Fatalf("median of {3,5} = %g, want 3 (nearest rank)", q)
	}
}

func TestJainFairness(t *testing.T) {
	// Uniform allocation is perfectly fair.
	if got := JainFairness([]float64{5, 5, 5, 5}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("uniform Jain = %g, want 1", got)
	}
	// A single hot entry among n scores 1/n.
	if got := JainFairness([]float64{9, 0, 0}); math.Abs(got-1.0/3) > 1e-12 {
		t.Fatalf("single-hot Jain = %g, want 1/3", got)
	}
	// Empty and all-zero inputs score 0.
	if got := JainFairness(nil); got != 0 {
		t.Fatalf("empty Jain = %g, want 0", got)
	}
	if got := JainFairness([]float64{0, 0}); got != 0 {
		t.Fatalf("all-zero Jain = %g, want 0", got)
	}
	// NaN and Inf entries are skipped, not propagated.
	if got := JainFairness([]float64{math.NaN(), 3, 3, math.Inf(1)}); math.Abs(got-1) > 1e-12 {
		t.Fatalf("NaN-skipping Jain = %g, want 1", got)
	}
	if got := JainFairness([]float64{math.NaN()}); got != 0 {
		t.Fatalf("all-NaN Jain = %g, want 0", got)
	}
	// A mild skew lands strictly between 1/n and 1.
	got := JainFairness([]float64{4, 2, 2})
	if !(got > 1.0/3 && got < 1) {
		t.Fatalf("skewed Jain = %g, want in (1/3, 1)", got)
	}
}
