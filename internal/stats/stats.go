// Package stats provides the streaming statistics used across the
// reproduction: latency histograms with percentile queries (p50/p95/p99 are
// the paper's serving metrics, §2.3), cumulative-distribution builders for
// the locality studies (Fig. 4), and simple counters.
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Histogram is a log-linear histogram for non-negative values, similar in
// spirit to HDR histograms: values are bucketed with bounded relative error
// so that percentile queries over microsecond..second latencies stay cheap.
// The zero value is not usable; call NewHistogram.
type Histogram struct {
	buckets []uint64
	counts  uint64
	sum     float64
	min     float64
	max     float64
	// growth is the per-bucket multiplicative width.
	growth float64
	base   float64
}

// NewHistogram returns a histogram covering [base, ∞) with ~2% relative
// bucket error. Values below base land in bucket 0.
func NewHistogram() *Histogram {
	return &Histogram{
		buckets: make([]uint64, 1, 1024),
		growth:  1.02,
		base:    1e-9,
		min:     math.Inf(1),
		max:     math.Inf(-1),
	}
}

func (h *Histogram) bucketIndex(v float64) int {
	if v <= h.base {
		return 0
	}
	return 1 + int(math.Log(v/h.base)/math.Log(h.growth))
}

func (h *Histogram) bucketValue(i int) float64 {
	if i <= 0 {
		return h.base
	}
	return h.base * math.Pow(h.growth, float64(i)-0.5)
}

// Observe records one value. Negative values are clamped to zero.
func (h *Histogram) Observe(v float64) {
	if v < 0 {
		v = 0
	}
	i := h.bucketIndex(v)
	for i >= len(h.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	h.buckets[i]++
	h.counts++
	h.sum += v
	if v < h.min {
		h.min = v
	}
	if v > h.max {
		h.max = v
	}
}

// Count returns the number of observations.
func (h *Histogram) Count() uint64 { return h.counts }

// Sum returns the sum of all observations (0 if empty).
func (h *Histogram) Sum() float64 { return h.sum }

// Mean returns the mean of all observations (0 if empty).
func (h *Histogram) Mean() float64 {
	if h.counts == 0 {
		return 0
	}
	return h.sum / float64(h.counts)
}

// Min returns the smallest observation (0 if empty).
func (h *Histogram) Min() float64 {
	if h.counts == 0 {
		return 0
	}
	return h.min
}

// Max returns the largest observation (0 if empty).
func (h *Histogram) Max() float64 {
	if h.counts == 0 {
		return 0
	}
	return h.max
}

// Quantile returns the value at quantile q in [0, 1] under the
// nearest-rank definition — the smallest observation whose cumulative
// count reaches ceil(q·n) — approximated to the histogram's bucket
// resolution. Returns 0 for an empty histogram.
//
// An earlier revision computed the rank as floor(q·n) and scanned with a
// strict inequality, selecting the (k+1)-th ordered sample: P99 of exactly
// 100 samples returned the 100th (the max), inflating every reported tail
// latency by one order statistic.
func (h *Histogram) Quantile(q float64) float64 {
	if h.counts == 0 {
		return 0
	}
	if q <= 0 {
		return h.min
	}
	if q >= 1 {
		return h.max
	}
	// ceil(q·n), guarded against float error pushing an exact product
	// (0.9 × 10 evaluates just above 9.0) onto the next integer. The
	// guard is relative — an absolute epsilon stops covering the
	// product's ulp once n passes ~1e7.
	rank := uint64(math.Ceil(q * float64(h.counts) * (1 - 1e-12)))
	if rank < 1 {
		rank = 1
	}
	var cum uint64
	for i, c := range h.buckets {
		cum += c
		if cum >= rank {
			v := h.bucketValue(i)
			if v < h.min {
				v = h.min
			}
			if v > h.max {
				v = h.max
			}
			return v
		}
	}
	return h.max
}

// P50, P95 and P99 are convenience accessors for the paper's serving
// percentiles.
func (h *Histogram) P50() float64 { return h.Quantile(0.50) }

// P95 returns the 95th percentile.
func (h *Histogram) P95() float64 { return h.Quantile(0.95) }

// P99 returns the 99th percentile.
func (h *Histogram) P99() float64 { return h.Quantile(0.99) }

// P999 returns the 99.9th percentile — the deep-tail metric migration
// interference shows up in first.
func (h *Histogram) P999() float64 { return h.Quantile(0.999) }

// Merge folds o's observations into h. Both histograms share the same
// bucket layout (growth and base are fixed at construction), so merging
// is bucket-wise addition and the result is identical to having observed
// every value directly — the cheap way to aggregate per-host latency
// into a fleet histogram.
func (h *Histogram) Merge(o *Histogram) {
	if o == nil || o.counts == 0 {
		return
	}
	for len(h.buckets) < len(o.buckets) {
		h.buckets = append(h.buckets, 0)
	}
	for i, c := range o.buckets {
		h.buckets[i] += c
	}
	h.counts += o.counts
	h.sum += o.sum
	if o.min < h.min {
		h.min = o.min
	}
	if o.max > h.max {
		h.max = o.max
	}
}

// Reset clears all observations.
func (h *Histogram) Reset() {
	h.buckets = h.buckets[:1]
	h.buckets[0] = 0
	h.counts = 0
	h.sum = 0
	h.min = math.Inf(1)
	h.max = math.Inf(-1)
}

// String summarizes the histogram for logs.
func (h *Histogram) String() string {
	return fmt.Sprintf("n=%d mean=%.3g p50=%.3g p95=%.3g p99=%.3g max=%.3g",
		h.counts, h.Mean(), h.P50(), h.P95(), h.P99(), h.Max())
}

// CDFPoint is one (x, cumulative fraction) sample of an empirical CDF.
type CDFPoint struct {
	X    float64
	Frac float64
}

// CDF computes an empirical cumulative distribution over counts. The input
// maps an item to its access count; the output is the cumulative fraction of
// total accesses covered by the top-k items, sampled at the given fractions
// of the item population (the exact form of Fig. 4: x = fraction of rows,
// y = fraction of accesses).
func CDF(counts []uint64, atFractions []float64) []CDFPoint {
	if len(counts) == 0 {
		return nil
	}
	sorted := make([]uint64, len(counts))
	copy(sorted, counts)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] > sorted[j] })
	var total uint64
	for _, c := range sorted {
		total += c
	}
	if total == 0 {
		return nil
	}
	out := make([]CDFPoint, 0, len(atFractions))
	var cum uint64
	next := 0
	for i, c := range sorted {
		cum += c
		frac := float64(i+1) / float64(len(sorted))
		for next < len(atFractions) && frac >= atFractions[next] {
			out = append(out, CDFPoint{X: atFractions[next], Frac: float64(cum) / float64(total)})
			next++
		}
	}
	for next < len(atFractions) {
		out = append(out, CDFPoint{X: atFractions[next], Frac: 1})
		next++
	}
	return out
}

// Welford accumulates running mean and variance.
type Welford struct {
	n    uint64
	mean float64
	m2   float64
}

// Add records one observation.
func (w *Welford) Add(x float64) {
	w.n++
	d := x - w.mean
	w.mean += d / float64(w.n)
	w.m2 += d * (x - w.mean)
}

// N returns the observation count.
func (w *Welford) N() uint64 { return w.n }

// Mean returns the running mean.
func (w *Welford) Mean() float64 { return w.mean }

// Var returns the sample variance.
func (w *Welford) Var() float64 {
	if w.n < 2 {
		return 0
	}
	return w.m2 / float64(w.n-1)
}

// Stddev returns the sample standard deviation.
func (w *Welford) Stddev() float64 { return math.Sqrt(w.Var()) }

// JainFairness returns Jain's fairness index (Σx)²/(n·Σx²) over the
// finite entries of xs — the standard allocation-evenness measure for
// non-negative shares (per-host load, per-class admitted throughput). It
// is 1.0 when all entries are equal, 1/n when a single entry holds
// everything, and 0 for an empty or all-zero input. NaN and ±Inf entries
// are skipped.
func JainFairness(xs []float64) float64 {
	var sum, sumSq float64
	n := 0
	for _, x := range xs {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			continue
		}
		sum += x
		sumSq += x * x
		n++
	}
	if n == 0 || sumSq == 0 {
		return 0
	}
	return sum * sum / (float64(n) * sumSq)
}

// Ratio formats a/b defensively.
func Ratio(a, b float64) float64 {
	if b == 0 {
		return 0
	}
	return a / b
}
