// Package model defines DLRM model configurations and builds synthetic
// model instances. The three target models M1/M2/M3 reproduce the exact
// shape parameters of the paper's Table 6 (table counts, embedding
// dimension ranges and averages in bytes, pooling factors, batch sizes and
// MLP shapes); capacities can be scaled down by a configurable factor so
// experiments fit in test machines while preserving every ratio the
// paper's results depend on.
package model

import (
	"fmt"
	"math"

	"sdm/internal/embedding"
	"sdm/internal/quant"
	"sdm/internal/xrand"
)

// Config is a DLRM model configuration in the shape of Table 6.
type Config struct {
	Name string
	// TotalBytes is the serving size of the model (embedding payload).
	TotalBytes int64
	// User/Item table populations.
	NumUserTables int
	NumItemTables int
	// Row byte ranges [min, max] and target average for user/item tables
	// ("Emb table dim (B)" of Table 6 — dimension in bytes, row-wise
	// quantized).
	UserDimBytes DimRange
	ItemDimBytes DimRange
	// Average pooling factors.
	UserPF float64
	ItemPF float64
	// Batch sizes (§2.2: B_U is 1 for latency-sensitive inference;
	// InferenceEval uses B_U == B_I, Table 2).
	UserBatch int
	ItemBatch int
	// MLP shape.
	NumMLPLayers int
	AvgMLPWidth  int
	// UserCapacityFrac is the fraction of TotalBytes held by user tables
	// (§2.2: "more than 2/3 of the model capacity are contributed by the
	// user embeddings").
	UserCapacityFrac float64
	// Access skew (Zipf alpha) ranges; the paper observes item tables
	// show more temporal locality than user tables (Fig. 4).
	UserAlpha AlphaRange
	ItemAlpha AlphaRange
	// ZeroFrac is the fraction of prunable (≈0) rows (§4.5).
	ZeroFrac float64
	// QType is the embedding storage encoding (int8 row-wise by default).
	QType quant.Type
}

// DimRange is a [Min, Max] byte range with a target average.
type DimRange struct {
	Min, Max, Avg int
}

// AlphaRange is a uniform range of Zipf skews.
type AlphaRange struct {
	Min, Max float64
}

// M1 returns the Table 6 configuration of model M1: 143 B parameters,
// 143 GB, 61 user + 30 item tables, user PF 42, item batch 50.
func M1() Config {
	return Config{
		Name:          "M1",
		TotalBytes:    143 << 30,
		NumUserTables: 61, NumItemTables: 30,
		UserDimBytes: DimRange{Min: 90, Max: 172, Avg: 124},
		ItemDimBytes: DimRange{Min: 90, Max: 172, Avg: 132},
		UserPF:       42, ItemPF: 9,
		UserBatch: 1, ItemBatch: 50,
		NumMLPLayers: 31, AvgMLPWidth: 300,
		UserCapacityFrac: 0.70,
		UserAlpha:        AlphaRange{Min: 0.7, Max: 1.05},
		ItemAlpha:        AlphaRange{Min: 0.95, Max: 1.3},
		ZeroFrac:         0.25,
		QType:            quant.Int8,
	}
}

// M2 returns the Table 6 configuration of model M2: 450 B parameters,
// 150 GB, 450 user + 280 item tables, accelerator-class compute.
func M2() Config {
	return Config{
		Name:          "M2",
		TotalBytes:    150 << 30,
		NumUserTables: 450, NumItemTables: 280,
		UserDimBytes: DimRange{Min: 32, Max: 288, Avg: 64},
		ItemDimBytes: DimRange{Min: 4, Max: 320, Avg: 38},
		UserPF:       25, ItemPF: 14,
		UserBatch: 1, ItemBatch: 150,
		NumMLPLayers: 43, AvgMLPWidth: 735,
		UserCapacityFrac: 0.67, // 100 GB of 150 GB is user side (§5.2)
		UserAlpha:        AlphaRange{Min: 0.7, Max: 1.05},
		ItemAlpha:        AlphaRange{Min: 0.95, Max: 1.3},
		ZeroFrac:         0.25,
		QType:            quant.Int8,
	}
}

// M3 returns the Table 6 configuration of the future model M3: 5 T
// parameters, 1 TB, 1800 user + 900 item tables, item batch 1000.
func M3() Config {
	return Config{
		Name:          "M3",
		TotalBytes:    1000 << 30,
		NumUserTables: 1800, NumItemTables: 900,
		UserDimBytes: DimRange{Min: 32, Max: 512, Avg: 192},
		ItemDimBytes: DimRange{Min: 32, Max: 512, Avg: 192},
		UserPF:       26, ItemPF: 26,
		UserBatch: 1, ItemBatch: 1000,
		NumMLPLayers: 35, AvgMLPWidth: 6000,
		UserCapacityFrac: 0.67,
		UserAlpha:        AlphaRange{Min: 0.7, Max: 1.05},
		ItemAlpha:        AlphaRange{Min: 0.95, Max: 1.3},
		ZeroFrac:         0.25,
		QType:            quant.Int8,
	}
}

// Fig1Model returns the model behind Fig. 1: 140 GB, 734 tables, of which
// 445 are user tables accounting for 100 GB.
func Fig1Model() Config {
	c := M2()
	c.Name = "Fig1"
	c.TotalBytes = 140 << 30
	c.NumUserTables = 445
	c.NumItemTables = 289
	c.UserCapacityFrac = 100.0 / 140.0
	return c
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	switch {
	case c.TotalBytes <= 0:
		return fmt.Errorf("model %s: TotalBytes must be > 0", c.Name)
	case c.NumUserTables < 0 || c.NumItemTables < 0:
		return fmt.Errorf("model %s: negative table counts", c.Name)
	case c.NumUserTables+c.NumItemTables == 0:
		return fmt.Errorf("model %s: no tables", c.Name)
	case c.UserCapacityFrac < 0 || c.UserCapacityFrac > 1:
		return fmt.Errorf("model %s: UserCapacityFrac out of [0,1]", c.Name)
	case c.ItemBatch <= 0:
		return fmt.Errorf("model %s: ItemBatch must be > 0", c.Name)
	}
	return nil
}

// Instance is a concrete synthetic model: table specs (optionally scaled in
// capacity) plus MLP widths.
type Instance struct {
	Config Config
	// Scale is the capacity scale factor applied (1 = paper size).
	Scale float64
	// Tables holds user tables first, then item tables.
	Tables []embedding.Spec
	// MLPWidths are the layer widths for the combined dense stack.
	MLPWidths []int
	// Seed used for synthesis.
	Seed uint64
}

// UserTables returns the user-table specs.
func (in *Instance) UserTables() []embedding.Spec {
	return in.Tables[:in.Config.NumUserTables]
}

// ItemTables returns the item-table specs.
func (in *Instance) ItemTables() []embedding.Spec {
	return in.Tables[in.Config.NumUserTables:]
}

// TotalBytes returns the summed (scaled) embedding payload.
func (in *Instance) TotalBytes() int64 {
	var t int64
	for _, s := range in.Tables {
		t += s.SizeBytes()
	}
	return t
}

// UserBytes returns the summed user-table payload.
func (in *Instance) UserBytes() int64 {
	var t int64
	for _, s := range in.UserTables() {
		t += s.SizeBytes()
	}
	return t
}

// Build synthesizes an instance of the configuration at the given capacity
// scale (e.g. 1e-4 shrinks a 143 GB model to ~14 MB while preserving table
// counts, dims, pooling factors and skews). Rows per table follow a
// log-uniform distribution so a few tables dominate capacity, matching the
// long tail of Fig. 1.
func Build(cfg Config, scale float64, seed uint64) (*Instance, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if scale <= 0 || scale > 1 {
		return nil, fmt.Errorf("model %s: scale must be in (0,1], got %g", cfg.Name, scale)
	}
	rng := xrand.New(seed)
	in := &Instance{Config: cfg, Scale: scale, Seed: seed}

	userBudget := int64(float64(cfg.TotalBytes) * cfg.UserCapacityFrac * scale)
	itemBudget := int64(float64(cfg.TotalBytes)*scale) - userBudget

	userSpecs := buildGroup(rng, cfg, embedding.User, cfg.NumUserTables, userBudget, cfg.UserDimBytes, cfg.UserPF, cfg.UserAlpha, 0)
	itemSpecs := buildGroup(rng, cfg, embedding.Item, cfg.NumItemTables, itemBudget, cfg.ItemDimBytes, cfg.ItemPF, cfg.ItemAlpha, cfg.NumUserTables)
	in.Tables = append(userSpecs, itemSpecs...)

	// Dense stack widths: input = avg width, NumMLPLayers layers of
	// AvgMLPWidth, final output 1 (CTR logit).
	in.MLPWidths = append(in.MLPWidths, cfg.AvgMLPWidth)
	for i := 0; i < cfg.NumMLPLayers-1; i++ {
		in.MLPWidths = append(in.MLPWidths, cfg.AvgMLPWidth)
	}
	in.MLPWidths = append(in.MLPWidths, 1)
	return in, nil
}

func buildGroup(rng *xrand.RNG, cfg Config, kind embedding.Kind, n int, budget int64, dims DimRange, pf float64, alpha AlphaRange, idBase int) []embedding.Spec {
	if n == 0 {
		return nil
	}
	specs := make([]embedding.Spec, n)
	// Draw row-size weights log-uniformly over ~3 decades so a minority
	// of tables carries most capacity (Fig. 1's skew).
	weights := make([]float64, n)
	var wsum float64
	for i := range weights {
		weights[i] = math.Pow(10, 3*rng.Float64())
		wsum += weights[i]
	}
	for i := range specs {
		dimBytes := sampleDim(rng, dims)
		// Row payload dimBytes under int8 ⇒ dim elements = dimBytes - 8.
		dim := dimElements(cfg.QType, dimBytes)
		rb := quant.RowBytes(cfg.QType, dim)
		tableBytes := float64(budget) * weights[i] / wsum
		rows := int64(tableBytes / float64(rb))
		if rows < 4 {
			rows = 4
		}
		a := alpha.Min + rng.Float64()*(alpha.Max-alpha.Min)
		p := pf * (0.5 + rng.Float64()) // per-table PF spread around avg
		if p < 1 {
			p = 1
		}
		specs[i] = embedding.Spec{
			ID:            idBase + i,
			Name:          fmt.Sprintf("%s_%s_%d", cfg.Name, kind, i),
			Rows:          rows,
			Dim:           dim,
			QType:         cfg.QType,
			Kind:          kind,
			PoolingFactor: p,
			Alpha:         a,
			ZeroFrac:      cfg.ZeroFrac,
		}
	}
	return specs
}

// sampleDim draws a row byte size in [Min, Max], biased toward Avg by
// mixing a uniform draw with the average.
func sampleDim(rng *xrand.RNG, d DimRange) int {
	if d.Max <= d.Min {
		return d.Min
	}
	u := d.Min + rng.Intn(d.Max-d.Min+1)
	// Blend toward the average (beta-ish concentration).
	v := int(0.6*float64(d.Avg) + 0.4*float64(u))
	if v < d.Min {
		v = d.Min
	}
	if v > d.Max {
		v = d.Max
	}
	return v
}

// dimElements converts a target stored-row byte size into an element count
// for the given encoding (at least 1).
func dimElements(t quant.Type, rowBytes int) int {
	switch t {
	case quant.Int8:
		d := rowBytes - 8
		if d < 1 {
			d = 1
		}
		return d
	case quant.Int4:
		d := (rowBytes - 8) * 2
		if d < 1 {
			d = 1
		}
		return d
	case quant.FP16:
		d := rowBytes / 2
		if d < 1 {
			d = 1
		}
		return d
	default:
		d := rowBytes / 4
		if d < 1 {
			d = 1
		}
		return d
	}
}

// Materialize builds the actual synthetic embedding tables of an instance.
// Memory use equals the scaled model size; keep scale small in tests.
func (in *Instance) Materialize() ([]*embedding.Table, error) {
	tables := make([]*embedding.Table, len(in.Tables))
	for i, spec := range in.Tables {
		t, err := embedding.NewSynthetic(spec, in.Seed)
		if err != nil {
			return nil, fmt.Errorf("materialize %s: %w", spec.Name, err)
		}
		tables[i] = t
	}
	return tables, nil
}

// BandwidthPerQuery returns the bytes per query each table contributes
// under Eq. 2: user tables are read once per query (B_U = 1), item tables
// B_I times. The slice is indexed like Tables.
func (in *Instance) BandwidthPerQuery() []float64 {
	out := make([]float64, len(in.Tables))
	for i, s := range in.Tables {
		batch := 1.0
		if s.Kind == embedding.Item {
			batch = float64(in.Config.ItemBatch)
		}
		out[i] = batch * s.PoolingFactor * float64(s.RowBytes())
	}
	return out
}

// IOPSRequired returns Eq. 8's IOPS demand at the given QPS for the tables
// selected by the filter (nil = all): QPS · Σ p_i · B (batch 1 for user,
// B_I for item tables).
func (in *Instance) IOPSRequired(qps float64, include func(embedding.Spec) bool) float64 {
	var iops float64
	for _, s := range in.Tables {
		if include != nil && !include(s) {
			continue
		}
		batch := 1.0
		if s.Kind == embedding.Item {
			batch = float64(in.Config.ItemBatch)
		}
		iops += qps * s.PoolingFactor * batch
	}
	return iops
}
