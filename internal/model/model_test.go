package model

import (
	"math"
	"testing"

	"sdm/internal/embedding"
)

func TestTable6Shapes(t *testing.T) {
	cases := []struct {
		cfg        Config
		user, item int
		itemBatch  int
	}{
		{M1(), 61, 30, 50},
		{M2(), 450, 280, 150},
		{M3(), 1800, 900, 1000},
	}
	for _, c := range cases {
		if c.cfg.NumUserTables != c.user || c.cfg.NumItemTables != c.item {
			t.Errorf("%s: table counts %d/%d, want %d/%d",
				c.cfg.Name, c.cfg.NumUserTables, c.cfg.NumItemTables, c.user, c.item)
		}
		if c.cfg.ItemBatch != c.itemBatch {
			t.Errorf("%s: item batch %d, want %d", c.cfg.Name, c.cfg.ItemBatch, c.itemBatch)
		}
		if c.cfg.UserBatch != 1 {
			t.Errorf("%s: user batch must be 1 for inference (§2.2)", c.cfg.Name)
		}
		if err := c.cfg.Validate(); err != nil {
			t.Errorf("%s: %v", c.cfg.Name, err)
		}
	}
}

func TestValidateRejectsBadConfigs(t *testing.T) {
	bad := M1()
	bad.TotalBytes = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero size should fail")
	}
	bad = M1()
	bad.NumUserTables, bad.NumItemTables = 0, 0
	if err := bad.Validate(); err == nil {
		t.Error("no tables should fail")
	}
	bad = M1()
	bad.UserCapacityFrac = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("capacity frac > 1 should fail")
	}
	bad = M1()
	bad.ItemBatch = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero item batch should fail")
	}
}

func TestBuildScaleBounds(t *testing.T) {
	if _, err := Build(M1(), 0, 1); err == nil {
		t.Error("scale 0 should fail")
	}
	if _, err := Build(M1(), 2, 1); err == nil {
		t.Error("scale > 1 should fail")
	}
}

func TestBuildScaledCapacity(t *testing.T) {
	const scale = 1e-5
	in, err := Build(M1(), scale, 42)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.Tables) != 91 {
		t.Fatalf("tables %d, want 91", len(in.Tables))
	}
	total := in.TotalBytes()
	target := float64(M1().TotalBytes) * scale
	if math.Abs(float64(total)-target)/target > 0.5 {
		t.Fatalf("scaled capacity %d, want ≈%g", total, target)
	}
	// §2.2: user tables carry the majority of capacity.
	userFrac := float64(in.UserBytes()) / float64(total)
	if userFrac < 0.55 || userFrac > 0.85 {
		t.Fatalf("user capacity fraction %.2f, want ≈0.70", userFrac)
	}
}

func TestBuildDeterministic(t *testing.T) {
	a, err := Build(M2(), 1e-6, 7)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Build(M2(), 1e-6, 7)
	if err != nil {
		t.Fatal(err)
	}
	for i := range a.Tables {
		if a.Tables[i] != b.Tables[i] {
			t.Fatalf("table %d differs across builds with the same seed", i)
		}
	}
}

func TestBuildSpecsValid(t *testing.T) {
	in, err := Build(M2(), 1e-6, 3)
	if err != nil {
		t.Fatal(err)
	}
	cfg := M2()
	for i, s := range in.Tables {
		if err := s.Validate(); err != nil {
			t.Fatalf("table %d: %v", i, err)
		}
		wantKind := embedding.User
		dims := cfg.UserDimBytes
		if i >= cfg.NumUserTables {
			wantKind = embedding.Item
			dims = cfg.ItemDimBytes
		}
		if s.Kind != wantKind {
			t.Fatalf("table %d kind %v", i, s.Kind)
		}
		if rb := s.RowBytes(); rb < dims.Min-8 || rb > dims.Max+8 {
			t.Fatalf("table %d row bytes %d outside [%d,%d]", i, rb, dims.Min, dims.Max)
		}
		if s.Alpha < 0.5 || s.Alpha > 1.5 {
			t.Fatalf("table %d alpha %g out of band", i, s.Alpha)
		}
	}
}

func TestCapacitySkew(t *testing.T) {
	// Fig. 1: a minority of tables should hold the majority of capacity.
	in, err := Build(Fig1Model(), 1e-5, 9)
	if err != nil {
		t.Fatal(err)
	}
	sizes := make([]int64, len(in.Tables))
	var total int64
	for i, s := range in.Tables {
		sizes[i] = s.SizeBytes()
		total += sizes[i]
	}
	// Top 20% of tables by size.
	top := int64(0)
	n := len(sizes) / 5
	for i := 0; i < n; i++ {
		// selection of max
		best := 0
		for j := range sizes {
			if sizes[j] > sizes[best] {
				best = j
			}
		}
		top += sizes[best]
		sizes[best] = -1
	}
	if frac := float64(top) / float64(total); frac < 0.5 {
		t.Fatalf("top-20%% tables hold %.0f%% of capacity, want majority", frac*100)
	}
}

func TestMaterializeSmall(t *testing.T) {
	in, err := Build(M1(), 2e-7, 5)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := in.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != len(in.Tables) {
		t.Fatal("table count mismatch")
	}
	for i, tb := range tables {
		if tb.Spec().Rows != in.Tables[i].Rows {
			t.Fatalf("table %d rows mismatch", i)
		}
	}
}

func TestBandwidthPerQuery(t *testing.T) {
	in, err := Build(M1(), 1e-6, 5)
	if err != nil {
		t.Fatal(err)
	}
	bw := in.BandwidthPerQuery()
	cfg := in.Config
	// Item tables must be amplified by the item batch (Eq. 2).
	u := in.Tables[0]
	it := in.Tables[cfg.NumUserTables]
	wantU := u.PoolingFactor * float64(u.RowBytes())
	wantI := float64(cfg.ItemBatch) * it.PoolingFactor * float64(it.RowBytes())
	if math.Abs(bw[0]-wantU) > 1e-9 {
		t.Fatalf("user bw %g want %g", bw[0], wantU)
	}
	if math.Abs(bw[cfg.NumUserTables]-wantI) > 1e-9 {
		t.Fatalf("item bw %g want %g", bw[cfg.NumUserTables], wantI)
	}
}

func TestIOPSRequired(t *testing.T) {
	in, err := Build(M1(), 1e-6, 5)
	if err != nil {
		t.Fatal(err)
	}
	userOnly := in.IOPSRequired(100, func(s embedding.Spec) bool { return s.Kind == embedding.User })
	all := in.IOPSRequired(100, nil)
	if userOnly <= 0 || all <= userOnly {
		t.Fatalf("iops userOnly=%g all=%g", userOnly, all)
	}
	// Eq. 8 magnitude check: ≈ QPS × Σ p_i (user side).
	var pfSum float64
	for _, s := range in.UserTables() {
		pfSum += s.PoolingFactor
	}
	if math.Abs(userOnly-100*pfSum)/userOnly > 1e-9 {
		t.Fatalf("user IOPS %g, want %g", userOnly, 100*pfSum)
	}
}

func TestFig1ModelShape(t *testing.T) {
	cfg := Fig1Model()
	if cfg.NumUserTables != 445 {
		t.Fatalf("Fig1 user tables %d, want 445", cfg.NumUserTables)
	}
	if cfg.NumUserTables+cfg.NumItemTables != 734 {
		t.Fatalf("Fig1 total tables %d, want 734", cfg.NumUserTables+cfg.NumItemTables)
	}
	userGB := float64(cfg.TotalBytes) * cfg.UserCapacityFrac / (1 << 30)
	if math.Abs(userGB-100) > 1 {
		t.Fatalf("Fig1 user capacity %.0f GB, want 100", userGB)
	}
}

func TestMLPWidths(t *testing.T) {
	in, err := Build(M1(), 1e-6, 5)
	if err != nil {
		t.Fatal(err)
	}
	if len(in.MLPWidths) != M1().NumMLPLayers+1 {
		t.Fatalf("MLP widths %d", len(in.MLPWidths))
	}
	if in.MLPWidths[len(in.MLPWidths)-1] != 1 {
		t.Fatal("final output must be the CTR logit")
	}
}
