// Package blockdev simulates the Storage Class Memory devices of the
// paper's Table 1 (§3): PCIe Nand Flash, PCIe 3DXP (Optane SSD), PCIe ZSSD,
// DIMM 3DXP and CXL 3DXP.
//
// The simulator is "virtual time, real data": device contents are held in
// memory and copied byte-for-byte on every access (so the functional layer
// above — caches, dequantization, pooling — operates on real bytes), while
// access latency is computed from a queueing model on the discrete-event
// clock. Each device exposes a fixed number of internal channels (dies);
// an IO occupies a channel for the technology's media latency, so the
// sustainable IOPS ceiling is channels/mediaLatency and latency rises as
// the submitted load approaches that ceiling — reproducing the shape of
// the paper's Fig. 3 (Optane: flat ~10 µs then a sharp knee near 4 MIOPS;
// Nand: ~100 µs with an earlier knee near 0.5 MIOPS and occasional long
// tails from internal housekeeping).
package blockdev

import (
	"errors"
	"fmt"
	"time"

	"sdm/internal/simclock"
	"sdm/internal/xrand"
)

// Technology identifies an SM technology from Table 1.
type Technology int

// Technologies from the paper's Table 1.
const (
	NandFlash Technology = iota + 1
	OptaneSSD
	ZSSD
	DIMM3DXP
	CXL3DXP
	// DRAM is not an SM technology; it is included so the same device
	// abstraction can model direct FM placement and mmap page cache.
	DRAM
)

// String returns the technology name.
func (t Technology) String() string {
	switch t {
	case NandFlash:
		return "PCIe Nand Flash"
	case OptaneSSD:
		return "PCIe 3DXP (Optane)"
	case ZSSD:
		return "PCIe ZSSD"
	case DIMM3DXP:
		return "DIMM 3DXP (Optane)"
	case CXL3DXP:
		return "CXL 3DXP"
	case DRAM:
		return "DRAM"
	default:
		return fmt.Sprintf("Technology(%d)", int(t))
	}
}

// TechSpec captures the Table 1 parameters for one SM technology.
type TechSpec struct {
	Tech Technology
	// MaxIOPS is the random-read IOPS ceiling of one device.
	MaxIOPS float64
	// MediaLatency is the unloaded access latency for one IO.
	MediaLatency time.Duration
	// AccessGranularity is the device's native access granularity in
	// bytes: reads below this size still cost a full-granularity media
	// access (read amplification), though SGL sub-block reads can avoid
	// transferring the unwanted bytes over the bus (§4.1.1).
	AccessGranularity int
	// EnduranceDWPD is the physical drive-writes-per-day rating used by
	// the model-update interval equation of §3.
	EnduranceDWPD float64
	// CostPerGBRelDRAM is the relative cost per GB vs DDR4 DRAM.
	CostPerGBRelDRAM float64
	// Sourcing is the number of vendors offering the technology.
	Sourcing int
	// BusBandwidth is the host-link bandwidth (PCIe/CXL/DIMM) in bytes/s.
	BusBandwidth float64
	// TailProb/TailFactor model occasional long-tail accesses (Nand GC,
	// §5.1's "occasional long tail latency of Nand Flash").
	TailProb   float64
	TailFactor float64
	// WriteLatency is the program latency for one granularity write.
	WriteLatency time.Duration
}

// Spec returns the catalog entry for a technology, mirroring Table 1.
// Values are from the paper's Table 1 and Fig. 3 (public information).
func Spec(t Technology) TechSpec {
	switch t {
	case NandFlash:
		return TechSpec{
			Tech: NandFlash, MaxIOPS: 500e3, MediaLatency: 90 * time.Microsecond,
			AccessGranularity: 4096, EnduranceDWPD: 5, CostPerGBRelDRAM: 1.0 / 30,
			Sourcing: 3, BusBandwidth: 3.2e9, TailProb: 0.01, TailFactor: 8,
			WriteLatency: 600 * time.Microsecond,
		}
	case OptaneSSD:
		return TechSpec{
			Tech: OptaneSSD, MaxIOPS: 4e6, MediaLatency: 10 * time.Microsecond,
			AccessGranularity: 512, EnduranceDWPD: 100, CostPerGBRelDRAM: 1.0 / 5,
			Sourcing: 1, BusBandwidth: 3.2e9, TailProb: 0.001, TailFactor: 3,
			WriteLatency: 12 * time.Microsecond,
		}
	case ZSSD:
		return TechSpec{
			Tech: ZSSD, MaxIOPS: 1e6, MediaLatency: 60 * time.Microsecond,
			AccessGranularity: 4096, EnduranceDWPD: 5, CostPerGBRelDRAM: 1.0 / 10,
			Sourcing: 1, BusBandwidth: 3.2e9, TailProb: 0.005, TailFactor: 6,
			WriteLatency: 300 * time.Microsecond,
		}
	case DIMM3DXP:
		return TechSpec{
			Tech: DIMM3DXP, MaxIOPS: 20e6, MediaLatency: 300 * time.Nanosecond,
			AccessGranularity: 64, EnduranceDWPD: 300, CostPerGBRelDRAM: 1.0 / 3,
			Sourcing: 1, BusBandwidth: 20e9, WriteLatency: 1 * time.Microsecond,
		}
	case CXL3DXP:
		return TechSpec{
			Tech: CXL3DXP, MaxIOPS: 12e6, MediaLatency: 500 * time.Nanosecond,
			AccessGranularity: 128, EnduranceDWPD: 300, CostPerGBRelDRAM: 1.0 / 3,
			Sourcing: 1, BusBandwidth: 16e9, WriteLatency: 1 * time.Microsecond,
		}
	case DRAM:
		return TechSpec{
			Tech: DRAM, MaxIOPS: 500e6, MediaLatency: 100 * time.Nanosecond,
			AccessGranularity: 64, EnduranceDWPD: 1e9, CostPerGBRelDRAM: 1,
			Sourcing: 3, BusBandwidth: 80e9, WriteLatency: 100 * time.Nanosecond,
		}
	default:
		return TechSpec{Tech: t}
	}
}

// Catalog returns all Table 1 technologies in presentation order.
func Catalog() []TechSpec {
	return []TechSpec{
		Spec(NandFlash), Spec(OptaneSSD), Spec(ZSSD), Spec(DIMM3DXP), Spec(CXL3DXP),
	}
}

// Errors returned by Device accesses.
var (
	ErrOutOfRange = errors.New("blockdev: access out of device range")
	ErrClosed     = errors.New("blockdev: device closed")
)

// Stats aggregates device counters.
type Stats struct {
	Reads          uint64 // completed read IOs
	Writes         uint64 // completed write IOs
	MediaBytes     uint64 // bytes read at media granularity (incl. amplification)
	BusBytes       uint64 // read bytes actually transferred over the host link
	BusWriteBytes  uint64 // write bytes transferred over the host link
	RequestedBytes uint64 // bytes the host asked for
	TailEvents     uint64 // long-tail accesses
	BytesWritten   uint64 // lifetime writes for endurance accounting
}

// ReadAmplification returns MediaBytes/RequestedBytes (1.0 = none).
func (s Stats) ReadAmplification() float64 {
	if s.RequestedBytes == 0 {
		return 0
	}
	return float64(s.MediaBytes) / float64(s.RequestedBytes)
}

// BusSavings returns the fraction of media bytes that SGL sub-block reads
// avoided transferring over the bus.
func (s Stats) BusSavings() float64 {
	if s.MediaBytes == 0 {
		return 0
	}
	return 1 - float64(s.BusBytes)/float64(s.MediaBytes)
}

// Device simulates one SM device instance.
type Device struct {
	spec     TechSpec
	clock    *simclock.Clock
	rng      *xrand.RNG
	data     []byte
	channels []simclock.Time // next-free virtual time per internal channel
	stats    Stats
	closed   bool
	// shared marks data as a read-only image shared with other devices
	// (see ShareImage/NewShared); the next Write materializes a private
	// copy first, so sharing never changes observable behaviour.
	shared bool
	// MaxOutstanding caps concurrently queued IOs; 0 means unlimited.
	// The paper limits outstanding requests to Nand devices to smooth
	// bursts (§4.1 Tuning API); enforcement happens in package uring,
	// this field carries the device's recommended cap.
	MaxOutstanding int
}

// New creates a device of the given technology with capacity bytes of
// backing store (allocated eagerly; scale capacities to the experiment).
func New(spec TechSpec, capacity int64, clock *simclock.Clock, seed uint64) *Device {
	nch := int(spec.MaxIOPS * spec.MediaLatency.Seconds())
	if nch < 1 {
		nch = 1
	}
	d := &Device{
		spec:     spec,
		clock:    clock,
		rng:      xrand.New(seed),
		data:     make([]byte, capacity),
		channels: make([]simclock.Time, nch),
	}
	if spec.Tech == NandFlash || spec.Tech == ZSSD {
		// §4.1: "with Nand Flash, we need to smooth out the bursts by
		// limiting the maximum outstanding requests to the SSD".
		d.MaxOutstanding = 2 * nch
	}
	return d
}

// NewShared creates a device whose media starts as a shared read-only
// image — typically another identically-loaded device's contents obtained
// via ShareImage. Timing state, counters and the RNG are the device's own;
// only the media bytes are shared, and the first Write replaces them with
// a private copy (copy-on-write). This removes the dominant allocation of
// building N replica hosts whose load phases write identical bytes.
func NewShared(spec TechSpec, image []byte, clock *simclock.Clock, seed uint64) *Device {
	d := New(spec, 0, clock, seed)
	d.data = image
	d.shared = true
	return d
}

// ShareImage marks the device's media as a shared read-only image and
// returns it for replica devices (NewShared). The device itself becomes
// copy-on-write too: its next Write works on a private copy, leaving the
// returned image untouched.
func (d *Device) ShareImage() []byte {
	d.shared = true
	return d.data
}

// Spec returns the device's technology parameters.
func (d *Device) Spec() TechSpec { return d.spec }

// Capacity returns the device capacity in bytes.
func (d *Device) Capacity() int64 { return int64(len(d.data)) }

// Stats returns a snapshot of the device counters.
func (d *Device) Stats() Stats { return d.stats }

// ResetStats clears the device counters (not the endurance counter).
func (d *Device) ResetStats() {
	written := d.stats.BytesWritten
	d.stats = Stats{BytesWritten: written}
}

// Channels returns the device's internal parallelism.
func (d *Device) Channels() int { return len(d.channels) }

// Close marks the device closed; subsequent accesses fail.
func (d *Device) Close() { d.closed = true }

// nextChannel returns the index of the earliest-free channel.
func (d *Device) nextChannel() int {
	best := 0
	for i, t := range d.channels {
		if t < d.channels[best] {
			best = i
		}
		_ = t
	}
	return best
}

// serviceOne books one media access starting no earlier than now and
// returns its completion time.
func (d *Device) serviceOne(now simclock.Time, write bool) simclock.Time {
	ch := d.nextChannel()
	start := now
	if d.channels[ch] > start {
		start = d.channels[ch]
	}
	svc := d.spec.MediaLatency
	if write {
		svc = d.spec.WriteLatency
	}
	if d.spec.TailProb > 0 && d.rng.Float64() < d.spec.TailProb {
		svc = time.Duration(float64(svc) * d.spec.TailFactor)
		d.stats.TailEvents++
	}
	// ±10% service-time jitter.
	svc = time.Duration(float64(svc) * (0.9 + 0.2*d.rng.Float64()))
	done := start + simclock.Time(svc)
	d.channels[ch] = done
	return done
}

// busTransfer accounts n read bytes over the host link and returns the
// transfer latency.
func (d *Device) busTransfer(n int) simclock.Time {
	d.stats.BusBytes += uint64(n)
	return simclock.Time(d.busTime(n))
}

// busTime returns the link transfer time for n bytes.
func (d *Device) busTime(n int) time.Duration {
	if d.spec.BusBandwidth <= 0 {
		return 0
	}
	return time.Duration(float64(n) / d.spec.BusBandwidth * float64(time.Second))
}

// granules returns how many media accesses a [off, off+n) read costs.
func (d *Device) granules(off int64, n int) int {
	g := int64(d.spec.AccessGranularity)
	if g <= 0 {
		g = 1
	}
	first := off / g
	last := (off + int64(n) - 1) / g
	return int(last - first + 1)
}

// alignedSpan returns the media-granularity-aligned byte span covering
// [off, off+n).
func (d *Device) alignedSpan(off int64, n int) (int64, int) {
	g := int64(d.spec.AccessGranularity)
	if g <= 0 {
		g = 1
	}
	start := off / g * g
	end := (off + int64(n) + g - 1) / g * g
	return start, int(end - start)
}

// Read performs a block-granularity read: the whole aligned span covering
// [off, off+len(p)) is read at the media and transferred over the bus
// (classic read amplification). Data for the requested range is copied into
// p. It returns the virtual completion time.
func (d *Device) Read(now simclock.Time, p []byte, off int64) (simclock.Time, error) {
	return d.read(now, p, off, false)
}

// ReadSGL performs a sub-block read using the NVMe SGL bit-bucket technique
// of §4.1.1: the media access still covers the full aligned span, but only
// the requested bytes cross the bus, saving bus bandwidth and the extra
// host-side copy.
func (d *Device) ReadSGL(now simclock.Time, p []byte, off int64) (simclock.Time, error) {
	return d.read(now, p, off, true)
}

func (d *Device) read(now simclock.Time, p []byte, off int64, sgl bool) (simclock.Time, error) {
	if err := d.PeekInto(p, off); err != nil {
		return now, err
	}
	return d.AccountRead(now, off, len(p), sgl)
}

// PeekInto copies [off, off+len(p)) into p without touching the timing
// model or the counters — the data half of a read. Callers that split a
// read must pair it with AccountRead for the timing half. PeekInto is safe
// for concurrent use as long as no Write is in flight; the parallel query
// engine relies on this to overlap data copies across workers while
// replaying timing deterministically.
func (d *Device) PeekInto(p []byte, off int64) error {
	if d.closed {
		return ErrClosed
	}
	if off < 0 || off+int64(len(p)) > int64(len(d.data)) {
		return fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, len(p), len(d.data))
	}
	copy(p, d.data[off:off+int64(len(p))])
	return nil
}

// AccountRead books the timing and counters of an n-byte read at off
// without copying data: the timing half of a read whose bytes were already
// obtained via PeekInto. Calling Read is equivalent to PeekInto followed by
// AccountRead, so deferred-timing callers observe bit-identical completion
// times, stats and RNG draws as inline callers.
func (d *Device) AccountRead(now simclock.Time, off int64, n int, sgl bool) (simclock.Time, error) {
	if d.closed {
		return now, ErrClosed
	}
	if off < 0 || off+int64(n) > int64(len(d.data)) {
		return now, fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, len(d.data))
	}
	_, span := d.alignedSpan(off, n)
	gr := d.granules(off, n)
	done := now
	for i := 0; i < gr; i++ {
		if t := d.serviceOne(now, false); t > done {
			done = t
		}
	}
	d.stats.Reads++
	d.stats.MediaBytes += uint64(span)
	d.stats.RequestedBytes += uint64(n)
	if sgl {
		done += d.busTransfer(n)
	} else {
		done += d.busTransfer(span)
	}
	return done, nil
}

// Write writes p at off, modelling program latency and endurance wear. It
// is exactly a data copy followed by AccountWrite, so a caller whose bytes
// are already on the media (a shared load image) observes bit-identical
// completion times, stats and RNG draws from AccountWrite alone.
func (d *Device) Write(now simclock.Time, p []byte, off int64) (simclock.Time, error) {
	if d.closed {
		return now, ErrClosed
	}
	if off < 0 || off+int64(len(p)) > int64(len(d.data)) {
		return now, fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, len(p), len(d.data))
	}
	if d.shared {
		d.data = append([]byte(nil), d.data...)
		d.shared = false
	}
	copy(d.data[off:off+int64(len(p))], p)
	return d.AccountWrite(now, off, len(p))
}

// AccountWrite books the timing, counters, endurance wear and RNG draws of
// an n-byte write at off without moving data — the write-side counterpart
// of AccountRead, for replaying a load phase whose bytes a shared media
// image already holds.
func (d *Device) AccountWrite(now simclock.Time, off int64, n int) (simclock.Time, error) {
	if d.closed {
		return now, ErrClosed
	}
	if off < 0 || off+int64(n) > int64(len(d.data)) {
		return now, fmt.Errorf("%w: off=%d len=%d cap=%d", ErrOutOfRange, off, n, len(d.data))
	}
	_, span := d.alignedSpan(off, n)
	gr := d.granules(off, n)
	done := now
	for i := 0; i < gr; i++ {
		if t := d.serviceOne(now, true); t > done {
			done = t
		}
	}
	done += simclock.Time(d.busTime(n))
	d.stats.BusWriteBytes += uint64(n)
	d.stats.Writes++
	d.stats.BytesWritten += uint64(span)
	return done, nil
}

// Peek returns a read-only view of the backing bytes (test/oracle use).
func (d *Device) Peek(off int64, n int) []byte {
	return d.data[off : off+int64(n)]
}

// LoadedLatency estimates the completion latency of a single read issued at
// the given sustained IOPS load, without disturbing device state. It is the
// analytic form of the Fig. 3 curves: flat at MediaLatency while load is
// below the ceiling, with an M/M/c-style knee as utilization approaches 1.
func (s TechSpec) LoadedLatency(iops float64) time.Duration {
	rho := iops / s.MaxIOPS
	if rho >= 0.999 {
		rho = 0.999
	}
	if rho < 0 {
		rho = 0
	}
	// Waiting-time inflation: negligible below ~60% utilization, then a
	// sharp knee (heavier for technologies with fewer effective channels).
	infl := 1 + 0.05*rho/(1-rho)
	return time.Duration(float64(s.MediaLatency) * infl)
}

// RatedLifeYears is the drive-life horizon the DWPD rating assumes (the
// standard 5-year warranty window the §3 endurance equation uses).
const RatedLifeYears = 5

// RatedLifeBytes returns the total writes the endurance rating allows a
// device of the given capacity over its rated life: DWPD × capacity ×
// 365 × RatedLifeYears. 0 when the technology carries no DWPD rating.
func (s TechSpec) RatedLifeBytes(capacityBytes int64) int64 {
	if s.EnduranceDWPD <= 0 || capacityBytes <= 0 {
		return 0
	}
	return int64(s.EnduranceDWPD * float64(capacityBytes) * 365 * RatedLifeYears)
}

// DailyWriteBudget returns the bytes/day the DWPD rating allows a device
// of the given capacity to absorb.
func (s TechSpec) DailyWriteBudget(capacityBytes int64) float64 {
	if s.EnduranceDWPD <= 0 || capacityBytes <= 0 {
		return 0
	}
	return s.EnduranceDWPD * float64(capacityBytes)
}

// UpdateInterval returns the minimum sustainable model-update interval in
// days implied by device endurance (§3):
//
//	UpdateInterval = 365 * ModelSize / (pDWPD * SMCapacity) / 365 days
//
// i.e. days between full-model writes such that lifetime writes stay within
// the DWPD rating over a 5-year (or ratingYears) life.
func UpdateInterval(modelBytes, smCapacityBytes int64, dwpd float64) time.Duration {
	if smCapacityBytes <= 0 || dwpd <= 0 {
		return 0
	}
	// Allowed writes per day = dwpd * capacity. One update writes
	// modelBytes. Minimum interval between updates:
	updatesPerDay := dwpd * float64(smCapacityBytes) / float64(modelBytes)
	if updatesPerDay <= 0 {
		return 0
	}
	return time.Duration(24 * float64(time.Hour) / updatesPerDay)
}
