package blockdev

import (
	"bytes"
	"errors"
	"testing"
	"time"

	"sdm/internal/simclock"
)

func newNand(t *testing.T, capacity int64) (*Device, *simclock.Clock) {
	t.Helper()
	var clk simclock.Clock
	return New(Spec(NandFlash), capacity, &clk, 1), &clk
}

func TestCatalogComplete(t *testing.T) {
	cat := Catalog()
	if len(cat) != 5 {
		t.Fatalf("catalog has %d entries, want 5 (Table 1)", len(cat))
	}
	for _, s := range cat {
		if s.MaxIOPS <= 0 || s.MediaLatency <= 0 || s.AccessGranularity <= 0 {
			t.Errorf("%v: incomplete spec %+v", s.Tech, s)
		}
	}
}

func TestTable1Parameters(t *testing.T) {
	// Spot-check the headline Table 1 values.
	if s := Spec(NandFlash); s.MaxIOPS != 500e3 || s.AccessGranularity != 4096 {
		t.Errorf("Nand spec %+v", s)
	}
	if s := Spec(OptaneSSD); s.MaxIOPS != 4e6 || s.AccessGranularity != 512 {
		t.Errorf("Optane spec %+v", s)
	}
	if Spec(OptaneSSD).MediaLatency >= Spec(NandFlash).MediaLatency {
		t.Error("Optane must be faster than Nand (O(10) vs O(100) µs)")
	}
	if Spec(NandFlash).CostPerGBRelDRAM >= Spec(OptaneSSD).CostPerGBRelDRAM {
		t.Error("Nand must be cheaper than Optane (1/30 vs 1/5)")
	}
}

func TestTechnologyString(t *testing.T) {
	for _, tech := range []Technology{NandFlash, OptaneSSD, ZSSD, DIMM3DXP, CXL3DXP, DRAM} {
		if tech.String() == "" {
			t.Errorf("empty name for %d", tech)
		}
	}
	if Technology(99).String() != "Technology(99)" {
		t.Error("unknown technology should render numerically")
	}
}

func TestWriteThenRead(t *testing.T) {
	dev, _ := newNand(t, 1<<20)
	src := []byte("hello embedding row")
	if _, err := dev.Write(0, src, 4096); err != nil {
		t.Fatal(err)
	}
	dst := make([]byte, len(src))
	if _, err := dev.Read(0, dst, 4096); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatalf("read %q, want %q", dst, src)
	}
}

func TestReadOutOfRange(t *testing.T) {
	dev, _ := newNand(t, 4096)
	buf := make([]byte, 128)
	if _, err := dev.Read(0, buf, 4096-64); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("want ErrOutOfRange, got %v", err)
	}
	if _, err := dev.Read(0, buf, -1); !errors.Is(err, ErrOutOfRange) {
		t.Fatalf("negative offset: want ErrOutOfRange, got %v", err)
	}
}

func TestClosedDevice(t *testing.T) {
	dev, _ := newNand(t, 4096)
	dev.Close()
	if _, err := dev.Read(0, make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
	if _, err := dev.Write(0, make([]byte, 8), 0); !errors.Is(err, ErrClosed) {
		t.Fatalf("want ErrClosed, got %v", err)
	}
}

func TestReadAmplification(t *testing.T) {
	dev, _ := newNand(t, 1<<20)
	buf := make([]byte, 128)
	// 128 B from a 4 KiB-granularity device: 32× amplification.
	if _, err := dev.Read(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	if s.MediaBytes != 4096 || s.RequestedBytes != 128 {
		t.Fatalf("media=%d requested=%d", s.MediaBytes, s.RequestedBytes)
	}
	if ra := s.ReadAmplification(); ra != 32 {
		t.Fatalf("read amplification %g, want 32", ra)
	}
	// Block read transfers the whole block over the bus.
	if s.BusBytes != 4096 {
		t.Fatalf("bus bytes %d, want 4096", s.BusBytes)
	}
}

func TestSGLBusSavings(t *testing.T) {
	dev, _ := newNand(t, 1<<20)
	buf := make([]byte, 128)
	for i := 0; i < 100; i++ {
		if _, err := dev.ReadSGL(0, buf, int64(i)*4096); err != nil {
			t.Fatal(err)
		}
	}
	s := dev.Stats()
	// §4.1.1: only requested bytes cross the bus.
	if s.BusBytes != 100*128 {
		t.Fatalf("SGL bus bytes %d, want %d", s.BusBytes, 100*128)
	}
	if sav := s.BusSavings(); sav < 0.9 {
		t.Fatalf("bus savings %g, want > 0.9 for 128B/4KB", sav)
	}
	// The media still reads whole blocks (no IOPS relief).
	if s.MediaBytes != 100*4096 {
		t.Fatalf("media bytes %d", s.MediaBytes)
	}
}

func TestSGLSpansTwoBlocks(t *testing.T) {
	dev, _ := newNand(t, 1<<20)
	src := make([]byte, 256)
	for i := range src {
		src[i] = byte(i)
	}
	off := int64(4096 - 100) // straddles a block boundary
	if _, err := dev.Write(0, src, off); err != nil {
		t.Fatal(err)
	}
	dev.ResetStats()
	dst := make([]byte, 256)
	if _, err := dev.ReadSGL(0, dst, off); err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(src, dst) {
		t.Fatal("straddling read corrupted data")
	}
	if s := dev.Stats(); s.MediaBytes != 8192 {
		t.Fatalf("straddling read should touch 2 blocks, media=%d", s.MediaBytes)
	}
}

func TestUnloadedLatencyNearMedia(t *testing.T) {
	dev, _ := newNand(t, 1<<20)
	buf := make([]byte, 128)
	done, err := dev.ReadSGL(0, buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	lat := done.Duration()
	med := Spec(NandFlash).MediaLatency
	if lat < med/2 || lat > 10*med {
		t.Fatalf("unloaded latency %v, want near media latency %v", lat, med)
	}
}

func TestLoadedLatencyRises(t *testing.T) {
	// Submitting far beyond the device's concurrency at one instant must
	// queue: later completions much slower than the first.
	dev, _ := newNand(t, 1<<24)
	buf := make([]byte, 128)
	var first, last simclock.Time
	const n = 2000
	for i := 0; i < n; i++ {
		done, err := dev.ReadSGL(0, buf, int64(i%1000)*4096)
		if err != nil {
			t.Fatal(err)
		}
		if i == 0 {
			first = done
		}
		if done > last {
			last = done
		}
	}
	if last < 5*first {
		t.Fatalf("no queueing visible: first=%v last=%v", first.Duration(), last.Duration())
	}
}

func TestThroughputCeiling(t *testing.T) {
	// Completion rate of a saturating burst must approximate MaxIOPS.
	spec := Spec(OptaneSSD)
	var clk simclock.Clock
	dev := New(spec, 1<<24, &clk, 2)
	buf := make([]byte, 128)
	const n = 50000
	var last simclock.Time
	for i := 0; i < n; i++ {
		done, err := dev.ReadSGL(0, buf, int64(i%1000)*512)
		if err != nil {
			t.Fatal(err)
		}
		if done > last {
			last = done
		}
	}
	iops := float64(n) / last.Seconds()
	if iops < spec.MaxIOPS*0.5 || iops > spec.MaxIOPS*1.5 {
		t.Fatalf("saturated IOPS %.0f, want near %.0f", iops, spec.MaxIOPS)
	}
}

func TestOptaneVsNandProfile(t *testing.T) {
	// Fig. 3 shape: Optane sustains higher IOPS at lower latency.
	run := func(tech Technology) (iops float64, meanLat time.Duration) {
		var clk simclock.Clock
		dev := New(Spec(tech), 1<<24, &clk, 3)
		buf := make([]byte, 128)
		const n = 20000
		var last simclock.Time
		var sum time.Duration
		for i := 0; i < n; i++ {
			// Pace submissions at 80% of ceiling to stay in the stable
			// region.
			at := simclock.Time(float64(i) / (0.8 * Spec(tech).MaxIOPS) * float64(time.Second))
			done, err := dev.ReadSGL(at, buf, int64(i%1000)*4096)
			if err != nil {
				t.Fatal(err)
			}
			sum += (done - at).Duration()
			if done > last {
				last = done
			}
		}
		return float64(n) / last.Seconds(), sum / n
	}
	nandIOPS, nandLat := run(NandFlash)
	optIOPS, optLat := run(OptaneSSD)
	if optIOPS <= nandIOPS {
		t.Fatalf("Optane IOPS %.0f should exceed Nand %.0f", optIOPS, nandIOPS)
	}
	if optLat >= nandLat {
		t.Fatalf("Optane latency %v should undercut Nand %v", optLat, nandLat)
	}
	// Order-of-magnitude check per Fig. 3: Nand O(100µs), Optane O(10µs).
	if nandLat < 50*time.Microsecond || optLat > 50*time.Microsecond {
		t.Fatalf("latency bands off: nand=%v optane=%v", nandLat, optLat)
	}
}

func TestNandTailEvents(t *testing.T) {
	dev, _ := newNand(t, 1<<24)
	buf := make([]byte, 128)
	for i := 0; i < 20000; i++ {
		if _, err := dev.ReadSGL(simclock.Time(i)*simclock.Time(10*time.Microsecond), buf, int64(i%1000)*4096); err != nil {
			t.Fatal(err)
		}
	}
	s := dev.Stats()
	if s.TailEvents == 0 {
		t.Fatal("Nand should exhibit long-tail events (§5.1 p99 effect)")
	}
	frac := float64(s.TailEvents) / float64(s.Reads)
	if frac < 0.002 || frac > 0.05 {
		t.Fatalf("tail fraction %g outside plausible band", frac)
	}
}

func TestWriteEnduranceAccounting(t *testing.T) {
	dev, _ := newNand(t, 1<<20)
	if _, err := dev.Write(0, make([]byte, 100), 0); err != nil {
		t.Fatal(err)
	}
	s := dev.Stats()
	if s.BytesWritten != 4096 {
		t.Fatalf("endurance accounting %d, want full granule 4096", s.BytesWritten)
	}
	dev.ResetStats()
	if dev.Stats().BytesWritten != 4096 {
		t.Fatal("ResetStats must preserve endurance counter")
	}
}

func TestLoadedLatencyAnalytic(t *testing.T) {
	s := Spec(OptaneSSD)
	low := s.LoadedLatency(0.1 * s.MaxIOPS)
	mid := s.LoadedLatency(0.8 * s.MaxIOPS)
	high := s.LoadedLatency(0.99 * s.MaxIOPS)
	if !(low <= mid && mid < high) {
		t.Fatalf("loaded latency not increasing: %v %v %v", low, mid, high)
	}
	if low > s.MediaLatency*2 {
		t.Fatalf("low-load latency %v far above media %v", low, s.MediaLatency)
	}
	if over := s.LoadedLatency(10 * s.MaxIOPS); over < high {
		t.Fatal("overload must clamp at max inflation")
	}
}

func TestUpdateInterval(t *testing.T) {
	// 1 TB model on 2 TB of Nand at 5 DWPD: allowed 10 model-writes/day
	// → minimum interval 2.4 h.
	got := UpdateInterval(1<<40, 2<<40, 5)
	want := 24 * time.Hour / 10
	if got != want {
		t.Fatalf("update interval %v, want %v", got, want)
	}
	if UpdateInterval(1<<40, 0, 5) != 0 {
		t.Fatal("zero capacity should give 0")
	}
	// Optane's higher endurance permits much more frequent updates.
	nand := UpdateInterval(1<<40, 2<<40, Spec(NandFlash).EnduranceDWPD)
	opt := UpdateInterval(1<<40, 2<<40, Spec(OptaneSSD).EnduranceDWPD)
	if opt >= nand {
		t.Fatalf("Optane interval %v should beat Nand %v", opt, nand)
	}
}

func TestPeek(t *testing.T) {
	dev, _ := newNand(t, 4096)
	src := []byte{1, 2, 3}
	if _, err := dev.Write(0, src, 10); err != nil {
		t.Fatal(err)
	}
	if got := dev.Peek(10, 3); !bytes.Equal(got, src) {
		t.Fatalf("peek %v", got)
	}
}

func TestDeviceChannels(t *testing.T) {
	dev, _ := newNand(t, 4096)
	// channels ≈ MaxIOPS × mediaLatency = 500e3 × 90µs = 45.
	if ch := dev.Channels(); ch < 20 || ch > 90 {
		t.Fatalf("channels %d outside expected band", ch)
	}
	if dev.MaxOutstanding == 0 {
		t.Fatal("Nand should carry a recommended outstanding cap (§4.1)")
	}
}
