// Package quant implements the row-wise embedding quantization the paper
// relies on (§4.1.1, §A.5; Guan et al. 2019): each embedding row is stored
// as int8 or int4 codes followed by a per-row float32 scale and bias. At
// inference rows are dequantized on the fly during pooling; §A.5 also
// evaluates de-quantizing whole tables at load time into FP32.
package quant

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"
)

// Type is an embedding element encoding.
type Type int

// Supported encodings.
const (
	Int8 Type = iota + 1
	Int4
	FP32
	FP16
)

// String returns the encoding name.
func (t Type) String() string {
	switch t {
	case Int8:
		return "int8"
	case Int4:
		return "int4"
	case FP32:
		return "fp32"
	case FP16:
		return "fp16"
	default:
		return fmt.Sprintf("Type(%d)", int(t))
	}
}

// metaBytes is the per-row scale+bias footer for quantized encodings.
const metaBytes = 8

// RowBytes returns the stored size of one row of dim elements.
func RowBytes(t Type, dim int) int {
	switch t {
	case Int8:
		return dim + metaBytes
	case Int4:
		return (dim+1)/2 + metaBytes
	case FP16:
		return dim * 2
	default: // FP32
		return dim * 4
	}
}

// ErrBadRow is returned when a stored row has the wrong size for its type.
var ErrBadRow = errors.New("quant: row buffer has wrong size")

// QuantizeRow encodes src (dim elements) into dst, which must be exactly
// RowBytes(t, len(src)) long.
func QuantizeRow(dst []byte, src []float32, t Type) error {
	if len(dst) != RowBytes(t, len(src)) {
		return fmt.Errorf("%w: got %d want %d", ErrBadRow, len(dst), RowBytes(t, len(src)))
	}
	switch t {
	case FP32:
		for i, v := range src {
			binary.LittleEndian.PutUint32(dst[i*4:], math.Float32bits(v))
		}
		return nil
	case FP16:
		for i, v := range src {
			binary.LittleEndian.PutUint16(dst[i*2:], f32ToF16(v))
		}
		return nil
	}
	// Row-wise affine quantization: x ≈ bias + scale*code.
	minV, maxV := float32(math.Inf(1)), float32(math.Inf(-1))
	for _, v := range src {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	if len(src) == 0 {
		minV, maxV = 0, 0
	}
	levels := float32(255)
	if t == Int4 {
		levels = 15
	}
	scale := (maxV - minV) / levels
	if scale == 0 {
		scale = 1
	}
	bias := minV
	switch t {
	case Int8:
		for i, v := range src {
			dst[i] = byte(clampCode((v-bias)/scale, 255))
		}
		putMeta(dst[len(src):], scale, bias)
	case Int4:
		nb := (len(src) + 1) / 2
		for i := 0; i < nb; i++ {
			lo := clampCode((src[2*i]-bias)/scale, 15)
			hi := uint8(0)
			if 2*i+1 < len(src) {
				hi = clampCode((src[2*i+1]-bias)/scale, 15)
			}
			dst[i] = lo | hi<<4
		}
		putMeta(dst[nb:], scale, bias)
	default:
		return fmt.Errorf("quant: unsupported type %v", t)
	}
	return nil
}

func clampCode(x float32, maxCode int) uint8 {
	c := int(x + 0.5)
	if c < 0 {
		c = 0
	}
	if c > maxCode {
		c = maxCode
	}
	return uint8(c)
}

func putMeta(dst []byte, scale, bias float32) {
	binary.LittleEndian.PutUint32(dst[0:], math.Float32bits(scale))
	binary.LittleEndian.PutUint32(dst[4:], math.Float32bits(bias))
}

func getMeta(src []byte) (scale, bias float32) {
	scale = math.Float32frombits(binary.LittleEndian.Uint32(src[0:]))
	bias = math.Float32frombits(binary.LittleEndian.Uint32(src[4:]))
	return scale, bias
}

// DequantizeRow decodes a stored row into dst (dim = len(dst) elements).
func DequantizeRow(dst []float32, src []byte, t Type) error {
	if len(src) != RowBytes(t, len(dst)) {
		return fmt.Errorf("%w: got %d want %d", ErrBadRow, len(src), RowBytes(t, len(dst)))
	}
	switch t {
	case FP32:
		for i := range dst {
			dst[i] = math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
		}
	case FP16:
		for i := range dst {
			dst[i] = f16ToF32(binary.LittleEndian.Uint16(src[i*2:]))
		}
	case Int8:
		scale, bias := getMeta(src[len(dst):])
		for i := range dst {
			dst[i] = bias + scale*float32(src[i])
		}
	case Int4:
		nb := (len(dst) + 1) / 2
		scale, bias := getMeta(src[nb:])
		for i := range dst {
			b := src[i/2]
			code := b & 0x0f
			if i%2 == 1 {
				code = b >> 4
			}
			dst[i] = bias + scale*float32(code)
		}
	default:
		return fmt.Errorf("quant: unsupported type %v", t)
	}
	return nil
}

// AccumulateRow dequantizes a stored row and adds it element-wise into acc.
// This is the fused dequantize+pool inner loop of SparseLengthsSum.
func AccumulateRow(acc []float32, src []byte, t Type) error {
	switch t {
	case FP32:
		if len(src) != len(acc)*4 {
			return ErrBadRow
		}
		for i := range acc {
			acc[i] += math.Float32frombits(binary.LittleEndian.Uint32(src[i*4:]))
		}
	case FP16:
		if len(src) != len(acc)*2 {
			return ErrBadRow
		}
		for i := range acc {
			acc[i] += f16ToF32(binary.LittleEndian.Uint16(src[i*2:]))
		}
	case Int8:
		if len(src) != len(acc)+metaBytes {
			return ErrBadRow
		}
		scale, bias := getMeta(src[len(acc):])
		for i := range acc {
			acc[i] += bias + scale*float32(src[i])
		}
	case Int4:
		nb := (len(acc) + 1) / 2
		if len(src) != nb+metaBytes {
			return ErrBadRow
		}
		scale, bias := getMeta(src[nb:])
		for i := range acc {
			b := src[i/2]
			code := b & 0x0f
			if i%2 == 1 {
				code = b >> 4
			}
			acc[i] += bias + scale*float32(code)
		}
	default:
		return fmt.Errorf("quant: unsupported type %v", t)
	}
	return nil
}

// MaxError returns the worst-case absolute quantization error for a row
// with the given value range under type t.
func MaxError(t Type, minV, maxV float32) float32 {
	span := maxV - minV
	switch t {
	case Int8:
		return span / 255 / 2 * 1.01
	case Int4:
		return span / 15 / 2 * 1.01
	case FP16:
		m := maxV
		if -minV > m {
			m = -minV
		}
		return m / 1024
	default:
		return 0
	}
}

// f32ToF16 converts to IEEE 754 half precision (round-to-nearest-even is
// approximated by truncation with rounding bit; adequate for embeddings).
func f32ToF16(f float32) uint16 {
	b := math.Float32bits(f)
	sign := uint16(b>>16) & 0x8000
	exp := int32(b>>23&0xff) - 127 + 15
	mant := b & 0x7fffff
	switch {
	case exp <= 0:
		return sign // flush subnormals/underflow to signed zero
	case exp >= 31:
		return sign | 0x7c00 // overflow to infinity
	default:
		return sign | uint16(exp)<<10 | uint16(mant>>13)
	}
}

// f16ToF32 converts from IEEE 754 half precision.
func f16ToF32(h uint16) float32 {
	sign := uint32(h&0x8000) << 16
	exp := uint32(h >> 10 & 0x1f)
	mant := uint32(h & 0x3ff)
	switch exp {
	case 0:
		if mant == 0 {
			return math.Float32frombits(sign)
		}
		// Subnormal half: renormalize.
		e := uint32(127 - 15 + 1)
		for mant&0x400 == 0 {
			mant <<= 1
			e--
		}
		mant &= 0x3ff
		return math.Float32frombits(sign | e<<23 | mant<<13)
	case 31:
		return math.Float32frombits(sign | 0xff<<23 | mant<<13)
	default:
		return math.Float32frombits(sign | (exp-15+127)<<23 | mant<<13)
	}
}
