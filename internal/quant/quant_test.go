package quant

import (
	"math"
	"testing"
	"testing/quick"

	"sdm/internal/xrand"
)

func randRow(seed uint64, dim int) []float32 {
	rng := xrand.New(seed)
	row := make([]float32, dim)
	for i := range row {
		row[i] = float32(rng.Norm(0, 1))
	}
	return row
}

func TestRowBytes(t *testing.T) {
	cases := []struct {
		t    Type
		dim  int
		want int
	}{
		{Int8, 64, 72},
		{Int8, 1, 9},
		{Int4, 64, 40},
		{Int4, 7, 12},
		{FP32, 64, 256},
		{FP16, 64, 128},
	}
	for _, c := range cases {
		if got := RowBytes(c.t, c.dim); got != c.want {
			t.Errorf("RowBytes(%v, %d) = %d, want %d", c.t, c.dim, got, c.want)
		}
	}
}

func TestTypeString(t *testing.T) {
	for _, typ := range []Type{Int8, Int4, FP32, FP16} {
		if typ.String() == "" {
			t.Errorf("empty name for %d", typ)
		}
	}
}

func TestRoundTripError(t *testing.T) {
	for _, typ := range []Type{Int8, Int4, FP32, FP16} {
		src := randRow(42, 96)
		minV, maxV := src[0], src[0]
		for _, v := range src {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		buf := make([]byte, RowBytes(typ, len(src)))
		if err := QuantizeRow(buf, src, typ); err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		out := make([]float32, len(src))
		if err := DequantizeRow(out, buf, typ); err != nil {
			t.Fatalf("%v: %v", typ, err)
		}
		tol := MaxError(typ, minV, maxV)
		for i := range src {
			if d := float32(math.Abs(float64(src[i] - out[i]))); d > tol {
				t.Fatalf("%v: element %d error %g > tolerance %g", typ, i, d, tol)
			}
		}
	}
}

func TestZeroRowExact(t *testing.T) {
	for _, typ := range []Type{Int8, Int4, FP32, FP16} {
		src := make([]float32, 32)
		buf := make([]byte, RowBytes(typ, 32))
		if err := QuantizeRow(buf, src, typ); err != nil {
			t.Fatal(err)
		}
		out := make([]float32, 32)
		if err := DequantizeRow(out, buf, typ); err != nil {
			t.Fatal(err)
		}
		for i, v := range out {
			if v != 0 {
				t.Fatalf("%v: zero row decoded to %g at %d", typ, v, i)
			}
		}
	}
}

func TestConstantRow(t *testing.T) {
	src := make([]float32, 16)
	for i := range src {
		src[i] = 3.25
	}
	buf := make([]byte, RowBytes(Int8, 16))
	if err := QuantizeRow(buf, src, Int8); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 16)
	if err := DequantizeRow(out, buf, Int8); err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if math.Abs(float64(v-3.25)) > 1e-6 {
			t.Fatalf("constant row decode %g", v)
		}
	}
}

func TestBadSizes(t *testing.T) {
	src := make([]float32, 8)
	if err := QuantizeRow(make([]byte, 5), src, Int8); err == nil {
		t.Fatal("short buffer should fail quantize")
	}
	if err := DequantizeRow(src, make([]byte, 5), Int8); err == nil {
		t.Fatal("short buffer should fail dequantize")
	}
	if err := AccumulateRow(src, make([]byte, 5), Int8); err == nil {
		t.Fatal("short buffer should fail accumulate")
	}
}

func TestAccumulateMatchesDequantAdd(t *testing.T) {
	for _, typ := range []Type{Int8, Int4, FP32, FP16} {
		src := randRow(7, 48)
		buf := make([]byte, RowBytes(typ, 48))
		if err := QuantizeRow(buf, src, typ); err != nil {
			t.Fatal(err)
		}
		acc := randRow(8, 48)
		ref := make([]float32, 48)
		copy(ref, acc)
		dec := make([]float32, 48)
		if err := DequantizeRow(dec, buf, typ); err != nil {
			t.Fatal(err)
		}
		for i := range ref {
			ref[i] += dec[i]
		}
		if err := AccumulateRow(acc, buf, typ); err != nil {
			t.Fatal(err)
		}
		for i := range acc {
			if math.Abs(float64(acc[i]-ref[i])) > 1e-5 {
				t.Fatalf("%v: accumulate mismatch at %d: %g vs %g", typ, i, acc[i], ref[i])
			}
		}
	}
}

func TestQuantizePropertyInt8(t *testing.T) {
	// Property: int8 round trip stays within the row's analytic tolerance.
	f := func(seed uint64) bool {
		src := randRow(seed, 32)
		minV, maxV := src[0], src[0]
		for _, v := range src {
			if v < minV {
				minV = v
			}
			if v > maxV {
				maxV = v
			}
		}
		buf := make([]byte, RowBytes(Int8, 32))
		if err := QuantizeRow(buf, src, Int8); err != nil {
			return false
		}
		out := make([]float32, 32)
		if err := DequantizeRow(out, buf, Int8); err != nil {
			return false
		}
		tol := MaxError(Int8, minV, maxV)
		for i := range src {
			if float32(math.Abs(float64(src[i]-out[i]))) > tol {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestFP16SpecialValues(t *testing.T) {
	cases := []float32{0, -0, 1, -1, 0.5, 65504, 1e-8, 3.14159}
	for _, v := range cases {
		h := f32ToF16(v)
		back := f16ToF32(h)
		if v == 0 {
			if back != 0 {
				t.Fatalf("fp16 zero round trip: %g", back)
			}
			continue
		}
		rel := math.Abs(float64(back-v)) / math.Max(math.Abs(float64(v)), 1e-7)
		if math.Abs(float64(v)) < 6e-5 {
			// Subnormal range flushes to zero in our encoder.
			if back != 0 {
				t.Fatalf("fp16 tiny value %g → %g, want flush to 0", v, back)
			}
			continue
		}
		if rel > 1e-3 {
			t.Fatalf("fp16 round trip %g → %g (rel %g)", v, back, rel)
		}
	}
}

func TestFP16Overflow(t *testing.T) {
	h := f32ToF16(1e9)
	if h&0x7c00 != 0x7c00 {
		t.Fatal("large value should map to infinity")
	}
	if !math.IsInf(float64(f16ToF32(h)), 1) {
		t.Fatal("fp16 infinity should decode to +Inf")
	}
}

func TestInt4OddDim(t *testing.T) {
	src := randRow(5, 7) // odd element count exercises the nibble tail
	buf := make([]byte, RowBytes(Int4, 7))
	if err := QuantizeRow(buf, src, Int4); err != nil {
		t.Fatal(err)
	}
	out := make([]float32, 7)
	if err := DequantizeRow(out, buf, Int4); err != nil {
		t.Fatal(err)
	}
	minV, maxV := src[0], src[0]
	for _, v := range src {
		if v < minV {
			minV = v
		}
		if v > maxV {
			maxV = v
		}
	}
	tol := MaxError(Int4, minV, maxV)
	for i := range src {
		if float32(math.Abs(float64(src[i]-out[i]))) > tol {
			t.Fatalf("odd-dim int4 error at %d", i)
		}
	}
}
