package metrics

import (
	"bufio"
	"bytes"
	"encoding/json"
	"strings"
	"testing"

	"sdm/internal/simclock"
)

func TestNilRegistryIsInert(t *testing.T) {
	var r *Registry
	c := r.NewCounter(Desc{Name: "x"})
	g := r.NewGauge(Desc{Name: "y"})
	h := r.NewHistogram(Desc{Name: "z"})
	r.NewCounterFunc(Desc{Name: "cf"}, func() uint64 { return 1 })
	r.NewGaugeFunc(Desc{Name: "gf"}, func(simclock.Time) float64 { return 1 })
	if c != nil || g != nil || h != nil {
		t.Fatalf("nil registry must hand out nil instruments")
	}
	// All handle methods must be safe no-ops on nil.
	c.Inc()
	c.Add(5)
	if c.Value() != 0 {
		t.Fatalf("nil counter value should be 0")
	}
	g.Set(3.5)
	h.Observe(1)
	r.MarkAll(100)
	r.ResetMarks()
	r.Reset()
	if r.Host() != -1 {
		t.Fatalf("nil registry host should read as front-end")
	}
}

func TestDuplicateRegistrationPanics(t *testing.T) {
	r := NewRegistry(0)
	r.NewCounter(Desc{Name: "dup"})
	defer func() {
		if recover() == nil {
			t.Fatalf("duplicate name+labels should panic")
		}
	}()
	r.NewCounter(Desc{Name: "dup"})
}

func TestDistinctLabelsShareFamily(t *testing.T) {
	r := NewRegistry(0)
	a := r.NewCounter(Desc{Name: "fam", Help: "h", Labels: []Label{{"table", "0"}}})
	b := r.NewCounter(Desc{Name: "fam", Help: "h", Labels: []Label{{"table", "1"}}})
	a.Inc()
	b.Add(2)
	r.MarkAll(10)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	if strings.Count(out, "# TYPE fam counter") != 1 {
		t.Fatalf("want a single family header:\n%s", out)
	}
	if !strings.Contains(out, `fam_total{host="0",table="0"} 1`) ||
		!strings.Contains(out, `fam_total{host="0",table="1"} 2`) {
		t.Fatalf("per-label series missing:\n%s", out)
	}
}

func TestMarkOrdering(t *testing.T) {
	r := NewRegistry(2)
	c := r.NewCounter(Desc{Name: "c"})
	c.Inc()
	r.MarkAll(100)
	c.Inc()
	r.MarkAll(200)
	// Equal-time re-mark overwrites the last point (final end-of-run mark
	// coinciding with a boundary must not duplicate the line).
	c.Inc()
	r.MarkAll(200)
	// Out-of-order marks are dropped rather than corrupting the series.
	c.Inc()
	r.MarkAll(150)

	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	want := "# HELP c \n# TYPE c counter\n" +
		"c_total{host=\"2\"} 1 0.000000100\n" +
		"c_total{host=\"2\"} 3 0.000000200\n" +
		"# EOF\n"
	if buf.String() != want {
		t.Fatalf("series mismatch:\n got %q\nwant %q", buf.String(), want)
	}
}

func TestFuncBackedInstruments(t *testing.T) {
	r := NewRegistry(0)
	var n uint64
	r.NewCounterFunc(Desc{Name: "cf"}, func() uint64 { return n })
	r.NewGaugeFunc(Desc{Name: "gf"}, func(now simclock.Time) float64 { return float64(now) * 2 })
	n = 7
	r.MarkAll(5)
	n = 9
	r.MarkAll(10)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	for _, line := range []string{
		`cf_total{host="0"} 7 0.000000005`,
		`cf_total{host="0"} 9 0.000000010`,
		`gf{host="0"} 10 0.000000005`,
		`gf{host="0"} 20 0.000000010`,
	} {
		if !strings.Contains(buf.String(), line+"\n") {
			t.Fatalf("missing %q in:\n%s", line, buf.String())
		}
	}
}

func TestHistogramRendersAsSummary(t *testing.T) {
	r := NewRegistry(1)
	h := r.NewHistogram(Desc{Name: "lat", Help: "l", Unit: "seconds"})
	h.Observe(1)
	h.Observe(3)
	r.MarkAll(1e9)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	for _, line := range []string{
		"# TYPE lat summary",
		"# UNIT lat seconds",
		`lat_count{host="1"} 2 1.000000000`,
		`lat_sum{host="1"} 4 1.000000000`,
		`lat{host="1",quantile="0.5"}`,
		`lat{host="1",quantile="0.99"}`,
	} {
		if !strings.Contains(out, line) {
			t.Fatalf("missing %q in:\n%s", line, out)
		}
	}
}

// TestMergeOrdering checks the obs.Merge discipline: within a family,
// sample lines sort by (time, host, labels) regardless of which registry
// marked first.
func TestMergeOrdering(t *testing.T) {
	regs := []*Registry{NewRegistry(1), NewRegistry(0)}
	for _, r := range regs {
		c := r.NewCounter(Desc{Name: "m"})
		c.Add(uint64(r.Host() + 1))
	}
	// Host 1 (regs[0]) marks before host 0, and at interleaved times.
	regs[0].MarkAll(100)
	regs[0].MarkAll(300)
	regs[1].MarkAll(100)
	regs[1].MarkAll(200)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, regs); err != nil {
		t.Fatal(err)
	}
	var lines []string
	sc := bufio.NewScanner(&buf)
	for sc.Scan() {
		if strings.HasPrefix(sc.Text(), "m_total") {
			lines = append(lines, sc.Text())
		}
	}
	want := []string{
		`m_total{host="0"} 1 0.000000100`,
		`m_total{host="1"} 2 0.000000100`,
		`m_total{host="0"} 1 0.000000200`,
		`m_total{host="1"} 2 0.000000300`,
	}
	if len(lines) != len(want) {
		t.Fatalf("got %d sample lines, want %d:\n%v", len(lines), len(want), lines)
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Fatalf("line %d: got %q want %q", i, lines[i], want[i])
		}
	}
}

func TestConflictingFamilyRejected(t *testing.T) {
	a := NewRegistry(0)
	b := NewRegistry(1)
	a.NewCounter(Desc{Name: "f", Help: "x"})
	b.NewGauge(Desc{Name: "f", Help: "x"})
	if err := WriteOpenMetrics(&bytes.Buffer{}, []*Registry{a, b}); err == nil {
		t.Fatalf("conflicting kinds under one family must be an error")
	}
}

// TestJSONLMirrorsOpenMetrics parses both renderings and checks they
// carry the same rows in the same order.
func TestJSONLMirrorsOpenMetrics(t *testing.T) {
	fe := NewRegistry(-1)
	h0 := NewRegistry(0)
	c := fe.NewCounter(Desc{Name: "routes", Help: "r"})
	g := h0.NewGauge(Desc{Name: "occ", Help: "o", Labels: []Label{{"ring", "a"}}})
	c.Add(3)
	g.Set(0.5)
	fe.MarkAll(250e6)
	h0.MarkAll(250e6)
	c.Inc()
	g.Set(0.75)
	fe.MarkAll(500e6)
	h0.MarkAll(500e6)

	regs := []*Registry{fe, h0}
	var om, jl bytes.Buffer
	if err := WriteOpenMetrics(&om, regs); err != nil {
		t.Fatal(err)
	}
	if err := WriteJSONL(&jl, regs); err != nil {
		t.Fatal(err)
	}

	// Collect OpenMetrics sample lines (skip comments).
	var omLines []string
	sc := bufio.NewScanner(bytes.NewReader(om.Bytes()))
	for sc.Scan() {
		if !strings.HasPrefix(sc.Text(), "#") {
			omLines = append(omLines, sc.Text())
		}
	}
	var rows []jsonRow
	sc = bufio.NewScanner(bytes.NewReader(jl.Bytes()))
	for sc.Scan() {
		var r jsonRow
		if err := json.Unmarshal(sc.Bytes(), &r); err != nil {
			t.Fatalf("bad JSONL line %q: %v", sc.Text(), err)
		}
		rows = append(rows, r)
	}
	if len(rows) != len(omLines) {
		t.Fatalf("row count mismatch: %d JSONL vs %d OpenMetrics", len(rows), len(omLines))
	}
	for i, r := range rows {
		// Same order: the OpenMetrics line must start with the JSONL name
		// and carry the same value + timestamp.
		if !strings.HasPrefix(omLines[i], r.Name) {
			t.Fatalf("row %d order mismatch: %q vs %q", i, r.Name, omLines[i])
		}
		if !strings.Contains(omLines[i], " "+r.Value.String()+" ") {
			t.Fatalf("row %d value mismatch: %q vs %q", i, r.Value, omLines[i])
		}
		if !strings.HasSuffix(omLines[i], formatTime(simclock.Time(r.TNs))) {
			t.Fatalf("row %d timestamp mismatch: %d vs %q", i, r.TNs, omLines[i])
		}
	}
	// Host fidelity: front-end rows say -1, host rows carry labels.
	if rows[0].Host != -1 {
		t.Fatalf("front-end row host = %d, want -1", rows[0].Host)
	}
	foundRing := false
	for _, r := range rows {
		if r.Labels["ring"] == "a" {
			foundRing = true
		}
	}
	if !foundRing {
		t.Fatalf("label lost in JSONL: %+v", rows)
	}
}

func TestResetSemantics(t *testing.T) {
	r := NewRegistry(0)
	c := r.NewCounter(Desc{Name: "c"})
	h := r.NewHistogram(Desc{Name: "h"})
	c.Add(5)
	h.Observe(1)
	r.MarkAll(10)

	// ResetMarks keeps values (cumulative counters keep counting).
	r.ResetMarks()
	r.MarkAll(20)
	var buf bytes.Buffer
	if err := WriteOpenMetrics(&buf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `c_total{host="0"} 5 0.000000020`) {
		t.Fatalf("ResetMarks must keep values:\n%s", buf.String())
	}
	if strings.Contains(buf.String(), "0.000000010") {
		t.Fatalf("ResetMarks must drop old marks:\n%s", buf.String())
	}

	// Reset zeroes owned values too.
	r.Reset()
	r.MarkAll(30)
	buf.Reset()
	if err := WriteOpenMetrics(&buf, []*Registry{r}); err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(buf.String(), `c_total{host="0"} 0 0.000000030`) ||
		!strings.Contains(buf.String(), `h_count{host="0"} 0 0.000000030`) {
		t.Fatalf("Reset must zero owned values:\n%s", buf.String())
	}
}

func TestNilInstrumentOpsAllocNothing(t *testing.T) {
	var c *Counter
	var g *Gauge
	var h *Histogram
	var r *Registry
	if n := testing.AllocsPerRun(100, func() {
		c.Inc()
		c.Add(3)
		g.Set(1)
		h.Observe(1)
		r.MarkAll(50)
	}); n != 0 {
		t.Fatalf("disabled metrics path allocated %v per op", n)
	}
}
