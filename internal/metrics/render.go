package metrics

import (
	"bufio"
	"encoding/json"
	"fmt"
	"io"
	"sort"
	"strconv"
	"strings"

	"sdm/internal/simclock"
)

// Rendering folds the sampled series of many registries into one stream.
// Families (metric names) appear in first-registration order scanning the
// registries in the order given (front-end first, then hosts 0..n-1 by
// convention); within a family every sample line is sorted by
// (virtual time, host, labels) — the obs.Merge discipline — so the bytes
// are identical at any HostWorkers setting.

// renderRow is one flattened sample line.
type renderRow struct {
	suffix string // "", "_total", "_count", "_sum"
	seq    int    // expansion order within one histogram mark
	host   int
	labels []Label // desc labels plus a quantile label for summary rows
	key    string  // precomputed label sort key
	t      simclock.Time
	isInt  bool
	ival   uint64
	fval   float64
}

// renderFamily groups all series of one metric name.
type renderFamily struct {
	name, help, unit string
	kind             Kind
	rows             []renderRow
}

// collect flattens and orders every mark of every registry.
func collect(regs []*Registry) ([]renderFamily, error) {
	var fams []renderFamily
	index := make(map[string]int)
	for _, r := range regs {
		if r == nil {
			continue
		}
		for _, in := range r.insts {
			fi, ok := index[in.desc.Name]
			if !ok {
				fi = len(fams)
				index[in.desc.Name] = fi
				fams = append(fams, renderFamily{
					name: in.desc.Name, help: in.desc.Help,
					unit: in.desc.Unit, kind: in.kind,
				})
			}
			f := &fams[fi]
			if f.kind != in.kind || f.help != in.desc.Help || f.unit != in.desc.Unit {
				return nil, fmt.Errorf("metrics: family %s registered with conflicting kind/help/unit", in.desc.Name)
			}
			f.rows = append(f.rows, expand(r.host, in)...)
		}
	}
	for i := range fams {
		rows := fams[i].rows
		sort.SliceStable(rows, func(a, b int) bool {
			ra, rb := &rows[a], &rows[b]
			if ra.t != rb.t {
				return ra.t < rb.t
			}
			if ra.host != rb.host {
				return ra.host < rb.host
			}
			if ra.key != rb.key {
				return ra.key < rb.key
			}
			return ra.seq < rb.seq
		})
	}
	return fams, nil
}

// expand turns one instrument's marks into sample lines.
func expand(host int, in *instrument) []renderRow {
	key := labelString(in.desc.Labels)
	var out []renderRow
	for _, m := range in.marks {
		switch in.kind {
		case KindCounter:
			out = append(out, renderRow{
				suffix: "_total", host: host, labels: in.desc.Labels,
				key: key, t: m.t, isInt: true, ival: m.count,
			})
		case KindGauge:
			out = append(out, renderRow{
				host: host, labels: in.desc.Labels,
				key: key, t: m.t, fval: m.value,
			})
		case KindHistogram:
			q50 := append(append([]Label{}, in.desc.Labels...), Label{"quantile", "0.5"})
			q99 := append(append([]Label{}, in.desc.Labels...), Label{"quantile", "0.99"})
			out = append(out,
				renderRow{suffix: "_count", seq: 0, host: host, labels: in.desc.Labels, key: key, t: m.t, isInt: true, ival: m.count},
				renderRow{suffix: "_sum", seq: 1, host: host, labels: in.desc.Labels, key: key, t: m.t, fval: m.value},
				renderRow{seq: 2, host: host, labels: q50, key: key, t: m.t, fval: m.p50},
				renderRow{seq: 3, host: host, labels: q99, key: key, t: m.t, fval: m.p99},
			)
		}
	}
	return out
}

// WriteOpenMetrics renders every registry's series as OpenMetrics text:
// per family a # HELP/# TYPE (and # UNIT when set) block followed by its
// sample lines `name{host="0",...} value timestamp`, timestamps in
// seconds of virtual time at nanosecond precision, terminated by # EOF.
func WriteOpenMetrics(w io.Writer, regs []*Registry) error {
	fams, err := collect(regs)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	for _, f := range fams {
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		if f.unit != "" {
			fmt.Fprintf(bw, "# UNIT %s %s\n", f.name, f.unit)
		}
		for i := range f.rows {
			r := &f.rows[i]
			bw.WriteString(f.name)
			bw.WriteString(r.suffix)
			bw.WriteString(sampleLabels(r.host, r.labels))
			bw.WriteByte(' ')
			bw.WriteString(formatValue(r))
			bw.WriteByte(' ')
			bw.WriteString(formatTime(r.t))
			bw.WriteByte('\n')
		}
	}
	bw.WriteString("# EOF\n")
	return bw.Flush()
}

// jsonRow mirrors one OpenMetrics sample line. host -1 is the front-end.
type jsonRow struct {
	Family string            `json:"family"`
	Name   string            `json:"name"`
	Kind   string            `json:"kind"`
	Host   int               `json:"host"`
	Labels map[string]string `json:"labels,omitempty"`
	TNs    int64             `json:"t_ns"`
	Value  json.Number       `json:"value"`
}

// WriteJSONL renders the identical sample stream as one JSON object per
// line, in the same order as WriteOpenMetrics.
func WriteJSONL(w io.Writer, regs []*Registry) error {
	fams, err := collect(regs)
	if err != nil {
		return err
	}
	bw := bufio.NewWriter(w)
	enc := json.NewEncoder(bw)
	for _, f := range fams {
		for i := range f.rows {
			r := &f.rows[i]
			jr := jsonRow{
				Family: f.name,
				Name:   f.name + r.suffix,
				Kind:   f.kind.String(),
				Host:   r.host,
				TNs:    int64(r.t),
				Value:  json.Number(formatValue(r)),
			}
			if len(r.labels) > 0 {
				jr.Labels = make(map[string]string, len(r.labels))
				for _, l := range r.labels {
					jr.Labels[l.Key] = l.Value
				}
			}
			if err := enc.Encode(&jr); err != nil {
				return err
			}
		}
	}
	return bw.Flush()
}

func formatValue(r *renderRow) string {
	if r.isInt {
		return strconv.FormatUint(r.ival, 10)
	}
	return strconv.FormatFloat(r.fval, 'g', -1, 64)
}

// formatTime renders virtual nanoseconds as seconds at fixed nanosecond
// precision (deterministic, lexically time-ordered per equal width).
func formatTime(t simclock.Time) string {
	ns := int64(t)
	neg := ""
	if ns < 0 {
		neg, ns = "-", -ns
	}
	return fmt.Sprintf("%s%d.%09d", neg, ns/1e9, ns%1e9)
}

// sampleLabels renders the label set of one sample line; hosts carry
// host="N" first, the front-end omits it.
func sampleLabels(host int, labels []Label) string {
	if host < 0 && len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	first := true
	if host >= 0 {
		fmt.Fprintf(&b, "host=%q", strconv.Itoa(host))
		first = false
	}
	for _, l := range labels {
		if !first {
			b.WriteByte(',')
		}
		fmt.Fprintf(&b, "%s=%q", l.Key, l.Value)
		first = false
	}
	b.WriteByte('}')
	return b.String()
}

func labelString(labels []Label) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	for _, l := range labels {
		b.WriteString(l.Key)
		b.WriteByte('=')
		b.WriteString(l.Value)
		b.WriteByte(',')
	}
	return b.String()
}
