// Package metrics is the deterministic virtual-time metrics plane.
//
// Subsystems register typed instruments (Counter, Gauge, Histogram — the
// latter reusing stats.Histogram) once, update them on their existing
// deterministic paths, and the fleet samples every instrument into a
// virtual-time series on window boundaries by calling MarkAll. The
// rendered series (OpenMetrics text or JSONL) folds per-emitter samples
// in (virtual time, host, labels) order — the same discipline as
// obs.Merge — so it is byte-identical at any HostWorkers setting.
//
// A nil *Registry is valid everywhere: registration returns nil
// instruments and every instrument method on a nil receiver is a no-op
// that allocates nothing, so unmetered runs pay zero overhead.
package metrics

import (
	"fmt"

	"sdm/internal/simclock"
	"sdm/internal/stats"
)

// Kind is the instrument type.
type Kind int

const (
	KindCounter Kind = iota
	KindGauge
	KindHistogram
)

// String returns the OpenMetrics type name. Histograms render as
// OpenMetrics summaries (count/sum/quantile rows).
func (k Kind) String() string {
	switch k {
	case KindCounter:
		return "counter"
	case KindGauge:
		return "gauge"
	case KindHistogram:
		return "summary"
	}
	return "unknown"
}

// Label is one fixed key=value pair attached to an instrument at
// registration (e.g. table="3", class="gold"). The emitting host is not a
// Label: it is the registry identity, rendered as host="N" for hosts and
// omitted for the front-end.
type Label struct {
	Key, Value string
}

// Desc names an instrument. Name is the metric family (snake_case, no
// _total/_count suffix — rendering adds those); instruments registered
// under the same Name on different registries (or with different Labels)
// are series of one family and must agree on Help and Unit.
type Desc struct {
	Name   string
	Help   string
	Unit   string
	Labels []Label
}

// mark is one sampled point of an instrument's series.
type mark struct {
	t simclock.Time
	// count carries counter values and histogram observation counts;
	// value carries gauge values and histogram sums.
	count uint64
	value float64
	// histogram quantile snapshot (KindHistogram only).
	p50, p99 float64
}

// instrument is the shared state behind every typed handle.
type instrument struct {
	desc  Desc
	kind  Kind
	count uint64
	value float64
	hist  *stats.Histogram
	// Func-backed instruments read their value at mark time, so existing
	// deterministic counters are the update path — nothing to thread
	// through hot loops.
	countFn func() uint64
	valueFn func(now simclock.Time) float64
	marks   []mark
}

// sample captures the instrument's current value at virtual time t.
// Marks must be issued in non-decreasing time order per registry;
// re-marking at the last marked time overwrites that point (the final
// end-of-run mark may coincide with a window boundary).
func (in *instrument) sample(t simclock.Time) {
	m := mark{t: t}
	switch in.kind {
	case KindCounter:
		if in.countFn != nil {
			m.count = in.countFn()
		} else {
			m.count = in.count
		}
	case KindGauge:
		if in.valueFn != nil {
			m.value = in.valueFn(t)
		} else {
			m.value = in.value
		}
	case KindHistogram:
		m.count = in.hist.Count()
		m.value = in.hist.Sum()
		m.p50 = in.hist.P50()
		m.p99 = in.hist.P99()
	}
	if n := len(in.marks); n > 0 {
		last := in.marks[n-1].t
		if t < last {
			return // out of order: drop rather than corrupt the series
		}
		if t == last {
			in.marks[n-1] = m
			return
		}
	}
	in.marks = append(in.marks, m)
}

// Registry holds the instruments of one emitter: a host (host >= 0) or
// the fleet front-end (host < 0). Registries are not internally locked —
// each emitter owns its registry and updates/marks it on its own
// deterministic path (the host worker goroutine, or the sequential
// front-end loop).
type Registry struct {
	host  int
	insts []*instrument
}

// NewRegistry returns a registry for the given emitter. host < 0 means
// the fleet front-end.
func NewRegistry(host int) *Registry { return &Registry{host: host} }

// Host returns the emitter id (-1 for the front-end).
func (r *Registry) Host() int {
	if r == nil {
		return -1
	}
	return r.host
}

func (r *Registry) add(d Desc, k Kind) *instrument {
	for _, in := range r.insts {
		if in.desc.Name == d.Name && labelsEqual(in.desc.Labels, d.Labels) {
			panic(fmt.Sprintf("metrics: duplicate instrument %s%s", d.Name, labelString(d.Labels)))
		}
	}
	in := &instrument{desc: d, kind: k}
	r.insts = append(r.insts, in)
	return in
}

// NewCounter registers a monotone counter owned by the caller.
func (r *Registry) NewCounter(d Desc) *Counter {
	if r == nil {
		return nil
	}
	return &Counter{in: r.add(d, KindCounter)}
}

// NewCounterFunc registers a counter whose value is read from fn at mark
// time. fn must be monotone non-decreasing in virtual time.
func (r *Registry) NewCounterFunc(d Desc, fn func() uint64) {
	if r == nil {
		return
	}
	r.add(d, KindCounter).countFn = fn
}

// NewGauge registers a gauge owned by the caller.
func (r *Registry) NewGauge(d Desc) *Gauge {
	if r == nil {
		return nil
	}
	return &Gauge{in: r.add(d, KindGauge)}
}

// NewGaugeFunc registers a gauge whose value is read from fn at mark
// time; fn receives the mark's virtual time.
func (r *Registry) NewGaugeFunc(d Desc, fn func(now simclock.Time) float64) {
	if r == nil {
		return
	}
	r.add(d, KindGauge).valueFn = fn
}

// NewHistogram registers a histogram, rendered as an OpenMetrics summary
// (cumulative count, sum, p50 and p99 at each mark).
func (r *Registry) NewHistogram(d Desc) *Histogram {
	if r == nil {
		return nil
	}
	in := r.add(d, KindHistogram)
	in.hist = stats.NewHistogram()
	return &Histogram{in: in}
}

// MarkAll samples every instrument at virtual time t, appending one point
// to each series. Marks must be issued in non-decreasing time order.
func (r *Registry) MarkAll(t simclock.Time) {
	if r == nil {
		return
	}
	for _, in := range r.insts {
		in.sample(t)
	}
}

// ResetMarks clears every instrument's sampled series while keeping
// current values (cumulative counters keep counting). Called at Run
// start so WriteMetrics renders the most recent run.
func (r *Registry) ResetMarks() {
	if r == nil {
		return
	}
	for _, in := range r.insts {
		in.marks = in.marks[:0]
	}
}

// Reset clears marks and zeroes caller-owned values (func-backed
// instruments are untouched — their owners define their lifetime).
func (r *Registry) Reset() {
	if r == nil {
		return
	}
	for _, in := range r.insts {
		in.marks = in.marks[:0]
		in.count = 0
		in.value = 0
		if in.hist != nil {
			in.hist.Reset()
		}
	}
}

// Counter is a monotone counter handle. All methods are nil-safe no-ops.
type Counter struct{ in *instrument }

// Add increments the counter by n.
func (c *Counter) Add(n uint64) {
	if c == nil {
		return
	}
	c.in.count += n
}

// Inc increments the counter by one.
func (c *Counter) Inc() { c.Add(1) }

// Value returns the current counter value.
func (c *Counter) Value() uint64 {
	if c == nil {
		return 0
	}
	return c.in.count
}

// Gauge is a point-in-time value handle. All methods are nil-safe no-ops.
type Gauge struct{ in *instrument }

// Set replaces the gauge value.
func (g *Gauge) Set(v float64) {
	if g == nil {
		return
	}
	g.in.value = v
}

// Histogram is a distribution handle backed by stats.Histogram. All
// methods are nil-safe no-ops.
type Histogram struct{ in *instrument }

// Observe records one value.
func (h *Histogram) Observe(v float64) {
	if h == nil {
		return
	}
	h.in.hist.Observe(v)
}

func labelsEqual(a, b []Label) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
