package serving

import (
	"testing"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

func fixture(t *testing.T) (*model.Instance, []*embedding.Table) {
	t.Helper()
	cfg := model.M1()
	cfg.NumUserTables = 5
	cfg.NumItemTables = 3
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	in, err := model.Build(cfg, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := in.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return in, tables
}

func sdmHost(t *testing.T, in *model.Instance, tables []*embedding.Table, hcfg Config, scfg core.Config) (*Host, *core.Store) {
	t.Helper()
	var clk simclock.Clock
	store, err := core.Open(in, tables, scfg, &clk)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{Seed: hcfg.Seed, NumUsers: 200})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(in, store, tables, gen, &clk, hcfg)
	if err != nil {
		t.Fatal(err)
	}
	return h, store
}

func TestHostRunBasic(t *testing.T) {
	in, tables := fixture(t)
	h, _ := sdmHost(t, in, tables,
		Config{Spec: HWSS(), InterOp: true, Seed: 1},
		core.Config{Seed: 1, Ring: uring.Config{SGL: true}, CacheBytes: 16 << 20})
	res, err := h.RunOpenLoop(50, 200)
	if err != nil {
		t.Fatal(err)
	}
	if res.Queries != 200 || res.AchievedQPS <= 0 {
		t.Fatalf("result %+v", res)
	}
	if res.Latency.Count() != 200 {
		t.Fatal("latency samples missing")
	}
	if res.Latency.P50() <= 0 {
		t.Fatal("latency must be positive")
	}
	if res.String() == "" {
		t.Fatal("String render")
	}
}

func TestLatencyRisesWithLoad(t *testing.T) {
	in, tables := fixture(t)
	mk := func() *Host {
		h, _ := sdmHost(t, in, tables,
			Config{Spec: HWSS(), InterOp: true, Seed: 2},
			core.Config{Seed: 2, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 14})
		return h
	}
	low, err := mk().RunOpenLoop(20, 300)
	if err != nil {
		t.Fatal(err)
	}
	high, err := mk().RunOpenLoop(20000, 300)
	if err != nil {
		t.Fatal(err)
	}
	if high.Latency.P95() <= low.Latency.P95() {
		t.Fatalf("p95 should rise under overload: low=%g high=%g",
			low.Latency.P95(), high.Latency.P95())
	}
}

func TestInterOpReducesLatency(t *testing.T) {
	// §A.2: inter-op parallelism cuts per-query latency (~20% on M1; the
	// effect is larger here because the fixture's SM ops dominate).
	in, tables := fixture(t)
	run := func(interOp bool) float64 {
		h, _ := sdmHost(t, in, tables,
			Config{Spec: HWSS(), InterOp: interOp, Seed: 3},
			core.Config{Seed: 3, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 14})
		res, err := h.RunOpenLoop(30, 300)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Mean()
	}
	serial := run(false)
	parallel := run(true)
	if parallel >= serial {
		t.Fatalf("inter-op should cut latency: serial=%g parallel=%g", serial, parallel)
	}
}

func TestCacheHitRateReachesSteadyState(t *testing.T) {
	// §5.1: >96% hit rate in steady state, reached minutes after load.
	in, tables := fixture(t)
	h, store := sdmHost(t, in, tables,
		Config{Spec: HWSS(), InterOp: true, Seed: 4},
		core.Config{Seed: 4, Ring: uring.Config{SGL: true}, CacheBytes: 64 << 20})
	if _, err := h.RunOpenLoop(100, 1500); err != nil {
		t.Fatal(err)
	}
	before := store.CacheStats()
	if _, err := h.RunOpenLoop(100, 500); err != nil {
		t.Fatal(err)
	}
	after := store.CacheStats()
	hits := after.Hits - before.Hits
	total := hits + after.Misses - before.Misses
	warm := float64(hits) / float64(total)
	if warm < 0.8 {
		t.Fatalf("steady-state hit rate %.2f, want high (paper: >0.96 with production cache sizes)", warm)
	}
}

func TestAccelHostFasterDense(t *testing.T) {
	in, tables := fixture(t)
	run := func(spec HostSpec) float64 {
		h, _ := sdmHost(t, in, tables,
			Config{Spec: spec, InterOp: true, Seed: 5},
			core.Config{Seed: 5, Ring: uring.Config{SGL: true}, CacheBytes: 16 << 20})
		res, err := h.RunOpenLoop(30, 200)
		if err != nil {
			t.Fatal(err)
		}
		return res.Latency.Mean()
	}
	cpuOnly := run(HWSS())
	accel := run(HWAO())
	if accel >= cpuOnly {
		t.Fatalf("accelerator host should be faster: %g vs %g", accel, cpuOnly)
	}
}

func TestRemoteUserPath(t *testing.T) {
	in, tables := fixture(t)
	var clk simclock.Clock
	gen, err := workload.NewGenerator(in, workload.Config{Seed: 6, NumUsers: 100})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(in, nil, tables, gen, &clk, Config{
		Spec: HWAN(), InterOp: true, RemoteUserPath: true,
		RemoteRTT: 500 * time.Microsecond, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.RunOpenLoop(50, 200)
	if err != nil {
		t.Fatal(err)
	}
	// Every query pays at least the network RTT.
	if res.Latency.Min() < 400e-6 {
		t.Fatalf("remote path latency %gs below RTT", res.Latency.Min())
	}
}

func TestMaxQPSAtLatency(t *testing.T) {
	in, tables := fixture(t)
	h, _ := sdmHost(t, in, tables,
		Config{Spec: HWAO(), InterOp: true, Seed: 7},
		core.Config{Seed: 7, SMTech: blockdev.OptaneSSD, Ring: uring.Config{SGL: true}, CacheBytes: 32 << 20})
	qps, res, err := h.MaxQPSAtLatency(0.95, 30*time.Millisecond, 5, 2000, 150)
	if err != nil {
		t.Fatal(err)
	}
	if qps <= 5 {
		t.Fatalf("search did not move off the floor: %g", qps)
	}
	if res.Latency.P95() > 0.03*1.2 {
		t.Fatalf("returned config violates budget: p95=%g", res.Latency.P95())
	}
}

func TestHostParallelismDeterministic(t *testing.T) {
	// The host's measured virtual-time numbers must not depend on how many
	// OS workers the store's query engine uses.
	in, tables := fixture(t)
	run := func(par int) (Result, core.Stats) {
		h, store := sdmHost(t, in, tables,
			Config{Spec: HWSS(), InterOp: true, Seed: 9, Parallelism: par},
			core.Config{Seed: 9, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 16, PooledCacheBytes: 1 << 16})
		res, err := h.RunOpenLoop(200, 300)
		if err != nil {
			t.Fatal(err)
		}
		return res, store.Stats()
	}
	r1, s1 := run(1)
	r4, s4 := run(4)
	if s1 != s4 {
		t.Fatalf("store stats diverged across parallelism:\n%+v\n%+v", s1, s4)
	}
	if r1.AchievedQPS != r4.AchievedQPS ||
		r1.Latency.P50() != r4.Latency.P50() ||
		r1.Latency.P99() != r4.Latency.P99() ||
		r1.SMReadsPerQry != r4.SMReadsPerQry {
		t.Fatalf("host results diverged: %v vs %v", r1, r4)
	}
}

func TestFlatHostReportsCPUUtil(t *testing.T) {
	// DRAM-baseline hosts pool from flat tables; their CPU work books on
	// the cores and must show up as utilization (it used to read 0%
	// because only store CPU was counted).
	in, tables := fixture(t)
	var clk simclock.Clock
	gen, err := workload.NewGenerator(in, workload.Config{Seed: 10, NumUsers: 100})
	if err != nil {
		t.Fatal(err)
	}
	h, err := NewHost(in, nil, tables, gen, &clk, Config{Spec: HWL(), InterOp: true, Seed: 10})
	if err != nil {
		t.Fatal(err)
	}
	res, err := h.RunOpenLoop(100, 300)
	if err != nil {
		t.Fatal(err)
	}
	if res.CPUUtil <= 0 {
		t.Fatalf("flat host CPU utilization %.4f, want > 0", res.CPUUtil)
	}
	if res.CPUUtil > 1.5 {
		t.Fatalf("flat host CPU utilization %.4f implausible", res.CPUUtil)
	}
}

func TestAdmitAndOutstanding(t *testing.T) {
	// The cluster-facing interface: admissions in time order, outstanding
	// counts retire as virtual time passes, snapshots expose cache deltas.
	in, tables := fixture(t)
	h, _ := sdmHost(t, in, tables,
		Config{Spec: HWSS(), InterOp: true, Seed: 11},
		core.Config{Seed: 11, Ring: uring.Config{SGL: true}, CacheBytes: 16 << 20})
	gen, err := workload.NewGenerator(in, workload.Config{Seed: 11, NumUsers: 50})
	if err != nil {
		t.Fatal(err)
	}
	t0 := h.Ready()
	if h.OutstandingAt(t0) != 0 {
		t.Fatal("fresh host should be idle")
	}
	before := h.Snapshot()
	var lastDone simclock.Time
	for i := 0; i < 8; i++ {
		at := t0 + simclock.Time(i)*simclock.Time(10*time.Microsecond)
		done, err := h.Admit(at, gen.Next())
		if err != nil {
			t.Fatal(err)
		}
		if done <= at {
			t.Fatalf("completion %v not after arrival %v", done, at)
		}
		if h.OutstandingAt(at) == 0 {
			t.Fatal("admitted query should be outstanding at its arrival")
		}
		if done > lastDone {
			lastDone = done
		}
	}
	if h.OutstandingAt(lastDone) != 0 {
		t.Fatalf("all queries done by %v, outstanding=%d", lastDone, h.OutstandingAt(lastDone))
	}
	delta := h.Snapshot().Sub(before)
	if delta.CacheHits+delta.CacheMisses == 0 {
		t.Fatal("admissions should touch the row cache")
	}
	if delta.CPUBooked <= 0 {
		t.Fatal("admissions should book CPU")
	}
	if h.Ready() < lastDone {
		t.Fatal("Ready must cover admitted work")
	}
}

func TestNewHostValidation(t *testing.T) {
	in, _ := fixture(t)
	var clk simclock.Clock
	gen, _ := workload.NewGenerator(in, workload.Config{Seed: 1})
	if _, err := NewHost(in, nil, nil, gen, &clk, Config{Spec: HWSS()}); err == nil {
		t.Fatal("host without any backing should fail")
	}
	if _, err := NewHost(in, nil, nil, gen, &clk, Config{Spec: HostSpec{Name: "x"}, RemoteUserPath: true}); err == nil {
		t.Fatal("zero cores should fail")
	}
}

func TestRunValidation(t *testing.T) {
	in, tables := fixture(t)
	h, _ := sdmHost(t, in, tables, Config{Spec: HWSS(), Seed: 8}, core.Config{Seed: 8})
	if _, err := h.RunOpenLoop(0, 10); err == nil {
		t.Fatal("zero QPS should fail")
	}
	if _, err := h.RunOpenLoop(10, 0); err == nil {
		t.Fatal("zero queries should fail")
	}
}

func TestHostSpecs(t *testing.T) {
	// Table 7 sanity: SKUs exist with the right memory/accelerator shape.
	if HWL().DRAMBytes != 256<<30 || HWL().AccelFlops != 0 {
		t.Fatal("HW-L shape")
	}
	for _, s := range []HostSpec{HWS(), HWSS(), HWAN(), HWAO()} {
		if s.DRAMBytes != 64<<30 {
			t.Fatalf("%s DRAM %d, want 64GB", s.Name, s.DRAMBytes)
		}
	}
	if HWAN().AccelFlops == 0 || HWAO().AccelFlops == 0 || HWF().AccelFlops == 0 {
		t.Fatal("accelerator hosts need accelerators")
	}
	if HWSS().RelPower >= HWL().RelPower {
		t.Fatal("Table 8: HW-SS must be cheaper than HW-L")
	}
	if len(DeviceCatalogCheck()) != 5 {
		t.Fatal("device catalog passthrough")
	}
}
