// Package serving simulates DLRM inference hosts and fleets (§2.3, §5):
// queries arrive open-loop at a target QPS, embedding operators execute
// against an SDM store (or a flat-DRAM baseline), dense compute runs on a
// CPU/accelerator service model, and the user-side SM work overlaps the
// item-side work per Eq. 3 so slow-memory latency stays off the critical
// path as long as it is shorter than the item path. The simulator measures
// p50/p95/p99 latency and sustainable QPS, which the power package turns
// into the fleet-level results of Tables 8, 9 and 11.
package serving

import (
	"errors"
	"fmt"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/metrics"
	"sdm/internal/mlp"
	"sdm/internal/model"
	"sdm/internal/simclock"
	"sdm/internal/stats"
	"sdm/internal/workload"
	"sdm/internal/xrand"
)

// HostSpec describes a serving host SKU (Table 7).
type HostSpec struct {
	Name string
	// Cores is the CPU parallelism for embedding/IO work.
	Cores int
	// CPUFlops is the effective dense-compute rate of the CPU (FLOP/s).
	CPUFlops float64
	// AccelFlops is the accelerator dense-compute rate (0 = none). When
	// present, item embeddings and MLPs run on the accelerator (§5.2).
	AccelFlops float64
	// DRAMBytes is host memory (FM).
	DRAMBytes int64
	// RelPower is the normalized per-host power (Tables 8/9/11).
	RelPower float64
}

// Table 7 host SKUs. Power values are normalized per the paper's tables
// (HW-L = 1.0 in Table 8's scenario; accelerator hosts = 1.0 in Table 9's).
func HWL() HostSpec {
	return HostSpec{Name: "HW-L", Cores: 2 * 26, CPUFlops: 2 * 1.5e12, DRAMBytes: 256 << 30, RelPower: 1.0}
}

// HWS is the single-socket CPU host used as scale-out remote (Table 7).
func HWS() HostSpec {
	return HostSpec{Name: "HW-S", Cores: 26, CPUFlops: 1.5e12, DRAMBytes: 64 << 30, RelPower: 0.35}
}

// HWSS is the single-socket host with Nand SSDs (Table 7).
func HWSS() HostSpec {
	return HostSpec{Name: "HW-SS", Cores: 26, CPUFlops: 1.5e12, DRAMBytes: 64 << 30, RelPower: 0.4}
}

// HWAN is the accelerator host with Nand SSDs (Table 7).
func HWAN() HostSpec {
	return HostSpec{Name: "HW-AN", Cores: 26, CPUFlops: 1.5e12, AccelFlops: 100e12, DRAMBytes: 64 << 30, RelPower: 1.0}
}

// HWAO is the accelerator host with Optane SSDs (Table 7).
func HWAO() HostSpec {
	return HostSpec{Name: "HW-AO", Cores: 26, CPUFlops: 1.5e12, AccelFlops: 100e12, DRAMBytes: 64 << 30, RelPower: 1.0}
}

// HWF is the future accelerator platform of §5.3 (M3/Table 11).
func HWF() HostSpec {
	return HostSpec{Name: "HW-F", Cores: 52, CPUFlops: 3e12, AccelFlops: 800e12, DRAMBytes: 128 << 30, RelPower: 1.0}
}

// Config tunes a Host.
type Config struct {
	Spec HostSpec
	// InterOp enables inter-operator parallelism (§A.2): all embedding
	// ops of a query issue concurrently. Disabled, ops execute serially
	// and SM latencies accumulate (the −20% latency ablation).
	InterOp bool
	// Parallelism sets the store's query-engine worker count for this
	// host: with InterOp, the store-backed ops of a query execute as one
	// batch fanned across that many OS workers. 0 keeps the store's
	// configured value; negative selects GOMAXPROCS. Virtual-time
	// accounting is identical at every setting (see core.Config).
	Parallelism int
	// RemoteUserPath models the scale-out baseline (§5.2 / Lui et al.):
	// user embeddings are fetched from remote HW-S shards over the
	// network instead of local SDM.
	RemoteUserPath bool
	// RemoteRTT is the network round-trip for remote user lookups.
	RemoteRTT time.Duration
	Seed      uint64
}

// Host simulates one serving host. Exactly one of store (SDM path) or
// flat (all-DRAM path) backs the user-side embeddings; item-side tables
// always run from FM/accelerator memory, mirroring the paper's setups.
type Host struct {
	cfg   Config
	inst  *model.Instance
	store *core.Store
	flat  []*embedding.Table
	gen   *workload.Generator
	clock *simclock.Clock
	rng   *xrand.RNG

	cores     []simclock.Time // per-core next-free virtual time
	accelFree simclock.Time

	// cpuBooked accumulates all CPU service time booked on the cores
	// (store IO-path CPU, flat-table pooling, remote-lookup handling), so
	// utilization is meaningful on every host flavor, including the
	// DRAM-only baseline that never touches a store.
	cpuBooked time.Duration

	// inflight holds the completion times of admitted-but-unfinished
	// queries as a min-heap; cluster routers read it through OutstandingAt.
	inflight simclock.TimeHeap

	// admitted counts externally routed queries accepted through Admit
	// since host creation (the metrics plane reads it at mark time).
	admitted uint64

	topMLP *mlp.Network

	// tuner, when set, observes every admission (telemetry sampling,
	// runtime placement swaps, paced migration IO).
	tuner Tuner

	// horizon is the furthest completion booked on any resource; new runs
	// start after it so back-to-back measurements do not queue behind
	// stale bookings.
	horizon simclock.Time

	// reusable output buffers sized lazily per op
	outBufs map[int][][]float32
	// reusable batch slices for the inter-op store path
	batchOps  []workload.TableOp
	batchOuts [][][]float32
}

// NewHost builds a host. store may be nil when flat tables are provided
// (DRAM-only baseline); flat may be nil when a store is provided.
func NewHost(inst *model.Instance, store *core.Store, flat []*embedding.Table, gen *workload.Generator, clock *simclock.Clock, cfg Config) (*Host, error) {
	if store == nil && flat == nil && !cfg.RemoteUserPath {
		return nil, errors.New("serving: host needs a store, flat tables, or a remote user path")
	}
	if cfg.Spec.Cores <= 0 {
		return nil, fmt.Errorf("serving: host %q has no cores", cfg.Spec.Name)
	}
	if cfg.RemoteRTT == 0 {
		cfg.RemoteRTT = 300 * time.Microsecond
	}
	top, err := mlp.New(inst.MLPWidths, cfg.Seed^0xabcd)
	if err != nil {
		return nil, fmt.Errorf("serving: top MLP: %w", err)
	}
	if store != nil && cfg.Parallelism != 0 {
		store.SetParallelism(cfg.Parallelism)
	}
	return &Host{
		cfg:     cfg,
		inst:    inst,
		store:   store,
		flat:    flat,
		gen:     gen,
		clock:   clock,
		rng:     xrand.New(cfg.Seed + 1),
		cores:   make([]simclock.Time, cfg.Spec.Cores),
		topMLP:  top,
		outBufs: make(map[int][][]float32),
	}, nil
}

// Tuner is a control loop attached to a host's admission stream: it runs
// background work on the host's virtual timeline, interleaved with
// queries in admission order (which is what keeps adaptive runs
// deterministic at any worker count). The adapt subsystem's Adapter is
// the canonical implementation; under fleet coordination its background
// IO additionally honors coordinator-granted migration windows
// (adapt.WindowFn), which must be pure functions of virtual time so the
// determinism contract survives window grants.
type Tuner interface {
	// BeforeAdmit runs before a query executes, at its arrival time.
	// Placement swaps committed here are visible to that query.
	BeforeAdmit(now simclock.Time)
	// AfterAdmit runs after the query completes on the virtual timeline.
	AfterAdmit(arrive, done simclock.Time)
}

// SetTuner installs (or, with nil, removes) the host's admission tuner.
func (h *Host) SetTuner(t Tuner) { h.tuner = t }

// Store exposes the host's SDM store (nil for flat/remote baselines) so
// control planes like the adapt subsystem can attach to it.
func (h *Host) Store() *core.Store { return h.store }

// Result summarizes a host run.
type Result struct {
	Queries       int
	OfferedQPS    float64
	AchievedQPS   float64
	Latency       *stats.Histogram
	CPUUtil       float64
	CacheHitRate  float64
	PooledHitRate float64
	SMReadsPerQry float64
	SustainedIOPS float64
}

// String renders the headline numbers.
func (r Result) String() string {
	return fmt.Sprintf("qps=%.0f/%.0f p50=%.2fms p95=%.2fms p99=%.2fms cpu=%.0f%% hit=%.1f%%",
		r.AchievedQPS, r.OfferedQPS,
		r.Latency.P50()*1e3, r.Latency.P95()*1e3, r.Latency.P99()*1e3,
		r.CPUUtil*100, r.CacheHitRate*100)
}

// coreAdmit books cpu seconds of work on the earliest-free core starting
// no earlier than t and returns (start, done).
func (h *Host) coreAdmit(t simclock.Time, cpu time.Duration) (simclock.Time, simclock.Time) {
	best := 0
	for i, free := range h.cores {
		if free < h.cores[best] {
			best = i
		}
	}
	start := t
	if h.cores[best] > start {
		start = h.cores[best]
	}
	done := start + simclock.Time(cpu)
	h.cores[best] = done
	h.cpuBooked += cpu
	return start, done
}

// denseTime converts the top-MLP FLOPs (scaled by item batch) into compute
// service time on the accelerator if present, else the CPU.
func (h *Host) denseTime(batch int) time.Duration {
	flops := h.topMLP.FLOPs() * int64(batch)
	rate := h.cfg.Spec.CPUFlops
	if h.cfg.Spec.AccelFlops > 0 {
		rate = h.cfg.Spec.AccelFlops
	}
	return time.Duration(mlp.CostModel(flops, rate) * float64(time.Second))
}

// outsFor returns reusable output buffers for op.
func (h *Host) outsFor(op workload.TableOp) [][]float32 {
	dim := h.inst.Tables[op.Table].Dim
	bufs := h.outBufs[op.Table]
	for len(bufs) < len(op.Pools) {
		bufs = append(bufs, make([]float32, dim))
	}
	h.outBufs[op.Table] = bufs
	return bufs[:len(op.Pools)]
}

// execQuery runs one query arriving at t0 and returns its completion time.
func (h *Host) execQuery(t0 simclock.Time, q workload.Query) (simclock.Time, error) {
	if h.cfg.InterOp && h.store != nil && !h.cfg.RemoteUserPath {
		return h.execQueryBatched(t0, q)
	}
	nUser := h.inst.Config.NumUserTables
	var (
		userDone = t0
		itemDone = t0
		cpu      time.Duration
		prevDone = t0
	)
	for _, op := range q.Ops {
		issue := t0
		if !h.cfg.InterOp {
			// Serial operator execution: each op waits for the previous
			// one's IO (§A.2 ablation).
			issue = prevDone
		}
		var (
			opDone simclock.Time
			opCPU  time.Duration
			err    error
		)
		switch {
		case op.Table < nUser && h.cfg.RemoteUserPath:
			// Scale-out: remote shard lookup (network RTT + remote CPU,
			// which is provisioned on the remote fleet, not here).
			opDone = issue + simclock.Time(h.cfg.RemoteRTT)
			opCPU = time.Duration(len(op.Pools)) * 2 * time.Microsecond
		case op.Table < nUser && h.store != nil:
			var r core.OpResult
			r, err = h.store.PoolOp(issue, op, h.outsFor(op))
			opDone, opCPU = r.IODone, r.CPUTime
		default:
			// FM/accelerator-resident path (item tables, or the DRAM-only
			// baseline's user tables).
			opDone = issue
			opCPU, err = h.poolFlat(op)
		}
		if err != nil {
			return t0, err
		}
		cpu += opCPU
		if opDone < issue {
			opDone = issue
		}
		prevDone = opDone
		if op.Table < nUser {
			if opDone > userDone {
				userDone = opDone
			}
		} else if opDone > itemDone {
			itemDone = opDone
		}
	}
	return h.finishQuery(t0, userDone, itemDone, cpu), nil
}

// finishQuery books the embedding CPU on a core, applies Eq. 3's user/item
// overlap and the dense interaction compute, and returns the query's
// completion time. Shared by the per-op and batched execution paths.
func (h *Host) finishQuery(t0, userDone, itemDone simclock.Time, cpu time.Duration) simclock.Time {
	// Embedding CPU work books onto a core (queueing under load).
	_, cpuDone := h.coreAdmit(t0, cpu)
	// Eq. 3: the top MLP needs both sides; the user-side SM time hides
	// behind the item side as long as it is shorter.
	ready := maxTime(maxTime(userDone, itemDone), cpuDone)
	// Dense interaction compute (accelerator if present).
	dt := h.denseTime(h.inst.Config.ItemBatch)
	denseStart := ready
	if h.accelFree > denseStart {
		denseStart = h.accelFree
	}
	done := denseStart + simclock.Time(dt)
	h.accelFree = done
	return done
}

// execQueryBatched is the inter-op path when an SDM store backs the user
// side: the store-backed ops issue as a single batch through the store's
// sharded query engine (which fans them across its workers), and the
// FM/accelerator-resident ops pool inline. The accounting is identical to
// per-op submission — the engine replays SM timing in operator order — so
// enabling host parallelism never changes measured virtual time.
func (h *Host) execQueryBatched(t0 simclock.Time, q workload.Query) (simclock.Time, error) {
	nUser := h.inst.Config.NumUserTables
	var (
		userDone = t0
		cpu      time.Duration
	)
	h.batchOps = h.batchOps[:0]
	h.batchOuts = h.batchOuts[:0]
	for _, op := range q.Ops {
		if op.Table < nUser {
			h.batchOps = append(h.batchOps, op)
			h.batchOuts = append(h.batchOuts, h.outsFor(op))
		}
	}
	if len(h.batchOps) > 0 {
		rs, err := h.store.PoolOps(t0, h.batchOps, h.batchOuts)
		if err != nil {
			return t0, err
		}
		for _, r := range rs {
			cpu += r.CPUTime
			if r.IODone > userDone {
				userDone = r.IODone
			}
		}
	}
	for _, op := range q.Ops {
		if op.Table < nUser {
			continue
		}
		opCPU, err := h.poolFlat(op)
		if err != nil {
			return t0, err
		}
		cpu += opCPU
	}
	// Item-side ops are FM/accelerator-resident here, completing at t0.
	return h.finishQuery(t0, userDone, t0, cpu), nil
}

// poolFlat pools an op from flat FM tables and returns its CPU cost.
func (h *Host) poolFlat(op workload.TableOp) (time.Duration, error) {
	spec := h.inst.Tables[op.Table]
	var cpu time.Duration
	if h.flat != nil && op.Table < len(h.flat) {
		outs := h.outsFor(op)
		for b, pool := range op.Pools {
			if err := h.flat[op.Table].Pool(outs[b], pool); err != nil {
				return cpu, err
			}
		}
	}
	rows := op.TotalLookups()
	cpu += time.Duration(float64(rows*spec.RowBytes()) * 0.26) // dequant+pool ns/B
	return cpu, nil
}

// Ready returns the earliest virtual time at which the host can accept
// external admissions: after the store finished loading and after any
// previously admitted or measured work.
func (h *Host) Ready() simclock.Time {
	t := h.horizon
	if h.store != nil && h.store.LoadDone() > t {
		t = h.store.LoadDone()
	}
	if h.clock.Now() > t {
		t = h.clock.Now()
	}
	return t
}

// Admit executes one externally routed query arriving at t and returns its
// completion time. It is the entry point cluster front-ends use instead of
// RunOpenLoop: the caller owns arrival generation and routing, the host
// owns execution, cache state and virtual-time accounting. Admissions must
// arrive in non-decreasing time order; a host built only for Admit may be
// constructed with a nil generator.
func (h *Host) Admit(t simclock.Time, q workload.Query) (simclock.Time, error) {
	if h.tuner != nil {
		h.tuner.BeforeAdmit(t)
	}
	done, err := h.execQuery(t, q)
	if err != nil {
		return 0, err
	}
	if h.tuner != nil {
		h.tuner.AfterAdmit(t, done)
	}
	if done > h.horizon {
		h.horizon = done
	}
	h.admitted++
	h.retireInflight(t)
	h.inflight.Push(done)
	return done, nil
}

// RegisterMetrics registers the host's serving instruments on r — the
// admitted-query counter, the virtual-time outstanding-ops gauge, the
// FM-served share, and booked CPU seconds — then the store's catalog.
// All are func-backed and read at mark time on the host's own execution
// path, so they are deterministic at any worker count. A nil registry
// registers nothing.
func (h *Host) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.NewCounterFunc(metrics.Desc{Name: "sdm_host_admitted_queries", Help: "Queries accepted through Admit since host creation."},
		func() uint64 { return h.admitted })
	r.NewGaugeFunc(metrics.Desc{Name: "sdm_host_outstanding_ops", Help: "Admitted queries still executing at the mark's virtual time."},
		func(now simclock.Time) float64 { return float64(h.OutstandingAt(now)) })
	r.NewGaugeFunc(metrics.Desc{Name: "sdm_host_fm_served_ratio", Help: "Share of lookups served without touching SM (1 - SMReads/Lookups)."},
		func(simclock.Time) float64 { return h.Snapshot().FMServedRate() })
	r.NewGaugeFunc(metrics.Desc{Name: "sdm_host_cpu_booked_seconds", Help: "Virtual CPU seconds booked on the host cores.", Unit: "seconds"},
		func(simclock.Time) float64 { return h.cpuBooked.Seconds() })
	if h.store != nil {
		h.store.RegisterMetrics(r)
	}
}

// OutstandingAt returns the number of admitted queries still executing at
// virtual time t — the load signal least-outstanding routers balance on.
// Queries completing exactly at t count as finished. Not safe to call
// concurrently with Admit.
func (h *Host) OutstandingAt(t simclock.Time) int {
	h.retireInflight(t)
	return len(h.inflight)
}

// retireInflight pops every completion at or before t off the min-heap.
func (h *Host) retireInflight(t simclock.Time) {
	for h.inflight.Len() > 0 && h.inflight.Min() <= t {
		h.inflight.PopMin()
	}
}

// CacheSnapshot is a point-in-time view of a host's cache and IO counters.
// Cluster front-ends subtract two snapshots to attribute hits, misses and
// SM reads to an individual query or window.
type CacheSnapshot struct {
	CacheHits    uint64
	CacheMisses  uint64
	PooledHits   uint64
	PooledMisses uint64
	SMReads      uint64
	// Lookups counts store row lookups and FMDirectReads the subset served
	// by FM-direct tables, so deltas can attribute lookups to tiers even
	// as adaptive placement moves tables between them. RangeFMReads is the
	// sub-subset served by FM-resident row ranges (partial-table
	// promotions) rather than whole FM tables.
	Lookups       uint64
	FMDirectReads uint64
	RangeFMReads  uint64
	// SMWriteBytes is the lifetime SM media bytes written (model load
	// plus migration demotes) — the endurance counter fleet window
	// deltas attribute wear bursts with.
	SMWriteBytes uint64
	CPUBooked    time.Duration
}

// Sub returns the counter deltas s − o.
func (s CacheSnapshot) Sub(o CacheSnapshot) CacheSnapshot {
	return CacheSnapshot{
		CacheHits:     s.CacheHits - o.CacheHits,
		CacheMisses:   s.CacheMisses - o.CacheMisses,
		PooledHits:    s.PooledHits - o.PooledHits,
		PooledMisses:  s.PooledMisses - o.PooledMisses,
		SMReads:       s.SMReads - o.SMReads,
		Lookups:       s.Lookups - o.Lookups,
		FMDirectReads: s.FMDirectReads - o.FMDirectReads,
		RangeFMReads:  s.RangeFMReads - o.RangeFMReads,
		SMWriteBytes:  s.SMWriteBytes - o.SMWriteBytes,
		CPUBooked:     s.CPUBooked - o.CPUBooked,
	}
}

// Add returns the field-wise sum of s and o.
func (s CacheSnapshot) Add(o CacheSnapshot) CacheSnapshot {
	return CacheSnapshot{
		CacheHits:     s.CacheHits + o.CacheHits,
		CacheMisses:   s.CacheMisses + o.CacheMisses,
		PooledHits:    s.PooledHits + o.PooledHits,
		PooledMisses:  s.PooledMisses + o.PooledMisses,
		SMReads:       s.SMReads + o.SMReads,
		Lookups:       s.Lookups + o.Lookups,
		FMDirectReads: s.FMDirectReads + o.FMDirectReads,
		RangeFMReads:  s.RangeFMReads + o.RangeFMReads,
		SMWriteBytes:  s.SMWriteBytes + o.SMWriteBytes,
		CPUBooked:     s.CPUBooked + o.CPUBooked,
	}
}

// HitRate returns the row-cache hit rate of the snapshot (or delta).
func (s CacheSnapshot) HitRate() float64 {
	total := s.CacheHits + s.CacheMisses
	if total == 0 {
		return 0
	}
	return float64(s.CacheHits) / float64(total)
}

// FMServedRate returns the fraction of store row lookups served from fast
// memory — cache hits plus FM-direct reads — rather than SM devices. It
// is the tier-agnostic "hit rate" of adaptive placement: promoting a hot
// table to FM raises it even though those lookups stop being cache hits.
func (s CacheSnapshot) FMServedRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return 1 - float64(s.SMReads)/float64(s.Lookups)
}

// RangeServedRate returns the fraction of store row lookups served from
// FM-resident row ranges — the share of the FM-served rate that
// partial-table promotion alone contributes.
func (s CacheSnapshot) RangeServedRate() float64 {
	if s.Lookups == 0 {
		return 0
	}
	return float64(s.RangeFMReads) / float64(s.Lookups)
}

// Snapshot captures the host's cumulative cache and IO counters. Hosts
// without a store report only the booked CPU.
func (h *Host) Snapshot() CacheSnapshot {
	s := CacheSnapshot{CPUBooked: h.cpuBooked}
	if h.store != nil {
		cs := h.store.CacheStats()
		ps := h.store.PooledStats()
		st := h.store.Stats()
		s.CacheHits, s.CacheMisses = cs.Hits, cs.Misses
		s.PooledHits, s.PooledMisses = ps.Hits, ps.Misses
		s.SMReads = st.SMReads
		s.Lookups = st.Lookups
		s.FMDirectReads = st.FMDirectReads
		s.RangeFMReads = st.RangeFMReads
		s.SMWriteBytes = h.store.DeviceStats().BytesWritten
	}
	return s
}

// RunOpenLoop offers n queries at the given arrival rate (Poisson) and
// measures latency. Device and core state carry over between calls, so a
// warmup call followed by a measurement call yields steady-state numbers.
func (h *Host) RunOpenLoop(qps float64, n int) (Result, error) {
	if qps <= 0 || n <= 0 {
		return Result{}, fmt.Errorf("serving: bad run parameters qps=%g n=%d", qps, n)
	}
	lat := stats.NewHistogram()
	var smReadsBefore uint64
	if h.store != nil {
		smReadsBefore = h.store.Stats().SMReads
	}
	cpuBefore := h.cpuBooked
	start := h.clock.Now()
	if h.horizon > start {
		start = h.horizon
	}
	t := start
	last := start
	for i := 0; i < n; i++ {
		t += simclock.Time(h.rng.Exp(1 / qps * float64(time.Second)))
		// Arena-backed: the query is consumed synchronously by execQuery
		// before the next iteration reuses the generator's storage.
		q := h.gen.NextShared()
		if h.tuner != nil {
			h.tuner.BeforeAdmit(t)
		}
		done, err := h.execQuery(t, q)
		if err != nil {
			return Result{}, err
		}
		if h.tuner != nil {
			h.tuner.AfterAdmit(t, done)
		}
		lat.Observe((done - t).Seconds())
		if done > last {
			last = done
		}
	}
	h.horizon = last
	elapsed := (last - start).Seconds()
	res := Result{
		Queries:    n,
		OfferedQPS: qps,
		Latency:    lat,
	}
	if elapsed > 0 {
		res.AchievedQPS = float64(n) / elapsed
		// All pooling CPU is booked through coreAdmit, so utilization is
		// reported on every host flavor — the DRAM-only baseline included,
		// which previously showed 0% because only store CPU was counted.
		res.CPUUtil = (h.cpuBooked - cpuBefore).Seconds() / (elapsed * float64(h.cfg.Spec.Cores))
	}
	if h.store != nil {
		st := h.store.Stats()
		cs := h.store.CacheStats()
		ps := h.store.PooledStats()
		res.CacheHitRate = cs.HitRate()
		res.PooledHitRate = ps.HitRate()
		res.SMReadsPerQry = float64(st.SMReads-smReadsBefore) / float64(n)
		if elapsed > 0 {
			res.SustainedIOPS = float64(st.SMReads-smReadsBefore) / elapsed
		}
	}
	return res, nil
}

// MaxQPSAtLatency binary-searches the highest offered QPS whose measured
// latency quantile stays within budget. Each probe runs warm+measure.
func (h *Host) MaxQPSAtLatency(quantile float64, budget time.Duration, loQPS, hiQPS float64, probeQueries int) (float64, Result, error) {
	// Establish a floor measurement so callers always get a valid Result
	// even when no probe meets the budget.
	best, err := h.RunOpenLoop(loQPS, probeQueries)
	if err != nil {
		return 0, Result{}, err
	}
	bestQPS := loQPS
	for iter := 0; iter < 12 && hiQPS/loQPS > 1.05; iter++ {
		mid := (loQPS + hiQPS) / 2
		res, err := h.RunOpenLoop(mid, probeQueries)
		if err != nil {
			return 0, Result{}, err
		}
		// A configuration passes if it meets the latency budget AND
		// actually sustains the offered rate — an overloaded backend
		// shows up as a completion horizon stretching past the arrival
		// window before short-probe percentiles can detect it.
		ok := time.Duration(res.Latency.Quantile(quantile)*float64(time.Second)) <= budget &&
			res.AchievedQPS >= 0.8*mid
		if ok {
			bestQPS, best = mid, res
			loQPS = mid
		} else {
			hiQPS = mid
		}
	}
	return bestQPS, best, nil
}

func maxTime(a, b simclock.Time) simclock.Time {
	if a > b {
		return a
	}
	return b
}

// DeviceCatalogCheck is a convenience that surfaces the blockdev catalog to
// serving callers (used by the CLI's tab1 view).
func DeviceCatalogCheck() []blockdev.TechSpec { return blockdev.Catalog() }
