package uring

import (
	"sdm/internal/blockdev"
	"sdm/internal/simclock"
)

// Mmap models the mmap alternative the paper rejected in §4.1: every miss
// reads and retains a whole 4 KB page in FM even for a 128 B row, so FM
// space is used ~32× less efficiently and access latency is ~3× higher
// (page-fault handling plus full-block transfer). It exists so the
// mmap-vs-DIRECT_IO trade-off can be measured rather than asserted.
type Mmap struct {
	dev   *blockdev.Device
	clock *simclock.Clock
	// pageCache maps page number → resident page copy.
	pageCache map[int64][]byte
	// lru tracks page recency for eviction.
	lru      []int64
	maxPages int
	stats    MmapStats
}

// MmapStats counts page-cache behaviour.
type MmapStats struct {
	Accesses   uint64
	PageFaults uint64
	Evictions  uint64
	// ResidentBytes is the FM consumed by the page cache right now.
	ResidentBytes int64
}

// HitRate returns the page-cache hit fraction.
func (s MmapStats) HitRate() float64 {
	if s.Accesses == 0 {
		return 0
	}
	return 1 - float64(s.PageFaults)/float64(s.Accesses)
}

const mmapPageSize = 4096

// NewMmap maps dev with an FM budget of fmBudget bytes for resident pages.
func NewMmap(dev *blockdev.Device, clock *simclock.Clock, fmBudget int64) *Mmap {
	maxPages := int(fmBudget / mmapPageSize)
	if maxPages < 1 {
		maxPages = 1
	}
	return &Mmap{
		dev:       dev,
		clock:     clock,
		pageCache: make(map[int64][]byte, maxPages),
		maxPages:  maxPages,
	}
}

// Stats returns a snapshot of the page-cache counters.
func (m *Mmap) Stats() MmapStats { return m.stats }

// Read copies [off, off+len(p)) into p, faulting pages as needed, and
// returns the virtual completion time.
func (m *Mmap) Read(now simclock.Time, p []byte, off int64) (simclock.Time, error) {
	m.stats.Accesses++
	done := now
	remaining := p
	cur := off
	for len(remaining) > 0 {
		page := cur / mmapPageSize
		inPage := int(cur - page*mmapPageSize)
		n := mmapPageSize - inPage
		if n > len(remaining) {
			n = len(remaining)
		}
		data, ok := m.pageCache[page]
		if !ok {
			m.stats.PageFaults++
			data = make([]byte, mmapPageSize)
			// A page fault performs a full block read (no SGL) plus
			// kernel fault-handling overhead (~2× the media time in
			// practice, yielding the paper's ~3× end-to-end factor).
			t, err := m.dev.Read(done, data, page*mmapPageSize)
			if err != nil {
				return done, err
			}
			t += simclock.Time(2 * m.dev.Spec().MediaLatency)
			done = t
			m.insert(page, data)
		}
		copy(remaining[:n], data[inPage:inPage+n])
		remaining = remaining[n:]
		cur += int64(n)
	}
	return done, nil
}

func (m *Mmap) insert(page int64, data []byte) {
	if len(m.pageCache) >= m.maxPages {
		// Evict the least-recently inserted page (FIFO approximation of
		// kernel page reclaim; precision is irrelevant to the study).
		victim := m.lru[0]
		m.lru = m.lru[1:]
		delete(m.pageCache, victim)
		m.stats.Evictions++
		m.stats.ResidentBytes -= mmapPageSize
	}
	m.pageCache[page] = data
	m.lru = append(m.lru, page)
	m.stats.ResidentBytes += mmapPageSize
}
