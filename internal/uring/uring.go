// Package uring simulates the io_uring-based fast IO path of §4.1: a
// submission/completion ring over an SM block device with configurable
// outstanding-IO throttling (the paper's Tuning API), SGL sub-block reads
// (§4.1.1), and IRQ- vs polling-based completion processing with a per-IO
// CPU cost model (§A.1 reports ~50% better IOPS/core with polling).
package uring

import (
	"errors"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/simclock"
)

// CompletionMode selects how completions are reaped.
type CompletionMode int

// Completion modes.
const (
	// IRQ processes completions from interrupts; cheaper at low rates.
	IRQ CompletionMode = iota + 1
	// Polling busy-polls the completion queue, removing IRQ overhead;
	// §A.1 observes ~50% improvement in IOPS/core at high rates.
	Polling
)

// Per-IO CPU cost of the NVMe software stack. The 1.5× ratio reproduces the
// paper's "50% improvement on IOPS/Core when enabling polling".
const (
	cpuPerIOIRQ     = 1500 * time.Nanosecond
	cpuPerIOPolling = 1000 * time.Nanosecond
)

// Config tunes a Ring. The zero value means: device-recommended outstanding
// cap, IRQ completions, SGL disabled (full-block reads).
type Config struct {
	// MaxOutstanding caps in-flight IOs on the device; requests beyond it
	// queue in software. 0 uses the device recommendation (set for Nand,
	// unlimited otherwise). This is the §4.1 Tuning API:
	// "Total number of outstanding IOs ... that can be processed at a
	// given time."
	MaxOutstanding int
	// Mode selects IRQ or Polling completion processing.
	Mode CompletionMode
	// SGL enables sub-block reads (§4.1.1): only requested bytes cross
	// the bus and the extra host memcpy is avoided.
	SGL bool
	// BatchSubmit is the number of SQEs submitted per syscall-equivalent;
	// only affects the CPU model. 0 means 16.
	BatchSubmit int
}

// Stats aggregates ring counters.
type Stats struct {
	Submitted    uint64
	Completed    uint64
	Errors       uint64
	PeakInflight int
	PeakQueued   int
	// CPUTime is the virtual CPU time consumed by the IO stack; divide
	// completions by it for IOPS/core.
	CPUTime time.Duration
}

// IOPSPerCore returns completed IOs per second of IO-stack CPU time.
func (s Stats) IOPSPerCore() float64 {
	if s.CPUTime <= 0 {
		return 0
	}
	return float64(s.Completed) / s.CPUTime.Seconds()
}

// Request is one read or write IO.
type Request struct {
	Buf   []byte
	Off   int64
	Write bool
	// OnComplete runs at the IO's virtual completion time.
	OnComplete func(now simclock.Time, err error)
}

// ErrRingClosed is returned when submitting to a closed ring.
var ErrRingClosed = errors.New("uring: ring closed")

// Ring is an async IO engine bound to one device and one virtual clock.
// It is single-threaded (the simulation owns it); all methods must be
// called from simulation callbacks or between clock steps.
type Ring struct {
	dev      *blockdev.Device
	clock    *simclock.Clock
	cfg      Config
	inflight int
	queue    []*Request
	stats    Stats
	closed   bool
}

// New creates a ring over dev. If cfg.MaxOutstanding is 0, the device's
// recommended cap is used (unlimited if the device has none).
func New(dev *blockdev.Device, clock *simclock.Clock, cfg Config) *Ring {
	if cfg.MaxOutstanding == 0 {
		cfg.MaxOutstanding = dev.MaxOutstanding
	}
	if cfg.Mode == 0 {
		cfg.Mode = IRQ
	}
	if cfg.BatchSubmit <= 0 {
		cfg.BatchSubmit = 16
	}
	return &Ring{dev: dev, clock: clock, cfg: cfg}
}

// Config returns the ring configuration.
func (r *Ring) Config() Config { return r.cfg }

// Stats returns a snapshot of the ring counters.
func (r *Ring) Stats() Stats { return r.stats }

// Device returns the underlying device.
func (r *Ring) Device() *blockdev.Device { return r.dev }

// Inflight returns the number of IOs currently on the device.
func (r *Ring) Inflight() int { return r.inflight }

// Queued returns the number of software-queued IOs.
func (r *Ring) Queued() int { return len(r.queue) }

// Close rejects future submissions. Queued IOs still drain.
func (r *Ring) Close() { r.closed = true }

// Submit enqueues a request. The request dispatches immediately if the
// outstanding cap allows, otherwise when an in-flight IO completes.
func (r *Ring) Submit(req *Request) error {
	if r.closed {
		return ErrRingClosed
	}
	r.stats.Submitted++
	if r.cfg.MaxOutstanding > 0 && r.inflight >= r.cfg.MaxOutstanding {
		r.queue = append(r.queue, req)
		if len(r.queue) > r.stats.PeakQueued {
			r.stats.PeakQueued = len(r.queue)
		}
		return nil
	}
	r.dispatch(req)
	return nil
}

func (r *Ring) cpuPerIO() time.Duration {
	per := cpuPerIOIRQ
	if r.cfg.Mode == Polling {
		per = cpuPerIOPolling
	}
	// Batched submission amortizes a fixed syscall cost; model it as a
	// small constant divided by the batch size.
	per += 500 * time.Nanosecond / time.Duration(r.cfg.BatchSubmit)
	return per
}

func (r *Ring) dispatch(req *Request) {
	r.inflight++
	if r.inflight > r.stats.PeakInflight {
		r.stats.PeakInflight = r.inflight
	}
	now := r.clock.Now()
	var (
		done simclock.Time
		err  error
	)
	switch {
	case req.Write:
		done, err = r.dev.Write(now, req.Buf, req.Off)
	case r.cfg.SGL:
		done, err = r.dev.ReadSGL(now, req.Buf, req.Off)
	default:
		done, err = r.dev.Read(now, req.Buf, req.Off)
	}
	r.stats.CPUTime += r.cpuPerIO()
	if err != nil {
		r.stats.Errors++
		done = now
	}
	r.clock.Schedule(done, func(at simclock.Time) {
		r.complete(req, err)
	})
}

func (r *Ring) complete(req *Request, err error) {
	r.inflight--
	r.stats.Completed++
	if len(r.queue) > 0 {
		next := r.queue[0]
		copy(r.queue, r.queue[1:])
		r.queue[len(r.queue)-1] = nil
		r.queue = r.queue[:len(r.queue)-1]
		r.dispatch(next)
	}
	if req.OnComplete != nil {
		req.OnComplete(r.clock.Now(), err)
	}
}
