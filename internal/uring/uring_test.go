package uring

import (
	"testing"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/simclock"
)

func newNandRing(clk *simclock.Clock, cfg Config) *Ring {
	dev := blockdev.New(blockdev.Spec(blockdev.NandFlash), 1<<22, clk, 1)
	return New(dev, clk, cfg)
}

func TestRingCompletesAll(t *testing.T) {
	var clk simclock.Clock
	r := newNandRing(&clk, Config{})
	done := 0
	const n = 500
	for i := 0; i < n; i++ {
		buf := make([]byte, 128)
		err := r.Submit(&Request{
			Buf: buf, Off: int64(i%100) * 4096,
			OnComplete: func(now simclock.Time, err error) {
				if err != nil {
					t.Errorf("IO error: %v", err)
				}
				done++
			},
		})
		if err != nil {
			t.Fatal(err)
		}
	}
	if err := clk.Run(0); err != nil {
		t.Fatal(err)
	}
	if done != n {
		t.Fatalf("completed %d of %d", done, n)
	}
	s := r.Stats()
	if s.Submitted != n || s.Completed != n {
		t.Fatalf("stats %+v", s)
	}
}

func TestRingOutstandingCap(t *testing.T) {
	var clk simclock.Clock
	r := newNandRing(&clk, Config{MaxOutstanding: 4})
	const n = 100
	for i := 0; i < n; i++ {
		if err := r.Submit(&Request{Buf: make([]byte, 64), Off: int64(i) * 4096}); err != nil {
			t.Fatal(err)
		}
	}
	if r.Inflight() > 4 {
		t.Fatalf("inflight %d exceeds cap", r.Inflight())
	}
	if r.Queued() != n-4 {
		t.Fatalf("queued %d, want %d", r.Queued(), n-4)
	}
	if err := clk.Run(0); err != nil {
		t.Fatal(err)
	}
	s := r.Stats()
	if s.Completed != n {
		t.Fatalf("completed %d", s.Completed)
	}
	if s.PeakInflight > 4 {
		t.Fatalf("peak inflight %d exceeded cap", s.PeakInflight)
	}
}

func TestRingErrorPath(t *testing.T) {
	var clk simclock.Clock
	r := newNandRing(&clk, Config{})
	gotErr := false
	err := r.Submit(&Request{
		Buf: make([]byte, 128), Off: 1 << 30, // out of range
		OnComplete: func(_ simclock.Time, err error) { gotErr = err != nil },
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := clk.Run(0); err != nil {
		t.Fatal(err)
	}
	if !gotErr {
		t.Fatal("out-of-range IO should surface its error in OnComplete")
	}
	if r.Stats().Errors != 1 {
		t.Fatalf("errors %d", r.Stats().Errors)
	}
}

func TestRingClosed(t *testing.T) {
	var clk simclock.Clock
	r := newNandRing(&clk, Config{})
	r.Close()
	if err := r.Submit(&Request{Buf: make([]byte, 8)}); err != ErrRingClosed {
		t.Fatalf("want ErrRingClosed, got %v", err)
	}
}

func TestPollingImprovesIOPSPerCore(t *testing.T) {
	run := func(mode CompletionMode) float64 {
		var clk simclock.Clock
		r := newNandRing(&clk, Config{Mode: mode})
		for i := 0; i < 1000; i++ {
			if err := r.Submit(&Request{Buf: make([]byte, 128), Off: int64(i%100) * 4096}); err != nil {
				t.Fatal(err)
			}
		}
		if err := clk.Run(0); err != nil {
			t.Fatal(err)
		}
		return r.Stats().IOPSPerCore()
	}
	irq, poll := run(IRQ), run(Polling)
	gain := poll/irq - 1
	// §A.1: "50% improvement on IOPS/Core when enabling polling".
	if gain < 0.3 || gain > 0.7 {
		t.Fatalf("polling gain %.0f%%, want ~50%%", gain*100)
	}
}

func TestRingSGLSavesBus(t *testing.T) {
	var clk simclock.Clock
	r := newNandRing(&clk, Config{SGL: true})
	for i := 0; i < 100; i++ {
		if err := r.Submit(&Request{Buf: make([]byte, 128), Off: int64(i) * 4096}); err != nil {
			t.Fatal(err)
		}
	}
	if err := clk.Run(0); err != nil {
		t.Fatal(err)
	}
	if sav := r.Device().Stats().BusSavings(); sav < 0.9 {
		t.Fatalf("SGL bus savings %g", sav)
	}
}

func TestSyncRingBasic(t *testing.T) {
	var clk simclock.Clock
	dev := blockdev.New(blockdev.Spec(blockdev.OptaneSSD), 1<<20, &clk, 1)
	r := NewSync(dev, Config{SGL: true})
	buf := make([]byte, 128)
	done, err := r.SubmitSync(0, buf, 0, false)
	if err != nil {
		t.Fatal(err)
	}
	if done <= 0 {
		t.Fatal("completion time must advance")
	}
	if r.Stats().Completed != 1 {
		t.Fatalf("stats %+v", r.Stats())
	}
}

func TestSyncRingThrottle(t *testing.T) {
	var clk simclock.Clock
	dev := blockdev.New(blockdev.Spec(blockdev.NandFlash), 1<<24, &clk, 1)
	capped := NewSync(dev, Config{MaxOutstanding: 2})
	buf := make([]byte, 128)
	var doneCapped []simclock.Time
	for i := 0; i < 50; i++ {
		d, err := capped.SubmitSync(0, buf, int64(i)*4096, false)
		if err != nil {
			t.Fatal(err)
		}
		doneCapped = append(doneCapped, d)
	}
	// With cap 2 and all submitted at t=0, completion times must spread
	// out far beyond the device's natural parallelism.
	last := doneCapped[len(doneCapped)-1]
	med := blockdev.Spec(blockdev.NandFlash).MediaLatency
	if last < simclock.Time(20*med) {
		t.Fatalf("throttled burst finished too fast: %v", last.Duration())
	}
}

func TestSyncRingWrite(t *testing.T) {
	var clk simclock.Clock
	dev := blockdev.New(blockdev.Spec(blockdev.NandFlash), 1<<20, &clk, 1)
	r := NewSync(dev, Config{})
	src := []byte{9, 8, 7}
	if _, err := r.SubmitSync(0, src, 100, true); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 3)
	if _, err := r.SubmitSync(0, buf, 100, false); err != nil {
		t.Fatal(err)
	}
	if buf[0] != 9 || buf[1] != 8 || buf[2] != 7 {
		t.Fatalf("write/read mismatch %v", buf)
	}
}

func TestMmapPageCache(t *testing.T) {
	var clk simclock.Clock
	dev := blockdev.New(blockdev.Spec(blockdev.NandFlash), 1<<20, &clk, 1)
	m := NewMmap(dev, &clk, 64<<10) // 16 pages
	buf := make([]byte, 128)
	// First access faults; second hits.
	if _, err := m.Read(0, buf, 0); err != nil {
		t.Fatal(err)
	}
	if _, err := m.Read(0, buf, 64); err != nil {
		t.Fatal(err)
	}
	s := m.Stats()
	if s.PageFaults != 1 || s.Accesses != 2 {
		t.Fatalf("stats %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate %g", s.HitRate())
	}
}

func TestMmapEviction(t *testing.T) {
	var clk simclock.Clock
	dev := blockdev.New(blockdev.Spec(blockdev.NandFlash), 1<<20, &clk, 1)
	m := NewMmap(dev, &clk, 8<<10) // 2 pages
	buf := make([]byte, 16)
	for i := int64(0); i < 10; i++ {
		if _, err := m.Read(0, buf, i*4096); err != nil {
			t.Fatal(err)
		}
	}
	s := m.Stats()
	if s.Evictions == 0 {
		t.Fatal("page cache over budget must evict")
	}
	if s.ResidentBytes > 8<<10 {
		t.Fatalf("resident %d exceeds FM budget", s.ResidentBytes)
	}
}

func TestMmapSlowerThanDirect(t *testing.T) {
	// §4.1: mmap results in ~3× higher access latency for small random
	// reads with no spatial locality (cold pages every time).
	var clk simclock.Clock
	spec := blockdev.Spec(blockdev.NandFlash)
	devA := blockdev.New(spec, 1<<24, &clk, 1)
	devB := blockdev.New(spec, 1<<24, &clk, 1)
	direct := NewSync(devA, Config{SGL: true})
	m := NewMmap(devB, &clk, 16<<10)

	buf := make([]byte, 128)
	var sumDirect, sumMmap time.Duration
	const n = 200
	for i := 0; i < n; i++ {
		at := simclock.Time(i) * simclock.Time(time.Millisecond)
		off := int64(i) * 4096 * 3 // distinct cold pages
		d1, err := direct.SubmitSync(at, buf, off, false)
		if err != nil {
			t.Fatal(err)
		}
		sumDirect += (d1 - at).Duration()
		d2, err := m.Read(at, buf, off)
		if err != nil {
			t.Fatal(err)
		}
		sumMmap += (d2 - at).Duration()
	}
	ratio := float64(sumMmap) / float64(sumDirect)
	if ratio < 2 || ratio > 5 {
		t.Fatalf("mmap/direct latency ratio %.1f, want ~3x", ratio)
	}
}
