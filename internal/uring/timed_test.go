package uring

import (
	"testing"

	"sdm/internal/blockdev"
	"sdm/internal/simclock"
)

// TestSubmitTimedReadMatchesSubmitSync drives two identically-seeded
// device+ring pairs with the same read sequence — one through the inline
// SubmitSync path, one through PeekInto + SubmitTimedRead — and requires
// bit-identical completion times, data, ring stats and device stats. This
// is the contract the deferred-timing query engine rests on.
func TestSubmitTimedReadMatchesSubmitSync(t *testing.T) {
	for _, sgl := range []bool{false, true} {
		var clkA, clkB simclock.Clock
		// Nand has tail events and an outstanding cap, exercising both the
		// RNG and the software queue.
		spec := blockdev.Spec(blockdev.NandFlash)
		devA := blockdev.New(spec, 1<<22, &clkA, 11)
		devB := blockdev.New(spec, 1<<22, &clkB, 11)
		seed := make([]byte, 1<<22)
		for i := range seed {
			seed[i] = byte(i * 31)
		}
		if _, err := devA.Write(0, seed, 0); err != nil {
			t.Fatal(err)
		}
		if _, err := devB.Write(0, seed, 0); err != nil {
			t.Fatal(err)
		}
		ringA := NewSync(devA, Config{SGL: sgl})
		ringB := NewSync(devB, Config{SGL: sgl})

		bufA := make([]byte, 200)
		bufB := make([]byte, 200)
		now := simclock.Time(0)
		for i := 0; i < 300; i++ {
			off := int64((i * 7919) % (1 << 21))
			dA, errA := ringA.SubmitSync(now, bufA, off, false)
			errPeek := devB.PeekInto(bufB, off)
			dB, errB := ringB.SubmitTimedRead(now, len(bufB), off)
			if errA != nil || errB != nil || errPeek != nil {
				t.Fatalf("sgl=%v io %d: errs %v %v %v", sgl, i, errA, errPeek, errB)
			}
			if dA != dB {
				t.Fatalf("sgl=%v io %d: completion %d vs %d", sgl, i, dA, dB)
			}
			for j := range bufA {
				if bufA[j] != bufB[j] {
					t.Fatalf("sgl=%v io %d: data diverged at %d", sgl, i, j)
				}
			}
			now = (dA + now) / 2 // advance partially so queues stay busy
		}
		if ringA.Stats() != ringB.Stats() {
			t.Fatalf("sgl=%v ring stats diverged:\n%+v\n%+v", sgl, ringA.Stats(), ringB.Stats())
		}
		if devA.Stats() != devB.Stats() {
			t.Fatalf("sgl=%v device stats diverged:\n%+v\n%+v", sgl, devA.Stats(), devB.Stats())
		}
	}
}

// TestAccountReadBounds checks the timing-only path validates like Read.
func TestAccountReadBounds(t *testing.T) {
	var clk simclock.Clock
	dev := blockdev.New(blockdev.Spec(blockdev.OptaneSSD), 4096, &clk, 1)
	if _, err := dev.AccountRead(0, 4000, 200, false); err == nil {
		t.Fatal("out-of-range account must fail")
	}
	if err := dev.PeekInto(make([]byte, 200), 4000); err == nil {
		t.Fatal("out-of-range peek must fail")
	}
	dev.Close()
	if err := dev.PeekInto(make([]byte, 1), 0); err == nil {
		t.Fatal("closed device peek must fail")
	}
	if _, err := dev.AccountRead(0, 0, 1, false); err == nil {
		t.Fatal("closed device account must fail")
	}
}
