package uring

import (
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/simclock"
)

// SyncRing is a synchronous virtual-time facade over a device: instead of
// scheduling completion callbacks, SubmitSync books the IO against the
// device's channel model and returns its completion timestamp directly.
// Outstanding-IO throttling (the §4.1 Tuning API) is preserved: when the
// cap is reached, a new IO cannot start before the earliest in-flight IO's
// completion. This is the form used inside the SDM store and the host
// simulator, where query code wants the completion time in-line.
type SyncRing struct {
	dev      *blockdev.Device
	cfg      Config
	inflight simclock.TimeHeap
	stats    Stats
}

// NewSync creates a synchronous ring over dev.
func NewSync(dev *blockdev.Device, cfg Config) *SyncRing {
	if cfg.MaxOutstanding == 0 {
		cfg.MaxOutstanding = dev.MaxOutstanding
	}
	if cfg.Mode == 0 {
		cfg.Mode = IRQ
	}
	if cfg.BatchSubmit <= 0 {
		cfg.BatchSubmit = 16
	}
	return &SyncRing{dev: dev, cfg: cfg}
}

// Config returns the ring configuration.
func (r *SyncRing) Config() Config { return r.cfg }

// Stats returns a snapshot of counters.
func (r *SyncRing) Stats() Stats { return r.stats }

// Device returns the underlying device.
func (r *SyncRing) Device() *blockdev.Device { return r.dev }

func (r *SyncRing) cpuPerIO() time.Duration {
	per := cpuPerIOIRQ
	if r.cfg.Mode == Polling {
		per = cpuPerIOPolling
	}
	per += 500 * time.Nanosecond / time.Duration(r.cfg.BatchSubmit)
	return per
}

// admit drops completed in-flight entries, applies the outstanding cap and
// returns the earliest virtual time the new IO may start.
func (r *SyncRing) admit(now simclock.Time) simclock.Time {
	start := now
	// Drop completed entries, then apply the outstanding cap.
	for r.inflight.Len() > 0 && r.inflight.Min() <= now {
		r.inflight.PopMin()
	}
	if r.cfg.MaxOutstanding > 0 {
		for r.inflight.Len() >= r.cfg.MaxOutstanding {
			if t := r.inflight.PopMin(); t > start {
				start = t
			}
		}
	}
	if len(r.inflight) > r.stats.PeakInflight {
		r.stats.PeakInflight = len(r.inflight)
	}
	return start
}

// SubmitSync performs one IO issued at virtual time now and returns its
// completion time.
func (r *SyncRing) SubmitSync(now simclock.Time, buf []byte, off int64, write bool) (simclock.Time, error) {
	r.stats.Submitted++
	start := r.admit(now)
	var (
		done simclock.Time
		err  error
	)
	switch {
	case write:
		done, err = r.dev.Write(start, buf, off)
	case r.cfg.SGL:
		done, err = r.dev.ReadSGL(start, buf, off)
	default:
		done, err = r.dev.Read(start, buf, off)
	}
	r.stats.CPUTime += r.cpuPerIO()
	if err != nil {
		r.stats.Errors++
		return start, err
	}
	r.inflight.Push(done)
	r.stats.Completed++
	return done, nil
}

// SubmitTimedRead books the timing of an n-byte read at off whose data was
// already copied out via Device.PeekInto. It mirrors SubmitSync's read path
// exactly — same throttle, same device channel booking, same stats — minus
// the data movement, so a deferred-timing replay is bit-identical to inline
// submission.
func (r *SyncRing) SubmitTimedRead(now simclock.Time, n int, off int64) (simclock.Time, error) {
	r.stats.Submitted++
	start := r.admit(now)
	done, err := r.dev.AccountRead(start, off, n, r.cfg.SGL)
	r.stats.CPUTime += r.cpuPerIO()
	if err != nil {
		r.stats.Errors++
		return start, err
	}
	r.inflight.Push(done)
	r.stats.Completed++
	return done, nil
}
