package pooledcache

import (
	"testing"
	"testing/quick"
)

func TestHashOrderInvariance(t *testing.T) {
	a := HashIndices([]int64{1, 2, 3, 4})
	b := HashIndices([]int64{4, 3, 2, 1})
	c := HashIndices([]int64{2, 4, 1, 3})
	if a != b || b != c {
		t.Fatal("hash must be order-invariant (pooling is commutative)")
	}
}

func TestHashMultisetSensitive(t *testing.T) {
	a := HashIndices([]int64{1, 2, 3})
	b := HashIndices([]int64{1, 2, 3, 3})
	c := HashIndices([]int64{1, 2, 4})
	if a == b {
		t.Fatal("repeat count must change the hash")
	}
	if a == c {
		t.Fatal("different multiset must change the hash")
	}
}

func TestHashPropertyPermutation(t *testing.T) {
	f := func(xs []int64, swapA, swapB uint8) bool {
		if len(xs) < 2 {
			return true
		}
		i, j := int(swapA)%len(xs), int(swapB)%len(xs)
		orig := HashIndices(xs)
		xs[i], xs[j] = xs[j], xs[i]
		return HashIndices(xs) == orig
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func TestCacheHitAfterPut(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20, LenThreshold: 2})
	idx := []int64{5, 9, 13}
	vec := []float32{1, 2, 3, 4}
	if got := c.Get(1, idx); got != nil {
		t.Fatal("cold cache should miss")
	}
	c.Put(1, idx, vec)
	got := c.Get(1, idx)
	if got == nil {
		t.Fatal("miss after put")
	}
	for i := range vec {
		if got[i] != vec[i] {
			t.Fatalf("vector mismatch %v", got)
		}
	}
	// Permuted sequence hits too (order-invariant key).
	if c.Get(1, []int64{13, 5, 9}) == nil {
		t.Fatal("permuted sequence should hit")
	}
	// Different table misses.
	if c.Get(2, idx) != nil {
		t.Fatal("table id must be part of the key")
	}
}

func TestLenThresholdSkip(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20, LenThreshold: 4})
	short := []int64{1, 2, 3} // len 3 <= threshold 4
	c.Put(1, short, []float32{1})
	if got := c.Get(1, short); got != nil {
		t.Fatal("below-threshold sequence should never be cached")
	}
	s := c.Stats()
	if s.Skipped == 0 {
		t.Fatal("skips must be counted")
	}
	if s.Misses != 0 {
		t.Fatal("skips are not misses")
	}
}

func TestAvgHitLen(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20, LenThreshold: 1})
	a := []int64{1, 2, 3, 4}          // len 4
	b := []int64{1, 2, 3, 4, 5, 6, 7} // len 7... wait threshold=1 so len>1 cached
	c.Put(1, a, []float32{1})
	c.Put(1, b, []float32{1})
	c.Get(1, a)
	c.Get(1, b)
	if got := c.Stats().AvgHitLen(); got != 5.5 {
		t.Fatalf("avg hit len %g, want 5.5", got)
	}
}

func TestEvictionBudget(t *testing.T) {
	c := New(Config{CapacityBytes: 4 << 10, LenThreshold: 1})
	vec := make([]float32, 64) // 256 B + 128 meta
	for i := int64(0); i < 100; i++ {
		c.Put(1, []int64{i, i + 1, i + 2}, vec)
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatal("over-budget puts must evict")
	}
	if s.UsedBytes+s.Items*metaPerItem > 4<<10 {
		t.Fatalf("resident %d over budget", s.UsedBytes+s.Items*metaPerItem)
	}
}

func TestHitRateAccounting(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20, LenThreshold: 1})
	seq := []int64{1, 2, 3}
	c.Get(1, seq) // miss
	c.Put(1, seq, []float32{1})
	c.Get(1, seq)        // hit
	c.Get(1, []int64{9}) // skipped (len 1 <= threshold)
	s := c.Stats()
	if s.Hits != 1 || s.Misses != 1 || s.Skipped != 1 {
		t.Fatalf("stats %+v", s)
	}
	want := 1.0 / 3
	if got := s.HitRate(); got < want-1e-9 || got > want+1e-9 {
		t.Fatalf("hit rate %g, want %g", got, want)
	}
}

func TestReset(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20, LenThreshold: 1})
	c.Put(1, []int64{1, 2}, []float32{1})
	c.Reset()
	if c.Get(1, []int64{1, 2}) != nil {
		t.Fatal("reset kept entries")
	}
}

func TestDefaultConfig(t *testing.T) {
	c := New(Config{})
	if c.Config().CapacityBytes <= 0 || c.Config().LenThreshold <= 0 {
		t.Fatal("defaults not applied")
	}
}

func TestReplaceExisting(t *testing.T) {
	c := New(Config{CapacityBytes: 1 << 20, LenThreshold: 1})
	seq := []int64{1, 2, 3}
	c.Put(1, seq, []float32{1, 1})
	c.Put(1, seq, []float32{2, 2, 2})
	got := c.Get(1, seq)
	if len(got) != 3 || got[0] != 2 {
		t.Fatalf("replace failed: %v", got)
	}
	if c.Stats().Items != 1 {
		t.Fatal("replace should not duplicate")
	}
}
