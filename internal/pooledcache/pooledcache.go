// Package pooledcache implements the pooled embedding cache of §4.4
// (Algorithm 1): for an embedding operator with index sequence I, the
// already dequantized-and-pooled output vector is cached under an
// order-invariant hash of I. A hit skips the per-row lookups, the
// dequantization and the pooling entirely. Only full sequences are cached
// (the paper's c = P scheme) because subsequence matching is prohibitively
// expensive except near c = 1 or c = P (Table 3); the minimum cacheable
// sequence length is the LenThreshold tuning knob (Table 4).
package pooledcache

import "container/list"

// SeqKey is the order-invariant digest of an index sequence for one table.
type SeqKey struct {
	Table int32
	Hash  uint64
	Len   uint16
}

// HashIndices computes an order-invariant, multiset-sensitive hash of the
// sequence: each index is avalanched independently and the results are
// combined with commutative operators (sum and xor), so permutations of
// the same multiset collide (by design — pooling is order-invariant) while
// different multisets almost surely do not.
func HashIndices(indices []int64) uint64 {
	var sum, xor uint64
	for _, idx := range indices {
		h := mix(uint64(idx))
		sum += h
		xor ^= h
	}
	return mix(sum ^ (xor * 0x9e3779b97f4a7c15) ^ uint64(len(indices)))
}

func mix(x uint64) uint64 {
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// Key builds the cache key for a table's index sequence.
func Key(table int32, indices []int64) SeqKey {
	return SeqKey{Table: table, Hash: HashIndices(indices), Len: uint16(min(len(indices), 1<<16-1))}
}

// Stats aggregates cache counters.
type Stats struct {
	Hits      uint64
	Misses    uint64
	Puts      uint64
	Skipped   uint64 // sequences below LenThreshold, never looked up
	Evictions uint64
	UsedBytes int64
	Items     int64
	// HitLenSum accumulates the sequence lengths of hits, so the "Hit Avg
	// Len" column of Table 4 is HitLenSum/Hits.
	HitLenSum uint64
}

// Add returns the field-wise sum of s and o — used to aggregate the
// per-table shard counters of a sharded pooled cache.
func (s Stats) Add(o Stats) Stats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Puts += o.Puts
	s.Skipped += o.Skipped
	s.Evictions += o.Evictions
	s.UsedBytes += o.UsedBytes
	s.Items += o.Items
	s.HitLenSum += o.HitLenSum
	return s
}

// HitRate returns hits/(hits+misses+skipped) — the fraction of all pooling
// operations served from the pooled cache, matching Table 4's accounting.
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses + s.Skipped
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

// AvgHitLen returns the average index-sequence length among hits
// (Table 4, "Hit Avg Len").
func (s Stats) AvgHitLen() float64 {
	if s.Hits == 0 {
		return 0
	}
	return float64(s.HitLenSum) / float64(s.Hits)
}

// Config tunes the pooled cache.
type Config struct {
	// CapacityBytes bounds resident pooled vectors (plus metadata).
	CapacityBytes int64
	// LenThreshold is the minimum index-sequence length worth caching
	// ("The min sequence length which could be cached is configurable").
	LenThreshold int
}

// Cache is an LRU pooled-embedding cache. Not safe for concurrent use.
type Cache struct {
	cfg   Config
	items map[SeqKey]*list.Element
	lru   *list.List
	stats Stats
}

type entry struct {
	key SeqKey
	vec []float32
}

// metaPerItem accounts map + list + header overhead per entry.
const metaPerItem = 128

// New builds a pooled-embedding cache.
func New(cfg Config) *Cache {
	if cfg.CapacityBytes <= 0 {
		cfg.CapacityBytes = 1 << 20
	}
	if cfg.LenThreshold <= 0 {
		cfg.LenThreshold = 1
	}
	return &Cache{
		cfg:   cfg,
		items: make(map[SeqKey]*list.Element),
		lru:   list.New(),
	}
}

// Config returns the cache configuration.
func (c *Cache) Config() Config { return c.cfg }

// Get returns the cached pooled vector for the table's index sequence, or
// nil on miss. Sequences shorter than LenThreshold are skipped (counted
// separately) per Algorithm 1's doPooledEmbCache guard. The returned slice
// is owned by the cache; callers must copy before mutating.
func (c *Cache) Get(table int32, indices []int64) []float32 {
	if len(indices) <= c.cfg.LenThreshold {
		c.stats.Skipped++
		return nil
	}
	k := Key(table, indices)
	el, ok := c.items[k]
	if !ok {
		c.stats.Misses++
		return nil
	}
	c.lru.MoveToFront(el)
	c.stats.Hits++
	c.stats.HitLenSum += uint64(len(indices))
	return el.Value.(*entry).vec
}

// Put caches the pooled output for the table's index sequence. Sequences
// below LenThreshold are ignored.
func (c *Cache) Put(table int32, indices []int64, pooled []float32) {
	if len(indices) <= c.cfg.LenThreshold {
		return
	}
	k := Key(table, indices)
	c.stats.Puts++
	if el, ok := c.items[k]; ok {
		e := el.Value.(*entry)
		c.stats.UsedBytes += int64(4 * (len(pooled) - len(e.vec)))
		e.vec = append(e.vec[:0], pooled...)
		c.lru.MoveToFront(el)
		c.evictToFit()
		return
	}
	e := &entry{key: k, vec: append([]float32(nil), pooled...)}
	c.items[k] = c.lru.PushFront(e)
	c.stats.UsedBytes += int64(4 * len(pooled))
	c.stats.Items++
	c.evictToFit()
}

func (c *Cache) evictToFit() {
	for c.stats.UsedBytes+c.stats.Items*metaPerItem > c.cfg.CapacityBytes && c.lru.Len() > 1 {
		el := c.lru.Back()
		e := el.Value.(*entry)
		c.lru.Remove(el)
		delete(c.items, e.key)
		c.stats.UsedBytes -= int64(4 * len(e.vec))
		c.stats.Items--
		c.stats.Evictions++
	}
}

// Stats returns a snapshot of counters.
func (c *Cache) Stats() Stats { return c.stats }

// Reset drops all entries and counters.
func (c *Cache) Reset() {
	c.items = make(map[SeqKey]*list.Element)
	c.lru = list.New()
	c.stats = Stats{}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
