package pooledcache

import "sort"

// ProfileScheme identifies one row of the paper's Table 3 subsequence
// profiling study.
type ProfileScheme int

// Schemes from Table 3.
const (
	// SchemeC10 profiles length-10 subsequences of each request. The
	// full enumeration is O(C(avgP,10)) candidate subsequences — the
	// "Generated sequences" column — which is why the paper deems it
	// prohibitive; the profiler detects repeats through a canonical
	// representative (the query's 10 most popular indices), which lower-
	// bounds the enumerating scheme's hit rate at O(1) profiling cost.
	SchemeC10 ProfileScheme = iota + 1
	// SchemeC10Top is SchemeC10 restricted to the globally most frequent
	// indices (O(100) distinct generated sequences).
	SchemeC10Top
	// SchemeCP profiles only the full sequence (c = P) — the scheme the
	// production pooled cache implements (Algorithm 1).
	SchemeCP
)

// String returns the scheme name.
func (s ProfileScheme) String() string {
	switch s {
	case SchemeC10:
		return "c=10"
	case SchemeC10Top:
		return "c=10, top indices"
	case SchemeCP:
		return "c=P"
	default:
		return "unknown"
	}
}

// ProfileResult is one Table 3 row: the fraction of queries with at least
// one subsequence hit, and how many candidate subsequences the scheme
// implies per query (the scheme's overhead).
type ProfileResult struct {
	Scheme          ProfileScheme
	HitRate         float64
	GeneratedPerQry float64
}

// profileC is the paper's profiled subsequence length.
const profileC = 10

// Profile replays a stream of per-query index sequences against the given
// scheme and reports hit rate and generated-sequence overhead, reproducing
// Table 3. topK sets the frequent-index vocabulary for SchemeC10Top.
// Popularity is estimated from the stream itself (first pass), standing in
// for the paper's production index-frequency profiles.
func Profile(queries [][]int64, scheme ProfileScheme, topK int, seed uint64) ProfileResult {
	seen := make(map[uint64]struct{}, len(queries))
	var hits int
	var generated float64

	var freq map[int64]int
	var topSet map[int64]struct{}
	if scheme == SchemeC10 || scheme == SchemeC10Top {
		freq = indexFrequencies(queries)
	}
	if scheme == SchemeC10Top {
		if topK <= 0 {
			topK = 100
		}
		topSet = topIndices(freq, topK)
	}

	scratch := make([]int64, 0, 64)
	for _, q := range queries {
		switch scheme {
		case SchemeCP:
			generated++
			h := HashIndices(q)
			if _, ok := seen[h]; ok {
				hits++
			}
			seen[h] = struct{}{}

		case SchemeC10:
			if len(q) < profileC {
				continue
			}
			// True cost of enumerating all length-10 subsequences.
			generated += binomialApprox(len(q), profileC)
			// Canonical representative: the 10 most frequent indices of
			// the query (ties broken by index), sorted.
			scratch = canonicalTop(scratch[:0], q, freq, nil, profileC)
			h := HashIndices(scratch)
			if _, ok := seen[h]; ok {
				hits++
			}
			seen[h] = struct{}{}

		case SchemeC10Top:
			// Only indices from the hot vocabulary participate.
			scratch = canonicalTop(scratch[:0], q, freq, topSet, profileC)
			if len(scratch) < profileC {
				continue
			}
			generated++
			h := HashIndices(scratch)
			if _, ok := seen[h]; ok {
				hits++
			}
			seen[h] = struct{}{}
		}
	}
	n := float64(len(queries))
	if n == 0 {
		n = 1
	}
	return ProfileResult{
		Scheme:          scheme,
		HitRate:         float64(hits) / n,
		GeneratedPerQry: generated / n,
	}
}

// canonicalTop writes into dst the up-to-c most frequent indices of q
// (restricted to allow when non-nil), sorted ascending for a canonical
// representation.
func canonicalTop(dst, q []int64, freq map[int64]int, allow map[int64]struct{}, c int) []int64 {
	for _, idx := range q {
		if allow != nil {
			if _, ok := allow[idx]; !ok {
				continue
			}
		}
		dst = append(dst, idx)
	}
	sort.Slice(dst, func(i, j int) bool {
		fi, fj := freq[dst[i]], freq[dst[j]]
		if fi != fj {
			return fi > fj
		}
		return dst[i] < dst[j]
	})
	if len(dst) > c {
		dst = dst[:c]
	}
	sort.Slice(dst, func(i, j int) bool { return dst[i] < dst[j] })
	return dst
}

func indexFrequencies(queries [][]int64) map[int64]int {
	freq := make(map[int64]int)
	for _, q := range queries {
		for _, idx := range q {
			freq[idx]++
		}
	}
	return freq
}

func topIndices(freq map[int64]int, k int) map[int64]struct{} {
	type kv struct {
		idx int64
		n   int
	}
	all := make([]kv, 0, len(freq))
	for idx, n := range freq {
		all = append(all, kv{idx, n})
	}
	sort.Slice(all, func(i, j int) bool {
		if all[i].n != all[j].n {
			return all[i].n > all[j].n
		}
		return all[i].idx < all[j].idx
	})
	if k > len(all) {
		k = len(all)
	}
	set := make(map[int64]struct{}, k)
	for _, e := range all[:k] {
		set[e.idx] = struct{}{}
	}
	return set
}

// binomialApprox returns min(C(n, k), 1e12) as float to report the
// generated-sequence blow-up without overflow.
func binomialApprox(n, k int) float64 {
	if k > n {
		return 0
	}
	res := 1.0
	for i := 0; i < k; i++ {
		res *= float64(n-i) / float64(i+1)
		if res > 1e12 {
			return 1e12
		}
	}
	return res
}
