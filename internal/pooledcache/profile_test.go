package pooledcache

import (
	"testing"

	"sdm/internal/xrand"
)

// syntheticQueries builds a query stream shaped like the paper's profiled
// production traffic: a small fraction of queries are exact repeats of
// earlier sequences (popular users re-querying, Table 3's c=P hits), a
// larger fraction are partial repeats sharing most indices with an earlier
// query (feature churn — catchable only by subsequence schemes), and the
// rest are fresh.
func syntheticQueries(n, pf int, fullFrac, partialFrac float64, seed uint64) [][]int64 {
	rng := xrand.New(seed)
	zip := xrand.NewZipf(1<<20, 1.05)
	fresh := func() []int64 {
		q := make([]int64, pf)
		for j := range q {
			q[j] = zip.Rank(rng)
		}
		return q
	}
	var out [][]int64
	for i := 0; i < n; i++ {
		r := rng.Float64()
		switch {
		case len(out) > 0 && r < fullFrac:
			out = append(out, out[rng.Intn(len(out))])
		case len(out) > 0 && r < fullFrac+partialFrac:
			src := out[rng.Intn(len(out))]
			q := make([]int64, pf)
			keep := pf * 9 / 10
			copy(q, src[:keep])
			for j := keep; j < pf; j++ {
				q[j] = zip.Rank(rng)
			}
			out = append(out, q)
		default:
			out = append(out, fresh())
		}
	}
	return out
}

func TestProfileCPDetectsRepeats(t *testing.T) {
	qs := syntheticQueries(5000, 20, 0.05, 0, 1)
	res := Profile(qs, SchemeCP, 0, 1)
	// ~5% of queries are repeats; c=P should find roughly that many
	// (Table 3's 5% row).
	if res.HitRate < 0.02 || res.HitRate > 0.12 {
		t.Fatalf("c=P hit rate %.3f, want ≈0.05", res.HitRate)
	}
	if res.GeneratedPerQry != 1 {
		t.Fatalf("c=P generates exactly 1 sequence per query, got %g", res.GeneratedPerQry)
	}
}

func TestProfileC10HigherHitHigherCost(t *testing.T) {
	qs := syntheticQueries(4000, 20, 0.05, 0.25, 2)
	cp := Profile(qs, SchemeCP, 0, 2)
	c10 := Profile(qs, SchemeC10, 0, 2)
	// Table 3: subsequence matching raises hit rate (26% vs 5%) but the
	// implied generated-sequence overhead explodes (O(C(P,10))).
	if c10.HitRate <= cp.HitRate {
		t.Fatalf("c=10 (%.3f) should beat c=P (%.3f)", c10.HitRate, cp.HitRate)
	}
	if c10.GeneratedPerQry < 1000 {
		t.Fatalf("c=10 overhead %g should be combinatorial", c10.GeneratedPerQry)
	}
}

func TestProfileC10TopBounded(t *testing.T) {
	qs := syntheticQueries(3000, 20, 0.05, 0.25, 3)
	top := Profile(qs, SchemeC10Top, 1000, 3)
	// Top-index scheme keeps overhead O(1) per query.
	if top.GeneratedPerQry > 1.01 {
		t.Fatalf("c=10-top overhead %g should be ≤1", top.GeneratedPerQry)
	}
}

func TestProfileOrderingMatchesTable3(t *testing.T) {
	qs := syntheticQueries(6000, 20, 0.05, 0.25, 4)
	c10 := Profile(qs, SchemeC10, 0, 4)
	top := Profile(qs, SchemeC10Top, 1000, 4)
	cp := Profile(qs, SchemeCP, 0, 4)
	// Table 3 ordering: c=10 (26%) ≥ c=10 top (19%) > c=P (5%).
	if !(c10.HitRate >= top.HitRate && top.HitRate > cp.HitRate) {
		t.Fatalf("hit-rate ordering violated: c10=%.3f top=%.3f cp=%.3f",
			c10.HitRate, top.HitRate, cp.HitRate)
	}
}

func TestProfileEmpty(t *testing.T) {
	res := Profile(nil, SchemeCP, 0, 1)
	if res.HitRate != 0 {
		t.Fatal("empty stream should have 0 hit rate")
	}
}

func TestSchemeString(t *testing.T) {
	for _, s := range []ProfileScheme{SchemeC10, SchemeC10Top, SchemeCP} {
		if s.String() == "" || s.String() == "unknown" {
			t.Errorf("bad name for scheme %d", s)
		}
	}
}

func TestCanonicalTopDeterministic(t *testing.T) {
	freq := map[int64]int{1: 10, 2: 9, 3: 8, 4: 7, 5: 6}
	a := canonicalTop(nil, []int64{5, 4, 3, 2, 1}, freq, nil, 3)
	b := canonicalTop(nil, []int64{1, 2, 3, 4, 5}, freq, nil, 3)
	if len(a) != 3 || len(b) != 3 {
		t.Fatalf("lens %d %d", len(a), len(b))
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("order-dependent canonical form: %v vs %v", a, b)
		}
	}
}
