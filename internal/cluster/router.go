package cluster

import (
	"fmt"
	"math"
	"sort"
	"strconv"
	"strings"

	"sdm/internal/obs"
	"sdm/internal/serving"
	"sdm/internal/simclock"
	"sdm/internal/workload"
)

// View is the per-host fleet state a Router (and its Scorers) may consult
// when picking a target. Liveness lives here — the fleet owns it, routers
// only read it. Signals split into two classes:
//
//   - Front-end state (Hosts, Alive, LastHost, Routed, InMigrationWindow):
//     maintained by the routing loop itself or pure functions of virtual
//     time, always safe to read.
//   - Host state (OutstandingAt, Snapshot, FMServedRate, WearHeadroom,
//     MigrationBacklog): read from concurrently executing hosts, valid
//     only from routers whose Feedback() is true — the fleet then
//     synchronizes every host before each decision, so reads are race-free
//     and deterministic.
type View interface {
	// Hosts returns the fleet size (host ids are 0..Hosts()-1).
	Hosts() int
	// Alive reports whether host id is serving.
	Alive(id int) bool
	// OutstandingAt returns host id's in-flight query count at virtual
	// time t. Only valid from routers with Feedback() == true.
	OutstandingAt(id int, t simclock.Time) int
	// LastHost returns the host the user's previous query was routed to,
	// or -1 for a first-seen user — the front-end's affinity memory.
	LastHost(user int64) int
	// Routed returns how many queries this Run has routed to host id —
	// the front-end's own load ledger, available without host feedback.
	Routed(id int) int
	// Snapshot returns host id's cumulative cache counters
	// (serving.CacheSnapshot). Only valid when Feedback() == true.
	Snapshot(id int) serving.CacheSnapshot
	// FMServedRate returns the fraction of host id's store lookups served
	// from fast memory so far (0 for flat hosts). Only valid when
	// Feedback() == true.
	FMServedRate(id int) float64
	// WearHeadroom returns the host's remaining rated SM endurance as a
	// fraction in [0, 1] (1 for flat hosts and fresh devices). Only valid
	// when Feedback() == true.
	WearHeadroom(id int) float64
	// InMigrationWindow reports whether host id may issue migration IO at
	// t: inside its coordinator-granted window, or always when no
	// coordinator gates migration. Pure function of (id, t).
	InMigrationWindow(id int, t simclock.Time) bool
	// MigrationBacklog returns the host's queued plus in-flight migration
	// move count (0 without adapters). Only valid when Feedback() == true.
	MigrationBacklog(id int) int
}

// Router is a pluggable user→host routing policy. Implementations must be
// deterministic: the same sequence of Route calls over the same Views
// yields the same decisions, which is what makes fleet runs replayable.
// Host liveness is the fleet's job and arrives through View.Alive; routers
// hold no liveness state of their own.
type Router interface {
	// Name identifies the policy in results.
	Name() string
	// Route picks an alive host for q arriving at now, or -1 when no host
	// is eligible.
	Route(q workload.Query, now simclock.Time, v View) int
	// Feedback reports whether Route reads live host state through the
	// View; the fleet then syncs hosts before each decision.
	Feedback() bool
}

// Scorer rates one host for one query: higher is better. Scores should be
// calibrated to [0, 1] so WeightedRouter weights express relative
// importance directly. Scorers must be pure with respect to the View —
// deterministic and free of side effects — so fleet runs stay replayable.
type Scorer interface {
	// Name identifies the scorer in weight specs and diagnostics.
	Name() string
	// Score rates host for q arriving at now. Dead hosts are never
	// scored; the router skips them first.
	Score(q workload.Query, now simclock.Time, host int, v View) float64
	// Feedback reports whether Score reads live host state through the
	// View (OutstandingAt, Snapshot, wear, migration backlog).
	Feedback() bool
}

// ExplainedRouter is the optional Router extension the decision tracer
// uses: RouteExplained makes exactly the same decision as Route (same
// winner, same tie-break state advance) while filling d with the chosen
// host's per-scorer score decomposition and the top-k rejected
// alternatives. Routers without it still trace, but their rows carry
// only the chosen/previous hosts.
type ExplainedRouter interface {
	Router
	// RouteExplained routes q and explains the decision into d (Chosen,
	// Score, Parts, and up to k Alts). It must be behaviorally identical
	// to Route.
	RouteExplained(q workload.Query, now simclock.Time, v View, k int, d *obs.RouteDecision) int
}

// ScorerWeight pairs a Scorer with its weight in a WeightedRouter's sum.
type ScorerWeight struct {
	Scorer Scorer
	Weight float64
}

// WeightedRouter picks the alive host maximizing the weighted sum of its
// scorers — the composable policy the closed round-robin/least-
// outstanding/sticky structs are rewritten on top of.
//
// Tie-breaking is strictly deterministic by rotating scan order: hosts are
// scanned starting after the previous winner ((next+i) % n), a candidate
// replaces the incumbent only on a strictly greater score, and the scan
// start advances past each winner. Equal-scoring hosts therefore share
// load round-robin instead of funnelling to host 0 — and with zero
// scorers the rotation alone IS round-robin.
type WeightedRouter struct {
	name     string
	scorers  []ScorerWeight
	feedback bool
	next     int

	// scratch holds per-host scores for RouteExplained, reused across
	// calls so tracing does not allocate per decision.
	scratch []float64
}

// NewWeightedRouter composes scorers into a router. Weights must be
// finite and >= 0; nil scorers are rejected. No scorers at all is valid
// and yields pure rotating (round-robin) selection. An empty name selects
// "weighted".
func NewWeightedRouter(name string, scorers ...ScorerWeight) (*WeightedRouter, error) {
	if name == "" {
		name = "weighted"
	}
	r := &WeightedRouter{name: name, scorers: scorers}
	for _, sw := range scorers {
		if sw.Scorer == nil {
			return nil, fmt.Errorf("cluster: weighted router %q has a nil scorer", name)
		}
		if math.IsNaN(sw.Weight) || math.IsInf(sw.Weight, 0) || sw.Weight < 0 {
			return nil, fmt.Errorf("cluster: weighted router %q: scorer %s weight %g must be finite and >= 0",
				name, sw.Scorer.Name(), sw.Weight)
		}
		if sw.Scorer.Feedback() {
			r.feedback = true
		}
	}
	return r, nil
}

// Name implements Router.
func (r *WeightedRouter) Name() string { return r.name }

// Feedback implements Router: true when any scorer reads live host state.
func (r *WeightedRouter) Feedback() bool { return r.feedback }

// Scorers returns the router's scorer/weight composition.
func (r *WeightedRouter) Scorers() []ScorerWeight { return r.scorers }

// Route implements Router: argmax of the weighted score over alive hosts,
// ties broken by rotating scan order (see type comment).
func (r *WeightedRouter) Route(q workload.Query, now simclock.Time, v View) int {
	best, _ := r.route(q, now, v, nil)
	return best
}

// route is the shared decision loop: argmax with the rotating tie-break.
// A non-nil scores slice (len >= Hosts) additionally records every alive
// host's score (dead hosts keep NaN) — the explained path; the nil path
// is allocation-free.
func (r *WeightedRouter) route(q workload.Query, now simclock.Time, v View, scores []float64) (int, float64) {
	n := v.Hosts()
	best := -1
	var bestScore float64
	for i := 0; i < n; i++ {
		id := (r.next + i) % n
		if !v.Alive(id) {
			continue
		}
		var s float64
		for _, sw := range r.scorers {
			s += sw.Weight * sw.Scorer.Score(q, now, id, v)
		}
		if scores != nil {
			scores[id] = s
		}
		if best < 0 || s > bestScore {
			best, bestScore = id, s
		}
	}
	if best >= 0 {
		r.next = (best + 1) % n
	}
	return best, bestScore
}

// RouteExplained implements ExplainedRouter: the same decision as Route,
// plus the chosen host's per-scorer decomposition and the top-k rejected
// alternatives sorted by (score desc, host asc).
func (r *WeightedRouter) RouteExplained(q workload.Query, now simclock.Time, v View, k int, d *obs.RouteDecision) int {
	n := v.Hosts()
	if cap(r.scratch) < n {
		r.scratch = make([]float64, n)
	}
	scores := r.scratch[:n]
	for i := range scores {
		scores[i] = math.NaN() // NaN marks hosts never scored (dead)
	}
	best, bestScore := r.route(q, now, v, scores)
	d.Chosen = best
	if best < 0 {
		return best
	}
	d.Score = bestScore
	// Scorers are pure, so re-scoring the winner per scorer is free of
	// side effects and matches the summed decision exactly.
	for _, sw := range r.scorers {
		d.Parts = append(d.Parts, obs.ScorePart{
			Scorer: sw.Scorer.Name(),
			Weight: sw.Weight,
			Score:  sw.Scorer.Score(q, now, best, v),
		})
	}
	for id := 0; id < n; id++ {
		if id == best || math.IsNaN(scores[id]) {
			continue
		}
		d.Alts = append(d.Alts, obs.AltScore{Host: id, Score: scores[id], Gap: bestScore - scores[id]})
	}
	sort.SliceStable(d.Alts, func(i, j int) bool {
		if d.Alts[i].Score != d.Alts[j].Score {
			return d.Alts[i].Score > d.Alts[j].Score
		}
		return d.Alts[i].Host < d.Alts[j].Host
	})
	if k >= 0 && len(d.Alts) > k {
		d.Alts = d.Alts[:k]
	}
	return best
}

// NewRoundRobin returns the uniform policy: no scorers, so the rotating
// tie-break alone spreads queries over alive hosts in id order. It is the
// paper's implicit baseline: every host observes the full user population,
// so per-host temporal locality equals global locality.
func NewRoundRobin() *WeightedRouter {
	r, _ := NewWeightedRouter("round-robin")
	return r
}

// NewLeastOutstanding returns the classic load-balancing policy as a
// single queue-depth scorer: route to the alive host with the fewest
// in-flight queries at the arrival time (ties rotate). Best tail latency
// under skewed service times, but like round-robin it scatters every user
// across the whole fleet, so caches see global locality only.
func NewLeastOutstanding() *WeightedRouter {
	r, _ := NewWeightedRouter("least-outstanding", ScorerWeight{Scorer: NewQueueScorer(), Weight: 1})
	return r
}

// NewSticky returns consistent-hashing user→host pinning (§4.2 / Fig. 4c)
// as a single affinity scorer over a hash ring with vnodes virtual nodes
// per host (vnodes <= 0 selects 64): a user's queries always land on the
// same replica, concentrating their embedding rows in that replica's
// caches. When a host dies only its own users remap (spread across the
// survivors via the ring) and everyone else stays put — the property that
// keeps the §A.4 warmup spike proportional to the failed host's share.
func NewSticky(hosts, vnodes int) *WeightedRouter {
	r, _ := NewWeightedRouter("sticky", ScorerWeight{Scorer: NewAffinityScorer(hosts, vnodes), Weight: 1})
	return r
}

// ---------------------------------------------------------------------------
// Scorers

// queueScorer rates hosts by inverse queue depth.
type queueScorer struct{}

// NewQueueScorer returns the queue-depth scorer: 1/(1+outstanding), so an
// idle host scores 1 and score decays toward 0 as the queue grows. The
// mapping is strictly monotone in the integer queue depth, which is what
// makes a pure queue-scorer router bit-identical to the legacy
// least-outstanding struct: same winner, same ties, same rotation.
func NewQueueScorer() Scorer { return queueScorer{} }

func (queueScorer) Name() string   { return "queue" }
func (queueScorer) Feedback() bool { return true }
func (queueScorer) Score(_ workload.Query, now simclock.Time, host int, v View) float64 {
	return 1 / (1 + float64(v.OutstandingAt(host, now)))
}

// affinityScorer rates the user's ring owner 1 and everyone else 0.
type affinityScorer struct {
	ring *Ring
}

// NewAffinityScorer returns the cache-affinity scorer: 1 for the host
// owning q.UserID on a consistent-hash ring (dead owners fall through
// clockwise via View.Alive), 0 otherwise. vnodes <= 0 selects 64. The
// hosts count must match the fleet the scorer is routed against; Score
// panics on a mismatch rather than silently pinning users to a subset
// (hosts too small) or degrading affinity to rotation (hosts too large).
func NewAffinityScorer(hosts, vnodes int) Scorer {
	return affinityScorer{ring: NewRing(hosts, vnodes)}
}

func (affinityScorer) Name() string   { return "affinity" }
func (affinityScorer) Feedback() bool { return false }
func (s affinityScorer) Score(q workload.Query, _ simclock.Time, host int, v View) float64 {
	if s.ring.Hosts() != v.Hosts() {
		panic(fmt.Sprintf("cluster: affinity scorer ring built for %d hosts routed against a %d-host fleet",
			s.ring.Hosts(), v.Hosts()))
	}
	if s.ring.Owner(q.UserID, v.Alive) == host {
		return 1
	}
	return 0
}

// loadBalanceScorer rates hosts by routed-count deficit.
type loadBalanceScorer struct{}

// NewLoadBalanceScorer returns the long-horizon balance scorer: each
// host's deficit from the most-loaded host this Run, (max−routed)/(max−min),
// so the least-loaded host scores 1 and the most-loaded 0 (all hosts score
// 1 when perfectly balanced). It reads only the front-end's own routing
// ledger, so it needs no host feedback.
func NewLoadBalanceScorer() Scorer { return loadBalanceScorer{} }

func (loadBalanceScorer) Name() string   { return "loadbal" }
func (loadBalanceScorer) Feedback() bool { return false }
func (loadBalanceScorer) Score(_ workload.Query, _ simclock.Time, host int, v View) float64 {
	n := v.Hosts()
	min, max := -1, -1
	for id := 0; id < n; id++ {
		if !v.Alive(id) {
			continue
		}
		r := v.Routed(id)
		if min < 0 || r < min {
			min = r
		}
		if r > max {
			max = r
		}
	}
	if max <= min {
		return 1
	}
	return float64(max-v.Routed(host)) / float64(max-min)
}

// migrationAvoidScorer steers traffic away from actively migrating hosts.
type migrationAvoidScorer struct{}

// NewMigrationAvoidScorer returns the migration-avoidance scorer: 1 for a
// host with no migration backlog, 0 for a host that is inside a granted
// migration window with moves pending (its foreground tail is sharing the
// device with migration IO right now), and 0.5 for a host whose backlog
// is waiting on a future window (it will migrate soon, mild penalty). The
// window schedule is a pure function of virtual time; the backlog is live
// adapter state, so this scorer requires feedback.
func NewMigrationAvoidScorer() Scorer { return migrationAvoidScorer{} }

func (migrationAvoidScorer) Name() string   { return "migavoid" }
func (migrationAvoidScorer) Feedback() bool { return true }
func (migrationAvoidScorer) Score(_ workload.Query, now simclock.Time, host int, v View) float64 {
	if v.MigrationBacklog(host) == 0 {
		return 1
	}
	if v.InMigrationWindow(host, now) {
		return 0
	}
	return 0.5
}

// wearScorer rates hosts by remaining SM endurance.
type wearScorer struct{}

// NewWearScorer returns the wear scorer: the host's remaining rated-life
// fraction (View.WearHeadroom), so traffic — and the cache-fill and
// migration writes it induces — drifts away from replicas burning through
// their §3 DWPD budget. Flat hosts and fresh devices score 1.
func NewWearScorer() Scorer { return wearScorer{} }

func (wearScorer) Name() string   { return "wear" }
func (wearScorer) Feedback() bool { return true }
func (wearScorer) Score(_ workload.Query, _ simclock.Time, host int, v View) float64 {
	return v.WearHeadroom(host)
}

// fmServedScorer rates hosts by their FM-served rate.
type fmServedScorer struct{}

// NewFMServedScorer returns the placement-quality scorer: the fraction of
// the host's store lookups served from fast memory so far, so traffic
// prefers replicas whose placement has converged on the live hot set.
func NewFMServedScorer() Scorer { return fmServedScorer{} }

func (fmServedScorer) Name() string   { return "fmserved" }
func (fmServedScorer) Feedback() bool { return true }
func (fmServedScorer) Score(_ workload.Query, _ simclock.Time, host int, v View) float64 {
	return v.FMServedRate(host)
}

// scorerFactories maps weight-spec names to constructors; affinity needs
// the fleet size for its ring.
var scorerFactories = map[string]func(hosts int) Scorer{
	"queue":    func(int) Scorer { return NewQueueScorer() },
	"affinity": func(hosts int) Scorer { return NewAffinityScorer(hosts, 64) },
	"loadbal":  func(int) Scorer { return NewLoadBalanceScorer() },
	"migavoid": func(int) Scorer { return NewMigrationAvoidScorer() },
	"wear":     func(int) Scorer { return NewWearScorer() },
	"fmserved": func(int) Scorer { return NewFMServedScorer() },
}

// ScorerNames returns the weight-spec scorer names, sorted.
func ScorerNames() []string {
	names := make([]string, 0, len(scorerFactories))
	for n := range scorerFactories {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// ParseScorers parses a "name=weight,name=weight" spec (e.g.
// "affinity=1,queue=0.4,migavoid=1.2") into a scorer composition for a
// fleet of the given size. Names must be known (ScorerNames), unique, and
// weights finite and >= 0.
func ParseScorers(spec string, hosts int) ([]ScorerWeight, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, fmt.Errorf("cluster: empty scorer spec (known scorers: %s)", strings.Join(ScorerNames(), ", "))
	}
	var out []ScorerWeight
	seen := make(map[string]bool)
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		name, val, ok := strings.Cut(part, "=")
		if !ok {
			return nil, fmt.Errorf("cluster: scorer spec entry %q is not name=weight", part)
		}
		name = strings.TrimSpace(name)
		mk, known := scorerFactories[name]
		if !known {
			return nil, fmt.Errorf("cluster: unknown scorer %q (known: %s)", name, strings.Join(ScorerNames(), ", "))
		}
		if seen[name] {
			return nil, fmt.Errorf("cluster: scorer %q listed twice", name)
		}
		seen[name] = true
		w, err := strconv.ParseFloat(strings.TrimSpace(val), 64)
		if err != nil {
			return nil, fmt.Errorf("cluster: scorer %q weight %q: %v", name, val, err)
		}
		if math.IsNaN(w) || math.IsInf(w, 0) || w < 0 {
			return nil, fmt.Errorf("cluster: scorer %q weight %g must be finite and >= 0", name, w)
		}
		out = append(out, ScorerWeight{Scorer: mk(hosts), Weight: w})
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("cluster: scorer spec %q has no entries", spec)
	}
	return out, nil
}

// ---------------------------------------------------------------------------
// Consistent-hash ring

// Ring is the consistent-hash virtual-node ring behind sticky affinity:
// each host contributes vnode points, a user maps to the first point
// clockwise from its hash, and dead owners fall through to the next alive
// point. It is immutable after construction — liveness is the caller's
// (the View's) and arrives per lookup.
type Ring struct {
	points []ringPoint // sorted by hash; all hosts, dead or alive
	hosts  int
}

type ringPoint struct {
	hash uint64
	host int
}

// NewRing builds a ring over hosts replicas with vnodes virtual nodes
// each (vnodes <= 0 selects 64).
func NewRing(hosts, vnodes int) *Ring {
	if vnodes <= 0 {
		vnodes = 64
	}
	r := &Ring{hosts: hosts}
	for id := 0; id < hosts; id++ {
		for v := 0; v < vnodes; v++ {
			r.points = append(r.points, ringPoint{
				hash: mix64(uint64(id)<<32 | uint64(v)),
				host: id,
			})
		}
	}
	sort.Slice(r.points, func(i, j int) bool {
		if r.points[i].hash != r.points[j].hash {
			return r.points[i].hash < r.points[j].hash
		}
		return r.points[i].host < r.points[j].host
	})
	return r
}

// Hosts returns the replica count the ring was built over.
func (r *Ring) Hosts() int { return r.hosts }

// Owner returns the first host clockwise from user's hash for which alive
// returns true, or -1 when no host qualifies. A nil alive accepts every
// host.
func (r *Ring) Owner(user int64, alive func(int) bool) int {
	if len(r.points) == 0 {
		return -1
	}
	h := mix64(uint64(user))
	i := sort.Search(len(r.points), func(i int) bool { return r.points[i].hash >= h })
	for k := 0; k < len(r.points); k++ {
		p := r.points[(i+k)%len(r.points)]
		if alive == nil || alive(p.host) {
			return p.host
		}
	}
	return -1
}

// mix64 is a SplitMix64-style finalizer used for ring and user hashing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}
