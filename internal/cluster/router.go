package cluster

import (
	"sort"

	"sdm/internal/simclock"
	"sdm/internal/workload"
)

// View is the host state a Router may consult when picking a target. The
// fleet synchronizes all hosts before handing a View to a router whose
// Feedback() is true, so reads are race-free and deterministic.
type View interface {
	// Hosts returns the fleet size (host ids are 0..Hosts()-1).
	Hosts() int
	// Alive reports whether host id is serving.
	Alive(id int) bool
	// OutstandingAt returns host id's in-flight query count at virtual
	// time t. Only valid from routers with Feedback() == true.
	OutstandingAt(id int, t simclock.Time) int
}

// Router is a pluggable user→host routing policy. Implementations must be
// deterministic: the same sequence of Route/HostDown/HostUp calls yields
// the same decisions, which is what makes fleet runs replayable.
type Router interface {
	// Name identifies the policy in results.
	Name() string
	// Route picks an alive host for q arriving at now.
	Route(q workload.Query, now simclock.Time, v View) int
	// HostDown removes id from the eligible set (its users reroute).
	HostDown(id int)
	// HostUp restores id.
	HostUp(id int)
	// Feedback reports whether Route reads live host state through
	// View.OutstandingAt; the fleet then syncs hosts before each decision.
	Feedback() bool
}

// RoundRobin spreads queries uniformly over alive hosts in id order. It is
// the paper's implicit baseline: every host observes the full user
// population, so per-host temporal locality equals global locality.
type RoundRobin struct {
	next int
}

// NewRoundRobin returns a round-robin router.
func NewRoundRobin() *RoundRobin { return &RoundRobin{} }

// Name implements Router.
func (r *RoundRobin) Name() string { return "round-robin" }

// Feedback implements Router; round-robin ignores host state.
func (r *RoundRobin) Feedback() bool { return false }

// HostDown implements Router; liveness is read from the View.
func (r *RoundRobin) HostDown(int) {}

// HostUp implements Router.
func (r *RoundRobin) HostUp(int) {}

// Route implements Router.
func (r *RoundRobin) Route(_ workload.Query, _ simclock.Time, v View) int {
	n := v.Hosts()
	for i := 0; i < n; i++ {
		id := (r.next + i) % n
		if v.Alive(id) {
			r.next = (id + 1) % n
			return id
		}
	}
	return -1
}

// LeastOutstanding routes each query to the alive host with the fewest
// in-flight queries at the arrival time (ties break round-robin, so an
// idle fleet does not funnel everything to host 0). It is the classic
// load-balancing policy: best tail latency under skewed service times, but
// like round-robin it scatters every user across the whole fleet, so
// caches see global locality only.
type LeastOutstanding struct {
	next int
}

// NewLeastOutstanding returns a least-outstanding-queries router.
func NewLeastOutstanding() *LeastOutstanding { return &LeastOutstanding{} }

// Name implements Router.
func (r *LeastOutstanding) Name() string { return "least-outstanding" }

// Feedback implements Router: routing reads live queue depths.
func (r *LeastOutstanding) Feedback() bool { return true }

// HostDown implements Router.
func (r *LeastOutstanding) HostDown(int) {}

// HostUp implements Router.
func (r *LeastOutstanding) HostUp(int) {}

// Route implements Router.
func (r *LeastOutstanding) Route(_ workload.Query, now simclock.Time, v View) int {
	n := v.Hosts()
	best, bestQ := -1, 0
	for i := 0; i < n; i++ {
		id := (r.next + i) % n
		if !v.Alive(id) {
			continue
		}
		q := v.OutstandingAt(id, now)
		if best < 0 || q < bestQ {
			best, bestQ = id, q
		}
	}
	if best >= 0 {
		r.next = (best + 1) % n
	}
	return best
}

// Sticky pins each user to a host via consistent hashing (§4.2 / Fig. 4c):
// a user's queries always land on the same replica, concentrating their
// embedding rows in that replica's caches. The hash ring uses virtual
// nodes, so when a host leaves only its own users remap (spread across the
// survivors) and everyone else stays put — the property that keeps the
// §A.4 warmup spike proportional to the failed host's share.
type Sticky struct {
	points []ringPoint // sorted by hash; all hosts, dead or alive
	alive  []bool
}

type ringPoint struct {
	hash uint64
	host int
}

// NewSticky returns a consistent-hashing sticky router over hosts replicas
// with vnodes virtual nodes each (vnodes <= 0 selects 64).
func NewSticky(hosts, vnodes int) *Sticky {
	if vnodes <= 0 {
		vnodes = 64
	}
	s := &Sticky{alive: make([]bool, hosts)}
	for id := 0; id < hosts; id++ {
		s.alive[id] = true
		for v := 0; v < vnodes; v++ {
			s.points = append(s.points, ringPoint{
				hash: mix64(uint64(id)<<32 | uint64(v)),
				host: id,
			})
		}
	}
	sort.Slice(s.points, func(i, j int) bool {
		if s.points[i].hash != s.points[j].hash {
			return s.points[i].hash < s.points[j].hash
		}
		return s.points[i].host < s.points[j].host
	})
	return s
}

// Name implements Router.
func (s *Sticky) Name() string { return "sticky" }

// Feedback implements Router; sticky routing is stateless per decision.
func (s *Sticky) Feedback() bool { return false }

// HostDown implements Router: the host's ring points become ineligible and
// its users fall through to the next alive owner clockwise.
func (s *Sticky) HostDown(id int) {
	if id >= 0 && id < len(s.alive) {
		s.alive[id] = false
	}
}

// HostUp implements Router.
func (s *Sticky) HostUp(id int) {
	if id >= 0 && id < len(s.alive) {
		s.alive[id] = true
	}
}

// Route implements Router.
func (s *Sticky) Route(q workload.Query, _ simclock.Time, v View) int {
	return s.Owner(q.UserID)
}

// Owner returns the alive host owning user on the ring, or -1 when the
// whole ring is down.
func (s *Sticky) Owner(user int64) int {
	if len(s.points) == 0 {
		return -1
	}
	h := mix64(uint64(user))
	i := sort.Search(len(s.points), func(i int) bool { return s.points[i].hash >= h })
	for k := 0; k < len(s.points); k++ {
		p := s.points[(i+k)%len(s.points)]
		if s.alive[p.host] {
			return p.host
		}
	}
	return -1
}

// mix64 is a SplitMix64-style finalizer used for ring and user hashing.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	return x ^ (x >> 31)
}
