package cluster

import (
	"fmt"

	"sdm/internal/adapt"
	"sdm/internal/serving"
)

// AttachAdaptive gives a fleet's hosts the adaptive-tiering control loop:
// one adapt.Adapter per SDM-backed host (installed as its Tuner), each
// sampling telemetry and migrating tables on its own host's admission
// stream. Entries for storeless hosts (flat/remote baselines) are nil.
// Call it on the host slice before building the Fleet; determinism is
// unaffected because each adapter runs in its host's FIFO order.
func AttachAdaptive(hosts []*serving.Host, cfg adapt.Config) ([]*adapt.Adapter, error) {
	adapters := make([]*adapt.Adapter, len(hosts))
	attached := 0
	for i, h := range hosts {
		s := h.Store()
		if s == nil {
			continue
		}
		a, err := adapt.New(s, cfg)
		if err != nil {
			return nil, fmt.Errorf("cluster: adaptive host %d: %w", i, err)
		}
		h.SetTuner(a)
		adapters[i] = a
		attached++
	}
	if attached == 0 {
		return nil, fmt.Errorf("cluster: no SDM-backed hosts to adapt")
	}
	return adapters, nil
}

// AdapterStats sums the per-host adapter counters (nil entries skipped).
func AdapterStats(adapters []*adapt.Adapter) adapt.Stats {
	var agg adapt.Stats
	for _, a := range adapters {
		if a == nil {
			continue
		}
		s := a.Stats()
		agg.Evals += s.Evals
		agg.Promotions += s.Promotions
		agg.Demotions += s.Demotions
		agg.MigratedBytes += s.MigratedBytes
		agg.RangeMoves += s.RangeMoves
		agg.Aborts += s.Aborts
		if s.LastEval > agg.LastEval {
			agg.LastEval = s.LastEval
		}
	}
	return agg
}
