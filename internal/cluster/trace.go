// Fleet-side decision tracing: the front-end collects route and admit
// decisions, each host's adapter collects its plan verdicts, and the
// streams merge in virtual-time order after every Run — so a trace is
// bit-identical at any Config.HostWorkers, like the results it explains.
// Tracing never perturbs virtual time: it forces the same host sync a
// Feedback() router already forces (wall-clock only), and everything
// else is bookkeeping outside the simulated timeline.

package cluster

import (
	"errors"
	"fmt"
	"io"

	"sdm/internal/obs"
	"sdm/internal/simclock"
	"sdm/internal/workload"
)

// tracer is a fleet's live trace state.
type tracer struct {
	cfg   obs.Config
	fe    *obs.Collector   // front-end: route + admit decisions
	hosts []*obs.Collector // per-host: plan decisions

	// merged and summary describe the most recent completed Run.
	merged  []obs.Event
	summary obs.Summary
}

// SetTrace enables decision tracing at cfg.Level (LevelOff detaches — the
// zero-overhead default). CounterfactualK 0 selects min(2, hosts-1);
// values above hosts-1 are rejected rather than clamped. Call before Run;
// each Run resets the collected stream, so TraceEvents/WriteTrace expose
// the most recent Run's trace.
func (f *Fleet) SetTrace(cfg obs.Config) error {
	if cfg.Level == obs.LevelOff {
		f.trace = nil
		f.installTracers()
		return nil
	}
	if cfg.Level < obs.LevelOff || cfg.Level > obs.LevelCounterfactual {
		return fmt.Errorf("cluster: unknown trace level %d", int(cfg.Level))
	}
	maxK := len(f.members) - 1
	if cfg.CounterfactualK == 0 {
		cfg.CounterfactualK = 2
		if cfg.CounterfactualK > maxK {
			cfg.CounterfactualK = maxK
		}
	}
	if cfg.CounterfactualK < 0 || cfg.CounterfactualK > maxK {
		return fmt.Errorf("cluster: counterfactual k %d out of range [0, %d] for a %d-host fleet",
			cfg.CounterfactualK, maxK, len(f.members))
	}
	f.trace = &tracer{cfg: cfg, fe: obs.NewCollector(-1)}
	for i := range f.members {
		f.trace.hosts = append(f.trace.hosts, obs.NewCollector(i))
	}
	f.installTracers()
	return nil
}

// installTracers points each adapter at its host's plan collector (or
// detaches them when tracing is off). Called from both SetTrace and
// SetAdapters, so the two may be installed in either order.
func (f *Fleet) installTracers() {
	for i, a := range f.adapters {
		if a == nil {
			continue
		}
		if f.trace != nil && i < len(f.trace.hosts) {
			a.SetTracer(f.trace.hosts[i])
		} else {
			a.SetTracer(nil)
		}
	}
}

// TraceEvents returns the most recent completed Run's merged trace in
// virtual-time order (nil when tracing is off).
func (f *Fleet) TraceEvents() []obs.Event {
	if f.trace == nil {
		return nil
	}
	return f.trace.merged
}

// TraceSummary returns the most recent completed Run's trace aggregates.
func (f *Fleet) TraceSummary() (obs.Summary, bool) {
	if f.trace == nil {
		return obs.Summary{}, false
	}
	return f.trace.summary, true
}

// WriteTrace renders the most recent completed Run's trace as JSONL at
// the configured level.
func (f *Fleet) WriteTrace(w io.Writer) error {
	if f.trace == nil {
		return errors.New("cluster: tracing not enabled (SetTrace)")
	}
	return obs.WriteJSONL(w, f.trace.cfg.Level, f.trace.merged, f.trace.summary)
}

// traceReset drops the previous Run's stream at the start of a new one.
func (t *tracer) reset() {
	t.fe.Reset()
	for _, c := range t.hosts {
		c.Reset()
	}
	t.merged = nil
	t.summary = obs.Summary{}
}

// traceRoute makes the fleet's routing decision under tracing: it asks
// the router to explain itself when it can, records the decision row,
// and returns the chosen host. The caller has already synced every host,
// so the Outstanding reads are race-free and deterministic.
func (f *Fleet) traceRoute(seq int, q workload.Query, at simclock.Time, view View) int {
	d := obs.RouteDecision{Seq: seq, User: q.UserID, Class: q.Class, Prev: -1}
	if last, ok := f.lastHost[q.UserID]; ok {
		d.Prev = last
	}
	var id int
	if er, ok := f.router.(ExplainedRouter); ok {
		id = er.RouteExplained(q, at, view, f.trace.cfg.CounterfactualK, &d)
	} else {
		id = f.router.Route(q, at, view)
		d.Chosen = id
	}
	if id >= 0 && id < len(f.members) && f.members[id].alive {
		d.Outstanding = view.OutstandingAt(id, at)
		for i := range d.Alts {
			d.Alts[i].Outstanding = view.OutstandingAt(d.Alts[i].Host, at)
		}
		d.Diverted = d.Prev >= 0 && d.Prev != id && f.members[d.Prev].alive
	}
	f.trace.fe.Route(at, d)
	return id
}

// traceAdmit records one admission decision.
func (f *Fleet) traceAdmit(t simclock.Time, class int, tokens float64, admitAt simclock.Time, ok bool) {
	d := obs.AdmitDecision{Class: class, Outcome: "admit", Tokens: tokens}
	switch {
	case !ok:
		d.Outcome = "shed"
	case admitAt > t:
		d.Outcome = "delay"
		d.DelaySeconds = (admitAt - t).Seconds()
	}
	f.trace.fe.Admit(t, d)
}

// traceFinalize closes out a Run's trace: the counterfactual pass (at
// LevelCounterfactual) enriches each routing row with its completed
// latency and the re-scored alternatives, then the per-emitter streams
// merge into virtual-time order and fold into the summary.
func (f *Fleet) traceFinalize(records []record) {
	t := f.trace
	if t.cfg.Level >= obs.LevelCounterfactual {
		f.counterfactual(records)
	}
	t.merged = obs.Merge(append([]*obs.Collector{t.fe}, t.hosts...)...)
	t.summary = obs.Summarize(t.cfg.Level, t.merged)
}

// counterfactual re-scores each routing decision's rejected alternatives
// at completion time. The estimator is a per-host EWMA of completed
// latencies folded in arrival order (the same order the decisions were
// made in), so an alternative's estimate only uses queries that arrived
// before this one — an honest "what would it have cost" — and the whole
// pass is a pure function of the records, independent of workers.
func (f *Fleet) counterfactual(records []record) {
	const alpha = 0.2
	ewma := make([]float64, len(f.members))
	seen := make([]bool, len(f.members))
	for _, ev := range f.trace.fe.Events() {
		if ev.Kind != "route" {
			continue
		}
		d := ev.Route
		if d.Seq < 0 || d.Seq >= len(records) {
			continue
		}
		rec := records[d.Seq]
		if !rec.ok {
			continue
		}
		lat := (rec.done - rec.arrive).Seconds()
		d.LatencySeconds = lat
		prevDone := false
		for _, a := range d.Alts {
			if a.Host < 0 || a.Host >= len(seen) || !seen[a.Host] {
				continue
			}
			cf := obs.Counterfactual{Host: a.Host, EstSeconds: ewma[a.Host], RegretSeconds: lat - ewma[a.Host]}
			if d.Diverted && a.Host == d.Prev {
				cf.Prev = true
				prevDone = true
			}
			d.Counterfactuals = append(d.Counterfactuals, cf)
		}
		if d.Diverted && !prevDone && d.Prev >= 0 && d.Prev < len(seen) && seen[d.Prev] {
			d.Counterfactuals = append(d.Counterfactuals, obs.Counterfactual{
				Host: d.Prev, EstSeconds: ewma[d.Prev], RegretSeconds: lat - ewma[d.Prev], Prev: true,
			})
		}
		if h := rec.host; h >= 0 && h < len(seen) {
			if !seen[h] {
				ewma[h], seen[h] = lat, true
			} else {
				ewma[h] = (1-alpha)*ewma[h] + alpha*lat
			}
		}
	}
}
