package cluster

import (
	"bytes"
	"testing"

	"sdm/internal/obs"
)

func TestTraceDeterministicAcrossWorkers(t *testing.T) {
	// The trace-layer determinism contract: per-emitter collectors append
	// in virtual-time emission order and merge by (time, host) after the
	// run, so the rendered JSONL — every decision row plus the summary —
	// is byte-identical at any HostWorkers count. This is the same
	// invariant the slo experiment asserts; here it runs the full SLO
	// stack (weighted router, shed + queue admission, coordinator, drift)
	// under -race in CI.
	in, tables := adaptiveFixture(t)
	var traces [][]byte
	var keys []string
	for _, workers := range []int{1, 4} {
		f, adapters := sloFleet(t, in, tables, 3, workers)
		if err := f.SetTrace(obs.Config{Level: obs.LevelCounterfactual}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run(300, 600); err != nil {
			t.Fatal(err)
		}
		if err := f.ScheduleDrift(0.5); err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(300, 900)
		if err != nil {
			t.Fatal(err)
		}
		var buf bytes.Buffer
		if err := f.WriteTrace(&buf); err != nil {
			t.Fatal(err)
		}
		traces = append(traces, buf.Bytes())
		keys = append(keys, resultKey(t, res)+AdapterStats(adapters).String())

		if workers == 1 {
			sum, ok := f.TraceSummary()
			if !ok {
				t.Fatal("TraceSummary unavailable with tracing on")
			}
			// The stack must actually exercise all three decision points:
			// every query routes, admission sheds or delays under the tight
			// buckets, and the adaptive hosts issue plan verdicts.
			if sum.Routes != 900 {
				t.Fatalf("trace has %d routes, want 900: %s", sum.Routes, sum)
			}
			if sum.Sheds+sum.Delays == 0 {
				t.Fatalf("admission never engaged in the trace: %s", sum)
			}
			if sum.Promotes+sum.Demotes+sum.Defers == 0 {
				t.Fatalf("no plan verdicts in the trace: %s", sum)
			}
			if sum.Events != len(f.TraceEvents()) {
				t.Fatalf("summary events=%d but %d merged events", sum.Events, len(f.TraceEvents()))
			}
		}
	}
	if !bytes.Equal(traces[0], traces[1]) {
		t.Fatal("rendered trace diverged across HostWorkers counts")
	}
	if keys[0] != keys[1] {
		t.Fatal("traced results diverged across HostWorkers counts")
	}
}

func TestTraceOffMatchesUntraced(t *testing.T) {
	// Tracing must never perturb virtual time: a traced run's results are
	// bit-identical to an untraced run's, and SetTrace(LevelOff) detaches
	// cleanly.
	in, tables := adaptiveFixture(t)
	run := func(level obs.Level) (string, *Fleet) {
		f, adapters := sloFleet(t, in, tables, 3, 2)
		if level != obs.LevelOff {
			if err := f.SetTrace(obs.Config{Level: level}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := f.Run(300, 600)
		if err != nil {
			t.Fatal(err)
		}
		return resultKey(t, res) + AdapterStats(adapters).String(), f
	}
	untraced, _ := run(obs.LevelOff)
	traced, f := run(obs.LevelCounterfactual)
	if untraced != traced {
		t.Fatalf("tracing perturbed the run:\n%s\nvs\n%s", untraced, traced)
	}

	// Detach: LevelOff drops the trace state and WriteTrace refuses.
	if err := f.SetTrace(obs.Config{Level: obs.LevelOff}); err != nil {
		t.Fatal(err)
	}
	if ev := f.TraceEvents(); ev != nil {
		t.Fatalf("detached fleet still exposes %d events", len(ev))
	}
	if _, ok := f.TraceSummary(); ok {
		t.Fatal("detached fleet still exposes a summary")
	}
	if err := f.WriteTrace(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteTrace should fail with tracing off")
	}
}

func TestSetTraceValidation(t *testing.T) {
	in, tables := fixture(t)
	f := testFleet(t, in, tables, 3, NewSticky(3, 64), Config{Seed: 5})

	// K defaults to min(2, hosts-1) and is bounded by hosts-1, not
	// clamped.
	if err := f.SetTrace(obs.Config{Level: obs.LevelDecisions, CounterfactualK: 3}); err == nil {
		t.Fatal("k above hosts-1 should be rejected")
	}
	if err := f.SetTrace(obs.Config{Level: obs.LevelDecisions, CounterfactualK: -1}); err == nil {
		t.Fatal("negative k should be rejected")
	}
	if err := f.SetTrace(obs.Config{Level: obs.Level(9)}); err == nil {
		t.Fatal("unknown level should be rejected")
	}
	if err := f.SetTrace(obs.Config{Level: obs.LevelCounterfactual, CounterfactualK: 2}); err != nil {
		t.Fatalf("k = hosts-1 should be accepted: %v", err)
	}
}

func TestTraceDisabledPathAllocsNothing(t *testing.T) {
	// The disabled path is a nil *obs.Collector whose methods return
	// before touching their receiver — zero allocations, the satellite
	// guarantee behind the untraced routing benchmark staying flat.
	var c *obs.Collector
	if got := testing.AllocsPerRun(100, func() {
		c.Route(0, obs.RouteDecision{Seq: 1, User: 2, Chosen: 0})
		c.Admit(0, obs.AdmitDecision{Outcome: "admit"})
		c.Plan(0, obs.PlanDecision{Action: "promote"})
	}); got != 0 {
		t.Fatalf("disabled trace path allocates %.1f per run, want 0", got)
	}
}
