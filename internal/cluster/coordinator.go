// Fleet-coordinated migration windows. N independent adapters migrate in
// lockstep under drift — the same rotation fires fleet-wide, every
// replica's controller reacts at the same evaluation boundary, and the
// fleet spends N× the migration bandwidth at the exact moment it is
// recovering, with every replica's foreground tail degraded at once. The
// Coordinator time-slices one shared migration budget instead: replica i
// owns every i-th window of a round-robin cycle, so at most one replica
// migrates at any instant (the fleet-wide migration rate stays at the
// single-host cap) and the fleet-wide wear budget is partitioned across
// the replicas' windows. Range-granular moves are small enough to make
// this staggering effective — a hot head migrates within a few windows.
//
// Determinism: the schedule is a pure function of (replica, virtual
// time) — the Coordinator holds no mutable state, so concurrently
// executing hosts read it race-free and fleet results stay bit-identical
// at any Config.HostWorkers.
package cluster

import (
	"fmt"
	"time"

	"sdm/internal/adapt"
	"sdm/internal/serving"
	"sdm/internal/simclock"
)

// CoordConfig tunes a fleet migration Coordinator.
type CoordConfig struct {
	// Slot is each replica's migration window width (default 50ms). A
	// full rotation cycle is Slot × fleet size.
	Slot time.Duration
	// BandwidthBytesPerSec is the shared fleet migration cap: the rate
	// the active replica may issue at while it holds the window, and —
	// because windows never overlap — the bound on fleet-wide migration
	// bandwidth at any instant. 0 leaves each adapter's own cap in
	// force.
	BandwidthBytesPerSec float64
	// WearBytesPerCycle is the fleet-wide SM demote-write budget of one
	// full rotation cycle, split evenly across the replicas' windows
	// (the §3 endurance budget, shared). 0 derives it from the hosts'
	// device endurance via adapt.Config.WearDaysPerSecond at attach time
	// (or leaves windows unbudgeted when that is 0 too).
	WearBytesPerCycle int64
}

// validated fills defaults and rejects nonsense.
func (c CoordConfig) validated() (CoordConfig, error) {
	if c.Slot < 0 {
		return c, fmt.Errorf("cluster: coordinator Slot must be >= 0 (0 selects 50ms), got %v", c.Slot)
	}
	if c.Slot == 0 {
		c.Slot = 50 * time.Millisecond
	}
	if c.BandwidthBytesPerSec < 0 {
		return c, fmt.Errorf("cluster: coordinator BandwidthBytesPerSec must be >= 0, got %g", c.BandwidthBytesPerSec)
	}
	if c.WearBytesPerCycle < 0 {
		return c, fmt.Errorf("cluster: coordinator WearBytesPerCycle must be >= 0, got %d", c.WearBytesPerCycle)
	}
	return c, nil
}

// Coordinator interleaves the fleet's migration windows: replica i of n
// owns [k·n·Slot + i·Slot, k·n·Slot + (i+1)·Slot) for every cycle k. It
// is immutable after construction (see the package comment on
// determinism).
type Coordinator struct {
	cfg CoordConfig
	n   int
	// perWindowWear is each window's demote budget (WearBytesPerCycle/n,
	// or the endurance-derived default).
	perWindowWear int64
}

// NewCoordinator builds a window schedule for an n-replica fleet.
func NewCoordinator(n int, cfg CoordConfig) (*Coordinator, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: coordinator over %d replicas", n)
	}
	cfg, err := cfg.validated()
	if err != nil {
		return nil, err
	}
	perWindow := cfg.WearBytesPerCycle / int64(n)
	if cfg.WearBytesPerCycle > 0 && perWindow < 1 {
		// A configured budget must never truncate to "unbudgeted"
		// (DemoteBudgetBytes <= 0): clamp to the tightest enforceable
		// budget instead — one chunk per window.
		perWindow = 1
	}
	return &Coordinator{cfg: cfg, n: n, perWindowWear: perWindow}, nil
}

// Replicas returns the fleet size the schedule covers.
func (c *Coordinator) Replicas() int { return c.n }

// Cycle returns the full rotation period (Slot × replicas).
func (c *Coordinator) Cycle() time.Duration { return c.cfg.Slot * time.Duration(c.n) }

// WindowFor returns replica host's migration window containing t, or the
// next one when t falls inside another replica's slot. It is a pure
// function of its arguments — safe to call concurrently from every host
// goroutine.
func (c *Coordinator) WindowFor(host int, t simclock.Time) adapt.Window {
	slot := simclock.Time(c.cfg.Slot)
	cycle := slot * simclock.Time(c.n)
	phase := slot * simclock.Time(host)
	// The cycle index whose window for this host is the first not yet
	// closed at t.
	k := simclock.Time(0)
	if t >= phase {
		k = (t - phase) / cycle
		if t >= phase+k*cycle+slot {
			k++
		}
	}
	open := phase + k*cycle
	return adapt.Window{
		Open:                 open,
		Close:                open + slot,
		BandwidthBytesPerSec: c.cfg.BandwidthBytesPerSec,
		DemoteBudgetBytes:    c.perWindowWear,
	}
}

// AttachCoordinated is AttachAdaptive plus fleet coordination: it builds
// one adapter per SDM-backed host and installs the coordinator's
// staggered window schedule on each, so replicas take turns migrating
// under one shared bandwidth cap and one shared wear budget instead of
// migrating in lockstep. When ccfg.WearBytesPerCycle is 0 and
// acfg.WearDaysPerSecond is set, the per-cycle wear budget is derived
// from the first SDM host's device endurance (replicas are identical) —
// the same §3 DWPD model the ungoverned adapter uses, shared across the
// fleet rather than multiplied by it.
func AttachCoordinated(hosts []*serving.Host, acfg adapt.Config, ccfg CoordConfig) ([]*adapt.Adapter, *Coordinator, error) {
	adapters, err := AttachAdaptive(hosts, acfg)
	if err != nil {
		return nil, nil, err
	}
	ccfg, err = ccfg.validated()
	if err != nil {
		return nil, nil, err
	}
	if ccfg.WearBytesPerCycle == 0 && acfg.WearDaysPerSecond > 0 {
		for _, h := range hosts {
			if s := h.Store(); s != nil {
				cycleSeconds := ccfg.Slot.Seconds() * float64(len(hosts))
				ccfg.WearBytesPerCycle = int64(s.Wear().DailyWriteBudgetBytes() *
					acfg.WearDaysPerSecond * cycleSeconds)
				if ccfg.WearBytesPerCycle < 1 {
					// Wear was requested: never let the derivation
					// truncate to "unbudgeted".
					ccfg.WearBytesPerCycle = 1
				}
				break
			}
		}
	}
	coord, err := NewCoordinator(len(hosts), ccfg)
	if err != nil {
		return nil, nil, err
	}
	for i, a := range adapters {
		if a == nil {
			continue
		}
		host := i
		a.SetWindows(func(t simclock.Time) adapt.Window {
			return coord.WindowFor(host, t)
		})
	}
	return adapters, coord, nil
}
