package cluster

import (
	"testing"
	"time"

	"sdm/internal/adapt"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/serving"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

func TestCoordinatorScheduleShape(t *testing.T) {
	coord, err := NewCoordinator(3, CoordConfig{Slot: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	slot := simclock.Time(10 * time.Millisecond)
	cycle := 3 * slot
	if coord.Cycle() != 30*time.Millisecond {
		t.Fatalf("cycle %v, want 30ms", coord.Cycle())
	}
	for host := 0; host < 3; host++ {
		for _, at := range []simclock.Time{0, slot / 2, slot, 2*slot + 1, cycle, 5*cycle + slot/3} {
			w := coord.WindowFor(host, at)
			if w.Close-w.Open != slot {
				t.Fatalf("host %d window %+v not slot-wide", host, w)
			}
			if w.Close <= at && w.Open <= at {
				t.Fatalf("host %d window %+v already closed at %d", host, w, at)
			}
			// The window belongs to this host's phase of the cycle.
			if (w.Open-simclock.Time(host)*slot)%cycle != 0 {
				t.Fatalf("host %d window %+v off its phase", host, w)
			}
			// It is the earliest such window not closed at `at`.
			if w.Open > at && w.Open-cycle+slot > at {
				t.Fatalf("host %d skipped a usable window before %+v at %d", host, w, at)
			}
		}
	}
	// Windows of distinct hosts never overlap: at any instant at most one
	// replica's window contains it.
	for at := simclock.Time(0); at < 4*cycle; at += slot / 4 {
		owners := 0
		for host := 0; host < 3; host++ {
			w := coord.WindowFor(host, at)
			if w.Open <= at && at < w.Close {
				owners++
			}
		}
		if owners != 1 {
			t.Fatalf("%d replicas own the window at t=%d, want exactly 1", owners, at)
		}
	}
}

func TestCoordinatorWearSplit(t *testing.T) {
	coord, err := NewCoordinator(4, CoordConfig{Slot: time.Millisecond, WearBytesPerCycle: 1 << 20})
	if err != nil {
		t.Fatal(err)
	}
	w := coord.WindowFor(2, 0)
	if w.DemoteBudgetBytes != (1<<20)/4 {
		t.Fatalf("per-window wear budget %d, want cycle budget split 4 ways", w.DemoteBudgetBytes)
	}
	if _, err := NewCoordinator(0, CoordConfig{}); err == nil {
		t.Fatal("empty fleet should be rejected")
	}
	if _, err := NewCoordinator(2, CoordConfig{Slot: -time.Second}); err == nil {
		t.Fatal("negative slot should be rejected")
	}
	if _, err := NewCoordinator(2, CoordConfig{WearBytesPerCycle: -1}); err == nil {
		t.Fatal("negative wear budget should be rejected")
	}
}

// coordinatedFleet mirrors rangeAdaptiveFleet under fleet coordination:
// staggered migration windows, one shared bandwidth cap, endurance-derived
// shared wear budget.
func coordinatedFleet(t *testing.T, in *model.Instance, tables []*embedding.Table, n, workers int) (*Fleet, []*adapt.Adapter, *Coordinator) {
	t.Helper()
	scfg := core.Config{
		Seed: 7, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 16,
		ReserveSM: true, MigrationRangeBytes: 16 << 10,
		Placement: placement.Config{
			Policy: placement.SMOnlyWithCache, UserTablesOnly: true,
		},
	}
	hosts, err := HostSet(in, tables, n, &scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	adapters, coord, err := AttachCoordinated(hosts, adapt.Config{
		Interval: 100 * time.Millisecond, BandwidthBytesPerSec: 8 << 20,
		ChunkBytes: 16 << 10, DRAMBudget: 5 * (96 << 10) / 2,
		Granularity: adapt.Ranges, WearDaysPerSecond: 0.5,
	}, CoordConfig{Slot: 30 * time.Millisecond, BandwidthBytesPerSec: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(hosts, NewSticky(n, 64), Config{Seed: 11, HostWorkers: workers, Windows: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{
		Seed: 11, NumUsers: 800, UserAlpha: 0.9, Spatial: true,
		Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	return f, adapters, coord
}

func TestCoordinatedFleetDeterministicAcrossWorkers(t *testing.T) {
	// The coordinated determinism contract: the window schedule is a pure
	// function of (replica, virtual time), per-window wear budgets are
	// enforced on each host's own admission stream, and no mutable state
	// is shared across hosts — so a staggered drift drill over real
	// goroutines stays bit-identical at any HostWorkers count.
	in, tables := adaptiveFixture(t)
	var keys []string
	for _, workers := range []int{1, 2, 4} {
		f, adapters, _ := coordinatedFleet(t, in, tables, 3, workers)
		if _, err := f.Run(300, 600); err != nil {
			t.Fatal(err)
		}
		if err := f.ScheduleDrift(0.5); err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(300, 900)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			as := AdapterStats(adapters)
			if as.RangeMoves == 0 {
				t.Fatalf("coordinated fleet never moved a range: %s", as)
			}
			if res.SMWriteBytes == 0 {
				t.Fatalf("fleet wear accounting empty: %+v", res)
			}
			if res.DWPDUtil <= 0 {
				t.Fatalf("fleet DWPD utilization not projected: %+v", res)
			}
		}
		keys = append(keys, resultKey(t, res)+AdapterStats(adapters).String())
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Fatalf("coordinated fleet diverged across worker counts:\n%s\nvs\n%s", keys[0], keys[i])
		}
	}
}

func TestCoordinatedFleetStaggersMigrationIO(t *testing.T) {
	// The schedule actually staggers execution: replicas migrate, and the
	// endurance-derived shared wear budget is in force (windows carry a
	// positive demote allowance derived from the hosts' device DWPD).
	in, tables := adaptiveFixture(t)
	f, adapters, coord := coordinatedFleet(t, in, tables, 3, 0)
	w := coord.WindowFor(0, 0)
	if w.DemoteBudgetBytes <= 0 {
		t.Fatalf("attach did not derive a shared wear budget: %+v", w)
	}
	if _, err := f.Run(300, 600); err != nil {
		t.Fatal(err)
	}
	if err := f.ScheduleDrift(0.5); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(300, 1200)
	if err != nil {
		t.Fatal(err)
	}
	as := AdapterStats(adapters)
	if as.Promotions == 0 || as.MigratedBytes == 0 {
		t.Fatalf("coordinated fleet never migrated: %s", as)
	}
	// Post-drift the fleet still recovers its FM-served rate.
	final := res.Windows[len(res.Windows)-1]
	if final.FMRate <= 0 {
		t.Fatalf("coordinated fleet did not recover FM service: %+v", res.Windows)
	}
}
