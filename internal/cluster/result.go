package cluster

import (
	"fmt"
	"io"

	"sdm/internal/obs"
	"sdm/internal/serving"
	"sdm/internal/simclock"
	"sdm/internal/stats"
)

// HostResult summarizes one replica's share of a fleet run.
type HostResult struct {
	ID      int
	Alive   bool
	Queries int
	Latency *stats.Histogram
	// AchievedQPS is this host's throughput over the fleet's elapsed
	// virtual time, so the per-host numbers sum to the fleet's.
	AchievedQPS float64
	// HitRate is the row-cache hit rate over this run's queries only.
	HitRate       float64
	PooledHitRate float64
	// FMServedRate is the fraction of store lookups served from fast
	// memory (cache hits + FM-direct) — the placement-aware hit metric.
	// RangeServedRate is the share contributed by FM-resident row ranges
	// (partial-table promotions).
	FMServedRate    float64
	RangeServedRate float64
	SMReads         uint64
	// SMWriteBytes is the SM media bytes this run's migrations wrote on
	// the host (endurance spend); LifetimeSMWrites the host's cumulative
	// device writes including model load, and DWPDUtil the drive-writes-
	// per-day utilization the run's write rate projects to (1.0 = writing
	// at exactly the device's rated DWPD).
	SMWriteBytes     uint64
	LifetimeSMWrites uint64
	DWPDUtil         float64
}

// WindowStat aggregates one equal-width virtual-time window of the run —
// the time series the warmup-spike analysis reads.
type WindowStat struct {
	Start, End simclock.Time
	Queries    int
	MeanLat    float64 // seconds
	P99        float64 // seconds
	MaxLat     float64 // seconds — catches sub-window bursts p99 dilutes away
	HitRate    float64
	FMRate     float64 // FM-served fraction of store lookups
	RangeRate  float64 // fraction served by FM-resident row ranges
	SMPerQuery float64
	// SMWriteBytes is the SM media bytes written in the window —
	// migration wear becomes visible as per-window write bursts.
	SMWriteBytes uint64
}

// ClassResult is one SLO class's share of a fleet run: offered versus
// shed counts from admission control, queue-admission delay, and the
// admitted queries' latency tail (p50/p99/p999).
type ClassResult struct {
	Class int
	// Name is the admission config's label for the class ("class<i>"
	// when unnamed or unconfigured).
	Name string
	// Offered counts the class's arrivals; Shed the ones admission
	// rejected (never routed); Delayed the ones a queue-mode bucket
	// admitted late, with MeanDelay their mean admission delay in
	// seconds.
	Offered   int
	Shed      int
	Delayed   int
	MeanDelay float64
	// Latency is the admitted queries' latency histogram.
	Latency *stats.Histogram
}

// ShedShare returns the class's rejected fraction.
func (c ClassResult) ShedShare() float64 {
	if c.Offered == 0 {
		return 0
	}
	return float64(c.Shed) / float64(c.Offered)
}

// Result is the outcome of one Fleet.Run.
type Result struct {
	Policy     string
	OfferedQPS float64
	Queries    int
	Start, End simclock.Time

	// Fleet-wide aggregates.
	Latency         *stats.Histogram
	AchievedQPS     float64
	HitRate         float64
	FMServedRate    float64
	RangeServedRate float64
	// SMWriteBytes sums the run's SM media writes across hosts (the
	// fleet's endurance spend) and DWPDUtil is the fleet-wide projected
	// drive-writes-per-day utilization at the run's write rate.
	SMWriteBytes uint64
	DWPDUtil     float64

	// Shed counts the queries admission control rejected fleet-wide
	// (Queries includes them; Latency and the rate metrics do not).
	Shed int
	// LoadFairness is the Jain fairness index of the per-host routed
	// query counts over alive hosts (1 = perfectly even).
	LoadFairness float64
	// ClassFairness is the Jain fairness index of the per-class admitted
	// shares (admitted/offered); 0 when the run tracked no classes.
	ClassFairness float64
	// Classes is the per-SLO-class breakdown, populated when the run saw
	// more than one class or admission control was installed.
	Classes []ClassResult

	Hosts   []HostResult
	Windows []WindowStat

	// Trace aggregates the run's decision trace (nil when tracing is
	// off); the full event stream is Fleet.TraceEvents/WriteTrace.
	Trace *obs.Summary

	// Drift drill outputs, populated for the Run in which a scheduled
	// hot-set rotation fired (DriftFired): the rotation instant, for
	// reading the Windows time series relative to it.
	DriftFired bool
	DriftAt    simclock.Time

	// Failure scenario outputs, populated only for the Run in which the
	// kill actually fired (FailedHost < 0 otherwise — later Runs keep the
	// host dead but are not failure drills themselves).
	FailedHost    int
	FailTime      simclock.Time
	ReroutedUsers int
	// WarmupSpike is the post-failure/pre-failure mean-latency ratio for
	// the rerouted users' queries (0 without a failure): after the kill,
	// their traffic lands on survivors whose caches are cold for them, so
	// their latency spikes until the caches re-warm (§A.4). Fleet-wide
	// numbers dilute the effect — the globally hot rows are cached on
	// every replica — so the metric follows the affected users.
	WarmupSpike float64
	// WarmupHitDrop is the rerouted users' row-cache hit-rate drop
	// (pre-failure on their home host − post-failure on the survivors).
	WarmupHitDrop float64
}

// aggregate folds the per-query records into a Result in index order, so
// every derived number is independent of execution interleaving. fired
// reports whether the armed host kill executed during this Run; drifted
// whether the armed hot-set rotation did.
func (f *Fleet) aggregate(qps float64, start, lastArrival simclock.Time, records []record, fired, drifted bool) *Result {
	res := &Result{
		Policy:     f.router.Name(),
		OfferedQPS: qps,
		Queries:    len(records),
		Start:      start,
		Latency:    stats.NewHistogram(),
		FailedHost: -1,
	}
	if fired {
		res.FailedHost = f.failed
		res.FailTime = f.failedAt
	}
	if drifted {
		res.DriftFired = true
		res.DriftAt = f.driftAt
	}
	hosts := make([]HostResult, len(f.members))
	hostDelta := make([]serving.CacheSnapshot, len(f.members))
	for i, m := range f.members {
		hosts[i] = HostResult{ID: i, Alive: m.alive, Latency: stats.NewHistogram()}
	}

	end := lastArrival
	var fleetDelta serving.CacheSnapshot
	for _, r := range records {
		if !r.ok {
			continue
		}
		lat := (r.done - r.arrive).Seconds()
		hosts[r.host].Queries++
		hosts[r.host].Latency.Observe(lat)
		hostDelta[r.host] = hostDelta[r.host].Add(r.delta)
		fleetDelta = fleetDelta.Add(r.delta)
		if r.done > end {
			end = r.done
		}
	}
	// Fleet latency is the bucket-wise merge of the per-host histograms —
	// identical to observing every sample, without the re-observation.
	for i := range hosts {
		res.Latency.Merge(hosts[i].Latency)
	}
	res.End = end
	// Close every live metrics series with the final counter values; the
	// host goroutines have joined, so the single-threaded mark is safe.
	f.meter.finalLive(end)
	elapsed := (end - start).Seconds()
	if elapsed > 0 {
		res.AchievedQPS = float64(res.Latency.Count()) / elapsed
	}
	res.HitRate = fleetDelta.HitRate()
	res.FMServedRate = fleetDelta.FMServedRate()
	res.RangeServedRate = fleetDelta.RangeServedRate()
	res.SMWriteBytes = fleetDelta.SMWriteBytes
	// Wear observability: per-host endurance spend and the DWPD
	// utilization the run's write rate projects to.
	elapsedDays := elapsed / 86400
	var fleetDailyBudget float64
	for i := range hosts {
		d := hostDelta[i]
		hosts[i].HitRate = d.HitRate()
		if ph := d.PooledHits + d.PooledMisses; ph > 0 {
			hosts[i].PooledHitRate = float64(d.PooledHits) / float64(ph)
		}
		hosts[i].FMServedRate = d.FMServedRate()
		hosts[i].RangeServedRate = d.RangeServedRate()
		hosts[i].SMReads = d.SMReads
		hosts[i].SMWriteBytes = d.SMWriteBytes
		if elapsed > 0 {
			hosts[i].AchievedQPS = float64(hosts[i].Queries) / elapsed
		}
		if s := f.members[i].host.Store(); s != nil {
			w := s.Wear()
			hosts[i].LifetimeSMWrites = w.BytesWritten
			if elapsedDays > 0 {
				hosts[i].DWPDUtil = w.DWPDUtil(float64(d.SMWriteBytes) / elapsedDays)
			}
			fleetDailyBudget += w.DWPD * float64(w.CapacityBytes)
		}
	}
	if fleetDailyBudget > 0 && elapsedDays > 0 {
		res.DWPDUtil = float64(res.SMWriteBytes) / elapsedDays / fleetDailyBudget
	}
	res.Hosts = hosts

	// Routed-load fairness over alive hosts (the per-host-load Jain index).
	var loads []float64
	for i := range hosts {
		if f.members[i].alive {
			loads = append(loads, float64(hosts[i].Queries))
		}
	}
	res.LoadFairness = stats.JainFairness(loads)

	// Per-SLO-class breakdown: populated when the run saw multiple
	// classes or admission control was installed.
	if len(f.classOffered) > 1 || f.admission != nil {
		nc := len(f.classOffered)
		if nc == 0 {
			nc = 1
		}
		classes := make([]ClassResult, nc)
		for c := range classes {
			classes[c] = ClassResult{Class: c, Name: fmt.Sprintf("class%d", c), Latency: stats.NewHistogram()}
			if f.admission != nil {
				classes[c].Name = f.admission.cfg.className(c)
			}
			if c < len(f.classOffered) {
				classes[c].Offered = f.classOffered[c]
			}
			if c < len(f.classShed) {
				classes[c].Shed = f.classShed[c]
				res.Shed += f.classShed[c]
			}
			if c < len(f.classDelayed) && f.classDelayed[c] > 0 {
				classes[c].Delayed = f.classDelayed[c]
				classes[c].MeanDelay = f.classDelay[c] / float64(f.classDelayed[c])
			}
		}
		for _, r := range records {
			if r.ok && r.class >= 0 && r.class < nc {
				classes[r.class].Latency.Observe((r.done - r.arrive).Seconds())
			}
		}
		var shares []float64
		for _, c := range classes {
			if c.Offered > 0 {
				shares = append(shares, float64(c.Offered-c.Shed)/float64(c.Offered))
			}
		}
		res.ClassFairness = stats.JainFairness(shares)
		res.Classes = classes
	}

	if f.trace != nil {
		sum := f.trace.summary
		res.Trace = &sum
	}

	res.Windows = f.deriveWindows(records, start, lastArrival, f.cfg.Windows)
	if fired {
		res.ReroutedUsers = len(f.rerouted)
		pre, post := affectedSplit(records, f.rerouted, f.failedAt)
		if pre.Queries > 0 && post.Queries > 0 {
			if pre.MeanLat > 0 {
				res.WarmupSpike = post.MeanLat / pre.MeanLat
			}
			res.WarmupHitDrop = pre.HitRate - post.HitRate
		}
	}
	return res
}

// affectedSplit aggregates the rerouted users' queries before and after
// the failure instant — the population whose caches actually went cold.
func affectedSplit(records []record, rerouted map[int64]struct{}, failedAt simclock.Time) (pre, post WindowStat) {
	preLat, postLat := stats.NewHistogram(), stats.NewHistogram()
	var preDelta, postDelta serving.CacheSnapshot
	for _, r := range records {
		if !r.ok {
			continue
		}
		if _, hit := rerouted[r.user]; !hit {
			continue
		}
		if r.arrive < failedAt {
			pre.Queries++
			preLat.Observe((r.done - r.arrive).Seconds())
			preDelta = preDelta.Add(r.delta)
		} else {
			post.Queries++
			postLat.Observe((r.done - r.arrive).Seconds())
			postDelta = postDelta.Add(r.delta)
		}
	}
	pre.MeanLat, pre.P99, pre.HitRate = preLat.Mean(), preLat.P99(), preDelta.HitRate()
	post.MeanLat, post.P99, post.HitRate = postLat.Mean(), postLat.P99(), postDelta.HitRate()
	return pre, post
}

// deriveWindows buckets records into n equal arrival-time windows in one
// pass over the records (index order, so every per-window number is
// independent of execution interleaving). The same derived samples mark
// the metrics plane's per-window instruments when one is attached —
// Result.Windows and the exported series come from a single
// accumulation instead of parallel bookkeeping.
func (f *Fleet) deriveWindows(records []record, start, end simclock.Time, n int) []WindowStat {
	if n <= 0 || end <= start {
		return nil
	}
	width := (end - start) / simclock.Time(n)
	if width <= 0 {
		return nil
	}
	type windowAccum struct {
		queries int
		lat     *stats.Histogram
		delta   serving.CacheSnapshot
	}
	accs := make([]windowAccum, n)
	for i := range accs {
		accs[i].lat = stats.NewHistogram()
	}
	for _, r := range records {
		// Queue-mode admission can push an arrival past the last
		// generated arrival instant; such records fall outside every
		// window (the final window's [lo, end] range ends at the run's
		// last generated arrival).
		if !r.ok || r.arrive < start || r.arrive > end {
			continue
		}
		idx := int((r.arrive - start) / width)
		if idx >= n {
			idx = n - 1 // the remainder region belongs to the final window
		}
		a := &accs[idx]
		a.queries++
		a.lat.Observe((r.done - r.arrive).Seconds())
		a.delta = a.delta.Add(r.delta)
	}
	out := make([]WindowStat, 0, n)
	for i := range accs {
		lo := start + simclock.Time(i)*width
		hi := lo + width
		if i == n-1 {
			hi = end + 1 // include the final arrival
		}
		w := WindowStat{Start: lo, End: hi}
		a := &accs[i]
		if a.queries > 0 {
			w.Queries = a.queries
			w.MeanLat = a.lat.Mean()
			w.P99 = a.lat.P99()
			w.MaxLat = a.lat.Max()
			w.HitRate = a.delta.HitRate()
			w.FMRate = a.delta.FMServedRate()
			w.RangeRate = a.delta.RangeServedRate()
			w.SMPerQuery = float64(a.delta.SMReads) / float64(w.Queries)
			w.SMWriteBytes = a.delta.SMWriteBytes
		}
		f.meter.markWindow(w, a.lat.P50())
		out = append(out, w)
	}
	return out
}

// String renders one host's share of the run.
func (h HostResult) String() string {
	return fmt.Sprintf("host%d alive=%t q=%d qps=%.3f p99=%.6f hit=%.4f fm=%.4f rng=%.4f sm=%d smW=%d dwpd=%.6f",
		h.ID, h.Alive, h.Queries, h.AchievedQPS, h.Latency.P99(), h.HitRate, h.FMServedRate, h.RangeServedRate,
		h.SMReads, h.SMWriteBytes, h.DWPDUtil)
}

// String renders one window of the run's time series.
func (w WindowStat) String() string {
	return fmt.Sprintf("[%d,%d) q=%d mean=%.6f p99=%.6f max=%.6f hit=%.4f fm=%.4f rng=%.4f sm=%.3f smW=%d",
		w.Start, w.End, w.Queries, w.MeanLat, w.P99, w.MaxLat, w.HitRate, w.FMRate, w.RangeRate, w.SMPerQuery, w.SMWriteBytes)
}

// String renders one SLO class's share of the run.
func (c ClassResult) String() string {
	return fmt.Sprintf("%s offered=%d shed=%d delayed=%d delay=%.6f p50=%.6f p99=%.6f p999=%.6f",
		c.Name, c.Offered, c.Shed, c.Delayed, c.MeanDelay,
		c.Latency.P50(), c.Latency.P99(), c.Latency.P999())
}

// String renders the fleet headline.
func (r *Result) String() string {
	return fmt.Sprintf("%s: qps=%.0f/%.0f p50=%.2fms p95=%.2fms p99=%.2fms hit=%.1f%%",
		r.Policy, r.AchievedQPS, r.OfferedQPS,
		r.Latency.P50()*1e3, r.Latency.P95()*1e3, r.Latency.P99()*1e3,
		r.HitRate*100)
}

// Print renders the full per-host and window breakdown.
func (r *Result) Print(w io.Writer) {
	fmt.Fprintf(w, "policy=%s offered=%.0f achieved=%.0f queries=%d hit=%.1f%%\n",
		r.Policy, r.OfferedQPS, r.AchievedQPS, r.Queries, r.HitRate*100)
	fmt.Fprintf(w, "fleet latency: p50=%.2fms p95=%.2fms p99=%.2fms\n",
		r.Latency.P50()*1e3, r.Latency.P95()*1e3, r.Latency.P99()*1e3)
	fmt.Fprintf(w, "%-6s %-6s %8s %8s %10s %10s %10s\n",
		"host", "alive", "queries", "qps", "p99(ms)", "hit%", "smReads")
	for _, h := range r.Hosts {
		fmt.Fprintf(w, "%-6d %-6t %8d %8.0f %10.2f %10.1f %10d\n",
			h.ID, h.Alive, h.Queries, h.AchievedQPS, h.Latency.P99()*1e3, h.HitRate*100, h.SMReads)
	}
	if len(r.Windows) > 0 {
		fmt.Fprintf(w, "%-10s %8s %10s %10s %10s %8s %8s\n",
			"window", "queries", "mean(ms)", "p99(ms)", "hit%", "fm%", "sm/qry")
		for i, win := range r.Windows {
			fmt.Fprintf(w, "w%-9d %8d %10.2f %10.2f %10.1f %8.1f %8.1f\n",
				i, win.Queries, win.MeanLat*1e3, win.P99*1e3, win.HitRate*100, win.FMRate*100, win.SMPerQuery)
		}
	}
	if len(r.Classes) > 0 {
		fmt.Fprintf(w, "admission: shed %d/%d (%.1f%%), host-load Jain=%.3f, class-share Jain=%.3f\n",
			r.Shed, r.Queries, 100*float64(r.Shed)/float64(r.Queries), r.LoadFairness, r.ClassFairness)
		fmt.Fprintf(w, "%-10s %8s %8s %8s %10s %10s %10s %10s\n",
			"class", "offered", "shed", "delayed", "delay(ms)", "p50(ms)", "p99(ms)", "p999(ms)")
		for _, c := range r.Classes {
			fmt.Fprintf(w, "%-10s %8d %8d %8d %10.2f %10.2f %10.2f %10.2f\n",
				c.Name, c.Offered, c.Shed, c.Delayed, c.MeanDelay*1e3,
				c.Latency.P50()*1e3, c.Latency.P99()*1e3, c.Latency.P999()*1e3)
		}
	}
	if r.SMWriteBytes > 0 {
		var lifetime uint64
		for _, h := range r.Hosts {
			lifetime += h.LifetimeSMWrites
		}
		fmt.Fprintf(w, "wear: %.2f MB SM writes this run (lifetime %.2f MB), projected DWPD utilization %.3f\n",
			float64(r.SMWriteBytes)/(1<<20), float64(lifetime)/(1<<20), r.DWPDUtil)
	}
	if r.Trace != nil {
		s := r.Trace
		fmt.Fprintf(w, "trace[%s]: routes=%d diversions=%d (%.1f%%) admits=%d sheds=%d delays=%d plan=+%d/-%d defer=%d (busy %d, cap %d)\n",
			s.Level, s.Routes, s.Diversions, 100*s.DiversionRate(),
			s.Admits, s.Sheds, s.Delays, s.Promotes, s.Demotes, s.Defers, s.DeferBusy, s.DeferCap)
		if s.CFRows > 0 || s.DivertedCFRows > 0 {
			fmt.Fprintf(w, "counterfactual: regret vs runner-up %+.3fms over %d rows; vs sticky host %+.3fms over %d diverted rows\n",
				s.RegretRunnerUpSeconds*1e3, s.CFRows, s.RegretPrevSeconds*1e3, s.DivertedCFRows)
		}
	}
	if r.DriftFired {
		fmt.Fprintf(w, "drift: hot-set rotation at t=%.2fs\n", r.DriftAt.Seconds())
	}
	if r.FailedHost >= 0 {
		fmt.Fprintf(w, "failure: host %d at t=%.2fs, rerouted users=%d, warmup spike=%.2fx, hit drop=%.1fpp\n",
			r.FailedHost, r.FailTime.Seconds(), r.ReroutedUsers, r.WarmupSpike, r.WarmupHitDrop*100)
	}
}
