// Front-end admission control: per-SLO-class token buckets gate the
// fleet's open-loop arrival stream before routing. Each class refills at
// its configured rate in virtual time; a query arriving to an empty
// bucket is either shed (counted, never routed — the overload answer
// that keeps the admitted tail bounded) or queued (its admission is
// delayed until the next token accrues — the answer that trades delay
// for completeness). Buckets are driven sequentially by the routing
// loop, so admission is a pure function of the arrival sequence and
// fleet results stay bit-identical at any Config.HostWorkers.
package cluster

import (
	"fmt"
	"math"
	"strconv"
	"strings"
	"time"

	"sdm/internal/simclock"
)

// ClassAdmit is one SLO class's token-bucket admission policy.
type ClassAdmit struct {
	// Name labels the class in reports ("" renders as "class<i>").
	Name string
	// RatePerSec is the sustained admission rate in queries/second.
	// <= 0 admits everything (no bucket).
	RatePerSec float64
	// Burst is the bucket depth in tokens — how far above RatePerSec a
	// transient spike may run. 0 selects max(1, RatePerSec/10).
	Burst float64
	// Queue selects what happens on an empty bucket: false sheds the
	// query (rejected, never routed), true delays its admission until
	// the next token accrues.
	Queue bool
}

// AdmitConfig is the fleet's admission policy: Classes[i] governs SLO
// class i, and classes beyond the slice are admitted unconditionally.
type AdmitConfig struct {
	Classes []ClassAdmit
}

// ParseAdmit parses a comma-separated admission spec into an
// AdmitConfig: one "name=rate[:burst][:queue|shed]" entry per SLO class,
// in class order. Rate is queries/second; burst the bucket depth in
// tokens (omitted = the rate/10 default); the trailing mode selects
// queue-on-empty instead of the default shed. Example:
//
//	gold=3000:30,best-effort=2000:20:queue
func ParseAdmit(spec string) (AdmitConfig, error) {
	var cfg AdmitConfig
	for _, entry := range strings.Split(spec, ",") {
		entry = strings.TrimSpace(entry)
		name, rest, ok := strings.Cut(entry, "=")
		if !ok || name == "" || rest == "" {
			return cfg, fmt.Errorf("cluster: admission entry %q is not name=rate[:burst][:queue|shed]", entry)
		}
		cl := ClassAdmit{Name: strings.TrimSpace(name)}
		parts := strings.Split(rest, ":")
		if len(parts) > 3 {
			return cfg, fmt.Errorf("cluster: admission entry %q has too many fields", entry)
		}
		rate, err := strconv.ParseFloat(strings.TrimSpace(parts[0]), 64)
		if err != nil {
			return cfg, fmt.Errorf("cluster: admission entry %q: bad rate: %v", entry, err)
		}
		cl.RatePerSec = rate
		mode := ""
		if len(parts) == 3 {
			mode = parts[2]
		}
		if len(parts) >= 2 {
			// The middle field is a burst unless it is the mode word of a
			// two-field entry ("gold=3000:queue").
			f := strings.TrimSpace(parts[1])
			if len(parts) == 2 && (f == "queue" || f == "shed") {
				mode = f
			} else {
				burst, err := strconv.ParseFloat(f, 64)
				if err != nil {
					return cfg, fmt.Errorf("cluster: admission entry %q: bad burst: %v", entry, err)
				}
				cl.Burst = burst
			}
		}
		switch strings.TrimSpace(mode) {
		case "", "shed":
		case "queue":
			cl.Queue = true
		default:
			return cfg, fmt.Errorf("cluster: admission entry %q: mode must be queue or shed", entry)
		}
		cfg.Classes = append(cfg.Classes, cl)
	}
	if err := cfg.Validate(); err != nil {
		return cfg, err
	}
	return cfg, nil
}

// Validate reports configuration errors.
func (c AdmitConfig) Validate() error {
	for i, cl := range c.Classes {
		if math.IsNaN(cl.RatePerSec) || math.IsInf(cl.RatePerSec, 0) {
			return fmt.Errorf("cluster: admission class %d rate %g must be finite", i, cl.RatePerSec)
		}
		if math.IsNaN(cl.Burst) || math.IsInf(cl.Burst, 0) || cl.Burst < 0 {
			return fmt.Errorf("cluster: admission class %d burst %g must be finite and >= 0", i, cl.Burst)
		}
	}
	return nil
}

// bucket is one class's live token bucket.
type bucket struct {
	rate   float64
	burst  float64
	queue  bool
	tokens float64
	last   simclock.Time
	primed bool
}

// admitState drives the configured buckets along virtual time.
type admitState struct {
	cfg     AdmitConfig
	buckets []bucket
}

func newAdmitState(cfg AdmitConfig) *admitState {
	s := &admitState{cfg: cfg, buckets: make([]bucket, len(cfg.Classes))}
	for i, cl := range cfg.Classes {
		b := bucket{rate: cl.RatePerSec, burst: cl.Burst, queue: cl.Queue}
		if b.burst == 0 {
			b.burst = math.Max(1, b.rate/10)
		}
		s.buckets[i] = b
	}
	return s
}

// admit runs one arrival at t through its class bucket. It returns the
// admission time (>= t; later only for queued classes), the bucket's
// token level after accrual and before this query's charge (-1 for
// unbucketed classes — the decision tracer's bucket-level signal), and
// whether the query was admitted at all. Arrivals must be offered in
// non-decreasing time order — the routing loop's natural order.
func (s *admitState) admit(class int, t simclock.Time) (simclock.Time, float64, bool) {
	if class < 0 || class >= len(s.buckets) {
		return t, -1, true
	}
	b := &s.buckets[class]
	if b.rate <= 0 {
		return t, -1, true
	}
	if !b.primed {
		// The bucket starts full at the first arrival it governs.
		b.tokens, b.last, b.primed = b.burst, t, true
	}
	if t > b.last {
		b.tokens = math.Min(b.burst, b.tokens+(t-b.last).Seconds()*b.rate)
		b.last = t
	}
	level := b.tokens
	if b.tokens >= 1 {
		b.tokens--
		return t, level, true
	}
	if !b.queue {
		return 0, level, false
	}
	// Delay admission until the missing fraction of a token accrues; the
	// accrued token is consumed on admission, so the bucket stays empty.
	// Accrual is measured from b.last — the point up to which tokens have
	// already been credited (a prior queued admission pushes it into the
	// future) — never from the arrival itself, so overlapping waits don't
	// double-count the same accrual window and queued admissions serialize
	// at 1/rate spacing.
	base := b.last
	if base < t {
		base = t
	}
	at := base + simclock.Time(((1-b.tokens)/b.rate)*float64(time.Second))
	b.tokens = 0
	if at < t {
		at = t
	}
	b.last = at
	return at, level, true
}

// className renders class i's report label.
func (c AdmitConfig) className(i int) string {
	if i >= 0 && i < len(c.Classes) && c.Classes[i].Name != "" {
		return c.Classes[i].Name
	}
	return fmt.Sprintf("class%d", i)
}
