package cluster

import (
	"strings"
	"testing"
	"time"

	"sdm/internal/adapt"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/serving"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

func fixture(t *testing.T) (*model.Instance, []*embedding.Table) {
	t.Helper()
	cfg := model.M1()
	cfg.NumUserTables = 5
	cfg.NumItemTables = 3
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	in, err := model.Build(cfg, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := in.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return in, tables
}

// testFleet builds an n-host SDM fleet with a small row cache (so routing
// policy visibly moves the hit rate) plus a fresh shared-population
// generator.
func testFleet(t *testing.T, in *model.Instance, tables []*embedding.Table, n int, router Router, cfg Config) *Fleet {
	t.Helper()
	scfg := core.Config{Seed: 7, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 15}
	hosts, err := HostSet(in, tables, n, &scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(hosts, router, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{Seed: cfg.Seed, NumUsers: 800, UserAlpha: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	return f
}

// resultKey flattens every virtual-time number of a Result so runs can be
// compared bit-for-bit.
func resultKey(t *testing.T, r *Result) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(r.String())
	for _, h := range r.Hosts {
		b.WriteString(h.Latency.String())
		b.WriteString(h.String())
	}
	for _, w := range r.Windows {
		b.WriteString(w.String())
	}
	return b.String()
}

func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	// The determinism contract: same seed ⇒ bit-identical fleet
	// virtual-time stats at any host-worker count, for every policy.
	in, tables := fixture(t)
	for _, mk := range []func() Router{
		func() Router { return NewRoundRobin() },
		func() Router { return NewLeastOutstanding() },
		func() Router { return NewSticky(4, 32) },
	} {
		var keys []string
		var name string
		for _, workers := range []int{1, 2, 4, 7} {
			f := testFleet(t, in, tables, 4, mk(), Config{Seed: 11, HostWorkers: workers})
			res, err := f.Run(400, 400)
			if err != nil {
				t.Fatal(err)
			}
			name = res.Policy
			keys = append(keys, resultKey(t, res))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] != keys[0] {
				t.Fatalf("%s: results diverged across worker counts:\n%s\nvs\n%s", name, keys[0], keys[i])
			}
		}
	}
}

// adaptiveFixture builds an instance whose user tables are equal-sized,
// so a DRAM budget of ~2 tables makes hot-set rotation genuinely force
// FM↔SM swaps.
func adaptiveFixture(t *testing.T) (*model.Instance, []*embedding.Table) {
	t.Helper()
	cfg := model.M1()
	cfg.NumUserTables = 6
	cfg.NumItemTables = 2
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	in, err := model.Build(cfg, 1, 47)
	if err != nil {
		t.Fatal(err)
	}
	const perTable = 96 << 10
	for i := 0; i < cfg.NumUserTables; i++ {
		in.Tables[i].Rows = perTable / int64(in.Tables[i].RowBytes())
	}
	tables, err := in.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return in, tables
}

// adaptiveFleet assembles n adaptive SDM hosts behind sticky routing over
// a drifting shared workload.
func adaptiveFleet(t *testing.T, in *model.Instance, tables []*embedding.Table, n, workers int) (*Fleet, []*adapt.Adapter) {
	t.Helper()
	scfg := core.Config{
		Seed: 7, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 16,
		ReserveSM: true,
		Placement: placement.Config{
			Policy: placement.FixedFMWithCache, UserTablesOnly: true,
			DRAMBudget: 5 * (96 << 10) / 2,
		},
	}
	hosts, err := HostSet(in, tables, n, &scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	adapters, err := AttachAdaptive(hosts, adapt.Config{
		Interval: 100 * time.Millisecond, BandwidthBytesPerSec: 8 << 20, ChunkBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(hosts, NewSticky(n, 64), Config{Seed: 11, HostWorkers: workers, Windows: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{
		Seed: 11, NumUsers: 800, UserAlpha: 0.9,
		Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	return f, adapters
}

func TestAdaptiveFleetDeterministicAcrossWorkers(t *testing.T) {
	// The adaptive determinism contract: telemetry sampling, controller
	// evaluations and paced migration IO all ride the per-host admission
	// order, so a drift drill over real goroutines stays bit-identical at
	// any worker count.
	in, tables := adaptiveFixture(t)
	var keys []string
	for _, workers := range []int{1, 2, 4} {
		f, adapters := adaptiveFleet(t, in, tables, 3, workers)
		if _, err := f.Run(300, 600); err != nil {
			t.Fatal(err)
		}
		if err := f.ScheduleDrift(0.5); err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(300, 900)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, resultKey(t, res)+AdapterStats(adapters).String())
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Fatalf("adaptive fleet diverged across worker counts:\n%s\nvs\n%s", keys[0], keys[i])
		}
	}
}

// rangeAdaptiveFleet mirrors adaptiveFleet at row-range granularity: a
// spatial (identity-permuted) workload clusters each table's hot rows in
// its head ranges, and the controller packs ranges instead of tables.
func rangeAdaptiveFleet(t *testing.T, in *model.Instance, tables []*embedding.Table, n, workers int) (*Fleet, []*adapt.Adapter) {
	t.Helper()
	scfg := core.Config{
		Seed: 7, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 16,
		ReserveSM: true, MigrationRangeBytes: 16 << 10,
		Placement: placement.Config{
			Policy: placement.SMOnlyWithCache, UserTablesOnly: true,
		},
	}
	hosts, err := HostSet(in, tables, n, &scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	adapters, err := AttachAdaptive(hosts, adapt.Config{
		Interval: 100 * time.Millisecond, BandwidthBytesPerSec: 8 << 20,
		ChunkBytes: 16 << 10, DRAMBudget: 5 * (96 << 10) / 2,
		Granularity: adapt.Ranges,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(hosts, NewSticky(n, 64), Config{Seed: 11, HostWorkers: workers, Windows: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{
		Seed: 11, NumUsers: 800, UserAlpha: 0.9, Spatial: true,
		Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	return f, adapters
}

func TestRangeAdaptiveFleetDeterministicAcrossWorkers(t *testing.T) {
	// The range-granular determinism contract: per-range counters fold in
	// operator order, range telemetry and the knapsack run in admission
	// order, and migration windows pace on the virtual timeline — so a
	// drift drill over real goroutines stays bit-identical at any worker
	// count, including the new range-served window rates.
	in, tables := adaptiveFixture(t)
	var keys []string
	for _, workers := range []int{1, 2, 4} {
		f, adapters := rangeAdaptiveFleet(t, in, tables, 3, workers)
		if _, err := f.Run(300, 600); err != nil {
			t.Fatal(err)
		}
		if err := f.ScheduleDrift(0.5); err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(300, 900)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			as := AdapterStats(adapters)
			if as.RangeMoves == 0 {
				t.Fatalf("range fleet never moved a range: %s", as)
			}
			if res.RangeServedRate <= 0 {
				t.Fatalf("fleet range-served rate empty: %+v", res)
			}
		}
		keys = append(keys, resultKey(t, res)+AdapterStats(adapters).String())
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Fatalf("range-adaptive fleet diverged across worker counts:\n%s\nvs\n%s", keys[0], keys[i])
		}
	}
}

func TestScheduleDriftDrill(t *testing.T) {
	in, tables := adaptiveFixture(t)
	f, adapters := adaptiveFleet(t, in, tables, 3, 0)
	if err := f.ScheduleDrift(1.5); err == nil {
		t.Fatal("drift fraction > 1 should be rejected")
	}
	if _, err := f.Run(300, 600); err != nil { // warm + converge
		t.Fatal(err)
	}
	pre := AdapterStats(adapters)
	if pre.Evals == 0 {
		t.Fatal("adapters never evaluated during warmup")
	}
	if err := f.ScheduleDrift(0.4); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(300, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DriftFired || res.DriftAt <= res.Start {
		t.Fatalf("drift drill not recorded: fired=%t at=%v", res.DriftFired, res.DriftAt)
	}
	post := AdapterStats(adapters)
	if post.Promotions <= pre.Promotions {
		t.Fatalf("rotation should trigger promotions: %s -> %s", pre, post)
	}
	if post.MigratedBytes <= pre.MigratedBytes {
		t.Fatalf("migrations should move bytes: %s -> %s", pre, post)
	}
	// A later run is not itself a drill.
	after, err := f.Run(300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if after.DriftFired {
		t.Fatal("drift drill state leaked into the next run")
	}
	// Window FM-served rates are populated for SDM fleets.
	var sawFM bool
	for _, w := range res.Windows {
		if w.FMRate > 0 {
			sawFM = true
		}
	}
	if !sawFM {
		t.Fatalf("window FM rates empty: %+v", res.Windows)
	}
}

func TestStickyBeatsRoundRobinHitRate(t *testing.T) {
	// Fig. 4c at serving time: pinning users to hosts concentrates their
	// rows in one replica's cache, so the measured row-cache hit rate must
	// beat round-robin on the same trace.
	in, tables := fixture(t)
	run := func(r Router) *Result {
		f := testFleet(t, in, tables, 4, r, Config{Seed: 13})
		res, err := f.Run(300, 800)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rr := run(NewRoundRobin())
	sticky := run(NewSticky(4, 64))
	if sticky.HitRate <= rr.HitRate {
		t.Fatalf("sticky hit rate %.3f should beat round-robin %.3f", sticky.HitRate, rr.HitRate)
	}
	// Load still lands on every host (consistent hashing spreads users).
	for _, h := range sticky.Hosts {
		if h.Queries == 0 {
			t.Fatalf("sticky starved host %d: %+v", h.ID, sticky.Hosts)
		}
	}
}

func TestLeastOutstandingBalances(t *testing.T) {
	in, tables := fixture(t)
	f := testFleet(t, in, tables, 4, NewLeastOutstanding(), Config{Seed: 17})
	res, err := f.Run(500, 400)
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.Hosts[0].Queries, res.Hosts[0].Queries
	for _, h := range res.Hosts {
		if h.Queries < min {
			min = h.Queries
		}
		if h.Queries > max {
			max = h.Queries
		}
	}
	if min == 0 || float64(max) > 2.5*float64(min) {
		t.Fatalf("least-outstanding should balance load: min=%d max=%d", min, max)
	}
}

func TestHostFailureReroutesUsers(t *testing.T) {
	// §A.4: killing a host mid-run reroutes its users to survivors whose
	// caches are cold for them — visible as a warmup hit-rate drop.
	in, tables := fixture(t)
	f := testFleet(t, in, tables, 4, NewSticky(4, 64), Config{Seed: 19, Windows: 8})
	if err := f.ScheduleFailure(2, 0.5); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(300, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedHost != 2 || res.Hosts[2].Alive {
		t.Fatalf("host 2 should be dead: %+v", res.Hosts[2])
	}
	if res.ReroutedUsers == 0 {
		t.Fatal("failure should reroute the dead host's users")
	}
	if res.WarmupHitDrop <= 0 {
		t.Fatalf("rerouted users should hit cold caches: drop=%.4f", res.WarmupHitDrop)
	}
	if res.WarmupSpike <= 0 {
		t.Fatalf("warmup spike should be measured: %g", res.WarmupSpike)
	}
	// The survivors keep serving: the fleet completes every query.
	if int(res.Latency.Count()) != res.Queries {
		t.Fatalf("completed %d of %d queries", res.Latency.Count(), res.Queries)
	}
	// A later Run keeps the host dead but is not itself a failure drill:
	// no stale failure metadata, and a second kill is rejected.
	after, err := f.Run(300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if after.FailedHost != -1 || after.ReroutedUsers != 0 || after.WarmupSpike != 0 {
		t.Fatalf("post-failure run reports stale drill: %+v", after)
	}
	if after.Hosts[2].Queries != 0 || after.Hosts[2].Alive {
		t.Fatalf("dead host served after failure: %+v", after.Hosts[2])
	}
	if err := f.ScheduleFailure(3, 0.5); err == nil {
		t.Fatal("second failure in one fleet lifetime should be rejected")
	}
}

func TestStickyRingConsistency(t *testing.T) {
	// Consistent hashing: when a host leaves, only its users remap.
	// Liveness now lives in the View — the ring is immutable and reads
	// the alive set per lookup.
	r := NewRing(5, 64)
	alive := []bool{true, true, true, true, true}
	isAlive := func(id int) bool { return alive[id] }
	before := make(map[int64]int)
	for u := int64(0); u < 3000; u++ {
		before[u] = r.Owner(u, isAlive)
	}
	alive[3] = false
	moved := 0
	for u := int64(0); u < 3000; u++ {
		after := r.Owner(u, isAlive)
		if after == 3 {
			t.Fatalf("user %d still routed to dead host", u)
		}
		if before[u] != 3 && after != before[u] {
			t.Fatalf("user %d moved from alive host %d to %d", u, before[u], after)
		}
		if before[u] == 3 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("host 3 owned no users; ring is degenerate")
	}
	// Rejoin restores the exact prior ownership.
	alive[3] = true
	for u := int64(0); u < 3000; u++ {
		if r.Owner(u, isAlive) != before[u] {
			t.Fatalf("user %d did not return to host %d after rejoin", u, before[u])
		}
	}
	// A nil alive set accepts every host.
	for u := int64(0); u < 100; u++ {
		if r.Owner(u, nil) != before[u] {
			t.Fatalf("nil alive set diverged from all-alive for user %d", u)
		}
	}
}

func TestRoundRobinSkipsDeadHosts(t *testing.T) {
	in, tables := fixture(t)
	f := testFleet(t, in, tables, 3, NewRoundRobin(), Config{Seed: 23})
	if err := f.ScheduleFailure(0, 0.3); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(200, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts[0].Queries >= res.Hosts[1].Queries {
		t.Fatalf("dead host should stop receiving load: %+v", res.Hosts)
	}
}

func TestFleetValidation(t *testing.T) {
	in, tables := fixture(t)
	scfg := core.Config{Seed: 1, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 15}
	hosts, err := HostSet(in, tables, 1, &scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, NewRoundRobin(), Config{}); err == nil {
		t.Fatal("empty fleet should fail")
	}
	if _, err := New(hosts, nil, Config{}); err == nil {
		t.Fatal("nil router should fail")
	}
	f, err := New(hosts, NewRoundRobin(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ScheduleFailure(0, 0.5); err == nil {
		t.Fatal("failing the only host should fail")
	}
	if err := f.ScheduleFailure(5, 0.5); err == nil {
		t.Fatal("out-of-range fail host should fail")
	}
	if _, err := f.Run(100, 10); err == nil {
		t.Fatal("run without a generator should fail")
	}
	gen, err := workload.NewGenerator(in, workload.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	if _, err := f.Run(0, 10); err == nil {
		t.Fatal("zero QPS should fail")
	}
	if _, err := f.Run(10, 0); err == nil {
		t.Fatal("zero queries should fail")
	}
	if _, err := HostSet(in, tables, 0, &scfg, serving.Config{Spec: serving.HWSS(), Seed: 1}); err == nil {
		t.Fatal("empty host set should fail")
	}
}

func TestUtilizationSweepCrossover(t *testing.T) {
	// The BLIS utilization sweep: affinity routing wins on cache hit rate
	// while the fleet has headroom, but it saturates its hottest host
	// first — at high load round-robin's even spread keeps p99 flat while
	// sticky's tail collapses. Both regimes on the same fixture.
	in, tables := fixture(t)
	run := func(r Router, seed uint64, qps float64, n int) *Result {
		f := testFleet(t, in, tables, 4, r, Config{Seed: seed})
		res, err := f.Run(qps, n)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	// Low load: locality dominates. Sticky concentrates each user's rows
	// in one replica's cache and wins the fleet hit rate.
	rrLow := run(NewRoundRobin(), 13, 300, 800)
	stLow := run(NewSticky(4, 64), 13, 300, 800)
	if stLow.HitRate <= rrLow.HitRate {
		t.Fatalf("low load: sticky hit %.3f should beat round-robin %.3f",
			stLow.HitRate, rrLow.HitRate)
	}
	// High load: this fixture's sticky fleet saturates its hottest host
	// near 11k qps, so at 16k the sticky tail is unbounded queueing while
	// round-robin still has headroom (~24k capacity).
	rrHigh := run(NewRoundRobin(), 29, 16000, 3000)
	stHigh := run(NewSticky(4, 64), 29, 16000, 3000)
	if 4*rrHigh.Latency.P99() >= stHigh.Latency.P99() {
		t.Fatalf("high load: round-robin p99 %.6f should be far below sticky %.6f",
			rrHigh.Latency.P99(), stHigh.Latency.P99())
	}
	// The mechanism is load imbalance, visible as Jain fairness over
	// per-host served counts.
	if rrHigh.LoadFairness <= stHigh.LoadFairness {
		t.Fatalf("round-robin load fairness %.3f should beat sticky %.3f",
			rrHigh.LoadFairness, stHigh.LoadFairness)
	}
}

func TestAdmissionBoundsOverloadTail(t *testing.T) {
	// 2× overload drill: sticky at 16k qps is ~2× past its comfortable
	// operating point on this fixture, so the open-loop p99 blows up to
	// tens of milliseconds. Token-bucket admission sheds the excess and
	// restores millisecond tails, with the rejected share accounted per
	// SLO class.
	in, tables := fixture(t)
	run := func(admit bool) *Result {
		f := testFleet(t, in, tables, 4, NewSticky(4, 64), Config{Seed: 29})
		gen, err := workload.NewGenerator(in, workload.Config{
			Seed: 29, NumUsers: 800, UserAlpha: 0.8, SLOClasses: 2,
		})
		if err != nil {
			t.Fatal(err)
		}
		f.SetGenerator(gen)
		if admit {
			err := f.SetAdmission(AdmitConfig{Classes: []ClassAdmit{
				{Name: "gold", RatePerSec: 3000},
				{Name: "best-effort", RatePerSec: 2000},
			}})
			if err != nil {
				t.Fatal(err)
			}
		}
		res, err := f.Run(16000, 3000)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	open := run(false)
	gated := run(true)
	if open.Shed != 0 {
		t.Fatalf("open-loop run shed %d queries without admission control", open.Shed)
	}
	if gated.Shed < 3000/4 {
		t.Fatalf("admission at ~1/3 of offered load shed only %d of 3000", gated.Shed)
	}
	if 4*gated.Latency.P99() >= open.Latency.P99() {
		t.Fatalf("admission should bound the overload tail: gated p99 %.6f vs open %.6f",
			gated.Latency.P99(), open.Latency.P99())
	}
	// Per-class accounting: both classes offered traffic, names surface
	// from the admission config, and every admitted query completed.
	if len(gated.Classes) != 2 {
		t.Fatalf("want 2 class rows, got %+v", gated.Classes)
	}
	admitted := 0
	for i, c := range gated.Classes {
		if c.Offered == 0 {
			t.Fatalf("class %d saw no traffic: %+v", i, gated.Classes)
		}
		if c.Delayed != 0 {
			t.Fatalf("shed-mode class %q reports delayed queries: %+v", c.Name, c)
		}
		admitted += c.Offered - c.Shed
	}
	if gated.Classes[0].Name != "gold" || gated.Classes[1].Name != "best-effort" {
		t.Fatalf("class names not taken from admission config: %+v", gated.Classes)
	}
	if got := int(gated.Latency.Count()); got != admitted {
		t.Fatalf("completed %d queries, admitted %d", got, admitted)
	}
	if gated.ClassFairness <= 0 || gated.ClassFairness > 1 {
		t.Fatalf("class-share fairness out of range: %g", gated.ClassFairness)
	}
}

// sloFleet assembles the full SLO-serving stack: range-granular adaptive
// hosts under a fleet migration coordinator, a weighted router running
// every scorer at once, a two-class workload, and admission with one shed
// and one queue class.
func sloFleet(t *testing.T, in *model.Instance, tables []*embedding.Table, n, workers int) (*Fleet, []*adapt.Adapter) {
	t.Helper()
	scfg := core.Config{
		Seed: 7, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 16,
		ReserveSM: true, MigrationRangeBytes: 16 << 10,
		Placement: placement.Config{
			Policy: placement.SMOnlyWithCache, UserTablesOnly: true,
		},
	}
	hosts, err := HostSet(in, tables, n, &scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	adapters, coord, err := AttachCoordinated(hosts, adapt.Config{
		Interval: 100 * time.Millisecond, BandwidthBytesPerSec: 8 << 20,
		ChunkBytes: 16 << 10, DRAMBudget: 5 * (96 << 10) / 2,
		Granularity: adapt.Ranges, WearDaysPerSecond: 0.005,
	}, CoordConfig{Slot: 50 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	router, err := NewWeightedRouter("slo-weighted",
		ScorerWeight{Scorer: NewAffinityScorer(n, 64), Weight: 1.0},
		ScorerWeight{Scorer: NewQueueScorer(), Weight: 0.4},
		ScorerWeight{Scorer: NewMigrationAvoidScorer(), Weight: 1.2},
		ScorerWeight{Scorer: NewLoadBalanceScorer(), Weight: 0.1},
		ScorerWeight{Scorer: NewWearScorer(), Weight: 0.2},
		ScorerWeight{Scorer: NewFMServedScorer(), Weight: 0.3},
	)
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(hosts, router, Config{Seed: 11, HostWorkers: workers, Windows: 8})
	if err != nil {
		t.Fatal(err)
	}
	f.SetCoordinator(coord)
	f.SetAdapters(adapters)
	if err := f.SetAdmission(AdmitConfig{Classes: []ClassAdmit{
		{Name: "gold", RatePerSec: 200, Burst: 20},
		{Name: "bulk", RatePerSec: 120, Burst: 4, Queue: true},
	}}); err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{
		Seed: 11, NumUsers: 800, UserAlpha: 0.9, Spatial: true, SLOClasses: 2,
		Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	return f, adapters
}

func TestSLOFleetDeterministicAcrossWorkers(t *testing.T) {
	// The SLO-stack determinism contract: scorer routing reads only
	// synced virtual-time state, token buckets run on arrival order, and
	// class accounting folds at aggregation — so the full stack (all six
	// scorers + admission + coordinator + drift) stays bit-identical at
	// any worker count.
	in, tables := adaptiveFixture(t)
	var keys []string
	for _, workers := range []int{1, 4} {
		f, adapters := sloFleet(t, in, tables, 3, workers)
		if _, err := f.Run(300, 600); err != nil {
			t.Fatal(err)
		}
		if err := f.ScheduleDrift(0.5); err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(300, 900)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			if len(res.Classes) != 2 {
				t.Fatalf("want 2 class rows, got %+v", res.Classes)
			}
			var activity int
			for _, c := range res.Classes {
				activity += c.Shed + c.Delayed
			}
			if activity == 0 {
				t.Fatalf("admission never engaged: %+v", res.Classes)
			}
			if res.LoadFairness <= 0 || res.ClassFairness <= 0 {
				t.Fatalf("fairness indices empty: load=%g class=%g",
					res.LoadFairness, res.ClassFairness)
			}
		}
		key := resultKey(t, res)
		for _, c := range res.Classes {
			key += c.String()
		}
		key += AdapterStats(adapters).String()
		keys = append(keys, key)
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Fatalf("SLO fleet diverged across worker counts:\n%s\nvs\n%s", keys[0], keys[i])
		}
	}
}

func TestFlatHostSet(t *testing.T) {
	// A nil store config builds DRAM-baseline hosts; the fleet still runs
	// and, with the CPU-accounting fix, reports nonzero utilization.
	in, tables := fixture(t)
	hosts, err := HostSet(in, tables, 2, nil, serving.Config{Spec: serving.HWL(), InterOp: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(hosts, NewRoundRobin(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{Seed: 3, NumUsers: 100})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	res, err := f.Run(200, 200)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Latency.Count()) != 200 {
		t.Fatalf("flat fleet dropped queries: %d", res.Latency.Count())
	}
	if res.HitRate != 0 || res.Hosts[0].SMReads != 0 {
		t.Fatalf("flat hosts have no SM path: %+v", res)
	}
}
