package cluster

import (
	"strings"
	"testing"
	"time"

	"sdm/internal/adapt"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/serving"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

func fixture(t *testing.T) (*model.Instance, []*embedding.Table) {
	t.Helper()
	cfg := model.M1()
	cfg.NumUserTables = 5
	cfg.NumItemTables = 3
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	in, err := model.Build(cfg, 1, 31)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := in.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return in, tables
}

// testFleet builds an n-host SDM fleet with a small row cache (so routing
// policy visibly moves the hit rate) plus a fresh shared-population
// generator.
func testFleet(t *testing.T, in *model.Instance, tables []*embedding.Table, n int, router Router, cfg Config) *Fleet {
	t.Helper()
	scfg := core.Config{Seed: 7, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 15}
	hosts, err := HostSet(in, tables, n, &scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(hosts, router, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{Seed: cfg.Seed, NumUsers: 800, UserAlpha: 0.8})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	return f
}

// resultKey flattens every virtual-time number of a Result so runs can be
// compared bit-for-bit.
func resultKey(t *testing.T, r *Result) string {
	t.Helper()
	var b strings.Builder
	b.WriteString(r.String())
	for _, h := range r.Hosts {
		b.WriteString(h.Latency.String())
		b.WriteString(h.String())
	}
	for _, w := range r.Windows {
		b.WriteString(w.String())
	}
	return b.String()
}

func TestFleetDeterministicAcrossWorkers(t *testing.T) {
	// The determinism contract: same seed ⇒ bit-identical fleet
	// virtual-time stats at any host-worker count, for every policy.
	in, tables := fixture(t)
	for _, mk := range []func() Router{
		func() Router { return NewRoundRobin() },
		func() Router { return NewLeastOutstanding() },
		func() Router { return NewSticky(4, 32) },
	} {
		var keys []string
		var name string
		for _, workers := range []int{1, 2, 4, 7} {
			f := testFleet(t, in, tables, 4, mk(), Config{Seed: 11, HostWorkers: workers})
			res, err := f.Run(400, 400)
			if err != nil {
				t.Fatal(err)
			}
			name = res.Policy
			keys = append(keys, resultKey(t, res))
		}
		for i := 1; i < len(keys); i++ {
			if keys[i] != keys[0] {
				t.Fatalf("%s: results diverged across worker counts:\n%s\nvs\n%s", name, keys[0], keys[i])
			}
		}
	}
}

// adaptiveFixture builds an instance whose user tables are equal-sized,
// so a DRAM budget of ~2 tables makes hot-set rotation genuinely force
// FM↔SM swaps.
func adaptiveFixture(t *testing.T) (*model.Instance, []*embedding.Table) {
	t.Helper()
	cfg := model.M1()
	cfg.NumUserTables = 6
	cfg.NumItemTables = 2
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	in, err := model.Build(cfg, 1, 47)
	if err != nil {
		t.Fatal(err)
	}
	const perTable = 96 << 10
	for i := 0; i < cfg.NumUserTables; i++ {
		in.Tables[i].Rows = perTable / int64(in.Tables[i].RowBytes())
	}
	tables, err := in.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	return in, tables
}

// adaptiveFleet assembles n adaptive SDM hosts behind sticky routing over
// a drifting shared workload.
func adaptiveFleet(t *testing.T, in *model.Instance, tables []*embedding.Table, n, workers int) (*Fleet, []*adapt.Adapter) {
	t.Helper()
	scfg := core.Config{
		Seed: 7, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 16,
		ReserveSM: true,
		Placement: placement.Config{
			Policy: placement.FixedFMWithCache, UserTablesOnly: true,
			DRAMBudget: 5 * (96 << 10) / 2,
		},
	}
	hosts, err := HostSet(in, tables, n, &scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	adapters, err := AttachAdaptive(hosts, adapt.Config{
		Interval: 100 * time.Millisecond, BandwidthBytesPerSec: 8 << 20, ChunkBytes: 16 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(hosts, NewSticky(n, 64), Config{Seed: 11, HostWorkers: workers, Windows: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{
		Seed: 11, NumUsers: 800, UserAlpha: 0.9,
		Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	return f, adapters
}

func TestAdaptiveFleetDeterministicAcrossWorkers(t *testing.T) {
	// The adaptive determinism contract: telemetry sampling, controller
	// evaluations and paced migration IO all ride the per-host admission
	// order, so a drift drill over real goroutines stays bit-identical at
	// any worker count.
	in, tables := adaptiveFixture(t)
	var keys []string
	for _, workers := range []int{1, 2, 4} {
		f, adapters := adaptiveFleet(t, in, tables, 3, workers)
		if _, err := f.Run(300, 600); err != nil {
			t.Fatal(err)
		}
		if err := f.ScheduleDrift(0.5); err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(300, 900)
		if err != nil {
			t.Fatal(err)
		}
		keys = append(keys, resultKey(t, res)+AdapterStats(adapters).String())
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Fatalf("adaptive fleet diverged across worker counts:\n%s\nvs\n%s", keys[0], keys[i])
		}
	}
}

// rangeAdaptiveFleet mirrors adaptiveFleet at row-range granularity: a
// spatial (identity-permuted) workload clusters each table's hot rows in
// its head ranges, and the controller packs ranges instead of tables.
func rangeAdaptiveFleet(t *testing.T, in *model.Instance, tables []*embedding.Table, n, workers int) (*Fleet, []*adapt.Adapter) {
	t.Helper()
	scfg := core.Config{
		Seed: 7, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 16,
		ReserveSM: true, MigrationRangeBytes: 16 << 10,
		Placement: placement.Config{
			Policy: placement.SMOnlyWithCache, UserTablesOnly: true,
		},
	}
	hosts, err := HostSet(in, tables, n, &scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	adapters, err := AttachAdaptive(hosts, adapt.Config{
		Interval: 100 * time.Millisecond, BandwidthBytesPerSec: 8 << 20,
		ChunkBytes: 16 << 10, DRAMBudget: 5 * (96 << 10) / 2,
		Granularity: adapt.Ranges,
	})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(hosts, NewSticky(n, 64), Config{Seed: 11, HostWorkers: workers, Windows: 8})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{
		Seed: 11, NumUsers: 800, UserAlpha: 0.9, Spatial: true,
		Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	return f, adapters
}

func TestRangeAdaptiveFleetDeterministicAcrossWorkers(t *testing.T) {
	// The range-granular determinism contract: per-range counters fold in
	// operator order, range telemetry and the knapsack run in admission
	// order, and migration windows pace on the virtual timeline — so a
	// drift drill over real goroutines stays bit-identical at any worker
	// count, including the new range-served window rates.
	in, tables := adaptiveFixture(t)
	var keys []string
	for _, workers := range []int{1, 2, 4} {
		f, adapters := rangeAdaptiveFleet(t, in, tables, 3, workers)
		if _, err := f.Run(300, 600); err != nil {
			t.Fatal(err)
		}
		if err := f.ScheduleDrift(0.5); err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(300, 900)
		if err != nil {
			t.Fatal(err)
		}
		if workers == 1 {
			as := AdapterStats(adapters)
			if as.RangeMoves == 0 {
				t.Fatalf("range fleet never moved a range: %s", as)
			}
			if res.RangeServedRate <= 0 {
				t.Fatalf("fleet range-served rate empty: %+v", res)
			}
		}
		keys = append(keys, resultKey(t, res)+AdapterStats(adapters).String())
	}
	for i := 1; i < len(keys); i++ {
		if keys[i] != keys[0] {
			t.Fatalf("range-adaptive fleet diverged across worker counts:\n%s\nvs\n%s", keys[0], keys[i])
		}
	}
}

func TestScheduleDriftDrill(t *testing.T) {
	in, tables := adaptiveFixture(t)
	f, adapters := adaptiveFleet(t, in, tables, 3, 0)
	if err := f.ScheduleDrift(1.5); err == nil {
		t.Fatal("drift fraction > 1 should be rejected")
	}
	if _, err := f.Run(300, 600); err != nil { // warm + converge
		t.Fatal(err)
	}
	pre := AdapterStats(adapters)
	if pre.Evals == 0 {
		t.Fatal("adapters never evaluated during warmup")
	}
	if err := f.ScheduleDrift(0.4); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(300, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if !res.DriftFired || res.DriftAt <= res.Start {
		t.Fatalf("drift drill not recorded: fired=%t at=%v", res.DriftFired, res.DriftAt)
	}
	post := AdapterStats(adapters)
	if post.Promotions <= pre.Promotions {
		t.Fatalf("rotation should trigger promotions: %s -> %s", pre, post)
	}
	if post.MigratedBytes <= pre.MigratedBytes {
		t.Fatalf("migrations should move bytes: %s -> %s", pre, post)
	}
	// A later run is not itself a drill.
	after, err := f.Run(300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if after.DriftFired {
		t.Fatal("drift drill state leaked into the next run")
	}
	// Window FM-served rates are populated for SDM fleets.
	var sawFM bool
	for _, w := range res.Windows {
		if w.FMRate > 0 {
			sawFM = true
		}
	}
	if !sawFM {
		t.Fatalf("window FM rates empty: %+v", res.Windows)
	}
}

func TestStickyBeatsRoundRobinHitRate(t *testing.T) {
	// Fig. 4c at serving time: pinning users to hosts concentrates their
	// rows in one replica's cache, so the measured row-cache hit rate must
	// beat round-robin on the same trace.
	in, tables := fixture(t)
	run := func(r Router) *Result {
		f := testFleet(t, in, tables, 4, r, Config{Seed: 13})
		res, err := f.Run(300, 800)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	rr := run(NewRoundRobin())
	sticky := run(NewSticky(4, 64))
	if sticky.HitRate <= rr.HitRate {
		t.Fatalf("sticky hit rate %.3f should beat round-robin %.3f", sticky.HitRate, rr.HitRate)
	}
	// Load still lands on every host (consistent hashing spreads users).
	for _, h := range sticky.Hosts {
		if h.Queries == 0 {
			t.Fatalf("sticky starved host %d: %+v", h.ID, sticky.Hosts)
		}
	}
}

func TestLeastOutstandingBalances(t *testing.T) {
	in, tables := fixture(t)
	f := testFleet(t, in, tables, 4, NewLeastOutstanding(), Config{Seed: 17})
	res, err := f.Run(500, 400)
	if err != nil {
		t.Fatal(err)
	}
	min, max := res.Hosts[0].Queries, res.Hosts[0].Queries
	for _, h := range res.Hosts {
		if h.Queries < min {
			min = h.Queries
		}
		if h.Queries > max {
			max = h.Queries
		}
	}
	if min == 0 || float64(max) > 2.5*float64(min) {
		t.Fatalf("least-outstanding should balance load: min=%d max=%d", min, max)
	}
}

func TestHostFailureReroutesUsers(t *testing.T) {
	// §A.4: killing a host mid-run reroutes its users to survivors whose
	// caches are cold for them — visible as a warmup hit-rate drop.
	in, tables := fixture(t)
	f := testFleet(t, in, tables, 4, NewSticky(4, 64), Config{Seed: 19, Windows: 8})
	if err := f.ScheduleFailure(2, 0.5); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(300, 1200)
	if err != nil {
		t.Fatal(err)
	}
	if res.FailedHost != 2 || res.Hosts[2].Alive {
		t.Fatalf("host 2 should be dead: %+v", res.Hosts[2])
	}
	if res.ReroutedUsers == 0 {
		t.Fatal("failure should reroute the dead host's users")
	}
	if res.WarmupHitDrop <= 0 {
		t.Fatalf("rerouted users should hit cold caches: drop=%.4f", res.WarmupHitDrop)
	}
	if res.WarmupSpike <= 0 {
		t.Fatalf("warmup spike should be measured: %g", res.WarmupSpike)
	}
	// The survivors keep serving: the fleet completes every query.
	if int(res.Latency.Count()) != res.Queries {
		t.Fatalf("completed %d of %d queries", res.Latency.Count(), res.Queries)
	}
	// A later Run keeps the host dead but is not itself a failure drill:
	// no stale failure metadata, and a second kill is rejected.
	after, err := f.Run(300, 200)
	if err != nil {
		t.Fatal(err)
	}
	if after.FailedHost != -1 || after.ReroutedUsers != 0 || after.WarmupSpike != 0 {
		t.Fatalf("post-failure run reports stale drill: %+v", after)
	}
	if after.Hosts[2].Queries != 0 || after.Hosts[2].Alive {
		t.Fatalf("dead host served after failure: %+v", after.Hosts[2])
	}
	if err := f.ScheduleFailure(3, 0.5); err == nil {
		t.Fatal("second failure in one fleet lifetime should be rejected")
	}
}

func TestStickyRingConsistency(t *testing.T) {
	// Consistent hashing: when a host leaves, only its users remap.
	s := NewSticky(5, 64)
	before := make(map[int64]int)
	for u := int64(0); u < 3000; u++ {
		before[u] = s.Owner(u)
	}
	s.HostDown(3)
	moved := 0
	for u := int64(0); u < 3000; u++ {
		after := s.Owner(u)
		if after == 3 {
			t.Fatalf("user %d still routed to dead host", u)
		}
		if before[u] != 3 && after != before[u] {
			t.Fatalf("user %d moved from alive host %d to %d", u, before[u], after)
		}
		if before[u] == 3 {
			moved++
		}
	}
	if moved == 0 {
		t.Fatal("host 3 owned no users; ring is degenerate")
	}
	// Rejoin restores the exact prior ownership.
	s.HostUp(3)
	for u := int64(0); u < 3000; u++ {
		if s.Owner(u) != before[u] {
			t.Fatalf("user %d did not return to host %d after rejoin", u, before[u])
		}
	}
}

func TestRoundRobinSkipsDeadHosts(t *testing.T) {
	in, tables := fixture(t)
	f := testFleet(t, in, tables, 3, NewRoundRobin(), Config{Seed: 23})
	if err := f.ScheduleFailure(0, 0.3); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(200, 600)
	if err != nil {
		t.Fatal(err)
	}
	if res.Hosts[0].Queries >= res.Hosts[1].Queries {
		t.Fatalf("dead host should stop receiving load: %+v", res.Hosts)
	}
}

func TestFleetValidation(t *testing.T) {
	in, tables := fixture(t)
	scfg := core.Config{Seed: 1, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 15}
	hosts, err := HostSet(in, tables, 1, &scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(nil, NewRoundRobin(), Config{}); err == nil {
		t.Fatal("empty fleet should fail")
	}
	if _, err := New(hosts, nil, Config{}); err == nil {
		t.Fatal("nil router should fail")
	}
	f, err := New(hosts, NewRoundRobin(), Config{})
	if err != nil {
		t.Fatal(err)
	}
	if err := f.ScheduleFailure(0, 0.5); err == nil {
		t.Fatal("failing the only host should fail")
	}
	if err := f.ScheduleFailure(5, 0.5); err == nil {
		t.Fatal("out-of-range fail host should fail")
	}
	if _, err := f.Run(100, 10); err == nil {
		t.Fatal("run without a generator should fail")
	}
	gen, err := workload.NewGenerator(in, workload.Config{Seed: 1})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	if _, err := f.Run(0, 10); err == nil {
		t.Fatal("zero QPS should fail")
	}
	if _, err := f.Run(10, 0); err == nil {
		t.Fatal("zero queries should fail")
	}
	if _, err := HostSet(in, tables, 0, &scfg, serving.Config{Spec: serving.HWSS(), Seed: 1}); err == nil {
		t.Fatal("empty host set should fail")
	}
}

func TestFlatHostSet(t *testing.T) {
	// A nil store config builds DRAM-baseline hosts; the fleet still runs
	// and, with the CPU-accounting fix, reports nonzero utilization.
	in, tables := fixture(t)
	hosts, err := HostSet(in, tables, 2, nil, serving.Config{Spec: serving.HWL(), InterOp: true, Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	f, err := New(hosts, NewRoundRobin(), Config{Seed: 3})
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(in, workload.Config{Seed: 3, NumUsers: 100})
	if err != nil {
		t.Fatal(err)
	}
	f.SetGenerator(gen)
	res, err := f.Run(200, 200)
	if err != nil {
		t.Fatal(err)
	}
	if int(res.Latency.Count()) != 200 {
		t.Fatalf("flat fleet dropped queries: %d", res.Latency.Count())
	}
	if res.HitRate != 0 || res.Hosts[0].SMReads != 0 {
		t.Fatalf("flat hosts have no SM path: %+v", res)
	}
}
