package cluster

import (
	"math"
	"strings"
	"testing"
	"time"

	"sdm/internal/serving"
	"sdm/internal/simclock"
	"sdm/internal/workload"
)

// scriptView is a scripted View for driving routers without a fleet:
// queue depths and liveness are set per decision by the test.
type scriptView struct {
	n        int
	dead     map[int]bool
	queues   []int
	routed   []int
	fm       []float64
	wear     []float64
	backlog  []int
	inWindow map[int]bool
}

func newScriptView(n int) *scriptView {
	return &scriptView{
		n: n, dead: make(map[int]bool), queues: make([]int, n),
		routed: make([]int, n), fm: make([]float64, n), wear: make([]float64, n),
		backlog: make([]int, n), inWindow: make(map[int]bool),
	}
}

func (v *scriptView) Hosts() int         { return v.n }
func (v *scriptView) Alive(id int) bool  { return !v.dead[id] }
func (v *scriptView) Routed(id int) int  { return v.routed[id] }
func (v *scriptView) LastHost(int64) int { return -1 }
func (v *scriptView) OutstandingAt(id int, _ simclock.Time) int {
	return v.queues[id]
}
func (v *scriptView) Snapshot(int) serving.CacheSnapshot { return serving.CacheSnapshot{} }
func (v *scriptView) FMServedRate(id int) float64        { return v.fm[id] }
func (v *scriptView) WearHeadroom(id int) float64        { return v.wear[id] }
func (v *scriptView) InMigrationWindow(id int, _ simclock.Time) bool {
	return v.inWindow[id]
}
func (v *scriptView) MigrationBacklog(id int) int { return v.backlog[id] }

// legacyLeastOutstanding is the pre-scorer struct, kept verbatim as the
// reference the scorer-backed rewrite must match decision-for-decision.
type legacyLeastOutstanding struct{ next int }

func (r *legacyLeastOutstanding) route(v *scriptView, now simclock.Time) int {
	n := v.Hosts()
	best, bestQ := -1, 0
	for i := 0; i < n; i++ {
		id := (r.next + i) % n
		if !v.Alive(id) {
			continue
		}
		q := v.OutstandingAt(id, now)
		if best < 0 || q < bestQ {
			best, bestQ = id, q
		}
	}
	if best >= 0 {
		r.next = (best + 1) % n
	}
	return best
}

func TestLeastOutstandingTieBreakMatchesLegacy(t *testing.T) {
	// The tie-break contract, pinned: ties break by rotating scan order —
	// the scan starts after the previous winner, only a strictly better
	// score displaces the incumbent, and the start advances past each
	// winner. The scorer-backed router must be bit-identical to the old
	// struct on every trajectory, ties included.
	const hosts = 5
	v := newScriptView(hosts)
	legacy := &legacyLeastOutstanding{}
	scorer := NewLeastOutstanding()
	q := workload.Query{}
	// A deterministic queue-depth script dense in ties: depths cycle over
	// a tiny alphabet so many hosts share the minimum on most steps.
	rng := uint64(0x5eed)
	for step := 0; step < 5000; step++ {
		for id := 0; id < hosts; id++ {
			rng = rng*6364136223846793005 + 1442695040888963407
			v.queues[id] = int((rng >> 59) % 3)
		}
		// Exercise dead-host skipping on part of the trajectory.
		v.dead = map[int]bool{}
		if step%7 == 3 {
			v.dead[int(rng>>61)%hosts] = true
		}
		now := simclock.Time(step)
		want := legacy.route(v, now)
		got := scorer.Route(q, now, v)
		if got != want {
			t.Fatalf("step %d (queues=%v dead=%v): scorer routed %d, legacy %d",
				step, v.queues, v.dead, got, want)
		}
	}
}

func TestRoundRobinMatchesRotation(t *testing.T) {
	// Zero scorers: the rotating tie-break alone is round-robin over
	// alive hosts in id order, including dead-host skipping.
	v := newScriptView(4)
	r := NewRoundRobin()
	q := workload.Query{}
	var got []int
	for step := 0; step < 8; step++ {
		got = append(got, r.Route(q, 0, v))
	}
	want := []int{0, 1, 2, 3, 0, 1, 2, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin sequence %v, want %v", got, want)
		}
	}
	v.dead[2] = true
	got = nil
	for step := 0; step < 6; step++ {
		got = append(got, r.Route(q, 0, v))
	}
	want = []int{0, 1, 3, 0, 1, 3}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("round-robin with dead host: %v, want %v", got, want)
		}
	}
	// All dead: no eligible host.
	for id := 0; id < 4; id++ {
		v.dead[id] = true
	}
	if id := r.Route(q, 0, v); id != -1 {
		t.Fatalf("all-dead fleet routed to %d", id)
	}
}

func TestStickyMatchesRingOwner(t *testing.T) {
	// The affinity-scorer router picks exactly the ring owner, with
	// dead-owner fallthrough via View.Alive.
	const hosts = 5
	v := newScriptView(hosts)
	r := NewSticky(hosts, 64)
	ring := NewRing(hosts, 64)
	for u := int64(0); u < 2000; u++ {
		q := workload.Query{UserID: u}
		want := ring.Owner(u, v.Alive)
		if got := r.Route(q, 0, v); got != want {
			t.Fatalf("user %d routed to %d, ring owner is %d", u, got, want)
		}
	}
	v.dead[2] = true
	for u := int64(0); u < 2000; u++ {
		q := workload.Query{UserID: u}
		want := ring.Owner(u, v.Alive)
		if got := r.Route(q, 0, v); got != want || got == 2 {
			t.Fatalf("user %d routed to %d after host 2 died, ring owner is %d", u, got, want)
		}
	}
}

func TestWeightedRouterValidation(t *testing.T) {
	if _, err := NewWeightedRouter("x", ScorerWeight{Scorer: nil, Weight: 1}); err == nil {
		t.Fatal("nil scorer should be rejected")
	}
	for _, w := range []float64{-1, math.NaN(), math.Inf(1)} {
		if _, err := NewWeightedRouter("x", ScorerWeight{Scorer: NewQueueScorer(), Weight: w}); err == nil {
			t.Fatalf("weight %g should be rejected", w)
		}
	}
	r, err := NewWeightedRouter("", ScorerWeight{Scorer: NewQueueScorer(), Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if r.Name() != "weighted" {
		t.Fatalf("default name %q", r.Name())
	}
	if !r.Feedback() {
		t.Fatal("queue scorer requires feedback")
	}
	lb, err := NewWeightedRouter("lb", ScorerWeight{Scorer: NewLoadBalanceScorer(), Weight: 1})
	if err != nil {
		t.Fatal(err)
	}
	if lb.Feedback() {
		t.Fatal("load-balance scorer reads only front-end state")
	}
}

func TestParseScorers(t *testing.T) {
	sws, err := ParseScorers("affinity=1, queue=0.4 ,migavoid=1.2", 3)
	if err != nil {
		t.Fatal(err)
	}
	if len(sws) != 3 || sws[0].Scorer.Name() != "affinity" || sws[1].Weight != 0.4 {
		t.Fatalf("parsed %+v", sws)
	}
	for _, bad := range []string{
		"", "queue", "queue=x", "queue=-1", "queue=Inf", "bogus=1", "queue=1,queue=2", " , ",
	} {
		if _, err := ParseScorers(bad, 3); err == nil {
			t.Fatalf("spec %q should be rejected", bad)
		}
	}
	if _, err := ParseScorers("bogus=1", 3); err == nil || !strings.Contains(err.Error(), "affinity") {
		t.Fatalf("unknown-scorer error should list known names, got %v", err)
	}
}

func TestMigrationAvoidScorerGating(t *testing.T) {
	// The avoidance scorer penalizes only hosts that are actually
	// migrating: full penalty inside a granted window with backlog, half
	// penalty for backlog waiting on a future window, none when idle.
	s := NewMigrationAvoidScorer()
	v := newScriptView(3)
	q := workload.Query{}
	if got := s.Score(q, 0, 0, v); got != 1 {
		t.Fatalf("idle host scored %g, want 1", got)
	}
	v.backlog[0] = 4
	v.inWindow[0] = true
	if got := s.Score(q, 0, 0, v); got != 0 {
		t.Fatalf("in-window migrating host scored %g, want 0", got)
	}
	v.inWindow[0] = false
	if got := s.Score(q, 0, 0, v); got != 0.5 {
		t.Fatalf("backlogged out-of-window host scored %g, want 0.5", got)
	}
}

func TestLoadBalanceScorerDeficit(t *testing.T) {
	s := NewLoadBalanceScorer()
	v := newScriptView(3)
	v.routed = []int{10, 4, 7}
	q := workload.Query{}
	if got := s.Score(q, 0, 1, v); got != 1 {
		t.Fatalf("least-loaded host scored %g, want 1", got)
	}
	if got := s.Score(q, 0, 0, v); got != 0 {
		t.Fatalf("most-loaded host scored %g, want 0", got)
	}
	if got := s.Score(q, 0, 2, v); got != 0.5 {
		t.Fatalf("mid host scored %g, want 0.5", got)
	}
	// Perfect balance scores everyone 1 (pure rotation).
	v.routed = []int{5, 5, 5}
	if got := s.Score(q, 0, 2, v); got != 1 {
		t.Fatalf("balanced host scored %g, want 1", got)
	}
}

func TestAdmitConfigValidation(t *testing.T) {
	if err := (AdmitConfig{Classes: []ClassAdmit{{RatePerSec: math.NaN()}}}).Validate(); err == nil {
		t.Fatal("NaN rate should be rejected")
	}
	if err := (AdmitConfig{Classes: []ClassAdmit{{RatePerSec: 10, Burst: -1}}}).Validate(); err == nil {
		t.Fatal("negative burst should be rejected")
	}
	if err := (AdmitConfig{Classes: []ClassAdmit{{RatePerSec: 10, Burst: 2, Queue: true}}}).Validate(); err != nil {
		t.Fatal(err)
	}
}

func TestParseAdmit(t *testing.T) {
	cfg, err := ParseAdmit("gold=3000:30, best-effort=2000:20:queue ,bulk=100:queue")
	if err != nil {
		t.Fatal(err)
	}
	if len(cfg.Classes) != 3 {
		t.Fatalf("parsed %d classes", len(cfg.Classes))
	}
	if c := cfg.Classes[0]; c.Name != "gold" || c.RatePerSec != 3000 || c.Burst != 30 || c.Queue {
		t.Fatalf("gold parsed as %+v", c)
	}
	if c := cfg.Classes[1]; c.Name != "best-effort" || c.Burst != 20 || !c.Queue {
		t.Fatalf("best-effort parsed as %+v", c)
	}
	if c := cfg.Classes[2]; c.RatePerSec != 100 || c.Burst != 0 || !c.Queue {
		t.Fatalf("two-field queue entry parsed as %+v", c)
	}
	for _, bad := range []string{
		"", "gold", "gold=", "=3000", "gold=x", "gold=NaN", "gold=1:-2",
		"gold=1:2:drop", "gold=1:2:3:4",
	} {
		if _, err := ParseAdmit(bad); err == nil {
			t.Fatalf("spec %q should be rejected", bad)
		}
	}
}

func TestTokenBucketAdmission(t *testing.T) {
	sec := simclock.Time(1e9)
	// Shed mode: burst of 2 admits the first two arrivals of a burst,
	// then sheds until tokens accrue.
	s := newAdmitState(AdmitConfig{Classes: []ClassAdmit{{RatePerSec: 1, Burst: 2}}})
	admits := 0
	for i := 0; i < 5; i++ {
		if _, _, ok := s.admit(0, sec); ok {
			admits++
		}
	}
	if admits != 2 {
		t.Fatalf("burst-2 bucket admitted %d of 5 simultaneous arrivals, want 2", admits)
	}
	// One second later exactly one token has accrued.
	if _, _, ok := s.admit(0, 2*sec); !ok {
		t.Fatal("refilled bucket should admit")
	}
	if _, _, ok := s.admit(0, 2*sec); ok {
		t.Fatal("drained bucket should shed")
	}
	// Queue mode delays admission to the next token instead of shedding.
	qs := newAdmitState(AdmitConfig{Classes: []ClassAdmit{{RatePerSec: 2, Burst: 1, Queue: true}}})
	if at, _, ok := qs.admit(0, sec); !ok || at != sec {
		t.Fatalf("first arrival should admit immediately, got at=%v ok=%t", at, ok)
	}
	at, _, ok := qs.admit(0, sec)
	if !ok || at != sec+sec/2 {
		t.Fatalf("queued arrival should admit half a second later, got at=%v ok=%t", at, ok)
	}
	// Unconfigured classes pass through untouched.
	if at, _, ok := qs.admit(5, sec); !ok || at != sec {
		t.Fatalf("unconfigured class should pass through, got at=%v ok=%t", at, ok)
	}
}

func TestQueueAdmissionBoundsSustainedRate(t *testing.T) {
	// Regression: queued admissions must serialize at 1/rate spacing even
	// when arrivals outpace the bucket. The broken version measured each
	// wait from the arrival's own timestamp, double-counting overlapping
	// accrual windows, so a 10/s bucket offered 1000/s admitted at ~909/s.
	const (
		rate = 10.0
		n    = 100
	)
	s := newAdmitState(AdmitConfig{Classes: []ClassAdmit{{RatePerSec: rate, Burst: 1, Queue: true}}})
	gap := simclock.Time(time.Millisecond) // 1000/s offered, 100x the rate
	var first, last simclock.Time
	prev := simclock.Time(-1)
	for i := 0; i < n; i++ {
		at, _, ok := s.admit(0, simclock.Time(i)*gap)
		if !ok {
			t.Fatalf("queue-mode bucket shed arrival %d", i)
		}
		if at < prev {
			t.Fatalf("admission times regressed: arrival %d admitted at %v after %v", i, at, prev)
		}
		prev = at
		if i == 0 {
			first = at
		}
		last = at
	}
	// n admissions from a burst-1 bucket need at least (n-1)/rate seconds
	// of accrual after the first: the admitted rate is bounded by the
	// configured rate regardless of the offered rate.
	minSpan := simclock.Time(float64(n-1) / rate * float64(time.Second))
	if span := last - first; span < minSpan {
		t.Fatalf("admitted %d queries over %v, want >= %v (rate %g/s not bounded)",
			n, time.Duration(span), time.Duration(minSpan), rate)
	}
}
