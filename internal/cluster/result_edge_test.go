package cluster

import (
	"testing"

	"sdm/internal/simclock"
)

// rec builds one completed record arriving at a, done at d.
func rec(user int64, a, d simclock.Time) record {
	return record{arrive: a, done: d, user: user, host: 0, ok: true}
}

func TestWindowizeEdges(t *testing.T) {
	recs := []record{rec(1, 0, 10), rec(2, 50, 70)}
	f := &Fleet{} // no meter: the derivation runs exactly as unmetered

	// Degenerate spans and window counts produce no series rather than
	// panicking or emitting zero-width windows.
	if w := f.deriveWindows(nil, 0, 100, 4); len(w) != 4 {
		t.Fatalf("empty records should still yield the window frames, got %d", len(w))
	}
	if w := f.deriveWindows(recs, 0, 100, 0); w != nil {
		t.Fatalf("n=0 should yield nil, got %v", w)
	}
	if w := f.deriveWindows(recs, 100, 100, 4); w != nil {
		t.Fatalf("end==start should yield nil, got %v", w)
	}
	if w := f.deriveWindows(recs, 100, 50, 4); w != nil {
		t.Fatalf("end<start should yield nil, got %v", w)
	}
	// A span narrower than the window count (integer width 0) is refused.
	if w := f.deriveWindows(recs, 0, 3, 4); w != nil {
		t.Fatalf("sub-resolution span should yield nil, got %v", w)
	}

	// A single record landing exactly on the last arrival: the final
	// window's half-open bound is widened to include it.
	one := []record{rec(1, 100, 110)}
	w := f.deriveWindows(one, 0, 100, 4)
	if len(w) != 4 {
		t.Fatalf("want 4 windows, got %d", len(w))
	}
	var total int
	for _, win := range w {
		total += win.Queries
	}
	if total != 1 || w[3].Queries != 1 {
		t.Fatalf("final arrival lost at the boundary: %+v", w)
	}
	// Interior bounds stay half-open: an arrival at a window edge counts
	// exactly once, in the later window.
	edge := []record{rec(1, 25, 30)}
	w = f.deriveWindows(edge, 0, 100, 4)
	if w[0].Queries != 0 || w[1].Queries != 1 {
		t.Fatalf("edge arrival double- or mis-counted: %+v", w[:2])
	}
}

func TestDeriveWindowsBounds(t *testing.T) {
	f := &Fleet{}
	recs := []record{
		rec(1, 10, 20),
		rec(2, 19, 40),
		rec(3, 20, 25),         // exactly at the interior edge — later window
		{arrive: 15, done: 30}, // !ok: dropped mid-run, never aggregated
		rec(4, 9, 12),          // below start: outside every window
	}
	w := f.deriveWindows(recs, 10, 30, 2)
	if w[0].Queries != 2 {
		t.Fatalf("[10,20) should hold exactly 2 records, got %d", w[0].Queries)
	}
	if w[1].Queries != 1 {
		t.Fatalf("[20,31) should hold exactly 1 record, got %d", w[1].Queries)
	}
	if w[0].Start != 10 || w[0].End != 20 {
		t.Fatalf("window bounds not preserved: %+v", w[0])
	}
	// Mean over the two included latencies (10ns and 21ns).
	if w[0].MeanLat <= 0 || w[0].MeanLat > 21e-9 {
		t.Fatalf("mean latency implausible: %v", w[0].MeanLat)
	}

	// An empty window keeps its zero stats (no NaNs from 0/0).
	empty := f.deriveWindows(recs, 500, 700, 2)
	if empty[0].Queries != 0 || empty[0].MeanLat != 0 || empty[0].SMPerQuery != 0 {
		t.Fatalf("empty window not zero-valued: %+v", empty[0])
	}
}

func TestAffectedSplitBoundary(t *testing.T) {
	rerouted := map[int64]struct{}{1: {}, 2: {}}
	recs := []record{
		rec(1, 10, 20),                  // pre
		rec(2, 50, 80),                  // arrival exactly at the failure instant — post
		rec(1, 60, 90),                  // post
		rec(3, 10, 15),                  // unaffected user: excluded from both sides
		{arrive: 55, done: 70, user: 2}, // !ok: excluded
	}
	pre, post := affectedSplit(recs, rerouted, 50)
	if pre.Queries != 1 {
		t.Fatalf("pre split got %d queries, want 1: %+v", pre.Queries, pre)
	}
	if post.Queries != 2 {
		t.Fatalf("post split got %d queries, want 2 (boundary arrival is post): %+v", post.Queries, post)
	}
	if pre.MeanLat <= 0 || post.MeanLat <= 0 {
		t.Fatalf("split means empty: pre=%v post=%v", pre.MeanLat, post.MeanLat)
	}

	// No rerouted users: both sides empty, means stay zero.
	pre, post = affectedSplit(recs, nil, 50)
	if pre.Queries != 0 || post.Queries != 0 || pre.MeanLat != 0 || post.MeanLat != 0 {
		t.Fatalf("empty rerouted set should yield zero splits: %+v / %+v", pre, post)
	}
}
