package cluster

import (
	"errors"
	"fmt"
	"io"
	"strconv"
	"time"

	"sdm/internal/metrics"
	"sdm/internal/simclock"
)

// MetricsConfig tunes the fleet metrics plane (SetMetrics).
type MetricsConfig struct {
	// Every is the live sampling width in virtual time: host- and
	// front-end instruments are marked at every crossed multiple of it
	// (absolute virtual-time boundaries, like coordinator windows, so the
	// series is a pure function of the deterministic admission sequence).
	// <= 0 selects 250ms.
	Every time.Duration
}

// meter is the fleet's metrics state: one live registry for the
// front-end, one per host, and a window registry the post-run replay
// plane marks at Result-window boundaries. nil *meter (metrics off) is
// the zero-overhead path — every method no-ops.
type meter struct {
	every simclock.Time
	fe    *metrics.Registry
	win   *metrics.Registry
	hosts []*metrics.Registry

	// Front-end live instruments, updated sequentially in the routing
	// loop and marked on crossed boundaries.
	routes   *metrics.Counter
	diverted *metrics.Counter
	offered  []*metrics.Counter // per SLO class, created on first sight
	shed     []*metrics.Counter
	delayed  []*metrics.Counter
	feNext   simclock.Time

	// Per-window instruments (replay plane): gauges the window
	// derivation marks at each window's End, so Result.Windows and the
	// exported series come from the same single-pass accumulation.
	winQueries *metrics.Gauge
	winMean    *metrics.Gauge
	winP50     *metrics.Gauge
	winP99     *metrics.Gauge
	winMax     *metrics.Gauge
	winHit     *metrics.Gauge
	winFM      *metrics.Gauge
	winRange   *metrics.Gauge
	winSMPerQ  *metrics.Gauge
	winSMWrite *metrics.Gauge

	// adapterDone guards against re-registering an adapter's instruments
	// when SetAdapters runs after SetMetrics (or repeatedly).
	adapterDone []bool
}

// memberMeter is one host's live sampling state, owned by the member's
// goroutine: admission times arrive non-decreasing (the lastPush clamp),
// so marking every crossed boundary before executing a job yields the
// same series at any worker count.
type memberMeter struct {
	reg   *metrics.Registry
	every simclock.Time
	next  simclock.Time
}

// tick marks every Every-boundary crossed up to virtual time t.
func (mm *memberMeter) tick(t simclock.Time) {
	if mm == nil || t < mm.next {
		return
	}
	if mm.next == 0 {
		// First job: start the series at the boundary at or below t.
		mm.next = t / mm.every * mm.every
	}
	for mm.next <= t {
		mm.reg.MarkAll(mm.next)
		mm.next += mm.every
	}
}

// SetMetrics attaches the metrics plane: every host's serving and store
// catalog (plus its adapter's, once adapters are set), the front-end's
// routing/admission counters, and the per-window replay instruments.
// Metered runs execute exactly the same virtual-time work as unmetered
// ones; WriteMetrics renders the most recent Run's series.
func (f *Fleet) SetMetrics(cfg MetricsConfig) error {
	if cfg.Every < 0 {
		return fmt.Errorf("cluster: negative metrics sampling width %v", cfg.Every)
	}
	if cfg.Every == 0 {
		cfg.Every = 250 * time.Millisecond
	}
	mt := &meter{
		every:       simclock.Time(cfg.Every),
		fe:          metrics.NewRegistry(-1),
		win:         metrics.NewRegistry(-1),
		adapterDone: make([]bool, len(f.members)),
	}
	mt.routes = mt.fe.NewCounter(metrics.Desc{Name: "sdm_fleet_routes", Help: "Queries routed to a host this run."})
	mt.diverted = mt.fe.NewCounter(metrics.Desc{Name: "sdm_fleet_diversions", Help: "Routes that moved a user off their previous host."})
	mt.winQueries = mt.win.NewGauge(metrics.Desc{Name: "sdm_fleet_window_queries", Help: "Completed queries arriving in the window."})
	mt.winMean = mt.win.NewGauge(metrics.Desc{Name: "sdm_fleet_window_mean_latency_seconds", Help: "Mean latency of the window's queries.", Unit: "seconds"})
	mt.winP50 = mt.win.NewGauge(metrics.Desc{Name: "sdm_fleet_window_p50_latency_seconds", Help: "p50 latency of the window's queries.", Unit: "seconds"})
	mt.winP99 = mt.win.NewGauge(metrics.Desc{Name: "sdm_fleet_window_p99_latency_seconds", Help: "p99 latency of the window's queries.", Unit: "seconds"})
	mt.winMax = mt.win.NewGauge(metrics.Desc{Name: "sdm_fleet_window_max_latency_seconds", Help: "Maximum latency of the window's queries.", Unit: "seconds"})
	mt.winHit = mt.win.NewGauge(metrics.Desc{Name: "sdm_fleet_window_hit_ratio", Help: "Row-cache hit rate over the window."})
	mt.winFM = mt.win.NewGauge(metrics.Desc{Name: "sdm_fleet_window_fm_served_ratio", Help: "FM-served share of store lookups over the window."})
	mt.winRange = mt.win.NewGauge(metrics.Desc{Name: "sdm_fleet_window_range_served_ratio", Help: "Share of lookups served by FM-resident row ranges over the window."})
	mt.winSMPerQ = mt.win.NewGauge(metrics.Desc{Name: "sdm_fleet_window_sm_reads_per_query", Help: "SM reads per query over the window."})
	mt.winSMWrite = mt.win.NewGauge(metrics.Desc{Name: "sdm_fleet_window_sm_write_bytes", Help: "SM media bytes written in the window.", Unit: "bytes"})
	for i, m := range f.members {
		reg := metrics.NewRegistry(i)
		m.host.RegisterMetrics(reg)
		mt.hosts = append(mt.hosts, reg)
		m.meter = &memberMeter{reg: reg, every: mt.every}
	}
	f.meter = mt
	f.installMeters()
	return nil
}

// installMeters registers adapter instruments on their hosts' registries.
// Mirrors installTracers: called from both SetMetrics and SetAdapters so
// the wiring is order-independent.
func (f *Fleet) installMeters() {
	if f.meter == nil {
		return
	}
	for i, a := range f.adapters {
		if a == nil || i >= len(f.meter.hosts) || f.meter.adapterDone[i] {
			continue
		}
		a.RegisterMetrics(f.meter.hosts[i])
		f.meter.adapterDone[i] = true
	}
}

// registries returns every registry in render order: front-end live,
// front-end windows, hosts 0..n-1.
func (mt *meter) registries() []*metrics.Registry {
	regs := make([]*metrics.Registry, 0, 2+len(mt.hosts))
	regs = append(regs, mt.fe, mt.win)
	return append(regs, mt.hosts...)
}

// reset clears the previous run's series at Run start: front-end
// counters restart from zero (they are per-run accounting, like
// Result), host registries keep their cumulative values but drop marks.
func (mt *meter) reset(members []*member) {
	if mt == nil {
		return
	}
	mt.fe.Reset()
	mt.win.Reset()
	mt.feNext = 0
	for i, reg := range mt.hosts {
		reg.ResetMarks()
		if mm := members[i].meter; mm != nil {
			mm.next = 0
		}
	}
}

// feTick marks the front-end live registry at every crossed boundary.
func (mt *meter) feTick(t simclock.Time) {
	if mt == nil || t < mt.feNext {
		return
	}
	if mt.feNext == 0 {
		mt.feNext = t / mt.every * mt.every
	}
	for mt.feNext <= t {
		mt.fe.MarkAll(mt.feNext)
		mt.feNext += mt.every
	}
}

// noteRoute counts a routing decision (and whether it diverted the user
// off their previous host).
func (mt *meter) noteRoute(seen bool, prev, chosen int) {
	if mt == nil {
		return
	}
	mt.routes.Inc()
	if seen && prev != chosen {
		mt.diverted.Inc()
	}
}

// classCounter lazily creates the class-labeled counter for class c.
// Classes appear in first-arrival order on the sequential front-end
// loop, so creation order is deterministic.
func (mt *meter) classCounter(set *[]*metrics.Counter, c int, name, help string) *metrics.Counter {
	for len(*set) <= c {
		i := len(*set)
		(*set) = append(*set, mt.fe.NewCounter(metrics.Desc{
			Name: name, Help: help,
			Labels: []metrics.Label{{Key: "class", Value: strconv.Itoa(i)}},
		}))
	}
	return (*set)[c]
}

func (mt *meter) noteOffered(c int) {
	if mt == nil || c < 0 {
		return
	}
	mt.classCounter(&mt.offered, c, "sdm_fleet_class_offered", "Arrivals per SLO class.").Inc()
}

func (mt *meter) noteShed(c int) {
	if mt == nil || c < 0 {
		return
	}
	mt.classCounter(&mt.shed, c, "sdm_fleet_class_shed", "Arrivals admission rejected per SLO class.").Inc()
}

func (mt *meter) noteDelayed(c int) {
	if mt == nil || c < 0 {
		return
	}
	mt.classCounter(&mt.delayed, c, "sdm_fleet_class_delayed", "Arrivals a queue-mode bucket admitted late per SLO class.").Inc()
}

// finalLive closes every live series with one mark at the run's end, so
// the exported stream always carries the final counter values.
func (mt *meter) finalLive(end simclock.Time) {
	if mt == nil {
		return
	}
	mt.fe.MarkAll(end)
	for _, reg := range mt.hosts {
		reg.MarkAll(end)
	}
}

// markWindow publishes one derived window onto the replay-plane gauges.
func (mt *meter) markWindow(w WindowStat, p50 float64) {
	if mt == nil {
		return
	}
	mt.winQueries.Set(float64(w.Queries))
	mt.winMean.Set(w.MeanLat)
	mt.winP50.Set(p50)
	mt.winP99.Set(w.P99)
	mt.winMax.Set(w.MaxLat)
	mt.winHit.Set(w.HitRate)
	mt.winFM.Set(w.FMRate)
	mt.winRange.Set(w.RangeRate)
	mt.winSMPerQ.Set(w.SMPerQuery)
	mt.winSMWrite.Set(float64(w.SMWriteBytes))
	mt.win.MarkAll(w.End)
}

// WriteMetrics renders the most recent Run's sampled series as
// OpenMetrics text. The bytes are identical at any HostWorkers setting.
func (f *Fleet) WriteMetrics(w io.Writer) error {
	if f.meter == nil {
		return errors.New("cluster: metrics not enabled (SetMetrics)")
	}
	return metrics.WriteOpenMetrics(w, f.meter.registries())
}

// WriteMetricsJSONL renders the identical sample stream as JSON lines.
func (f *Fleet) WriteMetricsJSONL(w io.Writer) error {
	if f.meter == nil {
		return errors.New("cluster: metrics not enabled (SetMetrics)")
	}
	return metrics.WriteJSONL(w, f.meter.registries())
}
