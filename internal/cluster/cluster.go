// Package cluster is a deterministic discrete-event fleet simulator: N
// serving.Host replicas behind a front-end router with pluggable user→host
// policies (round-robin, least-outstanding-queries, sticky consistent
// hashing). It is the serving-time realization of the paper's fleet-level
// story: Tables 8/9/11 size fleets by multiplying one host's QPS, and
// Fig. 4c shows sticky routing raises per-host temporal locality — here a
// single open-loop arrival process over one shared Zipf user population is
// split across live hosts, so routing policy directly moves per-host cache
// hit rates, tail latency and the achieved fleet QPS that power.Provision
// consumes. Failure scenarios kill a host mid-run, reroute its users via
// the consistent ring and expose the §A.4 cache-warmup latency spike.
//
// Determinism contract (mirroring the PR 1 query-engine discipline): hosts
// execute on real goroutines, but every virtual-time result is bit-identical
// for a fixed seed at any Config.HostWorkers setting. The front-end routes
// sequentially in arrival order; each host executes its queries FIFO; a
// worker semaphore only bounds wall-clock concurrency. Routers that read
// live host state (Feedback() == true) force a host sync before each
// decision, so their inputs are fully ordered too.
package cluster

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"strconv"
	"sync"
	"time"

	"sdm/internal/adapt"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/serving"
	"sdm/internal/simclock"
	"sdm/internal/workload"
	"sdm/internal/xrand"
)

// Config tunes a Fleet run.
type Config struct {
	// HostWorkers bounds how many hosts execute concurrently (OS
	// goroutines). Any value yields bit-identical virtual-time results; it
	// only changes wall-clock time. <= 0 selects one worker per host.
	HostWorkers int
	// Windows is the number of equal virtual-time windows in
	// Result.Windows (default 8).
	Windows int
	// Seed drives the fleet arrival process.
	Seed uint64
}

// Fleet runs N hosts behind one router and one shared-population workload.
type Fleet struct {
	cfg     Config
	router  Router
	gen     *workload.Generator
	rng     *xrand.RNG
	members []*member

	// lastHost tracks each user's most recent target, and rerouted the
	// users that moved off a failed host — both router-agnostic.
	lastHost map[int64]int
	rerouted map[int64]struct{}
	failedAt simclock.Time
	failed   int

	// routed counts the queries routed to each host this Run — the
	// front-end's own load ledger, exposed through View.Routed. Reused
	// (zeroed in place) across Runs, like records and the class ledgers
	// below: repeated Runs on one fleet allocate no per-run bookkeeping.
	routed []int

	// records is the per-query outcome buffer, grown once and reused by
	// every Run (aggregate consumes it before Run returns).
	records []record

	// Optional SLO serving layer: a migration-window coordinator and the
	// per-host adapters (both surfaced through the View for
	// migration-aware scorers), and front-end admission control.
	coord     *Coordinator
	adapters  []*adapt.Adapter
	admission *admitState

	// trace is the decision-trace state (SetTrace); nil when tracing is
	// off — the zero-overhead path.
	trace *tracer

	// meter is the metrics-plane state (SetMetrics); nil when metrics are
	// off — like trace, the nil path costs nothing and changes nothing.
	meter *meter

	// Per-Run per-class accounting: offered/shed/delayed counts and the
	// summed admission delay, indexed by SLO class.
	classOffered []int
	classShed    []int
	classDelayed []int
	classDelay   []float64

	// armed failure for the next Run (ScheduleFailure); -1 when disarmed.
	failHost int
	failFrac float64

	// armed drift drill for the next Run (ScheduleDrift).
	driftArmed bool
	driftFrac  float64
	driftAt    simclock.Time
}

// member serializes one host's execution: the front-end appends routed
// jobs under mu, a dedicated goroutine drains them FIFO, and completed
// counts let the front-end sync (for feedback routers and at run end).
type member struct {
	id    int
	host  *serving.Host
	alive bool

	// lastPush is the latest admission time pushed to this host. Hosts
	// require non-decreasing admission times; queued (delayed) admissions
	// can land behind an already-pushed later arrival, so pushes clamp to
	// it. Without admission control arrivals are already monotone and the
	// clamp never fires.
	lastPush simclock.Time

	// meter is this host's live metrics sampling state (nil = metrics
	// off); only the member goroutine touches it.
	meter *memberMeter

	mu        sync.Mutex
	cond      *sync.Cond
	jobs      []job
	submitted int
	completed int
	closed    bool
	err       error

	// free recycles the deep-copy buffers that carry arena-backed
	// generator queries to this member's goroutine: the front-end pops a
	// buffer per routed query (copyQuery), the goroutine returns it after
	// execution. Guarded by mu. hiIdx/hiPools/hiOps are the member's
	// high-water query sizes (front-end only): every buffer is Reserved
	// to the high-water mark, so a recycled buffer reallocates at most
	// once per new maximum instead of creeping toward the workload's
	// long-tail sizes buffer by buffer.
	free    []*workload.QueryBuf
	hiIdx   int
	hiPools int
	hiOps   int
}

type job struct {
	idx int
	at  simclock.Time
	// q owns the query's deep-copied storage for the duration of the job;
	// the member goroutine recycles it into the free list afterwards.
	q *workload.QueryBuf
}

// record is one query's outcome, written by the owning host goroutine at
// its private index and aggregated in index order after the run. Shed
// queries leave their record zero (ok == false) with only class set.
type record struct {
	arrive, done simclock.Time
	host         int
	user         int64
	class        int
	delta        serving.CacheSnapshot
	ok           bool
}

// New assembles a fleet from prebuilt hosts (each with its own store and
// virtual clock — hosts must not share mutable state) and a routing
// policy. Failure drills are armed separately with ScheduleFailure.
func New(hosts []*serving.Host, router Router, cfg Config) (*Fleet, error) {
	if len(hosts) == 0 {
		return nil, errors.New("cluster: fleet needs at least one host")
	}
	if router == nil {
		return nil, errors.New("cluster: fleet needs a router")
	}
	if cfg.Windows <= 0 {
		cfg.Windows = 8
	}
	f := &Fleet{
		cfg:      cfg,
		router:   router,
		rng:      xrand.New(cfg.Seed ^ 0xf1ee7),
		lastHost: make(map[int64]int),
		rerouted: make(map[int64]struct{}),
		failed:   -1,
		failHost: -1,
	}
	for i, h := range hosts {
		m := &member{id: i, host: h, alive: true}
		m.cond = sync.NewCond(&m.mu)
		f.members = append(f.members, m)
	}
	return f, nil
}

// SetGenerator installs the shared-population workload generator feeding
// the fleet's arrival process. Run requires one.
func (f *Fleet) SetGenerator(gen *workload.Generator) { f.gen = gen }

// SetCoordinator surfaces the fleet's migration-window schedule through
// the View (View.InMigrationWindow), so window-aware scorers can steer
// traffic off the replica that currently holds the migration grant. Pass
// the Coordinator returned by AttachCoordinated.
func (f *Fleet) SetCoordinator(c *Coordinator) { f.coord = c }

// SetAdapters surfaces the per-host adaptive-tiering backlogs through the
// View (View.MigrationBacklog); adapters[i] must belong to hosts[i] as
// returned by AttachAdaptive/AttachCoordinated (nil entries are hosts
// without adapters).
func (f *Fleet) SetAdapters(as []*adapt.Adapter) {
	f.adapters = as
	f.installTracers()
	f.installMeters()
}

// SetAdmission installs front-end token-bucket admission control: each
// arrival is charged against its SLO class's bucket before routing, and
// exhausted buckets shed or delay per the class policy. A zero-value
// config (no classes) admits everything.
func (f *Fleet) SetAdmission(cfg AdmitConfig) error {
	if err := cfg.Validate(); err != nil {
		return err
	}
	f.admission = newAdmitState(cfg)
	return nil
}

// ScheduleFailure arms a host kill for the next Run: host dies after frac
// of that run's queries have been routed (frac <= 0 selects 0.5), the
// router drops it, its users remap, and the survivors' cold caches
// produce the §A.4 warmup spike. Arm it after any warmup Runs so the
// spike is measured on steady-state caches. A host can only fail once per
// fleet lifetime.
func (f *Fleet) ScheduleFailure(host int, frac float64) error {
	if f.failed >= 0 {
		return fmt.Errorf("cluster: host %d already failed; one failure per fleet lifetime", f.failed)
	}
	if host < 0 || host >= len(f.members) {
		return fmt.Errorf("cluster: fail host %d of %d", host, len(f.members))
	}
	if len(f.members) < 2 {
		return errors.New("cluster: cannot fail the only host")
	}
	if frac <= 0 {
		frac = 0.5
	}
	f.failHost, f.failFrac = host, frac
	return nil
}

// ScheduleDrift arms a hot-set rotation for the next Run (the drift
// counterpart of ScheduleFailure): after frac of that run's queries have
// been routed (frac <= 0 selects 0.5), the shared generator's drift phase
// is forced forward one rotation, so the hot user cohort, the spotlight
// tables and every entity-keyed row sequence shift fleet-wide between one
// arrival and the next. Static placements stay degraded afterwards;
// adaptive hosts (AttachAdaptive) re-converge. Unlike failures, drift
// drills may be re-armed run after run.
func (f *Fleet) ScheduleDrift(frac float64) error {
	if frac > 1 {
		return fmt.Errorf("cluster: drift fraction %g > 1", frac)
	}
	if frac <= 0 {
		frac = 0.5
	}
	f.driftArmed, f.driftFrac = true, frac
	return nil
}

// fleetView adapts the fleet to the router's View.
type fleetView struct{ f *Fleet }

func (v fleetView) Hosts() int { return len(v.f.members) }

func (v fleetView) Alive(id int) bool {
	return id >= 0 && id < len(v.f.members) && v.f.members[id].alive
}

func (v fleetView) OutstandingAt(id int, t simclock.Time) int {
	// Only reached from Feedback() routers, after the fleet synced every
	// member — the host is idle, so the read is race-free.
	return v.f.members[id].host.OutstandingAt(t)
}

func (v fleetView) LastHost(user int64) int {
	if id, ok := v.f.lastHost[user]; ok {
		return id
	}
	return -1
}

func (v fleetView) Routed(id int) int {
	if id < 0 || id >= len(v.f.routed) {
		return 0
	}
	return v.f.routed[id]
}

func (v fleetView) Snapshot(id int) serving.CacheSnapshot {
	// Feedback-only, like OutstandingAt: valid after a fleet sync.
	return v.f.members[id].host.Snapshot()
}

func (v fleetView) FMServedRate(id int) float64 {
	return v.Snapshot(id).FMServedRate()
}

func (v fleetView) WearHeadroom(id int) float64 {
	s := v.f.members[id].host.Store()
	if s == nil {
		return 1
	}
	return s.Wear().LifeFrac()
}

func (v fleetView) InMigrationWindow(id int, t simclock.Time) bool {
	if v.f.coord == nil {
		// No coordinator gates migration IO: a migrating host may issue
		// at any instant, i.e. it is always "in window".
		return true
	}
	w := v.f.coord.WindowFor(id, t)
	return w.Open <= t && t < w.Close
}

func (v fleetView) MigrationBacklog(id int) int {
	if id < 0 || id >= len(v.f.adapters) || v.f.adapters[id] == nil {
		return 0
	}
	return v.f.adapters[id].PendingMigrations()
}

// Run offers n queries open-loop at the target fleet QPS (Poisson
// arrivals), routes each to a host, and aggregates per-host and fleet-wide
// results. Repeated Runs continue in virtual time with warm caches.
func (f *Fleet) Run(qps float64, n int) (*Result, error) {
	if qps <= 0 || n <= 0 {
		return nil, fmt.Errorf("cluster: bad run parameters qps=%g n=%d", qps, n)
	}
	if f.gen == nil {
		return nil, errors.New("cluster: no generator installed (SetGenerator)")
	}

	workers := f.cfg.HostWorkers
	if workers <= 0 {
		workers = len(f.members)
	}
	sem := make(chan struct{}, workers)
	if cap(f.records) < n {
		f.records = make([]record, n)
	}
	records := f.records[:n]
	for i := range records {
		records[i] = record{}
	}
	var wg sync.WaitGroup
	for _, m := range f.members {
		m.mu.Lock()
		m.closed = false
		m.mu.Unlock()
		wg.Add(1)
		go func(m *member) {
			defer wg.Done()
			m.loop(sem, records)
		}(m)
	}

	start := f.members[0].host.Ready()
	for _, m := range f.members[1:] {
		if r := m.host.Ready(); r > start {
			start = r
		}
	}

	failIdx := -1
	if f.failHost >= 0 && f.failed < 0 {
		failIdx = int(f.failFrac * float64(n))
		if failIdx >= n {
			failIdx = n - 1
		}
	}
	driftIdx := -1
	if f.driftArmed {
		driftIdx = int(f.driftFrac * float64(n))
		if driftIdx >= n {
			driftIdx = n - 1
		}
		f.driftArmed = false
	}

	if cap(f.routed) < len(f.members) {
		f.routed = make([]int, len(f.members))
	} else {
		f.routed = f.routed[:len(f.members)]
		for i := range f.routed {
			f.routed[i] = 0
		}
	}
	f.classOffered, f.classShed = f.classOffered[:0], f.classShed[:0]
	f.classDelayed, f.classDelay = f.classDelayed[:0], f.classDelay[:0]
	if f.trace != nil {
		f.trace.reset()
	}
	f.meter.reset(f.members)
	// Tracing reads host state (Outstanding) at every decision, so it
	// forces the same pre-decision sync a feedback router does. The sync
	// costs wall-clock only; virtual-time results are unchanged.
	needSync := f.router.Feedback() || f.trace != nil

	// Wall-clock profiling: the front-end goroutine carries the
	// route+admit phase label for the duration of the run; host workers
	// label themselves exec (member.loop) and adapters migrate.
	pprofCtx := pprof.WithLabels(context.Background(), pprof.Labels("sdm_phase", "route+admit"))
	pprof.SetGoroutineLabels(pprofCtx)
	defer pprof.SetGoroutineLabels(context.Background())

	view := fleetView{f}
	t := start
	fired := false
	drifted := false
	var runErr error
	for i := 0; i < n; i++ {
		t += simclock.Time(f.rng.Exp(1 / qps * float64(time.Second)))
		f.meter.feTick(t)
		if i == driftIdx {
			// The rotation lands between arrivals: query i is the first
			// of the new regime.
			f.gen.ForceRotation()
			f.driftAt = t
			drifted = true
		}
		// NextShared reuses the generator's arena: the query is only valid
		// until the next draw, so the push below deep-copies it into a
		// member-owned recycled buffer before the goroutine consumes it.
		// Everything the front-end itself touches (UserID, Class) is a
		// value field, safe without a copy.
		q := f.gen.NextShared()
		if i == failIdx {
			if runErr = f.syncAll(); runErr != nil {
				break
			}
			f.members[f.failHost].alive = false
			f.failed = f.failHost
			f.failedAt = t
			fired = true
		}
		f.noteOffered(q.Class)
		at := t
		if f.admission != nil {
			admitAt, tokens, ok := f.admission.admit(q.Class, t)
			if f.trace != nil {
				f.traceAdmit(t, q.Class, tokens, admitAt, ok)
			}
			if !ok {
				f.noteShed(q.Class)
				records[i] = record{user: q.UserID, class: q.Class}
				continue
			}
			if admitAt > t {
				f.noteDelayed(q.Class, (admitAt - t).Seconds())
			}
			at = admitAt
		}
		if needSync {
			if runErr = f.syncAll(); runErr != nil {
				break
			}
		}
		var id int
		if f.trace != nil {
			id = f.traceRoute(i, q, at, view)
		} else {
			id = f.router.Route(q, at, view)
		}
		if id < 0 || id >= len(f.members) || !f.members[id].alive {
			runErr = fmt.Errorf("cluster: %s routed query %d to unavailable host %d", f.router.Name(), i, id)
			break
		}
		last, seen := f.lastHost[q.UserID]
		if seen && f.failed >= 0 && last == f.failed && id != f.failed {
			f.rerouted[q.UserID] = struct{}{}
		}
		f.meter.noteRoute(seen, last, id)
		f.lastHost[q.UserID] = id
		f.routed[id]++
		m := f.members[id]
		if at < m.lastPush {
			// Hosts require non-decreasing admission times; a queued
			// admission can land behind this host's latest push.
			at = m.lastPush
		}
		m.lastPush = at
		m.push(job{idx: i, at: at, q: m.copyQuery(q)})
	}
	if err := f.syncAll(); runErr == nil {
		runErr = err
	}
	for _, m := range f.members {
		m.mu.Lock()
		m.closed = true
		m.cond.Broadcast()
		m.mu.Unlock()
	}
	wg.Wait()
	if runErr != nil {
		return nil, runErr
	}
	if f.trace != nil {
		f.traceFinalize(records)
	}
	return f.aggregate(qps, start, t, records, fired, drifted), nil
}

// growClass extends the per-class counters to cover class c.
func growClass(xs []int, c int) []int {
	for len(xs) <= c {
		xs = append(xs, 0)
	}
	return xs
}

func (f *Fleet) noteOffered(c int) {
	if c < 0 {
		return
	}
	f.meter.noteOffered(c)
	f.classOffered = growClass(f.classOffered, c)
	f.classOffered[c]++
}

func (f *Fleet) noteShed(c int) {
	if c < 0 {
		return
	}
	f.meter.noteShed(c)
	f.classShed = growClass(f.classShed, c)
	f.classShed[c]++
}

func (f *Fleet) noteDelayed(c int, seconds float64) {
	if c < 0 {
		return
	}
	f.meter.noteDelayed(c)
	f.classDelayed = growClass(f.classDelayed, c)
	f.classDelayed[c]++
	for len(f.classDelay) <= c {
		f.classDelay = append(f.classDelay, 0)
	}
	f.classDelay[c] += seconds
}

// pushBound caps a member's queued jobs: the front-end stalls once a
// member is this far behind, bounding in-flight deep-copy buffers (so
// free-list reuse stays effective and fleet memory stays flat at any run
// length). Purely wall-clock backpressure — every job's admission time is
// fixed before the push, so virtual-time results are unchanged.
const pushBound = 256

// push appends a routed job to the member's FIFO queue, waiting while the
// queue is at pushBound.
func (m *member) push(j job) {
	m.mu.Lock()
	for len(m.jobs) >= pushBound && !m.closed && m.err == nil {
		m.cond.Wait()
	}
	m.jobs = append(m.jobs, j)
	m.submitted++
	m.cond.Broadcast()
	m.mu.Unlock()
}

// copyQuery deep-copies the generator's arena-backed query into a recycled
// member-owned buffer. The front-end overwrites the arena on its next draw,
// while the member goroutine consumes the copy asynchronously; the buffer
// returns to the free list once the job is executed.
func (m *member) copyQuery(q workload.Query) *workload.QueryBuf {
	ni, np, no := q.Size()
	if ni > m.hiIdx {
		m.hiIdx = ni
	}
	if np > m.hiPools {
		m.hiPools = np
	}
	if no > m.hiOps {
		m.hiOps = no
	}
	m.mu.Lock()
	var b *workload.QueryBuf
	if n := len(m.free); n > 0 {
		b = m.free[n-1]
		m.free[n-1] = nil
		m.free = m.free[:n-1]
	}
	m.mu.Unlock()
	if b == nil {
		b = new(workload.QueryBuf)
	}
	b.Reserve(m.hiIdx, m.hiPools, m.hiOps)
	b.CopyFrom(q)
	return b
}

// loop is the member's host goroutine: drain queued jobs FIFO in batches,
// execute them under the fleet-wide worker semaphore, publish each record
// at its query index. Batch-draining keeps mutex traffic at one
// lock/unlock pair per burst instead of per query; execution order and
// virtual-time results are identical either way.
func (m *member) loop(sem chan struct{}, records []record) {
	pprof.SetGoroutineLabels(pprof.WithLabels(context.Background(),
		pprof.Labels("sdm_phase", "exec", "sdm_host", strconv.Itoa(m.id))))
	var run []job
	for {
		m.mu.Lock()
		for len(m.jobs) == 0 && !m.closed {
			m.cond.Wait()
		}
		if len(m.jobs) == 0 {
			m.mu.Unlock()
			return
		}
		run = append(run[:0], m.jobs...)
		m.jobs = m.jobs[:0]
		failed := m.err != nil
		// Wake a front-end stalled on pushBound: the queue just emptied.
		m.cond.Broadcast()
		m.mu.Unlock()

		var firstErr error
		if !failed {
			sem <- struct{}{}
			for k := range run {
				j := &run[k]
				// Live metrics: mark every sampling boundary crossed
				// before this job. Admission times are non-decreasing per
				// host, so the series depends only on the deterministic
				// job sequence.
				m.meter.tick(j.at)
				before := m.host.Snapshot()
				done, err := m.host.Admit(j.at, j.q.Q)
				if err != nil {
					// Later jobs are skipped; their records stay zero,
					// exactly as if they had arrived after the error.
					firstErr = err
					break
				}
				records[j.idx] = record{
					arrive: j.at,
					done:   done,
					host:   m.id,
					user:   j.q.Q.UserID,
					class:  j.q.Q.Class,
					delta:  m.host.Snapshot().Sub(before),
					ok:     true,
				}
			}
			<-sem
		}

		m.mu.Lock()
		m.completed += len(run)
		if firstErr != nil && m.err == nil {
			m.err = firstErr
		}
		for k := range run {
			m.free = append(m.free, run[k].q)
			run[k].q = nil
		}
		m.cond.Broadcast()
		m.mu.Unlock()
	}
}

// syncAll blocks until every member has executed all submitted jobs; the
// mutex handoff makes each host's state visible to the front-end.
func (f *Fleet) syncAll() error {
	for _, m := range f.members {
		m.mu.Lock()
		for m.completed < m.submitted {
			m.cond.Wait()
		}
		err := m.err
		m.mu.Unlock()
		if err != nil {
			return fmt.Errorf("cluster: host %d: %w", m.id, err)
		}
	}
	return nil
}

// HostSet builds n identical SDM-backed serving hosts over one set of
// materialized tables: each host gets its own store, virtual clock and
// derived seed (hosts never share mutable state the determinism contract
// cares about). SDM-backed sets open host 0 in full and the rest as
// replicas sharing its post-load media images copy-on-write
// (core.OpenReplica) — the stored bytes are identical across hosts, so
// only load timing is replayed per host, cutting fleet construction from
// O(n·model) to O(model) allocations. A nil store config builds flat
// DRAM-baseline hosts.
func HostSet(inst *model.Instance, tables []*embedding.Table, n int, scfg *core.Config, hcfg serving.Config) ([]*serving.Host, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cluster: host set of %d", n)
	}
	hosts := make([]*serving.Host, n)
	errs := make([]error, n)
	clks := make([]simclock.Clock, n)
	var donor *core.Store
	if scfg != nil {
		sc := *scfg
		sc.Seed = scfg.Seed // host 0's derived seed (i = 0)
		s, err := core.Open(inst, tables, sc, &clks[0])
		if err != nil {
			return nil, fmt.Errorf("cluster: host set: %w", err)
		}
		donor = s
	}
	var wg sync.WaitGroup
	for i := range hosts {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			clk := &clks[i]
			var store *core.Store
			if scfg != nil {
				if i == 0 {
					store = donor
				} else {
					sc := *scfg
					sc.Seed = scfg.Seed + uint64(i)*0x9e3779b9
					s, err := core.OpenReplica(donor, sc, clk)
					if err != nil {
						errs[i] = err
						return
					}
					store = s
				}
			}
			hc := hcfg
			hc.Seed = hcfg.Seed + uint64(i)
			h, err := serving.NewHost(inst, store, tables, nil, clk, hc)
			if err != nil {
				errs[i] = err
				return
			}
			hosts[i] = h
		}(i)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("cluster: host set: %w", err)
		}
	}
	return hosts, nil
}
