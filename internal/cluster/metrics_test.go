package cluster

import (
	"bytes"
	"fmt"
	"strconv"
	"strings"
	"testing"
	"time"
)

func TestMetricsDeterministicAcrossWorkers(t *testing.T) {
	// The metrics-plane determinism contract: live instruments mark on
	// absolute virtual-time boundaries along the deterministic admission
	// sequence, window gauges replay from the same record derivation as
	// Result.Windows, and rendering folds per-emitter samples by
	// (time, host, labels) — so the exported bytes (both formats) are
	// identical at any HostWorkers count. Runs under -race in CI.
	in, tables := adaptiveFixture(t)
	var texts, jsons [][]byte
	var keys []string
	for _, workers := range []int{1, 4} {
		f, adapters := sloFleet(t, in, tables, 3, workers)
		if err := f.SetMetrics(MetricsConfig{}); err != nil {
			t.Fatal(err)
		}
		if _, err := f.Run(300, 600); err != nil {
			t.Fatal(err)
		}
		if err := f.ScheduleDrift(0.5); err != nil {
			t.Fatal(err)
		}
		res, err := f.Run(300, 900)
		if err != nil {
			t.Fatal(err)
		}
		var om, jl bytes.Buffer
		if err := f.WriteMetrics(&om); err != nil {
			t.Fatal(err)
		}
		if err := f.WriteMetricsJSONL(&jl); err != nil {
			t.Fatal(err)
		}
		texts = append(texts, om.Bytes())
		jsons = append(jsons, jl.Bytes())
		keys = append(keys, resultKey(t, res)+AdapterStats(adapters).String())

		if workers == 1 {
			out := om.String()
			// The stack must exercise every layer of the catalog: routing,
			// admission classes, host serving, store cache, and the
			// adapter's migration planner.
			for _, family := range []string{
				"sdm_fleet_routes", "sdm_fleet_diversions",
				"sdm_fleet_class_offered", "sdm_fleet_window_p99_latency_seconds",
				"sdm_host_admitted_queries", "sdm_host_fm_served_ratio",
				"sdm_cache_hits", "sdm_device_media_bytes",
				"sdm_adapt_evals", "sdm_adapt_planned_moves",
			} {
				if !strings.Contains(out, "# TYPE "+family+" ") {
					t.Fatalf("family %s missing from export", family)
				}
			}
			if !strings.HasSuffix(out, "# EOF\n") {
				t.Fatal("OpenMetrics stream not terminated with # EOF")
			}
			// Replay plane: exactly one mark per configured window (the
			// window gauges are front-end series, rendered label-less).
			if got := strings.Count(out, "\nsdm_fleet_window_queries "); got != 8 {
				t.Fatalf("want 8 window marks, got %d", got)
			}
		}
	}
	if !bytes.Equal(texts[0], texts[1]) {
		t.Fatal("OpenMetrics bytes diverged across HostWorkers counts")
	}
	if !bytes.Equal(jsons[0], jsons[1]) {
		t.Fatal("JSONL bytes diverged across HostWorkers counts")
	}
	if keys[0] != keys[1] {
		t.Fatal("metered results diverged across HostWorkers counts")
	}
}

func TestMetricsOffMatchesUnmetered(t *testing.T) {
	// Metering must never perturb virtual time: instruments observe the
	// existing counters and sampling happens on paths that already run, so
	// a metered run's results are bit-identical to an unmetered run's.
	in, tables := adaptiveFixture(t)
	run := func(meter bool) string {
		f, adapters := sloFleet(t, in, tables, 3, 2)
		if meter {
			if err := f.SetMetrics(MetricsConfig{Every: 100 * time.Millisecond}); err != nil {
				t.Fatal(err)
			}
		}
		res, err := f.Run(300, 600)
		if err != nil {
			t.Fatal(err)
		}
		return resultKey(t, res) + AdapterStats(adapters).String()
	}
	unmetered := run(false)
	metered := run(true)
	if unmetered != metered {
		t.Fatalf("metering perturbed the run:\n%s\nvs\n%s", unmetered, metered)
	}
}

func TestWriteMetricsRequiresSetMetrics(t *testing.T) {
	in, tables := fixture(t)
	f := testFleet(t, in, tables, 3, NewSticky(3, 64), Config{Seed: 5})
	if err := f.WriteMetrics(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteMetrics should fail with metrics off")
	}
	if err := f.WriteMetricsJSONL(&bytes.Buffer{}); err == nil {
		t.Fatal("WriteMetricsJSONL should fail with metrics off")
	}
	if err := f.SetMetrics(MetricsConfig{Every: -time.Second}); err == nil {
		t.Fatal("negative sampling width should be rejected")
	}
}

func TestMetricsWindowAccounting(t *testing.T) {
	// The replay plane and Result.Windows come from one derivation: every
	// window (including the widened final one) gets exactly one mark at
	// its End, and the window query counts sum to the run's completed
	// queries — no arrival lost at a boundary.
	in, tables := fixture(t)
	f := testFleet(t, in, tables, 3, NewSticky(3, 64), Config{Seed: 5, Windows: 6})
	if err := f.SetMetrics(MetricsConfig{}); err != nil {
		t.Fatal(err)
	}
	res, err := f.Run(500, 300)
	if err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	out := buf.String()
	var marks, sum int
	var lastTime string
	for _, l := range strings.Split(out, "\n") {
		if !strings.HasPrefix(l, "sdm_fleet_window_queries ") {
			continue
		}
		fields := strings.Fields(l)
		marks++
		v, err := strconv.Atoi(fields[1])
		if err != nil {
			t.Fatalf("bad window sample %q: %v", l, err)
		}
		sum += v
		lastTime = fields[2]
	}
	if marks != len(res.Windows) || marks != 6 {
		t.Fatalf("got %d window marks, want %d", marks, len(res.Windows))
	}
	if got := int(res.Latency.Count()); sum != got {
		t.Fatalf("window query samples sum to %d, run completed %d", sum, got)
	}
	// The final mark sits at the widened last window's End.
	last := res.Windows[len(res.Windows)-1]
	ns := int64(last.End)
	if want := fmt.Sprintf("%d.%09d", ns/1e9, ns%1e9); lastTime != want {
		t.Fatalf("final window mark at %s, want %s", lastTime, want)
	}

	// Degenerate span: the derivation refuses (end == start) and adds no
	// marks — the export is unchanged.
	if w := f.deriveWindows(nil, 5, 5, 4); w != nil {
		t.Fatalf("degenerate span should derive no windows, got %v", w)
	}
	var buf2 bytes.Buffer
	if err := f.WriteMetrics(&buf2); err != nil {
		t.Fatal(err)
	}
	if buf2.String() != out {
		t.Fatal("degenerate derivation perturbed the export")
	}
}

func TestMetricsRerunRendersLatestRun(t *testing.T) {
	// Per-run front-end counters reset at Run start, so after a second Run
	// the exported route count matches that run's query count alone.
	in, tables := fixture(t)
	f := testFleet(t, in, tables, 3, NewSticky(3, 64), Config{Seed: 5, Windows: 4})
	if err := f.SetMetrics(MetricsConfig{}); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(500, 300); err != nil {
		t.Fatal(err)
	}
	if _, err := f.Run(500, 200); err != nil {
		t.Fatal(err)
	}
	var buf bytes.Buffer
	if err := f.WriteMetrics(&buf); err != nil {
		t.Fatal(err)
	}
	// The final live mark carries the last run's total.
	lines := strings.Split(buf.String(), "\n")
	var last string
	for _, l := range lines {
		if strings.HasPrefix(l, "sdm_fleet_routes_total ") {
			last = l
		}
	}
	if last == "" {
		t.Fatal("no route samples rendered")
	}
	if fields := strings.Fields(last); fields[1] != "200" {
		t.Fatalf("final route count %s, want 200 (second run only): %q", fields[1], last)
	}
}

func TestMetricsDisabledPathAllocsNothing(t *testing.T) {
	// Metrics off is a nil *meter / nil *memberMeter: every hook returns
	// before touching its receiver, so the hot paths allocate nothing —
	// the guarantee behind the unmetered routing benchmark staying flat.
	var mt *meter
	var mm *memberMeter
	if got := testing.AllocsPerRun(100, func() {
		mm.tick(1000)
		mt.feTick(1000)
		mt.noteRoute(true, 0, 1)
		mt.noteOffered(1)
		mt.noteShed(0)
		mt.noteDelayed(1)
		mt.finalLive(2000)
		mt.markWindow(WindowStat{}, 0)
		mt.reset(nil)
	}); got != 0 {
		t.Fatalf("disabled metrics path allocates %.1f per run, want 0", got)
	}
}
