package experiments

import (
	"fmt"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/core"
	"sdm/internal/simclock"
	"sdm/internal/stats"
	"sdm/internal/uring"
)

// Tab1 prints the SM technology catalog (Table 1).
func Tab1(sc Scale) (Result, error) {
	r := &tableResult{
		id:     "tab1",
		header: fmt.Sprintf("%-22s %8s %10s %6s %7s %7s %8s", "Technology", "IOPS(M)", "Latency", "DWPD", "Gran", "Cost", "Sourcing"),
	}
	for _, s := range blockdev.Catalog() {
		r.rows = append(r.rows, fmt.Sprintf("%-22s %8.1f %10v %6.0f %7d %7.3f %8d",
			s.Tech, s.MaxIOPS/1e6, s.MediaLatency, s.EnduranceDWPD,
			s.AccessGranularity, s.CostPerGBRelDRAM, s.Sourcing))
	}
	return r, nil
}

// Fig3Point is one point of a device profile curve.
type Fig3Point struct {
	OfferedIOPS  float64
	AchievedIOPS float64
	MeanLatency  time.Duration
	P99Latency   time.Duration
}

// Fig3Result is the device IOPS/latency profile of Fig. 3.
type Fig3Result struct {
	tableResult
	Curves map[string][]Fig3Point
}

// Fig3 profiles Nand Flash and Optane SSD with 20-lookup IO batches across
// an offered-load sweep, reproducing Fig. 3's curves: Optane sustains ~8×
// the IOPS at ~1/9 the latency.
func Fig3(sc Scale) (Result, error) {
	res := &Fig3Result{Curves: make(map[string][]Fig3Point)}
	res.id = "fig3"
	res.header = fmt.Sprintf("%-20s %12s %12s %12s %12s", "device", "offered", "achieved", "mean_lat", "p99_lat")

	const lookupsPerIO = 20 // "we benchmark each device with average of 20 lookups per IO"
	for _, tech := range []blockdev.Technology{blockdev.NandFlash, blockdev.OptaneSSD} {
		spec := blockdev.Spec(tech)
		for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.85, 0.95} {
			offered := frac * spec.MaxIOPS
			pt, err := profileDevice(tech, offered, sc.Queries*10, lookupsPerIO, sc.Seed)
			if err != nil {
				return nil, err
			}
			res.Curves[spec.Tech.String()] = append(res.Curves[spec.Tech.String()], pt)
			res.rows = append(res.rows, fmt.Sprintf("%-20s %12.0f %12.0f %12v %12v",
				spec.Tech, pt.OfferedIOPS, pt.AchievedIOPS, pt.MeanLatency.Round(time.Microsecond), pt.P99Latency.Round(time.Microsecond)))
		}
	}
	res.notes = append(res.notes,
		"paper: Optane ≈4 MIOPS at O(10µs); Nand ≈0.5 MIOPS at O(100µs) with earlier knee")
	return res, nil
}

// profileDevice offers `ios` IOs at a fixed rate and measures latency. The
// latency reported is for a batch of lookupsPerIO lookups, as in Fig. 3.
func profileDevice(tech blockdev.Technology, iops float64, ios, lookupsPerIO int, seed uint64) (Fig3Point, error) {
	var clk simclock.Clock
	dev := blockdev.New(blockdev.Spec(tech), 1<<26, &clk, seed)
	ring := uring.New(dev, &clk, uring.Config{SGL: true})
	lat := stats.NewHistogram()
	var last simclock.Time
	buf := make([]byte, 128)
	interIO := simclock.Time(float64(time.Second) / iops * float64(lookupsPerIO))

	var issue func(i int, at simclock.Time)
	issue = func(i int, at simclock.Time) {
		start := at
		remaining := lookupsPerIO
		var batchDone simclock.Time
		for k := 0; k < lookupsPerIO; k++ {
			off := int64((i*lookupsPerIO+k)%4096) * 4096
			req := &uring.Request{Buf: buf, Off: off, OnComplete: func(now simclock.Time, err error) {
				if now > batchDone {
					batchDone = now
				}
				remaining--
				if remaining == 0 {
					lat.Observe((batchDone - start).Seconds())
					if batchDone > last {
						last = batchDone
					}
				}
			}}
			if err := ring.Submit(req); err != nil {
				return
			}
		}
	}
	n := ios / lookupsPerIO
	if n < 50 {
		n = 50
	}
	for i := 0; i < n; i++ {
		at := simclock.Time(i) * interIO
		i := i
		clk.Schedule(at, func(now simclock.Time) { issue(i, now) })
	}
	if err := clk.Run(0); err != nil {
		return Fig3Point{}, err
	}
	achieved := float64(n*lookupsPerIO) / last.Seconds()
	return Fig3Point{
		OfferedIOPS:  iops,
		AchievedIOPS: achieved,
		MeanLatency:  time.Duration(lat.Mean() * float64(time.Second)),
		P99Latency:   time.Duration(lat.P99() * float64(time.Second)),
	}, nil
}

// SGLResult quantifies §4.1.1's sub-block read savings.
type SGLResult struct {
	tableResult
	BusSavings     float64
	LatencySaving  float64
	FMTrafficRatio float64
}

// SGL measures bus-byte savings, device latency savings, and the FM
// traffic reduction of SGL sub-block reads on the full SDM path.
func SGL(sc Scale) (Result, error) {
	block, err := runStoreTrace(sc, core.Config{Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	sgl, err := runStoreTrace(sc, core.Config{Seed: sc.Seed, Ring: uring.Config{SGL: true}})
	if err != nil {
		return nil, err
	}
	res := &SGLResult{
		BusSavings:     sgl.dev.BusSavings(),
		LatencySaving:  1 - sgl.meanIOLatency.Seconds()/block.meanIOLatency.Seconds(),
		FMTrafficRatio: float64(block.store.FMBytesMoved) / float64(sgl.store.FMBytesMoved),
	}
	res.id = "sgl"
	res.rows = []string{
		fmt.Sprintf("bus bandwidth saved by SGL:      %5.1f%%   (paper: ~75%%, higher here: 128B rows on 4KB media)", res.BusSavings*100),
		fmt.Sprintf("device read latency saved:       %5.1f%%   (paper: 3-5%%)", res.LatencySaving*100),
		fmt.Sprintf("FM traffic block/SGL ratio:      %5.2fx   (paper: >2x FM BW without SGL)", res.FMTrafficRatio),
	}
	return res, nil
}

// MmapResult quantifies §4.1's mmap-vs-DIRECT_IO comparison.
type MmapResult struct {
	tableResult
	LatencyRatio float64
}

// Mmap compares the rejected mmap design against DIRECT_IO at the access
// level, matching the paper's claim: a 128 B random read with no spatial
// locality costs ~3× more through mmap ("reading in and maintaining 4KB
// into memory for a 128B request"), and the page cache wastes FM by
// holding whole pages.
func Mmap(sc Scale) (Result, error) {
	var clk simclock.Clock
	spec := blockdev.Spec(blockdev.NandFlash)
	devA := blockdev.New(spec, 1<<26, &clk, sc.Seed)
	devB := blockdev.New(spec, 1<<26, &clk, sc.Seed)
	direct := uring.NewSync(devA, uring.Config{SGL: true})
	mm := uring.NewMmap(devB, &clk, 64<<10)

	buf := make([]byte, 128)
	var sumDirect, sumMmap time.Duration
	n := sc.Queries * 2
	if n < 200 {
		n = 200
	}
	for i := 0; i < n; i++ {
		// Paced, cold, scattered accesses: the Fig. 5 regime.
		at := simclock.Time(i) * simclock.Time(time.Millisecond)
		off := int64(i%16000) * 4096
		d1, err := direct.SubmitSync(at, buf, off, false)
		if err != nil {
			return nil, err
		}
		sumDirect += (d1 - at).Duration()
		d2, err := mm.Read(at, buf, off)
		if err != nil {
			return nil, err
		}
		sumMmap += (d2 - at).Duration()
	}
	res := &MmapResult{LatencyRatio: float64(sumMmap) / float64(sumDirect)}
	res.id = "mmap"
	fmWaste := float64(mmapResidentPerRow(mm))
	res.rows = []string{
		fmt.Sprintf("mean access latency, DIRECT_IO: %v", (sumDirect / time.Duration(n)).Round(time.Microsecond)),
		fmt.Sprintf("mean access latency, mmap:      %v", (sumMmap / time.Duration(n)).Round(time.Microsecond)),
		fmt.Sprintf("mmap/direct latency ratio:      %.1fx (paper: ~3x)", res.LatencyRatio),
		fmt.Sprintf("FM bytes held per useful row byte (mmap): %.0fx (4KB page per 128B row)", fmWaste),
	}
	return res, nil
}

// mmapResidentPerRow returns the page-cache bytes held per requested row
// byte — the FM-efficiency argument against mmap (§4.1).
func mmapResidentPerRow(m *uring.Mmap) float64 {
	s := m.Stats()
	if s.ResidentBytes == 0 {
		return 0
	}
	return 4096.0 / 128.0
}

// PollingResult quantifies §A.1's polling-vs-IRQ IOPS/core.
type PollingResult struct {
	tableResult
	Gain float64
}

// Polling measures IOPS per core of CPU time under IRQ vs polled
// completions on an Optane device at high queue depth.
func Polling(sc Scale) (Result, error) {
	run := func(mode uring.CompletionMode) (float64, error) {
		var clk simclock.Clock
		dev := blockdev.New(blockdev.Spec(blockdev.OptaneSSD), 1<<24, &clk, sc.Seed)
		ring := uring.New(dev, &clk, uring.Config{Mode: mode, SGL: true})
		for i := 0; i < 20000; i++ {
			if err := ring.Submit(&uring.Request{Buf: make([]byte, 128), Off: int64(i%4096) * 512}); err != nil {
				return 0, err
			}
		}
		if err := clk.Run(0); err != nil {
			return 0, err
		}
		return ring.Stats().IOPSPerCore(), nil
	}
	irq, err := run(uring.IRQ)
	if err != nil {
		return nil, err
	}
	poll, err := run(uring.Polling)
	if err != nil {
		return nil, err
	}
	res := &PollingResult{Gain: poll/irq - 1}
	res.id = "polling"
	res.rows = []string{
		fmt.Sprintf("IOPS/core, IRQ completions:     %10.0f", irq),
		fmt.Sprintf("IOPS/core, polled completions:  %10.0f", poll),
		fmt.Sprintf("polling gain:                   %9.0f%%  (paper: ~50%%)", res.Gain*100),
	}
	return res, nil
}
