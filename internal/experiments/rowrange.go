package experiments

import (
	"fmt"
	"time"

	"sdm/internal/adapt"
	"sdm/internal/blockdev"
	"sdm/internal/cluster"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/serving"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// RowRangeResult carries the partial-table migration drill: the same
// drift scenario adapted at whole-table vs row-range granularity, under
// one DRAM budget and one migration bandwidth cap. The point being made:
// row popularity within a table is Zipf-skewed, so moving hot row ranges
// recovers the FM-served rate as well as moving whole tables while
// migrating a fraction of the bytes — faster recovery under the same cap.
type RowRangeResult struct {
	tableResult

	// FM-served rates before the rotation, first window after, and final
	// window, per granularity.
	TablePre, TablePost, TableFinal float64
	RangePre, RangePost, RangeFinal float64
	TableRecovery, RangeRecovery    float64

	// Migration traffic of the measured (post-rotation) run.
	TableBytes, RangeBytes int64
	TableMoves, RangeMoves int

	// RangeServedFinal is the final-window fraction of lookups served by
	// FM-resident row ranges in the range run (0 by construction in the
	// table run).
	RangeServedFinal float64

	// WorkersDeterministic reports whether the range run repeated at a
	// different HostWorkers count produced bit-identical results.
	WorkersDeterministic bool
}

// rowRangeModel builds the partial-migration regime: equal-sized user
// tables with sharply skewed row popularity, served by a spatial
// (identity-permuted) workload so each table's hot rows cluster in its
// head ranges — the within-table structure whole-table migration cannot
// exploit.
func rowRangeModel(sc Scale) (*model.Instance, []*embedding.Table, error) {
	cfg := model.M1()
	cfg.NumUserTables = 6
	cfg.NumItemTables = 2
	cfg.ItemBatch = 4
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	cfg.TotalBytes = 32 << 20
	inst, err := model.Build(cfg, 1, sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < cfg.NumUserTables; i++ {
		inst.Tables[i].Rows = driftTableBytes / int64(inst.Tables[i].RowBytes())
		inst.Tables[i].Alpha = 1.4 // strong row skew: hot head, cold tail
		if i < 2 {
			inst.Tables[i].PoolingFactor = 24
		} else {
			inst.Tables[i].PoolingFactor = 12
		}
	}
	for i := cfg.NumUserTables; i < len(inst.Tables); i++ {
		inst.Tables[i].Rows = (64 << 10) / int64(inst.Tables[i].RowBytes())
	}
	tables, err := inst.Materialize()
	if err != nil {
		return nil, nil, err
	}
	return inst, tables, nil
}

// RowRange runs the partial-table migration drill: a hot-set rotation
// fires mid-run while two adaptive fleets — one re-placing whole tables,
// one re-placing row ranges — recover under the same DRAM budget and
// migration bandwidth cap. The range fleet is additionally repeated at a
// different HostWorkers count to demonstrate the determinism contract.
func RowRange(sc Scale) (Result, error) {
	inst, tables, err := rowRangeModel(sc)
	if err != nil {
		return nil, err
	}
	const (
		qps      = 400.0
		windows  = 16
		drift    = 1.0 / 3
		cappedBW = 16 << 20
		budget   = driftTableBytes*2 + driftTableBytes/2
	)
	n := sc.Queries * 8
	if n < 1600 {
		n = 1600
	}
	warm := n / 2

	run := func(gran adapt.Granularity, workers int) (*cluster.Result, adapt.Stats, error) {
		scfg := engineParallelism(core.Config{
			Seed: sc.Seed, SMTech: blockdev.NandFlash,
			Ring: uring.Config{SGL: true}, CacheBytes: 192 << 10,
			ReserveSM: true, MigrationRangeBytes: 256 << 10,
			Placement: placement.Config{
				Policy: placement.SMOnlyWithCache, UserTablesOnly: true,
			},
		})
		hcfg := serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}
		hosts, err := cluster.HostSet(inst, tables, 2, &scfg, hcfg)
		if err != nil {
			return nil, adapt.Stats{}, err
		}
		adapters, err := cluster.AttachAdaptive(hosts, adapt.Config{
			Interval:             150 * time.Millisecond,
			DRAMBudget:           budget,
			BandwidthBytesPerSec: cappedBW,
			ChunkBytes:           64 << 10,
			Granularity:          gran,
			PaybackSeconds:       3,
		})
		if err != nil {
			return nil, adapt.Stats{}, err
		}
		fl, err := cluster.New(hosts, cluster.NewRoundRobin(), cluster.Config{
			Seed: sc.Seed, Windows: windows, HostWorkers: workers,
		})
		if err != nil {
			return nil, adapt.Stats{}, err
		}
		gen, err := workload.NewGenerator(inst, workload.Config{
			Seed: sc.Seed, NumUsers: 800, UserAlpha: 0.9, Spatial: true,
			Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
		})
		if err != nil {
			return nil, adapt.Stats{}, err
		}
		fl.SetGenerator(gen)
		// Warmup pass: caches fill and the controller converges on the
		// pre-rotation spotlight.
		if _, err := fl.Run(qps, warm); err != nil {
			return nil, adapt.Stats{}, err
		}
		pre := cluster.AdapterStats(adapters)
		if err := fl.ScheduleDrift(drift); err != nil {
			return nil, adapt.Stats{}, err
		}
		res, err := fl.Run(qps, n)
		if err != nil {
			return nil, adapt.Stats{}, err
		}
		post := cluster.AdapterStats(adapters)
		// Migration traffic attributable to the measured (drift) run.
		delta := adapt.Stats{
			Evals:         post.Evals - pre.Evals,
			Promotions:    post.Promotions - pre.Promotions,
			Demotions:     post.Demotions - pre.Demotions,
			MigratedBytes: post.MigratedBytes - pre.MigratedBytes,
			RangeMoves:    post.RangeMoves - pre.RangeMoves,
			Aborts:        post.Aborts - pre.Aborts,
		}
		return res, delta, nil
	}

	var (
		tableRes, rangeRes, rangeRes2   *cluster.Result
		tableStats, rangeStats, rStats2 adapt.Stats
	)
	err = inParallel(
		func() (err error) { tableRes, tableStats, err = run(adapt.Tables, 1); return },
		func() (err error) { rangeRes, rangeStats, err = run(adapt.Ranges, 1); return },
		func() (err error) { rangeRes2, rStats2, err = run(adapt.Ranges, 4); return },
	)
	if err != nil {
		return nil, err
	}

	res := &RowRangeResult{
		TableBytes: tableStats.MigratedBytes,
		RangeBytes: rangeStats.MigratedBytes,
		TableMoves: tableStats.Promotions + tableStats.Demotions,
		RangeMoves: rangeStats.Promotions + rangeStats.Demotions,
	}
	res.TablePre, res.TablePost, res.TableFinal = driftPhases(tableRes)
	res.RangePre, res.RangePost, res.RangeFinal = driftPhases(rangeRes)
	res.TableRecovery = recoveryFrac(res.TablePre, res.TablePost, res.TableFinal)
	res.RangeRecovery = recoveryFrac(res.RangePre, res.RangePost, res.RangeFinal)
	res.RangeServedFinal = finalWindow(rangeRes).RangeRate
	res.WorkersDeterministic = rangeRes.String() == rangeRes2.String() &&
		finalWindow(rangeRes) == finalWindow(rangeRes2) &&
		rangeStats == rStats2

	res.id = "rowrange"
	res.header = fmt.Sprintf("%-16s %8s %8s %8s %10s %12s %8s %10s",
		"granularity", "preFM%", "postFM%", "finalFM%", "recovery%", "migrated(MB)", "moves", "rngServ%")
	row := func(name string, pre, post, final, rec float64, bytes int64, moves int, rng float64) string {
		return fmt.Sprintf("%-16s %8.1f %8.1f %8.1f %10.1f %12.2f %8d %10.1f",
			name, pre*100, post*100, final*100, rec*100, float64(bytes)/(1<<20), moves, rng*100)
	}
	res.rows = append(res.rows,
		row("whole tables", res.TablePre, res.TablePost, res.TableFinal, res.TableRecovery,
			res.TableBytes, res.TableMoves, 0),
		row("row ranges", res.RangePre, res.RangePost, res.RangeFinal, res.RangeRecovery,
			res.RangeBytes, res.RangeMoves, res.RangeServedFinal),
	)
	res.rows = append(res.rows, fmt.Sprintf(
		"post-rotation migration traffic: %.2f MB at range granularity vs %.2f MB whole-table (%.0f%%) under the same %d MB/s cap",
		float64(res.RangeBytes)/(1<<20), float64(res.TableBytes)/(1<<20),
		100*float64(res.RangeBytes)/float64(res.TableBytes), cappedBW>>20))
	res.rows = append(res.rows, fmt.Sprintf(
		"range run repeated at HostWorkers=4: bit-identical=%t", res.WorkersDeterministic))
	res.notes = append(res.notes,
		"row popularity within a table is Zipf-skewed (spatial workload: hot rows cluster in head ranges), so most bytes of a whole-table promotion are cold",
		"the range controller packs the hot heads of several tables into the same DRAM budget, then needs a fraction of the migration bytes to chase the rotated spotlight")
	return res, nil
}
