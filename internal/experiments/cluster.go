package experiments

import (
	"fmt"

	"sdm/internal/blockdev"
	"sdm/internal/cluster"
	"sdm/internal/core"
	"sdm/internal/power"
	"sdm/internal/serving"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// ClusterResult carries the routing-policy comparison: the serving-time
// realization of Fig. 4c, plus the failure/warmup scenario and the
// cluster-measured provisioning path.
type ClusterResult struct {
	tableResult
	StickyHitRate, RRHitRate               float64
	P99UpliftFrac                          float64
	ReroutedUsers                          int
	WarmupSpike                            float64
	WarmupHitDrop                          float64
	ClusterHosts, SingleExtrapolationHosts int
}

// Cluster runs one shared Zipf user population against a 4-host fleet
// under round-robin, least-outstanding and sticky consistent-hash routing
// (same trace, same seeds), then a sticky run that kills a host mid-run,
// and finally sizes a fleet from the measured cluster QPS via
// power.ClusterScenario against single-host extrapolation.
func Cluster(sc Scale) (Result, error) {
	inst, tables, err := experimentModel(sc)
	if err != nil {
		return nil, err
	}
	const nHosts = 4
	// Nand SM and a cache that fits a sticky host's user share (but not
	// the whole population) put the fleet where routing policy moves both
	// hit rate and the tail: the Fig. 4c serving-time regime.
	scfg := engineParallelism(core.Config{
		Seed: sc.Seed, SMTech: blockdev.NandFlash,
		Ring: uring.Config{SGL: true}, CacheBytes: 1 << 20,
	})
	hcfg := serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}
	wcfg := workload.Config{Seed: sc.Seed, NumUsers: 2000, UserAlpha: 0.8}
	qps := 300.0
	n := sc.Queries * 4

	// Each policy run warms the fleet with one failure-free pass, then
	// measures a second pass on steady-state caches (§A.4 discipline).
	runPolicy := func(r cluster.Router, failHost int) (*cluster.Result, error) {
		hosts, err := cluster.HostSet(inst, tables, nHosts, &scfg, hcfg)
		if err != nil {
			return nil, err
		}
		fl, err := cluster.New(hosts, r, cluster.Config{Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(inst, wcfg)
		if err != nil {
			return nil, err
		}
		fl.SetGenerator(gen)
		if _, err := fl.Run(qps, n); err != nil {
			return nil, err
		}
		if failHost >= 0 {
			if err := fl.ScheduleFailure(failHost, 0.5); err != nil {
				return nil, err
			}
		}
		return fl.Run(qps, n)
	}

	// Four independent fleets plus the single-host baseline: measure them
	// concurrently (each owns every piece of its state).
	var rr, loq, sticky, failed *cluster.Result
	var singleQPS float64
	err = inParallel(
		func() (err error) { rr, err = runPolicy(cluster.NewRoundRobin(), -1); return },
		func() (err error) { loq, err = runPolicy(cluster.NewLeastOutstanding(), -1); return },
		func() (err error) { sticky, err = runPolicy(cluster.NewSticky(nHosts, 64), -1); return },
		func() (err error) { failed, err = runPolicy(cluster.NewSticky(nHosts, 64), 1); return },
		func() error {
			// Single-host extrapolation baseline: one identical host
			// measured on its 1/N share of the offered load, over the full
			// (unpartitioned) user population — exactly what Tables 8/9
			// multiply out.
			hosts, err := cluster.HostSet(inst, tables, 1, &scfg, hcfg)
			if err != nil {
				return err
			}
			fl, err := cluster.New(hosts, cluster.NewRoundRobin(), cluster.Config{Seed: sc.Seed})
			if err != nil {
				return err
			}
			gen, err := workload.NewGenerator(inst, wcfg)
			if err != nil {
				return err
			}
			fl.SetGenerator(gen)
			if _, err := fl.Run(qps/nHosts, n/nHosts); err != nil {
				return err
			}
			res, err := fl.Run(qps/nHosts, n/nHosts)
			if err != nil {
				return err
			}
			singleQPS = res.AchievedQPS
			return nil
		},
	)
	if err != nil {
		return nil, err
	}

	res := &ClusterResult{
		StickyHitRate: sticky.HitRate,
		RRHitRate:     rr.HitRate,
		ReroutedUsers: failed.ReroutedUsers,
		WarmupSpike:   failed.WarmupSpike,
		WarmupHitDrop: failed.WarmupHitDrop,
	}
	if rrP99 := rr.Latency.P99(); rrP99 > 0 {
		res.P99UpliftFrac = 1 - sticky.Latency.P99()/rrP99
	}
	res.id = "cluster"
	res.header = fmt.Sprintf("%-18s %9s %9s %9s %9s %8s", "policy", "qps", "p50(ms)", "p99(ms)", "hit%", "sm/qry")
	row := func(r *cluster.Result) string {
		var sm uint64
		for _, h := range r.Hosts {
			sm += h.SMReads
		}
		return fmt.Sprintf("%-18s %9.0f %9.2f %9.2f %9.1f %8.1f",
			r.Policy, r.AchievedQPS, r.Latency.P50()*1e3, r.Latency.P99()*1e3,
			r.HitRate*100, float64(sm)/float64(r.Queries))
	}
	res.rows = append(res.rows, row(rr), row(loq), row(sticky))
	res.rows = append(res.rows,
		fmt.Sprintf("sticky vs round-robin: hit rate %+0.1fpp, p99 %+0.1f%% (Fig. 4c realized at serving time)",
			(sticky.HitRate-rr.HitRate)*100, res.P99UpliftFrac*100))
	res.rows = append(res.rows,
		fmt.Sprintf("failure drill (sticky, kill host 1 mid-run): rerouted users=%d; their warmup spike=%.2fx, hit drop=%.1fpp (§A.4)",
			failed.ReroutedUsers, failed.WarmupSpike, failed.WarmupHitDrop*100))

	// Provisioning: size a 100x-demand fleet from the measured cluster vs
	// single-host extrapolation.
	totalQPS := sticky.AchievedQPS * 100
	cs, err := power.ClusterScenario("sticky x4 (measured)", sticky.AchievedQPS, nHosts, serving.HWSS().RelPower)
	if err != nil {
		return nil, err
	}
	clusterFleet, err := power.Provision(cs, totalQPS)
	if err != nil {
		return nil, err
	}
	singleFleet, err := power.Provision(power.Scenario{
		Name: "single-host extrapolation", QPSPerHost: singleQPS, HostPower: serving.HWSS().RelPower,
	}, totalQPS)
	if err != nil {
		return nil, err
	}
	res.ClusterHosts = clusterFleet.Hosts
	res.SingleExtrapolationHosts = singleFleet.Hosts
	res.rows = append(res.rows,
		fmt.Sprintf("provisioning %0.f QPS: cluster-measured %d hosts (power %.0f) vs single-host extrapolation %d hosts (power %.0f)",
			totalQPS, clusterFleet.Hosts, clusterFleet.TotalPower, singleFleet.Hosts, singleFleet.TotalPower))
	res.notes = append(res.notes,
		"sticky consistent hashing concentrates each user's rows on one replica: higher per-host hit rate than round-robin on the same trace",
		"cluster-measured provisioning bakes routing/imbalance into QPS/host; single-host extrapolation is the Tables 8/9 multiply-out")
	return res, nil
}
