package experiments

import (
	"bytes"
	"fmt"
	"time"

	"sdm/internal/adapt"
	"sdm/internal/blockdev"
	"sdm/internal/cluster"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/obs"
	"sdm/internal/placement"
	"sdm/internal/serving"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// CoordResult carries the fleet-coordination drill: the same drift drill
// recovered by a lockstep fleet (N independent adapters, every replica
// migrating at once) versus a coordinated fleet (staggered migration
// windows under one shared bandwidth cap and one shared wear budget),
// with a bandwidth-capped single host as the tail reference.
type CoordResult struct {
	tableResult

	// FM-served rates before the rotation, first window after, and final
	// window, per fleet.
	LockPre, LockPost, LockFinal    float64
	CoordPre, CoordPost, CoordFinal float64
	LockRecovery, CoordRecovery     float64

	// Peak post-rotation per-window fleet p99 and worst single query, per
	// fleet, plus the single-host bandwidth-capped reference tail.
	LockPeakP99, CoordPeakP99, SinglePeakP99 float64
	LockPeakLat, CoordPeakLat                float64

	// SM demote-write spend of the measured run (the §3 endurance cost),
	// and the projected DWPD utilization each fleet ran at.
	LockSMWrites, CoordSMWrites uint64
	LockDWPDUtil, CoordDWPDUtil float64

	// WorkersDeterministic reports whether the coordinated run repeated
	// at a different HostWorkers count was bit-identical — including its
	// rendered decision trace.
	WorkersDeterministic bool

	// Placement-decision trace counts from the coordinated run: per-eval
	// promote/demote verdicts and the deferred candidates split by reason
	// (busy = a pending move already covers it, cap = truncated by the
	// per-eval migration cap).
	PlanPromotes, PlanDemotes        int
	PlanDefers, PlanBusy, PlanCapped int
}

// coordModel is the fleet-coordination regime: the rowrange drill's
// equal-sized user tables, but with a softer within-table row skew so
// each table's payback-qualifying hot head spans several ranges — the
// spotlight set alone overflows the DRAM budget, which is what makes the
// post-rotation re-shuffle demote as well as promote (the contention the
// wear budget and the staggered windows exist to manage).
func coordModel(sc Scale) (*model.Instance, []*embedding.Table, error) {
	inst, tables, err := rowRangeModel(sc)
	if err != nil {
		return nil, nil, err
	}
	// Alpha only shapes the query stream (the generator's per-table row
	// Zipf); the materialized bytes are unaffected.
	for i := 0; i < inst.Config.NumUserTables; i++ {
		inst.Tables[i].Alpha = 1.05 // wide hot heads: several ranges per table qualify
	}
	return inst, tables, nil
}

// tailMeanFM returns the query-weighted mean FM-served rate of the last
// quarter of a run's windows — the steady "final" rate under sustained
// rotation, where any single window may land mid-phase.
func tailMeanFM(r *cluster.Result) float64 {
	ws := r.Windows
	if len(ws) == 0 {
		return 0
	}
	start := len(ws) - len(ws)/4
	if start >= len(ws) {
		start = len(ws) - 1
	}
	var q int
	var acc float64
	for _, w := range ws[start:] {
		acc += w.FMRate * float64(w.Queries)
		q += w.Queries
	}
	if q == 0 {
		return 0
	}
	return acc / float64(q)
}

// Coord runs the fleet-coordination drill: a hot-set rotation fires
// mid-run across an N-replica fleet. The lockstep fleet reacts the naive
// way — every replica's adapter migrates immediately and unpaced, so the
// fleet spends N× the migration bandwidth at the exact moment it is
// recovering and every replica's foreground tail spikes at once. The
// coordinated fleet staggers per-replica migration windows under one
// shared bandwidth cap (at most one replica migrates at any instant) with
// a wear-aware policy ranking moves against the shared §3 endurance
// budget — range-granular moves are small enough to interleave, so the
// fleet recovers to the same FM-served rate while its post-rotation tail
// stays near the single-host bandwidth-capped reference and its SM
// demote-write spend drops.
func Coord(sc Scale) (Result, error) {
	inst, tables, err := coordModel(sc)
	if err != nil {
		return nil, err
	}
	const (
		hosts    = 3
		qps      = 400.0
		windows  = 16
		drift    = 1.0 / 3
		cappedBW = 16 << 20
		budget   = driftTableBytes + driftTableBytes/4
		slot     = 50 * time.Millisecond
		wearDays = 0.005
	)
	n := sc.Queries * 8
	if n < 1600 {
		n = 1600
	}
	warm := n / 2

	// run executes the drift drill over nh replicas at fleetQPS. mode
	// selects how the adapters are attached.
	type mode int
	const (
		single   mode = iota // 1 host, bandwidth-capped adapter
		lockstep             // nh hosts, independent unpaced adapters
		coord                // nh hosts, staggered windows + shared cap + wear budget
	)
	run := func(m mode, workers int, trace obs.Level) (*cluster.Result, adapt.Stats, []obs.Event, error) {
		nh := hosts
		fleetQPS := qps
		if m == single {
			nh = 1
			fleetQPS = qps / hosts
		}
		scfg := engineParallelism(core.Config{
			Seed: sc.Seed, SMTech: blockdev.NandFlash,
			Ring: uring.Config{SGL: true}, CacheBytes: 192 << 10,
			ReserveSM: true, MigrationRangeBytes: 256 << 10,
			Placement: placement.Config{
				Policy: placement.SMOnlyWithCache, UserTablesOnly: true,
			},
		})
		hcfg := serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}
		hs, err := cluster.HostSet(inst, tables, nh, &scfg, hcfg)
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		acfg := adapt.Config{
			Interval:       150 * time.Millisecond,
			DRAMBudget:     budget,
			ChunkBytes:     16 << 10,
			Granularity:    adapt.Ranges,
			PaybackSeconds: 3,
		}
		var adapters []*adapt.Adapter
		switch m {
		case single:
			acfg.BandwidthBytesPerSec = cappedBW
			adapters, err = cluster.AttachAdaptive(hs, acfg)
		case lockstep:
			// N independent adapters, unpaced: the naive fleet reaction.
			adapters, err = cluster.AttachAdaptive(hs, acfg)
		case coord:
			acfg.WearDaysPerSecond = wearDays
			adapters, _, err = cluster.AttachCoordinated(hs, acfg, cluster.CoordConfig{
				Slot:                 slot,
				BandwidthBytesPerSec: cappedBW,
			})
		}
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		fl, err := cluster.New(hs, cluster.NewRoundRobin(), cluster.Config{
			Seed: sc.Seed, Windows: windows, HostWorkers: workers,
		})
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		if trace != obs.LevelOff {
			// SetAdapters wires the per-host plan tracers; with a
			// round-robin router the View signals it also surfaces are
			// never read, so results are unchanged.
			fl.SetAdapters(adapters)
			if err := fl.SetTrace(obs.Config{Level: trace}); err != nil {
				return nil, adapt.Stats{}, nil, err
			}
		}
		// Sustained drift: the spotlight rotates periodically (roughly
		// every 800 queries — 2s of fleet traffic, so the rotation rate is the same at every experiment scale), so endurance spend compounds
		// rotation after rotation — the regime the shared wear budget
		// exists for. ScheduleDrift still forces one aligned rotation so
		// the post-rotation windows have a common reference instant.
		gen, err := workload.NewGenerator(inst, workload.Config{
			Seed: sc.Seed, NumUsers: 800, UserAlpha: 0.9, Spatial: true,
			Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25, PhaseQueries: 800},
		})
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		fl.SetGenerator(gen)
		// Warmup pass: caches fill and the controllers converge on the
		// pre-rotation spotlight.
		if _, err := fl.Run(fleetQPS, warm); err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		if err := fl.ScheduleDrift(drift); err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		res, err := fl.Run(fleetQPS, n)
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		return res, cluster.AdapterStats(adapters), fl.TraceEvents(), nil
	}

	var (
		singleRes, lockRes, coordRes, coordRes2 *cluster.Result
		lockStats, coordStats, coordStats2      adapt.Stats
		coordEvents, coordEvents2               []obs.Event
	)
	err = inParallel(
		func() (err error) { singleRes, _, _, err = run(single, 1, obs.LevelOff); return },
		func() (err error) { lockRes, lockStats, _, err = run(lockstep, 1, obs.LevelOff); return },
		func() (err error) { coordRes, coordStats, coordEvents, err = run(coord, 1, obs.LevelDecisions); return },
		func() (err error) {
			coordRes2, coordStats2, coordEvents2, err = run(coord, 4, obs.LevelDecisions)
			return
		},
	)
	if err != nil {
		return nil, err
	}
	// Decision-trace fold of the coordinated run: the per-eval placement
	// verdicts behind the adapter move counts, plus the byte-identity of
	// the rendered trace across worker counts.
	renderTrace := func(events []obs.Event) string {
		var b bytes.Buffer
		if err := obs.WriteJSONL(&b, obs.LevelDecisions, events, obs.Summarize(obs.LevelDecisions, events)); err != nil {
			return err.Error()
		}
		return b.String()
	}
	coordSum := obs.Summarize(obs.LevelDecisions, coordEvents)

	res := &CoordResult{
		LockSMWrites:  lockRes.SMWriteBytes,
		CoordSMWrites: coordRes.SMWriteBytes,
		LockDWPDUtil:  lockRes.DWPDUtil,
		CoordDWPDUtil: coordRes.DWPDUtil,
	}
	res.LockPre, res.LockPost, _ = driftPhases(lockRes)
	res.CoordPre, res.CoordPost, _ = driftPhases(coordRes)
	// Under sustained rotation a single final window is timing luck
	// (it may land mid-phase); the steady "final" FM rate is the
	// query-weighted mean of the last quarter of windows.
	res.LockFinal = tailMeanFM(lockRes)
	res.CoordFinal = tailMeanFM(coordRes)
	res.LockRecovery = recoveryFrac(res.LockPre, res.LockPost, res.LockFinal)
	res.CoordRecovery = recoveryFrac(res.CoordPre, res.CoordPost, res.CoordFinal)
	res.LockPeakP99 = peakPostDriftP99(lockRes)
	res.CoordPeakP99 = peakPostDriftP99(coordRes)
	res.SinglePeakP99 = peakPostDriftP99(singleRes)
	res.LockPeakLat = peakPostDriftLat(lockRes)
	res.CoordPeakLat = peakPostDriftLat(coordRes)
	res.WorkersDeterministic = coordRes.String() == coordRes2.String() &&
		finalWindow(coordRes) == finalWindow(coordRes2) &&
		coordStats == coordStats2 &&
		renderTrace(coordEvents) == renderTrace(coordEvents2)
	res.PlanPromotes = coordSum.Promotes
	res.PlanDemotes = coordSum.Demotes
	res.PlanDefers = coordSum.Defers
	res.PlanBusy = coordSum.DeferBusy
	res.PlanCapped = coordSum.DeferCap

	res.id = "coord"
	res.header = fmt.Sprintf("%-18s %8s %8s %8s %10s %14s %12s %12s %10s",
		"fleet", "preFM%", "postFM%", "finalFM%", "recovery%", "peak p99(ms)", "peak(ms)", "smW(MB)", "dwpdUtil")
	row := func(name string, r *cluster.Result, pre, post, final, rec float64) string {
		return fmt.Sprintf("%-18s %8.1f %8.1f %8.1f %10.1f %14.2f %12.2f %12.2f %10.3f",
			name, pre*100, post*100, final*100, rec*100,
			peakPostDriftP99(r)*1e3, peakPostDriftLat(r)*1e3,
			float64(r.SMWriteBytes)/(1<<20), r.DWPDUtil)
	}
	sPre, sPost, _ := driftPhases(singleRes)
	sFinal := tailMeanFM(singleRes)
	res.rows = append(res.rows,
		row("single (capped)", singleRes, sPre, sPost, sFinal, recoveryFrac(sPre, sPost, sFinal)),
		row("lockstep fleet", lockRes, res.LockPre, res.LockPost, res.LockFinal, res.LockRecovery),
		row("coordinated fleet", coordRes, res.CoordPre, res.CoordPost, res.CoordFinal, res.CoordRecovery),
	)
	res.rows = append(res.rows, fmt.Sprintf(
		"tail: coordinated peak post-rotation p99 %.2fms vs single-host capped %.2fms (%.1fx) vs lockstep burst %.2fms",
		res.CoordPeakP99*1e3, res.SinglePeakP99*1e3, res.CoordPeakP99/res.SinglePeakP99, res.LockPeakLat*1e3))
	res.rows = append(res.rows, fmt.Sprintf(
		"wear: coordinated spent %.2f MB of SM demote writes vs lockstep %.2f MB (%.0f%%) at final FM %.1f%% vs %.1f%%",
		float64(res.CoordSMWrites)/(1<<20), float64(res.LockSMWrites)/(1<<20),
		100*float64(res.CoordSMWrites)/float64(res.LockSMWrites),
		res.CoordFinal*100, res.LockFinal*100))
	res.rows = append(res.rows, fmt.Sprintf(
		"moves: lockstep %d promotions / %d demotions (%.2f MB migrated) vs coordinated %d / %d (%.2f MB)",
		lockStats.Promotions, lockStats.Demotions, float64(lockStats.MigratedBytes)/(1<<20),
		coordStats.Promotions, coordStats.Demotions, float64(coordStats.MigratedBytes)/(1<<20)))
	res.rows = append(res.rows, fmt.Sprintf(
		"trace: coordinated policy issued %d promote / %d demote verdicts, deferred %d candidates (%d busy, %d capped by the per-eval limit)",
		res.PlanPromotes, res.PlanDemotes, res.PlanDefers, res.PlanBusy, res.PlanCapped))
	res.rows = append(res.rows, fmt.Sprintf(
		"coordinated run (result + decision trace) repeated at HostWorkers=4: bit-identical=%t", res.WorkersDeterministic))
	res.notes = append(res.notes,
		"sustained drift: the spotlight rotates periodically, so endurance spend compounds — the shared wear budget throttles what each rotation may re-shuffle",
		"lockstep: every replica's adapter reacts to the rotation at once, unpaced — the fleet-wide migration burst lands on all replicas' devices simultaneously",
		"coordinated: staggered windows keep at most one replica migrating at any instant under the shared cap, and the wear-aware policy ranks moves against the shared DWPD budget",
	)
	return res, nil
}
