package experiments

import (
	"bytes"
	"fmt"
	"strings"
	"time"

	"sdm/internal/adapt"
	"sdm/internal/blockdev"
	"sdm/internal/cluster"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/obs"
	"sdm/internal/placement"
	"sdm/internal/serving"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// SLOResult carries the SLO-aware serving drill: the migration-aware
// weighted router against plain sticky hashing under the coordinated
// drift drill, a BLIS-style utilization sweep locating the load knee
// where round-robin overtakes sticky on p99, and a 2× overload run
// bounded by per-class token-bucket admission.
type SLOResult struct {
	tableResult

	// Coordinated drift drill: peak post-rotation fleet p99 and steady
	// final FM-served rate, sticky vs the migration-aware weighted
	// router on the same fleet geometry.
	StickyPeakP99, WeightedPeakP99 float64
	StickyFinalFM, WeightedFinalFM float64

	// Utilization sweep: offered QPS points with each policy's p99, plus
	// the low-load hit rates (the locality win sticky routing buys while
	// the fleet has headroom).
	SweepQPS               []float64
	RRP99, StickyP99       []float64
	LowHitRR, LowHitSticky float64

	// Overload drill at the top sweep point (~2× the sticky fleet's
	// saturation): open-loop p99 vs admission-gated p99 and the shed
	// share the bound cost.
	OpenP99, GatedP99 float64
	ShedShare         float64

	// WorkersDeterministic reports whether the weighted drill and the
	// admission-gated run repeated at a different HostWorkers count were
	// bit-identical — including, since the decision-trace layer landed,
	// the weighted drill's rendered JSONL trace.
	WorkersDeterministic bool

	// Decision-trace assertions. QueueDiversions counts diverted routes
	// in a drill whose queue weight (0.4) sits below affinity (1.0) —
	// asserted zero, the trace-level proof of the PR-6 negative result
	// that a sub-affinity queue term never moves a user.
	//
	// RegretVsStickyMS is the config-level counterfactual: the sticky and
	// migration-aware drills consume the same deterministic arrival
	// stream, so joining their traces on sequence number prices every
	// post-rotation query under both routing configs. The field sums
	// (weighted latency − sticky latency) over the joined rows; negative
	// means the migration-aware config beat sticky query for query, not
	// just on the aggregate tail. RegretPostPrevMS is the narrower
	// per-decision view — mean EWMA-estimated regret vs the sticky host
	// over the drill's post-rotation diverted decisions, zero when the
	// measured run never diverts.
	QueueDiversions, QueueRoutes   int
	RegretVsStickyMS               float64
	RegretJoined                   int
	RegretPostPrevMS               float64
	PostDivertedRows, DivertedRows int
}

// sloSweepModel is the utilization-sweep fixture: a small M1 derivative
// with a row cache sized to a sticky host's user share, so routing policy
// moves both hit rate and the tail, and per-host capacity is low enough
// that the sweep's top points genuinely saturate the hottest replica.
func sloSweepModel() (*model.Instance, []*embedding.Table, error) {
	cfg := model.M1()
	cfg.NumUserTables = 5
	cfg.NumItemTables = 3
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	inst, err := model.Build(cfg, 1, 31)
	if err != nil {
		return nil, nil, err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return nil, nil, err
	}
	return inst, tables, nil
}

// SLO runs the SLO-aware serving drill in three acts. First the PR-5
// coordinated drift drill re-routed: a weighted router that reads the
// fleet's migration state (affinity + queue depth + migration avoidance)
// steers queries away from the replica actively migrating inside its
// granted window, cutting the post-rotation fleet tail below sticky
// hashing while serving the same share from FM. Second a utilization
// sweep: sticky wins the cache hit rate at low load, but saturates its
// hottest replica first, so round-robin overtakes it on p99 past the
// knee. Third, admission control: at ~2× the sticky fleet's capacity,
// per-class token buckets shed the excess and restore millisecond tails,
// with the rejected share accounted per SLO class.
func SLO(sc Scale) (Result, error) {
	const (
		drillHosts = 3
		drillQPS   = 2400.0
		windows    = 16
		drift      = 1.0 / 3
		cappedBW   = 16 << 20
		budget     = driftTableBytes + driftTableBytes/4
		slot       = 50 * time.Millisecond
		wearDays   = 0.005
	)
	nDrill := sc.Queries * 8
	if nDrill < 1600 {
		nDrill = 1600
	}
	warm := nDrill / 2

	drillInst, drillTables, err := coordModel(sc)
	if err != nil {
		return nil, err
	}
	sweepInst, sweepTables, err := sloSweepModel()
	if err != nil {
		return nil, err
	}

	// runDrill executes the coordinated drift drill (identical geometry
	// to the coord experiment's coordinated fleet) under the given
	// router, tracing decisions at the given level (LevelOff = untraced).
	runDrill := func(mk func() (cluster.Router, error), workers int, trace obs.Level) (*cluster.Result, adapt.Stats, []obs.Event, error) {
		scfg := engineParallelism(core.Config{
			Seed: sc.Seed, SMTech: blockdev.NandFlash,
			Ring: uring.Config{SGL: true}, CacheBytes: 192 << 10,
			ReserveSM: true, MigrationRangeBytes: 256 << 10,
			Placement: placement.Config{
				Policy: placement.SMOnlyWithCache, UserTablesOnly: true,
			},
		})
		hcfg := serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}
		hs, err := cluster.HostSet(drillInst, drillTables, drillHosts, &scfg, hcfg)
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		adapters, coord, err := cluster.AttachCoordinated(hs, adapt.Config{
			Interval:          150 * time.Millisecond,
			DRAMBudget:        budget,
			ChunkBytes:        16 << 10,
			Granularity:       adapt.Ranges,
			PaybackSeconds:    3,
			WearDaysPerSecond: wearDays,
		}, cluster.CoordConfig{Slot: slot, BandwidthBytesPerSec: cappedBW})
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		r, err := mk()
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		fl, err := cluster.New(hs, r, cluster.Config{
			Seed: sc.Seed, Windows: windows, HostWorkers: workers,
		})
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		fl.SetCoordinator(coord)
		fl.SetAdapters(adapters)
		if trace != obs.LevelOff {
			if err := fl.SetTrace(obs.Config{Level: trace}); err != nil {
				return nil, adapt.Stats{}, nil, err
			}
		}
		gen, err := workload.NewGenerator(drillInst, workload.Config{
			Seed: sc.Seed, NumUsers: 800, UserAlpha: 0.9, Spatial: true,
			Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25, PhaseQueries: 800},
		})
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		fl.SetGenerator(gen)
		if _, err := fl.Run(drillQPS, warm); err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		if err := fl.ScheduleDrift(drift); err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		res, err := fl.Run(drillQPS, nDrill)
		if err != nil {
			return nil, adapt.Stats{}, nil, err
		}
		return res, cluster.AdapterStats(adapters), fl.TraceEvents(), nil
	}
	mkSticky := func() (cluster.Router, error) { return cluster.NewSticky(drillHosts, 64), nil }
	mkWeighted := func() (cluster.Router, error) {
		return cluster.NewWeightedRouter("migration-aware",
			cluster.ScorerWeight{Scorer: cluster.NewAffinityScorer(drillHosts, 64), Weight: 1.0},
			cluster.ScorerWeight{Scorer: cluster.NewQueueScorer(), Weight: 0.4},
			cluster.ScorerWeight{Scorer: cluster.NewMigrationAvoidScorer(), Weight: 1.2},
		)
	}
	// The trace's control config: affinity + the same sub-affinity queue
	// weight but no migration avoidance. PR 6 established (via aggregate
	// tails) that this router never moves a user; the decision trace now
	// proves it per-decision — zero diverted routes.
	mkQueueOnly := func() (cluster.Router, error) {
		return cluster.NewWeightedRouter("queue-below-affinity",
			cluster.ScorerWeight{Scorer: cluster.NewAffinityScorer(drillHosts, 64), Weight: 1.0},
			cluster.ScorerWeight{Scorer: cluster.NewQueueScorer(), Weight: 0.4},
		)
	}

	// runSweep executes one utilization-sweep point on the 4-host
	// small-cache fleet, optionally with SLO classes and admission.
	const sweepHosts = 4
	nSweep := sc.Queries * 8
	if nSweep < 2400 {
		nSweep = 2400
	}
	runSweep := func(mk func() cluster.Router, qps float64, classes int, admit *cluster.AdmitConfig, workers int) (*cluster.Result, error) {
		scfg := engineParallelism(core.Config{
			Seed: sc.Seed, Ring: uring.Config{SGL: true}, CacheBytes: 1 << 15,
		})
		hcfg := serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}
		hs, err := cluster.HostSet(sweepInst, sweepTables, sweepHosts, &scfg, hcfg)
		if err != nil {
			return nil, err
		}
		fl, err := cluster.New(hs, mk(), cluster.Config{Seed: sc.Seed, HostWorkers: workers})
		if err != nil {
			return nil, err
		}
		if admit != nil {
			if err := fl.SetAdmission(*admit); err != nil {
				return nil, err
			}
		}
		gen, err := workload.NewGenerator(sweepInst, workload.Config{
			Seed: sc.Seed, NumUsers: 800, UserAlpha: 0.8, SLOClasses: classes,
		})
		if err != nil {
			return nil, err
		}
		fl.SetGenerator(gen)
		return fl.Run(qps, nSweep)
	}
	mkRR := func() cluster.Router { return cluster.NewRoundRobin() }
	mkStickySweep := func() cluster.Router { return cluster.NewSticky(sweepHosts, 64) }
	sweepQPS := []float64{2000, 8000, 16000}
	gate := cluster.AdmitConfig{Classes: []cluster.ClassAdmit{
		{Name: "gold", RatePerSec: 3000, Burst: 30},
		{Name: "best-effort", RatePerSec: 2000, Burst: 20},
	}}

	var (
		stickyDrill, weightedDrill, weightedDrill4 *cluster.Result
		stickyStats, weightedStats, weightedStats4 adapt.Stats
		stickyEvents, weightedEvents               []obs.Event
		weightedEvents4, queueEvents               []obs.Event
		rrSweep, stSweep                           [3]*cluster.Result
		gated, gated4                              *cluster.Result
	)
	jobs := []func() error{
		func() (err error) {
			stickyDrill, stickyStats, stickyEvents, err = runDrill(mkSticky, 1, obs.LevelCounterfactual)
			return
		},
		func() (err error) {
			weightedDrill, weightedStats, weightedEvents, err = runDrill(mkWeighted, 1, obs.LevelCounterfactual)
			return
		},
		func() (err error) {
			weightedDrill4, weightedStats4, weightedEvents4, err = runDrill(mkWeighted, 4, obs.LevelCounterfactual)
			return
		},
		func() (err error) { _, _, queueEvents, err = runDrill(mkQueueOnly, 1, obs.LevelCounterfactual); return },
		func() (err error) { gated, err = runSweep(mkStickySweep, 16000, 2, &gate, 1); return },
		func() (err error) { gated4, err = runSweep(mkStickySweep, 16000, 2, &gate, 4); return },
	}
	for i, q := range sweepQPS {
		i, q := i, q
		jobs = append(jobs,
			func() (err error) { rrSweep[i], err = runSweep(mkRR, q, 0, nil, 1); return },
			func() (err error) { stSweep[i], err = runSweep(mkStickySweep, q, 0, nil, 1); return },
		)
	}
	if err := inParallel(jobs...); err != nil {
		return nil, err
	}

	classKey := func(r *cluster.Result) string {
		var b strings.Builder
		b.WriteString(r.String())
		for _, c := range r.Classes {
			b.WriteString(c.String())
		}
		return b.String()
	}
	// renderTrace is the determinism probe: the full counterfactual JSONL,
	// byte for byte. The HostWorkers=1 and =4 weighted drills must render
	// identically — the same invariant TestTraceDeterministicAcrossWorkers
	// holds under -race in CI.
	renderTrace := func(events []obs.Event) string {
		var b bytes.Buffer
		if err := obs.WriteJSONL(&b, obs.LevelCounterfactual, events, obs.Summarize(obs.LevelCounterfactual, events)); err != nil {
			return err.Error()
		}
		return b.String()
	}
	queueSum := obs.Summarize(obs.LevelCounterfactual, queueEvents)
	weightedSum := obs.Summarize(obs.LevelCounterfactual, weightedEvents)
	// Post-rotation slice of the weighted drill's routing decisions: only
	// diversions after the hot-set rotation are migration avoidance at
	// work, so the regret-vs-sticky aggregate is computed over them.
	var postEvents []obs.Event
	for _, ev := range weightedEvents {
		if ev.Kind == "route" && ev.Time >= weightedDrill.DriftAt {
			postEvents = append(postEvents, ev)
		}
	}
	postSum := obs.Summarize(obs.LevelCounterfactual, postEvents)
	// Config-level counterfactual: both drills route the same arrival
	// stream, so the sticky trace holds the latency every weighted-drill
	// query would have seen under sticky routing. Join on sequence number
	// and sum the post-rotation differences.
	stickyLat := make(map[int]float64, len(stickyEvents))
	for _, ev := range stickyEvents {
		if ev.Kind == "route" && ev.Route.LatencySeconds > 0 {
			stickyLat[ev.Route.Seq] = ev.Route.LatencySeconds
		}
	}
	var regretJoined int
	var regretSum float64
	for _, ev := range postEvents {
		if ev.Route.LatencySeconds <= 0 {
			continue
		}
		if sl, ok := stickyLat[ev.Route.Seq]; ok {
			regretJoined++
			regretSum += ev.Route.LatencySeconds - sl
		}
	}

	openLoop := stSweep[len(stSweep)-1]
	res := &SLOResult{
		StickyPeakP99:   peakPostDriftP99(stickyDrill),
		WeightedPeakP99: peakPostDriftP99(weightedDrill),
		StickyFinalFM:   tailMeanFM(stickyDrill),
		WeightedFinalFM: tailMeanFM(weightedDrill),
		SweepQPS:        sweepQPS,
		LowHitRR:        rrSweep[0].HitRate,
		LowHitSticky:    stSweep[0].HitRate,
		OpenP99:         openLoop.Latency.P99(),
		GatedP99:        gated.Latency.P99(),
		WorkersDeterministic: weightedDrill.String() == weightedDrill4.String() &&
			finalWindow(weightedDrill) == finalWindow(weightedDrill4) &&
			weightedStats == weightedStats4 &&
			classKey(gated) == classKey(gated4) &&
			renderTrace(weightedEvents) == renderTrace(weightedEvents4),
		QueueDiversions:  queueSum.Diversions,
		QueueRoutes:      queueSum.Routes,
		RegretVsStickyMS: regretSum * 1e3,
		RegretJoined:     regretJoined,
		DivertedRows:     weightedSum.DivertedCFRows,
		PostDivertedRows: postSum.DivertedCFRows,
	}
	if postSum.DivertedCFRows > 0 {
		res.RegretPostPrevMS = postSum.RegretPrevSeconds / float64(postSum.DivertedCFRows) * 1e3
	}
	for i := range sweepQPS {
		res.RRP99 = append(res.RRP99, rrSweep[i].Latency.P99())
		res.StickyP99 = append(res.StickyP99, stSweep[i].Latency.P99())
	}
	if d := gated.Shed + int(gated.Latency.Count()); d > 0 {
		res.ShedShare = float64(gated.Shed) / float64(d)
	}

	res.id = "slo"
	res.header = fmt.Sprintf("%-24s %14s %9s %12s %10s", "fleet (coord drill)", "peak p99(ms)", "finalFM%", "smW(MB)", "promo/dem")
	drillRow := func(name string, r *cluster.Result, st adapt.Stats) string {
		return fmt.Sprintf("%-24s %14.2f %9.1f %12.2f %5d/%d",
			name, peakPostDriftP99(r)*1e3, tailMeanFM(r)*100,
			float64(r.SMWriteBytes)/(1<<20), st.Promotions, st.Demotions)
	}
	res.rows = append(res.rows,
		drillRow("sticky", stickyDrill, stickyStats),
		drillRow("weighted migration-aware", weightedDrill, weightedStats))
	res.rows = append(res.rows, fmt.Sprintf(
		"routing: migration-aware scoring cuts post-rotation peak p99 %.2fms -> %.2fms (%+.0f%%) at final FM %.1f%% vs %.1f%% (Δ%.1fpp)",
		res.StickyPeakP99*1e3, res.WeightedPeakP99*1e3,
		100*(res.WeightedPeakP99/res.StickyPeakP99-1),
		res.WeightedFinalFM*100, res.StickyFinalFM*100,
		(res.WeightedFinalFM-res.StickyFinalFM)*100))
	for i, q := range sweepQPS {
		res.rows = append(res.rows, fmt.Sprintf(
			"sweep @%5.0f qps: rr p99 %8.2fms (achieved %6.0f)   sticky p99 %8.2fms (achieved %6.0f)",
			q, res.RRP99[i]*1e3, rrSweep[i].AchievedQPS, res.StickyP99[i]*1e3, stSweep[i].AchievedQPS))
	}
	res.rows = append(res.rows, fmt.Sprintf(
		"knee: sticky wins hit rate at low load (%.1f%% vs rr %.1f%%) but saturates its hottest replica first — rr p99 overtakes %0.fx at @%0.f qps",
		res.LowHitSticky*100, res.LowHitRR*100, res.StickyP99[2]/res.RRP99[2], sweepQPS[2]))
	res.rows = append(res.rows, fmt.Sprintf(
		"admission @%0.f qps (2x overload): open-loop p99 %.2fms -> gated %.2fms, shed %d of %d offered (%.0f%%), class Jain=%.3f",
		sweepQPS[2], res.OpenP99*1e3, res.GatedP99*1e3,
		gated.Shed, gated.Shed+int(gated.Latency.Count()), res.ShedShare*100, gated.ClassFairness))
	for _, c := range gated.Classes {
		res.rows = append(res.rows, fmt.Sprintf(
			"  class %-12s offered=%5d shed=%5d (%.0f%%) p50=%.2fms p99=%.2fms p999=%.2fms",
			c.Name, c.Offered, c.Shed, c.ShedShare()*100,
			c.Latency.P50()*1e3, c.Latency.P99()*1e3, c.Latency.P999()*1e3))
	}
	res.rows = append(res.rows, fmt.Sprintf(
		"trace: queue(0.4) below affinity(1.0) diverted %d of %d routes; migration-aware diverted %d of %d (%.1f%%)",
		res.QueueDiversions, res.QueueRoutes, weightedSum.Diversions, weightedSum.Routes,
		weightedSum.DiversionRate()*100))
	res.rows = append(res.rows, fmt.Sprintf(
		"counterfactual: post-rotation regret vs sticky %+.3fms summed over %d queries joined across the two traces — negative means migration-aware routing beat sticky",
		res.RegretVsStickyMS, res.RegretJoined))
	res.rows = append(res.rows, fmt.Sprintf(
		"  per-decision: %d diverted rows in the measured run (%d post-rotation), EWMA regret vs the sticky host %+.3fms/route",
		res.DivertedRows, res.PostDivertedRows, res.RegretPostPrevMS))
	res.rows = append(res.rows, fmt.Sprintf(
		"weighted drill (result + decision trace) and gated overload repeated at HostWorkers=4: bit-identical=%t", res.WorkersDeterministic))
	res.notes = append(res.notes,
		"weighted router = affinity(1.0) + queue(0.4) + migration-avoid(1.2): queries divert from the replica actively migrating inside its granted window, then return",
		"the sweep fixture's sticky fleet saturates its hottest replica near 11k qps while round-robin's even spread holds to ~24k — the BLIS utilization knee",
		"admission: per-class token buckets (gold 3000/s burst 30, best-effort 2000/s burst 20) cap the admitted rate below the sticky knee; the p99 bound is bought with the reported shed share",
		"decision traces (obs.LevelCounterfactual) re-score each diverted route against the sticky host's completed-latency EWMA at completion time; the config-level regret instead joins the sticky and migration-aware traces on arrival sequence and prices every query under both routers",
	)
	return res, nil
}
