package experiments

import (
	"runtime"
	"sync"

	"sdm/internal/core"
)

// inParallel runs independent measurement closures concurrently — one
// goroutine each; every closure owns its clock, store, generator and host,
// so no state is shared — and returns the first error in argument order.
// Because each simulated host is deterministic in isolation, results are
// identical to running the closures sequentially.
func inParallel(fns ...func() error) error {
	errs := make([]error, len(fns))
	var wg sync.WaitGroup
	for i, fn := range fns {
		wg.Add(1)
		go func(i int, fn func() error) {
			defer wg.Done()
			errs[i] = fn()
		}(i, fn)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			return err
		}
	}
	return nil
}

// engineParallelism fills in the store's query-engine worker count for
// experiment runs: all cores unless the scenario pinned a value. The
// engine's accounting is parallelism-invariant, so this only affects
// wall-clock time.
func engineParallelism(cfg core.Config) core.Config {
	if cfg.Parallelism == 0 {
		cfg.Parallelism = runtime.GOMAXPROCS(0)
	}
	return cfg
}
