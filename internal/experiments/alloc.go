package experiments

import (
	"fmt"
	"runtime"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/cluster"
	"sdm/internal/core"
	"sdm/internal/serving"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// AllocResult is the steady-state allocation budget of the simulator's two
// hot paths: the store-level query engine and the fleet loop. Unlike the
// wall-clock fleetscale trajectory these rows are (near-)deterministic —
// single measuring goroutine, fixed Parallelism/HostWorkers, warm caches,
// runtime.MemStats deltas — so benchdiff gates them regression-only: a
// >10% growth in B/query or allocs/query fails CI, improvements pass.
type AllocResult struct {
	tableResult
	// EngineBPerQuery and FleetBPerQuery are allocated heap bytes per
	// query in the respective steady-state loops.
	EngineBPerQuery float64
	FleetBPerQuery  float64
}

// allocDelta runs fn and returns the heap bytes and object allocations it
// performed, from MemStats deltas around the call.
func allocDelta(fn func() error) (bytes, objs uint64, err error) {
	var m0, m1 runtime.MemStats
	runtime.ReadMemStats(&m0)
	if err := fn(); err != nil {
		return 0, 0, err
	}
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc, m1.Mallocs - m0.Mallocs, nil
}

// Alloc measures the per-query allocation budget the zero-alloc hot-path
// work protects. Both loops run long enough to amortize the remaining
// per-run costs (result aggregation, free-list growth) to well under the
// gate's tolerance.
func Alloc(sc Scale) (Result, error) {
	inst, tables, err := experimentModel(sc)
	if err != nil {
		return nil, err
	}
	res := &AllocResult{}
	res.id = "alloc"
	res.header = fmt.Sprintf("%-8s %9s %12s %14s", "path", "queries", "B/query", "allocs/query")

	wcfg := workload.Config{Seed: sc.Seed, NumUsers: 2000, UserAlpha: 0.8}
	n := sc.Queries * 8
	if n < 2000 {
		n = 2000
	}

	// Engine path: arena-backed generation + recycled outputs + PoolQuery
	// on one store, Parallelism 1 so the measuring goroutine performs every
	// allocation itself.
	{
		var clk simclock.Clock
		scfg := core.Config{
			Seed: sc.Seed, SMTech: blockdev.NandFlash,
			Ring: uring.Config{SGL: true}, CacheBytes: 1 << 20, Parallelism: 1,
		}
		s, err := core.Open(inst, tables, scfg, &clk)
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(inst, wcfg)
		if err != nil {
			return nil, err
		}
		var obuf core.OutputBuf
		loop := func(queries int) error {
			now := s.LoadDone()
			for i := 0; i < queries; i++ {
				issue := now + simclock.Time(time.Duration(i)*time.Millisecond)
				q := gen.NextShared()
				outs := s.OutputsFor(q, &obuf)
				if _, err := s.PoolQuery(issue, q, outs); err != nil {
					return err
				}
			}
			return nil
		}
		// Warm: grow caches, arena, scratch and result buffers to steady
		// state before measuring.
		if err := loop(n); err != nil {
			return nil, err
		}
		bytes, objs, err := allocDelta(func() error { return loop(n) })
		if err != nil {
			return nil, err
		}
		res.EngineBPerQuery = float64(bytes) / float64(n)
		res.rows = append(res.rows, fmt.Sprintf("%-8s %9d %12.1f %14.2f",
			"engine", n, res.EngineBPerQuery, float64(objs)/float64(n)))
	}

	// Fleet path: front-end + routed members with deep-copied queries,
	// recycled records/QueryBufs, HostWorkers 1.
	{
		scfg := core.Config{
			Seed: sc.Seed, SMTech: blockdev.NandFlash,
			Ring: uring.Config{SGL: true}, CacheBytes: 1 << 20, Parallelism: 1,
		}
		hcfg := serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}
		const nHosts = 4
		hosts, err := cluster.HostSet(inst, tables, nHosts, &scfg, hcfg)
		if err != nil {
			return nil, err
		}
		// A feedback router syncs the front-end with every member before
		// each routing decision, so queue depth — and with it the number of
		// QueryBufs the fleet ever needs — is fixed at one per member. That
		// removes the wall-clock-dependent free-list growth a fire-and-forget
		// router exhibits and makes this row reproducible enough to gate.
		fl, err := cluster.New(hosts, cluster.NewLeastOutstanding(), cluster.Config{Seed: sc.Seed, HostWorkers: 1})
		if err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(inst, wcfg)
		if err != nil {
			return nil, err
		}
		fl.SetGenerator(gen)
		qps := 75.0 * nHosts
		// Two warm runs: the first grows records/routed/free lists, the
		// second verifies they stay grown.
		if _, err := fl.Run(qps, n); err != nil {
			return nil, err
		}
		if _, err := fl.Run(qps, n); err != nil {
			return nil, err
		}
		bytes, objs, err := allocDelta(func() error {
			_, err := fl.Run(qps, n)
			return err
		})
		if err != nil {
			return nil, err
		}
		res.FleetBPerQuery = float64(bytes) / float64(n)
		res.rows = append(res.rows, fmt.Sprintf("%-8s %9d %12.1f %14.2f",
			"fleet", n, res.FleetBPerQuery, float64(objs)/float64(n)))
	}

	res.notes = append(res.notes,
		"steady-state MemStats deltas over warm loops at Parallelism/HostWorkers 1; gated regression-only in benchdiff (>10% growth fails, improvements pass)",
		"engine = NextShared + OutputsFor + PoolQuery on one store; fleet = full Fleet.Run including routing, admission and per-run aggregation")
	return res, nil
}
