package experiments

import (
	"bytes"
	"strings"
	"testing"
)

// quick returns a very small scale for fast tests.
func quick() Scale {
	return Scale{ModelScale: 1.5e-6, Queries: 120, Seed: 7}
}

func runExp(t *testing.T, id string) Result {
	t.Helper()
	res, err := Run(id, quick())
	if err != nil {
		t.Fatalf("%s: %v", id, err)
	}
	var buf bytes.Buffer
	res.Print(&buf)
	if buf.Len() == 0 {
		t.Fatalf("%s printed nothing", id)
	}
	if res.ID() != id {
		t.Fatalf("id mismatch: %s vs %s", res.ID(), id)
	}
	return res
}

func TestRegistryComplete(t *testing.T) {
	// Every table and figure of the evaluation must have a runner.
	want := []string{
		"fig1", "tab1", "fig3", "tab2", "fig4", "fig5", "fig6",
		"tab3", "tab4", "tab8", "tab9", "tab10", "tab11", "cluster", "fleetscale", "alloc", "drift",
		"rowrange", "coord", "slo", "sgl", "mmap", "deprune", "dequant", "interop", "polling", "warmup", "update",
	}
	got := IDs()
	if len(got) != len(want) {
		t.Fatalf("registry has %d entries, want %d", len(got), len(want))
	}
	for _, id := range want {
		if Title(id) == "" {
			t.Errorf("missing title for %s", id)
		}
	}
	if _, err := Run("nope", quick()); err == nil {
		t.Fatal("unknown id should fail")
	}
}

func TestAlloc(t *testing.T) {
	res := runExp(t, "alloc").(*AllocResult)
	// The engine hot path is the zero-alloc contract; a little headroom
	// absorbs incidental runtime allocations on slow machines.
	if res.EngineBPerQuery > 64 {
		t.Fatalf("engine path allocates %.1f B/query, want ~0", res.EngineBPerQuery)
	}
	// The fleet path keeps only aggregate per-run costs (histograms,
	// result assembly) — well under a kilobyte amortized per query.
	if res.FleetBPerQuery > 1024 {
		t.Fatalf("fleet path allocates %.1f B/query, want < 1024", res.FleetBPerQuery)
	}
}

func TestFig1(t *testing.T) {
	res := runExp(t, "fig1").(*Fig1Result)
	if res.LowBWCapacityFrac < 0.3 {
		t.Fatalf("low-BW capacity fraction %.2f; Fig. 1 expects the majority of capacity at low BW", res.LowBWCapacityFrac)
	}
	if res.UserBytes <= 0 || res.TotalBytes <= res.UserBytes {
		t.Fatalf("byte accounting: user=%d total=%d", res.UserBytes, res.TotalBytes)
	}
}

func TestTab1(t *testing.T) {
	var buf bytes.Buffer
	runExp(t, "tab1").Print(&buf)
	for _, name := range []string{"Nand", "Optane", "ZSSD", "CXL"} {
		if !strings.Contains(buf.String(), name) {
			t.Errorf("catalog missing %s", name)
		}
	}
}

func TestFig3Shape(t *testing.T) {
	res := runExp(t, "fig3").(*Fig3Result)
	nand := res.Curves["PCIe Nand Flash"]
	opt := res.Curves["PCIe 3DXP (Optane)"]
	if len(nand) == 0 || len(opt) == 0 {
		t.Fatal("missing curves")
	}
	// Fig. 3 shape: Optane latency at its knee far below Nand's.
	if opt[0].MeanLatency >= nand[0].MeanLatency {
		t.Fatalf("Optane low-load latency %v should undercut Nand %v",
			opt[0].MeanLatency, nand[0].MeanLatency)
	}
	// Latency must rise toward the ceiling for both.
	if nand[len(nand)-1].MeanLatency <= nand[0].MeanLatency {
		t.Fatal("Nand latency should rise with load")
	}
	// Optane's achievable IOPS ≫ Nand's.
	if opt[len(opt)-1].AchievedIOPS < 4*nand[len(nand)-1].AchievedIOPS {
		t.Fatalf("Optane IOPS %f should be several times Nand %f",
			opt[len(opt)-1].AchievedIOPS, nand[len(nand)-1].AchievedIOPS)
	}
}

func TestTab2(t *testing.T) { runExp(t, "tab2") }

func TestFig4Shape(t *testing.T) {
	res := runExp(t, "fig4").(*Fig4Result)
	last := len(res.UserCDF) - 1
	if res.UserCDF[last] < 0.99 || res.ItemCDF[last] < 0.99 {
		t.Fatal("CDFs must reach 1.0 at full population")
	}
	// Item locality > user locality at the 10% point (index of 0.1).
	idx10 := -1
	for i, f := range []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0} {
		if f == 0.1 {
			idx10 = i
		}
	}
	if res.ItemCDF[idx10] <= res.UserCDF[idx10] {
		t.Fatalf("item CDF %.3f should exceed user %.3f at 10%% rows",
			res.ItemCDF[idx10], res.UserCDF[idx10])
	}
}

func TestFig5Shape(t *testing.T) {
	res := runExp(t, "fig5").(*Fig5Result)
	if res.AvgUser <= 0 || res.AvgItem <= 0 {
		t.Fatal("missing averages")
	}
	// Fig. 5: low spatial locality overall.
	if res.AvgUser > 0.6 {
		t.Fatalf("user spatial locality %.2f too high for the Fig. 5 regime", res.AvgUser)
	}
}

func TestTab3(t *testing.T) { runExp(t, "tab3") }
func TestTab4(t *testing.T) { runExp(t, "tab4") }

func TestTab8Shape(t *testing.T) {
	res := runExp(t, "tab8").(*Tab8Result)
	// Table 8's qualitative claims: the small host sustains a usable
	// fraction of the big host's QPS, and the fleet saves power.
	if res.SDMQPS <= 0 || res.BaselineQPS <= 0 {
		t.Fatal("QPS measurements missing")
	}
	if res.SDMQPS > res.BaselineQPS {
		t.Fatalf("SDM on the small host (%.0f) should not beat the big DRAM host (%.0f)",
			res.SDMQPS, res.BaselineQPS)
	}
	if res.Saving <= 0 {
		t.Fatalf("SDM fleet should save power, got %.2f", res.Saving)
	}
	if res.HitRate < 0.5 {
		t.Fatalf("steady-state hit rate %.2f too low", res.HitRate)
	}
}

func TestTab9Shape(t *testing.T) {
	res := runExp(t, "tab9").(*Tab9Result)
	// Table 9's qualitative claim: Optane sustains more QPS than Nand.
	if res.OptaneQPS <= res.NandQPS {
		t.Fatalf("Optane QPS %.0f should exceed Nand %.0f", res.OptaneQPS, res.NandQPS)
	}
}

func TestTab10(t *testing.T) {
	var buf bytes.Buffer
	runExp(t, "tab10").Print(&buf)
	if !strings.Contains(buf.String(), "M3") {
		t.Fatal("missing M3 row")
	}
}

func TestTab11(t *testing.T) { runExp(t, "tab11") }

func TestCluster(t *testing.T) {
	// Acceptance: sticky hashing improves per-host cache hit rate over
	// round-robin on the same trace, and the host-failure scenario
	// completes with rerouted users and a visible warmup signature.
	res := runExp(t, "cluster").(*ClusterResult)
	if res.StickyHitRate <= res.RRHitRate {
		t.Fatalf("sticky hit rate %.3f should beat round-robin %.3f", res.StickyHitRate, res.RRHitRate)
	}
	if res.ReroutedUsers == 0 {
		t.Fatal("failure drill rerouted no users")
	}
	// The §A.4 warmup signature: rerouted users hit cold survivor caches.
	// The hit-rate drop is the robust signal — the latency ratio is
	// reported too, but Eq. 3 hides much of the user-side IO behind the
	// item path, so it is noisy at test scale.
	if res.WarmupHitDrop <= 0 {
		t.Fatalf("rerouted users should hit cold caches: drop=%.4f", res.WarmupHitDrop)
	}
	if res.WarmupSpike <= 0 {
		t.Fatalf("warmup spike should be measured: %g", res.WarmupSpike)
	}
	if res.ClusterHosts <= 0 || res.SingleExtrapolationHosts <= 0 {
		t.Fatalf("provisioning paths: cluster=%d single=%d", res.ClusterHosts, res.SingleExtrapolationHosts)
	}
}

func TestDrift(t *testing.T) {
	// The adaptive-tiering acceptance drill, asserted deterministically
	// for the fixed test seed.
	res := runExp(t, "drift").(*DriftResult)

	// The rotation must produce a real FM-served drop on both hosts.
	if drop := res.AdaptPre - res.AdaptPost; drop < 0.2 {
		t.Fatalf("rotation barely moved the adaptive FM rate: pre=%.3f post=%.3f", res.AdaptPre, res.AdaptPost)
	}
	if drop := res.StaticPre - res.StaticPost; drop < 0.2 {
		t.Fatalf("rotation barely moved the static FM rate: pre=%.3f post=%.3f", res.StaticPre, res.StaticPost)
	}

	// Adaptive placement recovers at least half of the drop within the
	// run; static does not.
	if res.AdaptRecovery < 0.5 {
		t.Fatalf("adaptive recovery %.2f < 0.5 (pre=%.3f post=%.3f final=%.3f)",
			res.AdaptRecovery, res.AdaptPre, res.AdaptPost, res.AdaptFinal)
	}
	if res.StaticRecovery >= 0.5 {
		t.Fatalf("static placement should stay degraded, recovered %.2f", res.StaticRecovery)
	}
	if res.AdaptFinal < res.StaticFinal+0.3 {
		t.Fatalf("adaptive final FM rate %.3f not clearly above static %.3f", res.AdaptFinal, res.StaticFinal)
	}

	// The recovery must come from actual bandwidth-accounted migrations.
	if res.Promotions == 0 || res.Demotions == 0 || res.MigratedBytes == 0 {
		t.Fatalf("no migrations recorded: %d promotions, %d demotions, %d bytes",
			res.Promotions, res.Demotions, res.MigratedBytes)
	}

	// The bandwidth cap measurably bounds the foreground tail penalty
	// during migration: unpaced migration dumps the table onto the
	// devices and the worst foreground query pays for it.
	if res.CappedPeakLat*2 >= res.UnpacedPeakLat {
		t.Fatalf("cap did not bound the migration burst: capped peak %.2fms vs unpaced %.2fms",
			res.CappedPeakLat*1e3, res.UnpacedPeakLat*1e3)
	}
	if res.CappedPeakP99 > res.UnpacedPeakP99 {
		t.Fatalf("capped post-rotation p99 %.2fms above unpaced %.2fms",
			res.CappedPeakP99*1e3, res.UnpacedPeakP99*1e3)
	}
}

func TestRowRange(t *testing.T) {
	// The partial-table migration acceptance drill, asserted
	// deterministically for the fixed test seed: under the same drift,
	// DRAM budget and bandwidth cap, range-granular adaptation holds the
	// FM-served rate within 5 points of whole-table adaptation while
	// migrating at most half the bytes.
	res := runExp(t, "rowrange").(*RowRangeResult)

	// The rotation must genuinely hurt whole-table placement (its budget
	// fits only the spotlight tables) before it recovers.
	if drop := res.TablePre - res.TablePost; drop < 0.05 {
		t.Fatalf("rotation barely moved the whole-table FM rate: pre=%.3f post=%.3f", res.TablePre, res.TablePost)
	}
	if res.TableRecovery < 0.5 {
		t.Fatalf("whole-table adaptation failed to recover: %.2f (pre=%.3f post=%.3f final=%.3f)",
			res.TableRecovery, res.TablePre, res.TablePost, res.TableFinal)
	}

	// Acceptance: range granularity ends within 5 points of whole-table…
	if res.RangeFinal < res.TableFinal-0.05 {
		t.Fatalf("range-granular final FM rate %.3f more than 5 points below whole-table %.3f",
			res.RangeFinal, res.TableFinal)
	}
	// …while its residency (hot heads of every table) also softens the
	// drop itself…
	if res.RangePost < res.TablePost {
		t.Fatalf("range-granular post-rotation FM rate %.3f below whole-table %.3f",
			res.RangePost, res.TablePost)
	}
	// …and migrating at most half the bytes under the same cap.
	if res.TableBytes == 0 || res.RangeBytes*2 > res.TableBytes {
		t.Fatalf("range granularity migrated %d bytes vs %d whole-table (want <= 50%%)",
			res.RangeBytes, res.TableBytes)
	}

	// The FM service must actually come from FM-resident ranges, and the
	// repeated run at a different HostWorkers count must be bit-identical.
	if res.RangeServedFinal < 0.5 {
		t.Fatalf("final-window range-served rate %.3f too low for a range-resident regime", res.RangeServedFinal)
	}
	if !res.WorkersDeterministic {
		t.Fatal("range drill diverged across HostWorkers counts")
	}
}

func TestCoord(t *testing.T) {
	// The fleet-coordination acceptance drill, asserted deterministically
	// for the fixed test seed: under sustained drift, the staggered
	// wear-aware fleet recovers to the same FM-served rate as N
	// independent adapters while spending fewer SM demote-bytes, and its
	// post-rotation fleet tail stays within 2x the single-host
	// bandwidth-capped reference instead of spiking with the lockstep
	// burst. The drill runs at its canonical Default scale — the same
	// scale the CI benchmark trajectory records — because the wear
	// budget's bind point is calibrated to the default drill geometry
	// (warmup length and rotation period).
	resAny, err := Run("coord", Default())
	if err != nil {
		t.Fatal(err)
	}
	res := resAny.(*CoordResult)

	// The drill is real: both fleets migrate, and the lockstep fleet
	// pays demote writes for every rotation.
	if res.LockSMWrites == 0 || res.CoordSMWrites == 0 {
		t.Fatalf("fleets spent no endurance: lockstep %d, coordinated %d", res.LockSMWrites, res.CoordSMWrites)
	}

	// Acceptance: the coordinated fleet's post-rotation p99 stays within
	// 2x the single-host bandwidth-capped tail…
	if res.SinglePeakP99 <= 0 || res.CoordPeakP99 > 2*res.SinglePeakP99 {
		t.Fatalf("coordinated peak post-rotation p99 %.2fms above 2x single-host capped %.2fms",
			res.CoordPeakP99*1e3, res.SinglePeakP99*1e3)
	}
	// …while the lockstep fleet's simultaneous unpaced bursts push both
	// its worst window p99 and its worst single query above the
	// coordinated fleet's.
	if res.LockPeakP99 <= res.CoordPeakP99 {
		t.Fatalf("lockstep peak p99 %.2fms not above coordinated %.2fms",
			res.LockPeakP99*1e3, res.CoordPeakP99*1e3)
	}
	if res.LockPeakLat <= res.CoordPeakLat {
		t.Fatalf("lockstep burst %.2fms not above coordinated %.2fms",
			res.LockPeakLat*1e3, res.CoordPeakLat*1e3)
	}

	// Acceptance: fewer total SM demote-bytes than N independent
	// adapters (meaningfully fewer — at least 10% saved)…
	if res.CoordSMWrites*10 >= res.LockSMWrites*9 {
		t.Fatalf("coordinated SM writes %d not meaningfully below lockstep %d",
			res.CoordSMWrites, res.LockSMWrites)
	}
	// …at equal final FM-served recovery (within 5 points).
	if res.CoordFinal < res.LockFinal-0.05 {
		t.Fatalf("coordinated final FM rate %.3f more than 5 points below lockstep %.3f",
			res.CoordFinal, res.LockFinal)
	}

	// The DWPD projection orders the same way as the raw spend.
	if res.CoordDWPDUtil >= res.LockDWPDUtil {
		t.Fatalf("coordinated DWPD utilization %.2f not below lockstep %.2f",
			res.CoordDWPDUtil, res.LockDWPDUtil)
	}

	// The coordinated run repeated at HostWorkers=4 must be bit-identical.
	if !res.WorkersDeterministic {
		t.Fatal("coordinated drill diverged across HostWorkers counts")
	}
}

func TestSLO(t *testing.T) {
	// The SLO-aware serving acceptance drill, asserted deterministically
	// for the fixed seed. Like the coord drill it runs at its canonical
	// Default scale: the routing margin lives in the drill's congestion
	// regime, which the scale's query count and QPS jointly set.
	resAny, err := Run("slo", Default())
	if err != nil {
		t.Fatal(err)
	}
	res := resAny.(*SLOResult)

	// Acceptance: under the coordinated drift drill the migration-aware
	// weighted router beats sticky hashing on post-rotation fleet p99…
	if res.WeightedPeakP99 >= res.StickyPeakP99 {
		t.Fatalf("weighted peak post-rotation p99 %.2fms not below sticky %.2fms",
			res.WeightedPeakP99*1e3, res.StickyPeakP99*1e3)
	}
	// …while keeping the FM-served rate within one point.
	if d := res.WeightedFinalFM - res.StickyFinalFM; d < -0.01 || d > 0.01 {
		t.Fatalf("weighted final FM rate %.3f drifted more than 1 point from sticky %.3f",
			res.WeightedFinalFM, res.StickyFinalFM)
	}

	// Acceptance: the utilization sweep reproduces the BLIS crossover —
	// sticky's locality win at low load, round-robin's even spread
	// winning the tail once the hottest replica saturates.
	if res.LowHitSticky <= res.LowHitRR {
		t.Fatalf("sticky low-load hit rate %.3f should beat round-robin %.3f",
			res.LowHitSticky, res.LowHitRR)
	}
	if res.StickyP99[0] > 2*res.RRP99[0] {
		t.Fatalf("low-load sticky p99 %.2fms should stay comparable to rr %.2fms",
			res.StickyP99[0]*1e3, res.RRP99[0]*1e3)
	}
	if res.StickyP99[2] < 4*res.RRP99[2] {
		t.Fatalf("high-load sticky p99 %.2fms should exceed 4x rr %.2fms",
			res.StickyP99[2]*1e3, res.RRP99[2]*1e3)
	}

	// Acceptance: per-class admission bounds the 2x-overload tail, and the
	// bound's cost is a visible, accounted shed share.
	if 4*res.GatedP99 > res.OpenP99 {
		t.Fatalf("gated p99 %.2fms not at least 4x below open-loop %.2fms",
			res.GatedP99*1e3, res.OpenP99*1e3)
	}
	if res.ShedShare < 0.25 {
		t.Fatalf("2x overload should shed a substantial share, got %.2f", res.ShedShare)
	}

	// Acceptance: the decision trace proves the PR-6 negative result
	// per-decision — a queue weight below affinity's never moves a user —
	// while the config-level counterfactual (both traces joined on
	// arrival sequence) shows migration-aware routing beat sticky
	// query-for-query after the rotation.
	if res.QueueRoutes == 0 || res.QueueDiversions != 0 {
		t.Fatalf("queue-below-affinity drill diverted %d of %d routes, want 0 of >0",
			res.QueueDiversions, res.QueueRoutes)
	}
	if res.RegretJoined == 0 || res.RegretVsStickyMS >= 0 {
		t.Fatalf("post-rotation regret vs sticky %+.4fms over %d joined queries, want negative over >0",
			res.RegretVsStickyMS, res.RegretJoined)
	}

	// The weighted drill and the gated overload repeated at HostWorkers=4
	// must be bit-identical.
	if !res.WorkersDeterministic {
		t.Fatal("slo drill diverged across HostWorkers counts")
	}
}

func TestReportOf(t *testing.T) {
	res := runExp(t, "tab10")
	rep := ReportOf(res)
	if rep.ID != "tab10" || rep.Title == "" || len(rep.Rows) == 0 || rep.Header == "" {
		t.Fatalf("report %+v", rep)
	}
}

func TestSGLShape(t *testing.T) {
	res := runExp(t, "sgl").(*SGLResult)
	if res.BusSavings < 0.5 {
		t.Fatalf("bus savings %.2f too low (paper: ~75%%)", res.BusSavings)
	}
	if res.FMTrafficRatio < 2 {
		t.Fatalf("FM traffic ratio %.2f, want >2x (paper §4.3)", res.FMTrafficRatio)
	}
	if res.LatencySaving <= 0 {
		t.Fatalf("SGL should save latency, got %.3f", res.LatencySaving)
	}
}

func TestMmapShape(t *testing.T) {
	res := runExp(t, "mmap").(*MmapResult)
	if res.LatencyRatio < 1.5 {
		t.Fatalf("mmap latency ratio %.1f, want ≈3x (paper §4.1)", res.LatencyRatio)
	}
}

func TestDepruneShape(t *testing.T) {
	res := runExp(t, "deprune").(*DepruneResult)
	if res.ExtraRequestFrac <= 0 || res.ExtraRequestFrac > 0.5 {
		t.Fatalf("extra requests %.3f outside the plausible band (paper: +2.5%%)", res.ExtraRequestFrac)
	}
	if res.CacheGainFrac <= 0 {
		t.Fatalf("deprune must enlarge the cache budget, got %.3f", res.CacheGainFrac)
	}
}

func TestDequantShape(t *testing.T) {
	res := runExp(t, "dequant").(*DequantResult)
	if res.SMGrowth <= 0 {
		t.Fatal("fp32 expansion must grow SM")
	}
}

func TestInterOpShape(t *testing.T) {
	res := runExp(t, "interop").(*InterOpResult)
	if res.LatencyReduction <= 0 {
		t.Fatalf("inter-op must reduce latency, got %.3f", res.LatencyReduction)
	}
}

func TestPollingShape(t *testing.T) {
	res := runExp(t, "polling").(*PollingResult)
	if res.Gain < 0.3 || res.Gain > 0.7 {
		t.Fatalf("polling gain %.2f, want ≈0.5", res.Gain)
	}
}

func TestWarmup(t *testing.T) { runExp(t, "warmup") }

func TestUpdate(t *testing.T) {
	var buf bytes.Buffer
	runExp(t, "update").Print(&buf)
	out := buf.String()
	if !strings.Contains(out, "Nand") || !strings.Contains(out, "Optane") {
		t.Fatal("update experiment should compare Nand and Optane")
	}
}

func TestFig6(t *testing.T) {
	if testing.Short() {
		t.Skip("fig6 runs several QPS searches")
	}
	runExp(t, "fig6")
}

func TestScalePresets(t *testing.T) {
	d, f := Default(), Full()
	if d.Queries >= f.Queries || d.ModelScale >= f.ModelScale {
		t.Fatal("Full must exceed Default")
	}
	if d.ModelScale <= 0 {
		t.Fatal("bad default scale")
	}
}
