package experiments

import (
	"fmt"
	"sort"

	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// Fig1Result is the table-size vs bytes-per-query inventory of Fig. 1.
type Fig1Result struct {
	tableResult
	UserBytes, TotalBytes int64
	LowBWCapacityFrac     float64
}

// Fig1 builds the 734-table/140 GB model of Fig. 1 and reports the
// size-vs-bandwidth scatter, confirming the paper's claim that the
// majority of capacity needs low bandwidth.
func Fig1(sc Scale) (Result, error) {
	inst, err := model.Build(model.Fig1Model(), clampScale(sc.ModelScale), sc.Seed)
	if err != nil {
		return nil, err
	}
	bw := inst.BandwidthPerQuery()
	type row struct {
		sizeMB, bytesPerQ float64
		kind              embedding.Kind
	}
	rows := make([]row, len(inst.Tables))
	var total int64
	for i, s := range inst.Tables {
		rows[i] = row{
			sizeMB:    float64(s.SizeBytes()) / float64(inst.Scale) / (1 << 20),
			bytesPerQ: bw[i],
			kind:      s.Kind,
		}
		total += s.SizeBytes()
	}
	// Capacity fraction in the low-BW half of tables.
	order := make([]int, len(rows))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return bw[order[a]] < bw[order[b]] })
	var lowCap int64
	for _, i := range order[:len(order)/2] {
		lowCap += inst.Tables[i].SizeBytes()
	}
	res := &Fig1Result{
		UserBytes:         inst.UserBytes(),
		TotalBytes:        total,
		LowBWCapacityFrac: float64(lowCap) / float64(total),
	}
	res.id = "fig1"
	res.rows = append(res.rows,
		fmt.Sprintf("tables: %d (%d user / %d item), scaled size %.1f MB (paper: 140 GB)",
			len(inst.Tables), inst.Config.NumUserTables, inst.Config.NumItemTables,
			float64(total)/(1<<20)),
		fmt.Sprintf("user capacity fraction: %.2f (paper: 100GB/140GB = 0.71)",
			float64(inst.UserBytes())/float64(total)),
		fmt.Sprintf("capacity held by the lower-BW half of tables: %.0f%% (paper: majority)",
			res.LowBWCapacityFrac*100))
	// Print a compact scatter sample (10 tables across the size range).
	res.rows = append(res.rows, fmt.Sprintf("%-8s %12s %14s %6s", "table", "size(MB@full)", "bytes/query", "kind"))
	step := len(order) / 10
	if step == 0 {
		step = 1
	}
	for k := 0; k < len(order); k += step {
		i := order[k]
		res.rows = append(res.rows, fmt.Sprintf("%-8d %12.1f %14.0f %6s",
			i, rows[i].sizeMB, rows[i].bytesPerQ, rows[i].kind))
	}
	return res, nil
}

// Tab2 prints the two usecases of Table 2 with their batch semantics.
func Tab2(sc Scale) (Result, error) {
	r := &tableResult{id: "tab2"}
	r.rows = []string{
		"Inference:      user batch = 1, item batch > 1 (O(100)); latency sensitive",
		"InferenceEval:  user batch == item batch > 1; accuracy validation",
	}
	inst, _, err := experimentModel(sc)
	if err != nil {
		return nil, err
	}
	inf, err := workload.NewGenerator(inst, workload.Config{Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	ev, err := workload.NewGenerator(inst, workload.Config{Seed: sc.Seed, EvalMode: true})
	if err != nil {
		return nil, err
	}
	qi, qe := inf.Next(), ev.Next()
	r.rows = append(r.rows,
		fmt.Sprintf("generated inference query:     user pools=%d item pools=%d", len(qi.Ops[0].Pools), len(qi.Ops[len(qi.Ops)-1].Pools)),
		fmt.Sprintf("generated inferenceEval query: user pools=%d item pools=%d", len(qe.Ops[0].Pools), len(qe.Ops[len(qe.Ops)-1].Pools)))
	return r, nil
}

// Fig4Result carries the temporal-locality CDF series.
type Fig4Result struct {
	tableResult
	UserCDF, ItemCDF, PerHostUserCDF []float64
}

// Fig4 reproduces the temporal-locality study: per-table access CDFs for
// user (a) and item (b) embeddings, plus the per-host uplift from sticky
// routing (c).
func Fig4(sc Scale) (Result, error) {
	inst, _, err := experimentModel(sc)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(inst, workload.Config{Seed: sc.Seed, NumUsers: 5000, UserAlpha: 0.8})
	if err != nil {
		return nil, err
	}
	qs := gen.GenerateTrace(sc.Queries * 4)
	results := workload.TemporalLocality(inst, qs, 100)
	user := workload.AverageCDF(results, embedding.User)
	item := workload.AverageCDF(results, embedding.Item)
	perHost := workload.AverageCDF(
		workload.PerHostTemporalLocality(inst, qs, 8, true, 0), embedding.User)

	res := &Fig4Result{}
	res.id = "fig4"
	res.header = fmt.Sprintf("%-12s %10s %10s %14s", "rows frac", "user CDF", "item CDF", "user/host CDF")
	for i, f := range workload.CDFFractions {
		var u, it, ph float64
		if i < len(user) {
			u = user[i].Frac
		}
		if i < len(item) {
			it = item[i].Frac
		}
		if i < len(perHost) {
			ph = perHost[i].Frac
		}
		res.UserCDF = append(res.UserCDF, u)
		res.ItemCDF = append(res.ItemCDF, it)
		res.PerHostUserCDF = append(res.PerHostUserCDF, ph)
		res.rows = append(res.rows, fmt.Sprintf("%-12g %10.3f %10.3f %14.3f", f, u, it, ph))
	}
	res.notes = append(res.notes,
		"paper: power-law CDFs; item locality > user locality; per-host (sticky) > global")
	return res, nil
}

// Fig5Result carries the spatial-locality metric per table kind.
type Fig5Result struct {
	tableResult
	AvgUser, AvgItem float64
}

// Fig5 reproduces the spatial-locality heatmap summary: unique-index to
// unique-4KB-block ratios, normalized per table.
func Fig5(sc Scale) (Result, error) {
	// Spatial locality needs bigger tables so the accessed set stays
	// sparse; use a dedicated instance.
	cfg := model.M1()
	cfg.NumUserTables = 6
	cfg.NumItemTables = 3
	cfg.ItemBatch = 8
	inst, err := model.Build(cfg, clampScale(sc.ModelScale*500), sc.Seed)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(inst, workload.Config{Seed: sc.Seed})
	if err != nil {
		return nil, err
	}
	qs := gen.GenerateTrace(sc.Queries)
	results := workload.SpatialLocality(inst, qs, 4096)
	res := &Fig5Result{}
	res.id = "fig5"
	res.header = fmt.Sprintf("%-8s %6s %10s %12s %12s", "table", "kind", "locality", "uniqueIdx", "uniqueBlk")
	var su, si float64
	var nu, ni int
	for _, r := range results {
		res.rows = append(res.rows, fmt.Sprintf("%-8d %6s %10.3f %12d %12d",
			r.Table, r.Kind, r.Locality, r.UniqueIdx, r.UniqueBlocks))
		if r.Kind == embedding.User {
			su += r.Locality
			nu++
		} else {
			si += r.Locality
			ni++
		}
	}
	if nu > 0 {
		res.AvgUser = su / float64(nu)
	}
	if ni > 0 {
		res.AvgItem = si / float64(ni)
	}
	res.rows = append(res.rows, fmt.Sprintf("average: user %.3f, item %.3f", res.AvgUser, res.AvgItem))
	res.notes = append(res.notes, "paper: cool heat map overall — low spatial locality (value 1.0 = perfect)")
	return res, nil
}

// Tab3 reproduces the pooled-embedding subsequence profiling (Table 3).
func Tab3(sc Scale) (Result, error) {
	inst, _, err := experimentModel(sc)
	if err != nil {
		return nil, err
	}
	// Large user population with churn: full-sequence repeats become
	// rare (the paper's c=P ≈ 5%), while partial overlap stays common.
	gen, err := workload.NewGenerator(inst, workload.Config{
		Seed: sc.Seed, NumUsers: 12000, UserAlpha: 0.75, SeqChurn: 0.7,
	})
	if err != nil {
		return nil, err
	}
	// Extract one user table's per-query sequences as the profiled stream.
	var queries [][]int64
	for i := 0; i < sc.Queries*8; i++ {
		q := gen.Next()
		queries = append(queries, q.Ops[0].Pools[0])
	}
	r := &tableResult{
		id:     "tab3",
		header: fmt.Sprintf("%-20s %10s %22s", "Scheme", "Hit rate", "Generated sequences"),
	}
	for _, scheme := range []pooledProfile{
		{pooledSchemeC10, "O(C(avgP,10))"},
		{pooledSchemeC10Top, "O(100)"},
		{pooledSchemeCP, "1"},
	} {
		pr := profileScheme(queries, scheme.scheme, sc.Seed)
		r.rows = append(r.rows, fmt.Sprintf("%-20s %9.1f%% %22s (measured %.1f/qry)",
			pr.Scheme, pr.HitRate*100, scheme.order, pr.GeneratedPerQry))
	}
	r.notes = append(r.notes, "paper: c=10 → 26%, c=10 top → 19%, c=P → 5%")
	return r, nil
}

// Tab4 sweeps the pooled cache LenThreshold (Table 4) on the live store.
func Tab4(sc Scale) (Result, error) {
	inst, tables, err := experimentModel(sc)
	if err != nil {
		return nil, err
	}
	r := &tableResult{
		id:     "tab4",
		header: fmt.Sprintf("%-14s %10s %12s", "LenThreshold", "Hit Rate", "Hit Avg Len"),
	}
	for _, lt := range []int{1, 4, 8, 16, 32} {
		run, err := runStoreTraceWorkload(sc, core.Config{
			Seed:               sc.Seed,
			Ring:               uring.Config{SGL: true},
			PooledCacheBytes:   4 << 20, // stands in for the paper's 4 GB at scale
			PooledLenThreshold: lt,
		}, inst, tables, workload.Config{
			Seed: sc.Seed, NumUsers: 4000, UserAlpha: 0.8, SeqChurn: 0.55,
		})
		if err != nil {
			return nil, err
		}
		ps := run.pooled
		r.rows = append(r.rows, fmt.Sprintf("%-14d %9.2f%% %12.1f", lt, ps.HitRate()*100, ps.AvgHitLen()))
	}
	r.notes = append(r.notes, "paper: hit rate ≈4-4.6%, avg hit len rising 11→76 with threshold")
	return r, nil
}
