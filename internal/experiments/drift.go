package experiments

import (
	"fmt"
	"time"

	"sdm/internal/adapt"
	"sdm/internal/blockdev"
	"sdm/internal/cluster"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/serving"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// DriftResult carries the adaptive-tiering drill: the FM-served hit-rate
// trajectory around a mid-run hot-set rotation for a static vs an
// adaptive host, plus the migration bandwidth-cap tail comparison.
type DriftResult struct {
	tableResult

	// FM-served rates in the window before the rotation, the first window
	// after it, and the final window of the run.
	StaticPre, StaticPost, StaticFinal float64
	AdaptPre, AdaptPost, AdaptFinal    float64
	// Recovery fractions: (final − post) / (pre − post).
	StaticRecovery, AdaptRecovery float64

	// Peak per-window foreground p99 after the rotation, with the
	// migration bandwidth capped vs unpaced.
	CappedPeakP99, UnpacedPeakP99 float64
	// Peak single-query latency after the rotation — the burst metric an
	// unpaced migration dump spikes and the cap bounds.
	CappedPeakLat, UnpacedPeakLat float64
	// Final-window p99 of the static vs adaptive (capped) host.
	StaticFinalP99, AdaptFinalP99 float64

	Promotions, Demotions int
	MigratedBytes         int64
}

// driftModel builds the adaptive-regime instance: equal-sized user tables
// large enough that migrating one visibly occupies the devices, and a
// DRAM budget (chosen by the caller) that fits only the spotlight set.
func driftModel(sc Scale) (*model.Instance, []*embedding.Table, error) {
	cfg := model.M1()
	cfg.NumUserTables = 6
	cfg.NumItemTables = 2
	cfg.ItemBatch = 4
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	cfg.TotalBytes = 32 << 20
	inst, err := model.Build(cfg, 1, sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	for i := 0; i < cfg.NumUserTables; i++ {
		inst.Tables[i].Rows = driftTableBytes / int64(inst.Tables[i].RowBytes())
		// The offline profile matches yesterday's traffic: tables 0 and 1
		// (the phase-0 spotlight) carry the highest static pooling factor,
		// so the Table-5 plan puts exactly them in FM. The rotation then
		// moves the spotlight to tables the static plan has on SM.
		if i < 2 {
			inst.Tables[i].PoolingFactor = 24
		} else {
			inst.Tables[i].PoolingFactor = 12
		}
	}
	for i := cfg.NumUserTables; i < len(inst.Tables); i++ {
		inst.Tables[i].Rows = (64 << 10) / int64(inst.Tables[i].RowBytes())
	}
	tables, err := inst.Materialize()
	if err != nil {
		return nil, nil, err
	}
	return inst, tables, nil
}

// driftTableBytes is the stored size of every user table in the drill.
const driftTableBytes = 4 << 20

// Drift runs the adaptive-tiering drill: a hot-set rotation fires mid-run
// while a static host keeps its offline Table-5 placement and an adaptive
// host (internal/adapt) re-places and migrates under a bandwidth cap. A
// third, unpaced adaptive run shows what the cap buys: without it the
// migration burst lands on the devices at once and the foreground tail
// pays for it.
func Drift(sc Scale) (Result, error) {
	inst, tables, err := driftModel(sc)
	if err != nil {
		return nil, err
	}
	const (
		qps       = 400.0
		windows   = 16
		driftFrac = 1.0 / 3
		cappedBW  = 16 << 20 // bytes/s of migration IO
	)
	n := sc.Queries * 8
	if n < 1600 {
		n = 1600
	}
	warm := n / 2

	run := func(bw float64, adaptive bool) (*cluster.Result, adapt.Stats, error) {
		scfg := engineParallelism(core.Config{
			Seed: sc.Seed, SMTech: blockdev.NandFlash,
			Ring: uring.Config{SGL: true}, CacheBytes: 192 << 10,
			ReserveSM: true,
			Placement: placement.Config{
				Policy: placement.FixedFMWithCache, UserTablesOnly: true,
				DRAMBudget: driftTableBytes*2 + driftTableBytes/2,
			},
		})
		hcfg := serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}
		hosts, err := cluster.HostSet(inst, tables, 1, &scfg, hcfg)
		if err != nil {
			return nil, adapt.Stats{}, err
		}
		var adapters []*adapt.Adapter
		if adaptive {
			adapters, err = cluster.AttachAdaptive(hosts, adapt.Config{
				Interval:             150 * time.Millisecond,
				BandwidthBytesPerSec: bw,
				ChunkBytes:           64 << 10,
			})
			if err != nil {
				return nil, adapt.Stats{}, err
			}
		}
		fl, err := cluster.New(hosts, cluster.NewRoundRobin(), cluster.Config{Seed: sc.Seed, Windows: windows})
		if err != nil {
			return nil, adapt.Stats{}, err
		}
		gen, err := workload.NewGenerator(inst, workload.Config{
			Seed: sc.Seed, NumUsers: 800, UserAlpha: 0.9,
			Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
		})
		if err != nil {
			return nil, adapt.Stats{}, err
		}
		fl.SetGenerator(gen)
		// Warmup pass: caches fill and the adaptive host converges on the
		// pre-rotation spotlight.
		if _, err := fl.Run(qps, warm); err != nil {
			return nil, adapt.Stats{}, err
		}
		if err := fl.ScheduleDrift(driftFrac); err != nil {
			return nil, adapt.Stats{}, err
		}
		res, err := fl.Run(qps, n)
		if err != nil {
			return nil, adapt.Stats{}, err
		}
		return res, cluster.AdapterStats(adapters), nil
	}

	var (
		static, capped, unpaced *cluster.Result
		cappedStats             adapt.Stats
	)
	err = inParallel(
		func() (err error) { static, _, err = run(0, false); return },
		func() (err error) { capped, cappedStats, err = run(cappedBW, true); return },
		func() (err error) { unpaced, _, err = run(0, true); return },
	)
	if err != nil {
		return nil, err
	}

	res := &DriftResult{
		Promotions:    cappedStats.Promotions,
		Demotions:     cappedStats.Demotions,
		MigratedBytes: cappedStats.MigratedBytes,
	}
	res.StaticPre, res.StaticPost, res.StaticFinal = driftPhases(static)
	res.AdaptPre, res.AdaptPost, res.AdaptFinal = driftPhases(capped)
	res.StaticRecovery = recoveryFrac(res.StaticPre, res.StaticPost, res.StaticFinal)
	res.AdaptRecovery = recoveryFrac(res.AdaptPre, res.AdaptPost, res.AdaptFinal)
	res.CappedPeakP99 = peakPostDriftP99(capped)
	res.UnpacedPeakP99 = peakPostDriftP99(unpaced)
	res.CappedPeakLat = peakPostDriftLat(capped)
	res.UnpacedPeakLat = peakPostDriftLat(unpaced)
	res.StaticFinalP99 = finalWindow(static).P99
	res.AdaptFinalP99 = finalWindow(capped).P99

	res.id = "drift"
	res.header = fmt.Sprintf("%-18s %8s %8s %8s %10s %14s %12s %12s",
		"host", "preFM%", "postFM%", "finalFM%", "recovery%", "peak p99(ms)", "p999(ms)", "peak(ms)")
	row := func(name string, r *cluster.Result, pre, post, final, rec float64) string {
		return fmt.Sprintf("%-18s %8.1f %8.1f %8.1f %10.1f %14.2f %12.2f %12.2f",
			name, pre*100, post*100, final*100, rec*100,
			peakPostDriftP99(r)*1e3, r.Latency.P999()*1e3, peakPostDriftLat(r)*1e3)
	}
	sPre, sPost, sFinal := res.StaticPre, res.StaticPost, res.StaticFinal
	aPre, aPost, aFinal := res.AdaptPre, res.AdaptPost, res.AdaptFinal
	res.rows = append(res.rows,
		row("static", static, sPre, sPost, sFinal, res.StaticRecovery),
		row("adaptive (capped)", capped, aPre, aPost, aFinal, res.AdaptRecovery),
		row("adaptive (unpaced)", unpaced, driftPhase1(unpaced), driftPhase2(unpaced), finalWindow(unpaced).FMRate,
			recoveryFrac(driftPhase1(unpaced), driftPhase2(unpaced), finalWindow(unpaced).FMRate)))
	res.rows = append(res.rows,
		fmt.Sprintf("rotation at t=%.2fs; adaptive migrated %d tables (%d promotions, %d demotions, %.1f MB) under a %d MB/s cap",
			capped.DriftAt.Seconds(), res.Promotions+res.Demotions, res.Promotions, res.Demotions,
			float64(res.MigratedBytes)/(1<<20), cappedBW>>20))
	res.rows = append(res.rows,
		fmt.Sprintf("migration tail: peak post-rotation query latency %.2fms capped vs %.2fms unpaced (the cap bounds the foreground penalty)",
			res.CappedPeakLat*1e3, res.UnpacedPeakLat*1e3))
	res.notes = append(res.notes,
		"FM% counts lookups served from fast memory (row-cache hits + FM-direct); promoting a hot table recovers it even though those lookups stop being cache hits",
		"static placement keeps yesterday's spotlight in FM after the rotation, so its FM% stays degraded; the adaptive host re-places within the run")
	return res, nil
}

// driftPhases extracts the pre-rotation, first post-rotation and final
// window FM rates of a drill run.
func driftPhases(r *cluster.Result) (pre, post, final float64) {
	return driftPhase1(r), driftPhase2(r), finalWindow(r).FMRate
}

// driftPhase1 returns the FM rate of the last window ending at or before
// the rotation.
func driftPhase1(r *cluster.Result) float64 {
	out := 0.0
	for _, w := range r.Windows {
		if w.End <= r.DriftAt && w.Queries > 0 {
			out = w.FMRate
		}
	}
	return out
}

// driftPhase2 returns the FM rate of the first window starting at or
// after the rotation.
func driftPhase2(r *cluster.Result) float64 {
	for _, w := range r.Windows {
		if w.Start >= r.DriftAt && w.Queries > 0 {
			return w.FMRate
		}
	}
	return 0
}

// finalWindow returns the last non-empty window.
func finalWindow(r *cluster.Result) cluster.WindowStat {
	var out cluster.WindowStat
	for _, w := range r.Windows {
		if w.Queries > 0 {
			out = w
		}
	}
	return out
}

// peakPostDriftP99 returns the worst per-window p99 at or after the
// rotation — where migration interference shows up.
func peakPostDriftP99(r *cluster.Result) float64 {
	out := 0.0
	for _, w := range r.Windows {
		if w.Start >= r.DriftAt && w.P99 > out {
			out = w.P99
		}
	}
	return out
}

// peakPostDriftLat returns the worst single-query latency at or after the
// rotation — an unpaced migration burst is short enough that window p99
// dilutes it, but the slowest query shows the full dump.
func peakPostDriftLat(r *cluster.Result) float64 {
	out := 0.0
	for _, w := range r.Windows {
		if w.Start >= r.DriftAt && w.MaxLat > out {
			out = w.MaxLat
		}
	}
	return out
}

// recoveryFrac returns how much of the drop (pre − post) the final window
// recovered.
func recoveryFrac(pre, post, final float64) float64 {
	drop := pre - post
	if drop <= 0 {
		return 0
	}
	rec := (final - post) / drop
	if rec < 0 {
		return 0
	}
	return rec
}
