// Package experiments regenerates every table and figure of the paper's
// evaluation (§5, Figs. 1–6, Tables 1–11, plus the Appendix ablations).
// Each experiment runs the full SDM stack at a configurable capacity scale
// (production sizes do not fit a test machine; all ratios are preserved)
// and returns a printable result whose rows mirror what the paper reports.
// cmd/sdmbench prints them; the repository-root benchmarks wrap them.
package experiments

import (
	"fmt"
	"io"
	"sort"
)

// Scale bounds experiment cost. Default() keeps every experiment in the
// seconds range for benchmarks; Full() runs larger traces for the CLI.
type Scale struct {
	// ModelScale multiplies paper model capacities (1 = full size).
	ModelScale float64
	// Queries per measured run.
	Queries int
	// Seed for all synthesis.
	Seed uint64
}

// Default returns the benchmark-friendly scale.
func Default() Scale {
	return Scale{ModelScale: 3e-6, Queries: 300, Seed: 42}
}

// Full returns the CLI scale (minutes, not hours).
func Full() Scale {
	return Scale{ModelScale: 3e-5, Queries: 2000, Seed: 42}
}

// Result is a printable experiment outcome.
type Result interface {
	// ID returns the experiment identifier (e.g. "fig3", "tab8").
	ID() string
	// Print renders the paper-style rows.
	Print(w io.Writer)
}

// Runner executes one experiment.
type Runner func(sc Scale) (Result, error)

// registry maps experiment ids to runners, in presentation order.
var registry = []struct {
	id     string
	title  string
	runner Runner
}{
	{"fig1", "Fig. 1: table size vs bytes/query", Fig1},
	{"tab1", "Table 1: SM technology catalog", Tab1},
	{"fig3", "Fig. 3: IOPS vs loaded latency (Nand vs Optane)", Fig3},
	{"tab2", "Table 2: usecases (Inference vs InferenceEval)", Tab2},
	{"fig4", "Fig. 4: temporal locality CDFs", Fig4},
	{"fig5", "Fig. 5: spatial locality", Fig5},
	{"fig6", "Fig. 6: cache organization & DRAM placement", Fig6},
	{"tab3", "Table 3: pooled-embedding subsequence profiling", Tab3},
	{"tab4", "Table 4: pooled cache LenThreshold sweep", Tab4},
	{"tab8", "Table 8: M1 on simpler hardware (power)", Tab8},
	{"tab9", "Table 9: M2 avoiding scale-out (power)", Tab9},
	{"tab10", "Table 10: M3 SDM sizing roofline", Tab10},
	{"tab11", "Table 11: M3 multi-tenancy fleet power", Tab11},
	{"cluster", "§4.2/Fig. 4c at serving time: fleet routing policies", Cluster},
	{"fleetscale", "scale-up campaign: metered fleet wall-clock/allocation baseline (warn-only)", FleetScale},
	{"alloc", "steady-state allocation budget: B/query + allocs/query on the engine and fleet hot paths (gated regression-only)", Alloc},
	{"drift", "adaptive tiering: hot-set rotation, re-placement, capped migration", Drift},
	{"rowrange", "hot-row-range migration: move rows, not tables, under one bandwidth cap", RowRange},
	{"coord", "fleet-coordinated, wear-aware migration windows: staggered vs lockstep under drift", Coord},
	{"slo", "SLO-aware serving: scorer-weighted routing, utilization knee, per-class admission", SLO},
	{"sgl", "§4.1.1: SGL sub-block read savings", SGL},
	{"mmap", "§4.1: mmap vs DIRECT_IO", Mmap},
	{"deprune", "§4.5: de-pruning at load time", Deprune},
	{"dequant", "§A.5: de-quantization at load time", Dequant},
	{"interop", "§A.2: inter-op parallelism", InterOp},
	{"polling", "§A.1: polling vs IRQ completions", Polling},
	{"warmup", "§A.4: warmup over-provisioning", Warmup},
	{"update", "§A.3/§3: model update & endurance", Update},
}

// exclusiveIDs marks experiments that measure process-global state
// (runtime.MemStats deltas) and therefore must not run concurrently with
// any other experiment — a parallel harness runs them on their own.
var exclusiveIDs = map[string]bool{"alloc": true}

// Exclusive reports whether the experiment must run with nothing else
// allocating in the process (see exclusiveIDs).
func Exclusive(id string) bool { return exclusiveIDs[id] }

// IDs returns all experiment ids in presentation order.
func IDs() []string {
	out := make([]string, len(registry))
	for i, e := range registry {
		out[i] = e.id
	}
	return out
}

// Title returns an experiment's description.
func Title(id string) string {
	for _, e := range registry {
		if e.id == id {
			return e.title
		}
	}
	return ""
}

// Run executes the experiment with the given id.
func Run(id string, sc Scale) (Result, error) {
	for _, e := range registry {
		if e.id == id {
			return e.runner(sc)
		}
	}
	known := IDs()
	sort.Strings(known)
	return nil, fmt.Errorf("experiments: unknown id %q (known: %v)", id, known)
}

// tableResult is a generic printable result.
type tableResult struct {
	id     string
	header string
	rows   []string
	notes  []string
}

func (r *tableResult) ID() string { return r.id }

// Header exposes the column header for machine-readable output.
func (r *tableResult) Header() string { return r.header }

// Rows exposes the rendered rows for machine-readable output.
func (r *tableResult) Rows() []string { return r.rows }

// Notes exposes the annotations for machine-readable output.
func (r *tableResult) Notes() []string { return r.notes }

// Report is the machine-readable form of a Result — what cmd/sdmbench
// -json emits, so benchmark trajectories (BENCH_*.json) can be tracked
// across PRs.
type Report struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	Header string   `json:"header,omitempty"`
	Rows   []string `json:"rows"`
	Notes  []string `json:"notes,omitempty"`
}

// ReportOf converts a Result into its Report form. Results that don't
// embed tableResult degrade to id + title.
func ReportOf(res Result) Report {
	rep := Report{ID: res.ID(), Title: Title(res.ID())}
	if t, ok := res.(interface {
		Header() string
		Rows() []string
		Notes() []string
	}); ok {
		rep.Header = t.Header()
		rep.Rows = t.Rows()
		rep.Notes = t.Notes()
	}
	return rep
}

func (r *tableResult) Print(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s ==\n", r.id, Title(r.id))
	if r.header != "" {
		fmt.Fprintln(w, r.header)
	}
	for _, row := range r.rows {
		fmt.Fprintln(w, row)
	}
	for _, n := range r.notes {
		fmt.Fprintf(w, "note: %s\n", n)
	}
}
