package experiments

import (
	"fmt"
	"io"
	"runtime"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/cluster"
	"sdm/internal/core"
	"sdm/internal/serving"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// FleetScaleResult is the scale-up campaign baseline: wall-clock cost and
// allocation footprint of large metered fleets. Unlike the paper-artifact
// experiments its headline numbers are wall-clock (machine-dependent), so
// its rows ride in BENCH_<rev>.json as a warn-only trajectory — never in
// the gated set (the deterministic allocation budget lives in the gated
// "alloc" experiment instead).
type FleetScaleResult struct {
	tableResult
	// WallSeconds and AllocMB for the standard 64-replica rung.
	WallSeconds float64
	AllocMB     float64
	// P99ms is the virtual-time tail at 64 replicas (deterministic).
	P99ms float64
}

// FleetScale measures metered fleets at increasing replica counts and
// model scales: build + warm + measured run per rung, with the metrics
// plane attached so the number includes full observability cost. The
// final rung runs 64 replicas at 4x the model scale — the "full paper
// scale fits in CI" anchor enabled by shared-media replica construction.
// Virtual-time columns are seed-deterministic; wall/alloc columns profile
// the simulator itself.
func FleetScale(sc Scale) (Result, error) {
	inst, tables, err := experimentModel(sc)
	if err != nil {
		return nil, err
	}
	sc4 := sc
	sc4.ModelScale *= 4
	inst4, tables4, err := experimentModel(sc4)
	if err != nil {
		return nil, err
	}

	res := &FleetScaleResult{}
	res.id = "fleetscale"
	res.header = fmt.Sprintf("%-8s %9s %9s %9s %10s %10s %8s", "hosts", "queries", "qps", "p99(ms)", "wall(s)", "alloc(MB)", "KB/q")

	scfg := engineParallelism(core.Config{
		Seed: sc.Seed, SMTech: blockdev.NandFlash,
		Ring: uring.Config{SGL: true}, CacheBytes: 1 << 20,
	})
	hcfg := serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}
	wcfg := workload.Config{Seed: sc.Seed, NumUsers: 2000, UserAlpha: 0.8}

	for _, rg := range []struct {
		label string
		hosts int
		big   bool // 4x model scale
	}{
		{"16", 16, false},
		{"64", 64, false},
		{"64x4", 64, true},
	} {
		nHosts := rg.hosts
		rinst, rtables := inst, tables
		if rg.big {
			rinst, rtables = inst4, tables4
		}
		// Per-host load held constant across rungs, so the sweep isolates
		// fleet-size (and model-scale) cost rather than saturation effects.
		qps := 75.0 * float64(nHosts)
		n := sc.Queries * nHosts / 4

		start := time.Now() //sdm:allow wallclock fleetscale measures the simulator's own wall-clock cost, not simulated time
		var m0, m1 runtime.MemStats
		runtime.ReadMemStats(&m0)

		hosts, err := cluster.HostSet(rinst, rtables, nHosts, &scfg, hcfg)
		if err != nil {
			return nil, err
		}
		fl, err := cluster.New(hosts, cluster.NewSticky(nHosts, 64), cluster.Config{Seed: sc.Seed})
		if err != nil {
			return nil, err
		}
		if err := fl.SetMetrics(cluster.MetricsConfig{}); err != nil {
			return nil, err
		}
		gen, err := workload.NewGenerator(rinst, wcfg)
		if err != nil {
			return nil, err
		}
		fl.SetGenerator(gen)
		if _, err := fl.Run(qps, n); err != nil {
			return nil, err
		}
		r, err := fl.Run(qps, n)
		if err != nil {
			return nil, err
		}
		// Exercise the render path too: the export is part of the cost a
		// metered campaign pays every window.
		if err := fl.WriteMetrics(io.Discard); err != nil {
			return nil, err
		}

		runtime.ReadMemStats(&m1)
		wall := time.Since(start).Seconds() //sdm:allow wallclock fleetscale measures the simulator's own wall-clock cost, not simulated time
		allocMB := float64(m1.TotalAlloc-m0.TotalAlloc) / (1 << 20)
		kbPerQuery := allocMB * 1024 / float64(2*n)
		res.rows = append(res.rows, fmt.Sprintf("%-8s %9d %9.0f %9.2f %10.2f %10.1f %8.1f",
			rg.label, r.Queries, r.AchievedQPS, r.Latency.P99()*1e3, wall, allocMB, kbPerQuery))
		if rg.label == "64" {
			res.WallSeconds = wall
			res.AllocMB = allocMB
			res.P99ms = r.Latency.P99() * 1e3
		}
	}
	res.notes = append(res.notes,
		"wall(s)/alloc(MB)/KB/q are wall-clock simulator cost (machine-dependent, warn-only); p99 is virtual-time and seed-deterministic",
		"each rung runs the full metrics plane (SetMetrics + OpenMetrics render) so the trajectory tracks observability overhead too",
		"the 64x4 rung runs 64 replicas at 4x model scale via shared-media replica construction (core.OpenReplica)")
	return res, nil
}
