package experiments

import (
	"fmt"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/power"
	"sdm/internal/serving"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// hostQPS builds a host over the given store/flat tables and measures the
// max QPS at a p95 latency budget. Stores run the sharded query engine on
// all cores (accounting is parallelism-invariant).
func hostQPS(sc Scale, inst *model.Instance, tables []*embedding.Table, scfg *core.Config, hcfg serving.Config, budget time.Duration, hiQPS float64) (float64, serving.Result, error) {
	var clk simclock.Clock
	var store *core.Store
	if scfg != nil {
		s, err := core.Open(inst, tables, engineParallelism(*scfg), &clk)
		if err != nil {
			return 0, serving.Result{}, err
		}
		store = s
	}
	gen, err := workload.NewGenerator(inst, workload.Config{Seed: hcfg.Seed, NumUsers: 1000})
	if err != nil {
		return 0, serving.Result{}, err
	}
	h, err := serving.NewHost(inst, store, tables, gen, &clk, hcfg)
	if err != nil {
		return 0, serving.Result{}, err
	}
	// Warmup pass at modest load so caches reach steady state (§A.4).
	if _, err := h.RunOpenLoop(50, sc.Queries/2+50); err != nil {
		return 0, serving.Result{}, err
	}
	return h.MaxQPSAtLatency(0.95, budget, 5, hiQPS, sc.Queries/2+100)
}

// scenarioModel builds the shrunken shape of one of the paper's target
// models: table counts trimmed, dims/PFs/batches preserved.
func scenarioModel(sc Scale, cfg model.Config, userTables, itemTables, itemBatch int) (*model.Instance, []*embedding.Table, error) {
	cfg.NumUserTables = userTables
	cfg.NumItemTables = itemTables
	cfg.ItemBatch = itemBatch
	// Keep the paper's dense-compute shape unless the scenario overrides:
	// CPU-host scenarios are compute-bound (Table 8's 2:1 socket ratio),
	// accelerator scenarios are IO-bound (Table 9).
	cfg.NumMLPLayers = 8
	cfg.AvgMLPWidth = 128
	inst, err := model.Build(cfg, clampScale(sc.ModelScale*30), sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return nil, nil, err
	}
	return inst, tables, nil
}

// scenarioModelMLP is scenarioModel with an explicit dense-stack shape.
func scenarioModelMLP(sc Scale, cfg model.Config, userTables, itemTables, itemBatch, mlpLayers, mlpWidth int) (*model.Instance, []*embedding.Table, error) {
	cfg.NumUserTables = userTables
	cfg.NumItemTables = itemTables
	cfg.ItemBatch = itemBatch
	cfg.NumMLPLayers = mlpLayers
	cfg.AvgMLPWidth = mlpWidth
	inst, err := model.Build(cfg, clampScale(sc.ModelScale*30), sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return nil, nil, err
	}
	return inst, tables, nil
}

// Fig6 compares cache organizations and direct-DRAM placement budgets
// under the InferenceEval-style load the paper uses for Fig. 6.
func Fig6(sc Scale) (Result, error) {
	inst, tables, err := scenarioModel(sc, model.M2(), 8, 4, 8)
	if err != nil {
		return nil, err
	}
	r := &tableResult{id: "fig6"}
	budget := 2 * time.Millisecond

	// Every configuration is an independent simulated host; measure the
	// whole panel concurrently and keep the presentation order.
	kinds := []core.CacheKind{core.CacheMemOptimized, core.CacheCPUOptimized, core.CacheDual}
	fracs := []float64{0, 0.25, 0.5, 1.0}
	kindRows := make([]string, len(kinds))
	fracRows := make([]string, len(fracs))
	smBytes := inst.UserBytes()
	var runs []func() error
	for i, kind := range kinds {
		i, kind := i, kind
		runs = append(runs, func() error {
			scfg := &core.Config{
				// A tight FM budget exposes the per-item overhead trade-off.
				Seed: sc.Seed, CacheKind: kind, CacheBytes: 1 << 20,
				Ring: uring.Config{SGL: true},
			}
			qps, res, err := hostQPS(sc, inst, tables, scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}, budget, 20000)
			if err != nil {
				return err
			}
			kindRows[i] = fmt.Sprintf("  %-14s qps=%6.0f p95=%6.2fms hit=%5.1f%%",
				kind, qps, res.Latency.P95()*1e3, res.CacheHitRate*100)
			return nil
		})
	}
	for i, frac := range fracs {
		i, frac := i, frac
		runs = append(runs, func() error {
			scfg := &core.Config{
				Seed: sc.Seed, CacheBytes: 8 << 20,
				Ring: uring.Config{SGL: true},
				Placement: placement.Config{
					Policy: placement.FixedFMWithCache, UserTablesOnly: true,
					DRAMBudget: int64(frac * float64(smBytes)),
				},
			}
			qps, res, err := hostQPS(sc, inst, tables, scfg, serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}, budget, 20000)
			if err != nil {
				return err
			}
			fracRows[i] = fmt.Sprintf("  dram=%3.0f%%ofSM   qps=%6.0f p95=%6.2fms smReads/qry=%5.1f",
				frac*100, qps, res.Latency.P95()*1e3, res.SMReadsPerQry)
			return nil
		})
	}
	if err := inParallel(runs...); err != nil {
		return nil, err
	}
	r.rows = append(r.rows, "cache organization (same FM budget):")
	r.rows = append(r.rows, kindRows...)
	r.rows = append(r.rows, "direct DRAM placement budget (FixedFM policy):")
	r.rows = append(r.rows, fracRows...)
	r.notes = append(r.notes,
		"paper: dual cache routes dim≤255B to memory-optimized; direct DRAM placement can raise QPS considerably")
	return r, nil
}

// Tab8Result carries the measured M1 comparison.
type Tab8Result struct {
	tableResult
	BaselineQPS, SDMQPS float64
	Saving              float64
	HitRate             float64
}

// Tab8 reproduces the M1 scenario: dual-socket DRAM-only HW-L vs
// single-socket HW-SS with SDM on Nand Flash, then fleet power arithmetic.
func Tab8(sc Scale) (Result, error) {
	cfg := model.M1() // keep M1's 31-layer, 300-wide MLP: CPU hosts are compute-bound
	inst, tables, err := scenarioModelMLP(sc, cfg, 8, 4, 16, cfg.NumMLPLayers, cfg.AvgMLPWidth)
	if err != nil {
		return nil, err
	}
	budget := 25 * time.Millisecond

	// The two fleets are independent hosts: measure them concurrently.
	var (
		baseQPS, sdmQPS float64
		sdmRes          serving.Result
	)
	err = inParallel(
		func() error {
			// Baseline: all tables flat in DRAM on the big host.
			var err error
			baseQPS, _, err = hostQPS(sc, inst, tables, nil,
				serving.Config{Spec: serving.HWL(), InterOp: true, Seed: sc.Seed}, budget, 100000)
			return err
		},
		func() error {
			// SDM: user tables on Nand, FM cache, small host.
			scfg := &core.Config{
				Seed: sc.Seed, SMTech: blockdev.NandFlash, CacheBytes: 32 << 20,
				Ring: uring.Config{SGL: true},
			}
			var err error
			sdmQPS, sdmRes, err = hostQPS(sc, inst, tables, scfg,
				serving.Config{Spec: serving.HWSS(), InterOp: true, Seed: sc.Seed}, budget, 100000)
			return err
		},
	)
	if err != nil {
		return nil, err
	}

	totalQPS := baseQPS * 1200 // fleet demand at the paper's host count
	base, err := power.Provision(power.Scenario{Name: "HW-L", QPSPerHost: baseQPS, HostPower: serving.HWL().RelPower}, totalQPS)
	if err != nil {
		return nil, err
	}
	sdm, err := power.Provision(power.Scenario{Name: "HW-SS+SDM", QPSPerHost: sdmQPS, HostPower: serving.HWSS().RelPower}, totalQPS)
	if err != nil {
		return nil, err
	}
	res := &Tab8Result{
		BaselineQPS: baseQPS, SDMQPS: sdmQPS,
		Saving:  power.Savings(base, sdm),
		HitRate: sdmRes.CacheHitRate,
	}
	res.id = "tab8"
	res.header = fmt.Sprintf("%-14s %8s %8s %12s %12s", "Scenario", "QPS", "Power", "Total Hosts", "Total Power")
	res.rows = append(res.rows,
		fmt.Sprintf("%-14s %8.0f %8.1f %12d %12.0f", "HW-L", baseQPS, serving.HWL().RelPower, base.Hosts, base.TotalPower),
		fmt.Sprintf("%-14s %8.0f %8.1f %12d %12.0f", "HW-SS + SDM", sdmQPS, serving.HWSS().RelPower, sdm.Hosts, sdm.TotalPower),
		fmt.Sprintf("power saving: %.0f%% (paper: 20%%)", res.Saving*100),
		fmt.Sprintf("steady-state cache hit rate: %.1f%% (paper: >96%%)", res.HitRate*100),
		fmt.Sprintf("sustained SM IOPS/host: %.0f (paper: <10K in steady state)", sdmRes.SustainedIOPS),
		fmt.Sprintf("DRAM saved at fleet scale: %.1f TB-equivalent (paper: 159.4 TB)",
			float64(power.DRAMSavedBytes(base.Hosts, serving.HWL().DRAMBytes, sdm.Hosts, serving.HWSS().DRAMBytes))/(1<<40)),
	)
	return res, nil
}

// Tab9Result carries the measured M2 comparison.
type Tab9Result struct {
	tableResult
	OptaneSaving float64
	NandQPS      float64
	OptaneQPS    float64
}

// Tab9 reproduces the M2 scenario: accelerator host with scale-out user
// shards vs SDM on Nand vs SDM on Optane.
func Tab9(sc Scale) (Result, error) {
	inst, tables, err := scenarioModel(sc, model.M2(), 10, 5, 16)
	if err != nil {
		return nil, err
	}
	budget := 20 * time.Millisecond

	// Three independent fleets: measure them concurrently.
	var (
		scaleOutQPS, nandQPS, optQPS float64
		optRes                       serving.Result
	)
	err = inParallel(
		func() error {
			var err error
			scaleOutQPS, _, err = hostQPS(sc, inst, tables, nil,
				serving.Config{Spec: serving.HWAN(), InterOp: true, RemoteUserPath: true, Seed: sc.Seed}, budget, 200000)
			return err
		},
		func() error {
			nandCfg := &core.Config{Seed: sc.Seed, SMTech: blockdev.NandFlash, CacheBytes: 8 << 20, Ring: uring.Config{SGL: true}}
			var err error
			nandQPS, _, err = hostQPS(sc, inst, tables, nandCfg,
				serving.Config{Spec: serving.HWAN(), InterOp: true, Seed: sc.Seed}, budget, 200000)
			return err
		},
		func() error {
			optCfg := &core.Config{Seed: sc.Seed, SMTech: blockdev.OptaneSSD, CacheBytes: 8 << 20, Ring: uring.Config{SGL: true}}
			var err error
			optQPS, optRes, err = hostQPS(sc, inst, tables, optCfg,
				serving.Config{Spec: serving.HWAO(), InterOp: true, Seed: sc.Seed}, budget, 200000)
			return err
		},
	)
	if err != nil {
		return nil, err
	}

	totalQPS := scaleOutQPS * 1500
	so, err := power.Provision(power.Scenario{
		Name: "HW-AN+ScaleOut", QPSPerHost: scaleOutQPS, HostPower: 1.0,
		CompanionPowerPerHost: 0.05, CompanionHostsPerHost: 0.2,
	}, totalQPS)
	if err != nil {
		return nil, err
	}
	nand, err := power.Provision(power.Scenario{Name: "HW-AN+SDM", QPSPerHost: nandQPS, HostPower: 1.0}, totalQPS)
	if err != nil {
		return nil, err
	}
	opt, err := power.Provision(power.Scenario{Name: "HW-AO+SDM", QPSPerHost: optQPS, HostPower: 1.0}, totalQPS)
	if err != nil {
		return nil, err
	}
	res := &Tab9Result{
		OptaneSaving: power.Savings(so, opt),
		NandQPS:      nandQPS,
		OptaneQPS:    optQPS,
	}
	res.id = "tab9"
	res.header = fmt.Sprintf("%-18s %8s %12s %12s", "Scenario", "QPS", "Total Hosts", "Total Power")
	res.rows = append(res.rows,
		fmt.Sprintf("%-18s %8.0f %12d %12.0f", "HW-AN + ScaleOut", scaleOutQPS, so.Hosts+so.Companions, so.TotalPower),
		fmt.Sprintf("%-18s %8.0f %12d %12.0f", "HW-AN + SDM", nandQPS, nand.Hosts, nand.TotalPower),
		fmt.Sprintf("%-18s %8.0f %12d %12.0f", "HW-AO + SDM", optQPS, opt.Hosts, opt.TotalPower),
		fmt.Sprintf("Optane saving vs scale-out: %.1f%% (paper: 5%%)", res.OptaneSaving*100),
		fmt.Sprintf("Optane SM hit rate: %.1f%% (paper: >90%%)", optRes.CacheHitRate*100),
	)
	res.notes = append(res.notes,
		"paper: Nand underperforms (QPS 230 vs 450) because its latency forces underutilization; Optane matches scale-out QPS at lower power")
	return res, nil
}

// Tab10 reproduces the M3 SM sizing roofline.
func Tab10(sc Scale) (Result, error) {
	in := power.SizingInput{
		QPS: 3150, UserTables: 2000, PoolingPF: 30,
		EmbDimBytes: 512, CacheHitRate: 0.80, Device: blockdev.OptaneSSD,
	}
	out, err := power.Size(in)
	if err != nil {
		return nil, err
	}
	r := &tableResult{
		id:     "tab10",
		header: fmt.Sprintf("%-8s %8s %8s %6s %10s %10s %10s %8s", "Model", "QPS", "Tables", "PF", "HitRate", "ColdIOPS", "SustIOPS", "numSSD"),
	}
	r.rows = append(r.rows, fmt.Sprintf("%-8s %8.0f %8d %6.0f %9.0f%% %10.1fM %10.1fM %8d",
		"M3", in.QPS, in.UserTables, in.PoolingPF, in.CacheHitRate*100,
		out.ColdIOPS/1e6, out.SustainedIOPS/1e6, out.NumSSDs))
	r.notes = append(r.notes, "paper: 36 MIOPS satisfied by 9 Optane SSDs at 4 MIOPS each")
	return r, nil
}

// Tab11 reproduces the multi-tenancy fleet-power roofline.
func Tab11(sc Scale) (Result, error) {
	in := power.MultiTenancyInput{
		HostDRAMBytes:         128 << 30,
		HostSMBytes:           300 << 30,
		ModelDRAMBytes:        100 << 30,
		ModelComputeFrac:      0.09,
		BaseUtilization:       0.54,
		BasePower:             1.0,
		SDMExtraPower:         0.01,
		NonEmbeddingDRAMBytes: 28 << 30,
	}
	without, with, err := power.MultiTenancy(in)
	if err != nil {
		return nil, err
	}
	r := &tableResult{
		id:     "tab11",
		header: fmt.Sprintf("%-16s %8s %12s %12s %8s", "Scenario", "Power", "Models/Host", "Utilization", "Fleet"),
	}
	r.rows = append(r.rows,
		fmt.Sprintf("%-16s %8.2f %12d %12.2f %8.2f", "HW-F A", without.HostPower, without.ModelsPerHost, without.Utilization, without.FleetPower),
		fmt.Sprintf("%-16s %8.2f %12d %12.2f %8.2f", "HW-F AO + SDM", with.HostPower, with.ModelsPerHost, with.Utilization, with.FleetPower),
		fmt.Sprintf("fleet power saving: %.0f%% (paper: up to 29%%)", (1-with.FleetPower)*100),
	)
	return r, nil
}

// DepruneResult carries the §4.5 trade-off measurements.
type DepruneResult struct {
	tableResult
	ExtraRequestFrac float64
	CacheGainFrac    float64
	PerfGain         float64
}

// Deprune compares pruned (mapper in FM) against de-pruned at load.
func Deprune(sc Scale) (Result, error) {
	// Pruned rows are rarely referenced in production ("the pruned
	// embeddings are also less frequently accessed"); a low ZeroFrac
	// models that, while the mapper footprint — NumRows × 4 B — stays
	// large regardless of how many rows were pruned.
	cfg := model.M1()
	cfg.ZeroFrac = 0.05
	inst, tables, err := scenarioModel(sc, cfg, 8, 4, 8)
	if err != nil {
		return nil, err
	}
	// A cache budget comparable to the mapper footprint makes the
	// mapper-vs-cache trade-off visible (the paper's "up to 2x cache").
	mk := func(deprune bool) core.Config {
		return core.Config{
			Seed: sc.Seed, Prune: true, Deprune: deprune,
			CacheBytes: 600 << 10, Ring: uring.Config{SGL: true},
		}
	}
	var pruned, depruned *storeRun
	err = inParallel(
		func() (err error) { pruned, err = runStoreTraceOn(sc, mk(false), inst, tables); return },
		func() (err error) { depruned, err = runStoreTraceOn(sc, mk(true), inst, tables); return },
	)
	if err != nil {
		return nil, err
	}
	// §4.5 counts "increase in the total requests": lookups that reach
	// the cache/SM fetch path. Pruned stores skip pruned rows via the
	// mapper; de-pruned stores fetch them.
	pReq := float64(pruned.store.Lookups - pruned.store.MapperSkips)
	dReq := float64(depruned.store.Lookups)
	res := &DepruneResult{
		ExtraRequestFrac: dReq/pReq - 1,
		CacheGainFrac:    float64(depruned.store.EffCacheBytes)/float64(pruned.store.EffCacheBytes) - 1,
		PerfGain:         pruned.meanIOLatency.Seconds()/depruned.meanIOLatency.Seconds() - 1,
	}
	res.id = "deprune"
	res.rows = []string{
		fmt.Sprintf("mapper FM footprint (pruned):   %8d B (charged against cache)", pruned.store.MapperFMBytes),
		fmt.Sprintf("effective cache, pruned:        %8d B", pruned.store.EffCacheBytes),
		fmt.Sprintf("effective cache, de-pruned:     %8d B (+%.0f%%; paper: up to 2x)", depruned.store.EffCacheBytes, res.CacheGainFrac*100),
		fmt.Sprintf("extra row requests from de-prune: %+5.1f%% (paper: +2.5%%)", res.ExtraRequestFrac*100),
		fmt.Sprintf("zero-row reads (cache pollution): %d", depruned.store.ZeroRowReads),
		fmt.Sprintf("user-path latency gain:          %+6.1f%% (paper: up to +48%% when SM-bound)", res.PerfGain*100),
	}
	return res, nil
}

// DequantResult carries the §A.5 trade-off measurements.
type DequantResult struct {
	tableResult
	SMGrowth     float64
	HitRateDelta float64
	CPUDeltaFrac float64
}

// Dequant compares de-quantization at load time against on-the-fly
// dequantization.
func Dequant(sc Scale) (Result, error) {
	inst, tables, err := scenarioModel(sc, model.M1(), 8, 4, 8)
	if err != nil {
		return nil, err
	}
	mk := func(dq bool) core.Config {
		return core.Config{
			Seed: sc.Seed, DequantAtLoad: dq,
			CacheBytes: 2 << 20, Ring: uring.Config{SGL: true},
		}
	}
	var base, dq *storeRun
	err = inParallel(
		func() (err error) { base, err = runStoreTraceOn(sc, mk(false), inst, tables); return },
		func() (err error) { dq, err = runStoreTraceOn(sc, mk(true), inst, tables); return },
	)
	if err != nil {
		return nil, err
	}
	res := &DequantResult{
		SMGrowth:     float64(dq.store.LoadSMBytes)/float64(base.store.LoadSMBytes) - 1,
		HitRateDelta: dq.cache.HitRate() - base.cache.HitRate(),
		CPUDeltaFrac: dq.cpuPerQuery.Seconds()/base.cpuPerQuery.Seconds() - 1,
	}
	res.id = "dequant"
	res.rows = []string{
		fmt.Sprintf("SM footprint growth (int8→fp32):  %+5.0f%% (capacity is cheap on SM)", res.SMGrowth*100),
		fmt.Sprintf("FM cache hit rate: quantized %.1f%% vs dequantized %.1f%% (Δ %+0.1fpp)",
			base.cache.HitRate()*100, dq.cache.HitRate()*100, res.HitRateDelta*100),
		fmt.Sprintf("CPU per query delta:              %+5.1f%%", res.CPUDeltaFrac*100),
	}
	res.notes = append(res.notes,
		"paper: fewer rows fit the cache after expansion, so de-quantization rarely wins except under CPU-bound loads")
	return res, nil
}

// InterOpResult carries the §A.2 ablation.
type InterOpResult struct {
	tableResult
	LatencyReduction float64
	QPSGain          float64
}

// InterOp measures inter-operator parallelism: serial vs concurrent
// embedding-op issue.
func InterOp(sc Scale) (Result, error) {
	inst, tables, err := scenarioModel(sc, model.M1(), 8, 4, 8)
	if err != nil {
		return nil, err
	}
	budget := 25 * time.Millisecond
	run := func(interOp bool) (float64, serving.Result, error) {
		scfg := &core.Config{Seed: sc.Seed, CacheBytes: 4 << 20, Ring: uring.Config{SGL: true}}
		return hostQPS(sc, inst, tables, scfg,
			serving.Config{Spec: serving.HWSS(), InterOp: interOp, Seed: sc.Seed}, budget, 20000)
	}
	var (
		serialQPS, parQPS float64
		serialRes, parRes serving.Result
	)
	err = inParallel(
		func() (err error) { serialQPS, serialRes, err = run(false); return },
		func() (err error) { parQPS, parRes, err = run(true); return },
	)
	if err != nil {
		return nil, err
	}
	res := &InterOpResult{
		LatencyReduction: 1 - parRes.Latency.Mean()/serialRes.Latency.Mean(),
		QPSGain:          parQPS/serialQPS - 1,
	}
	res.id = "interop"
	res.rows = []string{
		fmt.Sprintf("serial ops:   qps=%6.0f meanLat=%6.2fms", serialQPS, serialRes.Latency.Mean()*1e3),
		fmt.Sprintf("inter-op par: qps=%6.0f meanLat=%6.2fms", parQPS, parRes.Latency.Mean()*1e3),
		fmt.Sprintf("latency reduction %.0f%%, QPS gain %.0f%% (paper: 20%% / 20%% on M1)",
			res.LatencyReduction*100, res.QPSGain*100),
	}
	return res, nil
}

// Warmup prints the §A.4 over-provisioning model.
func Warmup(sc Scale) (Result, error) {
	r := &tableResult{
		id:     "warmup",
		header: fmt.Sprintf("%-10s %-10s %-10s %-10s %12s", "r(update)", "warmup", "perf", "interval", "overprov"),
	}
	cases := []struct {
		r, p float64
		w, t time.Duration
	}{
		{0.10, 0.50, 5 * time.Minute, 30 * time.Minute},
		{0.10, 0.50, 2 * time.Minute, 30 * time.Minute},
		{0.05, 0.75, 5 * time.Minute, 60 * time.Minute},
	}
	for _, c := range cases {
		ov := core.WarmupOverprovision(c.r, c.p, c.w, c.t)
		r.rows = append(r.rows, fmt.Sprintf("%-10.2f %-10v %-10.2f %-10v %11.2f%%",
			c.r, c.w, c.p, c.t, ov*100))
	}
	r.notes = append(r.notes, "paper's worked example quotes 1.2% for (10%,5min,50%,30min); the formula (r·w)/(p·t) gives 3.3% — both shown")
	return r, nil
}

// Update measures the §A.3 model-update paths and §3 endurance limits.
func Update(sc Scale) (Result, error) {
	inst, tables, err := scenarioModel(sc, model.M1(), 6, 3, 8)
	if err != nil {
		return nil, err
	}
	r := &tableResult{id: "update"}
	for _, tech := range []blockdev.Technology{blockdev.NandFlash, blockdev.OptaneSSD} {
		var clk simclock.Clock
		s, err := core.Open(inst, tables, core.Config{
			Seed: sc.Seed, SMTech: tech, Ring: uring.Config{SGL: true}, CacheBytes: 4 << 20,
		}, &clk)
		if err != nil {
			return nil, err
		}
		// Online update of 100 rows, then write-back.
		now := s.LoadDone()
		spec := inst.Tables[0]
		val := make([]byte, spec.RowBytes())
		for i := int64(0); i < 100 && i < spec.Rows; i++ {
			if _, err := s.UpdateRow(now, 0, i, val, core.UpdateOnline); err != nil {
				return nil, err
			}
		}
		flushDone, err := s.FlushUpdates(now)
		if err != nil {
			return nil, err
		}
		r.rows = append(r.rows, fmt.Sprintf("%-22s load=%8v  flush(100 rows)=%8v  min update interval=%v",
			tech, s.Stats().LoadDuration.Round(time.Millisecond),
			(flushDone-now).Duration().Round(time.Microsecond),
			s.UpdateIntervalLimit().Round(time.Second)))
	}
	r.notes = append(r.notes,
		"§A.3: online updates land in the cache first and write back to SM; §3: endurance bounds the update interval (Optane ≫ Nand)")
	return r, nil
}
