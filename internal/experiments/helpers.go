package experiments

import (
	"fmt"
	"time"

	"sdm/internal/blockdev"
	"sdm/internal/cache"
	"sdm/internal/core"
	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/pooledcache"
	"sdm/internal/simclock"
	"sdm/internal/workload"
)

// Pooled-cache profiling aliases (Table 3).
const (
	pooledSchemeC10    = pooledcache.SchemeC10
	pooledSchemeC10Top = pooledcache.SchemeC10Top
	pooledSchemeCP     = pooledcache.SchemeCP
)

type pooledProfile struct {
	scheme pooledcache.ProfileScheme
	order  string
}

func profileScheme(qs [][]int64, s pooledcache.ProfileScheme, seed uint64) pooledcache.ProfileResult {
	return pooledcache.Profile(qs, s, 150, seed)
}

// experimentModel derives a small but structurally faithful M1-shaped
// instance for microbenchmark-style experiments: table counts are trimmed
// so traces stay cheap, while dims, pooling factors and skews keep the
// paper's values.
func experimentModel(sc Scale) (*model.Instance, []*embedding.Table, error) {
	cfg := model.M1()
	cfg.NumUserTables = 8
	cfg.NumItemTables = 4
	cfg.ItemBatch = 8
	cfg.NumMLPLayers = 4
	cfg.AvgMLPWidth = 64
	inst, err := model.Build(cfg, clampScale(sc.ModelScale*50), sc.Seed)
	if err != nil {
		return nil, nil, err
	}
	tables, err := inst.Materialize()
	if err != nil {
		return nil, nil, err
	}
	return inst, tables, nil
}

func clampScale(s float64) float64 {
	if s > 1 {
		return 1
	}
	if s <= 0 {
		return 1e-6
	}
	return s
}

// storeRun captures the measurements of one store trace replay.
type storeRun struct {
	s             *core.Store
	store         core.Stats
	dev           blockdev.Stats
	cache         cache.Stats
	pooled        pooledcache.Stats
	meanIOLatency time.Duration
	cpuPerQuery   time.Duration
	queries       int
}

// runStoreTrace opens a store with cfg over the experiment model and
// replays a paced query trace, measuring per-query SM IO latency.
func runStoreTrace(sc Scale, cfg core.Config) (*storeRun, error) {
	inst, tables, err := experimentModel(sc)
	if err != nil {
		return nil, err
	}
	return runStoreTraceOn(sc, cfg, inst, tables)
}

// runStoreTraceOn is runStoreTrace against a caller-provided model.
func runStoreTraceOn(sc Scale, cfg core.Config, inst *model.Instance, tables []*embedding.Table) (*storeRun, error) {
	return runStoreTraceWorkload(sc, cfg, inst, tables, workload.Config{Seed: sc.Seed, NumUsers: 500})
}

// runStoreTraceWorkload is runStoreTraceOn with an explicit workload. The
// store runs the sharded query engine on all cores (accounting is
// parallelism-invariant).
func runStoreTraceWorkload(sc Scale, cfg core.Config, inst *model.Instance, tables []*embedding.Table, wcfg workload.Config) (*storeRun, error) {
	var clk simclock.Clock
	s, err := core.Open(inst, tables, engineParallelism(cfg), &clk)
	if err != nil {
		return nil, err
	}
	gen, err := workload.NewGenerator(inst, wcfg)
	if err != nil {
		return nil, err
	}
	n := sc.Queries
	if n < 50 {
		n = 50
	}
	// Pace queries 1 ms apart: light load, so latency reflects the IO
	// path rather than queueing (queueing effects are measured by the
	// serving experiments).
	var ioLatSum time.Duration
	var cpuSum time.Duration
	var obuf core.OutputBuf
	now := s.LoadDone()
	for i := 0; i < n; i++ {
		issue := now + simclock.Time(time.Duration(i)*time.Millisecond)
		// The arena-backed query and the recycled outputs are both
		// consumed before the next iteration draws again.
		q := gen.NextShared()
		outs := s.OutputsFor(q, &obuf)
		res, err := s.PoolQuery(issue, q, outs)
		if err != nil {
			return nil, fmt.Errorf("query %d: %w", i, err)
		}
		ioLatSum += (res.UserIODone - issue).Duration()
		cpuSum += res.CPUTime
	}
	return &storeRun{
		s:             s,
		store:         s.Stats(),
		dev:           s.DeviceStats(),
		cache:         s.CacheStats(),
		pooled:        s.PooledStats(),
		meanIOLatency: ioLatSum / time.Duration(n),
		cpuPerQuery:   cpuSum / time.Duration(n),
		queries:       n,
	}, nil
}
