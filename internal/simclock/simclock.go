// Package simclock implements the discrete-event simulation core used by
// the device, host and fleet simulators. All latency in this reproduction
// is virtual: events carry virtual timestamps, and an event loop advances
// the clock to the next scheduled event. This keeps benchmarks fast and
// deterministic while preserving the queueing behaviour (loaded-latency
// curves, overlap of user- and item-side embedding work per Eq. 3/4) that
// the paper's results depend on.
package simclock

import (
	"container/heap"
	"errors"
	"time"
)

// Time is a virtual timestamp measured as a duration since simulation start.
type Time time.Duration

// Seconds returns the timestamp in seconds.
func (t Time) Seconds() float64 { return time.Duration(t).Seconds() }

// Micros returns the timestamp in microseconds.
func (t Time) Micros() float64 { return float64(time.Duration(t)) / float64(time.Microsecond) }

// Duration converts to time.Duration.
func (t Time) Duration() time.Duration { return time.Duration(t) }

// Event is a scheduled callback. Fn runs when the clock reaches At.
type Event struct {
	At Time
	Fn func(now Time)

	seq   uint64
	index int
}

// Clock is a discrete-event scheduler. The zero value is ready to use.
// Clock is not safe for concurrent use; the simulation is single-threaded
// by design (determinism).
type Clock struct {
	now    Time
	queue  eventQueue
	nextID uint64
}

// Now returns the current virtual time.
func (c *Clock) Now() Time { return c.now }

// Schedule registers fn to run at absolute virtual time at. If at is in the
// past it runs at the current time (FIFO among same-time events).
func (c *Clock) Schedule(at Time, fn func(now Time)) *Event {
	if at < c.now {
		at = c.now
	}
	e := &Event{At: at, Fn: fn, seq: c.nextID}
	c.nextID++
	heap.Push(&c.queue, e)
	return e
}

// After schedules fn to run d after the current time.
func (c *Clock) After(d time.Duration, fn func(now Time)) *Event {
	return c.Schedule(c.now+Time(d), fn)
}

// Cancel removes a scheduled event. Cancelling an already-fired event is a
// no-op.
func (c *Clock) Cancel(e *Event) {
	if e == nil || e.index < 0 || e.index >= len(c.queue) || c.queue[e.index] != e {
		return
	}
	heap.Remove(&c.queue, e.index)
}

// Pending reports how many events are scheduled.
func (c *Clock) Pending() int { return len(c.queue) }

// Step fires the next event, advancing the clock. It reports whether an
// event was fired.
func (c *Clock) Step() bool {
	if len(c.queue) == 0 {
		return false
	}
	e := heap.Pop(&c.queue).(*Event)
	c.now = e.At
	e.Fn(c.now)
	return true
}

// ErrBudgetExceeded is returned by Run variants when the event budget is
// exhausted before the queue drains, which usually indicates a scheduling
// loop in the simulation.
var ErrBudgetExceeded = errors.New("simclock: event budget exceeded")

// Run drains the event queue, firing events in timestamp order, up to
// maxEvents (0 means no limit).
func (c *Clock) Run(maxEvents int) error {
	fired := 0
	for c.Step() {
		fired++
		if maxEvents > 0 && fired >= maxEvents {
			if len(c.queue) > 0 {
				return ErrBudgetExceeded
			}
			return nil
		}
	}
	return nil
}

// RunUntil fires events until the clock would pass deadline; events at or
// before the deadline all fire, and the clock finishes at deadline.
func (c *Clock) RunUntil(deadline Time) {
	for len(c.queue) > 0 && c.queue[0].At <= deadline {
		c.Step()
	}
	if c.now < deadline {
		c.now = deadline
	}
}

type eventQueue []*Event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].At != q[j].At {
		return q[i].At < q[j].At
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	e := x.(*Event)
	e.index = len(*q)
	*q = append(*q, e)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	e := old[n-1]
	old[n-1] = nil
	e.index = -1
	*q = old[:n-1]
	return e
}
