package simclock

// TimeHeap is a min-heap of virtual timestamps with no interface boxing:
// container/heap's Push(any) allocates to box each Time, which turns
// per-IO completion bookkeeping (ring throttles, host in-flight sets)
// into a per-IO heap allocation on the query hot path. TimeHeap keeps the
// same min-heap semantics over a plain []Time.
//
// The zero value is an empty, ready-to-use heap.
type TimeHeap []Time

// Len returns the number of pending timestamps.
func (h TimeHeap) Len() int { return len(h) }

// Min returns the earliest pending timestamp; the heap must be non-empty.
func (h TimeHeap) Min() Time { return h[0] }

// Push adds t to the heap.
func (h *TimeHeap) Push(t Time) {
	*h = append(*h, t)
	s := *h
	i := len(s) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if s[parent] <= s[i] {
			break
		}
		s[parent], s[i] = s[i], s[parent]
		i = parent
	}
}

// PopMin removes and returns the earliest pending timestamp; the heap must
// be non-empty.
func (h *TimeHeap) PopMin() Time {
	s := *h
	min := s[0]
	last := len(s) - 1
	s[0] = s[last]
	s = s[:last]
	*h = s
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < last && s[l] < s[smallest] {
			smallest = l
		}
		if r < last && s[r] < s[smallest] {
			smallest = r
		}
		if smallest == i {
			break
		}
		s[i], s[smallest] = s[smallest], s[i]
		i = smallest
	}
	return min
}
