package simclock

import (
	"testing"
	"time"
)

func TestScheduleOrdering(t *testing.T) {
	var c Clock
	var order []int
	c.Schedule(Time(3*time.Second), func(Time) { order = append(order, 3) })
	c.Schedule(Time(1*time.Second), func(Time) { order = append(order, 1) })
	c.Schedule(Time(2*time.Second), func(Time) { order = append(order, 2) })
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if len(order) != 3 || order[0] != 1 || order[1] != 2 || order[2] != 3 {
		t.Fatalf("fired out of order: %v", order)
	}
	if c.Now() != Time(3*time.Second) {
		t.Fatalf("clock at %v", c.Now())
	}
}

func TestSameTimeFIFO(t *testing.T) {
	var c Clock
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		c.Schedule(Time(time.Second), func(Time) { order = append(order, i) })
	}
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	for i, v := range order {
		if v != i {
			t.Fatalf("same-time events not FIFO: %v", order)
		}
	}
}

func TestPastEventsClampToNow(t *testing.T) {
	var c Clock
	c.Schedule(Time(5*time.Second), func(now Time) {
		c.Schedule(Time(time.Second), func(now2 Time) {
			if now2 != Time(5*time.Second) {
				t.Errorf("past event fired at %v", now2)
			}
		})
	})
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
}

func TestAfter(t *testing.T) {
	var c Clock
	fired := Time(0)
	c.After(100*time.Millisecond, func(now Time) { fired = now })
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired != Time(100*time.Millisecond) {
		t.Fatalf("After fired at %v", fired)
	}
}

func TestCancel(t *testing.T) {
	var c Clock
	fired := false
	e := c.Schedule(Time(time.Second), func(Time) { fired = true })
	c.Cancel(e)
	if err := c.Run(0); err != nil {
		t.Fatal(err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	// Double-cancel and nil-cancel are no-ops.
	c.Cancel(e)
	c.Cancel(nil)
}

func TestRunBudget(t *testing.T) {
	var c Clock
	var loop func(Time)
	loop = func(Time) { c.After(time.Millisecond, loop) }
	c.After(time.Millisecond, loop)
	if err := c.Run(100); err != ErrBudgetExceeded {
		t.Fatalf("want ErrBudgetExceeded, got %v", err)
	}
}

func TestRunUntil(t *testing.T) {
	var c Clock
	fired := 0
	for i := 1; i <= 10; i++ {
		c.Schedule(Time(time.Duration(i)*time.Second), func(Time) { fired++ })
	}
	c.RunUntil(Time(5 * time.Second))
	if fired != 5 {
		t.Fatalf("fired %d, want 5", fired)
	}
	if c.Now() != Time(5*time.Second) {
		t.Fatalf("clock at %v", c.Now())
	}
	if c.Pending() != 5 {
		t.Fatalf("pending %d, want 5", c.Pending())
	}
}

func TestRunUntilAdvancesIdleClock(t *testing.T) {
	var c Clock
	c.RunUntil(Time(7 * time.Second))
	if c.Now() != Time(7*time.Second) {
		t.Fatalf("idle clock at %v", c.Now())
	}
}

func TestTimeConversions(t *testing.T) {
	x := Time(1500 * time.Microsecond)
	if x.Seconds() != 0.0015 {
		t.Fatalf("Seconds %g", x.Seconds())
	}
	if x.Micros() != 1500 {
		t.Fatalf("Micros %g", x.Micros())
	}
	if x.Duration() != 1500*time.Microsecond {
		t.Fatalf("Duration %v", x.Duration())
	}
}
