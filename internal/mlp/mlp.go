// Package mlp implements the dense components of DLRM (§2.1): the bottom
// MLP that reprojects continuous features and the top MLP that captures
// feature interactions. The forward pass is real fp32 arithmetic; a FLOP
// count accompanies each network so the serving simulator can convert
// dense work into virtual compute time on a host's compute service rate.
package mlp

import (
	"fmt"

	"sdm/internal/xrand"
)

// Layer is one fully connected layer with ReLU activation.
type Layer struct {
	In, Out int
	// W is row-major [Out][In]; B is [Out].
	W []float32
	B []float32
}

// Network is a stack of fully connected layers.
type Network struct {
	Layers []Layer
	// scratch buffers reused across Forward calls.
	bufA, bufB []float32
}

// New builds a network with the given layer widths (len ≥ 2: input width
// followed by each layer's output width), with deterministic synthetic
// weights.
func New(widths []int, seed uint64) (*Network, error) {
	if len(widths) < 2 {
		return nil, fmt.Errorf("mlp: need at least input and one layer, got %d widths", len(widths))
	}
	rng := xrand.New(seed)
	n := &Network{}
	maxW := 0
	for i := 0; i+1 < len(widths); i++ {
		in, out := widths[i], widths[i+1]
		if in <= 0 || out <= 0 {
			return nil, fmt.Errorf("mlp: widths must be positive, got %d→%d", in, out)
		}
		l := Layer{In: in, Out: out, W: make([]float32, in*out), B: make([]float32, out)}
		scale := 1.0 / float64(in)
		for j := range l.W {
			l.W[j] = float32(rng.Norm(0, scale))
		}
		for j := range l.B {
			l.B[j] = float32(rng.Norm(0, 0.01))
		}
		n.Layers = append(n.Layers, l)
		if in > maxW {
			maxW = in
		}
		if out > maxW {
			maxW = out
		}
	}
	n.bufA = make([]float32, maxW)
	n.bufB = make([]float32, maxW)
	return n, nil
}

// InputDim returns the expected input width.
func (n *Network) InputDim() int { return n.Layers[0].In }

// OutputDim returns the output width.
func (n *Network) OutputDim() int { return n.Layers[len(n.Layers)-1].Out }

// Forward runs the network on x (len InputDim) and writes the result into
// out (len OutputDim). The final layer is linear (no ReLU), matching the
// usual CTR head before the sigmoid.
func (n *Network) Forward(out, x []float32) error {
	if len(x) != n.InputDim() {
		return fmt.Errorf("mlp: input dim %d, want %d", len(x), n.InputDim())
	}
	if len(out) != n.OutputDim() {
		return fmt.Errorf("mlp: output dim %d, want %d", len(out), n.OutputDim())
	}
	cur := n.bufA[:len(x)]
	copy(cur, x)
	next := n.bufB
	for li, l := range n.Layers {
		nx := next[:l.Out]
		for o := 0; o < l.Out; o++ {
			acc := l.B[o]
			w := l.W[o*l.In : (o+1)*l.In]
			for i, v := range cur {
				acc += w[i] * v
			}
			if li < len(n.Layers)-1 && acc < 0 {
				acc = 0 // ReLU on hidden layers
			}
			nx[o] = acc
		}
		cur, next = nx, cur[:cap(cur)]
	}
	copy(out, cur)
	return nil
}

// FLOPs returns the multiply-accumulate count of one forward pass
// (2 FLOPs per MAC).
func (n *Network) FLOPs() int64 {
	var f int64
	for _, l := range n.Layers {
		f += 2 * int64(l.In) * int64(l.Out)
	}
	return f
}

// ParamCount returns the number of parameters.
func (n *Network) ParamCount() int64 {
	var p int64
	for _, l := range n.Layers {
		p += int64(l.In)*int64(l.Out) + int64(l.Out)
	}
	return p
}

// CostModel converts network FLOPs into virtual seconds on a host with the
// given effective FLOP/s rate.
func CostModel(flops int64, flopsPerSecond float64) float64 {
	if flopsPerSecond <= 0 {
		return 0
	}
	return float64(flops) / flopsPerSecond
}
