package mlp

import (
	"math"
	"testing"
)

func TestNewValidation(t *testing.T) {
	if _, err := New([]int{8}, 1); err == nil {
		t.Fatal("single width should fail")
	}
	if _, err := New([]int{8, 0}, 1); err == nil {
		t.Fatal("zero width should fail")
	}
}

func TestForwardShape(t *testing.T) {
	n, err := New([]int{16, 32, 8, 1}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if n.InputDim() != 16 || n.OutputDim() != 1 {
		t.Fatalf("dims %d/%d", n.InputDim(), n.OutputDim())
	}
	x := make([]float32, 16)
	for i := range x {
		x[i] = float32(i) / 16
	}
	out := make([]float32, 1)
	if err := n.Forward(out, x); err != nil {
		t.Fatal(err)
	}
	if math.IsNaN(float64(out[0])) || math.IsInf(float64(out[0]), 0) {
		t.Fatalf("bad output %g", out[0])
	}
}

func TestForwardDimChecks(t *testing.T) {
	n, err := New([]int{4, 2}, 1)
	if err != nil {
		t.Fatal(err)
	}
	if err := n.Forward(make([]float32, 2), make([]float32, 3)); err == nil {
		t.Fatal("wrong input dim should fail")
	}
	if err := n.Forward(make([]float32, 3), make([]float32, 4)); err == nil {
		t.Fatal("wrong output dim should fail")
	}
}

func TestForwardDeterministic(t *testing.T) {
	a, _ := New([]int{8, 8, 1}, 7)
	b, _ := New([]int{8, 8, 1}, 7)
	x := make([]float32, 8)
	x[3] = 1
	oa, ob := make([]float32, 1), make([]float32, 1)
	if err := a.Forward(oa, x); err != nil {
		t.Fatal(err)
	}
	if err := b.Forward(ob, x); err != nil {
		t.Fatal(err)
	}
	if oa[0] != ob[0] {
		t.Fatal("same seed should give identical networks")
	}
}

func TestReLUOnHiddenOnly(t *testing.T) {
	// Construct a 1→1→1 net manually to verify activation placement.
	n := &Network{
		Layers: []Layer{
			{In: 1, Out: 1, W: []float32{-1}, B: []float32{0}},
			{In: 1, Out: 1, W: []float32{1}, B: []float32{-5}},
		},
		bufA: make([]float32, 1), bufB: make([]float32, 1),
	}
	out := make([]float32, 1)
	if err := n.Forward(out, []float32{3}); err != nil {
		t.Fatal(err)
	}
	// Hidden: relu(-3) = 0. Output: 0 - 5 = -5 (linear, no ReLU).
	if out[0] != -5 {
		t.Fatalf("output %g, want -5", out[0])
	}
}

func TestFLOPsAndParams(t *testing.T) {
	n, _ := New([]int{10, 20, 5}, 1)
	if got := n.FLOPs(); got != 2*(10*20+20*5) {
		t.Fatalf("FLOPs %d", got)
	}
	if got := n.ParamCount(); got != 10*20+20+20*5+5 {
		t.Fatalf("params %d", got)
	}
}

func TestCostModel(t *testing.T) {
	if CostModel(1e9, 1e12) != 1e-3 {
		t.Fatal("cost model arithmetic")
	}
	if CostModel(1e9, 0) != 0 {
		t.Fatal("zero rate should give 0")
	}
}
