package embedding

import (
	"fmt"
	"math"

	"sdm/internal/quant"
)

// PrunedRow marks an index that was removed by pruning in a mapper tensor.
const PrunedRow = int32(-1)

// Pruned is a post-training pruned table (§4.5): a dense table holding only
// the surviving rows, plus a mapping tensor from unpruned index space to
// pruned index space (PrunedRow for removed rows). The paper stores the
// dense table on SM and keeps the mapper in FM; the mapper's FM footprint
// (NumRow(unpruned) × 4 B) is what de-pruning reclaims for cache.
type Pruned struct {
	// UnprunedSpec is the original table shape.
	UnprunedSpec Spec
	// Mapper maps unpruned row index → dense row index or PrunedRow.
	Mapper []int32
	// Dense holds only surviving rows (Spec().Rows == number kept).
	Dense *Table
}

// MapperBytes returns the FM footprint of the mapping tensor.
func (p *Pruned) MapperBytes() int64 { return int64(len(p.Mapper)) * 4 }

// KeptRows returns the number of surviving rows.
func (p *Pruned) KeptRows() int64 { return p.Dense.Spec().Rows }

// PruneZeroRows removes rows whose dequantized L∞ norm is ≤ eps — the
// paper's "embedding rows with values very close to 0 are heuristically
// removed". It returns the pruned representation.
func PruneZeroRows(t *Table, eps float32) (*Pruned, error) {
	spec := t.Spec()
	mapper := make([]int32, spec.Rows)
	row := make([]float32, spec.Dim)
	var kept int64
	// First pass: classify rows.
	for r := int64(0); r < spec.Rows; r++ {
		if err := t.DequantizeRow(row, r); err != nil {
			return nil, err
		}
		if maxAbs(row) <= eps {
			mapper[r] = PrunedRow
		} else {
			mapper[r] = int32(kept)
			kept++
		}
	}
	denseSpec := spec
	denseSpec.Rows = kept
	if kept == 0 {
		denseSpec.Rows = 1 // degenerate: keep one zero row
	}
	dense := &Table{spec: denseSpec, data: make([]byte, denseSpec.SizeBytes())}
	rb := int64(spec.RowBytes())
	for r := int64(0); r < spec.Rows; r++ {
		d := mapper[r]
		if d == PrunedRow {
			continue
		}
		src, err := t.Row(r)
		if err != nil {
			return nil, err
		}
		copy(dense.data[int64(d)*rb:(int64(d)+1)*rb], src)
	}
	return &Pruned{UnprunedSpec: spec, Mapper: mapper, Dense: dense}, nil
}

func maxAbs(row []float32) float32 {
	var m float32
	for _, v := range row {
		a := float32(math.Abs(float64(v)))
		if a > m {
			m = a
		}
	}
	return m
}

// Lookup resolves an unpruned index through the mapper; ok is false for
// pruned rows (whose value is the zero vector).
func (p *Pruned) Lookup(unprunedIdx int64) (denseIdx int64, ok bool, err error) {
	if unprunedIdx < 0 || unprunedIdx >= int64(len(p.Mapper)) {
		return 0, false, fmt.Errorf("%w: %d of %d", ErrRowRange, unprunedIdx, len(p.Mapper))
	}
	d := p.Mapper[unprunedIdx]
	if d == PrunedRow {
		return 0, false, nil
	}
	return int64(d), true, nil
}

// Deprune materializes the unpruned table (Algorithm 2 of §4.5): a new
// table in the unpruned index space where pruned rows become explicit zero
// rows. The mapper tensor is no longer needed afterwards, freeing
// MapperBytes() of FM for cache at the cost of a larger SM footprint and a
// small number of extra (cold) row accesses.
func (p *Pruned) Deprune() (*Table, error) {
	spec := p.UnprunedSpec
	nt := &Table{spec: spec, data: make([]byte, spec.SizeBytes())}
	rb := int64(spec.RowBytes())
	zero := make([]float32, spec.Dim)
	zeroRow := make([]byte, rb)
	if err := quant.QuantizeRow(zeroRow, zero, spec.QType); err != nil {
		return nil, err
	}
	for r := int64(0); r < spec.Rows; r++ {
		dst := nt.data[r*rb : (r+1)*rb]
		d := p.Mapper[r]
		if d == PrunedRow {
			copy(dst, zeroRow)
			continue
		}
		src, err := p.Dense.Row(int64(d))
		if err != nil {
			return nil, err
		}
		copy(dst, src)
	}
	return nt, nil
}

// Pool computes SparseLengthsSum over unpruned indices, resolving the
// mapper per lookup (the two-structure path the paper compares against
// de-pruning). Pruned rows contribute zero.
func (p *Pruned) Pool(out []float32, indices []int64) error {
	for i := range out {
		out[i] = 0
	}
	for _, idx := range indices {
		d, ok, err := p.Lookup(idx)
		if err != nil {
			return err
		}
		if !ok {
			continue
		}
		row, err := p.Dense.Row(d)
		if err != nil {
			return err
		}
		if err := quant.AccumulateRow(out, row, p.Dense.Spec().QType); err != nil {
			return err
		}
	}
	return nil
}
