// Package embedding implements DLRM embedding tables (§2.1): storage of
// row-wise quantized rows, SparseLengthsSum pooling, post-training pruning
// with index-mapping tensors, de-pruning at load time (§4.5, Algorithm 2)
// and de-quantization at load time (§A.5).
package embedding

import (
	"errors"
	"fmt"

	"sdm/internal/quant"
	"sdm/internal/xrand"
)

// Kind distinguishes user and item tables; the paper's central observation
// (§2.2) is that user tables hold most capacity but need far less bandwidth
// because the user side is looked up once per query while items are batched.
type Kind int

// Table kinds.
const (
	User Kind = iota + 1
	Item
)

// String returns the kind name.
func (k Kind) String() string {
	switch k {
	case User:
		return "user"
	case Item:
		return "item"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Spec describes one embedding table.
type Spec struct {
	ID   int
	Name string
	// Rows is the (unpruned) row count, i.e. the categorical cardinality.
	Rows int64
	// Dim is the embedding dimension in elements.
	Dim int
	// QType is the storage encoding.
	QType quant.Type
	Kind  Kind
	// PoolingFactor is the average number of rows looked up per query
	// (p_i in Eq. 1).
	PoolingFactor float64
	// Alpha is the Zipf skew of accesses to this table (§4.2).
	Alpha float64
	// ZeroFrac is the fraction of rows that are ~0 and prunable (§4.5).
	ZeroFrac float64
}

// RowBytes returns the stored size of one row.
func (s Spec) RowBytes() int { return quant.RowBytes(s.QType, s.Dim) }

// SizeBytes returns the stored size of the whole (unpruned) table.
func (s Spec) SizeBytes() int64 { return s.Rows * int64(s.RowBytes()) }

// Validate reports configuration errors.
func (s Spec) Validate() error {
	switch {
	case s.Rows <= 0:
		return fmt.Errorf("embedding: table %d: rows must be > 0", s.ID)
	case s.Dim <= 0:
		return fmt.Errorf("embedding: table %d: dim must be > 0", s.ID)
	case s.QType == 0:
		return fmt.Errorf("embedding: table %d: quant type unset", s.ID)
	case s.Kind == 0:
		return fmt.Errorf("embedding: table %d: kind unset", s.ID)
	case s.PoolingFactor < 0:
		return fmt.Errorf("embedding: table %d: negative pooling factor", s.ID)
	}
	return nil
}

// Table is a materialized embedding table: Rows quantized rows of RowBytes
// each, stored contiguously.
type Table struct {
	spec Spec
	data []byte
}

// ErrRowRange is returned for out-of-range row indices.
var ErrRowRange = errors.New("embedding: row index out of range")

// NewSynthetic builds a table with deterministic synthetic content: row r
// element e is a smooth function of (seed, table ID, r, e), and a ZeroFrac
// fraction of rows is (near) zero so pruning has something to remove.
// Determinism lets tests compare the SDM path against a flat oracle.
func NewSynthetic(spec Spec, seed uint64) (*Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	t := &Table{spec: spec, data: make([]byte, spec.SizeBytes())}
	row := make([]float32, spec.Dim)
	rb := spec.RowBytes()
	for r := int64(0); r < spec.Rows; r++ {
		FillSyntheticRow(row, seed, spec.ID, r, spec.ZeroFrac)
		if err := quant.QuantizeRow(t.data[r*int64(rb):(r+1)*int64(rb)], row, spec.QType); err != nil {
			return nil, err
		}
	}
	return t, nil
}

// FillSyntheticRow writes the deterministic synthetic values for row r of
// table tableID into dst. Rows whose hash falls below zeroFrac are zero.
func FillSyntheticRow(dst []float32, seed uint64, tableID int, r int64, zeroFrac float64) {
	rng := xrand.New(seed ^ uint64(tableID)<<32 ^ uint64(r)*0x9e3779b97f4a7c15)
	if zeroFrac > 0 && rng.Float64() < zeroFrac {
		for i := range dst {
			dst[i] = 0
		}
		return
	}
	for i := range dst {
		dst[i] = float32(rng.Norm(0, 0.5))
	}
}

// FromBytes wraps raw stored rows (quantized, back to back) as a Table.
// data must be exactly spec.SizeBytes() long; the table takes ownership.
// It is how the migration engine rebuilds an FM-resident table from the
// bytes it read back from SM.
func FromBytes(spec Spec, data []byte) (*Table, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if int64(len(data)) != spec.SizeBytes() {
		return nil, fmt.Errorf("embedding: table %d: %d data bytes for %d-byte spec",
			spec.ID, len(data), spec.SizeBytes())
	}
	return &Table{spec: spec, data: data}, nil
}

// Spec returns the table spec.
func (t *Table) Spec() Spec { return t.spec }

// Bytes returns the raw stored bytes (rows back to back).
func (t *Table) Bytes() []byte { return t.data }

// Row returns the stored bytes of row i.
func (t *Table) Row(i int64) ([]byte, error) {
	if i < 0 || i >= t.spec.Rows {
		return nil, fmt.Errorf("%w: %d of %d", ErrRowRange, i, t.spec.Rows)
	}
	rb := int64(t.spec.RowBytes())
	return t.data[i*rb : (i+1)*rb], nil
}

// RowOffset returns the byte offset of row i within Bytes().
func (t *Table) RowOffset(i int64) int64 { return i * int64(t.spec.RowBytes()) }

// DequantizeRow decodes row i into dst (len must be Dim).
func (t *Table) DequantizeRow(dst []float32, i int64) error {
	row, err := t.Row(i)
	if err != nil {
		return err
	}
	return quant.DequantizeRow(dst, row, t.spec.QType)
}

// Pool computes SparseLengthsSum over indices into out (len must be Dim):
// out = Σ dequant(row[idx]). This is the flat-memory oracle path used by
// tests and by tables placed directly in FM.
func (t *Table) Pool(out []float32, indices []int64) error {
	for i := range out {
		out[i] = 0
	}
	for _, idx := range indices {
		row, err := t.Row(idx)
		if err != nil {
			return err
		}
		if err := quant.AccumulateRow(out, row, t.spec.QType); err != nil {
			return err
		}
	}
	return nil
}

// Dequantize returns a copy of the table re-encoded as FP32 (§A.5,
// de-quantization at load time). The returned table's rows are Dim*4 bytes.
func (t *Table) Dequantize() (*Table, error) {
	if t.spec.QType == quant.FP32 {
		cp := &Table{spec: t.spec, data: make([]byte, len(t.data))}
		copy(cp.data, t.data)
		return cp, nil
	}
	spec := t.spec
	spec.QType = quant.FP32
	out := &Table{spec: spec, data: make([]byte, spec.SizeBytes())}
	row := make([]float32, t.spec.Dim)
	rb := spec.RowBytes()
	for r := int64(0); r < t.spec.Rows; r++ {
		if err := t.DequantizeRow(row, r); err != nil {
			return nil, err
		}
		if err := quant.QuantizeRow(out.data[r*int64(rb):(r+1)*int64(rb)], row, quant.FP32); err != nil {
			return nil, err
		}
	}
	return out, nil
}
