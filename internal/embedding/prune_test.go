package embedding

import (
	"math"
	"testing"
)

func prunedFixture(t *testing.T) (*Table, *Pruned) {
	t.Helper()
	tb, err := NewSynthetic(smallSpec(), 7)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PruneZeroRows(tb, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	return tb, p
}

func TestPruneRemovesOnlyZeroRows(t *testing.T) {
	tb, p := prunedFixture(t)
	if p.KeptRows() >= tb.Spec().Rows {
		t.Fatalf("pruning kept all %d rows; ZeroFrac rows should go", p.KeptRows())
	}
	row := make([]float32, tb.Spec().Dim)
	for r := int64(0); r < tb.Spec().Rows; r++ {
		if err := tb.DequantizeRow(row, r); err != nil {
			t.Fatal(err)
		}
		isZero := true
		for _, v := range row {
			if v != 0 {
				isZero = false
				break
			}
		}
		if isZero && p.Mapper[r] != PrunedRow {
			t.Fatalf("zero row %d not pruned", r)
		}
		if !isZero && p.Mapper[r] == PrunedRow {
			t.Fatalf("non-zero row %d was pruned", r)
		}
	}
}

func TestMapperDense(t *testing.T) {
	_, p := prunedFixture(t)
	// Mapper targets must be a 0..kept-1 bijection in order.
	next := int32(0)
	for r, m := range p.Mapper {
		if m == PrunedRow {
			continue
		}
		if m != next {
			t.Fatalf("mapper[%d] = %d, want %d", r, m, next)
		}
		next++
	}
	if int64(next) != p.KeptRows() {
		t.Fatalf("kept %d vs mapper %d", p.KeptRows(), next)
	}
	if p.MapperBytes() != int64(len(p.Mapper))*4 {
		t.Fatal("mapper bytes accounting")
	}
}

func TestPrunedLookup(t *testing.T) {
	_, p := prunedFixture(t)
	if _, _, err := p.Lookup(-1); err == nil {
		t.Fatal("negative index should fail")
	}
	if _, _, err := p.Lookup(int64(len(p.Mapper))); err == nil {
		t.Fatal("out-of-range index should fail")
	}
	var sawPruned, sawKept bool
	for r := int64(0); r < int64(len(p.Mapper)); r++ {
		_, ok, err := p.Lookup(r)
		if err != nil {
			t.Fatal(err)
		}
		if ok {
			sawKept = true
		} else {
			sawPruned = true
		}
	}
	if !sawPruned || !sawKept {
		t.Fatal("fixture should contain both pruned and kept rows")
	}
}

func TestPrunedPoolMatchesOracle(t *testing.T) {
	tb, p := prunedFixture(t)
	indices := []int64{0, 3, 7, 100, 150, 199, 3}
	want := make([]float32, tb.Spec().Dim)
	if err := tb.Pool(want, indices); err != nil {
		t.Fatal(err)
	}
	got := make([]float32, tb.Spec().Dim)
	if err := p.Pool(got, indices); err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if math.Abs(float64(want[i]-got[i])) > 1e-5 {
			t.Fatalf("pruned pool mismatch at %d: %g vs %g", i, got[i], want[i])
		}
	}
}

func TestDepruneRoundTrip(t *testing.T) {
	tb, p := prunedFixture(t)
	dt, err := p.Deprune()
	if err != nil {
		t.Fatal(err)
	}
	if dt.Spec().Rows != tb.Spec().Rows {
		t.Fatalf("depruned rows %d, want %d", dt.Spec().Rows, tb.Spec().Rows)
	}
	// Every row must decode identically to the original (zero rows
	// included — Algorithm 2 materializes explicit zeros).
	a, b := make([]float32, tb.Spec().Dim), make([]float32, tb.Spec().Dim)
	for r := int64(0); r < tb.Spec().Rows; r++ {
		if err := tb.DequantizeRow(a, r); err != nil {
			t.Fatal(err)
		}
		if err := dt.DequantizeRow(b, r); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("deprune row %d element %d: %g vs %g", r, i, b[i], a[i])
			}
		}
	}
	// §4.5: de-pruned SM footprint exceeds the pruned dense table.
	if dt.Spec().SizeBytes() <= p.Dense.Spec().SizeBytes() {
		t.Fatal("deprune must grow the SM footprint")
	}
}

func TestPruneAllZeroTable(t *testing.T) {
	spec := smallSpec()
	spec.ZeroFrac = 1.0
	tb, err := NewSynthetic(spec, 9)
	if err != nil {
		t.Fatal(err)
	}
	p, err := PruneZeroRows(tb, 1e-6)
	if err != nil {
		t.Fatal(err)
	}
	out := make([]float32, spec.Dim)
	if err := p.Pool(out, []int64{0, 1, 2}); err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("all-pruned pool should be zero")
		}
	}
}
