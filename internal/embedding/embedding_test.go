package embedding

import (
	"math"
	"testing"

	"sdm/internal/quant"
)

func smallSpec() Spec {
	return Spec{
		ID: 1, Name: "t1", Rows: 200, Dim: 32, QType: quant.Int8,
		Kind: User, PoolingFactor: 8, Alpha: 1.0, ZeroFrac: 0.3,
	}
}

func TestSpecValidate(t *testing.T) {
	good := smallSpec()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Spec{
		{}, // everything zero
		{ID: 1, Rows: 0, Dim: 4, QType: quant.Int8, Kind: User},
		{ID: 1, Rows: 4, Dim: 0, QType: quant.Int8, Kind: User},
		{ID: 1, Rows: 4, Dim: 4, Kind: User},
		{ID: 1, Rows: 4, Dim: 4, QType: quant.Int8},
		{ID: 1, Rows: 4, Dim: 4, QType: quant.Int8, Kind: User, PoolingFactor: -1},
	}
	for i, s := range bad {
		if err := s.Validate(); err == nil {
			t.Errorf("case %d should fail validation", i)
		}
	}
}

func TestSpecSizes(t *testing.T) {
	s := smallSpec()
	if s.RowBytes() != 40 {
		t.Fatalf("row bytes %d", s.RowBytes())
	}
	if s.SizeBytes() != 200*40 {
		t.Fatalf("size %d", s.SizeBytes())
	}
}

func TestSyntheticDeterminism(t *testing.T) {
	a, err := NewSynthetic(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := NewSynthetic(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Bytes()) != string(b.Bytes()) {
		t.Fatal("same seed must produce identical tables")
	}
	c, err := NewSynthetic(smallSpec(), 2)
	if err != nil {
		t.Fatal(err)
	}
	if string(a.Bytes()) == string(c.Bytes()) {
		t.Fatal("different seeds should differ")
	}
}

func TestZeroFracRowsPresent(t *testing.T) {
	tb, err := NewSynthetic(smallSpec(), 3)
	if err != nil {
		t.Fatal(err)
	}
	row := make([]float32, 32)
	zeros := 0
	for r := int64(0); r < 200; r++ {
		if err := tb.DequantizeRow(row, r); err != nil {
			t.Fatal(err)
		}
		allZero := true
		for _, v := range row {
			if v != 0 {
				allZero = false
				break
			}
		}
		if allZero {
			zeros++
		}
	}
	// ZeroFrac 0.3 of 200 rows ≈ 60 ± sampling noise.
	if zeros < 35 || zeros > 90 {
		t.Fatalf("zero rows %d, want ≈60", zeros)
	}
}

func TestRowRangeErrors(t *testing.T) {
	tb, err := NewSynthetic(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := tb.Row(-1); err == nil {
		t.Fatal("negative row should fail")
	}
	if _, err := tb.Row(200); err == nil {
		t.Fatal("row == Rows should fail")
	}
}

func TestPoolMatchesManual(t *testing.T) {
	tb, err := NewSynthetic(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	indices := []int64{0, 5, 5, 199, 42}
	out := make([]float32, 32)
	if err := tb.Pool(out, indices); err != nil {
		t.Fatal(err)
	}
	want := make([]float32, 32)
	row := make([]float32, 32)
	for _, idx := range indices {
		if err := tb.DequantizeRow(row, idx); err != nil {
			t.Fatal(err)
		}
		for i := range want {
			want[i] += row[i]
		}
	}
	for i := range want {
		if math.Abs(float64(out[i]-want[i])) > 1e-5 {
			t.Fatalf("pool mismatch at %d: %g vs %g", i, out[i], want[i])
		}
	}
}

func TestPoolEmptyIndices(t *testing.T) {
	tb, err := NewSynthetic(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	out := []float32{1, 2, 3}
	out = append(out, make([]float32, 29)...)
	if err := tb.Pool(out, nil); err != nil {
		t.Fatal(err)
	}
	for _, v := range out {
		if v != 0 {
			t.Fatal("empty pool must zero the output")
		}
	}
}

func TestDequantizeTable(t *testing.T) {
	tb, err := NewSynthetic(smallSpec(), 1)
	if err != nil {
		t.Fatal(err)
	}
	dq, err := tb.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	if dq.Spec().QType != quant.FP32 {
		t.Fatal("dequantized table should be FP32")
	}
	if dq.Spec().SizeBytes() <= tb.Spec().SizeBytes() {
		t.Fatal("FP32 expansion should grow the table (§A.5 SM cost)")
	}
	// Values must match the quantized decode exactly.
	a, b := make([]float32, 32), make([]float32, 32)
	for r := int64(0); r < 200; r += 17 {
		if err := tb.DequantizeRow(a, r); err != nil {
			t.Fatal(err)
		}
		if err := dq.DequantizeRow(b, r); err != nil {
			t.Fatal(err)
		}
		for i := range a {
			if a[i] != b[i] {
				t.Fatalf("row %d element %d: %g vs %g", r, i, a[i], b[i])
			}
		}
	}
	// FP32 tables dequantize to a copy, not an alias.
	dq2, err := dq.Dequantize()
	if err != nil {
		t.Fatal(err)
	}
	dq2.Bytes()[0] ^= 0xff
	if dq.Bytes()[0] == dq2.Bytes()[0] {
		t.Fatal("Dequantize of FP32 must return an independent copy")
	}
}

func TestKindString(t *testing.T) {
	if User.String() != "user" || Item.String() != "item" {
		t.Fatal("kind names")
	}
}
