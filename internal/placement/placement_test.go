package placement

import (
	"testing"

	"sdm/internal/embedding"
	"sdm/internal/model"
)

func testInstance(t *testing.T) *model.Instance {
	t.Helper()
	cfg := model.M1()
	cfg.NumUserTables = 8
	cfg.NumItemTables = 4
	cfg.TotalBytes = 1 << 24
	in, err := model.Build(cfg, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func TestSMOnlyDefault(t *testing.T) {
	in := testInstance(t)
	p, err := New(in, Config{Policy: SMOnlyWithCache, UserTablesOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range in.Tables {
		if s.Kind == embedding.User && p.Target(i) != SM {
			t.Fatalf("user table %d not on SM", i)
		}
		if s.Kind == embedding.Item && p.Target(i) != FM {
			t.Fatalf("item table %d should stay in FM (UserTablesOnly)", i)
		}
		if p.Target(i) == SM && !p.CacheEnabled(i) {
			t.Fatalf("SM table %d should have cache enabled by default", i)
		}
	}
	if p.SMBytes == 0 || p.FMDirectBytes == 0 {
		t.Fatal("byte accounting empty")
	}
}

func TestAllTablesEligible(t *testing.T) {
	in := testInstance(t)
	p, err := New(in, Config{Policy: SMOnlyWithCache, UserTablesOnly: false})
	if err != nil {
		t.Fatal(err)
	}
	for i := range in.Tables {
		if p.Target(i) != SM {
			t.Fatalf("table %d should be on SM when all tables are eligible", i)
		}
	}
}

func TestFixedFMBudgetRespected(t *testing.T) {
	in := testInstance(t)
	var userBytes int64
	for _, s := range in.UserTables() {
		userBytes += s.SizeBytes()
	}
	budget := userBytes / 3
	p, err := New(in, Config{Policy: FixedFMWithCache, UserTablesOnly: true, DRAMBudget: budget})
	if err != nil {
		t.Fatal(err)
	}
	var promoted int64
	for i, s := range in.Tables {
		if s.Kind == embedding.User && p.Target(i) == FM {
			promoted += s.SizeBytes()
		}
	}
	if promoted > budget {
		t.Fatalf("promoted %d bytes over budget %d", promoted, budget)
	}
	if promoted == 0 {
		t.Fatal("budget unused — promotion heuristic inert")
	}
}

func TestFixedFMPrefersHotPerByte(t *testing.T) {
	in := testInstance(t)
	// Find the user table with the highest BW/byte; a budget of exactly
	// its size should promote it.
	bw := in.BandwidthPerQuery()
	best, bestV := -1, 0.0
	for i, s := range in.Tables {
		if s.Kind != embedding.User {
			continue
		}
		v := bw[i] / float64(s.SizeBytes())
		if v > bestV {
			best, bestV = i, v
		}
	}
	p, err := New(in, Config{Policy: FixedFMWithCache, UserTablesOnly: true, DRAMBudget: in.Tables[best].SizeBytes()})
	if err != nil {
		t.Fatal(err)
	}
	if p.Target(best) != FM {
		t.Fatalf("hottest-per-byte table %d not promoted", best)
	}
}

func TestDenyList(t *testing.T) {
	in := testInstance(t)
	p, err := New(in, Config{Policy: SMOnlyWithCache, UserTablesOnly: true, DenySM: []int{0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	if p.Target(0) != FM || p.Target(2) != FM {
		t.Fatal("deny-listed tables must stay in FM")
	}
	if _, err := New(in, Config{DenySM: []int{999}}); err == nil {
		t.Fatal("out-of-range deny entry should fail")
	}
}

func TestPerTableCacheEnablement(t *testing.T) {
	in := testInstance(t)
	// Force a table's alpha below the threshold.
	in.Tables[1].Alpha = 0.2
	p, err := New(in, Config{Policy: PerTableCache, UserTablesOnly: true, MinCacheAlpha: 0.6})
	if err != nil {
		t.Fatal(err)
	}
	if p.CacheEnabled(1) {
		t.Fatal("low-locality SM table should bypass the cache")
	}
	foundCached := false
	for i := range in.Tables {
		if p.Target(i) == SM && p.CacheEnabled(i) {
			foundCached = true
		}
	}
	if !foundCached {
		t.Fatal("high-locality tables should keep the cache")
	}
}

func TestSMTablesList(t *testing.T) {
	in := testInstance(t)
	p, err := New(in, Config{Policy: SMOnlyWithCache, UserTablesOnly: true})
	if err != nil {
		t.Fatal(err)
	}
	sm := p.SMTables()
	if len(sm) != 8 {
		t.Fatalf("SM tables %d, want the 8 user tables", len(sm))
	}
}

func TestZeroDRAMBudget(t *testing.T) {
	// FixedFM with no budget degenerates to SM-only: nothing promotes,
	// nothing breaks.
	in := testInstance(t)
	p, err := New(in, Config{Policy: FixedFMWithCache, UserTablesOnly: true, DRAMBudget: 0})
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range in.Tables {
		if s.Kind == embedding.User && p.Target(i) != SM {
			t.Fatalf("user table %d promoted with zero budget", i)
		}
	}
	if len(p.SMTables()) != 8 {
		t.Fatalf("zero budget should leave all 8 user tables on SM, got %d", len(p.SMTables()))
	}
}

func TestDenyListCoversEveryTable(t *testing.T) {
	in := testInstance(t)
	deny := make([]int, len(in.Tables))
	for i := range deny {
		deny[i] = i
	}
	p, err := New(in, Config{Policy: SMOnlyWithCache, DenySM: deny})
	if err != nil {
		t.Fatal(err)
	}
	if got := p.SMTables(); len(got) != 0 {
		t.Fatalf("fully denied plan still placed tables on SM: %v", got)
	}
	if p.SMBytes != 0 {
		t.Fatalf("fully denied plan reports %d SM bytes", p.SMBytes)
	}
	var total int64
	for _, s := range in.Tables {
		total += s.SizeBytes()
	}
	if p.FMDirectBytes != total {
		t.Fatalf("FM bytes %d, want the whole model %d", p.FMDirectBytes, total)
	}
	for i, s := range in.Tables {
		if (Config{DenySM: deny}).EligibleSM(i, s.Kind) {
			t.Fatalf("denied table %d reported eligible", i)
		}
	}
}

func TestBudgetSmallerThanSmallestTable(t *testing.T) {
	in := testInstance(t)
	smallest := in.Tables[0].SizeBytes()
	for _, s := range in.Tables {
		if s.SizeBytes() < smallest {
			smallest = s.SizeBytes()
		}
	}
	p, err := New(in, Config{Policy: FixedFMWithCache, UserTablesOnly: true, DRAMBudget: smallest - 1})
	if err != nil {
		t.Fatal(err)
	}
	var promoted int64
	for i, s := range in.Tables {
		if s.Kind == embedding.User && p.Target(i) == FM {
			promoted += s.SizeBytes()
		}
	}
	if promoted != 0 {
		t.Fatalf("budget below the smallest table still promoted %d bytes", promoted)
	}
}

func TestPolicyStrings(t *testing.T) {
	for _, p := range []Policy{SMOnlyWithCache, FixedFMWithCache, PerTableCache} {
		if p.String() == "" {
			t.Errorf("empty name for %d", p)
		}
	}
	if FM.String() != "FM" || SM.String() != "SM" {
		t.Fatal("target names")
	}
}

func TestDefaultPolicy(t *testing.T) {
	in := testInstance(t)
	p, err := New(in, Config{})
	if err != nil {
		t.Fatal(err)
	}
	if len(p.SMTables()) == 0 {
		t.Fatal("default policy should place something on SM")
	}
}
