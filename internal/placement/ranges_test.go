package placement

import (
	"reflect"
	"testing"
)

func TestPackRangesGreedyOrder(t *testing.T) {
	items := []RangeItem{
		{Table: 0, Range: 0, Bytes: 100, Density: 5},
		{Table: 0, Range: 1, Bytes: 100, Density: 1},
		{Table: 1, Range: 0, Bytes: 100, Density: 9},
		{Table: 1, Range: WholeTable, Bytes: 300, Density: 3},
	}
	got := PackRanges(items, 350)
	// Density order: 9, 5, then the whole-table item (300 bytes) exceeds
	// the remaining 150 — the greedy skips (not truncates) it and still
	// takes the density-1 range behind it.
	want := []int{2, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("selection %v, want %v", got, want)
	}
}

func TestPackRangesDeterministicTies(t *testing.T) {
	mk := func() []RangeItem {
		return []RangeItem{
			{Table: 2, Range: 1, Bytes: 10, Density: 4},
			{Table: 1, Range: 0, Bytes: 10, Density: 4},
			{Table: 1, Range: 2, Bytes: 10, Density: 4},
		}
	}
	got := PackRanges(mk(), 20)
	// Ties break (Table, Range) ascending regardless of input order.
	want := []int{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("selection %v, want %v", got, want)
	}
	shuffled := []RangeItem{mk()[2], mk()[0], mk()[1]}
	got2 := PackRanges(shuffled, 20)
	for i, idx := range got2 {
		if shuffled[idx] != mk()[want[i]] {
			t.Fatalf("tie-break not input-order independent: %v", got2)
		}
	}
}

func TestPackRangesEdges(t *testing.T) {
	if got := PackRanges(nil, 100); len(got) != 0 {
		t.Fatalf("empty items selected %v", got)
	}
	items := []RangeItem{
		{Table: 0, Range: 0, Bytes: 10, Density: 0},
		{Table: 0, Range: 1, Bytes: 10, Density: -1},
	}
	if got := PackRanges(items, 100); len(got) != 0 {
		t.Fatalf("zero/negative density selected %v", got)
	}
	items[0].Density = 1
	if got := PackRanges(items, 0); len(got) != 0 {
		t.Fatalf("zero budget selected %v", got)
	}
	if got := PackRanges(items, 9); len(got) != 0 {
		t.Fatalf("budget below smallest item selected %v", got)
	}
}
