package placement

import (
	"reflect"
	"testing"
)

func TestPackRangesGreedyOrder(t *testing.T) {
	items := []RangeItem{
		{Table: 0, Range: 0, Bytes: 100, Density: 5},
		{Table: 0, Range: 1, Bytes: 100, Density: 1},
		{Table: 1, Range: 0, Bytes: 100, Density: 9},
		{Table: 1, Range: WholeTable, Bytes: 300, Density: 3},
	}
	got := PackRanges(items, 350)
	// Density order: 9, 5, then the whole-table item (300 bytes) exceeds
	// the remaining 150 — the greedy skips (not truncates) it and still
	// takes the density-1 range behind it.
	want := []int{2, 0, 1}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("selection %v, want %v", got, want)
	}
}

func TestPackRangesDeterministicTies(t *testing.T) {
	mk := func() []RangeItem {
		return []RangeItem{
			{Table: 2, Range: 1, Bytes: 10, Density: 4},
			{Table: 1, Range: 0, Bytes: 10, Density: 4},
			{Table: 1, Range: 2, Bytes: 10, Density: 4},
		}
	}
	got := PackRanges(mk(), 20)
	// Ties break (Table, Range) ascending regardless of input order.
	want := []int{1, 2}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("selection %v, want %v", got, want)
	}
	shuffled := []RangeItem{mk()[2], mk()[0], mk()[1]}
	got2 := PackRanges(shuffled, 20)
	for i, idx := range got2 {
		if shuffled[idx] != mk()[want[i]] {
			t.Fatalf("tie-break not input-order independent: %v", got2)
		}
	}
}

func TestPackRangesWearDiscountsChurn(t *testing.T) {
	// Two candidates of equal footprint: the hotter one is a non-resident
	// challenger whose selection implies a demote write (DemoteBytes),
	// the cooler one is a resident incumbent that costs nothing. With a
	// tight window budget the wear discount re-ranks them.
	items := []RangeItem{
		{Table: 0, Range: 0, Bytes: 100, Density: 5, DemoteBytes: 100}, // hot but churny
		{Table: 1, Range: 0, Bytes: 100, Density: 4},                   // cooler, stable
	}
	// No wear budget: pure density order.
	if got := PackRangesWear(items, 100, WearBudget{}); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("wear-free selection %v, want [0]", got)
	}
	// Budget 50 < DemoteBytes: the challenger's score is discounted to
	// 5·50/150 = 1.67 < 4 — the stable item out-ranks it and takes the
	// DRAM budget.
	if got := PackRangesWear(items, 100, WearBudget{WindowBytes: 50}); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("wear-budgeted selection %v, want [1]", got)
	}
	// A generous budget keeps the density order.
	if got := PackRangesWear(items, 100, WearBudget{WindowBytes: 1 << 20}); !reflect.DeepEqual(got, []int{0}) {
		t.Fatalf("generous-budget selection %v, want [0]", got)
	}
	// Spend counts against the window: budget 1 MiB with 1 MiB already
	// spent behaves like an exhausted window.
	exhausted := WearBudget{WindowBytes: 1 << 20, SpentBytes: 1 << 20}
	if got := PackRangesWear(items, 100, exhausted); !reflect.DeepEqual(got, []int{1}) {
		t.Fatalf("exhausted-window selection %v, want [1]", got)
	}
}

func TestPackRangesWearRanksNotForbids(t *testing.T) {
	// The wear term re-ranks write-costing candidates but never forbids
	// them while budget remains: a demote cost larger than one window's
	// budget is expensive (heavily discounted), not impossible — the
	// actuator spreads its writes across windows.
	items := []RangeItem{
		{Table: 0, Range: 0, Bytes: 10, Density: 9, DemoteBytes: 60},
		{Table: 1, Range: 0, Bytes: 10, Density: 8, DemoteBytes: 60},
		{Table: 2, Range: 0, Bytes: 10, Density: 7}, // free: already resident
	}
	got := PackRangesWear(items, 100, WearBudget{WindowBytes: 50})
	// Discounted scores: item 2 ranks first (7 undiscounted beats
	// 9·50/110 = 4.1 and 8·50/110 = 3.6), but both churny items still
	// make the selection — their cost exceeds the window, yet they stay
	// eligible.
	if !reflect.DeepEqual(got, []int{2, 0, 1}) {
		t.Fatalf("selection %v, want [2 0 1]", got)
	}
	// Once the window is spent, write-costing candidates drop out while
	// free ones still pack.
	spent := PackRangesWear(items, 100, WearBudget{WindowBytes: 50, SpentBytes: 50})
	if !reflect.DeepEqual(spent, []int{2}) {
		t.Fatalf("exhausted-window selection %v, want [2]", spent)
	}
}

func TestPackRangesWearZeroBudgetIdentical(t *testing.T) {
	// The zero WearBudget must reproduce PackRanges bit-for-bit even when
	// items carry DemoteBytes.
	items := []RangeItem{
		{Table: 0, Range: 0, Bytes: 100, Density: 5, DemoteBytes: 1 << 30},
		{Table: 0, Range: 1, Bytes: 100, Density: 1, DemoteBytes: 1 << 30},
		{Table: 1, Range: 0, Bytes: 100, Density: 9, DemoteBytes: 1 << 30},
		{Table: 1, Range: WholeTable, Bytes: 300, Density: 3},
	}
	if got, want := PackRangesWear(items, 350, WearBudget{}), PackRanges(items, 350); !reflect.DeepEqual(got, want) {
		t.Fatalf("zero wear budget diverged: %v vs %v", got, want)
	}
}

func TestPackRangesEdges(t *testing.T) {
	if got := PackRanges(nil, 100); len(got) != 0 {
		t.Fatalf("empty items selected %v", got)
	}
	items := []RangeItem{
		{Table: 0, Range: 0, Bytes: 10, Density: 0},
		{Table: 0, Range: 1, Bytes: 10, Density: -1},
	}
	if got := PackRanges(items, 100); len(got) != 0 {
		t.Fatalf("zero/negative density selected %v", got)
	}
	items[0].Density = 1
	if got := PackRanges(items, 0); len(got) != 0 {
		t.Fatalf("zero budget selected %v", got)
	}
	if got := PackRanges(items, 9); len(got) != 0 {
		t.Fatalf("budget below smallest item selected %v", got)
	}
}
