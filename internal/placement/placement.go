// Package placement implements the table-placement policies of §4.6
// (Table 5): with a software-defined cache in FM, each table either maps
// wholly to SM (relying on the FM cache for hot rows) or is placed directly
// in FM within a configurable DRAM budget; tables with low temporal
// locality can additionally have their SM cache disabled. The paper's
// Tuning API — pre-defined policies by table size and pooling factor, a
// deny-list of tables that must not go to SM, and the DRAM budget — is
// reproduced as Config fields.
package placement

import (
	"fmt"
	"sort"

	"sdm/internal/embedding"
	"sdm/internal/model"
)

// Policy selects a Table 5 strategy.
type Policy int

// Policies from Table 5.
const (
	// SMOnlyWithCache maps all candidate tables to SM and relies on the
	// FM cache to keep hot rows fast ("performs well across the board").
	SMOnlyWithCache Policy = iota + 1
	// FixedFMWithCache maps the highest-value tables directly to FM
	// within the DRAM budget; the rest go to SM with cache.
	FixedFMWithCache
	// PerTableCache is SMOnlyWithCache, but tables with low temporal
	// locality bypass the cache entirely (caching them only pollutes it).
	PerTableCache
)

// String returns the policy name.
func (p Policy) String() string {
	switch p {
	case SMOnlyWithCache:
		return "SM only with Cache"
	case FixedFMWithCache:
		return "Fixed FM, SM with Cache"
	case PerTableCache:
		return "per table cache enablement"
	default:
		return fmt.Sprintf("Policy(%d)", int(p))
	}
}

// Target says where a table's rows live.
type Target int

// Placement targets.
const (
	FM Target = iota + 1 // direct DRAM placement
	SM                   // slow memory, fronted by the FM cache
)

// String returns the target name.
func (t Target) String() string {
	if t == FM {
		return "FM"
	}
	return "SM"
}

// Decision is the placement outcome for one table.
type Decision struct {
	Table        int
	Target       Target
	CacheEnabled bool
}

// Config tunes planning.
type Config struct {
	Policy Policy
	// DRAMBudget bounds bytes of direct FM placement ("All placement
	// policies adhere to a configurable DRAM budget").
	DRAMBudget int64
	// UserTablesOnly restricts SM candidates to user tables (the paper's
	// primary focus, §2.2 footnote); item tables then always stay in FM.
	UserTablesOnly bool
	// DenySM lists table indices that must not be placed in SM ("an
	// option to provide a list of tables which should not be placed in
	// SM for more elaborate offline placement").
	DenySM []int
	// MinCacheAlpha is the locality threshold below which PerTableCache
	// disables a table's cache.
	MinCacheAlpha float64
}

// Plan holds the full placement decision for a model instance.
type Plan struct {
	Decisions []Decision // indexed by table
	// FMDirectBytes is the DRAM consumed by direct placements.
	FMDirectBytes int64
	// SMBytes is the SM footprint of SM placements.
	SMBytes int64
}

// Target returns the placement of table t.
func (p *Plan) Target(t int) Target { return p.Decisions[t].Target }

// CacheEnabled reports whether table t uses the FM cache.
func (p *Plan) CacheEnabled(t int) bool { return p.Decisions[t].CacheEnabled }

// SMTables returns the indices of SM-resident tables.
func (p *Plan) SMTables() []int {
	var out []int
	for _, d := range p.Decisions {
		if d.Target == SM {
			out = append(out, d.Table)
		}
	}
	return out
}

// EligibleSM reports whether table idx (of the given kind) is an SM
// candidate under c's rules: not deny-listed and not excluded by
// UserTablesOnly. The adapt subsystem uses the same predicate to decide
// which tables may be swapped between FM and SM at runtime.
func (c Config) EligibleSM(idx int, kind embedding.Kind) bool {
	if c.UserTablesOnly && kind == embedding.Item {
		return false
	}
	for _, t := range c.DenySM {
		if t == idx {
			return false
		}
	}
	return true
}

// New computes a placement plan for inst.
func New(inst *model.Instance, cfg Config) (*Plan, error) {
	if cfg.Policy == 0 {
		cfg.Policy = SMOnlyWithCache
	}
	if cfg.MinCacheAlpha == 0 {
		cfg.MinCacheAlpha = 0.6
	}
	for _, t := range cfg.DenySM {
		if t < 0 || t >= len(inst.Tables) {
			return nil, fmt.Errorf("placement: deny-list table %d out of range (%d tables)", t, len(inst.Tables))
		}
	}

	plan := &Plan{Decisions: make([]Decision, len(inst.Tables))}
	bwPerQuery := inst.BandwidthPerQuery()

	// Seed: everything defaults to SM unless excluded.
	budget := cfg.DRAMBudget
	for i, s := range inst.Tables {
		d := Decision{Table: i, Target: SM, CacheEnabled: true}
		if !cfg.EligibleSM(i, s.Kind) {
			d.Target = FM
		}
		plan.Decisions[i] = d
	}

	if cfg.Policy == FixedFMWithCache && budget > 0 {
		// Greedily promote the tables with the highest bandwidth demand
		// per byte of capacity — small, hot tables first (the paper's
		// "pre-defined placement policies based on table size and
		// pooling factor").
		order := make([]int, 0, len(inst.Tables))
		for i := range inst.Tables {
			if plan.Decisions[i].Target == SM {
				order = append(order, i)
			}
		}
		sort.Slice(order, func(a, b int) bool {
			ta, tb := order[a], order[b]
			va := bwPerQuery[ta] / float64(inst.Tables[ta].SizeBytes())
			vb := bwPerQuery[tb] / float64(inst.Tables[tb].SizeBytes())
			return va > vb
		})
		for _, t := range order {
			sz := inst.Tables[t].SizeBytes()
			if sz <= budget {
				plan.Decisions[t].Target = FM
				budget -= sz
			}
		}
	}

	if cfg.Policy == PerTableCache {
		for i, s := range inst.Tables {
			if plan.Decisions[i].Target == SM && s.Alpha < cfg.MinCacheAlpha {
				plan.Decisions[i].CacheEnabled = false
			}
		}
	}

	for i, s := range inst.Tables {
		if plan.Decisions[i].Target == FM {
			plan.FMDirectBytes += s.SizeBytes()
		} else {
			plan.SMBytes += s.SizeBytes()
		}
	}
	return plan, nil
}
