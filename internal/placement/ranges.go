// Range-granular placement: the Table-5 greedy promotion generalized from
// whole tables to row ranges. The offline §4.6 knapsack ranks tables by
// bandwidth demand per byte of capacity; at range granularity the same
// ranking runs over [lo, hi) row windows, so a DRAM budget can hold the
// hot head of several tables instead of every byte of a few — the adapt
// subsystem calls into PackRanges with live demand densities.

package placement

import "sort"

// RangeItem is one knapsack candidate: a row range of a table (or, with
// Range == WholeTable, the table as a single indivisible item — how an
// adaptive controller scores a whole-table FM incumbent it can only demote
// wholesale).
type RangeItem struct {
	Table int
	Range int
	// Bytes is the item's stored footprint — what it costs against the
	// budget and what migrating it moves.
	Bytes int64
	// Density is the demand density ranking key (bytes/s of lookup demand
	// per byte of capacity), hysteresis already applied by the caller.
	Density float64
	// DemoteBytes is the SM write cost selecting this item implies: a
	// non-resident challenger will eventually be demote-written back to
	// SM when it cools, so churny candidates carry their footprint here,
	// while incumbents that merely keep their slot cost nothing. Only
	// consulted by the wear-aware packing (PackRangesWear).
	DemoteBytes int64
}

// WholeTable marks a RangeItem covering its entire table.
const WholeTable = -1

// WearBudget is the per-window SM write allowance wear-aware packing
// ranks against — derived by the caller from the device's EnduranceDWPD
// rating and remaining rated life (core.WearInfo.DailyWriteBudgetBytes).
// The zero value disables wear awareness entirely.
type WearBudget struct {
	// WindowBytes is the SM demote-write budget of one evaluation window;
	// <= 0 disables the wear term.
	WindowBytes int64
	// SpentBytes is what the current window has already written.
	SpentBytes int64
}

// Remaining returns the unspent window budget (0 when exhausted).
func (w WearBudget) Remaining() int64 {
	rem := w.WindowBytes - w.SpentBytes
	if rem < 0 {
		return 0
	}
	return rem
}

// PackRanges greedily selects items in decreasing density order under the
// byte budget and returns the indices of the selected items (in selection
// order). Zero-density items are never selected; ties break on (Table,
// Range) so the result is deterministic for any input order. Items too
// large for the remaining budget are skipped, not truncated — exactly the
// Table-5 greedy, at whatever granularity the items carry.
func PackRanges(items []RangeItem, budget int64) []int {
	return PackRangesWear(items, budget, WearBudget{})
}

// PackRangesWear is PackRanges with the §3 endurance model as a cost
// term: each candidate's score is its demand density discounted by its
// demote-write cost against the window's remaining SM write budget —
// score = density · rem/(rem+DemoteBytes) — so a hot-but-churny range
// re-ranks below a slightly cooler one that costs no endurance, and once
// the window budget is spent (rem = 0), write-costing candidates stop
// being selected at all. The discount only ranks; *enforcing* the write
// budget is the actuator's job, which spreads demote chunks across
// windows — a cost larger than one window's budget is expensive, not
// impossible. A zero WearBudget reproduces PackRanges exactly.
func PackRangesWear(items []RangeItem, budget int64, wear WearBudget) []int {
	rem := wear.Remaining()
	score := func(it RangeItem) float64 {
		if wear.WindowBytes <= 0 || it.DemoteBytes <= 0 {
			return it.Density
		}
		return it.Density * float64(rem) / float64(rem+it.DemoteBytes)
	}
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		sa, sb := score(ia), score(ib)
		if sa != sb {
			return sa > sb
		}
		if ia.Table != ib.Table {
			return ia.Table < ib.Table
		}
		return ia.Range < ib.Range
	})
	var out []int
	remaining := budget
	for _, i := range order {
		it := items[i]
		if score(it) <= 0 {
			break
		}
		if it.Bytes <= remaining {
			out = append(out, i)
			remaining -= it.Bytes
		}
	}
	return out
}
