// Range-granular placement: the Table-5 greedy promotion generalized from
// whole tables to row ranges. The offline §4.6 knapsack ranks tables by
// bandwidth demand per byte of capacity; at range granularity the same
// ranking runs over [lo, hi) row windows, so a DRAM budget can hold the
// hot head of several tables instead of every byte of a few — the adapt
// subsystem calls into PackRanges with live demand densities.

package placement

import "sort"

// RangeItem is one knapsack candidate: a row range of a table (or, with
// Range == WholeTable, the table as a single indivisible item — how an
// adaptive controller scores a whole-table FM incumbent it can only demote
// wholesale).
type RangeItem struct {
	Table int
	Range int
	// Bytes is the item's stored footprint — what it costs against the
	// budget and what migrating it moves.
	Bytes int64
	// Density is the demand density ranking key (bytes/s of lookup demand
	// per byte of capacity), hysteresis already applied by the caller.
	Density float64
}

// WholeTable marks a RangeItem covering its entire table.
const WholeTable = -1

// PackRanges greedily selects items in decreasing density order under the
// byte budget and returns the indices of the selected items (in selection
// order). Zero-density items are never selected; ties break on (Table,
// Range) so the result is deterministic for any input order. Items too
// large for the remaining budget are skipped, not truncated — exactly the
// Table-5 greedy, at whatever granularity the items carry.
func PackRanges(items []RangeItem, budget int64) []int {
	order := make([]int, len(items))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ia, ib := items[order[a]], items[order[b]]
		if ia.Density != ib.Density {
			return ia.Density > ib.Density
		}
		if ia.Table != ib.Table {
			return ia.Table < ib.Table
		}
		return ia.Range < ib.Range
	})
	var out []int
	remaining := budget
	for _, i := range order {
		it := items[i]
		if it.Density <= 0 {
			break
		}
		if it.Bytes <= remaining {
			out = append(out, i)
			remaining -= it.Bytes
		}
	}
	return out
}
