package adapt

import (
	"errors"
	"testing"
	"time"

	"sdm/internal/core"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// rangeFixture builds a ReserveSM store whose swappable tables split into
// several ranges, over a spatial (identity-permuted) drifting workload so
// each table's hot rows cluster in its head ranges.
func rangeFixture(t *testing.T, parallelism int) (*core.Store, *workload.Generator, *model.Instance) {
	t.Helper()
	mc := model.M1()
	mc.NumUserTables = 6
	mc.NumItemTables = 2
	mc.ItemBatch = 4
	mc.TotalBytes = 1 << 21
	inst, err := model.Build(mc, 1, 41)
	if err != nil {
		t.Fatal(err)
	}
	const perTable = 160 << 10
	for i := 0; i < mc.NumUserTables; i++ {
		inst.Tables[i].Rows = perTable / int64(inst.Tables[i].RowBytes())
		inst.Tables[i].Alpha = 1.1 // sharpen row skew: hot heads, cold tails
	}
	tables, err := inst.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	var clk simclock.Clock
	s, err := core.Open(inst, tables, core.Config{
		Seed: 17, ReserveSM: true, Ring: uring.Config{SGL: true},
		CacheBytes: 1 << 17, Parallelism: parallelism,
		MigrationRangeBytes: 16 << 10, // 10 ranges per table
		Placement: placement.Config{
			Policy: placement.SMOnlyWithCache, UserTablesOnly: true,
		},
	}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(inst, workload.Config{
		Seed: 19, NumUsers: 400, UserAlpha: 0.9, Spatial: true,
		Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, gen, inst
}

func rangeAdapter(t *testing.T, s *core.Store, bw float64) *Adapter {
	t.Helper()
	a, err := New(s, Config{
		Interval: 100 * time.Millisecond, BandwidthBytesPerSec: bw,
		DRAMBudget: 400 << 10, Granularity: Ranges, ChunkBytes: 8 << 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	return a
}

func TestRangeAdapterPromotesHotRanges(t *testing.T) {
	s, gen, inst := rangeFixture(t, 1)
	a := rangeAdapter(t, s, 8<<20)
	end := drive(t, s, a, gen, s.LoadDone(), 1500)
	st := a.Stats()
	if st.Evals == 0 || st.Promotions == 0 || st.RangeMoves == 0 {
		t.Fatalf("range controller idle: %s", st)
	}
	// Residency stays within the budget and never flips whole tables.
	var resident int64
	for i := 0; i < inst.Config.NumUserTables; i++ {
		if s.TargetOf(i) != placement.SM {
			t.Fatalf("range mode flipped table %d to whole-table FM", i)
		}
		resident += s.FMResidentBytes(i)
	}
	if resident == 0 || resident > 400<<10 {
		t.Fatalf("FM-resident range bytes %d outside (0, budget]", resident)
	}
	// The spotlight tables' head ranges (spatial workload: range 0 is the
	// Zipf head) must be FM-resident, and lookups must be served there.
	for _, h := range gen.HotUserTables() {
		found := false
		for _, rs := range s.RangeStats(nil) {
			if rs.Table == h && rs.Range == 0 && rs.FMResident {
				found = true
			}
		}
		if !found {
			t.Fatalf("spotlight table %d head range not FM-resident after convergence: %s", h, st)
		}
	}
	if s.Stats().RangeFMReads == 0 {
		t.Fatal("no lookups served from FM-resident ranges")
	}

	// Rotation: the controller re-places ranges, demoting stale ones.
	gen.ForceRotation()
	drive(t, s, a, gen, end, 1500)
	st2 := a.Stats()
	if st2.Demotions == 0 {
		t.Fatalf("rotation should demote stale ranges: %s", st2)
	}
	for _, h := range gen.HotUserTables() {
		if s.FMResidentBytes(h) == 0 {
			t.Fatalf("post-rotation spotlight table %d has no FM-resident ranges: %s", h, st2)
		}
	}
}

func TestRangeAdapterParallelismInvariant(t *testing.T) {
	run := func(par int) (Stats, core.Stats, []core.RangeStat) {
		s, gen, _ := rangeFixture(t, par)
		a := rangeAdapter(t, s, 4<<20)
		end := drive(t, s, a, gen, s.LoadDone(), 800)
		gen.ForceRotation()
		drive(t, s, a, gen, end, 800)
		return a.Stats(), s.Stats(), s.RangeStats(nil)
	}
	s1, c1, r1 := run(1)
	s4, c4, r4 := run(4)
	if s1 != s4 {
		t.Fatalf("adapter stats diverged across parallelism:\n%+v\n%+v", s1, s4)
	}
	if c1 != c4 {
		t.Fatalf("store stats diverged across parallelism:\n%+v\n%+v", c1, c4)
	}
	if len(r1) != len(r4) {
		t.Fatalf("range stats length diverged: %d vs %d", len(r1), len(r4))
	}
	for i := range r1 {
		if r1[i] != r4[i] {
			t.Fatalf("range stat %d diverged:\n%+v\n%+v", i, r1[i], r4[i])
		}
	}
}

// fakeMig drives the advance-loop regression tests: it can stall (issue
// zero bytes forever) or fail at a given step, and records Abort/Commit.
type fakeMig struct {
	stall     bool
	failAt    int
	finishAt  int
	steps     int
	aborted   bool
	committed bool
}

func (f *fakeMig) Step(now simclock.Time) (int, simclock.Time, error) {
	if f.aborted {
		return 0, now, errors.New("stepped after abort")
	}
	f.steps++
	if f.failAt > 0 && f.steps >= f.failAt {
		return 0, now, errors.New("injected device error")
	}
	if f.stall {
		return 0, now, nil
	}
	return 1 << 10, now, nil
}

func (f *fakeMig) Finished() bool      { return !f.stall && f.finishAt > 0 && f.steps >= f.finishAt }
func (f *fakeMig) Done() simclock.Time { return 0 }
func (f *fakeMig) Commit() error       { f.committed = true; return nil }
func (f *fakeMig) Abort()              { f.aborted = true }
func (f *fakeMig) BytesMoved() int64   { return int64(f.steps) << 10 }

// fakeMigRecorder issues 1 KiB chunks and records every Step's issue
// time — the seam the window-gating tests observe.
type fakeMigRecorder struct {
	finishAt  int
	steps     int
	committed bool
	aborted   bool
	issues    *[]simclock.Time
}

func (f *fakeMigRecorder) Step(now simclock.Time) (int, simclock.Time, error) {
	f.steps++
	*f.issues = append(*f.issues, now)
	return 1 << 10, now, nil
}

func (f *fakeMigRecorder) Finished() bool      { return f.steps >= f.finishAt }
func (f *fakeMigRecorder) Done() simclock.Time { return 0 }
func (f *fakeMigRecorder) Commit() error       { f.committed = true; return nil }
func (f *fakeMigRecorder) Abort()              { f.aborted = true }
func (f *fakeMigRecorder) BytesMoved() int64   { return int64(f.steps) << 10 }

func TestAdvanceGuardsZeroByteStall(t *testing.T) {
	// Regression: a migration issuing 0 bytes without finishing used to
	// spin the unpaced pacing loop forever (nextIssue never advances,
	// Finished never true). It must now be aborted and dropped.
	x := NewActuator(nil, 0, 0, nil) // unpaced
	f := &fakeMig{stall: true}
	x.active = &activeMig{job: Move{Table: 1, Promote: true}, m: f}
	done := make(chan struct{})
	go func() { x.Advance(100); close(done) }()
	select {
	case <-done:
	case <-time.After(10 * time.Second): //sdm:allow wallclock test watchdog against a regressed spin, not simulated time
		t.Fatal("advance spun on a zero-byte stall")
	}
	if !f.aborted || f.committed {
		t.Fatalf("stalled migration not rolled back: aborted=%t committed=%t", f.aborted, f.committed)
	}
	if x.active != nil || x.stats.Aborts != 1 {
		t.Fatalf("stall not accounted: active=%v aborts=%d", x.active, x.stats.Aborts)
	}
}

func TestAdvanceAbortsOnStepError(t *testing.T) {
	// Regression: a mid-flight Step error used to just drop the active
	// migration, leaving the half-issued migration committable; it must
	// be aborted.
	x := NewActuator(nil, 0, 0, nil)
	f := &fakeMig{failAt: 3, finishAt: 10}
	x.active = &activeMig{job: Move{Table: 2, Promote: false}, m: f}
	x.Advance(100)
	if !f.aborted || f.committed {
		t.Fatalf("failed migration not rolled back: aborted=%t committed=%t", f.aborted, f.committed)
	}
	if x.stats.Aborts != 1 || x.stats.Demotions != 0 {
		t.Fatalf("error not accounted: %s", x.stats)
	}
	if err := f.Commit(); err != nil {
		// fakeMig allows it, but the real Migration must not: covered by
		// core's TestMigrationAbort. Here we only assert the actuator path.
		t.Fatal(err)
	}

	// A healthy migration still commits.
	x2 := NewActuator(nil, 0, 0, nil)
	ok := &fakeMig{finishAt: 2}
	x2.active = &activeMig{job: Move{Table: 3, Promote: true, Ranged: true, Lo: 0, Hi: 8}, m: ok}
	x2.Advance(100)
	if !ok.committed || x2.stats.Promotions != 1 || x2.stats.RangeMoves != 1 {
		t.Fatalf("healthy migration not committed: %s", x2.stats)
	}
}

func TestActuatorWindowsGateIssue(t *testing.T) {
	// With a window schedule installed, chunks issue only inside granted
	// windows: a migration begun between windows waits for the next
	// grant, and chunks never issue past a window's close.
	const slot = simclock.Time(100)
	var issues []simclock.Time
	x := NewActuator(nil, 0, 0, nil)
	// This replica owns [200, 300) and every 300 thereafter (cycle 300).
	x.SetWindows(func(t simclock.Time) Window {
		cycle := 3 * slot
		k := (t - 2*slot) / cycle
		if t < 2*slot {
			k = 0
		} else if (t-2*slot)%cycle >= slot {
			k++
		}
		open := 2*slot + k*cycle
		return Window{Open: open, Close: open + slot, BandwidthBytesPerSec: 1 << 30}
	})
	f := &fakeMigRecorder{finishAt: 4, issues: &issues}
	x.active = &activeMig{job: Move{Table: 1, Promote: true}, m: f, nextIssue: 0}

	x.Advance(100) // before the first window: nothing may issue
	if len(issues) != 0 {
		t.Fatalf("chunks issued outside any window: %v", issues)
	}
	x.Advance(250) // inside [200, 300)
	for _, at := range issues {
		if at < 200 || at >= 300 {
			t.Fatalf("chunk issued at %d outside window [200, 300): %v", at, issues)
		}
	}
	x.Advance(10_000) // enough windows to finish and commit
	if !f.committed {
		t.Fatalf("windowed migration never committed (issues=%v)", issues)
	}
	for _, at := range issues {
		rel := (at - 2*slot) % (3 * slot)
		if at < 2*slot || rel < 0 || rel >= slot {
			t.Fatalf("chunk issued at %d outside the replica's windows", at)
		}
	}
}

func TestActuatorWindowDemoteBudget(t *testing.T) {
	// A window's SM write budget caps demote chunks (promotes are reads
	// and stay exempt): once the budget is spent, the next demote chunk
	// waits for the following window.
	const slot = simclock.Time(1000)
	window := func(t simclock.Time) Window {
		open := t / slot * slot
		return Window{Open: open, Close: open + slot, DemoteBudgetBytes: 2 << 10}
	}
	var issues []simclock.Time
	x := NewActuator(nil, 0, 0, nil)
	x.SetWindows(window)
	f := &fakeMigRecorder{finishAt: 6, issues: &issues} // 6 KiB in 1 KiB chunks
	x.active = &activeMig{job: Move{Table: 1, Promote: false}, m: f}
	x.Advance(5 * slot)
	if !f.committed {
		t.Fatalf("budgeted demotion never committed (issues=%v)", issues)
	}
	// 2 KiB per 1000-tick window: chunks 1-2 in window 0, 3-4 in window
	// 1, 5-6 in window 2.
	perWindow := map[simclock.Time]int{}
	for _, at := range issues {
		perWindow[at/slot]++
	}
	for w, n := range perWindow {
		if n > 2 {
			t.Fatalf("window %d issued %d demote chunks over its 2-chunk budget: %v", w, n, issues)
		}
	}
	if len(perWindow) < 3 {
		t.Fatalf("demotion did not spread across windows: %v", issues)
	}

	// The same migration promoted ignores the demote budget entirely.
	var pIssues []simclock.Time
	x2 := NewActuator(nil, 0, 0, nil)
	x2.SetWindows(window)
	p := &fakeMigRecorder{finishAt: 6, issues: &pIssues}
	x2.active = &activeMig{job: Move{Table: 1, Promote: true}, m: p}
	x2.Advance(10)
	if !p.committed || len(pIssues) != 6 {
		t.Fatalf("promotion throttled by the demote budget: committed=%t issues=%v", p.committed, pIssues)
	}
}

func TestConfigValidate(t *testing.T) {
	bad := []Config{
		{Hysteresis: 0.5},
		{Hysteresis: -1},
		{Smoothing: 1.5},
		{Smoothing: -0.1},
		{Interval: -time.Second},
		{BandwidthBytesPerSec: -1},
		{ChunkBytes: -1},
		{MaxMigrationsPerEval: -1},
		{DRAMBudget: -1},
		{Granularity: Granularity(7)},
		{PaybackSeconds: -1},
	}
	for _, cfg := range bad {
		if err := cfg.Validate(); err == nil {
			t.Fatalf("config %+v should be rejected", cfg)
		}
	}
	good := []Config{
		{},
		{Hysteresis: 1, Smoothing: 1, Granularity: Ranges, PaybackSeconds: 3},
		{Hysteresis: 2.5, Interval: time.Second},
	}
	for _, cfg := range good {
		if err := cfg.Validate(); err != nil {
			t.Fatalf("config %+v wrongly rejected: %v", cfg, err)
		}
	}

	// New surfaces validation errors instead of silently coercing (the
	// old defaulted() rewrote Hysteresis 0.5 to 1.3).
	s, _, _ := rangeFixture(t, 1)
	if _, err := New(s, Config{Hysteresis: 0.5, DRAMBudget: 1 << 20}); err == nil {
		t.Fatal("New should reject Hysteresis in (0, 1)")
	}
	if _, err := New(s, Config{Smoothing: 2, DRAMBudget: 1 << 20}); err == nil {
		t.Fatal("New should reject Smoothing > 1")
	}
}

func TestReconcileQueueDropsStaleJobs(t *testing.T) {
	// A promotion queued under an older desired set must not survive an
	// evaluation that no longer wants it — stale jobs used to begin (and
	// commit) anyway, stacking FM placement past the budget.
	x := NewActuator(nil, 0, 0, nil)
	x.Enqueue([]Move{
		{Table: 1, Promote: true},
		{Table: 2, Promote: false},
		{Table: 3, Promote: true},
		{Table: 4, Promote: true, Ranged: true, Lo: 0, Hi: 8},
	})
	desired := map[int]bool{1: true, 2: true, 3: false, 4: false}
	x.Reconcile(func(j Move) bool { return desired[j.Table] == j.Promote })
	if x.Pending() != 1 || x.queue[0].Table != 1 {
		t.Fatalf("stale jobs not dropped: %+v", x.queue)
	}
}

func TestTelemetrySurvivesCounterReset(t *testing.T) {
	// Store.ResetRuntimeStats between samples regresses the cumulative
	// counters; the uint64 deltas used to underflow to ~1.8e19 and poison
	// every decayed rate. Sample must re-baseline instead.
	s, gen, _ := rangeFixture(t, 1)
	tl := NewTelemetry(0)
	now := s.LoadDone()
	step := func(n int) {
		for i := 0; i < n; i++ {
			q := gen.Next()
			if _, err := s.PoolQuery(now, q, s.AllocOutputs(q)); err != nil {
				t.Fatal(err)
			}
			now += simclock.Time(time.Millisecond)
		}
	}
	tl.Sample(now, s) // prime
	step(50)
	tl.Sample(now, s)
	sane := tl.Table(0).LookupRate
	if sane <= 0 {
		t.Fatal("fixture produced no lookups")
	}
	s.ResetRuntimeStats()
	step(10)
	tl.Sample(now, s) // regressed counters: must re-baseline, not fold
	step(50)
	tl.Sample(now, s)
	for _, tt := range tl.Tables() {
		if tt.LookupRate > 1e12 || tt.LookupRate < 0 {
			t.Fatalf("table %d rate poisoned after counter reset: %g", tt.Table, tt.LookupRate)
		}
	}
	for _, rt := range tl.Ranges() {
		if rt.LookupRate > 1e12 || rt.LookupRate < 0 {
			t.Fatalf("range %d/%d rate poisoned after counter reset: %g", rt.Table, rt.Range, rt.LookupRate)
		}
	}
}
