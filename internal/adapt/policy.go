// The policy half of the policy/actuator split: a Policy is a pure
// planner — it turns the decayed telemetry view plus the store's current
// placement into a ranked move plan by re-running the Table-5 greedy
// (placement.PackRangesWear) against live demand densities, with an
// endurance-aware cost term: each candidate's score is discounted by the
// demote-write cost its selection implies, measured against the window's
// SM write budget, so hot-but-churny ranges stop burning endurance. The
// Policy never touches the store's state; executing the plan is the
// Actuator's job.

package adapt

import (
	"sdm/internal/core"
	"sdm/internal/obs"
	"sdm/internal/placement"
)

// Plan is one evaluation's output: the moves to enqueue plus the desired
// placement they derive from, so the caller can reconcile previously
// queued moves against the freshest intent.
type Plan struct {
	// Moves is the placement diff (demotions first, so the DRAM budget
	// holds throughout), truncated to Config.MaxMigrationsPerEval.
	Moves []Move
	// DesiredWhole records the planned whole-table FM membership. At
	// table granularity only selected tables appear (true); at range
	// granularity every whole-table incumbent candidate appears with its
	// verdict.
	DesiredWhole map[int]bool
	// DesiredRange records, at range granularity, each scored
	// (table, range) candidate's verdict, keyed by RangeKey.
	DesiredRange map[int64]bool
	// Decisions explains each candidate whose desired placement differs
	// from its current one — promote/demote when a final move covers it,
	// defer (busy or cap) when not. Populated only under SetExplain; the
	// default path does no extra work.
	Decisions []obs.PlanDecision
}

// RangeKey packs a (table, range) pair into the DesiredRange map key.
func RangeKey(table int, r int64) int64 { return int64(table)<<32 | r }

// Policy is the pure planning layer of the adaptation stack. It holds
// only configuration and scratch buffers; every Plan call derives the
// desired placement from its inputs alone.
type Policy struct {
	cfg    Config
	budget int64

	// explain populates Plan.Decisions (the decision tracer's view);
	// off by default.
	explain bool

	// scratch buffers reused across evaluations.
	cands []rangeCand
	items []placement.RangeItem
}

// NewPolicy builds a planner. cfg must already be validated; budget is
// the FM byte budget the knapsack packs against.
func NewPolicy(cfg Config, budget int64) *Policy {
	return &Policy{cfg: cfg.defaulted(), budget: budget}
}

// SetExplain toggles Plan.Decisions population (decision tracing).
func (p *Policy) SetExplain(on bool) { p.explain = on }

// explainCand renders one changed candidate's verdict: a final move
// covering it in the wanted direction makes it a promote/demote, a
// pending move makes it a busy defer, and everything else was truncated
// by the per-eval cap.
func explainCand(moves []Move, d obs.PlanDecision, busy, wantPromote, whole bool, lo, hi int64, wear placement.WearBudget) obs.PlanDecision {
	d.WearWindowBytes = wear.WindowBytes
	d.WearSpentBytes = wear.SpentBytes
	if busy {
		d.Action, d.Reason = "defer", "busy"
		return d
	}
	covered := false
	for _, m := range moves {
		if m.Table != d.Table || m.Promote != wantPromote {
			continue
		}
		if !m.Ranged {
			covered = true
			break
		}
		if !whole && lo >= m.Lo && hi <= m.Hi {
			covered = true
			break
		}
	}
	switch {
	case !covered:
		d.Action, d.Reason = "defer", "cap"
	case wantPromote:
		d.Action = "promote"
	default:
		d.Action = "demote"
	}
	return d
}

// Plan derives the next move plan from the telemetry view, the store's
// current placement, the moves already pending in the actuator (planned
// around, not re-planned), and the window's wear budget (zero value
// disables the endurance term).
func (p *Policy) Plan(telem *Telemetry, store *core.Store, pending []Move, wear placement.WearBudget) Plan {
	if p.cfg.Granularity == Ranges {
		return p.planRanges(telem, store, pending, wear)
	}
	return p.planTables(telem, store, pending, wear)
}

// planTables re-runs the Table-5 greedy FM promotion against live demand
// densities and returns the placement diff as whole-table moves
// (demotions first, so the DRAM budget is respected throughout).
func (p *Policy) planTables(telem *Telemetry, store *core.Store, pending []Move, wear placement.WearBudget) Plan {
	busy := make(map[int]bool, len(pending))
	for _, j := range pending {
		busy[j.Table] = true
	}

	type cand struct {
		table int
		inFM  bool
	}
	var cands []cand
	p.items = p.items[:0]
	for _, t := range telem.Tables() {
		if !t.Swappable || t.Windows == 0 {
			continue
		}
		c := cand{table: t.Table, inFM: store.TargetOf(t.Table) == placement.FM}
		density := t.Density()
		var demote int64
		if c.inFM {
			// Stickiness: an incumbent defends its slot unless a
			// challenger beats it by the hysteresis factor.
			density *= p.cfg.Hysteresis
		} else {
			// A challenger's promotion implies a later demote write of
			// its full footprint — the endurance cost the wear term
			// scores against.
			demote = t.StoredBytes
		}
		cands = append(cands, c)
		p.items = append(p.items, placement.RangeItem{
			Table:       t.Table,
			Range:       placement.WholeTable,
			Bytes:       t.StoredBytes,
			Density:     density,
			DemoteBytes: demote,
		})
	}
	// The desired FM set under the budget: the shared Table-5 greedy,
	// here over whole-table items only.
	desired := make(map[int]bool, len(cands))
	for _, i := range placement.PackRangesWear(p.items, p.budget, wear) {
		desired[p.items[i].Table] = true
	}

	// Diff against current placement; demotions first.
	var moves []Move
	for _, c := range cands {
		if c.inFM && !desired[c.table] && !busy[c.table] {
			moves = append(moves, Move{Table: c.table, Promote: false})
		}
	}
	for _, c := range cands {
		if !c.inFM && desired[c.table] && !busy[c.table] {
			moves = append(moves, Move{Table: c.table, Promote: true})
		}
	}
	if len(moves) > p.cfg.MaxMigrationsPerEval {
		moves = moves[:p.cfg.MaxMigrationsPerEval]
	}
	plan := Plan{Moves: moves, DesiredWhole: desired}
	if p.explain {
		for i, c := range cands {
			if desired[c.table] == c.inFM {
				continue
			}
			it := p.items[i]
			d := obs.PlanDecision{Table: c.table, Range: -1, Density: it.Density, Bytes: it.Bytes, DemoteBytes: it.DemoteBytes}
			if c.inFM {
				d.Hysteresis = p.cfg.Hysteresis
			}
			plan.Decisions = append(plan.Decisions, explainCand(moves, d, busy[c.table], !c.inFM, true, 0, 0, wear))
		}
	}
	return plan
}

// rangeCand carries one knapsack item plus the move metadata PackRanges
// does not need.
type rangeCand struct {
	item     placement.RangeItem
	lo, hi   int64 // row window (range items)
	resident bool  // currently FM-resident (range) or FM-target (whole)
	whole    bool  // whole-table item (an FM incumbent, demotable only wholesale)
	busy     bool  // a pending move already covers it
}

// planRanges runs the Table-5 greedy at row-range granularity: SM tables
// contribute one candidate per row range, while a whole-table FM
// incumbent (a static FixedFM placement the controller inherited)
// participates as a single indivisible item — if it loses the knapsack it
// is demoted wholesale, after which its ranges compete individually.
// Selected-but-absent ranges are promoted, resident-but-unselected ones
// demoted (first, so the budget holds throughout), with adjacent ranges of
// one table coalesced into a single [Lo, Hi) move.
func (p *Policy) planRanges(telem *Telemetry, store *core.Store, pending []Move, wear placement.WearBudget) Plan {
	busyTable := make(map[int]bool)   // whole-table move pending
	busyRange := make(map[int64]bool) // (table, range) moves pending
	for _, j := range pending {
		if !j.Ranged {
			busyTable[j.Table] = true
			continue
		}
		rr := store.RangeRowsOf(j.Table)
		if rr <= 0 {
			continue
		}
		for r := j.Lo / rr; r*rr < j.Hi; r++ {
			busyRange[RangeKey(j.Table, r)] = true
		}
	}

	p.cands = p.cands[:0]
	for _, t := range telem.Tables() {
		if !t.Swappable {
			continue
		}
		if store.TargetOf(t.Table) == placement.FM {
			if t.Windows == 0 {
				continue
			}
			p.cands = append(p.cands, rangeCand{
				item: placement.RangeItem{
					Table:   t.Table,
					Range:   placement.WholeTable,
					Bytes:   t.StoredBytes,
					Density: t.Density() * p.cfg.Hysteresis,
				},
				lo: 0, hi: -1,
				resident: true,
				whole:    true,
				busy:     busyTable[t.Table],
			})
		}
	}
	// The payback filter: a range must re-serve its own bytes from FM
	// within the horizon to justify migrating it (and, with hysteresis, to
	// keep its slot). Zeroing the density keeps the candidate in the move
	// diff — sub-floor residents are demoted — while the knapsack never
	// selects it.
	floor := 1 / p.cfg.PaybackSeconds
	rr := int64(0)
	lastTable := -1
	for _, rt := range telem.Ranges() {
		if store.TargetOf(rt.Table) == placement.FM {
			continue // covered by the whole-table incumbent item
		}
		if rt.Windows == 0 && !rt.FMResident {
			continue
		}
		if rt.Table != lastTable {
			rr = store.RangeRowsOf(rt.Table)
			lastTable = rt.Table
		}
		if rr <= 0 {
			continue
		}
		density := rt.Density()
		var demote int64
		if rt.FMResident {
			density *= p.cfg.Hysteresis
		} else {
			demote = rt.Bytes
		}
		if density < floor {
			density = 0
		}
		lo := int64(rt.Range) * rr
		p.cands = append(p.cands, rangeCand{
			item: placement.RangeItem{
				Table:       rt.Table,
				Range:       rt.Range,
				Bytes:       rt.Bytes,
				Density:     density,
				DemoteBytes: demote,
			},
			lo: lo, hi: lo + rt.Rows,
			resident: rt.FMResident,
			busy:     busyTable[rt.Table] || busyRange[RangeKey(rt.Table, int64(rt.Range))],
		})
	}

	p.items = p.items[:0]
	for _, c := range p.cands {
		p.items = append(p.items, c.item)
	}
	desired := make([]bool, len(p.cands))
	for _, i := range placement.PackRangesWear(p.items, p.budget, wear) {
		desired[i] = true
	}

	desiredWhole := make(map[int]bool)
	desiredRange := make(map[int64]bool)
	for i, c := range p.cands {
		if c.whole {
			desiredWhole[c.item.Table] = desired[i]
		} else {
			desiredRange[RangeKey(c.item.Table, int64(c.item.Range))] = desired[i]
		}
	}

	var demote, promote []Move
	for i, c := range p.cands {
		if c.busy || desired[i] == c.resident {
			continue
		}
		if c.resident {
			if c.whole {
				demote = append(demote, Move{Table: c.item.Table, Promote: false})
			} else {
				demote = append(demote, Move{Table: c.item.Table, Promote: false, Ranged: true, Lo: c.lo, Hi: c.hi})
			}
		} else {
			promote = append(promote, Move{Table: c.item.Table, Promote: true, Ranged: true, Lo: c.lo, Hi: c.hi})
		}
	}
	moves := append(coalesce(demote), coalesce(promote)...)
	if len(moves) > p.cfg.MaxMigrationsPerEval {
		moves = moves[:p.cfg.MaxMigrationsPerEval]
	}
	plan := Plan{Moves: moves, DesiredWhole: desiredWhole, DesiredRange: desiredRange}
	if p.explain {
		for i, c := range p.cands {
			if desired[i] == c.resident {
				continue
			}
			d := obs.PlanDecision{Table: c.item.Table, Range: int64(c.item.Range), Density: c.item.Density, Bytes: c.item.Bytes, DemoteBytes: c.item.DemoteBytes}
			if c.whole {
				d.Range = -1
			}
			if c.resident {
				d.Hysteresis = p.cfg.Hysteresis
			}
			plan.Decisions = append(plan.Decisions, explainCand(moves, d, c.busy, !c.resident, c.whole, c.lo, c.hi, wear))
		}
	}
	return plan
}
