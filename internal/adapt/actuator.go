// The actuator half of the policy/actuator split: the Actuator owns the
// Begin/Step/Commit/Abort migration machinery — a FIFO of planned moves,
// one in-flight migration paced on the virtual timeline under a bandwidth
// cap, and (when a window schedule is installed) coordinator-granted
// migration windows with a per-window SM demote-write budget. It executes
// whatever plan the policy layer hands it and knows nothing about
// telemetry or placement scoring.

package adapt

import (
	"time"

	"sdm/internal/core"
	"sdm/internal/simclock"
)

// Move is one planned placement move: a whole table, or the row window
// [Lo, Hi) of one. The policy layer emits Moves; the Actuator executes
// them.
type Move struct {
	Table   int
	Promote bool
	Ranged  bool
	Lo, Hi  int64
}

// Window is one granted migration window [Open, Close): migration chunks
// may issue only inside it, at the window's bandwidth, and demote chunks
// stop once the window's SM write budget is spent. A fleet coordinator
// staggers windows across replicas; an ungoverned wear-aware Adapter
// slices its own timeline into contiguous windows so the demote budget
// still applies per evaluation interval.
type Window struct {
	Open, Close simclock.Time
	// BandwidthBytesPerSec caps migration issue rate inside the window;
	// <= 0 falls back to the actuator's own cap.
	BandwidthBytesPerSec float64
	// DemoteBudgetBytes is the SM demote-write allowance of this window;
	// <= 0 means unbudgeted. Enforcement is chunk-granular: the window
	// can overshoot by at most one chunk.
	DemoteBudgetBytes int64
}

// WindowFn returns, for a virtual time t, the migration window containing
// t (Open <= t < Close) or, when t falls between windows, the next one
// (Open > t). Implementations must be pure functions of t — the fleet
// determinism contract depends on it — and must return Close > Open.
type WindowFn func(t simclock.Time) Window

// migration is the slice of core.Migration the pacing loop drives,
// narrowed to an interface so regression tests can substitute
// failure-injecting fakes.
type migration interface {
	Step(now simclock.Time) (int, simclock.Time, error)
	Finished() bool
	Done() simclock.Time
	Commit() error
	Abort()
	BytesMoved() int64
}

// activeMig paces one in-flight migration.
type activeMig struct {
	job       Move
	m         migration
	nextIssue simclock.Time
}

// Actuator drives planned moves through the store's migration engine. It
// is the execution half of an Adapter, but can be driven standalone (the
// fleet coordinator grants it windows through SetWindows).
type Actuator struct {
	store      *core.Store
	chunkBytes int
	// bandwidth is the default pacing cap (bytes/s; 0 = unpaced), used
	// when no window schedule is installed or a window carries none.
	bandwidth float64
	stats     *Stats

	windows WindowFn
	// winOpen/winDemoted track the demote bytes issued in the window
	// currently being filled.
	winOpen    simclock.Time
	winDemoted int64

	queue  []Move
	active *activeMig
}

// NewActuator builds an actuator over a store opened with
// core.Config.ReserveSM. stats may be nil, in which case the actuator
// keeps its own counters; an Adapter shares its Stats instead.
func NewActuator(store *core.Store, chunkBytes int, bandwidthBytesPerSec float64, stats *Stats) *Actuator {
	if stats == nil {
		stats = &Stats{}
	}
	return &Actuator{
		store:      store,
		chunkBytes: chunkBytes,
		bandwidth:  bandwidthBytesPerSec,
		stats:      stats,
	}
}

// SetWindows installs (or, with nil, removes) a migration window
// schedule. With a schedule installed, chunks issue only inside granted
// windows and each window's demote budget is enforced.
func (x *Actuator) SetWindows(fn WindowFn) { x.windows = fn }

// Pending returns queued plus in-flight move count.
func (x *Actuator) Pending() int {
	n := len(x.queue)
	if x.active != nil {
		n++
	}
	return n
}

// AppendPending appends the queued and in-flight moves to dst and returns
// it — the busy set the policy layer plans around.
func (x *Actuator) AppendPending(dst []Move) []Move {
	if x.active != nil {
		dst = append(dst, x.active.job)
	}
	return append(dst, x.queue...)
}

// Enqueue appends planned moves to the FIFO.
func (x *Actuator) Enqueue(moves []Move) {
	x.queue = append(x.queue, moves...)
}

// Reconcile keeps only the queued moves the freshest plan still agrees
// with. Without it a promotion queued under an older desired set could
// begin (and commit) after drift moved the spotlight, stacking the
// committed FM placement past the budget until a later eval demoted the
// excess; the in-flight migration is left to finish — aborting it would
// waste its issued IO — so any overshoot is bounded by one move.
func (x *Actuator) Reconcile(keep func(Move) bool) {
	kept := x.queue[:0]
	for _, j := range x.queue {
		if keep(j) {
			kept = append(kept, j)
		}
	}
	x.queue = kept
}

// WindowAt returns the window covering (or next following) t, and whether
// a schedule is installed.
func (x *Actuator) WindowAt(t simclock.Time) (Window, bool) {
	if x.windows == nil {
		return Window{}, false
	}
	return x.windows(t), true
}

// SpentInWindow returns the demote bytes already issued in w (0 when the
// actuator last filled a different window).
func (x *Actuator) SpentInWindow(w Window) int64 {
	if x.winOpen == w.Open {
		return x.winDemoted
	}
	return 0
}

// Advance issues paced migration chunks up to virtual time now and
// commits finished migrations whose IO has completed. A migration whose
// Step fails — or stalls issuing zero bytes without finishing, which would
// otherwise spin the unpaced loop forever — is aborted and rolled back,
// so a half-moved window can never be committed by a later pass. With a
// window schedule installed, chunks additionally wait for the replica's
// granted windows and demote chunks stop when a window's SM write budget
// is spent.
func (x *Actuator) Advance(now simclock.Time) {
	for {
		if x.active == nil {
			if len(x.queue) == 0 {
				return
			}
			job := x.queue[0]
			x.queue = x.queue[1:]
			m, err := x.begin(job)
			if err != nil {
				// The table or range moved (or was never swappable) since
				// the evaluation that planned the move: drop it.
				continue
			}
			x.active = &activeMig{job: job, m: m, nextIssue: now}
		}
		act := x.active
		for !act.m.Finished() && act.nextIssue <= now {
			issue := act.nextIssue
			var win Window
			gated := x.windows != nil
			if gated {
				win = x.windows(issue)
				if issue < win.Open {
					// Between windows: the next chunk waits for the
					// replica's next grant.
					act.nextIssue = win.Open
					continue
				}
				if x.winOpen != win.Open {
					x.winOpen, x.winDemoted = win.Open, 0
				}
				if !act.job.Promote && win.DemoteBudgetBytes > 0 && x.winDemoted >= win.DemoteBudgetBytes {
					// This window's SM write budget is spent: demote
					// chunks resume in the next window.
					act.nextIssue = win.Close
					continue
				}
			}
			n, _, err := act.m.Step(issue)
			if err != nil || (n == 0 && !act.m.Finished()) {
				act.m.Abort()
				x.stats.Aborts++
				x.active = nil
				break
			}
			if gated && !act.job.Promote {
				x.winDemoted += int64(n)
			}
			bw := x.bandwidth
			if gated && win.BandwidthBytesPerSec > 0 {
				bw = win.BandwidthBytesPerSec
			}
			if bw > 0 {
				act.nextIssue = issue + simclock.Time(float64(n)/bw*float64(time.Second))
			}
		}
		if x.active == nil {
			continue
		}
		if !act.m.Finished() || act.m.Done() > now {
			return // needs a later now to issue or settle
		}
		if err := act.m.Commit(); err == nil {
			if act.job.Promote {
				x.stats.Promotions++
			} else {
				x.stats.Demotions++
			}
			if act.job.Ranged {
				x.stats.RangeMoves++
			}
			x.stats.MigratedBytes += act.m.BytesMoved()
		} else {
			// A failed commit must release the table's in-flight slot, or
			// the table is wedged out of adaptation forever.
			act.m.Abort()
			x.stats.Aborts++
		}
		x.active = nil
	}
}

// begin validates a planned move against the store's current state.
func (x *Actuator) begin(job Move) (migration, error) {
	var (
		m   *core.Migration
		err error
	)
	switch {
	case job.Ranged && job.Promote:
		m, err = x.store.BeginPromoteRange(job.Table, job.Lo, job.Hi, x.chunkBytes)
	case job.Ranged:
		m, err = x.store.BeginDemoteRange(job.Table, job.Lo, job.Hi, x.chunkBytes)
	case job.Promote:
		m, err = x.store.BeginPromote(job.Table, x.chunkBytes)
	default:
		m, err = x.store.BeginDemote(job.Table, x.chunkBytes)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}
