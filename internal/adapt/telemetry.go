// Package adapt closes the loop the paper's §4.6 Tuning API leaves open:
// placement there is chosen once, offline, from a static locality profile,
// but production traffic drifts — hot sets rotate, the user mix shifts,
// flash crowds appear. The subsystem has three parts: per-table windowed
// telemetry with exponential decay (this file), a controller that
// periodically re-evaluates the Table-5 placement against live stats, and
// a migration engine that moves table rows FM↔SM through the store's
// rings under a configurable bandwidth cap, so migration IO is accounted
// in virtual time and visibly competes with foreground queries.
//
// Everything runs on the host's discrete-event timeline, driven from the
// serving.Tuner hooks in admission order; results are therefore
// bit-identical for a fixed seed at any worker count.
package adapt

import (
	"sdm/internal/core"
	"sdm/internal/placement"
	"sdm/internal/simclock"
)

// TableTelemetry is one table's decayed view of live traffic.
type TableTelemetry struct {
	Table     int
	Swappable bool
	// StoredBytes is the table's migratable footprint.
	StoredBytes int64
	// LookupRate is the decayed row-lookup rate (lookups/s of virtual time).
	LookupRate float64
	// DemandBytes is the decayed bandwidth demand (bytes/s the table's
	// lookups would pull if every row came from its backing store).
	DemandBytes float64
	// FMServed is the decayed fraction of lookups served from fast memory
	// (cache hits + direct FM reads).
	FMServed float64
	// Reuse is the decayed row-cache hit rate — the reuse signal behind
	// the paper's per-table cache enablement.
	Reuse float64
	// DemoteRate is the decayed SM demote-write rate (bytes/s of virtual
	// time) this table's migrations have cost, fed by the per-table
	// core.TableStat.DemoteWriteBytes endurance counter. It is an
	// observability field (which tables churn the write budget) — the
	// packing greedy's wear term itself scores candidates by footprint
	// (placement.RangeItem.DemoteBytes), not by this rate.
	DemoteRate float64
	// Windows counts samples folded into the decayed values.
	Windows int
}

// Density returns the bandwidth demand per byte of capacity — the greedy
// ranking key of the Table-5 FM promotion, computed from live stats
// instead of the static profile.
func (t TableTelemetry) Density() float64 {
	if t.StoredBytes <= 0 {
		return 0
	}
	return t.DemandBytes / float64(t.StoredBytes)
}

// RangeTelemetry is one row range's decayed view of live traffic — the
// demand signal behind range-granular re-placement.
type RangeTelemetry struct {
	Table int
	Range int
	// Rows and Bytes are the range's geometry (Bytes is what migrating it
	// costs against the budget and the bandwidth cap).
	Rows  int64
	Bytes int64
	// FMResident mirrors the store's residency at the last sample.
	FMResident bool
	// LookupRate is the decayed row-lookup rate (lookups/s of virtual
	// time). While the whole table is FM-resident the store does not
	// attribute lookups to ranges, so the value freezes at its last
	// SM-phase estimate — the best available profile when the table is
	// later demoted.
	LookupRate float64
	// RowBytes is the table's stored row size.
	RowBytes int
	// Windows counts samples folded into the decayed values.
	Windows int
}

// Density returns the bandwidth demand per byte of capacity — the ranking
// key of the range-granular knapsack, comparable with TableTelemetry.Density.
func (r RangeTelemetry) Density() float64 {
	if r.Bytes <= 0 {
		return 0
	}
	return r.LookupRate * float64(r.RowBytes) / float64(r.Bytes)
}

// Telemetry accumulates per-table and per-range windowed counters from a
// store's cumulative TableStats/RangeStats, decaying older windows
// exponentially.
type Telemetry struct {
	// smoothing is the EWMA weight of the newest window.
	smoothing float64
	tables    []TableTelemetry
	prev      []core.TableStat
	cur       []core.TableStat // scratch
	ranges    []RangeTelemetry
	prevR     []core.RangeStat
	curR      []core.RangeStat // scratch
	lastAt    simclock.Time
	primed    bool
}

// NewTelemetry builds a telemetry accumulator. smoothing is the EWMA
// weight of the newest window in (0, 1]; 0 selects 0.5.
func NewTelemetry(smoothing float64) *Telemetry {
	if smoothing <= 0 || smoothing > 1 {
		smoothing = 0.5
	}
	return &Telemetry{smoothing: smoothing}
}

// Sample folds the counter deltas since the previous Sample into the
// decayed per-table telemetry. The first call only establishes the
// baseline.
func (tl *Telemetry) Sample(now simclock.Time, s *core.Store) {
	tl.cur = s.TableStats(tl.cur)
	tl.curR = s.RangeStats(tl.curR)
	if !tl.primed {
		tl.prev = append(tl.prev[:0], tl.cur...)
		tl.prevR = append(tl.prevR[:0], tl.curR...)
		tl.tables = make([]TableTelemetry, len(tl.cur))
		for i, ts := range tl.cur {
			tl.tables[i] = TableTelemetry{Table: ts.Table, Swappable: ts.Swappable, StoredBytes: ts.StoredBytes}
		}
		tl.ranges = make([]RangeTelemetry, len(tl.curR))
		for i, rs := range tl.curR {
			tl.ranges[i] = RangeTelemetry{
				Table: rs.Table, Range: rs.Range, Rows: rs.Rows, Bytes: rs.Bytes,
				FMResident: rs.FMResident, RowBytes: tl.cur[rs.Table].RowBytes,
			}
		}
		tl.lastAt = now
		tl.primed = true
		return
	}
	dt := (now - tl.lastAt).Seconds()
	if dt <= 0 {
		return
	}
	// Counter regression (Store.ResetRuntimeStats between samples): the
	// uint64 deltas would underflow to ~1.8e19 and poison every decayed
	// rate, so re-baseline and skip this window instead.
	for i, cur := range tl.cur {
		if cur.Lookups < tl.prev[i].Lookups {
			tl.prev = append(tl.prev[:0], tl.cur...)
			tl.prevR = append(tl.prevR[:0], tl.curR...)
			tl.lastAt = now
			return
		}
	}
	a := tl.smoothing
	for i, cur := range tl.cur {
		prev := tl.prev[i]
		t := &tl.tables[i]
		t.Swappable = cur.Swappable
		t.StoredBytes = cur.StoredBytes
		lookups := cur.Lookups - prev.Lookups
		smReads := cur.SMReads - prev.SMReads
		hits := cur.CacheHits - prev.CacheHits
		misses := cur.CacheMisses - prev.CacheMisses
		demoted := cur.DemoteWriteBytes - prev.DemoteWriteBytes

		rate := float64(lookups) / dt
		demand := rate * float64(cur.RowBytes)
		demoteRate := float64(demoted) / dt
		fmServed := 0.0
		if lookups > 0 {
			fmServed = 1 - float64(smReads)/float64(lookups)
		}
		reuse := 0.0
		if hits+misses > 0 {
			reuse = float64(hits) / float64(hits+misses)
		}
		if t.Windows == 0 {
			t.LookupRate, t.DemandBytes, t.FMServed, t.Reuse = rate, demand, fmServed, reuse
			t.DemoteRate = demoteRate
		} else {
			t.LookupRate += a * (rate - t.LookupRate)
			t.DemandBytes += a * (demand - t.DemandBytes)
			t.FMServed += a * (fmServed - t.FMServed)
			t.Reuse += a * (reuse - t.Reuse)
			t.DemoteRate += a * (demoteRate - t.DemoteRate)
		}
		t.Windows++
	}
	for i, cur := range tl.curR {
		prev := tl.prevR[i]
		r := &tl.ranges[i]
		r.FMResident = cur.FMResident
		if tl.cur[cur.Table].Target == placement.FM {
			// Whole-table FM serving bypasses range accounting: freeze the
			// last SM-phase estimate instead of decaying it with zeros.
			continue
		}
		rate := float64(cur.Lookups-prev.Lookups) / dt
		if r.Windows == 0 {
			r.LookupRate = rate
		} else {
			r.LookupRate += a * (rate - r.LookupRate)
		}
		r.Windows++
	}
	tl.prev = append(tl.prev[:0], tl.cur...)
	tl.prevR = append(tl.prevR[:0], tl.curR...)
	tl.lastAt = now
}

// Tables returns the decayed per-table telemetry (indexed by table).
func (tl *Telemetry) Tables() []TableTelemetry { return tl.tables }

// Ranges returns the decayed per-range telemetry in (table, range) order
// (empty before the first sample or for stores without range-provisioned
// tables).
func (tl *Telemetry) Ranges() []RangeTelemetry { return tl.ranges }

// Table returns table i's telemetry (zero value before the first sample).
func (tl *Telemetry) Table(i int) TableTelemetry {
	if i < 0 || i >= len(tl.tables) {
		return TableTelemetry{}
	}
	return tl.tables[i]
}
