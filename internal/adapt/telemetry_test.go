package adapt

import (
	"testing"
	"time"

	"sdm/internal/core"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// fmRangeFixture builds a ReserveSM, range-provisioned store whose
// placement starts every user table on SM, over a spatial stationary
// workload — the direct harness for the range-telemetry paths that were
// previously only exercised through the rowrange drill.
func fmRangeFixture(t *testing.T) (*core.Store, *workload.Generator) {
	t.Helper()
	mc := model.M1()
	mc.NumUserTables = 4
	mc.NumItemTables = 1
	mc.ItemBatch = 2
	mc.TotalBytes = 1 << 20
	inst, err := model.Build(mc, 1, 23)
	if err != nil {
		t.Fatal(err)
	}
	const perTable = 64 << 10
	for i := 0; i < mc.NumUserTables; i++ {
		inst.Tables[i].Rows = perTable / int64(inst.Tables[i].RowBytes())
	}
	tables, err := inst.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	var clk simclock.Clock
	s, err := core.Open(inst, tables, core.Config{
		Seed: 29, ReserveSM: true, Ring: uring.Config{SGL: true},
		CacheBytes: 1 << 15, MigrationRangeBytes: 16 << 10,
		Placement: placement.Config{
			Policy: placement.SMOnlyWithCache, UserTablesOnly: true,
		},
	}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(inst, workload.Config{
		Seed: 31, NumUsers: 300, UserAlpha: 0.9, Spatial: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, gen
}

// pump replays n queries 2 ms apart starting at start and returns the
// time after the last one.
func pump(t *testing.T, s *core.Store, gen *workload.Generator, start simclock.Time, n int) simclock.Time {
	t.Helper()
	now := start
	for i := 0; i < n; i++ {
		now = start + simclock.Time(i)*simclock.Time(2*time.Millisecond)
		q := gen.Next()
		if _, err := s.PoolQuery(now, q, s.AllocOutputs(q)); err != nil {
			t.Fatal(err)
		}
	}
	return now + simclock.Time(2*time.Millisecond)
}

// migrate drives a whole migration to completion on the virtual timeline
// and returns the time after its commit.
func migrate(t *testing.T, m *core.Migration, now simclock.Time) simclock.Time {
	t.Helper()
	for !m.Finished() {
		if _, _, err := m.Step(now); err != nil {
			t.Fatal(err)
		}
	}
	if m.Done() > now {
		now = m.Done()
	}
	if err := m.Commit(); err != nil {
		t.Fatal(err)
	}
	return now + 1
}

func TestRangeTelemetryFreezesWhileWholeFM(t *testing.T) {
	// While a table is whole-FM-resident the store does not attribute
	// lookups to its ranges, so Sample must freeze each range's last
	// SM-phase estimate instead of decaying it toward zero — that profile
	// is the best available ranking when the table is later demoted.
	s, gen := fmRangeFixture(t)
	tl := NewTelemetry(0.5)
	now := s.LoadDone()
	tl.Sample(now, s) // prime

	// SM phase: range counters accumulate real rates.
	now = pump(t, s, gen, now, 300)
	tl.Sample(now, s)
	var smRates []float64
	var smWindows []int
	for _, rt := range tl.Ranges() {
		if rt.Table == 0 {
			smRates = append(smRates, rt.LookupRate)
			smWindows = append(smWindows, rt.Windows)
		}
	}
	if len(smRates) == 0 || smRates[0] <= 0 {
		t.Fatalf("SM-phase range telemetry empty for table 0: %v", smRates)
	}
	smFMServed := tl.Table(0).FMServed

	// Promote table 0 whole (its ranges are all SM-resident, so the
	// whole-table path applies), then keep serving and sampling.
	m, err := s.BeginPromote(0, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	now = migrate(t, m, now)
	if s.TargetOf(0) != placement.FM {
		t.Fatal("promotion did not land")
	}
	for i := 0; i < 3; i++ {
		now = pump(t, s, gen, now, 200)
		tl.Sample(now, s)
	}
	for i, rt := range rangesOf(tl, 0) {
		if rt.LookupRate != smRates[i] {
			t.Fatalf("range %d rate moved while whole-FM: %g -> %g (must freeze)", i, smRates[i], rt.LookupRate)
		}
		if rt.Windows != smWindows[i] {
			t.Fatalf("range %d window count advanced while whole-FM: %d -> %d", i, smWindows[i], rt.Windows)
		}
	}
	// Table-level telemetry keeps flowing meanwhile (the freeze is
	// range-scoped), and the FM placement is visible in it.
	tt := tl.Table(0)
	if tt.Windows <= 1 || tt.LookupRate <= 0 {
		t.Fatalf("table telemetry stalled during FM phase: %+v", tt)
	}
	if tt.FMServed <= smFMServed {
		t.Fatalf("FM placement not visible in decayed FMServed: %.3f (SM phase %.3f)", tt.FMServed, smFMServed)
	}

	// Demote back to SM: range attribution resumes, the frozen profile
	// starts updating again, and the demote writes surface as a positive
	// decayed DemoteRate.
	dm, err := s.BeginDemote(0, 16<<10)
	if err != nil {
		t.Fatal(err)
	}
	now = migrate(t, dm, now)
	now = pump(t, s, gen, now, 300)
	tl.Sample(now, s)
	resumed := false
	for i, rt := range rangesOf(tl, 0) {
		if rt.Windows > smWindows[i] {
			resumed = true
		}
	}
	if !resumed {
		t.Fatal("range telemetry did not resume after demotion")
	}
	if tl.Table(0).DemoteRate <= 0 {
		t.Fatalf("demote writes not reflected in telemetry: %+v", tl.Table(0))
	}
	_ = now
}

// rangesOf collects table tab's range telemetry in range order.
func rangesOf(tl *Telemetry, tab int) []RangeTelemetry {
	var out []RangeTelemetry
	for _, rt := range tl.Ranges() {
		if rt.Table == tab {
			out = append(out, rt)
		}
	}
	return out
}

func TestTelemetryRebaselinesRangeAndDemoteCounters(t *testing.T) {
	// The re-baselining guard must cover the range counters and the
	// endurance counter too: after Store.ResetRuntimeStats the per-table
	// lookup counters regress (the demote counter deliberately survives),
	// and the skipped window must leave every decayed value finite and
	// the baselines coherent for the next fold.
	s, gen := fmRangeFixture(t)
	tl := NewTelemetry(0.5)
	now := s.LoadDone()
	tl.Sample(now, s)
	now = pump(t, s, gen, now, 300)
	tl.Sample(now, s)

	s.ResetRuntimeStats()
	now = pump(t, s, gen, now, 50)
	tl.Sample(now, s) // regressed: must re-baseline, not fold
	now = pump(t, s, gen, now, 300)
	tl.Sample(now, s)
	for _, tt := range tl.Tables() {
		if tt.LookupRate < 0 || tt.LookupRate > 1e12 {
			t.Fatalf("table %d rate poisoned: %g", tt.Table, tt.LookupRate)
		}
		if tt.DemoteRate < 0 || tt.DemoteRate > 1e12 {
			t.Fatalf("table %d demote rate poisoned: %g", tt.Table, tt.DemoteRate)
		}
	}
	for _, rt := range tl.Ranges() {
		if rt.LookupRate < 0 || rt.LookupRate > 1e12 {
			t.Fatalf("range %d/%d rate poisoned: %g", rt.Table, rt.Range, rt.LookupRate)
		}
	}
}
