package adapt

import (
	"testing"
	"time"

	"sdm/internal/core"
	"sdm/internal/model"
	"sdm/internal/placement"
	"sdm/internal/simclock"
	"sdm/internal/uring"
	"sdm/internal/workload"
)

// fixture builds a ReserveSM store over a small model plus a drifting
// generator whose spotlight rotates across the user tables.
func fixture(t *testing.T, parallelism int, budgetTables int) (*core.Store, *workload.Generator, *model.Instance) {
	t.Helper()
	mc := model.M1()
	mc.NumUserTables = 6
	mc.NumItemTables = 2
	mc.ItemBatch = 4
	mc.TotalBytes = 1 << 21
	inst, err := model.Build(mc, 1, 41)
	if err != nil {
		t.Fatal(err)
	}
	// Equalize user-table sizes: the adaptive regime of interest is a DRAM
	// budget that fits only a few comparable tables, so rotation forces
	// swaps (the stock log-uniform sizing can make a hot table trivially
	// small and permanently FM-resident).
	const perTable = 160 << 10
	for i := 0; i < mc.NumUserTables; i++ {
		inst.Tables[i].Rows = perTable / int64(inst.Tables[i].RowBytes())
	}
	tables, err := inst.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	budget := int64(budgetTables)*perTable + perTable/2

	var clk simclock.Clock
	s, err := core.Open(inst, tables, core.Config{
		Seed: 17, ReserveSM: true, Ring: uring.Config{SGL: true},
		CacheBytes: 1 << 17, Parallelism: parallelism,
		Placement: placement.Config{
			Policy: placement.FixedFMWithCache, UserTablesOnly: true, DRAMBudget: budget,
		},
	}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	gen, err := workload.NewGenerator(inst, workload.Config{
		Seed: 19, NumUsers: 400, UserAlpha: 0.9,
		Drift: workload.DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.25},
	})
	if err != nil {
		t.Fatal(err)
	}
	return s, gen, inst
}

// drive replays n queries 3 ms apart through the store with the adapter's
// hooks, starting at the store's load horizon plus offset queries.
func drive(t *testing.T, s *core.Store, a *Adapter, gen *workload.Generator, start simclock.Time, n int) simclock.Time {
	t.Helper()
	var now simclock.Time
	for i := 0; i < n; i++ {
		now = start + simclock.Time(i)*simclock.Time(3*time.Millisecond)
		a.BeforeAdmit(now)
		q := gen.Next()
		outs := s.AllocOutputs(q)
		if _, err := s.PoolQuery(now, q, outs); err != nil {
			t.Fatal(err)
		}
		a.AfterAdmit(now, now)
	}
	return now + simclock.Time(3*time.Millisecond)
}

func fmSet(s *core.Store, inst *model.Instance) map[int]bool {
	out := map[int]bool{}
	for i := 0; i < inst.Config.NumUserTables; i++ {
		if s.TargetOf(i) == placement.FM {
			out[i] = true
		}
	}
	return out
}

func TestAdapterPromotesHotTables(t *testing.T) {
	s, gen, inst := fixture(t, 1, 2)
	a, err := New(s, Config{Interval: 100 * time.Millisecond, BandwidthBytesPerSec: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	end := drive(t, s, a, gen, s.LoadDone(), 1200)
	st := a.Stats()
	if st.Evals == 0 {
		t.Fatal("controller never evaluated")
	}
	if st.Promotions == 0 {
		t.Fatalf("controller never promoted: %s", st)
	}
	hot := map[int]bool{}
	for _, h := range gen.HotUserTables() {
		hot[h] = true
	}
	fm := fmSet(s, inst)
	for h := range hot {
		if !fm[h] {
			t.Fatalf("spotlight table %d not FM-resident after convergence: fm=%v stats=%s", h, fm, st)
		}
	}
	if len(fm) > 3 {
		t.Fatalf("FM set exceeds budget-sized fleet: %v", fm)
	}
	_ = end
	tl := a.Telemetry().Table(gen.HotUserTables()[0])
	if tl.Windows == 0 || tl.LookupRate <= 0 {
		t.Fatalf("telemetry empty for hot table: %+v", tl)
	}
}

func TestAdapterReactsToRotation(t *testing.T) {
	s, gen, inst := fixture(t, 1, 2)
	a, err := New(s, Config{Interval: 100 * time.Millisecond, BandwidthBytesPerSec: 8 << 20})
	if err != nil {
		t.Fatal(err)
	}
	end := drive(t, s, a, gen, s.LoadDone(), 1200)
	before := fmSet(s, inst)
	gen.ForceRotation()
	drive(t, s, a, gen, end, 1200)
	after := fmSet(s, inst)
	st := a.Stats()
	if st.Demotions == 0 {
		t.Fatalf("rotation should demote stale FM residents: %s", st)
	}
	hot := gen.HotUserTables()
	for _, h := range hot {
		if !after[h] {
			t.Fatalf("post-rotation spotlight %v not FM-resident (fm=%v, was %v): %s", hot, after, before, st)
		}
	}
	same := true
	for k := range before {
		if !after[k] {
			same = false
		}
	}
	if same && len(before) == len(after) {
		t.Fatalf("FM set did not move across the rotation: %v", after)
	}
}

func TestAdapterParallelismInvariant(t *testing.T) {
	// The control loop keys off op-order-folded counters, so the whole
	// adaptive trajectory must be identical at any query-engine width.
	run := func(par int) (Stats, core.Stats, map[int]bool) {
		s, gen, inst := fixture(t, par, 2)
		a, err := New(s, Config{Interval: 100 * time.Millisecond, BandwidthBytesPerSec: 4 << 20})
		if err != nil {
			t.Fatal(err)
		}
		end := drive(t, s, a, gen, s.LoadDone(), 800)
		gen.ForceRotation()
		drive(t, s, a, gen, end, 800)
		return a.Stats(), s.Stats(), fmSet(s, inst)
	}
	s1, c1, f1 := run(1)
	s4, c4, f4 := run(4)
	if s1 != s4 {
		t.Fatalf("adapter stats diverged across parallelism:\n%+v\n%+v", s1, s4)
	}
	if c1 != c4 {
		t.Fatalf("store stats diverged across parallelism:\n%+v\n%+v", c1, c4)
	}
	if len(f1) != len(f4) {
		t.Fatalf("FM sets diverged: %v vs %v", f1, f4)
	}
	for k := range f1 {
		if !f4[k] {
			t.Fatalf("FM sets diverged: %v vs %v", f1, f4)
		}
	}
}

func TestBandwidthCapPacesMigration(t *testing.T) {
	// With a cap, a table's migration must span at least bytes/bandwidth
	// of virtual time; unpaced it collapses to one admission instant.
	elapsed := func(bw float64) time.Duration {
		s, gen, _ := fixture(t, 1, 2)
		a, err := New(s, Config{Interval: 100 * time.Millisecond, BandwidthBytesPerSec: bw, ChunkBytes: 16 << 10})
		if err != nil {
			t.Fatal(err)
		}
		var start, done simclock.Time
		now := s.LoadDone()
		for i := 0; i < 2000; i++ {
			tnow := now + simclock.Time(i)*simclock.Time(3*time.Millisecond)
			prev := a.Stats().Promotions + a.Stats().Demotions
			a.BeforeAdmit(tnow)
			if start == 0 && a.PendingMigrations() > 0 {
				start = tnow
			}
			if done == 0 && prev == 0 && a.Stats().Promotions+a.Stats().Demotions > 0 {
				done = tnow
				break
			}
			q := gen.Next()
			outs := s.AllocOutputs(q)
			if _, err := s.PoolQuery(tnow, q, outs); err != nil {
				t.Fatal(err)
			}
		}
		if start == 0 || done == 0 {
			t.Fatalf("no migration observed at bw=%g", bw)
		}
		return (done - start).Duration()
	}
	slow := elapsed(512 << 10) // 512 KiB/s
	fast := elapsed(0)         // unpaced
	if slow < 4*fast || slow < 50*time.Millisecond {
		t.Fatalf("bandwidth cap did not pace migration: capped=%v unpaced=%v", slow, fast)
	}
}

func TestWearBudgetPacesDemoteWrites(t *testing.T) {
	// With WearDaysPerSecond set, the per-window SM write budget caps the
	// demote bytes the actuator issues in any one eval window (chunk
	// granular: overshoot bounded by one chunk), spreading the endurance
	// spend over time instead of dumping it — while the controller still
	// adapts through the rotation. Without it a whole-table demotion
	// lands its writes inside a single window.
	const (
		interval = 100 * time.Millisecond
		chunk    = 16 << 10
	)
	run := func(wear float64) (maxPerWindow int64, budget int64, st Stats) {
		s, gen, _ := fixture(t, 1, 2)
		a, err := New(s, Config{
			Interval:             interval,
			BandwidthBytesPerSec: 8 << 20,
			ChunkBytes:           chunk,
			WearDaysPerSecond:    wear,
		})
		if err != nil {
			t.Fatal(err)
		}
		budget = int64(s.Wear().DailyWriteBudgetBytes() * wear * interval.Seconds())
		windows := map[simclock.Time]int64{}
		var prev uint64
		step := func(start simclock.Time, n int) simclock.Time {
			var now simclock.Time
			for i := 0; i < n; i++ {
				now = start + simclock.Time(i)*simclock.Time(3*time.Millisecond)
				a.BeforeAdmit(now)
				cur := s.Stats().DemoteWriteBytes
				windows[now/simclock.Time(interval)] += int64(cur - prev)
				prev = cur
				q := gen.Next()
				if _, err := s.PoolQuery(now, q, s.AllocOutputs(q)); err != nil {
					t.Fatal(err)
				}
			}
			return now + simclock.Time(3*time.Millisecond)
		}
		end := step(s.LoadDone(), 1200)
		gen.ForceRotation()
		step(end, 1200)
		for _, b := range windows {
			if b > maxPerWindow {
				maxPerWindow = b
			}
		}
		return maxPerWindow, budget, a.Stats()
	}

	freeMax, _, freeStats := run(0)
	wearMax, budget, wearStats := run(0.01)
	if freeStats.Demotions == 0 || freeMax == 0 {
		t.Fatalf("wear-free run never demoted: %s", freeStats)
	}
	if wearStats.Promotions == 0 || wearStats.Demotions == 0 {
		t.Fatalf("wear budget froze the controller entirely: %s", wearStats)
	}
	if budget <= 0 || budget > freeMax {
		t.Fatalf("fixture budget %d not binding vs unconstrained per-window max %d", budget, freeMax)
	}
	if wearMax > budget+chunk {
		t.Fatalf("windowed demote writes %d exceed budget %d + chunk %d", wearMax, budget, chunk)
	}
	if wearMax >= freeMax {
		t.Fatalf("wear budget did not pace demote writes: max/window %d vs unconstrained %d", wearMax, freeMax)
	}
}

func TestSelfWindowDemoteBudgetTracksEndurance(t *testing.T) {
	// The ungoverned wear window derives its budget from the device's
	// DWPD rating and remaining rated life.
	s, _, _ := fixture(t, 1, 2)
	a, err := New(s, Config{Interval: 100 * time.Millisecond, WearDaysPerSecond: 1})
	if err != nil {
		t.Fatal(err)
	}
	w, ok := a.Actuator().WindowAt(12345)
	if !ok {
		t.Fatal("wear-aware adapter installed no window schedule")
	}
	wear := s.Wear()
	want := int64(wear.DailyWriteBudgetBytes() * 1 * 0.1)
	if w.DemoteBudgetBytes != want {
		t.Fatalf("window demote budget %d, want %d (daily %g, life %.3f)",
			w.DemoteBudgetBytes, want, wear.DailyWriteBudgetBytes(), wear.LifeFrac())
	}
	if w.Close-w.Open != simclock.Time(100*time.Millisecond) {
		t.Fatalf("self window width %v, want the eval interval", w.Close-w.Open)
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(nil, Config{}); err == nil {
		t.Fatal("nil store should fail")
	}
	mc := model.M1()
	mc.NumUserTables = 2
	mc.NumItemTables = 1
	mc.TotalBytes = 1 << 18
	inst, err := model.Build(mc, 1, 3)
	if err != nil {
		t.Fatal(err)
	}
	tables, err := inst.Materialize()
	if err != nil {
		t.Fatal(err)
	}
	var clk simclock.Clock
	plain, err := core.Open(inst, tables, core.Config{Seed: 1, Ring: uring.Config{SGL: true}}, &clk)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(plain, Config{DRAMBudget: 1 << 20}); err == nil {
		t.Fatal("store without ReserveSM should fail")
	}
	var clk2 simclock.Clock
	res, err := core.Open(inst, tables, core.Config{
		Seed: 1, ReserveSM: true, Ring: uring.Config{SGL: true},
		Placement: placement.Config{Policy: placement.SMOnlyWithCache, UserTablesOnly: true},
	}, &clk2)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := New(res, Config{}); err == nil {
		t.Fatal("missing DRAM budget should fail")
	}
	if _, err := New(res, Config{DRAMBudget: 1 << 20}); err != nil {
		t.Fatalf("valid adapter rejected: %v", err)
	}
}
