package adapt

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sdm/internal/core"
	"sdm/internal/placement"
	"sdm/internal/simclock"
)

// Granularity selects what the controller moves between FM and SM.
type Granularity int

// Controller granularities.
const (
	// Tables re-places whole tables — the §4.6/Table-5 greedy run
	// verbatim against live densities.
	Tables Granularity = iota
	// Ranges runs the same greedy over fixed-width row ranges
	// (core.Config.MigrationRangeBytes), so the DRAM budget holds the hot
	// head of several tables instead of every byte of a few; under drift
	// it recovers the FM-served rate while migrating a fraction of the
	// bytes a whole-table swap would move.
	Ranges
)

// String returns the granularity name.
func (g Granularity) String() string {
	switch g {
	case Tables:
		return "tables"
	case Ranges:
		return "ranges"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Config tunes an Adapter.
type Config struct {
	// Interval is the virtual-time period between controller evaluations
	// (default 200ms).
	Interval time.Duration
	// DRAMBudget bounds the bytes of FM-direct placement the controller
	// may use. 0 inherits the store's placement budget; one of the two
	// must be positive.
	DRAMBudget int64
	// BandwidthBytesPerSec caps migration IO issue rate in virtual time.
	// 0 means unpaced: a whole migration's chunks issue back to back,
	// stealing as much device time as the rings allow (the worst-case
	// tail hit the cap exists to bound).
	BandwidthBytesPerSec float64
	// ChunkBytes is the payload of one migration IO burst — the pacing
	// granularity of the bandwidth cap (default 64 KiB).
	ChunkBytes int
	// Smoothing is the telemetry EWMA weight of the newest window in
	// [0, 1]; 0 selects 0.5.
	Smoothing float64
	// Hysteresis is the demand-density advantage a challenger needs over
	// an FM incumbent before a swap is scheduled; must be >= 1 (1
	// disables stickiness), 0 selects 1.3.
	Hysteresis float64
	// MaxMigrationsPerEval bounds how many swaps one evaluation may
	// enqueue (default 4), limiting churn under noisy telemetry.
	MaxMigrationsPerEval int
	// Granularity selects whole-table (Tables, the default) or row-range
	// (Ranges) re-placement.
	Granularity Granularity
	// PaybackSeconds is the range-mode payback filter: a row range is only
	// worth migrating if its demand density would re-serve the range's own
	// bytes from FM within this horizon (density >= 1/PaybackSeconds).
	// Without it any positive tail density eventually fills the budget
	// with cold ranges, churning migration bandwidth for nothing — the
	// exact waste range granularity exists to avoid. 0 selects 10s;
	// ignored at table granularity.
	PaybackSeconds float64
}

// Validate reports configuration errors. Earlier revisions silently
// rewrote out-of-range values (a Hysteresis of 0.5 became 1.3), which hid
// real misconfigurations; CLIs surface these errors at flag-parse time.
func (c Config) Validate() error {
	switch {
	case c.Interval < 0:
		return fmt.Errorf("adapt: Interval must be >= 0 (0 selects 200ms), got %v", c.Interval)
	case c.DRAMBudget < 0:
		return fmt.Errorf("adapt: DRAMBudget must be >= 0 (0 inherits the store's placement budget), got %d", c.DRAMBudget)
	case c.BandwidthBytesPerSec < 0:
		return fmt.Errorf("adapt: BandwidthBytesPerSec must be >= 0 (0 = unpaced), got %g", c.BandwidthBytesPerSec)
	case c.ChunkBytes < 0:
		return fmt.Errorf("adapt: ChunkBytes must be >= 0 (0 selects 64 KiB), got %d", c.ChunkBytes)
	case c.Smoothing < 0 || c.Smoothing > 1:
		return fmt.Errorf("adapt: Smoothing must be in [0, 1] (0 selects 0.5), got %g", c.Smoothing)
	case c.Hysteresis != 0 && c.Hysteresis < 1:
		return fmt.Errorf("adapt: Hysteresis must be >= 1 (1 disables stickiness; 0 selects 1.3), got %g", c.Hysteresis)
	case c.MaxMigrationsPerEval < 0:
		return fmt.Errorf("adapt: MaxMigrationsPerEval must be >= 0 (0 selects 4), got %d", c.MaxMigrationsPerEval)
	case c.Granularity != Tables && c.Granularity != Ranges:
		return fmt.Errorf("adapt: unknown granularity %d", int(c.Granularity))
	case c.PaybackSeconds < 0:
		return fmt.Errorf("adapt: PaybackSeconds must be >= 0 (0 selects 10s), got %g", c.PaybackSeconds)
	}
	return nil
}

// defaulted fills zero fields; Validate has already rejected bad values.
func (c Config) defaulted() Config {
	if c.Interval == 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 64 << 10
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 1.3
	}
	if c.MaxMigrationsPerEval == 0 {
		c.MaxMigrationsPerEval = 4
	}
	if c.PaybackSeconds == 0 {
		c.PaybackSeconds = 10
	}
	return c
}

// Stats counts what an Adapter has done.
type Stats struct {
	Evals         int
	Promotions    int
	Demotions     int
	MigratedBytes int64
	// RangeMoves is the subset of promotions+demotions that moved row
	// ranges rather than whole tables.
	RangeMoves int
	// Aborts counts migrations abandoned mid-flight (Step error or stall)
	// and rolled back.
	Aborts int
	// LastEval is the virtual time of the most recent evaluation.
	LastEval simclock.Time
}

// String renders the headline numbers.
func (s Stats) String() string {
	return fmt.Sprintf("evals=%d promotions=%d demotions=%d rangeMoves=%d aborts=%d migrated=%dB",
		s.Evals, s.Promotions, s.Demotions, s.RangeMoves, s.Aborts, s.MigratedBytes)
}

// migJob is one queued placement move: a whole table, or the row window
// [lo, hi) of one.
type migJob struct {
	table   int
	promote bool
	ranged  bool
	lo, hi  int64
}

// migration is the slice of core.Migration the pacing loop drives,
// narrowed to an interface so regression tests can substitute
// failure-injecting fakes.
type migration interface {
	Step(now simclock.Time) (int, simclock.Time, error)
	Finished() bool
	Done() simclock.Time
	Commit() error
	Abort()
	BytesMoved() int64
}

// activeMig paces one in-flight migration.
type activeMig struct {
	job       migJob
	m         migration
	nextIssue simclock.Time
}

// Adapter is the per-host adaptive-tiering control loop: it samples
// telemetry on the host's admission stream, periodically re-evaluates the
// Table-5 placement against live demand (over whole tables or row ranges,
// per Config.Granularity), and drives bandwidth-capped FM↔SM migrations on
// the virtual timeline. It implements serving.Tuner; install it with
// Host.SetTuner. Not safe for concurrent use — each host owns one Adapter,
// mirroring the one-store-per-host discipline.
type Adapter struct {
	cfg   Config
	store *core.Store
	telem *Telemetry

	budget   int64
	nextEval simclock.Time
	queue    []migJob
	active   *activeMig
	stats    Stats

	// scratch buffers reused across evaluations.
	cands []rangeCand
	items []placement.RangeItem
}

// New builds an Adapter over a store opened with core.Config.ReserveSM.
func New(store *core.Store, cfg Config) (*Adapter, error) {
	if store == nil {
		return nil, errors.New("adapt: nil store")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.defaulted()
	budget := cfg.DRAMBudget
	if budget <= 0 {
		budget = store.Config().Placement.DRAMBudget
	}
	if budget <= 0 {
		return nil, errors.New("adapt: no DRAM budget (one of Config.DRAMBudget or the store's placement budget must be positive)")
	}
	swappable := false
	for _, ts := range store.TableStats(nil) {
		if ts.Swappable {
			swappable = true
			break
		}
	}
	if !swappable {
		return nil, errors.New("adapt: store has no swappable tables (open it with core.Config.ReserveSM)")
	}
	return &Adapter{
		cfg:      cfg,
		store:    store,
		telem:    NewTelemetry(cfg.Smoothing),
		budget:   budget,
		nextEval: store.LoadDone() + simclock.Time(cfg.Interval),
	}, nil
}

// Telemetry exposes the decayed per-table and per-range view (for
// experiments and CLIs).
func (a *Adapter) Telemetry() *Telemetry { return a.telem }

// Stats returns what the adapter has done so far.
func (a *Adapter) Stats() Stats { return a.stats }

// PendingMigrations returns queued plus in-flight move count.
func (a *Adapter) PendingMigrations() int {
	n := len(a.queue)
	if a.active != nil {
		n++
	}
	return n
}

// BeforeAdmit implements serving.Tuner: it advances migration pacing and,
// on interval boundaries, re-evaluates placement. It runs before the
// query executes, so a committed swap is visible to the very next query.
func (a *Adapter) BeforeAdmit(now simclock.Time) {
	a.advance(now)
	if now < a.nextEval {
		return
	}
	// One evaluation per elapsed interval (idle hosts don't replay a
	// backlog of stale evaluations).
	for a.nextEval <= now {
		a.nextEval += simclock.Time(a.cfg.Interval)
	}
	a.telem.Sample(now, a.store)
	a.stats.Evals++
	a.stats.LastEval = now
	if a.cfg.Granularity == Ranges {
		a.evaluateRanges()
	} else {
		a.evaluateTables()
	}
	a.advance(now)
}

// AfterAdmit implements serving.Tuner; the adapter keys everything off
// arrival times, so completion times are unused.
func (a *Adapter) AfterAdmit(arrive, done simclock.Time) {}

// advance issues paced migration chunks up to virtual time now and
// commits finished migrations whose IO has completed. A migration whose
// Step fails — or stalls issuing zero bytes without finishing, which would
// otherwise spin the unpaced loop forever — is aborted and rolled back,
// so a half-moved window can never be committed by a later pass.
func (a *Adapter) advance(now simclock.Time) {
	for {
		if a.active == nil {
			if len(a.queue) == 0 {
				return
			}
			job := a.queue[0]
			a.queue = a.queue[1:]
			m, err := a.begin(job)
			if err != nil {
				// The table or range moved (or was never swappable) since
				// the evaluation that queued the job: drop it.
				continue
			}
			a.active = &activeMig{job: job, m: m, nextIssue: now}
		}
		act := a.active
		for !act.m.Finished() && act.nextIssue <= now {
			n, _, err := act.m.Step(act.nextIssue)
			if err != nil || (n == 0 && !act.m.Finished()) {
				act.m.Abort()
				a.stats.Aborts++
				a.active = nil
				break
			}
			if a.cfg.BandwidthBytesPerSec > 0 {
				act.nextIssue += simclock.Time(float64(n) / a.cfg.BandwidthBytesPerSec * float64(time.Second))
			}
		}
		if a.active == nil {
			continue
		}
		if !act.m.Finished() || act.m.Done() > now {
			return // needs a later now to issue or settle
		}
		if err := act.m.Commit(); err == nil {
			if act.job.promote {
				a.stats.Promotions++
			} else {
				a.stats.Demotions++
			}
			if act.job.ranged {
				a.stats.RangeMoves++
			}
			a.stats.MigratedBytes += act.m.BytesMoved()
		} else {
			// A failed commit must release the table's in-flight slot, or
			// the table is wedged out of adaptation forever.
			act.m.Abort()
			a.stats.Aborts++
		}
		a.active = nil
	}
}

// begin validates a queued job against the store's current state.
func (a *Adapter) begin(job migJob) (migration, error) {
	var (
		m   *core.Migration
		err error
	)
	switch {
	case job.ranged && job.promote:
		m, err = a.store.BeginPromoteRange(job.table, job.lo, job.hi, a.cfg.ChunkBytes)
	case job.ranged:
		m, err = a.store.BeginDemoteRange(job.table, job.lo, job.hi, a.cfg.ChunkBytes)
	case job.promote:
		m, err = a.store.BeginPromote(job.table, a.cfg.ChunkBytes)
	default:
		m, err = a.store.BeginDemote(job.table, a.cfg.ChunkBytes)
	}
	if err != nil {
		return nil, err
	}
	return m, nil
}

// busyTables returns the tables with a queued or in-flight move.
func (a *Adapter) busyTables() map[int]bool {
	busy := make(map[int]bool, a.PendingMigrations())
	if a.active != nil {
		busy[a.active.job.table] = true
	}
	for _, j := range a.queue {
		busy[j.table] = true
	}
	return busy
}

// evaluateTables re-runs the Table-5 greedy FM promotion against live
// demand densities and enqueues the placement diff as whole-table
// migrations (demotions first, so the DRAM budget is respected
// throughout).
func (a *Adapter) evaluateTables() {
	busy := a.busyTables()

	type cand struct {
		table int
		inFM  bool
	}
	var cands []cand
	a.items = a.items[:0]
	for _, t := range a.telem.Tables() {
		if !t.Swappable || t.Windows == 0 {
			continue
		}
		c := cand{table: t.Table, inFM: a.store.TargetOf(t.Table) == placement.FM}
		density := t.Density()
		if c.inFM {
			// Stickiness: an incumbent defends its slot unless a
			// challenger beats it by the hysteresis factor.
			density *= a.cfg.Hysteresis
		}
		cands = append(cands, c)
		a.items = append(a.items, placement.RangeItem{
			Table:   t.Table,
			Range:   placement.WholeTable,
			Bytes:   t.StoredBytes,
			Density: density,
		})
	}
	// The desired FM set under the budget: the shared Table-5 greedy,
	// here over whole-table items only.
	desired := make(map[int]bool, len(cands))
	for _, i := range placement.PackRanges(a.items, a.budget) {
		desired[a.items[i].Table] = true
	}
	// Queued jobs the new desired set contradicts are stale — drop them
	// before they begin, so consecutive evaluations cannot stack
	// promotions past the budget.
	a.reconcileQueue(func(j migJob) bool { return desired[j.table] == j.promote })

	// Diff against current placement; demotions first.
	var moves []migJob
	for _, c := range cands {
		if c.inFM && !desired[c.table] && !busy[c.table] {
			moves = append(moves, migJob{table: c.table, promote: false})
		}
	}
	for _, c := range cands {
		if !c.inFM && desired[c.table] && !busy[c.table] {
			moves = append(moves, migJob{table: c.table, promote: true})
		}
	}
	if len(moves) > a.cfg.MaxMigrationsPerEval {
		moves = moves[:a.cfg.MaxMigrationsPerEval]
	}
	a.queue = append(a.queue, moves...)
}

// reconcileQueue keeps only the queued jobs the freshest evaluation still
// agrees with. Without it a promotion queued under an older desired set
// could begin (and commit) after drift moved the spotlight, stacking the
// committed FM placement past the budget until a later eval demoted the
// excess; the in-flight migration is left to finish — aborting it would
// waste its issued IO — so any overshoot is bounded by one move.
func (a *Adapter) reconcileQueue(keep func(migJob) bool) {
	kept := a.queue[:0]
	for _, j := range a.queue {
		if keep(j) {
			kept = append(kept, j)
		}
	}
	a.queue = kept
}

// rangeCand carries one knapsack item plus the move metadata PackRanges
// does not need.
type rangeCand struct {
	item     placement.RangeItem
	lo, hi   int64 // row window (range items)
	resident bool  // currently FM-resident (range) or FM-target (whole)
	whole    bool  // whole-table item (an FM incumbent, demotable only wholesale)
	busy     bool  // a queued or in-flight move already covers it
}

// evaluateRanges runs the Table-5 greedy at row-range granularity: SM
// tables contribute one candidate per row range, while a whole-table FM
// incumbent (a static FixedFM placement the controller inherited)
// participates as a single indivisible item — if it loses the knapsack it
// is demoted wholesale, after which its ranges compete individually.
// Selected-but-absent ranges are promoted, resident-but-unselected ones
// demoted (first, so the budget holds throughout), with adjacent ranges of
// one table coalesced into a single [lo, hi) migration.
func (a *Adapter) evaluateRanges() {
	busyTable := make(map[int]bool)   // whole-table job pending
	busyRange := make(map[int64]bool) // (table, range) jobs pending
	rkey := func(table int, r int64) int64 { return int64(table)<<32 | r }
	mark := func(j migJob) {
		if !j.ranged {
			busyTable[j.table] = true
			return
		}
		rr := a.store.RangeRowsOf(j.table)
		if rr <= 0 {
			return
		}
		for r := j.lo / rr; r*rr < j.hi; r++ {
			busyRange[rkey(j.table, r)] = true
		}
	}
	if a.active != nil {
		mark(a.active.job)
	}
	for _, j := range a.queue {
		mark(j)
	}

	a.cands = a.cands[:0]
	for _, t := range a.telem.Tables() {
		if !t.Swappable {
			continue
		}
		if a.store.TargetOf(t.Table) == placement.FM {
			if t.Windows == 0 {
				continue
			}
			a.cands = append(a.cands, rangeCand{
				item: placement.RangeItem{
					Table:   t.Table,
					Range:   placement.WholeTable,
					Bytes:   t.StoredBytes,
					Density: t.Density() * a.cfg.Hysteresis,
				},
				lo: 0, hi: -1,
				resident: true,
				whole:    true,
				busy:     busyTable[t.Table],
			})
		}
	}
	// The payback filter: a range must re-serve its own bytes from FM
	// within the horizon to justify migrating it (and, with hysteresis, to
	// keep its slot). Zeroing the density keeps the candidate in the move
	// diff — sub-floor residents are demoted — while PackRanges never
	// selects it.
	floor := 1 / a.cfg.PaybackSeconds
	rr := int64(0)
	lastTable := -1
	for _, rt := range a.telem.Ranges() {
		if a.store.TargetOf(rt.Table) == placement.FM {
			continue // covered by the whole-table incumbent item
		}
		if rt.Windows == 0 && !rt.FMResident {
			continue
		}
		if rt.Table != lastTable {
			rr = a.store.RangeRowsOf(rt.Table)
			lastTable = rt.Table
		}
		if rr <= 0 {
			continue
		}
		density := rt.Density()
		if rt.FMResident {
			density *= a.cfg.Hysteresis
		}
		if density < floor {
			density = 0
		}
		lo := int64(rt.Range) * rr
		a.cands = append(a.cands, rangeCand{
			item: placement.RangeItem{
				Table:   rt.Table,
				Range:   rt.Range,
				Bytes:   rt.Bytes,
				Density: density,
			},
			lo: lo, hi: lo + rt.Rows,
			resident: rt.FMResident,
			busy:     busyTable[rt.Table] || busyRange[rkey(rt.Table, int64(rt.Range))],
		})
	}

	a.items = a.items[:0]
	for _, c := range a.cands {
		a.items = append(a.items, c.item)
	}
	desired := make([]bool, len(a.cands))
	for _, i := range placement.PackRanges(a.items, a.budget) {
		desired[i] = true
	}

	// Drop queued jobs the new desired set contradicts (see
	// reconcileQueue): a coalesced range job survives only if every range
	// it covers still agrees with its direction.
	desiredWhole := make(map[int]bool)
	desiredRange := make(map[int64]bool)
	for i, c := range a.cands {
		if c.whole {
			desiredWhole[c.item.Table] = desired[i]
		} else {
			desiredRange[rkey(c.item.Table, int64(c.item.Range))] = desired[i]
		}
	}
	a.reconcileQueue(func(j migJob) bool {
		if !j.ranged {
			return desiredWhole[j.table] == j.promote
		}
		rr := a.store.RangeRowsOf(j.table)
		if rr <= 0 {
			return false
		}
		for r := j.lo / rr; r*rr < j.hi; r++ {
			if desiredRange[rkey(j.table, r)] != j.promote {
				return false
			}
		}
		return true
	})

	var demote, promote []migJob
	for i, c := range a.cands {
		if c.busy || desired[i] == c.resident {
			continue
		}
		if c.resident {
			if c.whole {
				demote = append(demote, migJob{table: c.item.Table, promote: false})
			} else {
				demote = append(demote, migJob{table: c.item.Table, promote: false, ranged: true, lo: c.lo, hi: c.hi})
			}
		} else {
			promote = append(promote, migJob{table: c.item.Table, promote: true, ranged: true, lo: c.lo, hi: c.hi})
		}
	}
	moves := append(coalesce(demote), coalesce(promote)...)
	if len(moves) > a.cfg.MaxMigrationsPerEval {
		moves = moves[:a.cfg.MaxMigrationsPerEval]
	}
	a.queue = append(a.queue, moves...)
}

// coalesce merges adjacent range jobs of the same table and direction into
// single [lo, hi) migrations (whole-table jobs pass through), so one hot
// head of k contiguous ranges costs one migration, not k.
func coalesce(jobs []migJob) []migJob {
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].table != jobs[j].table {
			return jobs[i].table < jobs[j].table
		}
		return jobs[i].lo < jobs[j].lo
	})
	out := jobs[:0]
	for _, j := range jobs {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.ranged && j.ranged && last.table == j.table && last.promote == j.promote && last.hi == j.lo {
				last.hi = j.hi
				continue
			}
		}
		out = append(out, j)
	}
	return out
}
