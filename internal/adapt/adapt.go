package adapt

import (
	"context"
	"errors"
	"fmt"
	"runtime/pprof"
	"sort"
	"time"

	"sdm/internal/metrics"
	"sdm/internal/obs"
	"sdm/internal/placement"
	"sdm/internal/simclock"

	"sdm/internal/core"
)

// Granularity selects what the controller moves between FM and SM.
type Granularity int

// Controller granularities.
const (
	// Tables re-places whole tables — the §4.6/Table-5 greedy run
	// verbatim against live densities.
	Tables Granularity = iota
	// Ranges runs the same greedy over fixed-width row ranges
	// (core.Config.MigrationRangeBytes), so the DRAM budget holds the hot
	// head of several tables instead of every byte of a few; under drift
	// it recovers the FM-served rate while migrating a fraction of the
	// bytes a whole-table swap would move.
	Ranges
)

// String returns the granularity name.
func (g Granularity) String() string {
	switch g {
	case Tables:
		return "tables"
	case Ranges:
		return "ranges"
	default:
		return fmt.Sprintf("Granularity(%d)", int(g))
	}
}

// Config tunes an Adapter.
type Config struct {
	// Interval is the virtual-time period between controller evaluations
	// (default 200ms).
	Interval time.Duration
	// DRAMBudget bounds the bytes of FM-direct placement the controller
	// may use. 0 inherits the store's placement budget; one of the two
	// must be positive.
	DRAMBudget int64
	// BandwidthBytesPerSec caps migration IO issue rate in virtual time.
	// 0 means unpaced: a whole migration's chunks issue back to back,
	// stealing as much device time as the rings allow (the worst-case
	// tail hit the cap exists to bound).
	BandwidthBytesPerSec float64
	// ChunkBytes is the payload of one migration IO burst — the pacing
	// granularity of the bandwidth cap (default 64 KiB).
	ChunkBytes int
	// Smoothing is the telemetry EWMA weight of the newest window in
	// [0, 1]; 0 selects 0.5.
	Smoothing float64
	// Hysteresis is the demand-density advantage a challenger needs over
	// an FM incumbent before a swap is scheduled; must be >= 1 (1
	// disables stickiness), 0 selects 1.3.
	Hysteresis float64
	// MaxMigrationsPerEval bounds how many swaps one evaluation may
	// enqueue (default 4), limiting churn under noisy telemetry.
	MaxMigrationsPerEval int
	// Granularity selects whole-table (Tables, the default) or row-range
	// (Ranges) re-placement.
	Granularity Granularity
	// PaybackSeconds is the range-mode payback filter: a row range is only
	// worth migrating if its demand density would re-serve the range's own
	// bytes from FM within this horizon (density >= 1/PaybackSeconds).
	// Without it any positive tail density eventually fills the budget
	// with cold ranges, churning migration bandwidth for nothing — the
	// exact waste range granularity exists to avoid. 0 selects 10s;
	// ignored at table granularity.
	PaybackSeconds float64
	// WearDaysPerSecond compresses the §3 endurance budget onto the
	// virtual timeline for wear-aware placement: each virtual second
	// accrues the SM demote-write budget of this many rated days
	// (EnduranceDWPD × SM capacity × remaining rated-life fraction, per
	// core.WearInfo). The resulting per-eval-window budget both discounts
	// churny candidates in the packing greedy and caps the demote bytes
	// the actuator issues per window. 0 disables wear awareness (the
	// pre-wear behavior, bit-identical). Drift drills compress days of
	// traffic into virtual seconds, so values near 1 make the budget
	// binding at experiment scale.
	WearDaysPerSecond float64
}

// Validate reports configuration errors. Earlier revisions silently
// rewrote out-of-range values (a Hysteresis of 0.5 became 1.3), which hid
// real misconfigurations; CLIs surface these errors at flag-parse time.
func (c Config) Validate() error {
	switch {
	case c.Interval < 0:
		return fmt.Errorf("adapt: Interval must be >= 0 (0 selects 200ms), got %v", c.Interval)
	case c.DRAMBudget < 0:
		return fmt.Errorf("adapt: DRAMBudget must be >= 0 (0 inherits the store's placement budget), got %d", c.DRAMBudget)
	case c.BandwidthBytesPerSec < 0:
		return fmt.Errorf("adapt: BandwidthBytesPerSec must be >= 0 (0 = unpaced), got %g", c.BandwidthBytesPerSec)
	case c.ChunkBytes < 0:
		return fmt.Errorf("adapt: ChunkBytes must be >= 0 (0 selects 64 KiB), got %d", c.ChunkBytes)
	case c.Smoothing < 0 || c.Smoothing > 1:
		return fmt.Errorf("adapt: Smoothing must be in [0, 1] (0 selects 0.5), got %g", c.Smoothing)
	case c.Hysteresis != 0 && c.Hysteresis < 1:
		return fmt.Errorf("adapt: Hysteresis must be >= 1 (1 disables stickiness; 0 selects 1.3), got %g", c.Hysteresis)
	case c.MaxMigrationsPerEval < 0:
		return fmt.Errorf("adapt: MaxMigrationsPerEval must be >= 0 (0 selects 4), got %d", c.MaxMigrationsPerEval)
	case c.Granularity != Tables && c.Granularity != Ranges:
		return fmt.Errorf("adapt: unknown granularity %d", int(c.Granularity))
	case c.PaybackSeconds < 0:
		return fmt.Errorf("adapt: PaybackSeconds must be >= 0 (0 selects 10s), got %g", c.PaybackSeconds)
	case c.WearDaysPerSecond < 0:
		return fmt.Errorf("adapt: WearDaysPerSecond must be >= 0 (0 disables wear awareness), got %g", c.WearDaysPerSecond)
	}
	return nil
}

// defaulted fills zero fields; Validate has already rejected bad values.
func (c Config) defaulted() Config {
	if c.Interval == 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.ChunkBytes == 0 {
		c.ChunkBytes = 64 << 10
	}
	if c.Hysteresis == 0 {
		c.Hysteresis = 1.3
	}
	if c.MaxMigrationsPerEval == 0 {
		c.MaxMigrationsPerEval = 4
	}
	if c.PaybackSeconds == 0 {
		c.PaybackSeconds = 10
	}
	return c
}

// Stats counts what an Adapter has done.
type Stats struct {
	Evals         int
	Promotions    int
	Demotions     int
	MigratedBytes int64
	// RangeMoves is the subset of promotions+demotions that moved row
	// ranges rather than whole tables.
	RangeMoves int
	// Aborts counts migrations abandoned mid-flight (Step error or stall)
	// and rolled back.
	Aborts int
	// LastEval is the virtual time of the most recent evaluation.
	LastEval simclock.Time
}

// String renders the headline numbers.
func (s Stats) String() string {
	return fmt.Sprintf("evals=%d promotions=%d demotions=%d rangeMoves=%d aborts=%d migrated=%dB",
		s.Evals, s.Promotions, s.Demotions, s.RangeMoves, s.Aborts, s.MigratedBytes)
}

// Adapter is the per-host adaptive-tiering control loop, composed of the
// two layers the policy/actuator split separates: a pure Policy that
// turns telemetry into a ranked move plan (wear-aware when
// Config.WearDaysPerSecond is set), and an Actuator that owns the
// Begin/Step/Commit/Abort migration machinery, pacing chunks under the
// bandwidth cap — and, when a fleet coordinator installs a window
// schedule (SetWindows), only inside this replica's granted migration
// windows. It implements serving.Tuner; install it with Host.SetTuner.
// Not safe for concurrent use — each host owns one Adapter, mirroring the
// one-store-per-host discipline.
type Adapter struct {
	cfg   Config
	store *core.Store
	telem *Telemetry

	pol *Policy
	act *Actuator

	nextEval simclock.Time
	stats    Stats

	// tracer receives each evaluation's plan verdicts (nil = tracing
	// off, the default).
	tracer *obs.Collector

	// planned/deferred count plan outcomes when the metrics plane is
	// attached (nil = metrics off, the default; all methods are no-ops).
	planned  *metrics.Counter
	deferred *metrics.Counter

	// pending is the scratch buffer the busy set is collected into.
	pending []Move
}

// New builds an Adapter over a store opened with core.Config.ReserveSM.
func New(store *core.Store, cfg Config) (*Adapter, error) {
	if store == nil {
		return nil, errors.New("adapt: nil store")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	cfg = cfg.defaulted()
	budget := cfg.DRAMBudget
	if budget <= 0 {
		budget = store.Config().Placement.DRAMBudget
	}
	if budget <= 0 {
		return nil, errors.New("adapt: no DRAM budget (one of Config.DRAMBudget or the store's placement budget must be positive)")
	}
	swappable := false
	for _, ts := range store.TableStats(nil) {
		if ts.Swappable {
			swappable = true
			break
		}
	}
	if !swappable {
		return nil, errors.New("adapt: store has no swappable tables (open it with core.Config.ReserveSM)")
	}
	a := &Adapter{
		cfg:      cfg,
		store:    store,
		telem:    NewTelemetry(cfg.Smoothing),
		pol:      NewPolicy(cfg, budget),
		nextEval: store.LoadDone() + simclock.Time(cfg.Interval),
	}
	a.act = NewActuator(store, cfg.ChunkBytes, cfg.BandwidthBytesPerSec, &a.stats)
	if cfg.WearDaysPerSecond > 0 {
		// Ungoverned wear awareness: slice this host's own timeline into
		// contiguous eval-interval windows so the demote budget applies
		// per window even without a fleet coordinator.
		a.act.SetWindows(a.selfWindows)
	}
	return a, nil
}

// selfWindows is the ungoverned window schedule: contiguous
// eval-interval-wide windows with the endurance-derived demote budget
// (no gaps, so pacing is unchanged — only the per-window write budget
// binds).
func (a *Adapter) selfWindows(now simclock.Time) Window {
	iv := simclock.Time(a.cfg.Interval)
	open := now / iv * iv
	return Window{
		Open:              open,
		Close:             open + iv,
		DemoteBudgetBytes: a.windowDemoteBudget(),
	}
}

// windowDemoteBudget derives one window's SM demote-write allowance from
// the device endurance model: the DWPD rating scaled by remaining rated
// life (core.WearInfo.DailyWriteBudgetBytes), compressed onto the virtual
// timeline by Config.WearDaysPerSecond. Wear awareness is enabled
// (WearDaysPerSecond > 0), so a budget that rounds below one byte clamps
// to 1 — the tightest enforceable budget — rather than truncating to the
// "unbudgeted" sentinel and disabling enforcement exactly where it
// should bind hardest.
func (a *Adapter) windowDemoteBudget() int64 {
	b := int64(a.store.Wear().DailyWriteBudgetBytes() *
		a.cfg.WearDaysPerSecond * a.cfg.Interval.Seconds())
	if b < 1 {
		b = 1
	}
	return b
}

// SetWindows installs a fleet coordinator's migration window schedule on
// the actuator (replacing the ungoverned wear windows, if any). The
// schedule must be a pure function of virtual time — see WindowFn.
func (a *Adapter) SetWindows(fn WindowFn) { a.act.SetWindows(fn) }

// SetTracer installs the decision-trace collector this adapter's plan
// verdicts are recorded into (nil detaches — the zero-overhead default).
// The fleet wires this up from Fleet.SetTrace.
func (a *Adapter) SetTracer(c *obs.Collector) {
	a.tracer = c
	a.pol.SetExplain(c != nil || a.planned != nil)
}

// RegisterMetrics registers the adapter's instrument catalog on r: the
// control loop's eval/promotion/demotion/abort counters and migrated
// bytes (func-backed by Stats), plan/defer counts per evaluation, the
// pending-migration gauge, and the wear budget the current window packs
// against. Deferred candidates are only knowable when the policy
// explains its plans, so metering turns explanation on (pure
// observation — plans and moves are unchanged). A nil registry registers
// nothing.
func (a *Adapter) RegisterMetrics(r *metrics.Registry) {
	if r == nil {
		return
	}
	r.NewCounterFunc(metrics.Desc{Name: "sdm_adapt_evals", Help: "Placement re-evaluations run."},
		func() uint64 { return uint64(a.stats.Evals) })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_adapt_promotions", Help: "Committed SM->FM moves."},
		func() uint64 { return uint64(a.stats.Promotions) })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_adapt_demotions", Help: "Committed FM->SM moves."},
		func() uint64 { return uint64(a.stats.Demotions) })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_adapt_aborts", Help: "Migrations abandoned mid-flight and rolled back."},
		func() uint64 { return uint64(a.stats.Aborts) })
	r.NewCounterFunc(metrics.Desc{Name: "sdm_adapt_migrated_bytes", Help: "Bytes moved by committed migrations.", Unit: "bytes"},
		func() uint64 { return uint64(a.stats.MigratedBytes) })
	a.planned = r.NewCounter(metrics.Desc{Name: "sdm_adapt_planned_moves", Help: "Moves enqueued by plan evaluations."})
	a.deferred = r.NewCounter(metrics.Desc{Name: "sdm_adapt_deferred", Help: "Candidates wanted but deferred (busy or per-eval cap)."})
	r.NewGaugeFunc(metrics.Desc{Name: "sdm_adapt_pending_migrations", Help: "Queued plus in-flight moves."},
		func(simclock.Time) float64 { return float64(a.PendingMigrations()) })
	r.NewGaugeFunc(metrics.Desc{Name: "sdm_adapt_wear_window_bytes", Help: "Demote-write allowance of the current migration window.", Unit: "bytes"},
		func(now simclock.Time) float64 { return float64(a.wearBudget(now).WindowBytes) })
	r.NewGaugeFunc(metrics.Desc{Name: "sdm_adapt_wear_spent_bytes", Help: "Demote-write bytes already spent in the current window.", Unit: "bytes"},
		func(now simclock.Time) float64 { return float64(a.wearBudget(now).SpentBytes) })
	a.pol.SetExplain(true)
}

// Telemetry exposes the decayed per-table and per-range view (for
// experiments and CLIs).
func (a *Adapter) Telemetry() *Telemetry { return a.telem }

// Stats returns what the adapter has done so far.
func (a *Adapter) Stats() Stats { return a.stats }

// Policy returns the planning layer (for tests and introspection).
func (a *Adapter) Policy() *Policy { return a.pol }

// Actuator returns the execution layer (for tests and introspection).
func (a *Adapter) Actuator() *Actuator { return a.act }

// PendingMigrations returns queued plus in-flight move count.
func (a *Adapter) PendingMigrations() int { return a.act.Pending() }

// BeforeAdmit implements serving.Tuner: it advances migration pacing and,
// on interval boundaries, re-evaluates placement. It runs before the
// query executes, so a committed swap is visible to the very next query.
func (a *Adapter) BeforeAdmit(now simclock.Time) {
	a.act.Advance(now)
	if now < a.nextEval {
		return
	}
	// One evaluation per elapsed interval (idle hosts don't replay a
	// backlog of stale evaluations).
	for a.nextEval <= now {
		a.nextEval += simclock.Time(a.cfg.Interval)
	}
	// The evaluation (telemetry sample, plan, reconcile, migration IO)
	// is the migrate phase under a CPU profile; it runs once per
	// interval, so the label plumbing stays off the per-query path.
	pprof.Do(context.Background(), pprof.Labels("sdm_phase", "migrate"), func(context.Context) {
		a.telem.Sample(now, a.store)
		a.stats.Evals++
		a.stats.LastEval = now

		// The busy set is collected before reconciliation: a move the
		// fresh plan is about to drop still blocks re-planning its table
		// this eval (its slot frees by the next one).
		a.pending = a.act.AppendPending(a.pending[:0])
		plan := a.pol.Plan(a.telem, a.store, a.pending, a.wearBudget(now))
		for _, d := range plan.Decisions {
			a.tracer.Plan(now, d)
			if d.Action == "defer" {
				a.deferred.Inc()
			}
		}
		a.planned.Add(uint64(len(plan.Moves)))
		a.act.Reconcile(a.agreesWith(plan))
		a.act.Enqueue(plan.Moves)
		a.act.Advance(now)
	})
}

// wearBudget assembles the packing greedy's endurance constraint from the
// actuator's current window: its demote allowance and what this window
// has already written.
func (a *Adapter) wearBudget(now simclock.Time) placement.WearBudget {
	w, ok := a.act.WindowAt(now)
	if !ok || w.DemoteBudgetBytes <= 0 {
		return placement.WearBudget{}
	}
	return placement.WearBudget{
		WindowBytes: w.DemoteBudgetBytes,
		SpentBytes:  a.act.SpentInWindow(w),
	}
}

// agreesWith returns the reconciliation predicate for a fresh plan: a
// queued move survives only if the plan still wants every table or range
// it covers moved in its direction.
func (a *Adapter) agreesWith(plan Plan) func(Move) bool {
	return func(j Move) bool {
		if !j.Ranged {
			return plan.DesiredWhole[j.Table] == j.Promote
		}
		rr := a.store.RangeRowsOf(j.Table)
		if rr <= 0 {
			return false
		}
		for r := j.Lo / rr; r*rr < j.Hi; r++ {
			if plan.DesiredRange[RangeKey(j.Table, r)] != j.Promote {
				return false
			}
		}
		return true
	}
}

// AfterAdmit implements serving.Tuner; the adapter keys everything off
// arrival times, so completion times are unused.
func (a *Adapter) AfterAdmit(arrive, done simclock.Time) {}

// coalesce merges adjacent range moves of the same table and direction
// into single [Lo, Hi) migrations (whole-table moves pass through), so one
// hot head of k contiguous ranges costs one migration, not k.
func coalesce(jobs []Move) []Move {
	sort.SliceStable(jobs, func(i, j int) bool {
		if jobs[i].Table != jobs[j].Table {
			return jobs[i].Table < jobs[j].Table
		}
		return jobs[i].Lo < jobs[j].Lo
	})
	out := jobs[:0]
	for _, j := range jobs {
		if n := len(out); n > 0 {
			last := &out[n-1]
			if last.Ranged && j.Ranged && last.Table == j.Table && last.Promote == j.Promote && last.Hi == j.Lo {
				last.Hi = j.Hi
				continue
			}
		}
		out = append(out, j)
	}
	return out
}
