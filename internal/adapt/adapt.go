package adapt

import (
	"errors"
	"fmt"
	"sort"
	"time"

	"sdm/internal/core"
	"sdm/internal/placement"
	"sdm/internal/simclock"
)

// Config tunes an Adapter.
type Config struct {
	// Interval is the virtual-time period between controller evaluations
	// (default 200ms).
	Interval time.Duration
	// DRAMBudget bounds the bytes of FM-direct placement the controller
	// may use. 0 inherits the store's placement budget; one of the two
	// must be positive.
	DRAMBudget int64
	// BandwidthBytesPerSec caps migration IO issue rate in virtual time.
	// 0 means unpaced: a whole table's chunks issue back to back, stealing
	// as much device time as the rings allow (the worst-case tail hit the
	// cap exists to bound).
	BandwidthBytesPerSec float64
	// ChunkBytes is the payload of one migration IO burst — the pacing
	// granularity of the bandwidth cap (default 64 KiB).
	ChunkBytes int
	// Smoothing is the telemetry EWMA weight of the newest window in
	// (0, 1]; 0 selects 0.5.
	Smoothing float64
	// Hysteresis is the demand-density advantage a challenger needs over
	// an FM incumbent before a swap is scheduled (default 1.3; 1 disables
	// stickiness).
	Hysteresis float64
	// MaxMigrationsPerEval bounds how many swaps one evaluation may
	// enqueue (default 4), limiting churn under noisy telemetry.
	MaxMigrationsPerEval int
}

// defaulted fills zero fields.
func (c Config) defaulted() Config {
	if c.Interval <= 0 {
		c.Interval = 200 * time.Millisecond
	}
	if c.ChunkBytes <= 0 {
		c.ChunkBytes = 64 << 10
	}
	if c.Hysteresis < 1 {
		c.Hysteresis = 1.3
	}
	if c.MaxMigrationsPerEval <= 0 {
		c.MaxMigrationsPerEval = 4
	}
	return c
}

// Stats counts what an Adapter has done.
type Stats struct {
	Evals         int
	Promotions    int
	Demotions     int
	MigratedBytes int64
	// LastEval is the virtual time of the most recent evaluation.
	LastEval simclock.Time
}

// String renders the headline numbers.
func (s Stats) String() string {
	return fmt.Sprintf("evals=%d promotions=%d demotions=%d migrated=%dB",
		s.Evals, s.Promotions, s.Demotions, s.MigratedBytes)
}

// migJob is one queued placement swap.
type migJob struct {
	table   int
	promote bool
}

// activeMig paces one in-flight migration.
type activeMig struct {
	m         *core.Migration
	nextIssue simclock.Time
}

// Adapter is the per-host adaptive-tiering control loop: it samples
// telemetry on the host's admission stream, periodically re-evaluates the
// Table-5 placement against live demand, and drives bandwidth-capped
// FM↔SM migrations on the virtual timeline. It implements serving.Tuner;
// install it with Host.SetTuner. Not safe for concurrent use — each host
// owns one Adapter, mirroring the one-store-per-host discipline.
type Adapter struct {
	cfg   Config
	store *core.Store
	telem *Telemetry

	budget   int64
	nextEval simclock.Time
	queue    []migJob
	active   *activeMig
	stats    Stats
}

// New builds an Adapter over a store opened with core.Config.ReserveSM.
func New(store *core.Store, cfg Config) (*Adapter, error) {
	if store == nil {
		return nil, errors.New("adapt: nil store")
	}
	cfg = cfg.defaulted()
	budget := cfg.DRAMBudget
	if budget <= 0 {
		budget = store.Config().Placement.DRAMBudget
	}
	if budget <= 0 {
		return nil, errors.New("adapt: no DRAM budget (set Config.DRAMBudget or the store's placement budget)")
	}
	swappable := false
	for _, ts := range store.TableStats(nil) {
		if ts.Swappable {
			swappable = true
			break
		}
	}
	if !swappable {
		return nil, errors.New("adapt: store has no swappable tables (open it with core.Config.ReserveSM)")
	}
	return &Adapter{
		cfg:      cfg,
		store:    store,
		telem:    NewTelemetry(cfg.Smoothing),
		budget:   budget,
		nextEval: store.LoadDone() + simclock.Time(cfg.Interval),
	}, nil
}

// Telemetry exposes the decayed per-table view (for experiments and CLIs).
func (a *Adapter) Telemetry() *Telemetry { return a.telem }

// Stats returns what the adapter has done so far.
func (a *Adapter) Stats() Stats { return a.stats }

// PendingMigrations returns queued plus in-flight swap count.
func (a *Adapter) PendingMigrations() int {
	n := len(a.queue)
	if a.active != nil {
		n++
	}
	return n
}

// BeforeAdmit implements serving.Tuner: it advances migration pacing and,
// on interval boundaries, re-evaluates placement. It runs before the
// query executes, so a committed swap is visible to the very next query.
func (a *Adapter) BeforeAdmit(now simclock.Time) {
	a.advance(now)
	if now < a.nextEval {
		return
	}
	// One evaluation per elapsed interval (idle hosts don't replay a
	// backlog of stale evaluations).
	for a.nextEval <= now {
		a.nextEval += simclock.Time(a.cfg.Interval)
	}
	a.telem.Sample(now, a.store)
	a.stats.Evals++
	a.stats.LastEval = now
	a.evaluate()
	a.advance(now)
}

// AfterAdmit implements serving.Tuner; the adapter keys everything off
// arrival times, so completion times are unused.
func (a *Adapter) AfterAdmit(arrive, done simclock.Time) {}

// advance issues paced migration chunks up to virtual time now and
// commits finished migrations whose IO has completed.
func (a *Adapter) advance(now simclock.Time) {
	for {
		if a.active == nil {
			if len(a.queue) == 0 {
				return
			}
			job := a.queue[0]
			a.queue = a.queue[1:]
			m, err := a.begin(job)
			if err != nil {
				// The table moved (or was never swappable) since the
				// evaluation that queued the job: drop it.
				continue
			}
			a.active = &activeMig{m: m, nextIssue: now}
		}
		act := a.active
		for !act.m.Finished() && act.nextIssue <= now {
			n, _, err := act.m.Step(act.nextIssue)
			if err != nil {
				// Migration IO failed (device closed, capacity): abandon
				// the swap; the table keeps its current placement.
				a.active = nil
				break
			}
			if a.cfg.BandwidthBytesPerSec > 0 {
				act.nextIssue += simclock.Time(float64(n) / a.cfg.BandwidthBytesPerSec * float64(time.Second))
			}
		}
		if a.active == nil {
			continue
		}
		if !act.m.Finished() || act.m.Done() > now {
			return // needs a later now to issue or settle
		}
		if err := act.m.Commit(); err == nil {
			if act.m.Promote() {
				a.stats.Promotions++
			} else {
				a.stats.Demotions++
			}
			a.stats.MigratedBytes += act.m.BytesMoved()
		}
		a.active = nil
	}
}

// begin validates a queued job against the store's current state.
func (a *Adapter) begin(job migJob) (*core.Migration, error) {
	if job.promote {
		return a.store.BeginPromote(job.table, a.cfg.ChunkBytes)
	}
	return a.store.BeginDemote(job.table, a.cfg.ChunkBytes)
}

// evaluate re-runs the Table-5 greedy FM promotion against live demand
// densities and enqueues the placement diff as migrations (demotions
// first, so the DRAM budget is respected throughout).
func (a *Adapter) evaluate() {
	type cand struct {
		table   int
		bytes   int64
		density float64
		inFM    bool
	}
	busy := make(map[int]bool, a.PendingMigrations())
	if a.active != nil {
		busy[a.active.m.Table()] = true
	}
	for _, j := range a.queue {
		busy[j.table] = true
	}

	var cands []cand
	for _, t := range a.telem.Tables() {
		if !t.Swappable || t.Windows == 0 {
			continue
		}
		c := cand{
			table:   t.Table,
			bytes:   t.StoredBytes,
			density: t.Density(),
			inFM:    a.store.TargetOf(t.Table) == placement.FM,
		}
		if c.inFM {
			// Stickiness: an incumbent defends its slot unless a
			// challenger beats it by the hysteresis factor.
			c.density *= a.cfg.Hysteresis
		}
		cands = append(cands, c)
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].density != cands[j].density {
			return cands[i].density > cands[j].density
		}
		return cands[i].table < cands[j].table
	})

	// Greedy fill: the desired FM set under the budget.
	desired := make(map[int]bool, len(cands))
	remaining := a.budget
	for _, c := range cands {
		if c.density <= 0 {
			break
		}
		if c.bytes <= remaining {
			desired[c.table] = true
			remaining -= c.bytes
		}
	}

	// Diff against current placement; demotions first.
	var moves []migJob
	for _, c := range cands {
		if c.inFM && !desired[c.table] && !busy[c.table] {
			moves = append(moves, migJob{table: c.table, promote: false})
		}
	}
	for _, c := range cands {
		if !c.inFM && desired[c.table] && !busy[c.table] {
			moves = append(moves, migJob{table: c.table, promote: true})
		}
	}
	if len(moves) > a.cfg.MaxMigrationsPerEval {
		moves = moves[:a.cfg.MaxMigrationsPerEval]
	}
	a.queue = append(a.queue, moves...)
}
