// Package cache implements the software-managed FM row cache of §4.3 — the
// from-scratch substitute for CacheLib. It provides the two designs the
// paper tuned between:
//
//   - a memory-optimized cache (set-associative, compact fixed slots, CLOCK
//     eviction; less overhead per key-value pair but requires a search in a
//     bucket), and
//   - a CPU-optimized cache (hash map + intrusive LRU list; higher per-item
//     metadata overhead but O(1) operations),
//
// plus the dual "unified row cache" the paper deploys: rows with embedding
// dim ≤ 255 B route to the memory-optimized cache, larger rows to the
// CPU-optimized one. Partition counts and sizes are the §4.3 Tuning API.
// Entries can be marked dirty to support cache-first incremental model
// updates with write-back to SM (§A.3).
package cache

import "fmt"

// Key identifies one embedding row.
type Key struct {
	Table int32
	Row   int64
}

func (k Key) hash() uint64 {
	h := uint64(k.Row)*0x9e3779b97f4a7c15 ^ uint64(uint32(k.Table))*0xc2b2ae3d27d4eb4f
	h ^= h >> 29
	h *= 0xbf58476d1ce4e5b9
	h ^= h >> 32
	return h
}

// Stats aggregates cache counters.
type Stats struct {
	Hits       uint64
	Misses     uint64
	Puts       uint64
	Evictions  uint64
	Rejected   uint64 // values too large for the cache's slots
	UsedBytes  int64  // value bytes currently resident
	TotalBytes int64  // configured capacity (values + metadata)
	MetaBytes  int64  // metadata overhead currently resident
	Items      int64
}

// HitRate returns hits/(hits+misses).
func (s Stats) HitRate() float64 {
	total := s.Hits + s.Misses
	if total == 0 {
		return 0
	}
	return float64(s.Hits) / float64(total)
}

func (s Stats) add(o Stats) Stats {
	s.Hits += o.Hits
	s.Misses += o.Misses
	s.Puts += o.Puts
	s.Evictions += o.Evictions
	s.Rejected += o.Rejected
	s.UsedBytes += o.UsedBytes
	s.TotalBytes += o.TotalBytes
	s.MetaBytes += o.MetaBytes
	s.Items += o.Items
	return s
}

// RowCache is the interface shared by the cache variants.
type RowCache interface {
	// Get copies the cached value for k into dst and returns its length.
	// ok is false on miss. dst must be large enough for the row.
	Get(k Key, dst []byte) (n int, ok bool)
	// Put inserts or replaces the value for k.
	Put(k Key, v []byte)
	// PutDirty inserts the value and marks it dirty (pending write-back).
	PutDirty(k Key, v []byte)
	// FlushDirty invokes fn for every dirty entry and clears the flags.
	FlushDirty(fn func(k Key, v []byte))
	// Contains reports residency without updating recency or stats.
	Contains(k Key) bool
	// Stats returns a snapshot of counters.
	Stats() Stats
	// Reset drops all entries and zeroes the counters.
	Reset()
	// CPUCostPerGet returns the relative CPU cost model of one lookup
	// (1.0 = the CPU-optimized cache), used by the serving simulator to
	// reproduce the Fig. 6 trade-off.
	CPUCostPerGet() float64
}

// Compile-time interface checks.
var (
	_ RowCache = (*MemOptimized)(nil)
	_ RowCache = (*CPUOptimized)(nil)
	_ RowCache = (*Dual)(nil)
	_ RowCache = (*Partitioned)(nil)
)

// Dual routes rows to a memory-optimized or CPU-optimized cache by their
// stored row size, reproducing the paper's production configuration:
// "Embedding dim <= 255 will be routed to memory optimized cache".
type Dual struct {
	splitBytes int
	mem        RowCache
	cpu        RowCache
}

// NewDual builds the dual cache. memBytes and cpuBytes are the two cache
// budgets; splitBytes is the routing threshold (0 → 255, the paper's value).
func NewDual(memBytes, cpuBytes int64, splitBytes int) *Dual {
	if splitBytes <= 0 {
		splitBytes = 255
	}
	return &Dual{
		splitBytes: splitBytes,
		mem:        NewMemOptimized(memBytes, splitBytes),
		cpu:        NewCPUOptimized(cpuBytes),
	}
}

func (d *Dual) route(n int) RowCache {
	if n <= d.splitBytes {
		return d.mem
	}
	return d.cpu
}

// RouteSize reports which cache a row of n bytes uses ("mem" or "cpu").
func (d *Dual) RouteSize(n int) string {
	if n <= d.splitBytes {
		return "mem"
	}
	return "cpu"
}

// Get looks up k; the row size is unknown at Get time, so the
// memory-optimized side is consulted first (covering the common case of
// small rows), then the CPU-optimized side.
func (d *Dual) Get(k Key, dst []byte) (int, bool) {
	if n, ok := d.mem.Get(k, dst); ok {
		return n, true
	}
	n, ok := d.cpu.Get(k, dst)
	if !ok {
		// Avoid double-counting the miss recorded by both sides.
		// (Both sides counted a miss; subtracting one keeps totals right.)
		d.discountMiss()
	}
	return n, ok
}

func (d *Dual) discountMiss() {
	if m, ok := d.mem.(*MemOptimized); ok && m.stats.Misses > 0 {
		m.stats.Misses--
	}
}

// Put routes by value size.
func (d *Dual) Put(k Key, v []byte) { d.route(len(v)).Put(k, v) }

// PutDirty routes by value size and marks the entry dirty.
func (d *Dual) PutDirty(k Key, v []byte) { d.route(len(v)).PutDirty(k, v) }

// FlushDirty flushes both sides.
func (d *Dual) FlushDirty(fn func(k Key, v []byte)) {
	d.mem.FlushDirty(fn)
	d.cpu.FlushDirty(fn)
}

// Contains reports residency in either side.
func (d *Dual) Contains(k Key) bool { return d.mem.Contains(k) || d.cpu.Contains(k) }

// Stats sums both sides.
func (d *Dual) Stats() Stats { return d.mem.Stats().add(d.cpu.Stats()) }

// Reset clears both sides.
func (d *Dual) Reset() {
	d.mem.Reset()
	d.cpu.Reset()
}

// CPUCostPerGet blends the two sides' cost models.
func (d *Dual) CPUCostPerGet() float64 {
	return (d.mem.CPUCostPerGet() + d.cpu.CPUCostPerGet()) / 2
}

// Partitioned shards any RowCache constructor across n partitions by key
// hash — the "number of cache partitions" Tuning API of §4.3.
type Partitioned struct {
	parts []RowCache
}

// NewPartitioned builds n partitions, each constructed by mk with an equal
// share of the total budget.
func NewPartitioned(n int, totalBytes int64, mk func(budget int64) RowCache) (*Partitioned, error) {
	if n <= 0 {
		return nil, fmt.Errorf("cache: partitions must be > 0, got %d", n)
	}
	p := &Partitioned{parts: make([]RowCache, n)}
	share := totalBytes / int64(n)
	for i := range p.parts {
		p.parts[i] = mk(share)
	}
	return p, nil
}

func (p *Partitioned) pick(k Key) RowCache {
	return p.parts[k.hash()%uint64(len(p.parts))]
}

// Get delegates to the key's partition.
func (p *Partitioned) Get(k Key, dst []byte) (int, bool) { return p.pick(k).Get(k, dst) }

// Put delegates to the key's partition.
func (p *Partitioned) Put(k Key, v []byte) { p.pick(k).Put(k, v) }

// PutDirty delegates to the key's partition.
func (p *Partitioned) PutDirty(k Key, v []byte) { p.pick(k).PutDirty(k, v) }

// FlushDirty flushes every partition.
func (p *Partitioned) FlushDirty(fn func(k Key, v []byte)) {
	for _, c := range p.parts {
		c.FlushDirty(fn)
	}
}

// Contains delegates to the key's partition.
func (p *Partitioned) Contains(k Key) bool { return p.pick(k).Contains(k) }

// Stats sums all partitions.
func (p *Partitioned) Stats() Stats {
	var s Stats
	for _, c := range p.parts {
		s = s.add(c.Stats())
	}
	return s
}

// Reset clears every partition.
func (p *Partitioned) Reset() {
	for _, c := range p.parts {
		c.Reset()
	}
}

// CPUCostPerGet returns the first partition's cost model.
func (p *Partitioned) CPUCostPerGet() float64 { return p.parts[0].CPUCostPerGet() }
