package cache

// MemOptimized is the memory-optimized row cache of §4.3: a set-associative
// design with fixed-size value slots in one slab and compact per-slot
// metadata (key + length + CLOCK bit + dirty bit ≈ 16 B/item). Lookups
// linearly search the ways of one set ("requires search in a bucket"),
// trading CPU for per-item memory overhead.
type MemOptimized struct {
	slab      []byte
	keys      []Key
	lens      []uint16
	flags     []uint8 // bit0 valid, bit1 clock-referenced, bit2 dirty
	slotBytes int
	ways      int
	sets      int
	clockHand []int // per-set clock position
	stats     Stats
}

const (
	memFlagValid = 1 << iota
	memFlagRef
	memFlagDirty
)

// memMetaPerSlot is the metadata accounting per slot (key 12 B padded to
// 16 B, plus length and flags).
const memMetaPerSlot = 19

// memOptCPUCost is the relative CPU cost of one Get vs the CPU-optimized
// cache: scanning ways costs more than one hash-map probe.
const memOptCPUCost = 1.6

// NewMemOptimized builds a memory-optimized cache with the given byte
// budget. slotBytes is the maximum row size it accepts (0 → 255).
func NewMemOptimized(budget int64, slotBytes int) *MemOptimized {
	if slotBytes <= 0 {
		slotBytes = 255
	}
	const ways = 8
	perSlot := int64(slotBytes + memMetaPerSlot)
	slots := int(budget / perSlot)
	if slots < ways {
		slots = ways
	}
	sets := slots / ways
	slots = sets * ways
	return &MemOptimized{
		slab:      make([]byte, slots*slotBytes),
		keys:      make([]Key, slots),
		lens:      make([]uint16, slots),
		flags:     make([]uint8, slots),
		slotBytes: slotBytes,
		ways:      ways,
		sets:      sets,
		clockHand: make([]int, sets),
		stats:     Stats{TotalBytes: int64(slots) * perSlot},
	}
}

func (c *MemOptimized) setOf(k Key) int { return int(k.hash() % uint64(c.sets)) }

func (c *MemOptimized) slot(set, way int) int { return set*c.ways + way }

// Get copies the value for k into dst.
func (c *MemOptimized) Get(k Key, dst []byte) (int, bool) {
	set := c.setOf(k)
	for w := 0; w < c.ways; w++ {
		s := c.slot(set, w)
		if c.flags[s]&memFlagValid != 0 && c.keys[s] == k {
			c.flags[s] |= memFlagRef
			n := int(c.lens[s])
			copy(dst[:n], c.slab[s*c.slotBytes:s*c.slotBytes+n])
			c.stats.Hits++
			return n, true
		}
	}
	c.stats.Misses++
	return 0, false
}

// Put inserts or replaces k's value. Values larger than the slot size are
// rejected (counted in Stats.Rejected) — the dual router prevents this in
// normal operation.
func (c *MemOptimized) Put(k Key, v []byte) { c.put(k, v, false) }

// PutDirty inserts k's value and marks it dirty.
func (c *MemOptimized) PutDirty(k Key, v []byte) { c.put(k, v, true) }

func (c *MemOptimized) put(k Key, v []byte, dirty bool) {
	if len(v) > c.slotBytes {
		c.stats.Rejected++
		return
	}
	c.stats.Puts++
	set := c.setOf(k)
	// Replace in place if present; otherwise use a free way; otherwise
	// evict via CLOCK.
	victim := -1
	for w := 0; w < c.ways; w++ {
		s := c.slot(set, w)
		if c.flags[s]&memFlagValid == 0 {
			if victim < 0 {
				victim = s
			}
			continue
		}
		if c.keys[s] == k {
			victim = s
			c.stats.UsedBytes -= int64(c.lens[s])
			c.stats.MetaBytes -= memMetaPerSlot
			c.stats.Items--
			break
		}
	}
	if victim < 0 {
		victim = c.evict(set)
	}
	s := victim
	c.keys[s] = k
	c.lens[s] = uint16(len(v))
	c.flags[s] = memFlagValid | memFlagRef
	if dirty {
		c.flags[s] |= memFlagDirty
	}
	copy(c.slab[s*c.slotBytes:], v)
	c.stats.UsedBytes += int64(len(v))
	c.stats.MetaBytes += memMetaPerSlot
	c.stats.Items++
}

// evict runs the CLOCK hand over the set and returns a freed slot index.
func (c *MemOptimized) evict(set int) int {
	for {
		w := c.clockHand[set]
		c.clockHand[set] = (w + 1) % c.ways
		s := c.slot(set, w)
		if c.flags[s]&memFlagRef != 0 {
			c.flags[s] &^= memFlagRef
			continue
		}
		c.stats.Evictions++
		c.stats.UsedBytes -= int64(c.lens[s])
		c.stats.MetaBytes -= memMetaPerSlot
		c.stats.Items--
		c.flags[s] = 0
		return s
	}
}

// FlushDirty invokes fn for each dirty entry and clears the dirty bits.
func (c *MemOptimized) FlushDirty(fn func(k Key, v []byte)) {
	for s := range c.flags {
		if c.flags[s]&(memFlagValid|memFlagDirty) == memFlagValid|memFlagDirty {
			n := int(c.lens[s])
			fn(c.keys[s], c.slab[s*c.slotBytes:s*c.slotBytes+n])
			c.flags[s] &^= memFlagDirty
		}
	}
}

// Contains reports residency without touching recency or stats.
func (c *MemOptimized) Contains(k Key) bool {
	set := c.setOf(k)
	for w := 0; w < c.ways; w++ {
		s := c.slot(set, w)
		if c.flags[s]&memFlagValid != 0 && c.keys[s] == k {
			return true
		}
	}
	return false
}

// Stats returns a snapshot of counters.
func (c *MemOptimized) Stats() Stats { return c.stats }

// Reset drops all entries and counters.
func (c *MemOptimized) Reset() {
	total := c.stats.TotalBytes
	for i := range c.flags {
		c.flags[i] = 0
	}
	for i := range c.clockHand {
		c.clockHand[i] = 0
	}
	c.stats = Stats{TotalBytes: total}
}

// CPUCostPerGet returns the relative lookup cost.
func (c *MemOptimized) CPUCostPerGet() float64 { return memOptCPUCost }
