package cache

import (
	"fmt"
	"testing"
	"testing/quick"
)

func testBasicPutGet(t *testing.T, c RowCache) {
	t.Helper()
	k := Key{Table: 1, Row: 42}
	v := []byte{1, 2, 3, 4}
	c.Put(k, v)
	dst := make([]byte, 16)
	n, ok := c.Get(k, dst)
	if !ok || n != 4 {
		t.Fatalf("get ok=%v n=%d", ok, n)
	}
	for i := range v {
		if dst[i] != v[i] {
			t.Fatalf("value mismatch %v", dst[:n])
		}
	}
	if _, ok := c.Get(Key{Table: 1, Row: 43}, dst); ok {
		t.Fatal("phantom hit")
	}
	if !c.Contains(k) || c.Contains(Key{Table: 9, Row: 9}) {
		t.Fatal("Contains wrong")
	}
}

func TestMemOptimizedBasic(t *testing.T) { testBasicPutGet(t, NewMemOptimized(1<<16, 255)) }
func TestCPUOptimizedBasic(t *testing.T) { testBasicPutGet(t, NewCPUOptimized(1<<16)) }
func TestDualBasic(t *testing.T)         { testBasicPutGet(t, NewDual(1<<16, 1<<16, 255)) }

func TestPartitionedBasic(t *testing.T) {
	p, err := NewPartitioned(4, 1<<18, func(b int64) RowCache { return NewCPUOptimized(b) })
	if err != nil {
		t.Fatal(err)
	}
	testBasicPutGet(t, p)
}

func TestPartitionedBadCount(t *testing.T) {
	if _, err := NewPartitioned(0, 1<<10, func(b int64) RowCache { return NewCPUOptimized(b) }); err == nil {
		t.Fatal("zero partitions should fail")
	}
}

func testReplace(t *testing.T, c RowCache) {
	t.Helper()
	k := Key{Table: 2, Row: 7}
	c.Put(k, []byte{1, 1})
	c.Put(k, []byte{2, 2, 2})
	dst := make([]byte, 8)
	n, ok := c.Get(k, dst)
	if !ok || n != 3 || dst[0] != 2 {
		t.Fatalf("replace failed: ok=%v n=%d v=%v", ok, n, dst[:n])
	}
}

func TestMemOptimizedReplace(t *testing.T) { testReplace(t, NewMemOptimized(1<<16, 255)) }
func TestCPUOptimizedReplace(t *testing.T) { testReplace(t, NewCPUOptimized(1<<16)) }

func TestCPUOptimizedEvictionBudget(t *testing.T) {
	c := NewCPUOptimized(4 << 10)
	v := make([]byte, 100)
	for i := 0; i < 1000; i++ {
		c.Put(Key{Table: 1, Row: int64(i)}, v)
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatal("over-budget inserts must evict")
	}
	if s.UsedBytes+s.MetaBytes > s.TotalBytes {
		t.Fatalf("resident %d exceeds budget %d", s.UsedBytes+s.MetaBytes, s.TotalBytes)
	}
}

func TestCPUOptimizedLRUOrder(t *testing.T) {
	// Budget for ~3 items of 100 B + 112 B meta.
	c := NewCPUOptimized(700)
	v := make([]byte, 100)
	dst := make([]byte, 128)
	c.Put(Key{Row: 1}, v)
	c.Put(Key{Row: 2}, v)
	c.Put(Key{Row: 3}, v)
	c.Get(Key{Row: 1}, dst) // refresh 1
	c.Put(Key{Row: 4}, v)   // should evict 2 (LRU)
	if !c.Contains(Key{Row: 1}) {
		t.Fatal("recently used entry evicted")
	}
	if c.Contains(Key{Row: 2}) {
		t.Fatal("LRU entry survived")
	}
}

func TestMemOptimizedClockEviction(t *testing.T) {
	c := NewMemOptimized(8*(255+memMetaPerSlot), 255) // exactly one set of 8 ways
	v := make([]byte, 64)
	for i := 0; i < 64; i++ {
		c.Put(Key{Row: int64(i)}, v)
	}
	s := c.Stats()
	if s.Evictions == 0 {
		t.Fatal("full set must evict")
	}
	if s.Items > 8 {
		t.Fatalf("items %d exceed capacity", s.Items)
	}
}

func TestMemOptimizedRejectsOversized(t *testing.T) {
	c := NewMemOptimized(1<<16, 64)
	c.Put(Key{Row: 1}, make([]byte, 100))
	if c.Stats().Rejected != 1 {
		t.Fatal("oversized value should be rejected")
	}
	if c.Contains(Key{Row: 1}) {
		t.Fatal("oversized value should not be cached")
	}
}

func TestMemOverheadSmallerThanCPU(t *testing.T) {
	// The Fig. 6 rationale: per-item metadata of the memory-optimized
	// cache is far below the CPU-optimized cache's.
	mem := NewMemOptimized(1<<20, 128)
	cpu := NewCPUOptimized(1 << 20)
	v := make([]byte, 64)
	for i := 0; i < 1000; i++ {
		k := Key{Row: int64(i)}
		mem.Put(k, v)
		cpu.Put(k, v)
	}
	ms, cs := mem.Stats(), cpu.Stats()
	memPer := float64(ms.MetaBytes) / float64(ms.Items)
	cpuPer := float64(cs.MetaBytes) / float64(cs.Items)
	if memPer*2 > cpuPer {
		t.Fatalf("mem-opt overhead %.0fB/item should be well under cpu-opt %.0fB/item", memPer, cpuPer)
	}
	// And its lookups cost more CPU.
	if mem.CPUCostPerGet() <= cpu.CPUCostPerGet() {
		t.Fatal("mem-opt lookups should cost more CPU than cpu-opt")
	}
}

func TestDualRouting(t *testing.T) {
	d := NewDual(1<<16, 1<<16, 255)
	small := make([]byte, 100)
	large := make([]byte, 300)
	d.Put(Key{Row: 1}, small)
	d.Put(Key{Row: 2}, large)
	if d.RouteSize(100) != "mem" || d.RouteSize(300) != "cpu" {
		t.Fatal("routing thresholds wrong")
	}
	dst := make([]byte, 512)
	if n, ok := d.Get(Key{Row: 1}, dst); !ok || n != 100 {
		t.Fatal("small row lost")
	}
	if n, ok := d.Get(Key{Row: 2}, dst); !ok || n != 300 {
		t.Fatal("large row lost")
	}
}

func TestDualMissAccounting(t *testing.T) {
	d := NewDual(1<<16, 1<<16, 255)
	dst := make([]byte, 16)
	d.Put(Key{Row: 1}, []byte{1})
	d.Get(Key{Row: 1}, dst) // hit
	d.Get(Key{Row: 2}, dst) // miss
	s := d.Stats()
	if s.Hits != 1 || s.Misses != 1 {
		t.Fatalf("dual should count 1 hit 1 miss, got %+v", s)
	}
	if s.HitRate() != 0.5 {
		t.Fatalf("hit rate %g", s.HitRate())
	}
}

func TestFlushDirty(t *testing.T) {
	for name, c := range map[string]RowCache{
		"mem":  NewMemOptimized(1<<16, 255),
		"cpu":  NewCPUOptimized(1 << 16),
		"dual": NewDual(1<<16, 1<<16, 255),
	} {
		c.Put(Key{Row: 1}, []byte{1})
		c.PutDirty(Key{Row: 2}, []byte{2})
		c.PutDirty(Key{Row: 3}, []byte{3})
		var flushed []int64
		c.FlushDirty(func(k Key, v []byte) { flushed = append(flushed, k.Row) })
		if len(flushed) != 2 {
			t.Fatalf("%s: flushed %v, want rows 2,3", name, flushed)
		}
		// Second flush is a no-op.
		flushed = nil
		c.FlushDirty(func(k Key, v []byte) { flushed = append(flushed, k.Row) })
		if len(flushed) != 0 {
			t.Fatalf("%s: dirty bits not cleared", name)
		}
	}
}

func TestReset(t *testing.T) {
	for name, c := range map[string]RowCache{
		"mem":  NewMemOptimized(1<<16, 255),
		"cpu":  NewCPUOptimized(1 << 16),
		"dual": NewDual(1<<16, 1<<16, 255),
	} {
		c.Put(Key{Row: 1}, []byte{1})
		c.Reset()
		if c.Contains(Key{Row: 1}) {
			t.Fatalf("%s: reset kept entries", name)
		}
		if s := c.Stats(); s.Items != 0 || s.UsedBytes != 0 {
			t.Fatalf("%s: reset kept stats %+v", name, s)
		}
	}
}

func TestPartitionedSpread(t *testing.T) {
	p, err := NewPartitioned(8, 1<<20, func(b int64) RowCache { return NewCPUOptimized(b) })
	if err != nil {
		t.Fatal(err)
	}
	v := make([]byte, 32)
	for i := 0; i < 1000; i++ {
		p.Put(Key{Table: int32(i % 5), Row: int64(i)}, v)
	}
	// All partitions should hold something (hash spreading).
	for i, part := range p.parts {
		if part.Stats().Items == 0 {
			t.Fatalf("partition %d empty", i)
		}
	}
	if p.Stats().Items != 1000 {
		t.Fatalf("total items %d", p.Stats().Items)
	}
}

func TestCacheGetReturnsWhatWasPut(t *testing.T) {
	// Property: for a cache big enough to never evict, Get returns the
	// exact bytes of the latest Put.
	c := NewDual(1<<22, 1<<22, 255)
	f := func(table int32, row int64, val []byte) bool {
		if len(val) == 0 || len(val) > 500 {
			return true
		}
		k := Key{Table: table, Row: row}
		c.Put(k, val)
		dst := make([]byte, 512)
		n, ok := c.Get(k, dst)
		if !ok || n != len(val) {
			return false
		}
		for i := range val {
			if dst[i] != val[i] {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

func TestKeyHashSpread(t *testing.T) {
	// Adjacent rows should not collide into the same bucket pattern.
	seen := make(map[uint64]bool)
	for i := int64(0); i < 10000; i++ {
		h := Key{Table: 3, Row: i}.hash()
		if seen[h] {
			t.Fatalf("hash collision at row %d", i)
		}
		seen[h] = true
	}
}

func TestStatsAdd(t *testing.T) {
	a := Stats{Hits: 1, Misses: 2, Items: 3}
	b := Stats{Hits: 10, Misses: 20, Items: 30}
	c := a.add(b)
	if c.Hits != 11 || c.Misses != 22 || c.Items != 33 {
		t.Fatalf("add %+v", c)
	}
}

func ExampleDual() {
	d := NewDual(1<<16, 1<<16, 255)
	d.Put(Key{Table: 1, Row: 7}, []byte{42})
	dst := make([]byte, 8)
	n, ok := d.Get(Key{Table: 1, Row: 7}, dst)
	fmt.Println(n, ok, dst[0])
	// Output: 1 true 42
}
