package cache

import "container/list"

// CPUOptimized is the CPU-optimized row cache of §4.3: a hash map with an
// intrusive LRU list. Operations are O(1) but each item pays map-bucket and
// list-node overhead (~112 B accounted per item), so fewer rows fit in the
// same FM budget than the memory-optimized design — exactly the trade-off
// of Fig. 6.
type CPUOptimized struct {
	budget int64
	items  map[Key]*list.Element
	lru    *list.List
	stats  Stats
}

type cpuEntry struct {
	key   Key
	val   []byte
	dirty bool
}

// cpuMetaPerItem accounts map bucket + list element + entry header + slice
// header overhead per cached row.
const cpuMetaPerItem = 112

// cpuOptCPUCost is the baseline relative lookup cost (1.0 by definition).
const cpuOptCPUCost = 1.0

// NewCPUOptimized builds a CPU-optimized cache with the given byte budget
// (values + accounted metadata).
func NewCPUOptimized(budget int64) *CPUOptimized {
	if budget < cpuMetaPerItem {
		budget = cpuMetaPerItem
	}
	return &CPUOptimized{
		budget: budget,
		items:  make(map[Key]*list.Element),
		lru:    list.New(),
		stats:  Stats{TotalBytes: budget},
	}
}

// Get copies the value for k into dst.
func (c *CPUOptimized) Get(k Key, dst []byte) (int, bool) {
	el, ok := c.items[k]
	if !ok {
		c.stats.Misses++
		return 0, false
	}
	c.lru.MoveToFront(el)
	e := el.Value.(*cpuEntry)
	copy(dst[:len(e.val)], e.val)
	c.stats.Hits++
	return len(e.val), true
}

// Put inserts or replaces k's value.
func (c *CPUOptimized) Put(k Key, v []byte) { c.put(k, v, false) }

// PutDirty inserts k's value and marks it dirty.
func (c *CPUOptimized) PutDirty(k Key, v []byte) { c.put(k, v, true) }

func (c *CPUOptimized) put(k Key, v []byte, dirty bool) {
	c.stats.Puts++
	if el, ok := c.items[k]; ok {
		e := el.Value.(*cpuEntry)
		c.stats.UsedBytes += int64(len(v) - len(e.val))
		e.val = append(e.val[:0], v...)
		e.dirty = e.dirty || dirty
		c.lru.MoveToFront(el)
		c.evictToFit()
		return
	}
	e := &cpuEntry{key: k, val: append([]byte(nil), v...), dirty: dirty}
	c.items[k] = c.lru.PushFront(e)
	c.stats.UsedBytes += int64(len(v))
	c.stats.MetaBytes += cpuMetaPerItem
	c.stats.Items++
	c.evictToFit()
}

func (c *CPUOptimized) evictToFit() {
	for c.stats.UsedBytes+c.stats.MetaBytes > c.budget && c.lru.Len() > 1 {
		el := c.lru.Back()
		if el == nil {
			return
		}
		e := el.Value.(*cpuEntry)
		c.lru.Remove(el)
		delete(c.items, e.key)
		c.stats.UsedBytes -= int64(len(e.val))
		c.stats.MetaBytes -= cpuMetaPerItem
		c.stats.Items--
		c.stats.Evictions++
	}
}

// FlushDirty invokes fn for each dirty entry and clears the flags.
func (c *CPUOptimized) FlushDirty(fn func(k Key, v []byte)) {
	for el := c.lru.Front(); el != nil; el = el.Next() {
		e := el.Value.(*cpuEntry)
		if e.dirty {
			fn(e.key, e.val)
			e.dirty = false
		}
	}
}

// Contains reports residency without touching recency or stats.
func (c *CPUOptimized) Contains(k Key) bool {
	_, ok := c.items[k]
	return ok
}

// Stats returns a snapshot of counters.
func (c *CPUOptimized) Stats() Stats { return c.stats }

// Reset drops all entries and counters.
func (c *CPUOptimized) Reset() {
	c.items = make(map[Key]*list.Element)
	c.lru = list.New()
	c.stats = Stats{TotalBytes: c.budget}
}

// CPUCostPerGet returns the relative lookup cost.
func (c *CPUOptimized) CPUCostPerGet() float64 { return cpuOptCPUCost }
