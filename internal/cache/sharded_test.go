package cache

import "testing"

func TestTableShardedRouting(t *testing.T) {
	s := NewTableSharded()
	s.Add(1, NewCPUOptimized(1<<16))
	s.Add(2, NewCPUOptimized(1<<16))
	v1 := []byte{1, 2, 3}
	v2 := []byte{4, 5}
	s.Put(Key{Table: 1, Row: 7}, v1)
	s.Put(Key{Table: 2, Row: 7}, v2)
	dst := make([]byte, 8)
	n, ok := s.Get(Key{Table: 1, Row: 7}, dst)
	if !ok || n != 3 || dst[0] != 1 {
		t.Fatalf("table 1 row lost: n=%d ok=%v", n, ok)
	}
	n, ok = s.Get(Key{Table: 2, Row: 7}, dst)
	if !ok || n != 2 || dst[0] != 4 {
		t.Fatalf("table 2 row lost: n=%d ok=%v", n, ok)
	}
	// Same row id in different tables must be independent entries.
	if !s.Contains(Key{Table: 1, Row: 7}) || !s.Contains(Key{Table: 2, Row: 7}) {
		t.Fatal("contains must route per table")
	}
	if got := s.Stats(); got.Items != 2 || got.Hits != 2 {
		t.Fatalf("aggregate stats %+v", got)
	}
	if len(s.Tables()) != 2 {
		t.Fatal("tables accessor")
	}
}

func TestTableShardedUnknownTable(t *testing.T) {
	s := NewTableSharded()
	s.Add(1, NewCPUOptimized(1<<16))
	s.Put(Key{Table: 9, Row: 1}, []byte{1}) // dropped
	if _, ok := s.Get(Key{Table: 9, Row: 1}, make([]byte, 4)); ok {
		t.Fatal("unknown table must miss")
	}
	if s.Contains(Key{Table: 9, Row: 1}) {
		t.Fatal("unknown table must not contain")
	}
	s.PutDirty(Key{Table: 9, Row: 1}, []byte{1}) // dropped, must not panic
}

func TestTableShardedFlushOrder(t *testing.T) {
	s := NewTableSharded()
	s.Add(5, NewCPUOptimized(1<<16))
	s.Add(2, NewCPUOptimized(1<<16))
	s.PutDirty(Key{Table: 2, Row: 1}, []byte{2})
	s.PutDirty(Key{Table: 5, Row: 1}, []byte{5})
	var order []int32
	s.FlushDirty(func(k Key, v []byte) { order = append(order, k.Table) })
	// Registration order (5 then 2), not key order.
	if len(order) != 2 || order[0] != 5 || order[1] != 2 {
		t.Fatalf("flush order %v, want [5 2]", order)
	}
	// Flushed entries must be clean now.
	count := 0
	s.FlushDirty(func(Key, []byte) { count++ })
	if count != 0 {
		t.Fatalf("second flush saw %d dirty entries", count)
	}
}

func TestTableShardedResetAndReplace(t *testing.T) {
	s := NewTableSharded()
	s.Add(1, NewCPUOptimized(1<<16))
	s.Put(Key{Table: 1, Row: 1}, []byte{1})
	s.Reset()
	if s.Stats().Items != 0 {
		t.Fatal("reset must clear shards")
	}
	// Re-adding replaces in place.
	s.Add(1, NewMemOptimized(1<<16, 64))
	if s.CPUCostPerGet() != memOptCPUCost {
		t.Fatal("replaced shard should serve table 1")
	}
	if len(s.Tables()) != 1 {
		t.Fatal("replace must not duplicate the table entry")
	}
}

func TestTableShardedEmpty(t *testing.T) {
	s := NewTableSharded()
	if s.CPUCostPerGet() != 1.0 {
		t.Fatal("empty sharded cache cost model")
	}
	if got := s.Stats(); got != (Stats{}) {
		t.Fatalf("empty stats %+v", got)
	}
}
