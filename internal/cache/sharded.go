package cache

// TableSharded routes every key to a per-table shard. It is the cache
// organization behind the parallel query engine: one embedding operator
// touches exactly one table, so giving each table its own RowCache lets
// independent operators probe and fill their shards concurrently with no
// shared locks — and, because no state is shared across shards, cache
// contents evolve identically no matter in which order (or on how many
// workers) the operators run. That order-independence is what keeps
// virtual-time accounting bit-identical between Parallelism=1 and
// Parallelism=N.
//
// Shards are registered with Add in a fixed order; aggregate operations
// (Stats, FlushDirty, Reset) iterate in that order so flush-driven device
// writes stay deterministic. Keys whose table has no shard miss on Get and
// are dropped on Put.
type TableSharded struct {
	idx    map[int32]int
	tables []int32
	shards []RowCache
}

var _ RowCache = (*TableSharded)(nil)

// NewTableSharded builds an empty table-sharded cache.
func NewTableSharded() *TableSharded {
	return &TableSharded{idx: make(map[int32]int)}
}

// Add registers the shard serving table. Re-adding a table replaces its
// shard in place, keeping the original iteration position.
func (t *TableSharded) Add(table int32, shard RowCache) {
	if i, ok := t.idx[table]; ok {
		t.shards[i] = shard
		return
	}
	t.idx[table] = len(t.shards)
	t.tables = append(t.tables, table)
	t.shards = append(t.shards, shard)
}

// Shard returns the RowCache serving table, or nil if none is registered.
func (t *TableSharded) Shard(table int32) RowCache {
	if i, ok := t.idx[table]; ok {
		return t.shards[i]
	}
	return nil
}

// Tables returns the registered table IDs in registration order.
func (t *TableSharded) Tables() []int32 { return t.tables }

// Get delegates to the key's table shard; keys without a shard miss.
func (t *TableSharded) Get(k Key, dst []byte) (int, bool) {
	if c := t.Shard(k.Table); c != nil {
		return c.Get(k, dst)
	}
	return 0, false
}

// Put delegates to the key's table shard; keys without a shard are dropped.
func (t *TableSharded) Put(k Key, v []byte) {
	if c := t.Shard(k.Table); c != nil {
		c.Put(k, v)
	}
}

// PutDirty delegates to the key's table shard; keys without a shard are
// dropped.
func (t *TableSharded) PutDirty(k Key, v []byte) {
	if c := t.Shard(k.Table); c != nil {
		c.PutDirty(k, v)
	}
}

// FlushDirty flushes every shard in registration order, so write-back IO
// is issued in a deterministic sequence.
func (t *TableSharded) FlushDirty(fn func(k Key, v []byte)) {
	for _, c := range t.shards {
		c.FlushDirty(fn)
	}
}

// Contains delegates to the key's table shard.
func (t *TableSharded) Contains(k Key) bool {
	if c := t.Shard(k.Table); c != nil {
		return c.Contains(k)
	}
	return false
}

// Stats sums all shards in registration order.
func (t *TableSharded) Stats() Stats {
	var s Stats
	for _, c := range t.shards {
		s = s.add(c.Stats())
	}
	return s
}

// Reset clears every shard.
func (t *TableSharded) Reset() {
	for _, c := range t.shards {
		c.Reset()
	}
}

// CPUCostPerGet returns the first shard's cost model (1.0 when empty). Hot
// paths should consult their table's shard directly instead.
func (t *TableSharded) CPUCostPerGet() float64 {
	if len(t.shards) == 0 {
		return 1.0
	}
	return t.shards[0].CPUCostPerGet()
}
