package workload

import (
	"testing"

	"sdm/internal/model"
)

func driftInstance(t *testing.T) *model.Instance {
	t.Helper()
	cfg := model.M1()
	cfg.NumUserTables = 6
	cfg.NumItemTables = 2
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 21
	in, err := model.Build(cfg, 1, 5)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func traceKey(qs []Query) string {
	var b []byte
	for _, q := range qs {
		b = append(b, byte(q.UserID), byte(q.UserID>>8), byte(q.UserID>>16))
		for _, op := range q.Ops {
			for _, pool := range op.Pools {
				b = append(b, byte(len(pool)))
				for _, idx := range pool {
					b = append(b, byte(idx), byte(idx>>8))
				}
			}
		}
	}
	return string(b)
}

func TestDriftDeterministic(t *testing.T) {
	// Same seed + same drift config ⇒ bit-identical non-stationary trace.
	in := driftInstance(t)
	cfg := Config{
		Seed: 9, NumUsers: 500,
		Drift: DriftConfig{
			PhaseQueries: 40, HotTables: 2,
			DiurnalQueries: 60, DiurnalAmp: 0.2,
			FlashEvery: 50, FlashLen: 10,
		},
	}
	mk := func() []Query {
		g, err := NewGenerator(in, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return g.GenerateTrace(200)
	}
	if traceKey(mk()) != traceKey(mk()) {
		t.Fatal("drifting traces diverged for the same seed")
	}
}

func TestZeroDriftMatchesStationary(t *testing.T) {
	// The zero DriftConfig must reproduce the legacy stream exactly.
	in := driftInstance(t)
	g1, err := NewGenerator(in, Config{Seed: 3, NumUsers: 400})
	if err != nil {
		t.Fatal(err)
	}
	g2, err := NewGenerator(in, Config{Seed: 3, NumUsers: 400, Drift: DriftConfig{}})
	if err != nil {
		t.Fatal(err)
	}
	if traceKey(g1.GenerateTrace(100)) != traceKey(g2.GenerateTrace(100)) {
		t.Fatal("zero drift config changed the stationary stream")
	}
}

func TestHotSetRotationShiftsUsersAndTables(t *testing.T) {
	in := driftInstance(t)
	g, err := NewGenerator(in, Config{
		Seed: 7, NumUsers: 1000, UserAlpha: 1.0,
		Drift: DriftConfig{PhaseQueries: 100, HotTables: 2, HotBoost: 4, ColdShrink: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	hot0 := g.HotUserTables()
	if len(hot0) != 2 {
		t.Fatalf("expected 2 spotlight tables, got %v", hot0)
	}
	phase0 := g.GenerateTrace(100) // consumes exactly one phase
	if g.Phase() != 1 {
		t.Fatalf("phase after 100 queries = %d, want 1", g.Phase())
	}
	hot1 := g.HotUserTables()
	if hot0[0] == hot1[0] {
		t.Fatalf("spotlight did not rotate: %v vs %v", hot0, hot1)
	}
	phase1 := g.GenerateTrace(100)

	// The spotlight tables of each phase must carry more lookups than they
	// do when cold.
	lookups := func(qs []Query, table int) int {
		var n int
		for _, q := range qs {
			for _, op := range q.Ops {
				if op.Table == table {
					n += op.TotalLookups()
				}
			}
		}
		return n
	}
	for _, tab := range hot0 {
		if l0, l1 := lookups(phase0, tab), lookups(phase1, tab); l0 <= 2*l1 {
			t.Fatalf("table %d: hot-phase lookups %d not ≫ cold-phase %d", tab, l0, l1)
		}
	}

	// The hot user cohort rotates too: the most popular users of phase 0
	// and phase 1 should barely overlap.
	top := func(qs []Query) map[int64]bool {
		counts := map[int64]int{}
		for _, q := range qs {
			counts[q.UserID]++
		}
		out := map[int64]bool{}
		for u, c := range counts {
			if c >= 3 {
				out[u] = true
			}
		}
		return out
	}
	t0, t1 := top(phase0), top(phase1)
	overlap := 0
	for u := range t0 {
		if t1[u] {
			overlap++
		}
	}
	if len(t0) == 0 || overlap*2 > len(t0) {
		t.Fatalf("hot users did not rotate: %d of %d persisted", overlap, len(t0))
	}
}

func TestItemDriftZeroValueBitIdentical(t *testing.T) {
	// User-side drift alone (HotItemTables == 0) must leave the item
	// stream bit-identical to a generator without the item extension:
	// driftItem is the identity and draws no randomness.
	in := driftInstance(t)
	mk := func(d DriftConfig) []Query {
		g, err := NewGenerator(in, Config{Seed: 13, NumUsers: 500, Drift: d})
		if err != nil {
			t.Fatal(err)
		}
		g.ForceRotation() // exercise a non-zero phase
		return g.GenerateTrace(150)
	}
	base := mk(DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.5})
	same := mk(DriftConfig{HotTables: 2, HotBoost: 4, ColdShrink: 0.5, HotItemTables: 0})
	if traceKey(base) != traceKey(same) {
		t.Fatal("HotItemTables zero value changed the stream")
	}
}

func TestItemDriftRekeysItemSequences(t *testing.T) {
	// With item drift enabled, a rotation re-keys the rank→item bijection:
	// the item-table row sequences change across the phase boundary, and
	// the spotlight rotates across the item tables.
	in := driftInstance(t)
	g, err := NewGenerator(in, Config{
		Seed: 7, NumUsers: 1000,
		Drift: DriftConfig{HotItemTables: 1, HotBoost: 4, ColdShrink: 0.5},
	})
	if err != nil {
		t.Fatal(err)
	}
	nUser := in.Config.NumUserTables
	hot0 := g.HotItemTables()
	if len(hot0) != 1 || hot0[0] < nUser {
		t.Fatalf("item spotlight %v not an item table (nUser=%d)", hot0, nUser)
	}
	phase0 := g.GenerateTrace(150)
	g.ForceRotation()
	hot1 := g.HotItemTables()
	if hot0[0] == hot1[0] {
		t.Fatalf("item spotlight did not rotate: %v vs %v", hot0, hot1)
	}
	phase1 := g.GenerateTrace(150)

	// The spotlight item table carries more lookups while hot.
	lookups := func(qs []Query, table int) int {
		var n int
		for _, q := range qs {
			for _, op := range q.Ops {
				if op.Table == table {
					n += op.TotalLookups()
				}
			}
		}
		return n
	}
	if l0, l1 := lookups(phase0, hot0[0]), lookups(phase1, hot0[0]); l0 <= 2*l1 {
		t.Fatalf("item table %d: hot-phase lookups %d not ≫ cold-phase %d", hot0[0], l0, l1)
	}

	// The popular item-keyed row sequences rotate: each pool is an
	// item entity's deterministic base sequence, so popular items show up
	// as repeated identical pools. After the re-key a fresh cohort is
	// popular, so phase 0's frequent pools barely recur in phase 1.
	hotPools := func(qs []Query, table int) map[string]bool {
		counts := map[string]int{}
		for _, q := range qs {
			for _, op := range q.Ops {
				if op.Table != table {
					continue
				}
				for _, pool := range op.Pools {
					counts[traceKey([]Query{{Ops: []TableOp{{Table: table, Pools: [][]int64{pool}}}}})]++
				}
			}
		}
		out := map[string]bool{}
		for p, c := range counts {
			if c >= 3 {
				out[p] = true
			}
		}
		return out
	}
	itemTab := nUser // first item table, cold in both phases
	p0, p1 := hotPools(phase0, itemTab), hotPools(phase1, itemTab)
	overlap := 0
	for p := range p0 {
		if p1[p] {
			overlap++
		}
	}
	if len(p0) == 0 || overlap*2 > len(p0) {
		t.Fatalf("popular item sequences did not rotate: %d of %d persisted", overlap, len(p0))
	}
}

func TestForceRotation(t *testing.T) {
	in := driftInstance(t)
	g, err := NewGenerator(in, Config{Seed: 11, NumUsers: 300})
	if err != nil {
		t.Fatal(err)
	}
	g.GenerateTrace(10)
	if g.Phase() != 0 {
		t.Fatalf("driftless generator advanced phase: %d", g.Phase())
	}
	g.ForceRotation()
	if g.Phase() != 1 {
		t.Fatalf("forced rotation not reflected: %d", g.Phase())
	}
	if g.Queries() != 10 {
		t.Fatalf("query count %d, want 10", g.Queries())
	}
}

func TestFlashCrowdIntroducesColdUsers(t *testing.T) {
	in := driftInstance(t)
	users := int64(200)
	g, err := NewGenerator(in, Config{
		Seed: 13, NumUsers: users,
		Drift: DriftConfig{FlashEvery: 50, FlashLen: 25, FlashFrac: 0.8, FlashUsers: 16},
	})
	if err != nil {
		t.Fatal(err)
	}
	qs := g.GenerateTrace(100)
	var flash int
	for _, q := range qs {
		if q.UserID >= users {
			flash++
		}
	}
	if flash == 0 {
		t.Fatal("flash crowd never fired")
	}
	if flash > 60 {
		t.Fatalf("flash crowd dominated the stream: %d of 100", flash)
	}
}

func TestDiurnalShiftFlattensOffPeak(t *testing.T) {
	// Negative sine half-cycle lowers alpha → more unique users.
	in := driftInstance(t)
	uniq := func(amp float64) int {
		g, err := NewGenerator(in, Config{
			Seed: 17, NumUsers: 5000, UserAlpha: 1.2,
			Drift: DriftConfig{DiurnalQueries: 400, DiurnalAmp: amp},
		})
		if err != nil {
			t.Fatal(err)
		}
		g.GenerateTrace(200) // advance into the trough half-cycle
		seen := map[int64]bool{}
		for _, q := range g.GenerateTrace(150) {
			seen[q.UserID] = true
		}
		return len(seen)
	}
	if flat, base := uniq(0.9), uniq(0); flat <= base {
		t.Fatalf("off-peak flattening should raise unique users: %d vs %d", flat, base)
	}
}

func TestDriftConfigValidation(t *testing.T) {
	in := driftInstance(t)
	bad := []DriftConfig{
		{PhaseQueries: -1},
		{HotTables: -2},
		{FlashEvery: 10, FlashLen: 20},
		{FlashEvery: 10, FlashFrac: 1.5},
	}
	for _, d := range bad {
		if _, err := NewGenerator(in, Config{Seed: 1, Drift: d}); err == nil {
			t.Fatalf("drift config %+v should be rejected", d)
		}
	}
}
