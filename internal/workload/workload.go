// Package workload synthesizes DLRM inference query streams and provides
// the locality analyzers behind the paper's characterization study:
// temporal-locality CDFs (Fig. 4), the per-host locality uplift from sticky
// user→host routing (Fig. 4c), and the spatial-locality heatmap metric
// (Fig. 5, unique indices per unique 4 KB block).
//
// Queries follow the §2.2 semantics: the user side is looked up once per
// query (B_U = 1) while the item side is looked up for a batch of B_I
// candidate items. Per-table indices are drawn from Zipf distributions
// whose ranks are scattered across the table by a bijective permutation, so
// temporal locality is high (power law) while spatial locality is low —
// both as measured in the paper.
package workload

import (
	"fmt"

	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/xrand"
)

// TableOp is the index work for one embedding operator in one query:
// Pools[b] holds the indices pooled for batch element b. User ops have one
// pool; item ops have ItemBatch pools.
type TableOp struct {
	// Table indexes into the model instance's Tables slice.
	Table int
	Pools [][]int64
}

// TotalLookups returns the number of row lookups in the op.
func (op TableOp) TotalLookups() int {
	var n int
	for _, p := range op.Pools {
		n += len(p)
	}
	return n
}

// Query is one inference request: a user and the ops across all tables.
// Class is the query's SLO class (0 unless Config.SLOClasses partitions
// the population), consumed by the cluster front-end's admission control
// and per-class tail accounting.
type Query struct {
	UserID int64
	Class  int
	Ops    []TableOp
}

// Lookups returns the total row lookups of the query.
func (q Query) Lookups() int {
	var n int
	for _, op := range q.Ops {
		n += op.TotalLookups()
	}
	return n
}

// Clone returns a deep copy of q with independent storage (one flat index
// backing shared by the copy's pools), safe to retain after the source —
// e.g. a NextShared arena query — is reused.
func (q Query) Clone() Query {
	var b QueryBuf
	b.CopyFrom(q)
	return b.Q
}

// QueryBuf is reusable deep-copy storage for queries: CopyFrom rebuilds
// b.Q as a deep copy of the source, reusing the buffer's previous
// allocations when they are large enough. Cluster front-ends recycle
// QueryBufs to hand arena-backed queries to asynchronous host goroutines
// without per-query garbage.
type QueryBuf struct {
	// Q is the current copy; valid until the next CopyFrom on this buffer.
	Q Query

	idx   []int64
	pools [][]int64
	ops   []TableOp
}

// Size reports the deep-copy storage a query needs: total indices, total
// pools and op count. Callers pooling QueryBufs use it to track high-water
// marks and Reserve capacity up front, so a recycled buffer reallocates at
// most once per new maximum instead of creeping up query by query.
func (q Query) Size() (nIdx, nPools, nOps int) {
	for _, op := range q.Ops {
		nPools += len(op.Pools)
		for _, p := range op.Pools {
			nIdx += len(p)
		}
	}
	return nIdx, nPools, len(q.Ops)
}

// Reserve grows b's storage to hold at least nIdx indices, nPools pools
// and nOps ops, preserving nothing (b.Q is invalidated).
func (b *QueryBuf) Reserve(nIdx, nPools, nOps int) {
	if cap(b.idx) < nIdx {
		b.idx = make([]int64, 0, nIdx)
	}
	if cap(b.pools) < nPools {
		b.pools = make([][]int64, 0, nPools)
	}
	if cap(b.ops) < nOps {
		b.ops = make([]TableOp, 0, nOps)
	}
}

// CopyFrom deep-copies src into b's storage and rebuilds b.Q. The copy
// shares nothing with src; b.Q and everything it references remain valid
// until the next CopyFrom.
func (b *QueryBuf) CopyFrom(src Query) {
	nIdx, nPools := 0, 0
	for _, op := range src.Ops {
		nPools += len(op.Pools)
		for _, p := range op.Pools {
			nIdx += len(p)
		}
	}
	b.Reserve(nIdx, nPools, len(src.Ops))
	idx := b.idx[:0]
	for _, op := range src.Ops {
		for _, p := range op.Pools {
			idx = append(idx, p...)
		}
	}
	b.idx = idx
	// idx is fully built (capacity pre-sized above), so the pool
	// subslices cut here stay valid.
	pools := b.pools[:0]
	off := 0
	for _, op := range src.Ops {
		for _, p := range op.Pools {
			pools = append(pools, idx[off:off+len(p):off+len(p)])
			off += len(p)
		}
	}
	b.pools = pools
	ops := b.ops[:0]
	pi := 0
	for _, op := range src.Ops {
		n := len(op.Pools)
		ops = append(ops, TableOp{Table: op.Table, Pools: pools[pi : pi+n : pi+n]})
		pi += n
	}
	b.ops = ops
	b.Q = Query{UserID: src.UserID, Class: src.Class, Ops: ops}
}

// Config tunes the generator.
type Config struct {
	// NumUsers/NumItems are the active populations. Users and items are
	// drawn from Zipf distributions over these populations, so popular
	// users/items repeat — the source of pooled-cache hits (§4.4).
	NumUsers int64
	NumItems int64
	// UserAlpha/ItemAlpha are the popularity skews of users and items.
	UserAlpha float64
	ItemAlpha float64
	// SeqChurn is the probability that one index of a user's (or item's)
	// base sequence is resampled for this query, breaking full-sequence
	// pooled-cache hits (models feature drift between queries).
	SeqChurn float64
	// ItemBatch overrides the model's item batch if > 0; InferenceEval
	// (Table 2) sets user batch == item batch instead, see EvalMode.
	ItemBatch int
	// EvalMode switches to the InferenceEval usecase of Table 2:
	// user batch == item batch > 1 (accuracy validation traffic).
	EvalMode bool
	// Spatial controls index scattering: false (default) applies the
	// bijective permutation (low spatial locality, as measured in
	// Fig. 5); true keeps hot ranks contiguous (high spatial locality).
	Spatial bool
	// Drift makes the stream non-stationary (hot-set rotation, diurnal
	// user-mix shift, flash crowds). The zero value is fully stationary.
	Drift DriftConfig
	// SLOClasses partitions the user population into that many service
	// classes, tagged on every Query.Class by sticky user hash
	// (UserPartition) — deterministic, no extra RNG draws, so enabling
	// classes never perturbs the generated stream. <= 1 leaves every
	// query in class 0.
	SLOClasses int
	Seed       uint64
}

// Generator produces queries for a model instance.
type Generator struct {
	inst  *model.Instance
	cfg   Config
	rng   *xrand.RNG
	zipfs []*xrand.Zipf     // per table
	perms []*xrand.Permuter // per table
	userZ *xrand.Zipf
	itemZ *xrand.Zipf

	// seqRNG is the per-pool sequence generator baseSequence reseeds for
	// every (entity, table) pair. A value field rather than a fresh
	// xrand.New per pool: reseeding draws the identical sequence while
	// keeping the hot path free of per-pool RNG allocations.
	seqRNG xrand.RNG

	// Arena behind NextShared: one flat []int64 backs every pool of the
	// current query, and ops/pools/ends keep their capacity across
	// queries. Pool boundaries are recorded as offsets (arenaEnds) while
	// arenaIdx grows, then fixed up into subslices once the query's index
	// count is final — so append growth never invalidates a pool.
	arenaIdx   []int64
	arenaEnds  []int
	arenaPools [][]int64
	arenaOps   []TableOp
	opPoolN    []int // pools per op, parallel to arenaOps

	// Drift state: generated-query count, forced rotations, and the
	// current phase's rank→user and rank→item bijections (lazily rebuilt
	// per phase).
	queries      int
	forcedPhases int
	userMap      *xrand.Permuter
	userMapPhase int
	itemMap      *xrand.Permuter
	itemMapPhase int
	userAlpha    float64 // skew the current userZ was built with
}

// NewGenerator builds a generator over inst.
func NewGenerator(inst *model.Instance, cfg Config) (*Generator, error) {
	if cfg.NumUsers <= 0 {
		cfg.NumUsers = 100000
	}
	if cfg.NumItems <= 0 {
		cfg.NumItems = 10000
	}
	if cfg.UserAlpha == 0 {
		cfg.UserAlpha = 0.9
	}
	if cfg.ItemAlpha == 0 {
		cfg.ItemAlpha = 1.1
	}
	if cfg.SLOClasses < 0 {
		return nil, fmt.Errorf("workload: SLOClasses must be >= 0, got %d", cfg.SLOClasses)
	}
	drift, err := cfg.Drift.validate()
	if err != nil {
		return nil, err
	}
	cfg.Drift = drift
	g := &Generator{
		inst:  inst,
		cfg:   cfg,
		rng:   xrand.New(cfg.Seed),
		zipfs: make([]*xrand.Zipf, len(inst.Tables)),
		perms: make([]*xrand.Permuter, len(inst.Tables)),
		userZ: xrand.NewZipf(cfg.NumUsers, cfg.UserAlpha),
		itemZ: xrand.NewZipf(cfg.NumItems, cfg.ItemAlpha),
	}
	g.userAlpha = cfg.UserAlpha
	for i, s := range inst.Tables {
		g.zipfs[i] = xrand.NewZipf(s.Rows, s.Alpha)
		g.perms[i] = xrand.NewPermuter(s.Rows, cfg.Seed^uint64(s.ID)<<17)
		g.perms[i].Identity = cfg.Spatial
	}
	return g, nil
}

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// Instance returns the model the generator targets.
func (g *Generator) Instance() *model.Instance { return g.inst }

// itemBatch resolves the effective item batch size.
func (g *Generator) itemBatch() int {
	if g.cfg.ItemBatch > 0 {
		return g.cfg.ItemBatch
	}
	return g.inst.Config.ItemBatch
}

// poolLen draws a per-op pooling length around the table's average.
func (g *Generator) poolLen(rng *xrand.RNG, pf float64) int {
	// PF spread: uniform in [0.5·PF, 1.5·PF], minimum 1.
	n := int(pf * (0.5 + rng.Float64()))
	if n < 1 {
		n = 1
	}
	return n
}

// baseSequence appends entity e's deterministic index sequence for table t
// to the arena, optionally churned by one resampled index. boost scales
// the table's pooling factor (1 outside drift phases). The RNG draw
// sequence is byte-identical to the historical per-pool xrand.New path:
// Seed-ing the reused value RNG reproduces New's state exactly.
func (g *Generator) baseSequence(table int, entity int64, churn bool, boost float64) {
	s := g.inst.Tables[table]
	g.seqRNG.Seed(g.cfg.Seed ^ uint64(entity)*0x9e3779b97f4a7c15 ^ uint64(s.ID)<<40)
	n := g.poolLen(&g.seqRNG, s.PoolingFactor*boost)
	start := len(g.arenaIdx)
	for i := 0; i < n; i++ {
		g.arenaIdx = append(g.arenaIdx, g.perms[table].Map(g.zipfs[table].Rank(&g.seqRNG)))
	}
	if churn {
		g.arenaIdx[start+g.rng.Intn(n)] = g.perms[table].Map(g.zipfs[table].Rank(g.rng))
	}
	g.arenaEnds = append(g.arenaEnds, len(g.arenaIdx))
}

// NextShared generates one query into the generator's internal arena and
// returns it without allocating: the returned Query (its Ops, Pools and
// index slices) is valid only until the next NextShared/Next call on this
// generator, which reuses the same storage. Callers that retain or hand
// the query to concurrent executors must deep-copy first (Query.Clone, or
// QueryBuf.CopyFrom for allocation-free recycling). The RNG draw sequence
// is identical to Next, so mixing the two never perturbs the stream.
func (g *Generator) NextShared() Query {
	if a := g.diurnalAlpha(); a != g.userAlpha {
		g.userZ = xrand.NewZipf(g.cfg.NumUsers, a)
		g.userAlpha = a
	}
	user := g.driftUser(g.userZ.Rank(g.rng))
	q := Query{UserID: user}
	if g.cfg.SLOClasses > 1 {
		q.Class = UserPartition(user, g.cfg.SLOClasses)
	}
	nUser := g.inst.Config.NumUserTables
	userBatch := 1
	if g.cfg.EvalMode {
		userBatch = g.itemBatch()
	}
	g.arenaIdx = g.arenaIdx[:0]
	g.arenaEnds = g.arenaEnds[:0]
	g.arenaOps = g.arenaOps[:0]
	g.opPoolN = g.opPoolN[:0]
	for t := 0; t < len(g.inst.Tables); t++ {
		isUser := t < nUser
		batch := g.itemBatch()
		if isUser {
			batch = userBatch
		}
		boost := g.tableBoost(t)
		g.arenaOps = append(g.arenaOps, TableOp{Table: t})
		g.opPoolN = append(g.opPoolN, batch)
		for b := 0; b < batch; b++ {
			var entity int64
			if isUser {
				entity = user
				if g.cfg.EvalMode && b > 0 {
					// Eval batches different users.
					entity = g.driftUser(g.userZ.Rank(g.rng))
				}
			} else {
				entity = g.driftItem(g.itemZ.Rank(g.rng))
			}
			churn := g.cfg.SeqChurn > 0 && g.rng.Float64() < g.cfg.SeqChurn
			g.baseSequence(t, entity, churn, boost)
		}
	}
	// Fix-up: the flat index arena is final, so pool subslices (and the
	// per-op views over them) can be cut without risking append growth.
	g.arenaPools = g.arenaPools[:0]
	start := 0
	for _, end := range g.arenaEnds {
		g.arenaPools = append(g.arenaPools, g.arenaIdx[start:end:end])
		start = end
	}
	pool := 0
	for i := range g.arenaOps {
		n := g.opPoolN[i]
		g.arenaOps[i].Pools = g.arenaPools[pool : pool+n : pool+n]
		pool += n
	}
	q.Ops = g.arenaOps
	g.queries++
	return q
}

// Next generates one query with independent storage (a deep copy of the
// arena state), safe to retain indefinitely. Hot loops that consume each
// query before generating the next should prefer NextShared.
func (g *Generator) Next() Query {
	return g.NextShared().Clone()
}

// NextRouted returns the next query of the shared-population stream along
// with its UserPartition among parts, so offline locality analyses can
// consume one stream partition-aware without re-hashing (the serving-time
// cluster router applies its own consistent hashing instead).
func (g *Generator) NextRouted(parts int) (Query, int) {
	q := g.Next()
	return q, UserPartition(q.UserID, parts)
}

// GenerateTrace produces n queries.
func (g *Generator) GenerateTrace(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Validate checks that every generated index is within its table.
func Validate(inst *model.Instance, qs []Query) error {
	for qi, q := range qs {
		for _, op := range q.Ops {
			if op.Table < 0 || op.Table >= len(inst.Tables) {
				return fmt.Errorf("workload: query %d references table %d of %d", qi, op.Table, len(inst.Tables))
			}
			rows := inst.Tables[op.Table].Rows
			for _, pool := range op.Pools {
				for _, idx := range pool {
					if idx < 0 || idx >= rows {
						return fmt.Errorf("workload: query %d table %d index %d out of %d rows", qi, op.Table, idx, rows)
					}
				}
			}
		}
	}
	return nil
}

// KindOf returns the kind of table t in the instance.
func KindOf(inst *model.Instance, t int) embedding.Kind {
	return inst.Tables[t].Kind
}
