// Package workload synthesizes DLRM inference query streams and provides
// the locality analyzers behind the paper's characterization study:
// temporal-locality CDFs (Fig. 4), the per-host locality uplift from sticky
// user→host routing (Fig. 4c), and the spatial-locality heatmap metric
// (Fig. 5, unique indices per unique 4 KB block).
//
// Queries follow the §2.2 semantics: the user side is looked up once per
// query (B_U = 1) while the item side is looked up for a batch of B_I
// candidate items. Per-table indices are drawn from Zipf distributions
// whose ranks are scattered across the table by a bijective permutation, so
// temporal locality is high (power law) while spatial locality is low —
// both as measured in the paper.
package workload

import (
	"fmt"

	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/xrand"
)

// TableOp is the index work for one embedding operator in one query:
// Pools[b] holds the indices pooled for batch element b. User ops have one
// pool; item ops have ItemBatch pools.
type TableOp struct {
	// Table indexes into the model instance's Tables slice.
	Table int
	Pools [][]int64
}

// TotalLookups returns the number of row lookups in the op.
func (op TableOp) TotalLookups() int {
	var n int
	for _, p := range op.Pools {
		n += len(p)
	}
	return n
}

// Query is one inference request: a user and the ops across all tables.
// Class is the query's SLO class (0 unless Config.SLOClasses partitions
// the population), consumed by the cluster front-end's admission control
// and per-class tail accounting.
type Query struct {
	UserID int64
	Class  int
	Ops    []TableOp
}

// Lookups returns the total row lookups of the query.
func (q Query) Lookups() int {
	var n int
	for _, op := range q.Ops {
		n += op.TotalLookups()
	}
	return n
}

// Config tunes the generator.
type Config struct {
	// NumUsers/NumItems are the active populations. Users and items are
	// drawn from Zipf distributions over these populations, so popular
	// users/items repeat — the source of pooled-cache hits (§4.4).
	NumUsers int64
	NumItems int64
	// UserAlpha/ItemAlpha are the popularity skews of users and items.
	UserAlpha float64
	ItemAlpha float64
	// SeqChurn is the probability that one index of a user's (or item's)
	// base sequence is resampled for this query, breaking full-sequence
	// pooled-cache hits (models feature drift between queries).
	SeqChurn float64
	// ItemBatch overrides the model's item batch if > 0; InferenceEval
	// (Table 2) sets user batch == item batch instead, see EvalMode.
	ItemBatch int
	// EvalMode switches to the InferenceEval usecase of Table 2:
	// user batch == item batch > 1 (accuracy validation traffic).
	EvalMode bool
	// Spatial controls index scattering: false (default) applies the
	// bijective permutation (low spatial locality, as measured in
	// Fig. 5); true keeps hot ranks contiguous (high spatial locality).
	Spatial bool
	// Drift makes the stream non-stationary (hot-set rotation, diurnal
	// user-mix shift, flash crowds). The zero value is fully stationary.
	Drift DriftConfig
	// SLOClasses partitions the user population into that many service
	// classes, tagged on every Query.Class by sticky user hash
	// (UserPartition) — deterministic, no extra RNG draws, so enabling
	// classes never perturbs the generated stream. <= 1 leaves every
	// query in class 0.
	SLOClasses int
	Seed       uint64
}

// Generator produces queries for a model instance.
type Generator struct {
	inst  *model.Instance
	cfg   Config
	rng   *xrand.RNG
	zipfs []*xrand.Zipf     // per table
	perms []*xrand.Permuter // per table
	userZ *xrand.Zipf
	itemZ *xrand.Zipf

	// Drift state: generated-query count, forced rotations, and the
	// current phase's rank→user and rank→item bijections (lazily rebuilt
	// per phase).
	queries      int
	forcedPhases int
	userMap      *xrand.Permuter
	userMapPhase int
	itemMap      *xrand.Permuter
	itemMapPhase int
	userAlpha    float64 // skew the current userZ was built with
}

// NewGenerator builds a generator over inst.
func NewGenerator(inst *model.Instance, cfg Config) (*Generator, error) {
	if cfg.NumUsers <= 0 {
		cfg.NumUsers = 100000
	}
	if cfg.NumItems <= 0 {
		cfg.NumItems = 10000
	}
	if cfg.UserAlpha == 0 {
		cfg.UserAlpha = 0.9
	}
	if cfg.ItemAlpha == 0 {
		cfg.ItemAlpha = 1.1
	}
	if cfg.SLOClasses < 0 {
		return nil, fmt.Errorf("workload: SLOClasses must be >= 0, got %d", cfg.SLOClasses)
	}
	drift, err := cfg.Drift.validate()
	if err != nil {
		return nil, err
	}
	cfg.Drift = drift
	g := &Generator{
		inst:  inst,
		cfg:   cfg,
		rng:   xrand.New(cfg.Seed),
		zipfs: make([]*xrand.Zipf, len(inst.Tables)),
		perms: make([]*xrand.Permuter, len(inst.Tables)),
		userZ: xrand.NewZipf(cfg.NumUsers, cfg.UserAlpha),
		itemZ: xrand.NewZipf(cfg.NumItems, cfg.ItemAlpha),
	}
	g.userAlpha = cfg.UserAlpha
	for i, s := range inst.Tables {
		g.zipfs[i] = xrand.NewZipf(s.Rows, s.Alpha)
		g.perms[i] = xrand.NewPermuter(s.Rows, cfg.Seed^uint64(s.ID)<<17)
		g.perms[i].Identity = cfg.Spatial
	}
	return g, nil
}

// Config returns the generator configuration.
func (g *Generator) Config() Config { return g.cfg }

// Instance returns the model the generator targets.
func (g *Generator) Instance() *model.Instance { return g.inst }

// itemBatch resolves the effective item batch size.
func (g *Generator) itemBatch() int {
	if g.cfg.ItemBatch > 0 {
		return g.cfg.ItemBatch
	}
	return g.inst.Config.ItemBatch
}

// poolLen draws a per-op pooling length around the table's average.
func (g *Generator) poolLen(rng *xrand.RNG, pf float64) int {
	// PF spread: uniform in [0.5·PF, 1.5·PF], minimum 1.
	n := int(pf * (0.5 + rng.Float64()))
	if n < 1 {
		n = 1
	}
	return n
}

// baseSequence returns entity e's deterministic index sequence for table t,
// optionally churned by one resampled index. boost scales the table's
// pooling factor (1 outside drift phases).
func (g *Generator) baseSequence(table int, entity int64, churn bool, boost float64) []int64 {
	s := g.inst.Tables[table]
	rng := xrand.New(g.cfg.Seed ^ uint64(entity)*0x9e3779b97f4a7c15 ^ uint64(s.ID)<<40)
	n := g.poolLen(rng, s.PoolingFactor*boost)
	seq := make([]int64, n)
	for i := range seq {
		seq[i] = g.perms[table].Map(g.zipfs[table].Rank(rng))
	}
	if churn {
		seq[g.rng.Intn(n)] = g.perms[table].Map(g.zipfs[table].Rank(g.rng))
	}
	return seq
}

// Next generates one query.
func (g *Generator) Next() Query {
	if a := g.diurnalAlpha(); a != g.userAlpha {
		g.userZ = xrand.NewZipf(g.cfg.NumUsers, a)
		g.userAlpha = a
	}
	user := g.driftUser(g.userZ.Rank(g.rng))
	q := Query{UserID: user}
	if g.cfg.SLOClasses > 1 {
		q.Class = UserPartition(user, g.cfg.SLOClasses)
	}
	nUser := g.inst.Config.NumUserTables
	userBatch := 1
	if g.cfg.EvalMode {
		userBatch = g.itemBatch()
	}
	for t := 0; t < len(g.inst.Tables); t++ {
		isUser := t < nUser
		batch := g.itemBatch()
		if isUser {
			batch = userBatch
		}
		boost := g.tableBoost(t)
		op := TableOp{Table: t, Pools: make([][]int64, 0, batch)}
		for b := 0; b < batch; b++ {
			var entity int64
			if isUser {
				entity = user
				if g.cfg.EvalMode && b > 0 {
					// Eval batches different users.
					entity = g.driftUser(g.userZ.Rank(g.rng))
				}
			} else {
				entity = g.driftItem(g.itemZ.Rank(g.rng))
			}
			churn := g.cfg.SeqChurn > 0 && g.rng.Float64() < g.cfg.SeqChurn
			op.Pools = append(op.Pools, g.baseSequence(t, entity, churn, boost))
		}
		q.Ops = append(q.Ops, op)
	}
	g.queries++
	return q
}

// NextRouted returns the next query of the shared-population stream along
// with its UserPartition among parts, so offline locality analyses can
// consume one stream partition-aware without re-hashing (the serving-time
// cluster router applies its own consistent hashing instead).
func (g *Generator) NextRouted(parts int) (Query, int) {
	q := g.Next()
	return q, UserPartition(q.UserID, parts)
}

// GenerateTrace produces n queries.
func (g *Generator) GenerateTrace(n int) []Query {
	out := make([]Query, n)
	for i := range out {
		out[i] = g.Next()
	}
	return out
}

// Validate checks that every generated index is within its table.
func Validate(inst *model.Instance, qs []Query) error {
	for qi, q := range qs {
		for _, op := range q.Ops {
			if op.Table < 0 || op.Table >= len(inst.Tables) {
				return fmt.Errorf("workload: query %d references table %d of %d", qi, op.Table, len(inst.Tables))
			}
			rows := inst.Tables[op.Table].Rows
			for _, pool := range op.Pools {
				for _, idx := range pool {
					if idx < 0 || idx >= rows {
						return fmt.Errorf("workload: query %d table %d index %d out of %d rows", qi, op.Table, idx, rows)
					}
				}
			}
		}
	}
	return nil
}

// KindOf returns the kind of table t in the instance.
func KindOf(inst *model.Instance, t int) embedding.Kind {
	return inst.Tables[t].Kind
}
