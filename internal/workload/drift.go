// Non-stationary workload drift. The paper's characterization (§4.2) and
// Tuning API (§4.6) assume a static locality profile: placement is chosen
// once, offline. Production traffic is not static — hot sets rotate, the
// user mix shifts over the day, and flash crowds pull cold entities into
// the head of the distribution. DriftConfig layers those three effects on
// the Zipf generator while keeping its determinism contract: the trace is
// a pure function of (seed, config, call order), so every simulation
// replaying the same stream observes bit-identical queries.

package workload

import (
	"fmt"
	"math"

	"sdm/internal/xrand"
)

// DriftConfig makes a Generator non-stationary. The zero value disables
// all drift and reproduces the stationary generator exactly.
type DriftConfig struct {
	// PhaseQueries is the hot-set rotation period: every PhaseQueries
	// generated queries the drift phase advances by one, re-keying the
	// rank→user bijection (yesterday's hot users go cold, a fresh cohort
	// becomes hot — and with them every entity-keyed row sequence) and
	// rotating which user tables carry the traffic spotlight. 0 disables
	// periodic rotation; ForceRotation can still advance the phase.
	PhaseQueries int
	// HotTables is the number of user tables boosted per phase (the
	// "spotlight" set, rotating with the phase). 0 disables table drift.
	HotTables int
	// HotItemTables extends rotation to the item side: each phase re-keys
	// the rank→item bijection (yesterday's popular items go cold, a fresh
	// catalog cohort becomes hot — and with them every item-keyed row
	// sequence) and rotates an item-table spotlight of this size, boosted
	// and shrunk by the same HotBoost/ColdShrink as the user side. 0
	// disables item drift entirely — the item stream stays bit-identical
	// to the stationary generator.
	HotItemTables int
	// HotBoost multiplies the pooling factor of spotlight tables
	// (default 4 when HotTables > 0).
	HotBoost float64
	// ColdShrink multiplies the pooling factor of the remaining user
	// tables (default 0.5 when HotTables > 0), so rotation shifts
	// bandwidth between tables, not just within them.
	ColdShrink float64
	// DiurnalQueries is the period (in queries) of a sinusoidal user-mix
	// shift: the user Zipf skew oscillates ±DiurnalAmp around its base, so
	// off-peak traffic is flatter (more unique users, less locality) than
	// peak. 0 disables.
	DiurnalQueries int
	// DiurnalAmp is the skew oscillation amplitude.
	DiurnalAmp float64
	// FlashEvery starts a flash-crowd event every FlashEvery queries:
	// for FlashLen queries, each query is redirected with probability
	// FlashFrac to one of FlashUsers previously unseen users (a cold
	// cohort suddenly dominating). 0 disables.
	FlashEvery int
	// FlashLen is the event length in queries (default FlashEvery/10).
	FlashLen int
	// FlashFrac is the per-query redirection probability (default 0.5).
	FlashFrac float64
	// FlashUsers is the flash cohort size (default 64).
	FlashUsers int64
}

// Enabled reports whether any drift dimension is active.
func (d DriftConfig) Enabled() bool {
	return d.PhaseQueries > 0 || d.HotTables > 0 || d.HotItemTables > 0 ||
		(d.DiurnalQueries > 0 && d.DiurnalAmp != 0) || d.FlashEvery > 0
}

// validate rejects nonsensical drift settings and fills defaults.
func (d DriftConfig) validate() (DriftConfig, error) {
	if d.PhaseQueries < 0 || d.HotTables < 0 || d.HotItemTables < 0 || d.DiurnalQueries < 0 ||
		d.FlashEvery < 0 || d.FlashLen < 0 || d.FlashUsers < 0 {
		return d, fmt.Errorf("workload: negative drift parameter: %+v", d)
	}
	if d.HotBoost < 0 || d.ColdShrink < 0 || d.FlashFrac < 0 || d.FlashFrac > 1 {
		return d, fmt.Errorf("workload: drift multipliers out of range: %+v", d)
	}
	if d.HotTables > 0 || d.HotItemTables > 0 {
		if d.HotBoost == 0 {
			d.HotBoost = 4
		}
		if d.ColdShrink == 0 {
			d.ColdShrink = 0.5
		}
	}
	if d.FlashEvery > 0 {
		if d.FlashLen == 0 {
			d.FlashLen = d.FlashEvery / 10
			if d.FlashLen < 1 {
				d.FlashLen = 1
			}
		}
		if d.FlashLen > d.FlashEvery {
			return d, fmt.Errorf("workload: flash length %d exceeds period %d", d.FlashLen, d.FlashEvery)
		}
		if d.FlashFrac == 0 {
			d.FlashFrac = 0.5
		}
		if d.FlashUsers == 0 {
			d.FlashUsers = 64
		}
	}
	return d, nil
}

// Phase returns the current drift phase: forced rotations plus the
// periodic phase from the query count.
func (g *Generator) Phase() int {
	p := g.forcedPhases
	if g.cfg.Drift.PhaseQueries > 0 {
		p += g.queries / g.cfg.Drift.PhaseQueries
	}
	return p
}

// Queries returns how many queries the generator has produced.
func (g *Generator) Queries() int { return g.queries }

// ForceRotation advances the drift phase by one immediately — the
// generator-side half of a cluster drift drill (Fleet.ScheduleDrift): the
// hot user cohort, the spotlight tables and every entity-keyed row
// sequence rotate between one query and the next.
func (g *Generator) ForceRotation() { g.forcedPhases++ }

// driftUser maps a freshly drawn Zipf rank through the current phase's
// user bijection and applies any active flash crowd. Phase 0 is the
// identity, so a drift-free generator (or one before its first rotation)
// reproduces the stationary stream bit-for-bit.
func (g *Generator) driftUser(rank int64) int64 {
	d := g.cfg.Drift
	user := rank
	if phase := g.Phase(); phase > 0 {
		if g.userMap == nil || g.userMapPhase != phase {
			g.userMap = xrand.NewPermuter(g.cfg.NumUsers, g.cfg.Seed^0xd21f7^uint64(phase)*0x9e3779b97f4a7c15)
			g.userMapPhase = phase
		}
		user = g.userMap.Map(rank)
	}
	if d.FlashEvery > 0 && g.queries%d.FlashEvery < d.FlashLen {
		if g.rng.Float64() < d.FlashFrac {
			event := int64(g.queries / d.FlashEvery)
			user = g.cfg.NumUsers + event*d.FlashUsers + g.rng.Int63n(d.FlashUsers)
		}
	}
	return user
}

// driftItem maps a freshly drawn item Zipf rank through the current
// phase's item bijection. Disabled (HotItemTables == 0) or in phase 0 it
// is the identity, so the item stream reproduces the stationary generator
// bit-for-bit; enabled, every rotation re-keys which catalog items are
// popular, exactly as driftUser re-keys the user cohort. It draws no
// randomness of its own, so enabling it never perturbs the shared RNG
// stream.
func (g *Generator) driftItem(rank int64) int64 {
	if g.cfg.Drift.HotItemTables <= 0 {
		return rank
	}
	phase := g.Phase()
	if phase == 0 {
		return rank
	}
	if g.itemMap == nil || g.itemMapPhase != phase {
		g.itemMap = xrand.NewPermuter(g.cfg.NumItems, g.cfg.Seed^0x17e3a^uint64(phase)*0x9e3779b97f4a7c15)
		g.itemMapPhase = phase
	}
	return g.itemMap.Map(rank)
}

// diurnalAlpha returns the user skew at the current point of the diurnal
// cycle (the base skew when the diurnal shift is disabled).
func (g *Generator) diurnalAlpha() float64 {
	d := g.cfg.Drift
	if d.DiurnalQueries <= 0 || d.DiurnalAmp == 0 {
		return g.cfg.UserAlpha
	}
	a := g.cfg.UserAlpha + d.DiurnalAmp*math.Sin(2*math.Pi*float64(g.queries)/float64(d.DiurnalQueries))
	if a < 0.05 {
		a = 0.05
	}
	return a
}

// tableBoost returns the pooling-factor multiplier of table t in the
// current phase: HotBoost for the rotating spotlight set (user tables
// under HotTables, item tables under HotItemTables), ColdShrink for the
// rest of the drifting side, 1 when that side's table drift is off.
func (g *Generator) tableBoost(t int) float64 {
	d := g.cfg.Drift
	nUser := g.inst.Config.NumUserTables
	if t >= nUser {
		nItem := len(g.inst.Tables) - nUser
		if d.HotItemTables <= 0 || nItem == 0 {
			return 1
		}
		k := d.HotItemTables
		if k > nItem {
			k = nItem
		}
		start := (g.Phase() * k) % nItem
		if (t-nUser-start+nItem)%nItem < k {
			return d.HotBoost
		}
		return d.ColdShrink
	}
	if d.HotTables <= 0 || nUser == 0 {
		return 1
	}
	k := d.HotTables
	if k > nUser {
		k = nUser
	}
	start := (g.Phase() * k) % nUser
	if (t-start+nUser)%nUser < k {
		return d.HotBoost
	}
	return d.ColdShrink
}

// HotUserTables returns the spotlight user tables of the current phase
// (nil when table drift is disabled) — the set an adaptive placement
// controller should discover from telemetry alone.
func (g *Generator) HotUserTables() []int {
	d := g.cfg.Drift
	nUser := g.inst.Config.NumUserTables
	if d.HotTables <= 0 || nUser == 0 {
		return nil
	}
	k := d.HotTables
	if k > nUser {
		k = nUser
	}
	start := (g.Phase() * k) % nUser
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, (start+i)%nUser)
	}
	return out
}

// HotItemTables returns the spotlight item tables of the current phase
// (nil when item drift is disabled), as absolute table indices.
func (g *Generator) HotItemTables() []int {
	d := g.cfg.Drift
	nUser := g.inst.Config.NumUserTables
	nItem := len(g.inst.Tables) - nUser
	if d.HotItemTables <= 0 || nItem == 0 {
		return nil
	}
	k := d.HotItemTables
	if k > nItem {
		k = nItem
	}
	start := (g.Phase() * k) % nItem
	out := make([]int, 0, k)
	for i := 0; i < k; i++ {
		out = append(out, nUser+(start+i)%nItem)
	}
	return out
}
