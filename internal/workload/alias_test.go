package workload

import (
	"reflect"
	"testing"

	"sdm/internal/model"
)

func aliasGen(t *testing.T) *Generator {
	t.Helper()
	cfg := model.M1()
	cfg.NumUserTables = 3
	cfg.NumItemTables = 2
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 20
	in, err := model.Build(cfg, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	g, err := NewGenerator(in, Config{Seed: 11, NumUsers: 200, UserAlpha: 0.8, SeqChurn: 0.1})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

// TestNextSharedDeepCopySurvivesReuse is the aliasing regression test for
// the arena-backed generator: a deep copy of a NextShared query (via
// Query.Clone or a recycled QueryBuf — the fleet front-end's hand-off
// path) must stay intact while subsequent draws overwrite the arena.
func TestNextSharedDeepCopySurvivesReuse(t *testing.T) {
	g := aliasGen(t)
	for i := 0; i < 20; i++ {
		q := g.NextShared()
		snapshot := q.Clone()
		var buf QueryBuf
		buf.CopyFrom(q)
		// Overwrite the arena several times; the copies must not move.
		for j := 0; j < 5; j++ {
			g.NextShared()
		}
		if !reflect.DeepEqual(buf.Q, snapshot) {
			t.Fatalf("draw %d: QueryBuf copy corrupted by later NextShared calls", i)
		}
		// A recycled buffer must also hold a fresh copy correctly after
		// reuse (the fleet free-list path).
		q2 := g.NextShared()
		snap2 := q2.Clone()
		buf.CopyFrom(q2)
		g.NextShared()
		if !reflect.DeepEqual(buf.Q, snap2) {
			t.Fatalf("draw %d: recycled QueryBuf copy corrupted", i)
		}
	}
}

// TestNextSharedMatchesNext verifies the arena path draws the exact same
// query stream as the allocating path: generation is a pure function of
// the seed, independent of which API the caller picks.
func TestNextSharedMatchesNext(t *testing.T) {
	a, b := aliasGen(t), aliasGen(t)
	for i := 0; i < 50; i++ {
		qa := a.NextShared().Clone()
		qb := b.Next()
		if !reflect.DeepEqual(qa, qb) {
			t.Fatalf("query %d: NextShared stream diverges from Next", i)
		}
	}
}
