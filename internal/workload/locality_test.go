package workload

import (
	"testing"

	"sdm/internal/embedding"
)

func TestPerHostCDFDominatesGlobal(t *testing.T) {
	// Fig. 4c: the temporal-locality CDF one host observes under sticky
	// user→host routing dominates the CDF of the global user mix — each
	// host sees fewer distinct users, so the same row-population fraction
	// covers more of its accesses. The global mix is evaluated at the
	// same per-host trace length (round-robin routing delivers exactly
	// the unpartitioned population to every host); comparing against the
	// full-length trace would confound routing with trace size.
	in := smallInstance(t)
	g := newGen(t, in, Config{Seed: 29, NumUsers: 2000, UserAlpha: 0.8})
	qs := g.GenerateTrace(2000)

	global := AverageCDF(PerHostTemporalLocality(in, qs, 8, false, 0), embedding.User)
	perHost := AverageCDF(PerHostTemporalLocality(in, qs, 8, true, 0), embedding.User)
	if global == nil || perHost == nil {
		t.Fatal("CDFs missing")
	}
	if len(global) != len(perHost) {
		t.Fatalf("CDF lengths differ: %d vs %d", len(global), len(perHost))
	}
	strictly := false
	for k := range global {
		// Pointwise dominance up to sampling noise: the per-host trace is
		// 1/8 the size, so the hottest-row point (frac 1e-4 ≈ one row)
		// can wobble by a couple of percent.
		if perHost[k].Frac+0.02 < global[k].Frac {
			t.Fatalf("per-host CDF %.4f below global %.4f at rows frac %g",
				perHost[k].Frac, global[k].Frac, global[k].X)
		}
		// The interior of the curve is where the uplift shows; the
		// endpoints converge to 1 by construction.
		if global[k].X < 1 && perHost[k].Frac > global[k].Frac+0.01 {
			strictly = true
		}
	}
	if !strictly {
		t.Fatal("per-host CDF should clearly dominate the global one in the interior")
	}
}

func TestUserPartitionStable(t *testing.T) {
	// The sticky hash is shared by the offline analysis and the cluster
	// router: stable per user, in range, and consistent with StickyRouter.
	r := &StickyRouter{Hosts: 5, Sticky: true}
	for u := int64(0); u < 500; u++ {
		p := UserPartition(u, 5)
		if p < 0 || p >= 5 {
			t.Fatalf("partition %d out of range for user %d", p, u)
		}
		if p != UserPartition(u, 5) {
			t.Fatalf("partition unstable for user %d", u)
		}
		if got := r.Route(Query{UserID: u}); got != p {
			t.Fatalf("StickyRouter disagrees with UserPartition for user %d: %d vs %d", u, got, p)
		}
	}
	if UserPartition(123, 1) != 0 || UserPartition(123, 0) != 0 {
		t.Fatal("degenerate partition counts must map to 0")
	}
}

func TestPartitionTrace(t *testing.T) {
	in := smallInstance(t)
	g := newGen(t, in, Config{Seed: 31, NumUsers: 300})
	qs := g.GenerateTrace(600)
	parts := PartitionTrace(qs, 4)
	if len(parts) != 4 {
		t.Fatalf("got %d partitions", len(parts))
	}
	total := 0
	for p, sub := range parts {
		total += len(sub)
		for _, q := range sub {
			if UserPartition(q.UserID, 4) != p {
				t.Fatalf("user %d in wrong partition %d", q.UserID, p)
			}
		}
	}
	if total != len(qs) {
		t.Fatalf("partitions cover %d of %d queries", total, len(qs))
	}
	// Order preserved within a partition: replay the trace and compare.
	idx := make([]int, 4)
	for _, q := range qs {
		p := UserPartition(q.UserID, 4)
		if parts[p][idx[p]].UserID != q.UserID {
			t.Fatal("partition order not preserved")
		}
		idx[p]++
	}
}

func TestNextRouted(t *testing.T) {
	in := smallInstance(t)
	a := newGen(t, in, Config{Seed: 37, NumUsers: 200})
	b := newGen(t, in, Config{Seed: 37, NumUsers: 200})
	for i := 0; i < 50; i++ {
		q, p := a.NextRouted(4)
		want := b.Next()
		if q.UserID != want.UserID {
			t.Fatal("NextRouted must not perturb the stream")
		}
		if p != UserPartition(q.UserID, 4) {
			t.Fatalf("routed partition %d mismatch for user %d", p, q.UserID)
		}
	}
}
