package workload

import (
	"slices"

	"sdm/internal/embedding"
	"sdm/internal/model"
	"sdm/internal/stats"
)

// TemporalResult is one table's temporal-locality CDF (Fig. 4): the
// cumulative fraction of accesses covered by the hottest fraction of rows.
type TemporalResult struct {
	Table int
	Kind  embedding.Kind
	// Points sample the CDF at fixed row-population fractions.
	Points []stats.CDFPoint
}

// CDFFractions are the row-population fractions at which Fig. 4-style CDFs
// are sampled.
var CDFFractions = []float64{0.0001, 0.001, 0.01, 0.05, 0.1, 0.2, 0.5, 1.0}

// TemporalLocality replays a trace and computes the per-table access-count
// CDF over accessed rows, reproducing Fig. 4(a,b). Only tables with at
// least minAccesses are reported.
func TemporalLocality(inst *model.Instance, qs []Query, minAccesses int) []TemporalResult {
	counts := make([]map[int64]uint64, len(inst.Tables))
	for i := range counts {
		counts[i] = make(map[int64]uint64)
	}
	for _, q := range qs {
		for _, op := range q.Ops {
			m := counts[op.Table]
			for _, pool := range op.Pools {
				for _, idx := range pool {
					m[idx]++
				}
			}
		}
	}
	var out []TemporalResult
	for t, m := range counts {
		var total uint64
		vals := make([]uint64, 0, len(m))
		for _, c := range m {
			vals = append(vals, c)
			total += c
		}
		// CDF re-sorts by count internally, but keep the collected order
		// deterministic at the source rather than leaning on the callee.
		slices.Sort(vals)
		if int(total) < minAccesses {
			continue
		}
		out = append(out, TemporalResult{
			Table:  t,
			Kind:   inst.Tables[t].Kind,
			Points: stats.CDF(vals, CDFFractions),
		})
	}
	return out
}

// AverageCDF averages the CDFs of results with the given kind (0 = all),
// producing the per-group summary series printed for Fig. 4.
func AverageCDF(results []TemporalResult, kind embedding.Kind) []stats.CDFPoint {
	var acc []float64
	var n int
	for _, r := range results {
		if kind != 0 && r.Kind != kind {
			continue
		}
		if acc == nil {
			acc = make([]float64, len(r.Points))
		}
		for i, p := range r.Points {
			acc[i] += p.Frac
		}
		n++
	}
	if n == 0 {
		return nil
	}
	out := make([]stats.CDFPoint, len(acc))
	for i := range acc {
		out[i] = stats.CDFPoint{X: CDFFractions[i], Frac: acc[i] / float64(n)}
	}
	return out
}

// SpatialResult is one table's spatial-locality measurement (Fig. 5).
type SpatialResult struct {
	Table int
	Kind  embedding.Kind
	// Locality is uniqueIdx/uniqueBlocks normalized by rows-per-block:
	// 1.0 = perfect packing of accessed rows into blocks, →0 = scattered.
	Locality                float64
	UniqueIdx, UniqueBlocks int
}

// SpatialLocality replays a trace and computes the Fig. 5 metric per table:
// "the average ratio of unique index to unique 4KB block size, normalized
// to the maximum unique index per block size per table".
func SpatialLocality(inst *model.Instance, qs []Query, blockSize int) []SpatialResult {
	if blockSize <= 0 {
		blockSize = 4096
	}
	idxSets := make([]map[int64]struct{}, len(inst.Tables))
	blkSets := make([]map[int64]struct{}, len(inst.Tables))
	for i := range idxSets {
		idxSets[i] = make(map[int64]struct{})
		blkSets[i] = make(map[int64]struct{})
	}
	for _, q := range qs {
		for _, op := range q.Ops {
			rb := int64(inst.Tables[op.Table].RowBytes())
			for _, pool := range op.Pools {
				for _, idx := range pool {
					idxSets[op.Table][idx] = struct{}{}
					blkSets[op.Table][idx*rb/int64(blockSize)] = struct{}{}
				}
			}
		}
	}
	out := make([]SpatialResult, 0, len(inst.Tables))
	for t := range idxSets {
		ui, ub := len(idxSets[t]), len(blkSets[t])
		if ui == 0 {
			continue
		}
		rowsPerBlock := float64(blockSize) / float64(inst.Tables[t].RowBytes())
		if rowsPerBlock < 1 {
			rowsPerBlock = 1
		}
		// uniqueIdx/uniqueBlocks ∈ [1, rowsPerBlock]; normalize to (0,1].
		loc := float64(ui) / float64(ub) / rowsPerBlock
		if loc > 1 {
			loc = 1
		}
		out = append(out, SpatialResult{
			Table: t, Kind: inst.Tables[t].Kind,
			Locality: loc, UniqueIdx: ui, UniqueBlocks: ub,
		})
	}
	return out
}

// UserPartition returns the sticky partition of user across parts — the
// hash shared by the offline Fig. 4c analyses (StickyRouter,
// PartitionTrace, NextRouted). The serving-time cluster router uses its
// own consistent-hash ring so hosts can join and leave; the two
// assignments have the same statistical properties but differ per user.
func UserPartition(user int64, parts int) int {
	if parts <= 1 {
		return 0
	}
	h := uint64(user) * 0x9e3779b97f4a7c15
	h ^= h >> 32
	return int(h % uint64(parts))
}

// PartitionTrace splits a trace across parts by sticky user partition,
// preserving query order within each partition: the per-host sub-traces a
// sticky front-end would deliver from one shared user population.
func PartitionTrace(qs []Query, parts int) [][]Query {
	if parts < 1 {
		parts = 1
	}
	out := make([][]Query, parts)
	for _, q := range qs {
		p := UserPartition(q.UserID, parts)
		out[p] = append(out[p], q)
	}
	return out
}

// StickyRouter routes queries to hosts. Sticky routing pins a user to a
// host (hash affinity), concentrating each user's accesses and raising the
// per-host cache hit rate (§4.2: "Enforcing a user-to-host sticky policy
// can help increase cache hit rate observed from a host", Fig. 4c).
type StickyRouter struct {
	Hosts  int
	Sticky bool
	rr     int
}

// Route returns the host for a query.
func (r *StickyRouter) Route(q Query) int {
	if r.Hosts <= 1 {
		return 0
	}
	if r.Sticky {
		return UserPartition(q.UserID, r.Hosts)
	}
	r.rr = (r.rr + 1) % r.Hosts
	return r.rr
}

// PerHostTemporalLocality routes a trace across hosts and measures the
// temporal-locality CDF observed by one host (Fig. 4c).
func PerHostTemporalLocality(inst *model.Instance, qs []Query, hosts int, sticky bool, observeHost int) []TemporalResult {
	router := &StickyRouter{Hosts: hosts, Sticky: sticky}
	var local []Query
	for _, q := range qs {
		if router.Route(q) == observeHost {
			local = append(local, q)
		}
	}
	return TemporalLocality(inst, local, 1)
}
