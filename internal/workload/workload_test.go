package workload

import (
	"testing"

	"sdm/internal/embedding"
	"sdm/internal/model"
)

func smallInstance(t *testing.T) *model.Instance {
	t.Helper()
	cfg := model.M1()
	cfg.NumUserTables = 6
	cfg.NumItemTables = 3
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 22
	in, err := model.Build(cfg, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	return in
}

func newGen(t *testing.T, in *model.Instance, cfg Config) *Generator {
	t.Helper()
	g, err := NewGenerator(in, cfg)
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func TestGeneratedIndicesValid(t *testing.T) {
	in := smallInstance(t)
	g := newGen(t, in, Config{Seed: 1})
	qs := g.GenerateTrace(200)
	if err := Validate(in, qs); err != nil {
		t.Fatal(err)
	}
}

func TestQueryShape(t *testing.T) {
	in := smallInstance(t)
	g := newGen(t, in, Config{Seed: 2})
	q := g.Next()
	if len(q.Ops) != len(in.Tables) {
		t.Fatalf("ops %d, want %d", len(q.Ops), len(in.Tables))
	}
	for i, op := range q.Ops {
		wantPools := 1
		if i >= in.Config.NumUserTables {
			wantPools = in.Config.ItemBatch
		}
		if len(op.Pools) != wantPools {
			t.Fatalf("op %d pools %d, want %d (B_U=1, B_I=batch)", i, len(op.Pools), wantPools)
		}
		for _, p := range op.Pools {
			if len(p) == 0 {
				t.Fatalf("op %d has empty pool", i)
			}
		}
	}
	if q.Lookups() == 0 {
		t.Fatal("query must perform lookups")
	}
}

func TestEvalModeBatchesUserSide(t *testing.T) {
	in := smallInstance(t)
	g := newGen(t, in, Config{Seed: 3, EvalMode: true})
	q := g.Next()
	// Table 2: InferenceEval has user batch == item batch > 1.
	if len(q.Ops[0].Pools) != in.Config.ItemBatch {
		t.Fatalf("eval user pools %d, want %d", len(q.Ops[0].Pools), in.Config.ItemBatch)
	}
}

func TestDeterministicTrace(t *testing.T) {
	in := smallInstance(t)
	a := newGen(t, in, Config{Seed: 5}).GenerateTrace(50)
	b := newGen(t, in, Config{Seed: 5}).GenerateTrace(50)
	for i := range a {
		if a[i].UserID != b[i].UserID {
			t.Fatal("same seed must replay identically")
		}
	}
}

func TestUserSequenceStability(t *testing.T) {
	// The same user's base sequence for a table must repeat across
	// queries (the source of pooled-cache hits) when churn is zero.
	in := smallInstance(t)
	g := newGen(t, in, Config{Seed: 7, NumUsers: 3, UserAlpha: 0.1})
	seqs := make(map[int64][]int64)
	for i := 0; i < 60; i++ {
		q := g.Next()
		prev, ok := seqs[q.UserID]
		cur := q.Ops[0].Pools[0]
		if ok {
			if len(prev) != len(cur) {
				t.Fatal("user sequence length changed without churn")
			}
			for j := range prev {
				if prev[j] != cur[j] {
					t.Fatal("user sequence changed without churn")
				}
			}
		} else {
			seqs[q.UserID] = append([]int64(nil), cur...)
		}
	}
	if len(seqs) < 2 {
		t.Fatal("expected multiple users")
	}
}

func TestChurnBreaksSequences(t *testing.T) {
	in := smallInstance(t)
	g := newGen(t, in, Config{Seed: 9, NumUsers: 2, SeqChurn: 1.0})
	changed := false
	var prev []int64
	for i := 0; i < 50 && !changed; i++ {
		q := g.Next()
		if q.UserID != 0 {
			continue
		}
		cur := q.Ops[0].Pools[0]
		if prev != nil && len(prev) == len(cur) {
			for j := range prev {
				if prev[j] != cur[j] {
					changed = true
				}
			}
		}
		prev = append(prev[:0], cur...)
	}
	if !changed {
		t.Fatal("full churn should perturb sequences")
	}
}

func TestTemporalLocalityPowerLaw(t *testing.T) {
	in := smallInstance(t)
	g := newGen(t, in, Config{Seed: 13})
	qs := g.GenerateTrace(400)
	results := TemporalLocality(in, qs, 100)
	if len(results) == 0 {
		t.Fatal("no tables crossed the access threshold")
	}
	avg := AverageCDF(results, 0)
	if len(avg) != len(CDFFractions) {
		t.Fatalf("CDF points %d", len(avg))
	}
	// Power law: 10% of rows must cover far more than 10% of accesses.
	var at10 float64
	for _, p := range avg {
		if p.X == 0.1 {
			at10 = p.Frac
		}
	}
	if at10 < 0.3 {
		t.Fatalf("top 10%% of rows covers %.0f%%, want power-law concentration", at10*100)
	}
}

func TestItemsMoreLocalThanUsers(t *testing.T) {
	// Fig. 4: item embeddings show more temporal locality than user
	// embeddings (the model configs encode higher item alphas).
	in := smallInstance(t)
	g := newGen(t, in, Config{Seed: 17})
	qs := g.GenerateTrace(600)
	results := TemporalLocality(in, qs, 200)
	user := AverageCDF(results, embedding.User)
	item := AverageCDF(results, embedding.Item)
	if user == nil || item == nil {
		t.Fatal("missing group CDFs")
	}
	// Compare coverage at the 5% row fraction.
	var u5, i5 float64
	for k := range user {
		if user[k].X == 0.05 {
			u5, i5 = user[k].Frac, item[k].Frac
		}
	}
	if i5 <= u5 {
		t.Fatalf("item locality %.2f should exceed user %.2f", i5, u5)
	}
}

func TestSpatialLocalityLowWhenScattered(t *testing.T) {
	// Larger tables and a short trace keep the accessed set sparse, so
	// block sharing reflects layout rather than full-table saturation.
	cfg := model.M1()
	cfg.NumUserTables = 4
	cfg.NumItemTables = 2
	cfg.ItemBatch = 4
	cfg.TotalBytes = 1 << 28
	in, err := model.Build(cfg, 1, 11)
	if err != nil {
		t.Fatal(err)
	}
	scattered := newGen(t, in, Config{Seed: 19})
	packed := newGen(t, in, Config{Seed: 19, Spatial: true})
	qsS := scattered.GenerateTrace(300)
	qsP := packed.GenerateTrace(300)
	locS := SpatialLocality(in, qsS, 4096)
	locP := SpatialLocality(in, qsP, 4096)
	if len(locS) == 0 || len(locP) == 0 {
		t.Fatal("no spatial results")
	}
	var avgS, avgP float64
	for _, r := range locS {
		avgS += r.Locality
	}
	avgS /= float64(len(locS))
	for _, r := range locP {
		avgP += r.Locality
	}
	avgP /= float64(len(locP))
	// Fig. 5: production accesses show low spatial locality (scattered);
	// identity mapping concentrates hot rows into shared blocks.
	if avgS >= avgP {
		t.Fatalf("scattered locality %.3f should be below packed %.3f", avgS, avgP)
	}
	if avgS > 0.6 {
		t.Fatalf("scattered locality %.3f too high for the Fig. 5 regime", avgS)
	}
}

func TestStickyRoutingRaisesPerHostLocality(t *testing.T) {
	in := smallInstance(t)
	g := newGen(t, in, Config{Seed: 23, NumUsers: 2000, UserAlpha: 0.8})
	qs := g.GenerateTrace(1500)
	sticky := PerHostTemporalLocality(in, qs, 8, true, 0)
	rr := PerHostTemporalLocality(in, qs, 8, false, 0)
	sAvg := AverageCDF(sticky, embedding.User)
	rAvg := AverageCDF(rr, embedding.User)
	if sAvg == nil || rAvg == nil {
		t.Skip("not enough per-host traffic in fixture")
	}
	var s10, r10 float64
	for k := range sAvg {
		if sAvg[k].X == 0.1 {
			s10, r10 = sAvg[k].Frac, rAvg[k].Frac
		}
	}
	// Fig. 4c: per-host locality under sticky routing ≥ random routing.
	if s10+0.02 < r10 {
		t.Fatalf("sticky per-host locality %.3f below round-robin %.3f", s10, r10)
	}
}

func TestStickyRouterStable(t *testing.T) {
	r := &StickyRouter{Hosts: 4, Sticky: true}
	q := Query{UserID: 77}
	h := r.Route(q)
	for i := 0; i < 10; i++ {
		if r.Route(q) != h {
			t.Fatal("sticky routing must pin a user to one host")
		}
	}
	rr := &StickyRouter{Hosts: 4}
	seen := map[int]bool{}
	for i := 0; i < 8; i++ {
		seen[rr.Route(q)] = true
	}
	if len(seen) != 4 {
		t.Fatal("round-robin should spread across hosts")
	}
}

func TestValidateCatchesBadIndex(t *testing.T) {
	in := smallInstance(t)
	qs := []Query{{Ops: []TableOp{{Table: 0, Pools: [][]int64{{in.Tables[0].Rows}}}}}}
	if err := Validate(in, qs); err == nil {
		t.Fatal("out-of-range index must fail validation")
	}
	qs = []Query{{Ops: []TableOp{{Table: 99, Pools: [][]int64{{0}}}}}}
	if err := Validate(in, qs); err == nil {
		t.Fatal("out-of-range table must fail validation")
	}
}

func TestGeneratorDefaults(t *testing.T) {
	in := smallInstance(t)
	g := newGen(t, in, Config{})
	c := g.Config()
	if c.NumUsers <= 0 || c.NumItems <= 0 || c.UserAlpha == 0 || c.ItemAlpha == 0 {
		t.Fatalf("defaults not applied: %+v", c)
	}
	if g.Instance() != in {
		t.Fatal("instance accessor")
	}
}

func TestSLOClassTagging(t *testing.T) {
	in := smallInstance(t)

	// Class tagging draws nothing from the stream RNG: the tagged stream
	// is the untagged stream plus labels.
	base := newGen(t, in, Config{Seed: 9, NumUsers: 500}).GenerateTrace(300)
	tagged := newGen(t, in, Config{Seed: 9, NumUsers: 500, SLOClasses: 3}).GenerateTrace(300)
	seen := make(map[int]int)
	for i := range base {
		if base[i].UserID != tagged[i].UserID {
			t.Fatalf("query %d: user %d != %d — class tagging perturbed the stream", i, base[i].UserID, tagged[i].UserID)
		}
		if base[i].Class != 0 {
			t.Fatalf("query %d: untagged stream has class %d", i, base[i].Class)
		}
		c := tagged[i].Class
		if c < 0 || c >= 3 {
			t.Fatalf("query %d: class %d out of [0, 3)", i, c)
		}
		if c != UserPartition(tagged[i].UserID, 3) {
			t.Fatalf("query %d: class %d is not the sticky user partition", i, c)
		}
		seen[c]++
	}
	if len(seen) < 2 {
		t.Fatalf("300 queries over 500 users landed in %d class(es): %v", len(seen), seen)
	}
	// SLOClasses <= 1 leaves everything in class 0; negative is rejected.
	if q := newGen(t, in, Config{Seed: 9, SLOClasses: 1}).Next(); q.Class != 0 {
		t.Fatalf("SLOClasses=1 tagged class %d", q.Class)
	}
	if _, err := NewGenerator(in, Config{SLOClasses: -1}); err == nil {
		t.Fatal("negative SLOClasses should be rejected")
	}
}
