// Fixture for the randsource analyzer: shared-global math/rand draws and
// all of crypto/rand are findings; seeded source construction and the
// repo's own xrand generators are not.
package randsource

import (
	crand "crypto/rand"
	"math/rand"
	v2 "math/rand/v2"

	"sdm/internal/xrand"
)

func draw() float64 {
	x := rand.Float64()                // want "math/rand.Float64 draws from the shared unseeded source"
	rand.Shuffle(3, func(i, j int) {}) // want "math/rand.Shuffle draws from the shared unseeded source"
	y := v2.IntN(10)                   // want "math/rand/v2.IntN draws from the shared unseeded source"
	var buf [8]byte
	_, _ = crand.Read(buf[:]) // want "crypto/rand.Read is nondeterministic"
	_ = crand.Reader          // want "crypto/rand.Reader is nondeterministic"

	r := rand.New(rand.NewSource(42)) // seeded source construction: no finding
	g := xrand.New(42)                // the sanctioned path: no finding
	return x + float64(y) + r.Float64() + g.Float64()
}
