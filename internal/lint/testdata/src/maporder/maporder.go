// Fixture for the maporder analyzer: map ranges that emit in iteration
// order are findings; the collect-then-sort idiom, order-independent
// bodies, and slice ranges are the false-positive guards.
package maporder

import (
	"fmt"
	"io"
	"slices"
	"sort"
	"strings"

	"simmetrics"
)

func emit(w io.Writer, m map[string]int) []string {
	var lines []string
	for k, v := range m {
		lines = append(lines, fmt.Sprintf("%s=%d", k, v)) // want "append to lines inside a map range"
	}
	for k := range m {
		fmt.Fprintf(w, "%s\n", k) // want "fmt.Fprintf inside a map range"
	}
	var b strings.Builder
	for k := range m {
		b.WriteString(k) // want "WriteString inside a map range"
	}
	fmt.Fprint(w, b.String())
	return lines
}

// sortedKeys is the sanctioned collect-then-sort idiom: the append feeds
// sort.Strings in the same function, so nothing is flagged.
func sortedKeys(m map[string]int) []string {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	return keys
}

// sortedValues covers the slices.Sort spelling of the same idiom.
func sortedValues(m map[string]int) []int {
	vals := make([]int, 0, len(m))
	for _, v := range m {
		vals = append(vals, v)
	}
	slices.Sort(vals)
	return vals
}

// sortSliceStable covers sorting collected structs with sort.SliceStable.
func sortSliceStable(m map[string]int) []string {
	rows := make([]string, 0, len(m))
	for k := range m {
		rows = append(rows, k)
	}
	sort.SliceStable(rows, func(i, j int) bool { return rows[i] < rows[j] })
	return rows
}

// orderIndependent bodies are never flagged: integer accumulation is
// exact, and per-key writes to other maps commute.
func orderIndependent(m map[string]int) (int, map[string]int) {
	n := 0
	double := make(map[string]int, len(m))
	for k, v := range m {
		n += v
		double[k] = 2 * v
	}
	return n, double
}

func floatFold(m map[string]float64) float64 {
	var sum float64
	perBucket := make([]float64, 8)
	for k, v := range m {
		sum += v                 // want "float accumulation into sum inside a map range"
		perBucket[len(k)%8] += v // indexed slot, resolved per key: no finding
	}
	return sum + perBucket[0]
}

func instruments(c *simmetrics.Counter, g *simmetrics.Gauge, m map[string]uint64) {
	for _, v := range m {
		c.Add(v) // want "instrument Add inside a map range"
	}
	for _, v := range m {
		g.Set(float64(v)) // want "instrument Set inside a map range"
	}
	total := uint64(0)
	for _, v := range m {
		total += v // integer fold: no finding
	}
	c.Add(total) // emission after the loop, order already folded: no finding
}

func channelSend(ch chan string, m map[string]int) {
	for k := range m {
		ch <- k // want "send on a channel inside a map range"
	}
}

// localAppend collects into a slice scoped to one iteration: no finding.
func localAppend(m map[string][]int) int {
	n := 0
	for _, vs := range m {
		out := make([]int, 0, len(vs))
		out = append(out, vs...)
		n += len(out)
	}
	return n
}

// sliceRange: iteration over a slice is ordered; never flagged.
func sliceRange(w io.Writer, xs []string) {
	for _, x := range xs {
		fmt.Fprintln(w, x)
	}
}
