// Package simmetrics is a stand-in instrument package for the maporder
// fixtures: its import path contains "metrics", which is what the
// analyzer's instrument-receiver heuristic keys on for the generic
// Add/Inc/Set method names.
package simmetrics

type Counter struct{ n uint64 }

func (c *Counter) Add(d uint64) { c.n += d }

func (c *Counter) Inc() { c.n++ }

type Gauge struct{ v float64 }

func (g *Gauge) Set(v float64) { g.v = v }
