// Fixture for the //sdm:allow directive: a well-formed directive on the
// offending line or the line above suppresses exactly its named analyzer
// on exactly those lines.
package allowdir

import "time"

func profile() time.Duration {
	start := time.Now() //sdm:allow wallclock measuring harness wall cost, not simulated time
	//sdm:allow wallclock the site below is sanctioned wall-clock profiling
	d := time.Since(start)
	time.Sleep(d) // want "time.Sleep reads the wall clock"
	//sdm:allow randsource a directive for another analyzer does not cover this one
	x := time.Now()    // want "time.Now reads the wall clock"
	y := time.Since(x) // want "time.Since reads the wall clock"
	//sdm:allow wallclock a directive covers the line above it, not the one below
	return d + y
}
