// Fixture for the randsource analyzer's blank-import case.
package randblank

import (
	_ "math/rand" // want "blank import of math/rand"
)

func nothing() {}
