// Fixture for the vtimecompare analyzer: Duration-to-bare-integer mixing
// inside arithmetic and shared float folds in go-spawned closures are
// findings; named-type conversions, Duration-space math, float seconds,
// and per-worker slots are the false-positive guards.
package vtimecompare

import (
	"sync"
	"time"
)

// vTime stands in for simclock.Time: a named virtual-time type.
type vTime int64

func mix(d time.Duration, vtNanos int64) int64 {
	x := vtNanos + int64(d) // want "time.Duration converted to a bare integer inside arithmetic"
	vtNanos += int64(d)     // want "time.Duration converted to a bare integer inside arithmetic"
	if vtNanos > int64(d) { // want "time.Duration converted to a bare integer inside arithmetic"
		x++
	}

	y := int64(d)             // plain unit conversion, no arithmetic: no finding
	z := vTime(d)             // conversion to a named type keeps the unit: no finding
	w := d / time.Duration(3) // arithmetic stays in Duration space: no finding
	s := float64(d) / 1e9     // float seconds math: no finding
	_, _, _ = y, w, s
	total := vTime(0)
	total += z // named virtual-time arithmetic: no finding
	return x + int64(total)
}

func folds(vals []float64) float64 {
	var wg sync.WaitGroup
	var total float64
	var count int
	slots := make([]float64, 2)
	for i := 0; i < 2; i++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, v := range vals {
				total += v    // want "float accumulated into shared total inside a go-spawned closure"
				slots[w] += v // per-worker slot reduced later in op order: no finding
				count++
			}
			local := 0.0
			local += vals[0] // accumulator scoped to the closure: no finding
			slots[w] += local
		}(i)
	}
	wg.Wait()
	//sdm:allow vtimecompare approved fold point for the fixture
	go func() { total += slots[0] }()
	return total + slots[1] + float64(count)
}

// serialFold is the same shape outside a go statement: no finding.
func serialFold(vals []float64) float64 {
	var total float64
	for _, v := range vals {
		total += v
	}
	return total
}
