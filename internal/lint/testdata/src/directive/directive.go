// Fixture for directive validation: malformed //sdm:allow comments are
// findings themselves, and a directive without a reason suppresses
// nothing. Expectations are asserted directly in TestDirectiveValidation
// (want comments trailing a directive would become part of its reason).
package directive

import "time"

//sdm:allow wallhack this analyzer does not exist

//sdm:allow

func malformedNoReason() time.Time {
	//sdm:allow wallclock
	return time.Now()
}
