// Fixture for the wallclock analyzer: wall-clock reads are findings;
// durations, component constructors, and methods that merely share a
// forbidden name are not.
package wallclock

import (
	"time"
	tt "time"
)

type clock struct{}

// After shares its name with time.After but is a method: never flagged.
func (clock) After(d time.Duration) time.Duration { return d }

func sim() time.Duration {
	now := time.Now()              // want "time.Now reads the wall clock"
	time.Sleep(time.Millisecond)   // want "time.Sleep reads the wall clock"
	<-time.After(time.Millisecond) // want "time.After reads the wall clock"
	f := tt.Since                  // want "time.Since reads the wall clock"
	_ = f
	t := time.NewTicker(time.Second) // want "time.NewTicker reads the wall clock"
	t.Stop()

	var c clock
	d := c.After(3 * time.Second) // method, not the package function: no finding
	deadline := time.Unix(0, 0)   // constructed from components: no finding
	return d + now.Sub(deadline.Add(time.Minute))
}
