package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// Vtimecompare guards the virtual-time arithmetic discipline:
//
//  1. A time.Duration converted to a bare integer inside arithmetic
//     (`vt + int64(d)`, `vt += int64(d)`) strips the unit system that
//     keeps wall-clock lengths and virtual timestamps apart. Virtual-time
//     math must stay in simclock.Time / time.Duration end to end;
//     conversions through the named simclock.Time type are exactly the
//     sanctioned path and are not flagged.
//
//  2. A float accumulator shared across a `go`-spawned closure
//     (`sum += x` where sum lives outside the closure) folds rounding in
//     goroutine-completion order, which varies with worker count. The
//     sanctioned parallel shape — per-worker slots (`res[i] = ...`,
//     `res[i] += ...`) reduced later in op/arrival order — is not
//     flagged; approved shared fold points carry
//     //sdm:allow vtimecompare <reason>.
var Vtimecompare = &Analyzer{
	Name: "vtimecompare",
	Doc:  "forbid time.Duration→int64 mixing in virtual-time arithmetic and completion-order float folds in goroutines",
	Run:  runVtimecompare,
}

func runVtimecompare(pass *Pass) {
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			switch st := n.(type) {
			case *ast.BinaryExpr:
				if isVtimeOp(st.Op) {
					for _, side := range []ast.Expr{st.X, st.Y} {
						if conv, ok := durationToIntConv(pass, side); ok {
							pass.Reportf(conv.Pos(), "time.Duration converted to a bare integer inside arithmetic mixes wall-clock units into virtual-time math; keep the computation in simclock.Time/time.Duration")
						}
					}
				}
			case *ast.AssignStmt:
				switch st.Tok {
				case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN, token.REM_ASSIGN:
					if conv, ok := durationToIntConv(pass, st.Rhs[0]); ok {
						pass.Reportf(conv.Pos(), "time.Duration converted to a bare integer inside arithmetic mixes wall-clock units into virtual-time math; keep the computation in simclock.Time/time.Duration")
					}
				}
			case *ast.GoStmt:
				if fl, ok := st.Call.Fun.(*ast.FuncLit); ok {
					checkGoroutineFolds(pass, fl)
				}
			}
			return true
		})
	}
}

func isVtimeOp(op token.Token) bool {
	switch op {
	case token.ADD, token.SUB, token.MUL, token.QUO, token.REM,
		token.LSS, token.GTR, token.LEQ, token.GEQ, token.EQL, token.NEQ:
		return true
	}
	return false
}

// durationToIntConv matches a conversion of a std time.Duration value to
// an unnamed integer type (int64(d), uint64(d), int(d)). Conversions to
// named types (simclock.Time(d)) keep their unit and are legal, as are
// float conversions (seconds math).
func durationToIntConv(pass *Pass, e ast.Expr) (*ast.CallExpr, bool) {
	e = ast.Unparen(e)
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 1 || pass.Pkg.Info == nil {
		return nil, false
	}
	tv, ok := pass.Pkg.Info.Types[call.Fun]
	if !ok || !tv.IsType() {
		return nil, false
	}
	basic, ok := tv.Type.(*types.Basic)
	if !ok || basic.Info()&types.IsInteger == 0 {
		return nil, false
	}
	return call, isStdDuration(pass.TypeOf(call.Args[0]))
}

func isStdDuration(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "time" && obj.Name() == "Duration"
}

// checkGoroutineFolds flags compound float assignments to variables that
// outlive the go-spawned closure. Indexed writes (per-worker slots) are
// the sanctioned fold shape and stay legal.
func checkGoroutineFolds(pass *Pass, fl *ast.FuncLit) {
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		st, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		switch st.Tok {
		case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
		default:
			return true
		}
		lhs := st.Lhs[0]
		if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
			return true
		}
		if !isFloat(pass.TypeOf(lhs)) {
			return true
		}
		base := baseIdent(lhs)
		if base == nil {
			return true
		}
		if obj := pass.ObjectOf(base); obj != nil && !declaredWithin(obj, fl) {
			pass.Reportf(st.Pos(), "float accumulated into shared %s inside a go-spawned closure folds in completion order; use per-worker slots reduced in op order (//sdm:allow vtimecompare <reason> at approved fold points)", base.Name)
		}
		return true
	})
}
