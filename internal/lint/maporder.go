package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// Maporder flags `range` over a map whose body emits in iteration order:
// appending to an outer slice, writing to an io.Writer (or fmt.Fprint*/
// Print*), marking metrics/trace/registry instruments, sending on a
// channel, or folding floats into an outer accumulator. Go randomizes map
// iteration order per run, so any of these leaks nondeterminism straight
// into rendered output — the bug class a perf campaign most easily
// reintroduces. The sorted-keys idiom is recognized and exempt: a loop
// that only collects keys/values into a slice which the enclosing
// function then passes to sort.* or slices.Sort* is the sanctioned fix,
// not a finding. Order-independent bodies (writing other maps, per-key
// updates, integer counts) are never flagged.
var Maporder = &Analyzer{
	Name: "maporder",
	Doc:  "flag map ranges whose body emits (append/write/metric/channel/float-fold) without sorting keys first",
	Run:  runMaporder,
}

// fmtEmitters are the fmt functions that write to a stream (Sprint* is
// pure and stays legal).
var fmtEmitters = map[string]bool{
	"Print": true, "Printf": true, "Println": true,
	"Fprint": true, "Fprintf": true, "Fprintln": true,
}

// writerMethods look like io.Writer-family emission on any receiver.
var writerMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true,
	"WriteRune": true, "WriteTo": true,
}

// emitMethods are always treated as ordered emission (trace/registry/
// sample verbs), on any receiver.
var emitMethods = map[string]bool{
	"Observe": true, "Record": true, "Emit": true, "Mark": true,
}

// instrumentMethods are emission only when the receiver type lives in a
// metrics/observability/stats package — Add/Inc/Set are too generic to
// ban everywhere, but on an instrument they publish in iteration order.
var instrumentMethods = map[string]bool{
	"Add": true, "Inc": true, "Set": true,
}

func runMaporder(pass *Pass) {
	for _, file := range pass.Files() {
		inspectWithStack(file, func(n ast.Node, stack []ast.Node) bool {
			rs, ok := n.(*ast.RangeStmt)
			if !ok || !isMapRange(pass, rs) {
				return true
			}
			checkMapRangeBody(pass, rs, enclosingFunc(stack))
			return true
		})
	}
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

func checkMapRangeBody(pass *Pass, rs *ast.RangeStmt, fn ast.Node) {
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.AssignStmt:
			checkMapRangeAssign(pass, rs, fn, st)
		case *ast.SendStmt:
			pass.Reportf(st.Pos(), "send on a channel inside a map range publishes values in map iteration order; sort the keys first")
		case *ast.CallExpr:
			checkMapRangeCall(pass, st)
		}
		return true
	})
}

func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, fn ast.Node, st *ast.AssignStmt) {
	// append into an outer slice: the classic unsorted-emission shape —
	// unless the slice is subsequently sorted in this function (the
	// collect-then-sort idiom).
	if call, ok := appendCall(st); ok {
		base := baseIdent(st.Lhs[0])
		if base == nil {
			return
		}
		obj := pass.ObjectOf(base)
		if obj == nil || declaredWithin(obj, rs) {
			return
		}
		if fn != nil && sortedLater(pass, fn, obj) {
			return
		}
		pass.Reportf(call.Pos(), "append to %s inside a map range records map iteration order; sort the keys first (sort.*/slices.Sort*) or sort %s before emitting", base.Name, base.Name)
		return
	}
	// Float accumulation into a single outer accumulator folds rounding
	// in iteration order. Per-key index writes and integer counters are
	// order-independent and stay legal.
	switch st.Tok {
	case token.ADD_ASSIGN, token.SUB_ASSIGN, token.MUL_ASSIGN, token.QUO_ASSIGN:
	default:
		return
	}
	lhs := st.Lhs[0]
	if _, isIndex := lhs.(*ast.IndexExpr); isIndex {
		return
	}
	if !isFloat(pass.TypeOf(lhs)) {
		return
	}
	base := baseIdent(lhs)
	if base == nil {
		return
	}
	if obj := pass.ObjectOf(base); obj != nil && !declaredWithin(obj, rs) {
		pass.Reportf(st.Pos(), "float accumulation into %s inside a map range folds rounding in map iteration order; sort the keys first", base.Name)
	}
}

func checkMapRangeCall(pass *Pass, call *ast.CallExpr) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return
	}
	name := sel.Sel.Name
	if pkg := pass.pkgNameOf(sel.X); pkg != "" {
		if pkg == "fmt" && fmtEmitters[name] {
			pass.Reportf(call.Pos(), "fmt.%s inside a map range writes in map iteration order; sort the keys first", name)
		}
		return
	}
	switch {
	case writerMethods[name]:
		pass.Reportf(call.Pos(), "%s inside a map range writes in map iteration order; sort the keys first", name)
	case emitMethods[name]:
		pass.Reportf(call.Pos(), "%s inside a map range emits samples in map iteration order; sort the keys first", name)
	case instrumentMethods[name] && isInstrumentRecv(pass, sel.X):
		pass.Reportf(call.Pos(), "instrument %s inside a map range marks series in map iteration order; sort the keys first", name)
	}
}

// appendCall matches `x = append(x, ...)` / `x := append(x, ...)`.
func appendCall(st *ast.AssignStmt) (*ast.CallExpr, bool) {
	if len(st.Rhs) != 1 || len(st.Lhs) == 0 {
		return nil, false
	}
	call, ok := st.Rhs[0].(*ast.CallExpr)
	if !ok {
		return nil, false
	}
	id, ok := call.Fun.(*ast.Ident)
	if !ok || id.Name != "append" {
		return nil, false
	}
	return call, true
}

// sortedLater reports whether fn contains a sort.* or slices.Sort* call
// whose arguments reference obj — the collect-then-sort idiom that makes
// the collected order deterministic before anything emits it.
func sortedLater(pass *Pass, fn ast.Node, obj types.Object) bool {
	found := false
	ast.Inspect(fn, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		switch pass.pkgNameOf(sel.X) {
		case "sort":
		case "slices":
			if !strings.HasPrefix(sel.Sel.Name, "Sort") {
				return true
			}
		default:
			return true
		}
		for _, arg := range call.Args {
			if mentionsObject(pass, arg, obj) {
				found = true
				break
			}
		}
		return true
	})
	return found
}

func mentionsObject(pass *Pass, e ast.Expr, obj types.Object) bool {
	hit := false
	ast.Inspect(e, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok && pass.ObjectOf(id) == obj {
			hit = true
		}
		return !hit
	})
	return hit
}

// isInstrumentRecv reports whether the receiver's named type is declared
// in a metrics/observability/stats package.
func isInstrumentRecv(pass *Pass, recv ast.Expr) bool {
	t := pass.TypeOf(recv)
	if t == nil {
		return false
	}
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok || named.Obj().Pkg() == nil {
		return false
	}
	path := named.Obj().Pkg().Path()
	return strings.Contains(path, "metrics") || strings.Contains(path, "obs") || strings.Contains(path, "stats")
}
