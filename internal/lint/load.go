package lint

import (
	"fmt"
	"go/ast"
	"go/build"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"runtime"
	"strings"
)

// Package is one type-checked lint unit: a directory's package together
// with its in-package test files, or (separately) its external _test
// package.
type Package struct {
	Path  string // import path ("sdm/internal/cluster"; xtest units get ".test" appended)
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
	// TypeErrors collects type-check diagnostics. The repo must already
	// compile (the build gate runs first), so these indicate loader gaps;
	// the driver surfaces them as warnings rather than findings.
	TypeErrors []error
}

// Loader loads and type-checks packages using only the standard library:
// module-local import paths resolve against the module root, everything
// else against GOROOT/src (with the GOROOT vendor fallback), and — for
// the analyzer fixtures — against an optional extra root, mirroring the
// classic analysistest GOPATH convention.
type Loader struct {
	Root       string // module root (directory containing go.mod)
	ModulePath string
	// FixtureRoot, when set, resolves otherwise-unknown import paths and
	// target directories relative to this extra root (tests only).
	FixtureRoot string
	// IncludeTests adds _test.go files of target packages (dependencies
	// are always loaded without tests).
	IncludeTests bool

	ctx      build.Context
	fset     *token.FileSet
	imported map[string]*types.Package
	sizes    types.Sizes
}

// NewLoader returns a loader for the module rooted at root.
func NewLoader(root string) (*Loader, error) {
	modPath, err := modulePath(filepath.Join(root, "go.mod"))
	if err != nil {
		return nil, err
	}
	ctx := build.Default
	// The simulator is pure Go; disabling cgo selects the pure-Go stdlib
	// fallbacks so type-checking never needs a C toolchain.
	ctx.CgoEnabled = false
	return &Loader{
		Root:       root,
		ModulePath: modPath,
		ctx:        ctx,
		fset:       token.NewFileSet(),
		imported:   make(map[string]*types.Package),
		sizes:      types.SizesFor("gc", runtime.GOARCH),
	}, nil
}

// FindModuleRoot walks upward from dir to the nearest go.mod.
func FindModuleRoot(dir string) (string, error) {
	dir, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if fi, err := os.Stat(filepath.Join(dir, "go.mod")); err == nil && !fi.IsDir() {
			return dir, nil
		}
		parent := filepath.Dir(dir)
		if parent == dir {
			return "", fmt.Errorf("no go.mod found above %s", dir)
		}
		dir = parent
	}
}

func modulePath(gomod string) (string, error) {
	data, err := os.ReadFile(gomod)
	if err != nil {
		return "", err
	}
	for _, line := range strings.Split(string(data), "\n") {
		if rest, ok := strings.CutPrefix(strings.TrimSpace(line), "module"); ok {
			p := strings.TrimSpace(rest)
			p = strings.Trim(p, `"`)
			if p != "" {
				return p, nil
			}
		}
	}
	return "", fmt.Errorf("%s: no module path", gomod)
}

// Load resolves the patterns (a directory, or dir/... for a recursive
// walk; testdata, vendor, and dot/underscore directories are skipped) and
// returns the type-checked lint units in deterministic order.
func (l *Loader) Load(patterns ...string) ([]*Package, error) {
	var dirs []string
	seen := make(map[string]bool)
	add := func(d string) {
		d = filepath.Clean(d)
		if !seen[d] {
			seen[d] = true
			dirs = append(dirs, d)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive, pat = true, rest
		}
		if pat == "" || pat == "." {
			pat = l.Root
		}
		dir, err := l.resolvePatternDir(pat)
		if err != nil {
			return nil, err
		}
		if !recursive {
			add(dir)
			continue
		}
		err = filepath.WalkDir(dir, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != dir && (name == "testdata" || name == "vendor" ||
				strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_")) {
				return filepath.SkipDir
			}
			if hasGoFiles(path) {
				add(path)
			}
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	var pkgs []*Package
	for _, dir := range dirs {
		units, err := l.loadDir(dir)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, units...)
	}
	return pkgs, nil
}

func (l *Loader) resolvePatternDir(pat string) (string, error) {
	candidates := []string{pat}
	if !filepath.IsAbs(pat) {
		if cwd, err := os.Getwd(); err == nil {
			candidates = append(candidates, filepath.Join(cwd, pat))
		}
		candidates = append(candidates, filepath.Join(l.Root, pat))
	}
	for _, c := range candidates {
		if fi, err := os.Stat(c); err == nil && fi.IsDir() {
			return filepath.Abs(c)
		}
	}
	return "", fmt.Errorf("pattern %q matches no directory", pat)
}

func hasGoFiles(dir string) bool {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range entries {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") {
			return true
		}
	}
	return false
}

// loadDir type-checks the directory's package (plus in-package tests when
// IncludeTests) and, when present, its external _test package as a second
// unit.
func (l *Loader) loadDir(dir string) ([]*Package, error) {
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		if _, ok := err.(*build.NoGoError); ok {
			return nil, nil
		}
		return nil, fmt.Errorf("%s: %w", dir, err)
	}
	path := l.importPathFor(dir)
	names := append([]string(nil), bp.GoFiles...)
	if l.IncludeTests {
		names = append(names, bp.TestGoFiles...)
	}
	var pkgs []*Package
	if len(names) > 0 {
		pkg, err := l.check(path, dir, names)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	if l.IncludeTests && len(bp.XTestGoFiles) > 0 {
		pkg, err := l.check(path+".test", dir, bp.XTestGoFiles)
		if err != nil {
			return nil, err
		}
		pkgs = append(pkgs, pkg)
	}
	return pkgs, nil
}

func (l *Loader) importPathFor(dir string) string {
	if rel, err := filepath.Rel(l.Root, dir); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
		if rel == "." {
			return l.ModulePath
		}
		return l.ModulePath + "/" + filepath.ToSlash(rel)
	}
	if l.FixtureRoot != "" {
		if rel, err := filepath.Rel(l.FixtureRoot, dir); err == nil && rel != ".." && !strings.HasPrefix(rel, ".."+string(filepath.Separator)) {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(dir)
}

// check parses and fully type-checks one unit with comments and full type
// information (the analyzers need both).
func (l *Loader) check(path, dir string, names []string) (*Package, error) {
	files := make([]*ast.File, 0, len(names))
	for _, name := range names {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.ParseComments|parser.SkipObjectResolution)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.fset, Files: files}
	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Defs:       make(map[*ast.Ident]types.Object),
		Uses:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
		Implicits:  make(map[ast.Node]types.Object),
	}
	conf := types.Config{
		Importer: importerFunc(l.importPkg),
		Sizes:    l.sizes,
		Error:    func(err error) { pkg.TypeErrors = append(pkg.TypeErrors, err) },
	}
	pkg.Types, _ = conf.Check(path, l.fset, files, info) // errors collected on pkg
	pkg.Info = info
	return pkg, nil
}

type importerFunc func(path string) (*types.Package, error)

func (f importerFunc) Import(path string) (*types.Package, error) { return f(path) }

// importPkg resolves and type-checks a dependency from source. Bodies are
// skipped (exported API is all importers need), results are memoized, and
// cycles error out instead of recursing forever.
func (l *Loader) importPkg(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if pkg, ok := l.imported[path]; ok {
		if pkg == nil {
			return nil, fmt.Errorf("import cycle through %q", path)
		}
		return pkg, nil
	}
	l.imported[path] = nil // in progress
	dir, err := l.dirFor(path)
	if err != nil {
		delete(l.imported, path)
		return nil, err
	}
	bp, err := l.ctx.ImportDir(dir, 0)
	if err != nil {
		delete(l.imported, path)
		return nil, fmt.Errorf("import %q: %w", path, err)
	}
	files := make([]*ast.File, 0, len(bp.GoFiles))
	for _, name := range bp.GoFiles {
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, name), nil, parser.SkipObjectResolution)
		if err != nil {
			delete(l.imported, path)
			return nil, err
		}
		files = append(files, f)
	}
	conf := types.Config{
		Importer:         importerFunc(l.importPkg),
		Sizes:            l.sizes,
		IgnoreFuncBodies: true,
		Error:            func(error) {}, // partial packages still import usefully
	}
	pkg, _ := conf.Check(path, l.fset, files, nil)
	if pkg == nil {
		delete(l.imported, path)
		return nil, fmt.Errorf("import %q: type-check produced no package", path)
	}
	l.imported[path] = pkg
	return pkg, nil
}

func (l *Loader) dirFor(path string) (string, error) {
	if path == l.ModulePath {
		return l.Root, nil
	}
	if rest, ok := strings.CutPrefix(path, l.ModulePath+"/"); ok {
		return filepath.Join(l.Root, filepath.FromSlash(rest)), nil
	}
	for _, dir := range []string{
		filepath.Join(l.ctx.GOROOT, "src", filepath.FromSlash(path)),
		filepath.Join(l.ctx.GOROOT, "src", "vendor", filepath.FromSlash(path)),
	} {
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	if l.FixtureRoot != "" {
		dir := filepath.Join(l.FixtureRoot, filepath.FromSlash(path))
		if fi, err := os.Stat(dir); err == nil && fi.IsDir() {
			return dir, nil
		}
	}
	return "", fmt.Errorf("cannot resolve import %q", path)
}
