// Package lint is the repo's determinism-lint suite (the analyzers behind
// cmd/sdmvet). Every PR defends one invariant — virtual-time results,
// traces, and metrics are bit-identical at any HostWorkers/Parallelism —
// and the dynamic determinism tests only cover the paths the drills
// exercise. These analyzers turn the invariant into a static property:
//
//   - wallclock:    wall-clock reads (time.Now/Since/Sleep/...) are banned
//     in simulation code; virtual time comes from simclock.
//   - randsource:   the shared math/rand globals and crypto/rand are
//     banned; randomness must flow through seeded internal/xrand sources.
//   - maporder:     map iteration that emits (writes, appends, metrics
//     marks, float folds) is banned unless the keys are sorted first.
//   - vtimecompare: time.Duration values folded into plain-int64
//     virtual-time arithmetic, and shared float accumulators inside
//     go-spawned closures (completion-order folds), are banned.
//
// The suite is built on stdlib go/ast + go/parser + go/types only — no
// golang.org/x/tools — so the module stays zero-dependency. Sanctioned
// violations (wall-clock profiling of the scale campaign, test watchdogs)
// are annotated in source:
//
//	//sdm:allow <analyzer> <reason>
//
// on the offending line or the line immediately above it. The reason is
// mandatory; a directive naming an unknown analyzer or missing its reason
// is itself reported (analyzer name "directive"), so the escape hatch
// cannot rot silently.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Finding is one analyzer report, rendered by the driver as
// "file:line: [analyzer] message".
type Finding struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

// Analyzer is one determinism check run over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All is the full suite in reporting order. Directive validation accepts
// exactly these names.
var All = []*Analyzer{Wallclock, Randsource, Maporder, Vtimecompare}

// Lookup returns the analyzer with the given name, or nil.
func Lookup(name string) *Analyzer {
	for _, a := range All {
		if a.Name == name {
			return a
		}
	}
	return nil
}

// Pass is one analyzer's view of one package: parsed syntax plus type
// information, and the sink findings are reported into.
type Pass struct {
	Pkg *Package

	analyzer *Analyzer
	allow    allowIndex
	findings *[]Finding
	seen     map[string]bool
}

// Fset returns the package's file set.
func (p *Pass) Fset() *token.FileSet { return p.Pkg.Fset }

// Files returns the package's parsed files.
func (p *Pass) Files() []*ast.File { return p.Pkg.Files }

// TypeOf returns the type of an expression, or nil when type information
// is unavailable for it.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if p.Pkg.Info == nil {
		return nil
	}
	return p.Pkg.Info.TypeOf(e)
}

// ObjectOf resolves an identifier to its object (definition or use).
func (p *Pass) ObjectOf(id *ast.Ident) types.Object {
	if p.Pkg.Info == nil {
		return nil
	}
	if o := p.Pkg.Info.Defs[id]; o != nil {
		return o
	}
	return p.Pkg.Info.Uses[id]
}

// Reportf records a finding at pos unless an //sdm:allow directive for
// this analyzer covers the line (same line or the line above).
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	position := p.Pkg.Fset.Position(pos)
	if p.allow.covers(p.analyzer.Name, position) {
		return
	}
	msg := fmt.Sprintf(format, args...)
	key := fmt.Sprintf("%s:%d:%d:%s:%s", position.Filename, position.Line, position.Column, p.analyzer.Name, msg)
	if p.seen[key] {
		return
	}
	p.seen[key] = true
	*p.findings = append(*p.findings, Finding{Pos: position, Analyzer: p.analyzer.Name, Message: msg})
}

// allowIndex maps file -> line -> analyzer names sanctioned there.
type allowIndex map[string]map[int][]string

func (ai allowIndex) covers(analyzer string, pos token.Position) bool {
	lines := ai[pos.Filename]
	if lines == nil {
		return false
	}
	for _, l := range []int{pos.Line, pos.Line - 1} {
		for _, name := range lines[l] {
			if name == analyzer {
				return true
			}
		}
	}
	return false
}

// directivePrefix introduces a determinism-lint suppression comment.
const directivePrefix = "sdm:allow"

// scanDirectives indexes every //sdm:allow directive in the package and
// reports malformed ones (unknown analyzer, missing reason) as findings
// under the pseudo-analyzer "directive".
func scanDirectives(pkg *Package, findings *[]Finding) allowIndex {
	idx := make(allowIndex)
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text, ok := strings.CutPrefix(c.Text, "//"+directivePrefix)
				if !ok {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				fields := strings.Fields(text)
				if len(fields) == 0 {
					*findings = append(*findings, Finding{Pos: pos, Analyzer: "directive",
						Message: "sdm:allow directive names no analyzer (grammar: //sdm:allow <analyzer> <reason>)"})
					continue
				}
				name := fields[0]
				if Lookup(name) == nil {
					*findings = append(*findings, Finding{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("sdm:allow names unknown analyzer %q (known: %s)", name, analyzerNames())})
					continue
				}
				if len(fields) < 2 {
					*findings = append(*findings, Finding{Pos: pos, Analyzer: "directive",
						Message: fmt.Sprintf("sdm:allow %s is missing its reason (grammar: //sdm:allow <analyzer> <reason>)", name)})
					continue
				}
				if idx[pos.Filename] == nil {
					idx[pos.Filename] = make(map[int][]string)
				}
				idx[pos.Filename][pos.Line] = append(idx[pos.Filename][pos.Line], name)
			}
		}
	}
	return idx
}

func analyzerNames() string {
	names := make([]string, len(All))
	for i, a := range All {
		names[i] = a.Name
	}
	return strings.Join(names, ", ")
}

// Run executes the analyzers over every package and returns the findings
// sorted by (file, line, column, analyzer) — the driver's output order is
// itself deterministic.
func Run(pkgs []*Package, analyzers []*Analyzer) []Finding {
	var findings []Finding
	for _, pkg := range pkgs {
		allow := scanDirectives(pkg, &findings)
		for _, a := range analyzers {
			pass := &Pass{
				Pkg:      pkg,
				analyzer: a,
				allow:    allow,
				findings: &findings,
				seen:     make(map[string]bool),
			}
			a.Run(pass)
		}
	}
	sort.Slice(findings, func(i, j int) bool {
		a, b := &findings[i], &findings[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
	return findings
}

// inspectWithStack walks root calling fn with every node and its ancestor
// stack (outermost first, not including n itself). Returning false prunes
// the subtree.
func inspectWithStack(root ast.Node, fn func(n ast.Node, stack []ast.Node) bool) {
	var stack []ast.Node
	ast.Inspect(root, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		descend := fn(n, stack)
		if descend {
			stack = append(stack, n)
		}
		return descend
	})
}

// enclosingFunc returns the innermost FuncDecl or FuncLit on the stack.
func enclosingFunc(stack []ast.Node) ast.Node {
	for i := len(stack) - 1; i >= 0; i-- {
		switch stack[i].(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			return stack[i]
		}
	}
	return nil
}

// baseIdent returns the leftmost identifier of an lvalue-ish expression
// (x, x.f, x.f.g → x). Index expressions are not unwrapped: per-slot
// writes are the sanctioned parallel-fold shape and are judged separately.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch v := e.(type) {
		case *ast.Ident:
			return v
		case *ast.SelectorExpr:
			e = v.X
		case *ast.ParenExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// declaredWithin reports whether the object's declaration lies inside the
// span of node n.
func declaredWithin(obj types.Object, n ast.Node) bool {
	return obj != nil && obj.Pos() != token.NoPos && obj.Pos() >= n.Pos() && obj.Pos() <= n.End()
}

// pkgNameOf resolves an expression to the imported package it names, or
// "" when it is not a package qualifier.
func (p *Pass) pkgNameOf(e ast.Expr) string {
	id, ok := e.(*ast.Ident)
	if !ok || p.Pkg.Info == nil {
		return ""
	}
	if pn, ok := p.Pkg.Info.Uses[id].(*types.PkgName); ok {
		return pn.Imported().Path()
	}
	return ""
}

// isFloat reports whether t's underlying type is a floating-point kind.
func isFloat(t types.Type) bool {
	if t == nil {
		return false
	}
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
