package lint

// A tiny fixture harness mirroring golang.org/x/tools' analysistest
// without the dependency: fixture packages live under testdata/src, and
// `// want "substring-or-regexp"` comments on an offending line declare
// the expected finding. Every finding must be wanted and every want must
// be found.

import (
	"os"
	"path/filepath"
	"regexp"
	"strings"
	"testing"
)

var wantRE = regexp.MustCompile(`//\s*want\s+"([^"]+)"`)

func fixtureRoot(t *testing.T) string {
	t.Helper()
	abs, err := filepath.Abs(filepath.Join("testdata", "src"))
	if err != nil {
		t.Fatal(err)
	}
	return abs
}

func newTestLoader(t *testing.T) *Loader {
	t.Helper()
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.FixtureRoot = fixtureRoot(t)
	l.IncludeTests = true
	return l
}

func loadFixture(t *testing.T, name string) []*Package {
	t.Helper()
	l := newTestLoader(t)
	pkgs, err := l.Load(filepath.Join(fixtureRoot(t), name))
	if err != nil {
		t.Fatalf("load fixture %s: %v", name, err)
	}
	if len(pkgs) == 0 {
		t.Fatalf("fixture %s loaded no packages", name)
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("fixture %s does not type-check: %v", name, e)
		}
	}
	return pkgs
}

type wantMark struct {
	file    string
	line    int
	rx      *regexp.Regexp
	matched bool
}

func parseWants(t *testing.T, dir string) []*wantMark {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	var wants []*wantMark
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		path := filepath.Join(dir, e.Name())
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		for i, line := range strings.Split(string(data), "\n") {
			m := wantRE.FindStringSubmatch(line)
			if m == nil {
				continue
			}
			rx, err := regexp.Compile(regexp.QuoteMeta(m[1]))
			if err != nil {
				t.Fatalf("%s:%d: bad want pattern %q: %v", path, i+1, m[1], err)
			}
			wants = append(wants, &wantMark{file: path, line: i + 1, rx: rx})
		}
	}
	return wants
}

// runFixture loads testdata/src/<name>, runs the analyzers, and checks
// the findings against the fixture's want comments exactly.
func runFixture(t *testing.T, name string, analyzers ...*Analyzer) {
	t.Helper()
	pkgs := loadFixture(t, name)
	dir := pkgs[0].Dir
	wants := parseWants(t, dir)
	findings := Run(pkgs, analyzers)
	for _, f := range findings {
		matched := false
		for _, w := range wants {
			if !w.matched && sameFile(w.file, f.Pos.Filename) && w.line == f.Pos.Line && w.rx.MatchString(f.Message) {
				w.matched = true
				matched = true
				break
			}
		}
		if !matched {
			t.Errorf("unexpected finding %s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
		}
	}
	for _, w := range wants {
		if !w.matched {
			t.Errorf("%s:%d: expected finding matching %v, got none", w.file, w.line, w.rx)
		}
	}
}

func sameFile(a, b string) bool {
	aa, err1 := filepath.Abs(a)
	bb, err2 := filepath.Abs(b)
	if err1 != nil || err2 != nil {
		return a == b
	}
	return aa == bb
}
