package lint

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// randSeededNames are the math/rand{,/v2} identifiers that construct or
// name explicitly seeded sources. They are tolerated (a seeded source is
// deterministic by construction); everything else in those packages draws
// from the shared, implicitly seeded globals and is banned in favour of
// internal/xrand.
var randSeededNames = map[string]bool{
	"New":        true,
	"NewSource":  true,
	"NewZipf":    true,
	"NewPCG":     true,
	"NewChaCha8": true,
	"Source":     true,
	"Rand":       true,
	"Zipf":       true,
	"PCG":        true,
	"ChaCha8":    true,
}

// Randsource forbids the math/rand global functions (unseeded shared
// state: two runs — or two goroutine interleavings — draw different
// streams) and all of crypto/rand (nondeterministic by design) in
// simulation code. Randomness must flow through seeded internal/xrand
// sources so every trajectory replays bit-identically.
var Randsource = &Analyzer{
	Name: "randsource",
	Doc:  "forbid math/rand global functions and crypto/rand; require seeded internal/xrand sources",
	Run:  runRandsource,
}

func runRandsource(pass *Pass) {
	for _, file := range pass.Files() {
		// Blank imports keep the package linked (init side effects)
		// without any identifier use to flag; report the import itself.
		// Dot imports are resolved per identifier below.
		for _, imp := range file.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil || !isRandPkg(path) {
				continue
			}
			if imp.Name != nil && imp.Name.Name == "_" {
				pass.Reportf(imp.Pos(), "blank import of %s; simulation randomness must come from seeded internal/xrand sources", path)
			}
		}
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || pass.Pkg.Info == nil {
				return true
			}
			obj := pass.Pkg.Info.Uses[id]
			if obj == nil || obj.Pkg() == nil || !isRandPkg(obj.Pkg().Path()) {
				return true
			}
			if _, isPkgName := obj.(*types.PkgName); isPkgName {
				return true // the qualifier itself; the selected name is judged separately
			}
			if fn, ok := obj.(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
					return true // methods on Rand/Source values are seeded-source usage
				}
			}
			path := obj.Pkg().Path()
			if strings.HasPrefix(path, "crypto/") {
				pass.Reportf(id.Pos(), "crypto/rand.%s is nondeterministic; simulation randomness must come from seeded internal/xrand sources", obj.Name())
				return true
			}
			if randSeededNames[obj.Name()] {
				return true
			}
			pass.Reportf(id.Pos(), "%s.%s draws from the shared unseeded source; use a seeded internal/xrand generator", path, obj.Name())
			return true
		})
	}
}

func isRandPkg(path string) bool {
	switch path {
	case "math/rand", "math/rand/v2", "crypto/rand":
		return true
	}
	return false
}
