package lint

import (
	"go/ast"
	"go/types"
)

// wallclockForbidden lists the package-level time functions that read (or
// schedule against) the machine's wall clock. Durations, constants, and
// constructors from components (time.Unix, time.Date) stay legal: lengths
// of virtual time are fine, readings of real time are not.
var wallclockForbidden = map[string]bool{
	"Now":       true,
	"Since":     true,
	"Until":     true,
	"Sleep":     true,
	"After":     true,
	"AfterFunc": true,
	"Tick":      true,
	"NewTimer":  true,
	"NewTicker": true,
}

// Wallclock forbids wall-clock reads in simulation code. All latency in
// this repo is virtual (simclock): a single time.Now() in a hot path
// silently breaks the bit-identical-at-any-parallelism invariant. The
// sanctioned sites — wall-clock profiling of the scale campaign, test
// watchdogs — carry //sdm:allow wallclock <reason>.
var Wallclock = &Analyzer{
	Name: "wallclock",
	Doc:  "forbid time.Now/Since/Until/Sleep/After/Tick/NewTimer/NewTicker in simulation packages",
	Run:  runWallclock,
}

func runWallclock(pass *Pass) {
	for _, file := range pass.Files() {
		ast.Inspect(file, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || !wallclockForbidden[id.Name] || pass.Pkg.Info == nil {
				return true
			}
			// Resolving the identifier (rather than matching "time.X"
			// textually) covers aliased and dot imports, and value
			// references like `f := time.Now`, while leaving methods
			// (time.Time.After, simclock.Clock.After) alone.
			fn, ok := pass.Pkg.Info.Uses[id].(*types.Func)
			if !ok || fn.Pkg() == nil || fn.Pkg().Path() != "time" {
				return true
			}
			if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
				return true // a method named After/Sub/... , not the package function
			}
			pass.Reportf(id.Pos(), "time.%s reads the wall clock; simulation time must come from simclock (annotate sanctioned profiling/watchdog sites with //sdm:allow wallclock <reason>)", fn.Name())
			return true
		})
	}
}
