package lint

import (
	"strings"
	"testing"
)

func TestWallclockFixture(t *testing.T) {
	runFixture(t, "wallclock", Wallclock)
}

func TestRandsourceFixture(t *testing.T) {
	runFixture(t, "randsource", Randsource)
}

func TestRandsourceBlankImportFixture(t *testing.T) {
	runFixture(t, "randblank", Randsource)
}

func TestMaporderFixture(t *testing.T) {
	runFixture(t, "maporder", Maporder)
}

func TestVtimecompareFixture(t *testing.T) {
	runFixture(t, "vtimecompare", Vtimecompare)
}

// TestAllowDirective proves the suppression path: annotated wall-clock
// sites disappear, unannotated ones on the same lines' neighbours stay.
func TestAllowDirective(t *testing.T) {
	runFixture(t, "allowdir", Wallclock)
}

// TestWholeSuiteOnFixtures runs every analyzer together over the fixture
// whose wants were written for a single analyzer — the other analyzers
// must not add stray findings to it (cross-analyzer false-positive
// guard). maporder's fixture is the one with the richest mixed content.
func TestWholeSuiteOnFixtures(t *testing.T) {
	runFixture(t, "maporder", All...)
	runFixture(t, "wallclock", Wallclock, Randsource, Maporder)
}

// TestDirectiveValidation: malformed directives are findings under the
// "directive" pseudo-analyzer, and a reason-less directive suppresses
// nothing (the time.Now below it must still be reported).
func TestDirectiveValidation(t *testing.T) {
	pkgs := loadFixture(t, "directive")
	findings := Run(pkgs, []*Analyzer{Wallclock})
	wantSubstrings := []string{
		`unknown analyzer "wallhack"`,
		"names no analyzer",
		"missing its reason",
		"time.Now reads the wall clock",
	}
	for _, want := range wantSubstrings {
		found := false
		for _, f := range findings {
			if strings.Contains(f.Message, want) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("expected a finding containing %q, findings: %v", want, findings)
		}
	}
	if len(findings) != len(wantSubstrings) {
		t.Errorf("want %d findings, got %d: %v", len(wantSubstrings), len(findings), findings)
	}
	for _, f := range findings {
		malformed := strings.Contains(f.Message, "unknown analyzer") ||
			strings.Contains(f.Message, "names no analyzer") ||
			strings.Contains(f.Message, "missing its reason")
		if malformed && f.Analyzer != "directive" {
			t.Errorf("directive diagnostics must use the directive pseudo-analyzer, got %q", f.Analyzer)
		}
	}
}

// TestLookup pins the analyzer registry the directive grammar accepts.
func TestLookup(t *testing.T) {
	for _, name := range []string{"wallclock", "randsource", "maporder", "vtimecompare"} {
		if Lookup(name) == nil {
			t.Errorf("Lookup(%q) = nil, want analyzer", name)
		}
	}
	if Lookup("wallhack") != nil {
		t.Error("Lookup must reject unknown names")
	}
	if len(All) < 4 {
		t.Errorf("suite must ship at least four analyzers, got %d", len(All))
	}
}
