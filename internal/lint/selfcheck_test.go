package lint

import (
	"path/filepath"
	"testing"
)

// TestSuiteSelfCheck lints the linter: the full suite must run clean over
// internal/lint itself and over every command (including cmd/sdmvet), so
// the tool enforcing the determinism rules also obeys them. The
// repo-wide ./... run is the CI lint job; this keeps the self-referential
// core under `go test`.
func TestSuiteSelfCheck(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.IncludeTests = true
	pkgs, err := l.Load(
		filepath.Join(root, "internal", "lint"),
		filepath.Join(root, "cmd")+"/...",
	)
	if err != nil {
		t.Fatal(err)
	}
	if len(pkgs) < 2 {
		t.Fatalf("self-check loaded only %d packages", len(pkgs))
	}
	for _, p := range pkgs {
		for _, e := range p.TypeErrors {
			t.Errorf("%s: type-check: %v", p.Path, e)
		}
	}
	for _, f := range Run(pkgs, All) {
		t.Errorf("%s:%d: [%s] %s", f.Pos.Filename, f.Pos.Line, f.Analyzer, f.Message)
	}
}

// TestLoaderSkipsTestdata: the walker must not descend into fixture
// directories — their deliberate violations would otherwise fail the
// repo-wide run.
func TestLoaderSkipsTestdata(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	pkgs, err := l.Load(filepath.Join(root, "internal", "lint") + "/...")
	if err != nil {
		t.Fatal(err)
	}
	for _, p := range pkgs {
		if filepath.Base(filepath.Dir(p.Dir)) == "testdata" || filepath.Base(p.Dir) == "testdata" {
			t.Errorf("loader descended into testdata: %s", p.Dir)
		}
		for _, f := range p.Files {
			name := l.fset.Position(f.Pos()).Filename
			if filepath.Base(filepath.Dir(filepath.Dir(name))) == "testdata" {
				t.Errorf("loaded fixture file %s", name)
			}
		}
	}
	if len(pkgs) == 0 {
		t.Fatal("no packages loaded")
	}
}

// TestLoadIncludesTestFiles: the suite lints _test.go files too (the
// adapt watchdog annotation exists because of it), both in-package and
// external test packages.
func TestLoadIncludesTestFiles(t *testing.T) {
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatal(err)
	}
	l, err := NewLoader(root)
	if err != nil {
		t.Fatal(err)
	}
	l.IncludeTests = true
	pkgs, err := l.Load(filepath.Join(root, "internal", "lint"))
	if err != nil {
		t.Fatal(err)
	}
	foundTest := false
	for _, p := range pkgs {
		for _, f := range p.Files {
			name := l.fset.Position(f.Pos()).Filename
			if filepath.Base(name) == "selfcheck_test.go" {
				foundTest = true
			}
		}
	}
	if !foundTest {
		t.Error("IncludeTests did not load the package's _test.go files")
	}
}
