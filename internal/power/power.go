// Package power implements the fleet-level power and TCO arithmetic of
// §2.3 and §5: fleet sizing from per-host QPS (Eq. 5–7), normalized power
// comparisons for the three deployment scenarios (Table 8: simpler
// hardware; Table 9: avoiding scale-out; Table 11: multi-tenancy), the SM
// sizing roofline of Table 10, and the §A.4 warmup over-provision model.
package power

import (
	"fmt"
	"math"

	"sdm/internal/blockdev"
)

// Scenario is one fleet deployment option: a host SKU at a measured
// per-host QPS, with optional companion hosts (the scale-out remotes).
type Scenario struct {
	Name string
	// QPSPerHost is the measured sustainable QPS of one host.
	QPSPerHost float64
	// HostPower is the normalized per-host power.
	HostPower float64
	// CompanionPowerPerHost adds scale-out remote power amortized per
	// serving host (Table 9's "+0.25": one HW-S serves five HW-AN).
	CompanionPowerPerHost float64
	// CompanionHostsPerHost is the amortized remote host count.
	CompanionHostsPerHost float64
}

// Fleet is the provisioning outcome for a scenario at a total demand.
type Fleet struct {
	Scenario   Scenario
	TotalQPS   float64
	Hosts      int
	Companions int
	TotalPower float64
}

// Provision sizes the fleet for totalQPS demand (Eq. 7: Resources ∝
// QPS_total / QPS(HW)).
func Provision(s Scenario, totalQPS float64) (Fleet, error) {
	if s.QPSPerHost <= 0 {
		return Fleet{}, fmt.Errorf("power: scenario %q has no QPS", s.Name)
	}
	hosts := int(math.Ceil(totalQPS / s.QPSPerHost))
	comp := int(math.Ceil(float64(hosts) * s.CompanionHostsPerHost))
	return Fleet{
		Scenario:   s,
		TotalQPS:   totalQPS,
		Hosts:      hosts,
		Companions: comp,
		TotalPower: float64(hosts) * (s.HostPower + s.CompanionPowerPerHost),
	}, nil
}

// ClusterScenario builds a provisioning scenario from a measured
// multi-host cluster run instead of single-host extrapolation: the
// effective per-host QPS is the fleet's achieved QPS divided by its host
// count, which bakes in routing-policy effects (sticky cache uplift, load
// imbalance, rerouting headroom) that Eq. 7 over one host's QPS misses.
// Feed the result to Provision as usual.
func ClusterScenario(name string, fleetQPS float64, hosts int, hostPower float64) (Scenario, error) {
	if fleetQPS <= 0 || hosts <= 0 {
		return Scenario{}, fmt.Errorf("power: cluster scenario %q needs measured QPS (%g) and hosts (%d)", name, fleetQPS, hosts)
	}
	return Scenario{
		Name:       name,
		QPSPerHost: fleetQPS / float64(hosts),
		HostPower:  hostPower,
	}, nil
}

// Savings returns the fractional power saving of b vs the baseline a.
func Savings(a, b Fleet) float64 {
	if a.TotalPower == 0 {
		return 0
	}
	return 1 - b.TotalPower/a.TotalPower
}

// SizingInput drives the Table 10 SM-device roofline: how many SSDs does a
// future host need to feed the user-side embedding lookups.
type SizingInput struct {
	QPS        float64
	UserTables int
	PoolingPF  float64
	// EmbDimBytes is the average user row size in bytes.
	EmbDimBytes int
	// CacheHitRate is the expected FM cache hit rate.
	CacheHitRate float64
	// Device is the SM technology providing the IOPS.
	Device blockdev.Technology
}

// SizingResult is one Table 10 row.
type SizingResult struct {
	Input SizingInput
	// ColdIOPS is the Eq. 8 demand before the cache.
	ColdIOPS float64
	// SustainedIOPS is the demand reaching SM after cache hits.
	SustainedIOPS float64
	// NumSSDs is the device count covering SustainedIOPS.
	NumSSDs int
}

// Size computes the Table 10 roofline: IOPS = QPS · tables · PF, reduced
// by the cache hit rate, divided by the device's IOPS ceiling.
func Size(in SizingInput) (SizingResult, error) {
	if in.QPS <= 0 || in.UserTables <= 0 || in.PoolingPF <= 0 {
		return SizingResult{}, fmt.Errorf("power: invalid sizing input %+v", in)
	}
	spec := blockdev.Spec(in.Device)
	if spec.MaxIOPS <= 0 {
		return SizingResult{}, fmt.Errorf("power: device %v has no IOPS rating", in.Device)
	}
	cold := in.QPS * float64(in.UserTables) * in.PoolingPF
	miss := 1 - in.CacheHitRate
	if miss < 0 {
		miss = 0
	}
	sustained := cold * miss
	n := int(math.Ceil(sustained / spec.MaxIOPS))
	if n < 1 {
		n = 1
	}
	return SizingResult{Input: in, ColdIOPS: cold, SustainedIOPS: sustained, NumSSDs: n}, nil
}

// MultiTenancyInput drives the Table 11 roofline: experimental models are
// co-located on accelerator hosts; without SDM, DRAM capacity bounds how
// many fit, leaving compute idle.
type MultiTenancyInput struct {
	// HostDRAMBytes / HostSMBytes are per-host memory capacities.
	HostDRAMBytes int64
	HostSMBytes   int64
	// ModelDRAMBytes is each co-located model's user-embedding footprint.
	ModelDRAMBytes int64
	// ModelComputeFrac is the fraction of a host's compute one model's
	// traffic consumes (experimental models run small traffic; §5.3 says
	// experiments consume up to a quarter of allocated resources).
	ModelComputeFrac float64
	// BaseUtilization is the host compute already consumed by its primary
	// tenant before experimental models co-locate.
	BaseUtilization float64
	// BasePower is the host's normalized power; SDMExtraPower is the
	// added SSD power (Table 11 charges +0.01 for the Optane SSDs).
	BasePower     float64
	SDMExtraPower float64
	// NonEmbeddingDRAMBytes is reserved for dense parts and the OS.
	NonEmbeddingDRAMBytes int64
}

// MultiTenancyResult is one Table 11 comparison row.
type MultiTenancyResult struct {
	ModelsPerHost int
	Utilization   float64
	HostPower     float64
	// FleetPower is power per unit of served demand, normalized so the
	// baseline (no SDM) is 1.0 by the caller.
	FleetPower float64
}

// MultiTenancy computes host utilization and relative fleet power with and
// without SDM. Fleet power per demand ∝ hostPower/utilization: a host that
// is busier amortizes its power over more work.
func MultiTenancy(in MultiTenancyInput) (without, with MultiTenancyResult, err error) {
	if in.ModelDRAMBytes <= 0 || in.ModelComputeFrac <= 0 {
		return without, with, fmt.Errorf("power: invalid multi-tenancy input %+v", in)
	}
	avail := in.HostDRAMBytes - in.NonEmbeddingDRAMBytes
	if avail < 0 {
		avail = 0
	}
	// Without SDM: models per host bound by DRAM capacity.
	k1 := int(avail / in.ModelDRAMBytes)
	if k1 < 1 {
		k1 = 1
	}
	// With SDM: embeddings spill to SM; capacity bound moves to SM.
	k2 := int((avail + in.HostSMBytes) / in.ModelDRAMBytes)
	// Both are also bounded by the compute left over from the primary
	// tenant.
	kMax := int((1 - in.BaseUtilization) / in.ModelComputeFrac)
	if kMax < 1 {
		kMax = 1
	}
	if k1 > kMax {
		k1 = kMax
	}
	if k2 > kMax {
		k2 = kMax
	}
	u1 := in.BaseUtilization + float64(k1)*in.ModelComputeFrac
	u2 := in.BaseUtilization + float64(k2)*in.ModelComputeFrac
	without = MultiTenancyResult{ModelsPerHost: k1, Utilization: u1, HostPower: in.BasePower}
	with = MultiTenancyResult{ModelsPerHost: k2, Utilization: u2, HostPower: in.BasePower + in.SDMExtraPower}
	// Normalize fleet power to the non-SDM baseline.
	base := without.HostPower / u1
	without.FleetPower = 1.0
	with.FleetPower = (with.HostPower / u2) / base
	return without, with, nil
}

// DRAMSavedBytes returns the DRAM a fleet avoids deploying when each host
// carries smBytes of SM instead of extra DRAM (§5.1's "saves equivalent of
// 159.4 TB of DRAM").
func DRAMSavedBytes(hostsBaseline int, dramPerBaselineHost int64, hostsSDM int, dramPerSDMHost int64) int64 {
	return int64(hostsBaseline)*dramPerBaselineHost - int64(hostsSDM)*dramPerSDMHost
}
