package power

import (
	"math"
	"testing"

	"sdm/internal/blockdev"
)

func TestProvisionTable8Arithmetic(t *testing.T) {
	// Table 8: HW-L serves 240 QPS at power 1.0; HW-SS+SDM serves 120 at
	// 0.4. At 288k total QPS: 1200 vs 2400 hosts, 1200 vs 960 power.
	const totalQPS = 288000
	base, err := Provision(Scenario{Name: "HW-L", QPSPerHost: 240, HostPower: 1.0}, totalQPS)
	if err != nil {
		t.Fatal(err)
	}
	sdm, err := Provision(Scenario{Name: "HW-SS+SDM", QPSPerHost: 120, HostPower: 0.4}, totalQPS)
	if err != nil {
		t.Fatal(err)
	}
	if base.Hosts != 1200 || sdm.Hosts != 2400 {
		t.Fatalf("hosts %d/%d, want 1200/2400", base.Hosts, sdm.Hosts)
	}
	if base.TotalPower != 1200 || sdm.TotalPower != 960 {
		t.Fatalf("power %g/%g, want 1200/960", base.TotalPower, sdm.TotalPower)
	}
	if sav := Savings(base, sdm); math.Abs(sav-0.20) > 1e-9 {
		t.Fatalf("saving %.3f, want 0.20 (Table 8)", sav)
	}
}

func TestClusterScenario(t *testing.T) {
	// A 4-host cluster measured at 400 fleet QPS sizes fleets from the
	// effective 100 QPS/host — the cluster-measured path that replaces
	// single-host extrapolation.
	s, err := ClusterScenario("sticky x4", 400, 4, 0.4)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s.QPSPerHost-100) > 1e-12 || s.HostPower != 0.4 {
		t.Fatalf("scenario %+v", s)
	}
	fl, err := Provision(s, 10000)
	if err != nil {
		t.Fatal(err)
	}
	if fl.Hosts != 100 || math.Abs(fl.TotalPower-40) > 1e-9 {
		t.Fatalf("fleet %+v", fl)
	}
	if _, err := ClusterScenario("bad", 0, 4, 1); err == nil {
		t.Fatal("zero fleet QPS should fail")
	}
	if _, err := ClusterScenario("bad", 100, 0, 1); err == nil {
		t.Fatal("zero hosts should fail")
	}
}

func TestProvisionTable9Arithmetic(t *testing.T) {
	// Table 9: HW-AN+ScaleOut at 450 QPS with +0.25 companion power and
	// 1/5 companion hosts → 1500+300 hosts, 1575 power. HW-AO+SDM at 450
	// → 1500 power (5% saving). HW-AN+SDM at 230 QPS → ~2935 hosts.
	const totalQPS = 675000
	scaleOut, err := Provision(Scenario{
		Name: "HW-AN+ScaleOut", QPSPerHost: 450, HostPower: 1.0,
		CompanionPowerPerHost: 0.05, CompanionHostsPerHost: 0.2,
	}, totalQPS)
	if err != nil {
		t.Fatal(err)
	}
	optane, err := Provision(Scenario{Name: "HW-AO+SDM", QPSPerHost: 450, HostPower: 1.0}, totalQPS)
	if err != nil {
		t.Fatal(err)
	}
	nand, err := Provision(Scenario{Name: "HW-AN+SDM", QPSPerHost: 230, HostPower: 1.0}, totalQPS)
	if err != nil {
		t.Fatal(err)
	}
	if scaleOut.Hosts != 1500 || scaleOut.Companions != 300 {
		t.Fatalf("scale-out fleet %d+%d", scaleOut.Hosts, scaleOut.Companions)
	}
	if math.Abs(scaleOut.TotalPower-1575) > 1 {
		t.Fatalf("scale-out power %g, want 1575", scaleOut.TotalPower)
	}
	if sav := Savings(scaleOut, optane); math.Abs(sav-0.048) > 0.01 {
		t.Fatalf("Optane saving %.3f, want ≈0.05 (Table 9)", sav)
	}
	// Nand SDM must be clearly worse than scale-out (Table 9's point).
	if nand.TotalPower <= scaleOut.TotalPower {
		t.Fatal("Nand-backed SDM should cost more than scale-out for M2")
	}
}

func TestProvisionValidation(t *testing.T) {
	if _, err := Provision(Scenario{}, 100); err == nil {
		t.Fatal("zero QPS per host should fail")
	}
}

func TestSavingsZeroBase(t *testing.T) {
	if Savings(Fleet{}, Fleet{TotalPower: 5}) != 0 {
		t.Fatal("zero baseline should give 0")
	}
}

func TestSizeTable10(t *testing.T) {
	// Table 10: 3150 QPS × 2000 tables × PF 30 = 189 MIOPS cold; at 80%
	// hit rate → ~37.8 MIOPS sustained → "need for 36 MIOPS which could
	// be satisfied by 9 OptaneSSD, each providing 4 MIOPS".
	res, err := Size(SizingInput{
		QPS: 3150, UserTables: 2000, PoolingPF: 30,
		EmbDimBytes: 512, CacheHitRate: 0.80, Device: blockdev.OptaneSSD,
	})
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.ColdIOPS-189e6) > 1e3 {
		t.Fatalf("cold IOPS %g, want 189M", res.ColdIOPS)
	}
	if math.Abs(res.SustainedIOPS-37.8e6)/37.8e6 > 0.01 {
		t.Fatalf("sustained IOPS %g, want ≈37.8M", res.SustainedIOPS)
	}
	if res.NumSSDs < 9 || res.NumSSDs > 10 {
		t.Fatalf("SSD count %d, want ≈9 (Table 10)", res.NumSSDs)
	}
}

func TestSizeValidation(t *testing.T) {
	if _, err := Size(SizingInput{}); err == nil {
		t.Fatal("empty input should fail")
	}
	if _, err := Size(SizingInput{QPS: 1, UserTables: 1, PoolingPF: 1, Device: blockdev.Technology(99)}); err == nil {
		t.Fatal("unknown device should fail")
	}
}

func TestSizeHitRateReducesDevices(t *testing.T) {
	lo, err := Size(SizingInput{QPS: 3150, UserTables: 2000, PoolingPF: 30, CacheHitRate: 0, Device: blockdev.OptaneSSD})
	if err != nil {
		t.Fatal(err)
	}
	hi, err := Size(SizingInput{QPS: 3150, UserTables: 2000, PoolingPF: 30, CacheHitRate: 0.95, Device: blockdev.OptaneSSD})
	if err != nil {
		t.Fatal(err)
	}
	if hi.NumSSDs >= lo.NumSSDs {
		t.Fatal("higher hit rate must need fewer SSDs")
	}
}

func TestMultiTenancyTable11(t *testing.T) {
	// Table 11: utilization 0.63 → 0.90, fleet power 1.0 → ≈0.71 with a
	// 1% host power increase for the Optane SSDs.
	// One primary tenant uses 54% of compute; each experimental model
	// adds 9% compute and needs 100 GB of embedding capacity. The host
	// has DRAM room for one experimental model; SDM capacity for four.
	in := MultiTenancyInput{
		HostDRAMBytes:         128 << 30,
		HostSMBytes:           300 << 30,
		ModelDRAMBytes:        100 << 30,
		ModelComputeFrac:      0.09,
		BaseUtilization:       0.54,
		BasePower:             1.0,
		SDMExtraPower:         0.01,
		NonEmbeddingDRAMBytes: 28 << 30,
	}
	without, with, err := MultiTenancy(in)
	if err != nil {
		t.Fatal(err)
	}
	if without.ModelsPerHost != 1 {
		t.Fatalf("DRAM-bound host fits %d models, want 1", without.ModelsPerHost)
	}
	if with.ModelsPerHost <= without.ModelsPerHost {
		t.Fatal("SDM must raise co-location")
	}
	if math.Abs(without.Utilization-0.63) > 1e-9 {
		t.Fatalf("baseline utilization %g, want 0.63 (Table 11)", without.Utilization)
	}
	if with.Utilization < 0.8 {
		t.Fatalf("SDM utilization %g, want ≈0.90", with.Utilization)
	}
	if without.FleetPower != 1.0 {
		t.Fatal("baseline fleet power must normalize to 1.0")
	}
	// Table 11's headline: ≈29% fleet power saving.
	saving := 1 - with.FleetPower
	if saving < 0.25 || saving > 0.33 {
		t.Fatalf("multi-tenancy saving %.2f, want ≈0.29", saving)
	}
}

func TestMultiTenancyComputeBound(t *testing.T) {
	in := MultiTenancyInput{
		HostDRAMBytes:    1 << 40,
		HostSMBytes:      1 << 42,
		ModelDRAMBytes:   1 << 30,
		ModelComputeFrac: 0.5, // compute caps at 2 models
		BasePower:        1.0,
	}
	without, with, err := MultiTenancy(in)
	if err != nil {
		t.Fatal(err)
	}
	if without.ModelsPerHost != 2 || with.ModelsPerHost != 2 {
		t.Fatalf("compute bound should cap both at 2: %d/%d",
			without.ModelsPerHost, with.ModelsPerHost)
	}
	// No capacity bound → SDM adds nothing but its SSD power.
	if with.FleetPower < 1.0 {
		t.Fatal("without a capacity bound SDM cannot save power")
	}
}

func TestMultiTenancyValidation(t *testing.T) {
	if _, _, err := MultiTenancy(MultiTenancyInput{}); err == nil {
		t.Fatal("empty input should fail")
	}
}

func TestDRAMSaved(t *testing.T) {
	// §5.1: switching 1200 HW-L (256 GB) for 2400 HW-SS (64 GB) saves
	// 1200·256GB − 2400·64GB = 150 TB ≈ the paper's quoted 159.4 TB
	// (their host counts include head-room we do not model).
	got := DRAMSavedBytes(1200, 256<<30, 2400, 64<<30)
	wantTB := 150.0
	gotTB := float64(got) / (1 << 40)
	if math.Abs(gotTB-wantTB) > 0.5 {
		t.Fatalf("DRAM saved %.1f TB, want ≈%.1f", gotTB, wantTB)
	}
}
